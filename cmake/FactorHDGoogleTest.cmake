# Provides GTest::gtest / GTest::gtest_main.
#
# Preference order:
#   1. An installed GoogleTest (find_package) — works offline, matches the
#      distro toolchain.
#   2. FetchContent of the pinned release — for machines without the package.
#
# Both paths end with the same imported targets, so test CMakeLists never
# care which one won.

find_package(GTest QUIET)
if(GTest_FOUND)
  message(STATUS "GoogleTest: using installed package")
else()
  message(STATUS "GoogleTest: not installed, fetching v1.14.0")
  include(FetchContent)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  FetchContent_MakeAvailable(googletest)
  # googletest v1.12+ defines the GTest:: aliases itself; only add them for
  # older snapshots.
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
  endif()
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()
