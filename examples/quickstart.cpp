// Quickstart: encode one object with a class-subclass hierarchy and
// factorize it back.
//
// Mirrors the paper's running example (Fig. 1): an object that is a brown
// spaniel of medium size — three classes (animal, color, size), the animal
// class carrying two subclass levels (dog -> spaniel).
//
// Build & run:  ./examples/quickstart
#include <cstddef>
#include <iostream>

#include "core/factorhd.hpp"

namespace {

constexpr std::size_t kDim = 1024;

// Human-readable item names for the demo taxonomy.
const char* kAnimalsL1[] = {"dog", "cat", "bird", "fish"};
const char* kAnimalsL2[] = {"spaniel", "terrier",   // children of dog
                            "siamese", "tabby",     // children of cat
                            "sparrow", "eagle",     // children of bird
                            "trout", "salmon"};     // children of fish
const char* kColors[] = {"brown", "white", "black", "red"};
const char* kSizes[] = {"small", "medium", "large", "huge"};

}  // namespace

int main() {
  using namespace factorhd;

  // 1. Describe the class-subclass hierarchy:
  //    class 0 "animal": 4 level-1 items, 2 children each at level 2;
  //    class 1 "color" and class 2 "size": flat (single level).
  const tax::Taxonomy taxonomy(
      std::vector<std::vector<std::size_t>>{{4, 2}, {4}, {4}});

  // 2. Generate the HV codebooks (labels, item HVs, NULL) deterministically.
  util::Xoshiro256 rng(/*seed=*/2024);
  const tax::TaxonomyCodebooks books(taxonomy, kDim, rng);

  // 3. Encode "brown spaniel, medium": bundling-binding-bundling form.
  tax::Object fido(3);
  fido.set_path(0, {0, 0});  // animal: dog -> spaniel
  fido.set_path(1, {0});     // color: brown
  fido.set_path(2, {1});     // size: medium
  const core::Encoder encoder(books);
  const hdc::Hypervector target = encoder.encode_object(fido);
  std::cout << "Encoded object " << fido.to_string() << " into a ternary HV of "
            << target.dim() << " dimensions (" << target.zero_count()
            << " zeros)\n\n";

  // 4. Factorize the full object back.
  const core::Factorizer factorizer(encoder);
  const core::FactorizedObject result = factorizer.factorize_single(target);

  const auto& animal = result.classes[0];
  const auto& color = result.classes[1];
  const auto& size = result.classes[2];
  std::cout << "Factorized:\n";
  std::cout << "  animal: " << kAnimalsL1[animal.path[0]] << " -> "
            << kAnimalsL2[animal.path[1]]
            << "  (similarities " << animal.level_similarities[0] << ", "
            << animal.level_similarities[1] << ")\n";
  std::cout << "  color:  " << kColors[color.path[0]] << "  (similarity "
            << color.level_similarities[0] << ")\n";
  std::cout << "  size:   " << kSizes[size.path[0]] << "  (similarity "
            << size.level_similarities[0] << ")\n\n";

  // 5. Partial factorization: only the color class, one similarity sweep.
  core::FactorizeOptions partial;
  partial.selected_classes = {1};
  const auto partial_result = factorizer.factorize(target, partial);
  std::cout << "Partial query 'what color?': "
            << kColors[partial_result.objects[0].classes[0].path[0]] << " ("
            << partial_result.similarity_ops
            << " similarity measurements instead of "
            << taxonomy.problem_size() << " combinations)\n";

  const bool ok = result.to_object(3) == fido;
  std::cout << "\nRound trip " << (ok ? "succeeded" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
