// Knowledge base example: a neuro-symbolic store of multiple objects with
// class-subclass structure, queried through multi-object factorization.
//
// The scenario is the paper's motivating one: a scene description holds
// several objects ("a brown spaniel", "a white siamese cat", ...) in a single
// hypervector; queries recover all objects, or only the attribute of
// interest, without the superposition catastrophe of C-I models.
//
// Build & run:  ./examples/knowledge_base
#include <cstddef>
#include <iostream>
#include <string>

#include "core/factorhd.hpp"

namespace {

const char* kAnimalsL1[] = {"dog", "cat", "bird", "fish", "horse", "sheep"};
const char* kAnimalsL2[] = {
    "spaniel", "terrier", "husky",      // dog
    "siamese", "tabby",   "persian",    // cat
    "sparrow", "eagle",   "owl",        // bird
    "trout",   "salmon",  "pike",       // fish
    "arabian", "mustang", "shetland",   // horse
    "merino",  "suffolk", "dorset"};    // sheep
const char* kColors[] = {"brown", "white", "black", "red", "grey", "golden"};

std::string describe(const factorhd::tax::Object& obj) {
  std::string s;
  if (obj.has_class(1)) s += std::string(kColors[obj.path(1)[0]]) + " ";
  if (obj.has_class(0)) {
    s += kAnimalsL2[obj.path(0)[1]];
    s += " (a kind of " + std::string(kAnimalsL1[obj.path(0)[0]]) + ")";
  }
  return s;
}

}  // namespace

int main() {
  using namespace factorhd;

  // Taxonomy: animals (6 kinds x 3 breeds) and colors (6).
  const tax::Taxonomy taxonomy(
      std::vector<std::vector<std::size_t>>{{6, 3}, {6}});
  util::Xoshiro256 rng(7);
  const tax::TaxonomyCodebooks books(taxonomy, /*dim=*/8192, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  // Build the knowledge base: three facts in one hypervector.
  tax::Object fact1(2), fact2(2), fact3(2);
  fact1.set_path(0, {0, 0});  // spaniel
  fact1.set_path(1, {0});     // brown
  fact2.set_path(0, {1, 3});  // siamese
  fact2.set_path(1, {1});     // white
  fact3.set_path(0, {2, 7});  // eagle
  fact3.set_path(1, {4});     // grey
  const tax::Scene facts{fact1, fact2, fact3};

  const hdc::Hypervector kb = encoder.encode_scene(facts);
  std::cout << "Knowledge base holds " << facts.size()
            << " facts in one " << kb.dim() << "-dimensional HV:\n";
  for (const auto& f : facts) std::cout << "  + " << describe(f) << "\n";

  // Query 1: enumerate everything (multi-object factorization).
  core::FactorizeOptions opts;
  opts.multi_object = true;
  opts.num_objects_hint = facts.size();
  opts.max_objects = 6;
  const auto all = factorizer.factorize(kb, opts);
  std::cout << "\nQuery 'list all objects' -> " << all.objects.size()
            << " objects ("
            << all.similarity_ops << " similarity ops, "
            << all.combinations_checked << " combination checks):\n";
  bool all_found = true;
  tax::Scene recovered;
  for (const auto& o : all.objects) {
    const tax::Object obj = o.to_object(2);
    recovered.push_back(obj);
    std::cout << "  - " << describe(obj)
              << "   [match similarity " << o.match_similarity << "]\n";
  }
  all_found = tax::same_multiset(recovered, facts);

  // Query 2: what colors appear in the scene? Partial factorization reports
  // only the color class of each object.
  core::FactorizeOptions color_only = opts;
  color_only.selected_classes = {1};
  const auto colors = factorizer.factorize(kb, color_only);
  std::cout << "\nQuery 'which colors?' ->";
  for (const auto& o : colors.objects) {
    if (!o.classes.empty() && o.classes[0].present) {
      std::cout << ' ' << kColors[o.classes[0].path[0]];
    }
  }
  std::cout << "\n";

  // Query 3: the problem of 2 — add a second brown spaniel and re-query.
  tax::Scene duplicated = facts;
  duplicated.push_back(fact1);
  const hdc::Hypervector kb2 = encoder.encode_scene(duplicated);
  core::FactorizeOptions opts2 = opts;
  opts2.num_objects_hint = duplicated.size();
  opts2.max_objects = 8;
  const auto dup = factorizer.factorize(kb2, opts2);
  std::cout << "\nAfter adding a second '" << describe(fact1)
            << "': factorization finds " << dup.objects.size()
            << " objects (duplicates preserved - no problem of 2)\n";

  const bool ok = all_found && dup.objects.size() == duplicated.size();
  std::cout << "\nAll queries " << (ok ? "succeeded" : "FAILED") << "\n";
  return ok ? 0 : 1;
}
