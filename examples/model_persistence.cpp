// Model persistence: generate a named FactorHD model, save it to disk,
// reload it in a "fresh process" (separate objects), and verify that HVs
// encoded by the original model factorize correctly under the reloaded one.
//
// This is the deployment workflow of a neuro-symbolic system: codebooks are
// generated once (they ARE the model), then shipped to encoders/factorizers
// that must agree bit-for-bit.
//
// Build & run:  ./examples/model_persistence [path]
#include <cstdio>
#include <iostream>
#include <string>

#include "core/factorhd.hpp"

int main(int argc, char** argv) {
  using namespace factorhd;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/factorhd_demo_model.bin";

  // --- Producer side: build and persist the model. ---
  const tax::Taxonomy taxonomy(
      std::vector<std::vector<std::size_t>>{{3, 2}, {4}});
  tax::NameRegistry names(taxonomy);
  names.set_class_name(0, "vehicle");
  names.set_class_name(1, "color");
  const char* kinds[] = {"car", "bike", "truck"};
  const char* models[] = {"sedan", "coupe",   "road", "mountain",
                          "box",   "flatbed"};
  const char* colors[] = {"red", "blue", "green", "silver"};
  for (std::size_t i = 0; i < 3; ++i) names.set_item_name(0, 1, i, kinds[i]);
  for (std::size_t i = 0; i < 6; ++i) names.set_item_name(0, 2, i, models[i]);
  for (std::size_t i = 0; i < 4; ++i) names.set_item_name(1, 1, i, colors[i]);

  util::Xoshiro256 rng(314159);
  const tax::TaxonomyCodebooks books(taxonomy, /*dim=*/2048, rng);
  tax::save_codebooks_file(path, books);
  std::cout << "Saved model (" << books.total_items() << " hypervectors, dim "
            << books.dim() << ") to " << path << "\n";

  // Encode a fact with the producer's encoder.
  tax::Object fact(2);
  fact.set_path(0, {1, 3});  // bike -> mountain
  fact.set_path(1, {2});     // green
  const core::Encoder producer_encoder(books);
  const hdc::Hypervector wire_hv = producer_encoder.encode_object(fact);
  std::cout << "Producer encoded: " << names.describe(fact) << "\n";

  // --- Consumer side: reload and factorize the received HV. ---
  const tax::TaxonomyCodebooks reloaded = tax::load_codebooks_file(path);
  const core::Encoder consumer_encoder(reloaded);
  const core::Factorizer consumer(consumer_encoder);
  const core::FactorizedObject got = consumer.factorize_single(wire_hv);
  const tax::Object decoded = got.to_object(2);
  std::cout << "Consumer decoded: " << names.describe(decoded) << "\n";

  // Partial query by *name* through the registry.
  const auto color_class = names.class_index("color");
  core::FactorizeOptions partial;
  partial.selected_classes = {color_class.value()};
  const auto color_only = consumer.factorize(wire_hv, partial);
  const std::size_t color_idx = color_only.objects[0].classes[0].path[0];
  std::cout << "Named query 'color?' -> " << names.item_name(1, 1, color_idx)
            << "\n";

  std::remove(path.c_str());
  const bool ok = decoded == fact && color_idx == 2;
  std::cout << "\nPersistence round trip " << (ok ? "succeeded" : "FAILED")
            << "\n";
  return ok ? 0 : 1;
}
