// Neuro-symbolic superposition pipeline: the Table II workload end to end.
//
// 1. Train the MLP feature extractor (the ResNet-18 stand-in) on a
//    CIFAR-10-like synthetic dataset.
// 2. Encode test images into HVs (softmax-weighted label encodings).
// 3. Bundle K images into one HV ("computation in superposition") and
//    factorize all K labels back with the multi-object algorithm.
//
// Build & run:  ./examples/superposition_pipeline
#include <cmath>
#include <iostream>
#include <numeric>

#include "core/factorhd.hpp"
#include "data/cifar_like.hpp"
#include "nn/trainer.hpp"

int main() {
  using namespace factorhd;
  util::Xoshiro256 rng(11);

  // --- Neural part: train the feature extractor. ---
  data::CifarLikeSpec spec = data::cifar10_like_spec();
  spec.train_per_class = 64;
  spec.test_per_class = 16;
  const data::CifarLike ds = data::make_cifar_like(spec, rng);

  nn::Mlp net({spec.feature_dim, 64, 10}, rng);
  nn::TrainOptions topts;
  topts.epochs = 20;
  const nn::TrainReport report = nn::train(net, ds.train, topts);
  const double classifier_acc = nn::evaluate_accuracy(net, ds.test);
  std::cout << "Feature extractor trained: train acc "
            << report.final_train_accuracy * 100 << "%, test acc "
            << classifier_acc * 100 << "%\n";

  // --- Symbolic part: label taxonomy and codebooks. ---
  const tax::Taxonomy taxonomy = data::label_taxonomy(spec);
  util::Xoshiro256 hv_rng(12);
  const tax::TaxonomyCodebooks books(taxonomy, /*dim=*/4096, hv_rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  // Forward the whole test set once.
  std::vector<std::size_t> rows(ds.test.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  nn::Matrix logits = net.forward(nn::gather_rows(ds.test.features, rows));
  const nn::Matrix probs = nn::Mlp::softmax(logits);

  // HV of one image: softmax-weighted bundle of label encodings, scaled to
  // integers (the HDC pipeline works in Z^D for analog bundles). This is the
  // library's SoftLabelEncoder.
  std::vector<tax::Object> label_objects;
  for (int c = 0; c < 10; ++c) {
    label_objects.push_back(data::label_object(spec, c));
  }
  const core::SoftLabelEncoder soft(encoder, std::move(label_objects));
  auto image_hv = [&](std::size_t row) { return soft.encode(probs.row(row)); };

  // --- Superposition: bundle K images, factorize all labels. ---
  for (const std::size_t k : {1u, 2u, 3u}) {
    std::size_t correct = 0, total = 0;
    util::Xoshiro256 pick(13);
    const std::size_t batches = 40;
    for (std::size_t b = 0; b < batches; ++b) {
      // Draw K test images with pairwise distinct labels so the bundled
      // multiset is well-defined.
      std::vector<std::size_t> chosen;
      std::vector<int> labels;
      while (chosen.size() < k) {
        const std::size_t r = pick.uniform(ds.test.size());
        const int label = ds.test.labels[r];
        bool dup = false;
        for (int l : labels) dup = dup || l == label;
        if (!dup) {
          chosen.push_back(r);
          labels.push_back(label);
        }
      }
      hdc::Hypervector bundle_hv(books.dim());
      for (std::size_t r : chosen) hdc::accumulate(bundle_hv, image_hv(r));

      core::FactorizeOptions opts;
      opts.multi_object = k > 1;
      opts.num_objects_hint = k;
      opts.max_objects = k + 2;
      // Analog bundles carry the encoder's scale per image; restore the
      // unit-signal range Eq. 2's threshold expects.
      soft.normalize_scale(bundle_hv);
      const auto result = factorizer.factorize(bundle_hv, opts);

      // Count labels recovered.
      for (int label : labels) {
        bool found = false;
        for (const auto& o : result.objects) {
          if (!o.classes.empty() && o.classes[0].present &&
              o.classes[0].cls == 0 &&
              o.classes[0].path[0] == static_cast<std::size_t>(label)) {
            found = true;
          }
        }
        correct += found ? 1 : 0;
        ++total;
      }
    }
    std::cout << "superposition K=" << k << ": label recovery "
              << 100.0 * static_cast<double>(correct) /
                     static_cast<double>(total)
              << "% over " << batches << " bundles\n";
  }
  std::cout << "\n(classifier test accuracy is the ceiling; the paper's "
               "Table II reports the same effect on real CIFAR-10)\n";
  return 0;
}
