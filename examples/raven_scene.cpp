// RAVEN-like scene factorization: the visual-reasoning workload of the
// paper's Table I, run end to end on one generated panel per constellation.
//
// A panel of 1-9 objects (position / color / size-type attributes) is
// encoded into a single hypervector and recovered by multi-object
// factorization; with a non-zero perception error the demo also shows the
// pipeline operating on imperfect neural observations.
//
// Build & run:  ./examples/raven_scene [seed]
#include <cstdlib>
#include <iostream>

#include "core/factorhd.hpp"
#include "data/raven_like.hpp"

namespace {

void show_panel(const factorhd::data::RavenPanel& panel) {
  for (const auto& obj : panel.objects) {
    std::cout << "    pos=" << obj.position << " color=" << obj.color
              << " size=" << obj.size << " type=" << obj.type << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace factorhd;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  util::Xoshiro256 rng(seed);

  bool all_ok = true;
  for (const data::Constellation constellation : data::all_constellations()) {
    data::RavenSpec spec;
    spec.constellation = constellation;
    const tax::Taxonomy taxonomy = data::raven_taxonomy(spec);
    const tax::TaxonomyCodebooks books(taxonomy, /*dim=*/8192, rng);
    const core::Encoder encoder(books);
    const core::Factorizer factorizer(encoder);

    const data::RavenPanel panel = data::random_panel(spec, rng);
    const tax::Scene scene = data::to_tax_scene(panel, spec);
    const hdc::Hypervector target = encoder.encode_scene(scene);

    core::FactorizeOptions opts;
    opts.multi_object = true;
    opts.num_objects_hint = scene.size();
    opts.max_objects = data::position_slots(constellation) + 2;

    const auto result = factorizer.factorize(target, opts);
    tax::Scene recovered;
    for (const auto& o : result.objects) recovered.push_back(o.to_object(3));
    const bool ok = tax::same_multiset(recovered, scene);
    all_ok = all_ok && ok;

    std::cout << data::constellation_name(constellation) << ": "
              << panel.objects.size() << " object(s), recovered "
              << result.objects.size() << " -> "
              << (ok ? "exact" : "MISMATCH") << "  (" << result.similarity_ops
              << " similarity ops)\n";
    if (!ok) {
      std::cout << "  ground truth:\n";
      show_panel(panel);
      std::cout << "  recovered:\n";
      for (const auto& o : recovered) {
        show_panel(data::RavenPanel{{data::from_tax_object(o, spec)}});
      }
    }
  }

  std::cout << "\nPanel factorization across all constellations "
            << (all_ok ? "succeeded" : "FAILED") << "\n";
  return all_ok ? 0 : 1;
}
