// Unit tests for permutation-based sequence encodings.
#include <gtest/gtest.h>

#include "hdc/ops.hpp"
#include "hdc/sequence.hpp"
#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::hdc;

class SequenceTest : public ::testing::Test {
 protected:
  SequenceTest() : rng_(77), cb_(2048, 16, rng_) {}

  std::vector<Hypervector> items(const std::vector<std::size_t>& idx) const {
    std::vector<Hypervector> out;
    out.reserve(idx.size());
    for (std::size_t j : idx) out.push_back(cb_.item(j));
    return out;
  }

  util::Xoshiro256 rng_;
  Codebook cb_;
};

TEST_F(SequenceTest, RoundTripsShortSequences) {
  const std::vector<std::size_t> idx{3, 1, 4, 1, 5};
  const Hypervector s = encode_sequence(items(idx));
  EXPECT_EQ(decode_sequence(s, idx.size(), cb_), idx);
}

TEST_F(SequenceTest, PositionMattersForRepeatedItems) {
  // "aba" vs "aab" must encode differently even with identical multisets.
  const Hypervector aba = encode_sequence(items({0, 1, 0}));
  const Hypervector aab = encode_sequence(items({0, 0, 1}));
  EXPECT_NE(aba, aab);
  EXPECT_EQ(decode_sequence(aba, 3, cb_), (std::vector<std::size_t>{0, 1, 0}));
  EXPECT_EQ(decode_sequence(aab, 3, cb_), (std::vector<std::size_t>{0, 0, 1}));
}

TEST_F(SequenceTest, DecodeReportsSimilarity) {
  const Hypervector s = encode_sequence(items({7, 2}));
  const Match m = decode_sequence_position(s, 0, cb_);
  EXPECT_EQ(m.index, 7u);
  // The integer bundle keeps the full item plus a quasi-orthogonal
  // distractor: similarity ~ 1.0 with O(1/sqrt(D)) noise.
  EXPECT_NEAR(m.similarity, 1.0, 0.1);
}

TEST_F(SequenceTest, SingleItemSequenceIsTheItem) {
  EXPECT_EQ(encode_sequence(items({5})), cb_.item(5));
}

TEST_F(SequenceTest, EmptyInputsThrow) {
  EXPECT_THROW(encode_sequence({}), std::invalid_argument);
  EXPECT_THROW(encode_ngram({}), std::invalid_argument);
  EXPECT_THROW(encode_ngram_bag(items({1, 2}), 3), std::invalid_argument);
  EXPECT_THROW(encode_ngram_bag(items({1, 2}), 0), std::invalid_argument);
}

TEST_F(SequenceTest, NgramIsOrderSensitive) {
  const Hypervector ab = encode_ngram(items({0, 1}));
  const Hypervector ba = encode_ngram(items({1, 0}));
  EXPECT_NE(ab, ba);
  // Both are quasi-orthogonal to each other and to their members.
  EXPECT_LT(std::abs(similarity(ab, ba)), 0.1);
  EXPECT_LT(std::abs(similarity(ab, cb_.item(0))), 0.1);
}

TEST_F(SequenceTest, NgramIsBipolar) {
  EXPECT_TRUE(encode_ngram(items({2, 9, 11})).is_bipolar());
}

TEST_F(SequenceTest, NgramBagContainsItsNgrams) {
  const auto seq = items({0, 1, 2, 3});
  const Hypervector bag = encode_ngram_bag(seq, 2);
  // 3 bigrams: (0,1), (1,2), (2,3); each similar to the bag.
  for (std::size_t start = 0; start + 2 <= seq.size(); ++start) {
    const Hypervector gram =
        encode_ngram(std::span<const Hypervector>(seq).subspan(start, 2));
    EXPECT_GT(similarity(bag, gram), 0.2) << "bigram " << start;
  }
  // A bigram NOT in the sequence is dissimilar.
  const Hypervector absent = encode_ngram(items({3, 0}));
  EXPECT_LT(std::abs(similarity(bag, absent)), 0.15);
}

TEST_F(SequenceTest, NgramBagWindowCountMatches) {
  const auto seq = items({0, 1, 2, 3, 4});
  const Hypervector bag = encode_ngram_bag(seq, 5);  // exactly one window
  EXPECT_EQ(bag, encode_ngram(seq));
}

}  // namespace
