// Unit tests for packed bipolar/ternary codecs.
#include <gtest/gtest.h>

#include "hdc/ops.hpp"
#include "hdc/packed.hpp"
#include "hdc/random.hpp"
#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;

class PackedTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackedTest, BipolarRoundTrip) {
  Xoshiro256 rng(GetParam());
  const Hypervector v = random_bipolar(GetParam(), rng);
  EXPECT_EQ(PackedBipolar(v).unpack(), v);
}

TEST_P(PackedTest, BipolarDotMatchesReference) {
  Xoshiro256 rng(GetParam() + 1);
  const Hypervector a = random_bipolar(GetParam(), rng);
  const Hypervector b = random_bipolar(GetParam(), rng);
  EXPECT_EQ(PackedBipolar(a).dot(PackedBipolar(b)), dot(a, b));
}

TEST_P(PackedTest, BipolarHammingMatchesReference) {
  Xoshiro256 rng(GetParam() + 2);
  const Hypervector a = random_bipolar(GetParam(), rng);
  const Hypervector b = random_bipolar(GetParam(), rng);
  EXPECT_EQ(PackedBipolar(a).hamming(PackedBipolar(b)), hamming(a, b));
}

TEST_P(PackedTest, BipolarBindMatchesReference) {
  Xoshiro256 rng(GetParam() + 3);
  const Hypervector a = random_bipolar(GetParam(), rng);
  const Hypervector b = random_bipolar(GetParam(), rng);
  EXPECT_EQ(PackedBipolar(a).bind(PackedBipolar(b)).unpack(), bind(a, b));
}

TEST_P(PackedTest, TernaryRoundTrip) {
  Xoshiro256 rng(GetParam() + 4);
  const Hypervector v = random_ternary(GetParam(), 0.4, rng);
  EXPECT_EQ(PackedTernary(v).unpack(), v);
}

TEST_P(PackedTest, TernaryDotMatchesReference) {
  Xoshiro256 rng(GetParam() + 5);
  const Hypervector a = random_ternary(GetParam(), 0.3, rng);
  const Hypervector b = random_ternary(GetParam(), 0.5, rng);
  EXPECT_EQ(PackedTernary(a).dot(PackedTernary(b)), dot(a, b));
}

// Dimensions around the 64-bit word boundary plus typical experiment sizes.
INSTANTIATE_TEST_SUITE_P(Dimensions, PackedTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 500, 1000,
                                           1500, 2048));

TEST(Packed, RejectsWrongAlphabet) {
  EXPECT_THROW(PackedBipolar(Hypervector{1, 0, -1}), std::invalid_argument);
  EXPECT_THROW(PackedTernary(Hypervector{1, 2, -1}), std::invalid_argument);
}

TEST(Packed, DimensionMismatchThrows) {
  Xoshiro256 rng(1);
  const PackedBipolar a{random_bipolar(64, rng)};
  const PackedBipolar b{random_bipolar(65, rng)};
  EXPECT_THROW((void)a.dot(b), std::invalid_argument);
  EXPECT_THROW((void)a.bind(b), std::invalid_argument);
}

TEST(Packed, StorageAccounting) {
  Xoshiro256 rng(2);
  const PackedBipolar pb{random_bipolar(1500, rng)};
  EXPECT_EQ(pb.storage_bits(), 1500u);
  const PackedTernary pt{random_ternary(750, 0.3, rng)};
  EXPECT_EQ(pt.storage_bits(), 1500u);
  // The paper's fair-storage rule: ternary FactorHD at D/2 matches bipolar D.
  EXPECT_EQ(fair_ternary_dim(1500), 750u);
  EXPECT_EQ(pt.storage_bits(), pb.storage_bits());
}

TEST(Packed, BindEqualityStaysCanonicalInTailWord) {
  // bind uses XNOR which sets tail bits; they must be masked so == works.
  Xoshiro256 rng(3);
  const Hypervector a = random_bipolar(65, rng);
  const PackedBipolar pa(a);
  const PackedBipolar self_bound = pa.bind(pa);
  EXPECT_EQ(self_bound, PackedBipolar(identity(65)));
}

}  // namespace
