// ShardedItemMemory (hdc/kernels/sharded_item_memory.hpp) — the ISSUE 8
// scatter-gather contract from every side:
//
//  * partition — balanced contiguous row ranges (sizes differ by at most
//    one), shard counts clamped to [1, M] so N > M and N not dividing M are
//    safe, zero-copy slice views over the full packed planes;
//  * bit-identity — every surface (best / above / top_k / dots and the
//    blocked variants) returns bit-identical results to the unsharded
//    PackedItemMemory scan at every shard count, including adversarially
//    tied codebooks whose duplicate rows straddle shard boundaries (the
//    merge tie rules: argmax keeps the lowest global index, sorted surfaces
//    follow hdc::match_order);
//  * tiered shards — per-shard tier indexes with full probing stay exact,
//    and ScanStats accumulate the summed per-shard costs;
//  * persistence — per-shard FTS1 snapshots round trip through
//    save_sharded_index / load_sharded_index, verified snapshots are
//    adopted, mismatched ones rejected with the memory still correct, and a
//    corrupt shard file throws at load (never mis-scans);
//  * soak (ShardedSoak) — concurrent client threads scanning one shared
//    ShardedItemMemory, with the scan pool forced wide enough that the
//    internal shard scatter also runs threaded, stay race-free (TSan CI
//    runs this binary) and bit-identical to single-threaded references.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/sharded_item_memory.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/match.hpp"
#include "hdc/random.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;
using kernels::PackedItemMemory;
using kernels::PackedQuery;
using kernels::ShardedConfig;
using kernels::ShardedItemMemory;
using kernels::SimdLevel;
using kernels::TieredConfig;
using kernels::TieredItemMemory;

// scan_pool_width() latches FACTORHD_SCAN_THREADS on first call, so the
// override must be installed before any scan in this binary — a static
// initializer runs before main(). Width 4 makes the ShardedSoak scatter
// genuinely threaded even on single-core CI hosts.
const bool kPoolWidthForced = [] {
  ::setenv("FACTORHD_SCAN_THREADS", "4", 1);
  return true;
}();

/// Scoped environment override; restores the previous value on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) previous_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (previous_) {
      ::setenv(name_, previous_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

void expect_same_matches(const std::vector<Match>& ref,
                         const std::vector<Match>& got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].index, got[i].index) << "position " << i;
    EXPECT_EQ(ref[i].similarity, got[i].similarity) << "position " << i;
  }
}

/// Deterministic query mix: noisy cleanup hits, random bipolar/ternary,
/// one exact item, the all-zero vector — packed for the kernel surfaces.
std::vector<PackedQuery> make_queries(const Codebook& cb, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Hypervector> raw;
  for (int i = 0; i < 3; ++i) {
    raw.push_back(flip_noise(cb.item(rng.uniform(cb.size())), 0.05, rng));
    raw.push_back(random_bipolar(cb.dim(), rng));
    raw.push_back(random_ternary(cb.dim(), 0.4, rng));
  }
  raw.push_back(cb.item(0));
  raw.push_back(Hypervector(cb.dim()));
  std::vector<PackedQuery> queries;
  for (const Hypervector& q : raw) {
    const std::optional<PackedQuery> pq = PackedQuery::pack(q);
    if (pq.has_value()) queries.push_back(*pq);
  }
  return queries;
}

/// Every scatter-gather surface of `sharded`, compared bit-for-bit against
/// the unsharded `packed` scan — the core ISSUE 8 contract.
void expect_bit_identical(const PackedItemMemory& packed,
                          const ShardedItemMemory& sharded,
                          const std::vector<PackedQuery>& queries) {
  ASSERT_EQ(packed.size(), sharded.size());
  const std::size_t m = packed.size();
  for (const PackedQuery& q : queries) {
    const Match rb = packed.best(q);
    const Match gb = sharded.best(q);
    EXPECT_EQ(rb.index, gb.index);
    EXPECT_EQ(rb.similarity, gb.similarity);
    expect_same_matches(packed.above(q, 0.01), sharded.above(q, 0.01));
    expect_same_matches(packed.above(q, -2.0), sharded.above(q, -2.0));
    expect_same_matches(packed.top_k(q, 7), sharded.top_k(q, 7));
    expect_same_matches(packed.top_k(q, m + 3), sharded.top_k(q, m + 3));
    std::vector<std::int64_t> ref_dots(m), got_dots(m);
    packed.dots(q, ref_dots);
    sharded.dots(q, got_dots);
    EXPECT_EQ(ref_dots, got_dots);
  }
  // Blocked surfaces against their per-query and unsharded counterparts.
  expect_same_matches(packed.best_block(queries), sharded.best_block(queries));
  const auto ref_topk = packed.top_k_block(queries, 5);
  const auto got_topk = sharded.top_k_block(queries, 5);
  ASSERT_EQ(ref_topk.size(), got_topk.size());
  for (std::size_t i = 0; i < ref_topk.size(); ++i) {
    expect_same_matches(ref_topk[i], got_topk[i]);
  }
  std::vector<std::int64_t> ref_block(queries.size() * m);
  std::vector<std::int64_t> got_block(queries.size() * m);
  packed.dots_block(queries, ref_block);
  sharded.dots_block(queries, got_block);
  EXPECT_EQ(ref_block, got_block);
}

TEST(ShardedMemory, PartitionIsBalancedContiguousAndClampsShardCount) {
  Xoshiro256 rng(20260808);
  const Codebook cb(128, 10, rng);
  const auto packed = std::make_shared<const PackedItemMemory>(cb);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7},
        std::size_t{10}, std::size_t{16}, std::size_t{1000}}) {
    ShardedConfig cfg;
    cfg.shards = n;
    const ShardedItemMemory sharded(packed, cfg);
    const std::size_t resolved = std::min<std::size_t>(n, cb.size());
    ASSERT_EQ(sharded.shards(), resolved) << "requested " << n;
    std::size_t begin = 0;
    std::size_t min_size = cb.size(), max_size = 0;
    for (std::size_t s = 0; s < sharded.shards(); ++s) {
      EXPECT_EQ(sharded.shard_begin(s), begin);
      EXPECT_EQ(sharded.shard_rows(s).size(), sharded.shard_size(s));
      min_size = std::min(min_size, sharded.shard_size(s));
      max_size = std::max(max_size, sharded.shard_size(s));
      begin += sharded.shard_size(s);
    }
    EXPECT_EQ(begin, cb.size()) << "partition must cover every row";
    EXPECT_LE(max_size - min_size, 1u) << "balanced partition";
    EXPECT_FALSE(sharded.tiered_shards());
    EXPECT_TRUE(sharded.exact());
  }
  // Null row memory is rejected; shards=0 defers to the env knob.
  EXPECT_THROW(ShardedItemMemory(nullptr), std::invalid_argument);
  {
    ScopedEnv shards("FACTORHD_SHARDS", "6");
    EXPECT_EQ(kernels::sharded_config_from_env().shards, 6u);
    EXPECT_EQ(ShardedItemMemory(packed).shards(), 6u);
  }
  {
    ScopedEnv min_rows("FACTORHD_SHARD_MIN_ROWS", "123");
    EXPECT_EQ(kernels::sharded_auto_min_rows(), 123u);
  }
}

TEST(ShardedMemory, ExactScansBitIdenticalAtEveryShardCount) {
  Xoshiro256 rng(41);
  // Off-word dimension and prime row count: exercises tail masking and
  // uneven partitions at every shard count below.
  const Codebook cb(257, 211, rng);
  const auto packed = std::make_shared<const PackedItemMemory>(cb);
  const std::vector<PackedQuery> queries = make_queries(cb, 7);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7},
        std::size_t{16}, std::size_t{211}, std::size_t{212}}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    ShardedConfig cfg;
    cfg.shards = n;
    expect_bit_identical(*packed, ShardedItemMemory(packed, cfg), queries);
  }
}

TEST(ShardedMemory, TiedRowsAcrossShardBoundariesMergeCanonically) {
  // Every row duplicates one of four patterns, so every query ties across
  // many rows — and with 5 shards over 37 rows, across shard boundaries.
  // The merged argmax must keep the lowest global index (the canonical
  // first-maximum rule) and the sorted surfaces must follow
  // hdc::match_order, i.e. stay bit-identical to the unsharded scan.
  Xoshiro256 rng(43);
  std::vector<Hypervector> patterns;
  for (int i = 0; i < 4; ++i) patterns.push_back(random_bipolar(192, rng));
  std::vector<Hypervector> items;
  for (std::size_t i = 0; i < 37; ++i) items.push_back(patterns[i % 4]);
  const Codebook cb(std::move(items));
  const auto packed = std::make_shared<const PackedItemMemory>(cb);
  const std::vector<PackedQuery> queries = make_queries(cb, 11);
  for (const std::size_t n : {std::size_t{2}, std::size_t{5}, std::size_t{9}}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    ShardedConfig cfg;
    cfg.shards = n;
    const ShardedItemMemory sharded(packed, cfg);
    expect_bit_identical(*packed, sharded, queries);
    for (const PackedQuery& q : queries) {
      // With only four distinct rows, the argmax is always a tie class of
      // ~9 duplicates; the winner must be its first (lowest) global index.
      EXPECT_LT(sharded.best(q).index, 4u);
    }
  }
}

TEST(ShardedMemory, TieredShardsWithFullProbingStayExact) {
  Xoshiro256 rng(47);
  const Codebook cb(256, 240, rng);
  const auto packed = std::make_shared<const PackedItemMemory>(cb);
  const std::vector<PackedQuery> queries = make_queries(cb, 13);
  ShardedConfig cfg;
  cfg.shards = 4;
  // nprobe >= clusters on every shard: the tier probes everything, so the
  // scan stays exact and the sharded results must stay bit-identical.
  cfg.tiered = TieredConfig{.clusters = 4, .nprobe = 240};
  const ShardedItemMemory sharded(packed, cfg);
  EXPECT_TRUE(sharded.tiered_shards());
  EXPECT_TRUE(sharded.exact());
  for (std::size_t s = 0; s < sharded.shards(); ++s) {
    ASSERT_NE(sharded.shard_tier(s), nullptr);
    EXPECT_TRUE(sharded.shard_tier(s)->exact());
  }
  expect_bit_identical(*packed, sharded, queries);

  // ScanStats accumulate the summed per-shard costs: 4 shards x 4 centroids
  // of centroid work, and (exact tiers) every row scanned exactly once.
  TieredItemMemory::ScanStats stats{};
  (void)sharded.best(queries[0], /*exact=*/false, &stats);
  EXPECT_EQ(stats.centroid_dots, 16u);
  EXPECT_EQ(stats.row_dots, 240u);

  // The exact flag bypasses the tiers and accounts a plain full scan.
  TieredItemMemory::ScanStats forced{};
  const Match via_rows = sharded.best(queries[0], /*exact=*/true, &forced);
  const Match via_tier = sharded.best(queries[0]);
  EXPECT_EQ(via_rows.index, via_tier.index);
  EXPECT_EQ(via_rows.similarity, via_tier.similarity);
  EXPECT_EQ(forced.centroid_dots, 0u);
  EXPECT_EQ(forced.row_dots, 240u);
}

TEST(ShardedMemory, SnapshotRoundTripAdoptsVerifiedShardsRejectsMismatched) {
  Xoshiro256 rng(53);
  const Codebook cb(256, 200, rng);
  const auto packed = std::make_shared<const PackedItemMemory>(cb);
  const std::vector<PackedQuery> queries = make_queries(cb, 17);
  ShardedConfig cfg;
  cfg.shards = 4;
  cfg.tiered = TieredConfig{.clusters = 4, .nprobe = 200};
  const ShardedItemMemory original(packed, cfg);
  const std::string prefix = testing::TempDir() + "factorhd_sharded_idx";
  EXPECT_EQ(kernels::sharded_shard_path(prefix, 2), prefix + ".shard2");
  kernels::save_sharded_index(prefix, original);

  // Round trip: every per-shard snapshot verifies against its slice of the
  // codebook and is adopted in place of a fresh k-means build.
  const auto snaps = kernels::load_sharded_index(prefix, 4);
  ASSERT_EQ(snaps.size(), 4u);
  const ShardedItemMemory reloaded(packed, cfg, snaps);
  EXPECT_EQ(reloaded.snapshots_adopted(), 4u);
  EXPECT_EQ(reloaded.snapshots_rejected(), 0u);
  expect_bit_identical(*packed, reloaded, queries);

  // Snapshot count must match the resolved shard count.
  ShardedConfig three = cfg;
  three.shards = 3;
  EXPECT_THROW(ShardedItemMemory(packed, three, snaps), std::invalid_argument);

  // Snapshots for a different codebook fail the plane verification shard by
  // shard: all rejected, fresh tiers built, results still bit-identical.
  Xoshiro256 other_rng(54);
  const Codebook other_cb(256, 200, other_rng);
  const auto other = std::make_shared<const PackedItemMemory>(other_cb);
  const ShardedItemMemory mismatched(other, cfg, snaps);
  EXPECT_EQ(mismatched.snapshots_adopted(), 0u);
  EXPECT_EQ(mismatched.snapshots_rejected(), 4u);
  EXPECT_TRUE(mismatched.tiered_shards());
  expect_bit_identical(*other, mismatched, make_queries(other_cb, 19));

  // A corrupt shard file throws at load — a sharded index can fail to
  // load, but can never mis-scan.
  const std::string victim = kernels::sharded_shard_path(prefix, 2);
  std::string bytes;
  {
    std::ifstream is(victim, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 100u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  {
    std::ofstream os(victim, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)kernels::load_sharded_index(prefix, 4),
               std::runtime_error);

  // Untiered shards have no index to persist.
  ShardedConfig untiered;
  untiered.shards = 4;
  EXPECT_THROW(
      kernels::save_sharded_index(prefix, ShardedItemMemory(packed, untiered)),
      std::invalid_argument);
  for (std::size_t s = 0; s < 4; ++s) {
    std::remove(kernels::sharded_shard_path(prefix, s).c_str());
  }
}

TEST(ShardedMemory, RejectsMalformedQueriesAndOutputSpans) {
  Xoshiro256 rng(59);
  const Codebook cb(128, 50, rng);
  const auto packed = std::make_shared<const PackedItemMemory>(cb);
  ShardedConfig cfg;
  cfg.shards = 3;
  const ShardedItemMemory sharded(packed, cfg);
  Xoshiro256 qrng(60);
  const PackedQuery wrong = *PackedQuery::pack(random_bipolar(256, qrng));
  const PackedQuery ok = *PackedQuery::pack(random_bipolar(128, qrng));
  EXPECT_THROW((void)sharded.best(wrong), std::invalid_argument);
  EXPECT_THROW((void)sharded.above(wrong, 0.0), std::invalid_argument);
  EXPECT_THROW((void)sharded.top_k(wrong, 3), std::invalid_argument);
  std::vector<std::int64_t> out(50);
  EXPECT_THROW(sharded.dots(wrong, out), std::invalid_argument);
  std::vector<std::int64_t> short_out(49);
  EXPECT_THROW(sharded.dots(ok, short_out), std::invalid_argument);
  const std::vector<PackedQuery> block{ok, ok};
  std::vector<std::int64_t> short_block(2 * 50 - 1);
  EXPECT_THROW(sharded.dots_block(block, short_block), std::invalid_argument);
  EXPECT_TRUE(sharded.top_k(ok, 0).empty());
  EXPECT_TRUE(sharded.best_block({}).empty());
}

// ---------------------------------------------------------------------------
// ShardedSoak: concurrent scatter-gather under TSan. The static initializer
// above forces the scan pool to width 4, and the codebook below is sized to
// clear the scalar parallel-scatter threshold (8192 rows x 8 words =
// 2^16 words), so the internal shard scatter runs genuinely threaded while
// multiple client threads hammer the same memory.
// ---------------------------------------------------------------------------

TEST(ShardedSoak, ConcurrentScattersAreRaceFreeAndBitIdentical) {
  ASSERT_TRUE(kPoolWidthForced);
  ASSERT_EQ(kernels::scan_pool_width(), 4u);
  Xoshiro256 rng(20260809);
  const Codebook cb(512, 8192, rng);
  // Scalar tier: the parallel-scatter break-even sits at 2^16 words, which
  // this codebook meets exactly; the vector tiers' 2^20 threshold would
  // need a far larger build than a unit test should pay for.
  const auto packed = std::make_shared<const PackedItemMemory>(
      cb, SimdLevel::kScalarWords);
  ShardedConfig exact_cfg;
  exact_cfg.shards = 8;
  const ShardedItemMemory exact(packed, exact_cfg);
  ShardedConfig tiered_cfg;
  tiered_cfg.shards = 5;
  tiered_cfg.tiered = TieredConfig{.clusters = 8, .nprobe = 8192};
  const ShardedItemMemory tiered(packed, tiered_cfg);

  // Single-threaded references, computed before any concurrency starts.
  std::vector<PackedQuery> queries;
  Xoshiro256 qrng(61);
  for (int i = 0; i < 6; ++i) {
    queries.push_back(
        *PackedQuery::pack(flip_noise(cb.item(qrng.uniform(cb.size())),
                                      0.05, qrng)));
  }
  std::vector<Match> ref_best;
  std::vector<std::vector<Match>> ref_topk;
  std::vector<std::vector<std::int64_t>> ref_dots;
  for (const PackedQuery& q : queries) {
    ref_best.push_back(packed->best(q));
    ref_topk.push_back(packed->top_k(q, 5));
    std::vector<std::int64_t> d(packed->size());
    packed->dots(q, d);
    ref_dots.push_back(std::move(d));
  }

  std::atomic<std::size_t> mismatches{0};
  auto client = [&](std::size_t seed) {
    Xoshiro256 trng(seed);
    for (int iter = 0; iter < 8; ++iter) {
      const std::size_t qi = trng.uniform(queries.size());
      const ShardedItemMemory& mem = (iter % 2 == 0) ? exact : tiered;
      const Match b = mem.best(queries[qi]);
      if (b.index != ref_best[qi].index ||
          b.similarity != ref_best[qi].similarity) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      const std::vector<Match> tk = mem.top_k(queries[qi], 5);
      if (tk.size() != ref_topk[qi].size()) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      } else {
        for (std::size_t i = 0; i < tk.size(); ++i) {
          if (tk[i].index != ref_topk[qi][i].index ||
              tk[i].similarity != ref_topk[qi][i].similarity) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      if (iter % 4 == 0) {
        std::vector<std::int64_t> d(mem.size());
        mem.dots(queries[qi], d);
        if (d != ref_dots[qi]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < 4; ++t) {
    clients.emplace_back(client, 100 + t);
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
