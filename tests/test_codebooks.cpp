// Unit tests for tax::TaxonomyCodebooks.
#include <gtest/gtest.h>

#include "hdc/ops.hpp"
#include "hdc/similarity.hpp"
#include "taxonomy/codebooks.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using tax::Taxonomy;
using tax::TaxonomyCodebooks;

TEST(TaxonomyCodebooks, GeneratesAllMaterial) {
  util::Xoshiro256 rng(1);
  const Taxonomy t(3, {8, 4});
  const TaxonomyCodebooks books(t, 512, rng);
  EXPECT_EQ(books.dim(), 512u);
  EXPECT_TRUE(books.null_hv().is_bipolar());
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(books.label(c).is_bipolar());
    EXPECT_EQ(books.level_codebook(c, 1).size(), 8u);
    EXPECT_EQ(books.level_codebook(c, 2).size(), 32u);
  }
  // 1 null + per class (1 label + 8 + 32).
  EXPECT_EQ(books.total_items(), 1u + 3u * (1u + 8u + 32u));
}

TEST(TaxonomyCodebooks, HeterogeneousShapes) {
  util::Xoshiro256 rng(2);
  const Taxonomy t(std::vector<std::vector<std::size_t>>{{9}, {10}, {5, 6}});
  const TaxonomyCodebooks books(t, 256, rng);
  EXPECT_EQ(books.level_codebook(0, 1).size(), 9u);
  EXPECT_EQ(books.level_codebook(2, 2).size(), 30u);
  EXPECT_THROW((void)books.level_codebook(0, 2), std::out_of_range);
}

TEST(TaxonomyCodebooks, OtherLabelsKeyIsProductOfOtherLabels) {
  util::Xoshiro256 rng(3);
  const Taxonomy t(3, {4});
  const TaxonomyCodebooks books(t, 128, rng);
  const auto expected =
      hdc::bind(books.label(1), books.label(2));
  EXPECT_EQ(books.other_labels_key(0), expected);
  // Binding the key with the remaining label gives the all-label product;
  // key(c) ⊙ label(c) is the same for every c.
  const auto all0 = hdc::bind(books.other_labels_key(0), books.label(0));
  const auto all1 = hdc::bind(books.other_labels_key(1), books.label(1));
  EXPECT_EQ(all0, all1);
}

TEST(TaxonomyCodebooks, SingleClassKeyIsIdentity) {
  util::Xoshiro256 rng(4);
  const Taxonomy t(1, {4});
  const TaxonomyCodebooks books(t, 64, rng);
  EXPECT_EQ(books.other_labels_key(0), hdc::identity(64));
}

TEST(TaxonomyCodebooks, LabelsAreQuasiOrthogonalToItems) {
  util::Xoshiro256 rng(5);
  const Taxonomy t(2, {16});
  const TaxonomyCodebooks books(t, 4096, rng);
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_LT(std::abs(hdc::similarity(books.label(0), books.item(0, 1, j))),
              0.08);
  }
  EXPECT_LT(std::abs(hdc::similarity(books.label(0), books.null_hv())), 0.08);
}

TEST(TaxonomyCodebooks, ZeroDimensionThrows) {
  util::Xoshiro256 rng(6);
  EXPECT_THROW(TaxonomyCodebooks(Taxonomy(1, {4}), 0, rng),
               std::invalid_argument);
}

TEST(TaxonomyCodebooks, ItemAccessor) {
  util::Xoshiro256 rng(7);
  const Taxonomy t(2, {4, 2});
  const TaxonomyCodebooks books(t, 64, rng);
  EXPECT_EQ(books.item(1, 2, 5), books.level_codebook(1, 2).item(5));
  EXPECT_THROW((void)books.item(1, 2, 8), std::out_of_range);
}

}  // namespace
