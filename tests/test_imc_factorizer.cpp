// Unit tests for the IMC stochastic factorizer simulation.
#include <gtest/gtest.h>

#include "baselines/imc_factorizer.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using baselines::CCModel;
using baselines::ImcFactorizer;
using baselines::ImcOptions;
using baselines::ImcResult;

TEST(ImcFactorizer, FactorizesSmallProblems) {
  util::Xoshiro256 rng(1);
  const CCModel model(1024, 3, 8, rng);
  const ImcFactorizer imc(model);
  int correct = 0;
  for (int t = 0; t < 20; ++t) {
    std::vector<std::size_t> truth{rng.uniform(8), rng.uniform(8),
                                   rng.uniform(8)};
    const ImcResult r = imc.factorize(model.encode(truth));
    if (r.converged && r.factors == truth) ++correct;
  }
  EXPECT_GE(correct, 19);
}

TEST(ImcFactorizer, SolvesProblemsBeyondPlainResonatorScale) {
  // M=48 at D=256: problem size 1.1e5 with D far below the deterministic
  // resonator's comfort zone; the stochastic dynamics still solve most
  // instances (the paper's motivation for the IMC baseline).
  util::Xoshiro256 rng(2);
  const CCModel model(256, 3, 48, rng);
  ImcOptions opts;
  opts.max_iterations = 4000;
  const ImcFactorizer imc(model, opts);
  int correct = 0;
  for (int t = 0; t < 10; ++t) {
    std::vector<std::size_t> truth{rng.uniform(48), rng.uniform(48),
                                   rng.uniform(48)};
    const ImcResult r = imc.factorize(model.encode(truth));
    if (r.converged && r.factors == truth) ++correct;
  }
  EXPECT_GE(correct, 7);
}

TEST(ImcFactorizer, ConvergenceCheckIsExact) {
  util::Xoshiro256 rng(3);
  const CCModel model(512, 3, 8, rng);
  const ImcFactorizer imc(model);
  const std::vector<std::size_t> truth{1, 2, 3};
  const ImcResult r = imc.factorize(model.encode(truth));
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(model.encode(r.factors), model.encode(truth));
}

TEST(ImcFactorizer, RespectsIterationBudget) {
  util::Xoshiro256 rng(4);
  const CCModel model(64, 4, 64, rng);
  ImcOptions opts;
  opts.max_iterations = 3;
  const ImcFactorizer imc(model, opts);
  const std::vector<std::size_t> truth{0, 1, 2, 3};
  const ImcResult r = imc.factorize(model.encode(truth));
  EXPECT_LE(r.iterations, 3u);
  EXPECT_EQ(r.similarity_ops, r.iterations * 4u * 64u);
}

TEST(ImcFactorizer, DeterministicGivenSeed) {
  util::Xoshiro256 rng(5);
  const CCModel model(256, 3, 16, rng);
  ImcOptions opts;
  opts.seed = 1234;
  const ImcFactorizer imc(model, opts);
  const std::vector<std::size_t> truth{7, 3, 9};
  const ImcResult a = imc.factorize(model.encode(truth));
  const ImcResult b = imc.factorize(model.encode(truth));
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.factors, b.factors);
}

TEST(ImcFactorizer, RejectsWrongDimension) {
  util::Xoshiro256 rng(6);
  const CCModel model(256, 3, 8, rng);
  const ImcFactorizer imc(model);
  EXPECT_THROW((void)imc.factorize(hdc::Hypervector(512)),
               std::invalid_argument);
}

}  // namespace
