// Robustness and failure-injection tests: noisy targets, corrupted
// components, capacity-edge scenes, adversarial thresholds.
#include <gtest/gtest.h>

#include "core/factorhd.hpp"
#include "hdc/random.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using core::FactorizeOptions;
using core::Factorizer;

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : rng_(321), taxonomy_(3, {16}), books_(taxonomy_, 2048, rng_),
        encoder_(books_), factorizer_(encoder_) {}

  hdc::Hypervector corrupt(const hdc::Hypervector& v, double flip) {
    hdc::Hypervector out = v;
    for (std::size_t i = 0; i < out.dim(); ++i) {
      if (rng_.bernoulli(flip)) out[i] = -out[i];
    }
    return out;
  }

  util::Xoshiro256 rng_;
  tax::Taxonomy taxonomy_;
  tax::TaxonomyCodebooks books_;
  core::Encoder encoder_;
  Factorizer factorizer_;
};

TEST_F(RobustnessTest, SurvivesTenPercentCorruption) {
  std::size_t ok = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    const tax::Object obj = tax::random_object(taxonomy_, rng_);
    const auto noisy = corrupt(encoder_.encode_object(obj), 0.10);
    if (factorizer_.factorize_single(noisy).to_object(3) == obj) ++ok;
  }
  EXPECT_EQ(ok, static_cast<std::size_t>(trials));
}

TEST_F(RobustnessTest, FailsGracefullyAtExtremeCorruption) {
  // 50% flips destroy all information; the factorizer must still return a
  // well-formed (if wrong) answer, never crash or hang.
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  const auto noise = corrupt(encoder_.encode_object(obj), 0.5);
  const auto got = factorizer_.factorize_single(noise);
  EXPECT_EQ(got.classes.size(), 3u);
}

TEST_F(RobustnessTest, ZeroTargetYieldsWellFormedResult) {
  const hdc::Hypervector zero(books_.dim());
  const auto got = factorizer_.factorize_single(zero);
  EXPECT_EQ(got.classes.size(), 3u);  // all ties; arbitrary but well-formed
}

TEST_F(RobustnessTest, RandomTargetDoesNotFabricateMultiObjectScenes) {
  // Pure noise should usually produce nothing above TH (or at most noise
  // objects that fail the combination check).
  std::size_t fabricated = 0;
  for (int t = 0; t < 10; ++t) {
    const hdc::Hypervector junk = hdc::random_bipolar(books_.dim(), rng_);
    FactorizeOptions opts;
    opts.multi_object = true;
    opts.num_objects_hint = 2;
    const auto result = factorizer_.factorize(junk, opts);
    fabricated += result.objects.size();
  }
  EXPECT_LE(fabricated, 2u);
}

TEST_F(RobustnessTest, MultiObjectSurvivesModerateNoise) {
  std::size_t ok = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    const tax::Scene scene = tax::random_scene(
        taxonomy_, rng_,
        {.num_objects = 2, .object = {}, .allow_duplicates = false});
    hdc::Hypervector target = encoder_.encode_scene(scene);
    // Additive unit noise on 5% of components of the integer bundle.
    for (std::size_t i = 0; i < target.dim(); ++i) {
      if (rng_.bernoulli(0.05)) target[i] += rng_.bipolar();
    }
    FactorizeOptions opts;
    opts.multi_object = true;
    opts.num_objects_hint = 2;
    opts.max_objects = 4;
    const auto result = factorizer_.factorize(target, opts);
    tax::Scene rec;
    for (const auto& o : result.objects) rec.push_back(o.to_object(3));
    if (tax::same_multiset(rec, scene)) ++ok;
  }
  EXPECT_GE(ok, static_cast<std::size_t>(trials - 1));
}

TEST_F(RobustnessTest, CapacityEdgeSceneDegradesNotCrashes) {
  // Six objects at D=2048 with M=16: near the bundle capacity. Require only
  // well-formed output and at least partial recovery.
  const tax::Scene scene = tax::random_scene(
      taxonomy_, rng_,
      {.num_objects = 6, .object = {}, .allow_duplicates = false});
  FactorizeOptions opts;
  opts.multi_object = true;
  opts.num_objects_hint = 6;
  opts.max_objects = 10;
  opts.max_candidates_per_class = 10;
  const auto result =
      factorizer_.factorize(encoder_.encode_scene(scene), opts);
  EXPECT_LE(result.objects.size(), 10u);
  std::size_t recovered = 0;
  for (const auto& o : result.objects) {
    const tax::Object obj = o.to_object(3);
    for (const auto& truth : scene) {
      if (obj == truth) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GE(recovered, 3u);
}

TEST_F(RobustnessTest, NegativeThresholdStillTerminates) {
  // A pathological TH <= noise floor floods the candidate sets; the
  // max_candidates cap and max_objects budget must keep the loop bounded.
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  FactorizeOptions opts;
  opts.multi_object = true;
  opts.threshold = 1e-6;
  opts.max_objects = 3;
  opts.max_candidates_per_class = 4;
  const auto result =
      factorizer_.factorize(encoder_.encode_object(obj), opts);
  EXPECT_LE(result.objects.size(), 3u);
  // The true object is still the best combination of round one.
  ASSERT_FALSE(result.objects.empty());
  EXPECT_EQ(result.objects[0].to_object(3), obj);
}

TEST_F(RobustnessTest, ScaledBundleFactorizesLikeUnscaled) {
  // Multiplying the whole bundle by a constant rescales every similarity;
  // argmax decisions are scale-free, so Rep-1 factorization must agree.
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  hdc::Hypervector target = encoder_.encode_object(obj);
  hdc::Hypervector scaled = target;
  for (std::size_t i = 0; i < scaled.dim(); ++i) scaled[i] *= 7;
  EXPECT_EQ(factorizer_.factorize_single(target).to_object(3),
            factorizer_.factorize_single(scaled).to_object(3));
}

}  // namespace
