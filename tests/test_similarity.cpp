// Unit tests for hdc similarity metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/random.hpp"
#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;

TEST(Similarity, DotOfKnownVectors) {
  Hypervector a{1, -1, 2};
  Hypervector b{3, 1, -1};
  EXPECT_EQ(dot(a, b), 0);
  EXPECT_EQ(dot(a, a), 6);
}

TEST(Similarity, SelfSimilarityOfBipolarIsOne) {
  Xoshiro256 rng(1);
  const Hypervector v = random_bipolar(1000, rng);
  EXPECT_DOUBLE_EQ(similarity(v, v), 1.0);
}

TEST(Similarity, RandomBipolarAreQuasiOrthogonal) {
  Xoshiro256 rng(2);
  const Hypervector a = random_bipolar(8192, rng);
  const Hypervector b = random_bipolar(8192, rng);
  // sigma = 1/sqrt(D) ~ 0.011; 5-sigma bound.
  EXPECT_LT(std::abs(similarity(a, b)), 0.056);
}

TEST(Similarity, CosineOfParallelAndOpposite) {
  Hypervector a{1, 1, 1, 1};
  Hypervector b{2, 2, 2, 2};
  EXPECT_NEAR(cosine(a, b), 1.0, 1e-12);
  Hypervector c{-1, -1, -1, -1};
  EXPECT_NEAR(cosine(a, c), -1.0, 1e-12);
}

TEST(Similarity, CosineOfZeroVectorIsZero) {
  Hypervector z(4);
  Hypervector a{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(cosine(z, a), 0.0);
}

TEST(Similarity, HammingCountsDifferences) {
  Hypervector a{1, -1, 1, 0};
  Hypervector b{1, 1, -1, 0};
  EXPECT_EQ(hamming(a, b), 2u);
  EXPECT_DOUBLE_EQ(normalized_hamming(a, b), 0.5);
}

TEST(Similarity, HammingDotIdentityOnBipolar) {
  // For bipolar HVs, dot = D - 2 * hamming.
  Xoshiro256 rng(3);
  const Hypervector a = random_bipolar(512, rng);
  const Hypervector b = random_bipolar(512, rng);
  EXPECT_EQ(dot(a, b),
            512 - 2 * static_cast<std::int64_t>(hamming(a, b)));
}

TEST(Similarity, NormOfKnownVector) {
  Hypervector v{3, 4};
  EXPECT_DOUBLE_EQ(norm(v), 5.0);
}

TEST(Similarity, MismatchedDimensionsThrow) {
  Hypervector a(4), b(8);
  EXPECT_THROW((void)dot(a, b), std::invalid_argument);
  EXPECT_THROW((void)hamming(a, b), std::invalid_argument);
}

TEST(Similarity, DotAccumulatesIn64Bit) {
  // Large-magnitude components at moderate dimension would overflow int32.
  const std::size_t d = 1000;
  Hypervector a(d), b(d);
  for (std::size_t i = 0; i < d; ++i) {
    a[i] = 100000;
    b[i] = 100000;
  }
  EXPECT_EQ(dot(a, b), static_cast<std::int64_t>(d) * 10000000000LL);
}

}  // namespace
