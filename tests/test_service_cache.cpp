// Unit tests for hdc::hash_hypervector, the request fingerprints, and the
// sharded LRU service::ResultCache.
#include <gtest/gtest.h>

#include <set>

#include "hdc/hash.hpp"
#include "hdc/random.hpp"
#include "service/result_cache.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;

core::FactorizeResult make_result(std::size_t tag) {
  core::FactorizeResult r;
  core::FactorizedObject obj;
  core::ClassFactorization cf;
  cf.cls = tag;
  cf.present = true;
  cf.path = {tag};
  obj.classes.push_back(cf);
  r.objects.push_back(obj);
  r.similarity_ops = tag * 100;
  return r;
}

TEST(HashHypervector, EqualContentHashesEqual) {
  util::Xoshiro256 rng(1);
  const hdc::Hypervector v = hdc::random_bipolar(257, rng);
  hdc::Hypervector copy = v;
  EXPECT_EQ(hdc::hash_hypervector(v), hdc::hash_hypervector(copy));
}

TEST(HashHypervector, SensitiveToEveryComponentAndToDim) {
  util::Xoshiro256 rng(2);
  const hdc::Hypervector v = hdc::random_bipolar(64, rng);
  const std::uint64_t base = hdc::hash_hypervector(v);
  for (std::size_t i = 0; i < v.dim(); ++i) {
    hdc::Hypervector flipped = v;
    flipped[i] = -flipped[i];
    EXPECT_NE(hdc::hash_hypervector(flipped), base) << "component " << i;
  }
  // A zero-padded extension is distinct content.
  std::vector<std::int32_t> padded(v.components().begin(),
                                   v.components().end());
  padded.push_back(0);
  EXPECT_NE(hdc::hash_hypervector(hdc::Hypervector(std::move(padded))), base);
  // Seed separates domains; the empty HV is defined.
  EXPECT_NE(hdc::hash_hypervector(v, 1), base);
  EXPECT_EQ(hdc::hash_hypervector(hdc::Hypervector()),
            hdc::hash_hypervector(hdc::Hypervector()));
}

TEST(HashHypervector, NoCollisionsAcrossASampledFamily) {
  util::Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(hdc::hash_hypervector(hdc::random_ternary(128, 0.5, rng)));
  }
  // Random ternary draws can repeat, but near-500 distinct hashes are
  // expected; any systematic collapse would crater this count.
  EXPECT_GT(seen.size(), 490u);
}

TEST(FingerprintOptions, DistinguishesEveryField) {
  const core::FactorizeOptions base;
  const std::uint64_t fp = service::fingerprint_options(base);
  EXPECT_EQ(service::fingerprint_options(base), fp);  // deterministic

  core::FactorizeOptions o = base;
  o.multi_object = true;
  EXPECT_NE(service::fingerprint_options(o), fp);
  o = base;
  o.threshold = 0.25;
  EXPECT_NE(service::fingerprint_options(o), fp);
  o = base;
  o.num_objects_hint = 3;
  EXPECT_NE(service::fingerprint_options(o), fp);
  o = base;
  o.max_objects = 7;
  EXPECT_NE(service::fingerprint_options(o), fp);
  o = base;
  o.selected_classes = {1};
  EXPECT_NE(service::fingerprint_options(o), fp);
  o = base;
  o.max_depth = 1;
  EXPECT_NE(service::fingerprint_options(o), fp);
  o = base;
  o.max_candidates_per_class = 2;
  EXPECT_NE(service::fingerprint_options(o), fp);
  o = base;
  o.collect_trace = true;
  EXPECT_NE(service::fingerprint_options(o), fp);
}

TEST(ResultCache, InsertLookupRoundTrip) {
  util::Xoshiro256 rng(4);
  service::ResultCache cache(16, 4);
  EXPECT_TRUE(cache.enabled());
  const hdc::Hypervector t = hdc::random_bipolar(64, rng);
  const core::FactorizeOptions opts;
  const std::uint64_t key = service::request_key(t, opts);
  EXPECT_FALSE(cache.lookup(key, t, opts).has_value());
  cache.insert(key, t, opts, make_result(1));
  const auto hit = cache.lookup(key, t, opts);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit == make_result(1));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, DifferentOptionsAreDifferentEntries) {
  util::Xoshiro256 rng(5);
  service::ResultCache cache(16, 1);
  const hdc::Hypervector t = hdc::random_bipolar(64, rng);
  core::FactorizeOptions a;
  core::FactorizeOptions b;
  b.multi_object = true;
  cache.insert(service::request_key(t, a), t, a, make_result(1));
  cache.insert(service::request_key(t, b), t, b, make_result(2));
  EXPECT_TRUE(*cache.lookup(service::request_key(t, a), t, a) ==
              make_result(1));
  EXPECT_TRUE(*cache.lookup(service::request_key(t, b), t, b) ==
              make_result(2));
}

TEST(ResultCache, FingerprintCollisionIsAMissNeverAWrongAnswer) {
  // The public API takes the key from the caller, so a collision is
  // directly constructible: two different targets filed under one key.
  util::Xoshiro256 rng(6);
  service::ResultCache cache(16, 1);
  const hdc::Hypervector a = hdc::random_bipolar(64, rng);
  const hdc::Hypervector b = hdc::random_bipolar(64, rng);
  const core::FactorizeOptions opts;
  cache.insert(42, a, opts, make_result(1));
  // Same key, different target: must miss (verification), not serve a's
  // result.
  EXPECT_FALSE(cache.lookup(42, b, opts).has_value());
  // Colliding insert overwrites; the old entry is gone, the new one valid.
  cache.insert(42, b, opts, make_result(2));
  EXPECT_FALSE(cache.lookup(42, a, opts).has_value());
  EXPECT_TRUE(*cache.lookup(42, b, opts) == make_result(2));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedPerShard) {
  util::Xoshiro256 rng(7);
  service::ResultCache cache(3, 1);  // one shard, 3 entries
  const core::FactorizeOptions opts;
  std::vector<hdc::Hypervector> ts;
  for (std::size_t i = 0; i < 4; ++i) {
    ts.push_back(hdc::random_bipolar(64, rng));
  }
  auto key = [&](std::size_t i) { return service::request_key(ts[i], opts); };
  cache.insert(key(0), ts[0], opts, make_result(0));
  cache.insert(key(1), ts[1], opts, make_result(1));
  cache.insert(key(2), ts[2], opts, make_result(2));
  // Touch 0 so 1 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(key(0), ts[0], opts).has_value());
  cache.insert(key(3), ts[3], opts, make_result(3));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_TRUE(cache.lookup(key(0), ts[0], opts).has_value());
  EXPECT_FALSE(cache.lookup(key(1), ts[1], opts).has_value()) << "LRU victim";
  EXPECT_TRUE(cache.lookup(key(2), ts[2], opts).has_value());
  EXPECT_TRUE(cache.lookup(key(3), ts[3], opts).has_value());
}

TEST(ResultCache, ZeroCapacityDisables) {
  util::Xoshiro256 rng(8);
  service::ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.capacity(), 0u);
  const hdc::Hypervector t = hdc::random_bipolar(64, rng);
  const core::FactorizeOptions opts;
  cache.insert(1, t, opts, make_result(1));
  EXPECT_FALSE(cache.lookup(1, t, opts).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, ShardingPreservesCapacityAndClearWorks) {
  // 10 entries over 4 shards: the budget distributes exactly (3+3+2+2),
  // so the aggregate bound is the requested 10 — not the rounded-up 12
  // the old ceil(capacity/shards) per-shard cap allowed.
  service::ResultCache cache(10, 4);
  EXPECT_EQ(cache.capacity(), 10u);
  util::Xoshiro256 rng(9);
  const core::FactorizeOptions opts;
  std::vector<hdc::Hypervector> ts;
  for (std::size_t i = 0; i < 40; ++i) {
    ts.push_back(hdc::random_bipolar(32, rng));
    cache.insert(service::request_key(ts.back(), opts), ts.back(), opts,
                 make_result(i));
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  // Shard count larger than capacity is clamped (1 entry per shard).
  service::ResultCache tiny(2, 64);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(ResultCache, AggregateNeverExceedsCapacityWhenEveryShardOverfills) {
  // Regression for the ceil-rounding bug: with a capacity that does not
  // divide the shard count, round-up per-shard caps let the aggregate
  // reach shards * ceil(capacity/shards) > capacity once every shard
  // filled. Over-fill every shard by an order of magnitude and assert the
  // exact bound holds for several (capacity, shards) shapes.
  util::Xoshiro256 rng(10);
  const core::FactorizeOptions opts;
  const struct {
    std::size_t capacity;
    std::size_t shards;
  } shapes[] = {{10, 4}, {7, 3}, {5, 8}, {16, 16}, {9, 2}, {1, 1}};
  for (const auto& shape : shapes) {
    SCOPED_TRACE("capacity=" + std::to_string(shape.capacity) +
                 " shards=" + std::to_string(shape.shards));
    service::ResultCache cache(shape.capacity, shape.shards);
    EXPECT_EQ(cache.capacity(), shape.capacity);
    for (std::size_t i = 0; i < shape.capacity * 10 + 50; ++i) {
      const hdc::Hypervector t = hdc::random_bipolar(32, rng);
      cache.insert(service::request_key(t, opts), t, opts, make_result(i));
      ASSERT_LE(cache.size(), cache.capacity());
    }
    // A well-hashed fill should also come close to the bound from below:
    // every shard holds at least one entry after this many inserts.
    EXPECT_GE(cache.size(), std::min(shape.capacity, shape.shards));
  }
}

}  // namespace
