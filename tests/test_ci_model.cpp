// Unit tests for the C-I (class-instance) baseline, including explicit
// demonstrations of the superposition catastrophe and the problem of 2.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/ci_model.hpp"
#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using baselines::CIModel;

TEST(CIModel, SingleObjectFactorizationIsAccurate) {
  util::Xoshiro256 rng(1);
  const CIModel m(512, 3, 16, rng);
  int correct = 0;
  for (int t = 0; t < 30; ++t) {
    std::vector<std::size_t> truth{rng.uniform(16), rng.uniform(16),
                                   rng.uniform(16)};
    std::uint64_t ops = 0;
    if (m.factorize_single(m.encode(truth), &ops) == truth) ++correct;
    EXPECT_EQ(ops, 3u * 16u);
  }
  EXPECT_GE(correct, 29);
}

TEST(CIModel, PartialFactorizationOfOneClass) {
  util::Xoshiro256 rng(2);
  const CIModel m(512, 3, 16, rng);
  const std::vector<std::size_t> truth{4, 9, 12};
  std::uint64_t ops = 0;
  EXPECT_EQ(m.factorize_class(m.encode(truth), 1, &ops), 9u);
  EXPECT_EQ(ops, 16u);
}

TEST(CIModel, SceneSetsRecoverPerClassItems) {
  util::Xoshiro256 rng(3);
  const CIModel m(4096, 3, 16, rng);
  const std::vector<std::vector<std::size_t>> objects{{1, 2, 3}, {4, 5, 6}};
  const auto sets = m.factorize_scene_sets(m.encode_scene(objects), 2);
  ASSERT_EQ(sets.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    ASSERT_EQ(sets[c].size(), 2u);
    const bool has_first = std::find(sets[c].begin(), sets[c].end(),
                                     objects[0][c]) != sets[c].end();
    const bool has_second = std::find(sets[c].begin(), sets[c].end(),
                                      objects[1][c]) != sets[c].end();
    EXPECT_TRUE(has_first && has_second) << "class " << c;
  }
}

// The superposition catastrophe: per-class sets carry no information about
// which items belong to the same object. The two candidate associations of
// the recovered sets are indistinguishable from the encoding itself: swapping
// fillers between objects produces exactly the same bundle.
TEST(CIModel, SuperpositionCatastropheIsStructural) {
  util::Xoshiro256 rng(4);
  const CIModel m(1024, 2, 8, rng);
  // Objects (a0, b0) and (a1, b1) vs swapped (a0, b1) and (a1, b0):
  const std::vector<std::vector<std::size_t>> straight{{0, 0}, {1, 1}};
  const std::vector<std::vector<std::size_t>> swapped{{0, 1}, {1, 0}};
  EXPECT_EQ(m.encode_scene(straight), m.encode_scene(swapped));
}

// The problem of 2: duplicate objects scale the bundle but cleanup
// similarity ranking cannot distinguish {x, x} from {x}: the top-2 items of
// each class are the true item plus an arbitrary noise item.
TEST(CIModel, ProblemOfTwoLosesMultiplicity) {
  util::Xoshiro256 rng(5);
  const CIModel m(4096, 2, 8, rng);
  const std::vector<std::size_t> obj{3, 5};
  const auto two_copies = m.encode_scene({obj, obj});
  const auto one_copy = m.encode(obj);
  // The doubled bundle is exactly colinear with the single object: cosine 1.
  EXPECT_NEAR(hdc::cosine(two_copies, one_copy), 1.0, 1e-12);
  // Asking for 2 objects returns one real item and one spurious one.
  const auto sets = m.factorize_scene_sets(two_copies, 2);
  EXPECT_EQ(sets[0][0], 3u);
  EXPECT_EQ(sets[1][0], 5u);
}

TEST(CIModel, InvalidInputsThrow) {
  util::Xoshiro256 rng(6);
  EXPECT_THROW(CIModel(256, 0, 8, rng), std::invalid_argument);
  const CIModel m(256, 3, 8, rng);
  EXPECT_THROW((void)m.encode({0, 1}), std::invalid_argument);
  EXPECT_THROW((void)m.encode_scene({}), std::invalid_argument);
  EXPECT_THROW((void)m.role(3), std::out_of_range);
}

}  // namespace
