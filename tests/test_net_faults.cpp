// Fault-injection suite for net::NetServer over real sockets.
//
// Everything here attacks the server the way a broken or hostile client
// would — trickled partial frames (slow loris), mid-request disconnects,
// pipelined bursts past the admission quota, garbage bytes — and asserts
// the server's contract: misbehaving connections are shed (with accurate
// counters and exactly-once admission-slot release), well-behaved ones are
// unaffected, and shutdown drains every admitted request. The suite name
// (NetFaults) is matched by the TSan job / `check.sh --tsan`, so every
// cross-thread path (loop / dispatcher / completion workers) runs under
// the race detector.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "net/net.hpp"
#include "service/service.hpp"
#include "taxonomy/generator.hpp"

namespace {

using namespace factorhd;
using namespace std::chrono_literals;

/// Polls `pred` until true or `timeout` expires (server counters are
/// updated on the loop thread; tests must wait, not assume).
bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds timeout = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

class NetFaults : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 512;

  void SetUp() override {
    util::Xoshiro256 rng(4242);
    model_ = service::Model::make(
        "faults", tax::TaxonomyCodebooks(tax::Taxonomy(3, {8, 4}), kDim, rng));
    const tax::Taxonomy& taxonomy = model_->books().taxonomy();
    target_ = model_->encoder().encode_object(tax::random_object(taxonomy, rng));
  }

  /// Engine whose micro-batcher HOLDS requests (long flush deadline, large
  /// batch) so in-flight state is observable from the outside.
  [[nodiscard]] std::unique_ptr<service::FactorizationEngine> slow_engine() {
    return std::make_unique<service::FactorizationEngine>(
        model_, service::ServiceOptions{.max_batch = 1024,
                                        .max_delay_us = 200'000,
                                        .cache_capacity = 0});
  }

  /// Engine that answers promptly.
  [[nodiscard]] std::unique_ptr<service::FactorizationEngine> fast_engine() {
    return std::make_unique<service::FactorizationEngine>(
        model_, service::ServiceOptions{.max_batch = 1,
                                        .max_delay_us = 0,
                                        .cache_capacity = 0});
  }

  std::shared_ptr<const service::Model> model_;
  hdc::Hypervector target_;
};

// ---------------------------------------------------------------------------
// Slow loris: a partial frame trickled (or stalled) forever must hit the
// idle timeout — progress is protocol progress, not socket activity.
// ---------------------------------------------------------------------------

TEST_F(NetFaults, SlowLorisPartialHeaderTimesOut) {
  auto engine = fast_engine();
  net::ServerOptions opts;
  opts.idle_timeout_ms = 300;
  net::NetServer server(*engine, opts);
  server.start();

  net::NetClient loris("127.0.0.1", server.port());
  // Half a header, then silence.
  const std::uint8_t partial[] = {0x46, 0x48, 0x4E, 0x31, 0x01, 0x00};
  loris.send_raw(partial);

  EXPECT_TRUE(eventually(
      [&] { return server.counters().disconnects_idle >= 1; }))
      << "slow-loris connection was not shed";
  // The server closed us: the next read sees EOF.
  loris.set_recv_timeout(5s);
  EXPECT_THROW((void)loris.recv_response(), std::runtime_error);

  // A healthy client on the same server is unaffected afterwards.
  net::NetClient healthy("127.0.0.1", server.port());
  const core::FactorizeResult r = healthy.factorize(target_);
  EXPECT_TRUE(r == model_->factorizer().factorize(target_, {}));
  server.stop();
}

TEST_F(NetFaults, IdleConnectionWithNoBytesTimesOut) {
  auto engine = fast_engine();
  net::ServerOptions opts;
  opts.idle_timeout_ms = 200;
  net::NetServer server(*engine, opts);
  server.start();

  net::NetClient idle("127.0.0.1", server.port());
  EXPECT_TRUE(eventually(
      [&] { return server.counters().disconnects_idle >= 1; }));
  server.stop();
}

// ---------------------------------------------------------------------------
// Mid-request disconnect: the client vanishes while its request is in
// flight. The response is dropped (not delivered, not leaked) and the
// admission slot is released — the accounting a stuck quota would betray.
// ---------------------------------------------------------------------------

TEST_F(NetFaults, MidRequestDisconnectDropsResponseAndReleasesSlot) {
  auto engine = slow_engine();
  net::NetServer server(*engine, {});
  server.start();

  {
    net::NetClient doomed("127.0.0.1", server.port());
    (void)doomed.send_factorize(target_);
    // Wait until the request is admitted, then vanish.
    ASSERT_TRUE(eventually(
        [&] { return server.admission_stats().admitted >= 1; }));
  }  // ~NetClient closes the socket with the request still in flight

  EXPECT_TRUE(eventually(
      [&] { return server.counters().responses_dropped >= 1; }))
      << "response for the vanished client was not accounted as dropped";

  // The slot was released: a fresh client can run a full quota's worth of
  // requests through the same server.
  net::NetClient fresh("127.0.0.1", server.port());
  fresh.set_recv_timeout(10s);
  const core::FactorizeResult r = fresh.factorize(target_);
  EXPECT_TRUE(r == model_->factorizer().factorize(target_, {}));
  server.stop();
}

// ---------------------------------------------------------------------------
// Admission control: pipelined bursts past the bounds answer explicit
// kOverload frames, and admitted + rejected == sent, exactly.
// ---------------------------------------------------------------------------

TEST_F(NetFaults, PipelinedBurstPastQuotaAnswersOverload) {
  auto engine = slow_engine();  // holds requests so in-flight accumulates
  net::ServerOptions opts;
  opts.admission.depth = 64;
  opts.admission.client_quota = 2;
  net::NetServer server(*engine, opts);
  server.start();

  net::NetClient client("127.0.0.1", server.port());
  client.set_recv_timeout(10s);
  constexpr std::size_t kSent = 6;
  for (std::size_t i = 0; i < kSent; ++i) {
    (void)client.send_factorize(target_);
  }

  std::size_t results = 0;
  std::size_t overloads = 0;
  for (std::size_t i = 0; i < kSent; ++i) {
    const net::NetClient::Response resp = client.recv_response();
    if (resp.kind == net::NetClient::Response::Kind::kResult) {
      ++results;
      EXPECT_TRUE(resp.result == model_->factorizer().factorize(target_, {}));
    } else {
      ASSERT_EQ(resp.kind, net::NetClient::Response::Kind::kOverload);
      EXPECT_EQ(resp.overload.code, net::OverloadCode::kQuotaExceeded);
      EXPECT_EQ(resp.overload.limit, 2u);
      ++overloads;
    }
  }
  // The burst lands while the slow engine holds the first two, so at least
  // quota-many succeed and at least one is rejected; every send is
  // accounted exactly once.
  EXPECT_GE(results, 2u);
  EXPECT_GE(overloads, 1u);
  EXPECT_EQ(results + overloads, kSent);

  const net::AdmissionStats stats = server.admission_stats();
  EXPECT_EQ(stats.admitted, results);
  EXPECT_EQ(stats.rejected_quota, overloads);
  EXPECT_EQ(stats.rejected_full, 0u);
  EXPECT_EQ(stats.admitted + stats.rejected_quota + stats.rejected_full, kSent);
  server.stop();
}

TEST_F(NetFaults, QueueFullAnswersOverload) {
  auto engine = slow_engine();
  net::ServerOptions opts;
  opts.admission.depth = 1;
  opts.admission.client_quota = 64;
  net::NetServer server(*engine, opts);
  server.start();

  net::NetClient client("127.0.0.1", server.port());
  client.set_recv_timeout(10s);
  constexpr std::size_t kSent = 5;
  for (std::size_t i = 0; i < kSent; ++i) {
    (void)client.send_factorize(target_);
  }
  std::size_t results = 0;
  std::size_t full = 0;
  for (std::size_t i = 0; i < kSent; ++i) {
    const net::NetClient::Response resp = client.recv_response();
    if (resp.kind == net::NetClient::Response::Kind::kResult) {
      ++results;
    } else {
      ASSERT_EQ(resp.kind, net::NetClient::Response::Kind::kOverload);
      EXPECT_EQ(resp.overload.code, net::OverloadCode::kQueueFull);
      ++full;
    }
  }
  EXPECT_EQ(results + full, kSent);
  // depth=1 and a held engine: the burst cannot all fit.
  EXPECT_GE(full, 1u);
  const net::AdmissionStats stats = server.admission_stats();
  EXPECT_EQ(stats.rejected_full, full);
  EXPECT_EQ(stats.admitted, results);
  server.stop();
}

// ---------------------------------------------------------------------------
// Garbage on the wire: one best-effort kError frame, then disconnect —
// never a crash, never a hang, and the parser never resynchronizes into
// a half-broken stream.
// ---------------------------------------------------------------------------

TEST_F(NetFaults, GarbageBytesAnswerErrorThenDisconnect) {
  auto engine = fast_engine();
  net::NetServer server(*engine, {});
  server.start();

  net::NetClient vandal("127.0.0.1", server.port());
  vandal.set_recv_timeout(5s);
  const std::uint8_t garbage[] = {0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE,
                                  0xEF, 0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD,
                                  0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF, 0xDE,
                                  0xAD, 0xBE, 0xEF};
  vandal.send_raw(garbage);

  const net::NetClient::Response resp = vandal.recv_response();
  ASSERT_EQ(resp.kind, net::NetClient::Response::Kind::kError);
  EXPECT_EQ(resp.error_code, net::ErrorCode::kBadFrame);
  EXPECT_THROW((void)vandal.recv_response(), std::runtime_error);  // EOF
  EXPECT_TRUE(eventually(
      [&] { return server.counters().disconnects_protocol >= 1; }));

  // Other connections are untouched.
  net::NetClient healthy("127.0.0.1", server.port());
  const core::FactorizeResult r = healthy.factorize(target_);
  EXPECT_TRUE(r == model_->factorizer().factorize(target_, {}));
  server.stop();
}

TEST_F(NetFaults, CorruptChecksumAnswersErrorThenDisconnect) {
  auto engine = fast_engine();
  net::NetServer server(*engine, {});
  server.start();

  net::NetClient client("127.0.0.1", server.port());
  client.set_recv_timeout(5s);
  const std::uint8_t payload[] = {1, 2, 3, 4};
  auto frame = net::encode_frame(net::Opcode::kPing, 0, 9, payload);
  frame[net::kHeaderSize] ^= 0x01;  // payload bit flip
  client.send_raw(frame);

  const net::NetClient::Response resp = client.recv_response();
  ASSERT_EQ(resp.kind, net::NetClient::Response::Kind::kError);
  EXPECT_EQ(resp.error_code, net::ErrorCode::kBadFrame);
  EXPECT_THROW((void)client.recv_response(), std::runtime_error);
  server.stop();
}

TEST_F(NetFaults, UnknownOpcodeKeepsTheConnection) {
  auto engine = fast_engine();
  net::NetServer server(*engine, {});
  server.start();

  net::NetClient client("127.0.0.1", server.port());
  client.set_recv_timeout(5s);
  auto frame = net::encode_frame(net::Opcode::kPing, 0, 11, {});
  frame[4] = 0x0F;  // a request-range opcode the server does not speak
  client.send_raw(frame);

  const net::NetClient::Response resp = client.recv_response();
  ASSERT_EQ(resp.kind, net::NetClient::Response::Kind::kError);
  EXPECT_EQ(resp.error_code, net::ErrorCode::kUnknownOpcode);
  // Not fatal: the same connection still factorizes.
  const core::FactorizeResult r = client.factorize(target_);
  EXPECT_TRUE(r == model_->factorizer().factorize(target_, {}));
  server.stop();
}

TEST_F(NetFaults, DimensionMismatchAnswersTypedError) {
  auto engine = fast_engine();
  net::NetServer server(*engine, {});
  server.start();

  net::NetClient client("127.0.0.1", server.port());
  client.set_recv_timeout(5s);
  try {
    (void)client.factorize(hdc::Hypervector({1, -1, 1, -1}));
    FAIL() << "dimension mismatch was accepted";
  } catch (const net::ServerError& e) {
    EXPECT_EQ(e.code(), net::ErrorCode::kDimensionMismatch);
  }
  // The connection survives a rejected request.
  const core::FactorizeResult r = client.factorize(target_);
  EXPECT_TRUE(r == model_->factorizer().factorize(target_, {}));
  server.stop();
}

// ---------------------------------------------------------------------------
// Shutdown drains: every admitted request is answered before the listener
// goes away; nothing is silently dropped and nothing hangs.
// ---------------------------------------------------------------------------

TEST_F(NetFaults, StopDrainsInFlightRequests) {
  auto engine = slow_engine();  // requests are in flight when stop() lands
  net::NetServer server(*engine, {});
  server.start();

  net::NetClient client("127.0.0.1", server.port());
  client.set_recv_timeout(10s);
  constexpr std::size_t kSent = 4;
  for (std::size_t i = 0; i < kSent; ++i) {
    (void)client.send_factorize(target_);
  }
  ASSERT_TRUE(eventually(
      [&] { return server.admission_stats().admitted >= kSent; }));

  std::thread stopper([&] { server.stop(); });
  const core::FactorizeResult expected =
      model_->factorizer().factorize(target_, {});
  for (std::size_t i = 0; i < kSent; ++i) {
    const net::NetClient::Response resp = client.recv_response();
    ASSERT_EQ(resp.kind, net::NetClient::Response::Kind::kResult)
        << "in-flight request " << i << " was not drained";
    EXPECT_TRUE(resp.result == expected);
  }
  stopper.join();
  EXPECT_FALSE(server.running());
}

TEST_F(NetFaults, RequestsAfterDrainStartAreRejectedShuttingDown) {
  auto engine = slow_engine();
  net::NetServer server(*engine, {});
  server.start();

  net::NetClient client("127.0.0.1", server.port());
  client.set_recv_timeout(10s);
  (void)client.send_factorize(target_);
  ASSERT_TRUE(eventually(
      [&] { return server.admission_stats().admitted >= 1; }));

  std::thread stopper([&] { server.stop(); });
  // Responses during the drain are either the real result or a typed
  // kShuttingDown error for frames landing after the drain began — but
  // never silence.
  std::size_t seen = 0;
  try {
    while (seen < 1) {
      const net::NetClient::Response resp = client.recv_response();
      ASSERT_TRUE(resp.kind == net::NetClient::Response::Kind::kResult ||
                  (resp.kind == net::NetClient::Response::Kind::kError &&
                   resp.error_code == net::ErrorCode::kShuttingDown));
      ++seen;
    }
  } catch (const std::runtime_error&) {
    // EOF after the drain finished is also a clean outcome.
  }
  stopper.join();
  EXPECT_GE(seen, 1u);
}

// ---------------------------------------------------------------------------
// Poller parity: the poll(2) fallback sheds faults exactly like epoll.
// ---------------------------------------------------------------------------

TEST_F(NetFaults, PollFallbackShedsSlowLorisToo) {
  auto engine = fast_engine();
  net::ServerOptions opts;
  opts.prefer_epoll = false;
  opts.idle_timeout_ms = 300;
  net::NetServer server(*engine, opts);
  server.start();
  EXPECT_STREQ(server.poller_name(), "poll");

  net::NetClient loris("127.0.0.1", server.port());
  const std::uint8_t partial[] = {0x46, 0x48};
  loris.send_raw(partial);
  EXPECT_TRUE(eventually(
      [&] { return server.counters().disconnects_idle >= 1; }));

  net::NetClient healthy("127.0.0.1", server.port());
  const core::FactorizeResult r = healthy.factorize(target_);
  EXPECT_TRUE(r == model_->factorizer().factorize(target_, {}));
  server.stop();
}

}  // namespace
