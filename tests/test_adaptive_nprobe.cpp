// Adaptive tiered probing (TieredConfig::nprobe_min / nprobe_max).
//
// With adaptive probing enabled, the per-query probe count is derived from
// the stage-1 centroid-score margin instead of being fixed: at least
// nprobe_min buckets are always probed, then every further centroid within
// ~3 noise standard deviations of the best one, up to nprobe_max. This
// suite pins the properties that make the feature safe to enable:
//
//  * metamorphic rank safety — an adaptive scan may MISS rows an exact scan
//    would return, but it can never mis-rank the rows it does scan: every
//    adaptive result list is a subsequence of the exact full ranking under
//    hdc::match_order (candidate rows always get the exact kernel dot);
//  * the verification bound — nprobe_min >= K degenerates to the exact full
//    scan, bit-identical to PackedItemMemory on every surface (the same
//    bound tests/test_kernel_fuzz.cpp pins for fixed nprobe >= K);
//  * seeded recall — on the bench-style noisy-cleanup workload the margin
//    rule keeps recall@1 >= 0.99 while probing far fewer buckets on average
//    than the fixed auto nprobe;
//  * deterministic accounting — ScanStats.probes is a pure function of
//    (index, query), so concurrent scans (the BatchFactorizer worker shape)
//    report identical per-query stats;
//  * the k = 0 / k > M regressions on all three ItemMemory backends — k = 0
//    used to reach the tiered empty-candidate exact-scan fallback and scan
//    the whole memory for an empty result.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"
#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/match.hpp"
#include "hdc/random.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;
using kernels::PackedItemMemory;
using kernels::PackedQuery;
using kernels::TieredConfig;
using kernels::TieredItemMemory;

void expect_same_matches(const std::vector<Match>& ref,
                         const std::vector<Match>& got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].index, got[i].index) << "position " << i;
    EXPECT_EQ(ref[i].similarity, got[i].similarity) << "position " << i;
  }
}

TEST(AdaptiveNprobe, ResolvedBoundsAndExactness) {
  Xoshiro256 rng(1);
  const Codebook cb(256, 64, rng);

  // Disabled by default: fixed probing, no adaptive bounds.
  const TieredItemMemory fixed(cb, TieredConfig{.clusters = 16, .nprobe = 2});
  EXPECT_FALSE(fixed.adaptive());
  EXPECT_EQ(fixed.nprobe_min(), 0u);
  EXPECT_EQ(fixed.nprobe_max(), 0u);

  // nprobe_max alone enables it; the floor autos to max(1, nprobe / 8).
  const TieredItemMemory adaptive(
      cb, TieredConfig{.clusters = 16, .nprobe = 8, .nprobe_max = 12});
  EXPECT_TRUE(adaptive.adaptive());
  EXPECT_EQ(adaptive.nprobe_min(), 1u);
  EXPECT_EQ(adaptive.nprobe_max(), 12u);
  EXPECT_FALSE(adaptive.exact());

  // The ceiling is clamped to K and never drops below the floor.
  const TieredItemMemory clamped(
      cb, TieredConfig{.clusters = 16, .nprobe_min = 10, .nprobe_max = 1000});
  EXPECT_EQ(clamped.nprobe_min(), 10u);
  EXPECT_EQ(clamped.nprobe_max(), 16u);

  // Floor >= K forces every scan exact (the verification bound knob).
  const TieredItemMemory exact(
      cb, TieredConfig{.clusters = 16, .nprobe_min = 64, .nprobe_max = 64});
  EXPECT_TRUE(exact.adaptive());
  EXPECT_TRUE(exact.exact());
}

TEST(AdaptiveNprobe, RankSafeSubsequenceOfExactRanking) {
  // Metamorphic property over an aggressive (miss-prone) adaptive config:
  // every adaptive top_k / above / best result is a subsequence of the exact
  // full ranking — misses allowed, mis-ranking never. hdc::match_order is a
  // strict total order (similarity desc, index asc), so ranks are unique and
  // "subsequence" is well-defined even on tie-heavy codebooks.
  Xoshiro256 rng(20260808);
  for (int round = 0; round < 8; ++round) {
    const std::size_t dim = 192 + rng.uniform(129);
    const std::size_t size = 200 + rng.uniform(312);
    const Codebook cb(dim, size, rng);
    const TieredItemMemory tiered(
        cb, TieredConfig{.clusters = 1 + rng.uniform(32),
                         .nprobe_min = 1,
                         .nprobe_max = 1 + rng.uniform(4)});
    ASSERT_TRUE(tiered.adaptive());
    const PackedItemMemory& exact = tiered.rows();
    for (int qi = 0; qi < 6; ++qi) {
      const Hypervector query =
          qi % 2 == 0 ? flip_noise(cb.item(rng.uniform(size)), 0.1, rng)
                      : random_bipolar(dim, rng);
      const auto pq = PackedQuery::pack(query, tiered.simd_level());
      ASSERT_TRUE(pq.has_value());
      // Exact full ranking, position by row index.
      const std::vector<Match> full = exact.top_k(*pq, size);
      std::vector<std::size_t> rank(size);
      for (std::size_t r = 0; r < size; ++r) rank[full[r].index] = r;

      TieredItemMemory::ScanStats stats;
      const std::vector<Match> got = tiered.top_k(*pq, size / 2, &stats);
      EXPECT_GE(stats.probes, tiered.nprobe_min());
      EXPECT_LE(stats.probes, tiered.nprobe_max());
      std::size_t prev = 0;
      for (std::size_t i = 0; i < got.size(); ++i) {
        // Exact similarity for the row it names...
        EXPECT_EQ(got[i].similarity, full[rank[got[i].index]].similarity);
        // ...and strictly increasing exact rank: a subsequence.
        if (i > 0) {
          EXPECT_GT(rank[got[i].index], prev) << "position " << i;
        }
        prev = rank[got[i].index];
      }

      // best() is the head of its own top_k and rank-consistent too.
      const Match best = tiered.best(*pq);
      if (!got.empty()) {
        EXPECT_EQ(best.index, got.front().index);
        EXPECT_EQ(best.similarity, got.front().similarity);
      }
      for (const Match& m : tiered.above(*pq, 0.05)) {
        EXPECT_EQ(m.similarity, full[rank[m.index]].similarity);
        EXPECT_GT(m.similarity, 0.05);
      }
    }
  }
}

TEST(AdaptiveNprobe, FloorAtClustersIsBitIdenticalToPacked) {
  // nprobe_min == K: the adaptive index must reproduce PackedItemMemory
  // bit-for-bit on every surface — index, similarity, ordering — including
  // tie-heavy codebooks, exactly like the fixed nprobe >= K bound.
  Xoshiro256 rng(20260809);
  for (int round = 0; round < 6; ++round) {
    const std::size_t dim = 63 + rng.uniform(200);
    const std::size_t size = 1 + rng.uniform(60);
    // Half the rounds tie-heavy: a few distinct rows repeated.
    std::vector<Hypervector> items;
    if (round % 2 == 0) {
      std::vector<Hypervector> base;
      for (std::size_t i = 0; i < 1 + rng.uniform(3); ++i) {
        base.push_back(random_bipolar(dim, rng));
      }
      for (std::size_t i = 0; i < size; ++i) {
        items.push_back(base[rng.uniform(base.size())]);
      }
    } else {
      for (std::size_t i = 0; i < size; ++i) {
        items.push_back(random_bipolar(dim, rng));
      }
    }
    const Codebook cb(std::move(items));
    const TieredItemMemory tiered(
        cb, TieredConfig{.clusters = 1 + rng.uniform(size),
                         .nprobe_min = size,
                         .nprobe_max = size});
    ASSERT_TRUE(tiered.exact());
    const PackedItemMemory ref(cb);
    for (int qi = 0; qi < 4; ++qi) {
      const Hypervector query = qi == 0 ? cb.item(rng.uniform(size))
                                        : random_bipolar(dim, rng);
      const auto pq = PackedQuery::pack(query, tiered.simd_level());
      ASSERT_TRUE(pq.has_value());
      const Match rb = ref.best(*pq);
      const Match tb = tiered.best(*pq);
      EXPECT_EQ(rb.index, tb.index);
      EXPECT_EQ(rb.similarity, tb.similarity);
      for (double th : {-2.0, rb.similarity, rb.similarity / 2.0}) {
        expect_same_matches(ref.above(*pq, th), tiered.above(*pq, th));
      }
      expect_same_matches(ref.top_k(*pq, 1 + size / 2),
                          tiered.top_k(*pq, 1 + size / 2));
    }
  }
}

TEST(AdaptiveNprobe, SeededRecallOnNoisyCleanupQueries) {
  // The bench-style workload at test scale: M = 4096 rows, noisy cleanup
  // queries (2% bit flips of a stored row). With the margin rule under a
  // ceiling of half the fixed auto nprobe (= K/16), recall@1 must stay
  // >= 0.99 while the mean probe count lands well under the ceiling —
  // confident queries stop at the margin cut, only ambiguous ones pay it.
  Xoshiro256 rng(20260810);
  const std::size_t dim = 2048;
  const std::size_t size = 4096;
  const Codebook cb(dim, size, rng);
  const TieredItemMemory tiered(cb, TieredConfig{.nprobe_max = 8});
  ASSERT_TRUE(tiered.adaptive());
  EXPECT_EQ(tiered.nprobe_max(), 8u);
  EXPECT_EQ(tiered.nprobe(), 16u);  // the fixed auto probe count it replaces

  const std::size_t queries = 200;
  std::size_t hits = 0;
  std::uint64_t probes = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    const std::size_t truth = rng.uniform(size);
    const Hypervector query = flip_noise(cb.item(truth), 0.02, rng);
    TieredItemMemory::ScanStats stats;
    if (tiered.best(query, &stats).index == truth) ++hits;
    probes += stats.probes;
  }
  const double recall = static_cast<double>(hits) / queries;
  const double mean_probes = static_cast<double>(probes) / queries;
  EXPECT_GE(recall, 0.99) << "mean probes " << mean_probes;
  // Fixed probing would pay K/16 buckets per query; the margin rule must
  // beat half of that on this confident workload.
  const double fixed = static_cast<double>(tiered.nprobe());
  EXPECT_LE(mean_probes, fixed / 2.0) << "fixed nprobe " << fixed;
  EXPECT_GE(mean_probes, static_cast<double>(tiered.nprobe_min()));
}

TEST(AdaptiveNprobe, ProbeAccountingDeterministicUnderConcurrentScans) {
  // ScanStats (probes included) is a pure function of (index, query):
  // concurrent workers re-scanning the same queries — the BatchFactorizer
  // shape — must observe byte-identical per-query stats and results.
  Xoshiro256 rng(20260811);
  const std::size_t dim = 512;
  const std::size_t size = 1024;
  const Codebook cb(dim, size, rng);
  const TieredItemMemory tiered(
      cb, TieredConfig{.nprobe_min = 1, .nprobe_max = 8});
  std::vector<Hypervector> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(flip_noise(cb.item(rng.uniform(size)), 0.05, rng));
  }
  // Sequential reference.
  std::vector<TieredItemMemory::ScanStats> ref_stats(queries.size());
  std::vector<Match> ref_best(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ref_best[i] = tiered.best(queries[i], &ref_stats[i]);
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (int rep = 0; rep < 8; ++rep) {
        for (std::size_t i = 0; i < queries.size(); ++i) {
          TieredItemMemory::ScanStats stats;
          const Match got = tiered.best(queries[i], &stats);
          if (got.index != ref_best[i].index ||
              got.similarity != ref_best[i].similarity ||
              stats.centroid_dots != ref_stats[i].centroid_dots ||
              stats.row_dots != ref_stats[i].row_dots ||
              stats.probes != ref_stats[i].probes) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(AdaptiveNprobe, TopKZeroAndOversizedOnEveryBackend) {
  // Regression: k = 0 on the tiered backend used to fall into the
  // empty-candidate exact-scan fallback — a full-memory scan for an empty
  // result, with the measurement counter charged accordingly. Every backend
  // must return empty at zero cost; k > M stays exact where the backend is.
  Xoshiro256 rng(20260812);
  const std::size_t dim = 256;
  const std::size_t size = 64;
  const Codebook cb(dim, size, rng);
  const ItemMemory scalar(cb, ScanBackend::kScalar);
  const ItemMemory packed(cb, ScanBackend::kPacked);
  const ItemMemory tiered(cb, ScanBackend::kTiered,
                          TieredConfig{.clusters = 16, .nprobe = 1});
  const Hypervector query = flip_noise(cb.item(3), 0.05, rng);

  for (const ItemMemory* memory : {&scalar, &packed, &tiered}) {
    for (ScanMode mode : {ScanMode::kDefault, ScanMode::kExact}) {
      std::uint64_t scanned = ~std::uint64_t{0};
      EXPECT_TRUE(memory->top_k(query, 0, mode, &scanned).empty());
      EXPECT_EQ(scanned, 0u);
    }
  }
  // TieredItemMemory itself: k = 0 neither probes nor scans.
  TieredItemMemory::ScanStats stats;
  EXPECT_TRUE(tiered.tiered()->top_k(query, 0, &stats).empty());
  EXPECT_EQ(stats.centroid_dots, 0u);
  EXPECT_EQ(stats.row_dots, 0u);
  EXPECT_EQ(stats.probes, 0u);

  // k > M: the exact backends return the full ranking, identically; the
  // tiered default may return fewer rows (probed buckets only) but ranks
  // them consistently, and kExact restores the full ranking.
  const std::vector<Match> full = scalar.top_k(query, size + 7);
  ASSERT_EQ(full.size(), size);
  expect_same_matches(full, packed.top_k(query, size + 7));
  expect_same_matches(full, tiered.top_k(query, size + 7, ScanMode::kExact));
  EXPECT_LE(tiered.top_k(query, size + 7).size(), size);
}

}  // namespace
