// Concurrency soak for service::FactorizationEngine — the suite the
// ThreadSanitizer CI job runs over the serving runtime.
//
// N producer threads hammer one engine with a duplicate-heavy workload
// while a poller thread snapshots metrics; afterwards every future must be
// fulfilled with a result bit-identical to direct factorization
// (cache-hit determinism), the queue fully drained, and the counters
// consistent. A second scenario soaks the reject-mode backpressure path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/factorhd.hpp"
#include "service/service.hpp"

namespace {

using namespace factorhd;

class ServiceSoak : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Xoshiro256 rng(99);
    model_ = service::Model::make(
        "soak", tax::TaxonomyCodebooks(tax::Taxonomy(3, {8}), 512, rng));
    // A small pool of targets, so concurrent producers constantly submit
    // duplicates — the adversarial case for coalescing + caching.
    const tax::Taxonomy& taxonomy = model_->books().taxonomy();
    for (std::size_t i = 0; i < 8; ++i) {
      targets_.push_back(model_->encoder().encode_object(
          tax::random_object(taxonomy, rng)));
      expected_.push_back(model_->factorizer().factorize(targets_[i], {}));
    }
  }

  std::shared_ptr<const service::Model> model_;
  std::vector<hdc::Hypervector> targets_;
  std::vector<core::FactorizeResult> expected_;
};

TEST_F(ServiceSoak, ProducersPollerAndDrainInvariants) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 150;
  service::FactorizationEngine engine(model_, {.max_batch = 16,
                                               .max_delay_us = 200,
                                               .queue_capacity = 64,
                                               .dispatchers = 2,
                                               .cache_capacity = 32});

  std::vector<std::vector<std::future<core::FactorizeResult>>> futures(
      kProducers);
  std::atomic<bool> polling{true};
  std::thread poller([&] {
    // Metrics must be safely snapshotable while serving (and the snapshot
    // internally consistent enough to never over-count completions).
    while (polling.load(std::memory_order_relaxed)) {
      const auto m = engine.metrics();
      EXPECT_LE(m.completed, m.submitted);
      EXPECT_LE(m.cache_hits + m.cache_misses, m.submitted);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kPerProducer);
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        futures[p].push_back(
            engine.submit(targets_[(p + 3 * i) % targets_.size()]));
      }
    });
  }
  for (auto& t : producers) t.join();
  engine.stop();
  polling.store(false, std::memory_order_relaxed);
  poller.join();

  // Drained-queue invariants.
  const auto m = engine.metrics();
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(m.submitted, kProducers * kPerProducer);
  EXPECT_EQ(m.completed, m.submitted);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.cache_hits + m.cache_misses, m.submitted);
  EXPECT_EQ(m.batched_requests, m.cache_misses);
  EXPECT_GT(m.cache_hits + m.coalesced, 0u)
      << "duplicate-heavy soak must exercise reuse";

  // Cache-hit determinism: every result — computed, coalesced, or replayed
  // — is bit-identical to the direct call.
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(futures[p][i].wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      EXPECT_TRUE(futures[p][i].get() ==
                  expected_[(p + 3 * i) % expected_.size()])
          << "producer " << p << " request " << i;
    }
  }
}

TEST_F(ServiceSoak, RejectModeUnderConcurrentLoad) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 100;
  service::FactorizationEngine engine(model_, {.max_batch = 4,
                                               .max_delay_us = 100,
                                               .queue_capacity = 8,
                                               .reject_when_full = true,
                                               .cache_capacity = 0});
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<core::FactorizeResult>>> futures(
      kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        try {
          futures[p].push_back(
              engine.submit(targets_[(p + i) % targets_.size()]));
          accepted.fetch_add(1, std::memory_order_relaxed);
        } catch (const service::QueueFullError&) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  engine.stop();

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  const auto m = engine.metrics();
  EXPECT_EQ(m.submitted, accepted.load());
  EXPECT_EQ(m.completed, accepted.load()) << "every accepted request drained";
  EXPECT_EQ(m.rejected, rejected.load());
  EXPECT_EQ(m.queue_depth, 0u);
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (std::size_t i = 0; i < futures[p].size(); ++i) {
      EXPECT_NO_THROW((void)futures[p][i].get());
    }
  }
}

}  // namespace
