// Tests for service::ModelRegistry / service::Model: the hdc::io /
// taxonomy::io loading path the serving runtime depends on, its error
// handling (missing file, truncation, corrupted magic), and the
// load→pack→scan equivalence of a registry-loaded model against in-memory
// construction.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/factorhd.hpp"
#include "service/service.hpp"
#include "taxonomy/io.hpp"

namespace {

using namespace factorhd;

class ServiceRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = util::Xoshiro256(77);
    books_ = std::make_unique<tax::TaxonomyCodebooks>(
        tax::Taxonomy(3, {8, 4}), 1024, rng_);
    // Tests run as concurrent ctest processes; the file name must be
    // unique per test case or a sibling's TearDown races this SetUp.
    path_ = testing::TempDir() + "factorhd_registry_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
    tax::save_codebooks_file(path_, *books_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  util::Xoshiro256 rng_{77};
  std::unique_ptr<tax::TaxonomyCodebooks> books_;
  std::string path_;
};

TEST_F(ServiceRegistryTest, LoadPackScanEquivalence) {
  // A model loaded from disk must factorize bit-identically to a model
  // built from the same in-memory material — same packed planes, same
  // scans, same results (index, similarity, op counts).
  service::ModelRegistry registry;
  auto loaded = registry.load_file("m", path_);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->books().dim(), 1024u);
  EXPECT_EQ(loaded->factorizer().scan_backend(), hdc::ScanBackend::kPacked);

  auto direct = service::Model::make("direct", std::move(*books_));
  util::Xoshiro256 rng(5);
  const tax::Taxonomy& taxonomy = loaded->books().taxonomy();
  for (int i = 0; i < 8; ++i) {
    const tax::Object obj = tax::random_object(taxonomy, rng);
    const hdc::Hypervector target = direct->encoder().encode_object(obj);
    // The loaded encoder produces the same bits...
    EXPECT_EQ(loaded->encoder().encode_object(obj), target);
    // ...and the loaded (re-packed) factorizer the same result.
    EXPECT_TRUE(loaded->factorizer().factorize(target, {}) ==
                direct->factorizer().factorize(target, {}));
  }
}

TEST_F(ServiceRegistryTest, LoadedModelServesThroughTheEngine) {
  service::ModelRegistry registry;
  auto model = registry.load_file("m", path_);
  service::FactorizationEngine engine(model,
                                      {.max_batch = 4, .max_delay_us = 100});
  util::Xoshiro256 rng(6);
  const tax::Object obj =
      tax::random_object(model->books().taxonomy(), rng);
  const hdc::Hypervector target = model->encoder().encode_object(obj);
  auto fut = engine.submit(target);
  EXPECT_TRUE(fut.get() == model->factorizer().factorize(target, {}));
}

TEST_F(ServiceRegistryTest, MissingFileThrows) {
  service::ModelRegistry registry;
  EXPECT_THROW((void)registry.load_file("m", path_ + ".does-not-exist"),
               std::runtime_error);
  EXPECT_EQ(registry.get("m"), nullptr) << "failed load must not register";
}

TEST_F(ServiceRegistryTest, TruncatedFileThrowsAtManyCutPoints) {
  std::ifstream in(path_, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string blob = buf.str();
  ASSERT_GT(blob.size(), 64u);
  service::ModelRegistry registry;
  const std::string cut_path = testing::TempDir() + "factorhd_cut_model.bin";
  // Representative truncation points: inside the magic, the taxonomy
  // header, the NULL HV, a codebook, and just shy of the end.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{2}, std::size_t{9}, std::size_t{40},
        blob.size() / 3, blob.size() / 2, blob.size() - 1}) {
    std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
    out.write(blob.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_THROW((void)registry.load_file("m", cut_path), std::runtime_error)
        << "cut at byte " << cut;
  }
  std::remove(cut_path.c_str());
  EXPECT_EQ(registry.get("m"), nullptr);
}

TEST_F(ServiceRegistryTest, CorruptedMagicThrows) {
  std::ifstream in(path_, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string blob = buf.str();
  blob[0] = static_cast<char>(blob[0] ^ 0x5a);
  const std::string bad_path = testing::TempDir() + "factorhd_bad_magic.bin";
  std::ofstream out(bad_path, std::ios::binary);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.close();
  service::ModelRegistry registry;
  EXPECT_THROW((void)registry.load_file("m", bad_path), std::runtime_error);
  std::remove(bad_path.c_str());
}

TEST_F(ServiceRegistryTest, RegistryNamesGetEraseAndReplace) {
  service::ModelRegistry registry;
  EXPECT_TRUE(registry.names().empty());
  auto first = registry.load_file("a", path_);
  registry.add("b", std::move(*books_));
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(registry.get("a"), first);

  // Reload replaces the mapping; old holders keep their instance alive.
  auto second = registry.load_file("a", path_);
  EXPECT_NE(registry.get("a"), first);
  EXPECT_EQ(registry.get("a"), second);
  EXPECT_EQ(first->books().dim(), 1024u) << "old model stays valid";

  EXPECT_TRUE(registry.erase("a"));
  EXPECT_FALSE(registry.erase("a"));
  EXPECT_EQ(registry.get("a"), nullptr);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"b"}));
}

TEST_F(ServiceRegistryTest, ForcedBackendIsHonored) {
  service::ModelRegistry registry;
  auto scalar =
      registry.load_file("s", path_, hdc::ScanBackend::kPackedWords);
  EXPECT_EQ(scalar->factorizer().simd_level(),
            hdc::kernels::SimdLevel::kScalarWords);
  auto plain = registry.load_file("p", path_, hdc::ScanBackend::kScalar);
  EXPECT_EQ(plain->factorizer().scan_backend(), hdc::ScanBackend::kScalar);
}

}  // namespace
