// Parameterized option-matrix tests for the factorizer: every combination
// of class selection and depth limit must produce exactly the requested
// slice of the factorization, with costs that shrink accordingly.
#include <gtest/gtest.h>

#include <tuple>

#include "core/factorhd.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using core::FactorizeOptions;
using core::Factorizer;

// Fixture shared across the matrix: F=3 classes with 2 subclass levels.
struct World {
  World()
      : rng(123), taxonomy(3, {8, 4}), books(taxonomy, 2048, rng),
        encoder(books), factorizer(encoder),
        object(tax::random_object(taxonomy, rng)),
        target(encoder.encode_object(object)) {}

  util::Xoshiro256 rng;
  tax::Taxonomy taxonomy;
  tax::TaxonomyCodebooks books;
  core::Encoder encoder;
  Factorizer factorizer;
  tax::Object object;
  hdc::Hypervector target;
};

World& world() {
  static World w;
  return w;
}

using SelectionDepth = std::tuple<std::vector<std::size_t>, std::size_t>;

class OptionMatrix : public ::testing::TestWithParam<SelectionDepth> {};

TEST_P(OptionMatrix, ReportsExactlyTheRequestedSlice) {
  const auto& [selected, depth] = GetParam();
  World& w = world();
  FactorizeOptions opts;
  opts.selected_classes = selected;
  opts.max_depth = depth;
  const auto result = w.factorizer.factorize(w.target, opts);
  ASSERT_EQ(result.objects.size(), 1u);

  const std::vector<std::size_t> expected_classes =
      selected.empty() ? std::vector<std::size_t>{0, 1, 2} : selected;
  const std::size_t expected_depth = depth == 0 ? 2 : std::min<std::size_t>(depth, 2);

  const auto& classes = result.objects[0].classes;
  ASSERT_EQ(classes.size(), expected_classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const auto& cf = classes[i];
    EXPECT_EQ(cf.cls, expected_classes[i]);
    ASSERT_TRUE(cf.present);
    ASSERT_EQ(cf.path.size(), expected_depth);
    ASSERT_EQ(cf.level_similarities.size(), expected_depth);
    // Every reported level matches the ground truth prefix.
    for (std::size_t l = 0; l < expected_depth; ++l) {
      EXPECT_EQ(cf.path[l], w.object.path(cf.cls)[l]);
    }
  }
  // Cost scales with the selection: per class, level-1 scan (8 + null) plus
  // 4 child similarities per deeper level.
  const std::uint64_t expected_ops =
      expected_classes.size() * (8 + 1 + (expected_depth > 1 ? 4 : 0));
  EXPECT_EQ(result.similarity_ops, expected_ops);
}

INSTANTIATE_TEST_SUITE_P(
    SelectionsAndDepths, OptionMatrix,
    ::testing::Combine(
        ::testing::Values(std::vector<std::size_t>{},
                          std::vector<std::size_t>{0},
                          std::vector<std::size_t>{1},
                          std::vector<std::size_t>{2},
                          std::vector<std::size_t>{0, 2},
                          std::vector<std::size_t>{2, 0},
                          std::vector<std::size_t>{1, 2},
                          std::vector<std::size_t>{0, 1, 2}),
        ::testing::Values(0u, 1u, 2u, 5u)));

// Rep-1 accuracy across a (F, M) grid at a dimension chosen by the capacity
// model to sit above the 99% knee: the factorizer must deliver.
using Shape = std::tuple<std::size_t, std::size_t>;

class ShapeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeSweep, CapacityModelDimensionSuffices) {
  const auto [f, m] = GetParam();
  core::CapacityProblem cp;
  cp.num_classes = f;
  cp.branching = {m};
  const std::size_t dim = core::required_dimension(cp, 0.995);
  ASSERT_GT(dim, 0u);

  util::Xoshiro256 rng(f * 100 + m);
  const tax::Taxonomy taxonomy(f, {m});
  const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
  const core::Encoder encoder(books);
  const Factorizer factorizer(encoder);
  std::size_t ok = 0;
  const std::size_t trials = 40;
  for (std::size_t t = 0; t < trials; ++t) {
    const tax::Object obj = tax::random_object(taxonomy, rng);
    if (factorizer.factorize_single(encoder.encode_object(obj)).to_object(f) ==
        obj) {
      ++ok;
    }
  }
  EXPECT_GE(ok, trials - 2) << "F=" << f << " M=" << m << " D=" << dim;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep,
                         ::testing::Combine(::testing::Values(2u, 3u, 4u, 5u),
                                            ::testing::Values(8u, 32u, 128u)));

}  // namespace
