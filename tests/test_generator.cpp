// Unit tests for tax random object/scene generators.
#include <gtest/gtest.h>

#include <set>

#include "taxonomy/generator.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::tax;

TEST(Generator, RandomObjectIsValid) {
  util::Xoshiro256 rng(1);
  const Taxonomy t(3, {8, 4});
  for (int i = 0; i < 100; ++i) {
    const Object obj = random_object(t, rng);
    EXPECT_TRUE(obj.valid_for(t));
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_TRUE(obj.has_class(c));
      EXPECT_EQ(obj.path(c).size(), 2u);
    }
  }
}

TEST(Generator, RespectsDepthOption) {
  util::Xoshiro256 rng(2);
  const Taxonomy t(2, {8, 4, 2});
  ObjectGenOptions opts;
  opts.depth = 2;
  const Object obj = random_object(t, rng, opts);
  EXPECT_EQ(obj.path(0).size(), 2u);
  EXPECT_TRUE(obj.valid_for(t));
}

TEST(Generator, DepthClampsToClassDepth) {
  util::Xoshiro256 rng(3);
  const Taxonomy t(std::vector<std::vector<std::size_t>>{{4}, {4, 2}});
  ObjectGenOptions opts;
  opts.depth = 2;
  const Object obj = random_object(t, rng, opts);
  EXPECT_EQ(obj.path(0).size(), 1u);  // class 0 only has depth 1
  EXPECT_EQ(obj.path(1).size(), 2u);
}

TEST(Generator, ClassPresenceZeroMakesEmptyObjects) {
  util::Xoshiro256 rng(4);
  const Taxonomy t(3, {4});
  ObjectGenOptions opts;
  opts.class_presence = 0.0;
  const Object obj = random_object(t, rng, opts);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_FALSE(obj.has_class(c));
}

TEST(Generator, ClassPresenceFractionRoughlyHolds) {
  util::Xoshiro256 rng(5);
  const Taxonomy t(1, {4});
  ObjectGenOptions opts;
  opts.class_presence = 0.25;
  int present = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    present += random_object(t, rng, opts).has_class(0) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(present) / n, 0.25, 0.03);
}

TEST(Generator, SceneDistinctByDefault) {
  util::Xoshiro256 rng(6);
  const Taxonomy t(2, {8});
  SceneGenOptions opts;
  opts.num_objects = 5;
  for (int rep = 0; rep < 20; ++rep) {
    const Scene scene = random_scene(t, rng, opts);
    ASSERT_EQ(scene.size(), 5u);
    for (std::size_t i = 0; i < scene.size(); ++i) {
      for (std::size_t j = i + 1; j < scene.size(); ++j) {
        EXPECT_NE(scene[i], scene[j]);
      }
    }
  }
}

TEST(Generator, SceneTooLargeForObjectSpaceThrows) {
  util::Xoshiro256 rng(7);
  const Taxonomy t(1, {2});  // only 2 distinct objects
  SceneGenOptions opts;
  opts.num_objects = 3;
  EXPECT_THROW(random_scene(t, rng, opts), std::runtime_error);
  opts.allow_duplicates = true;
  EXPECT_EQ(random_scene(t, rng, opts).size(), 3u);
}

TEST(Generator, RandomPathBelowStaysInSubtree) {
  util::Xoshiro256 rng(8);
  const Taxonomy t(1, {4, 3, 2});
  for (int i = 0; i < 50; ++i) {
    const Path p = random_path_below(t, 0, 2, rng);
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[0], 2u);
    EXPECT_EQ(t.parent_of(0, 2, p[1]), p[0]);
    EXPECT_EQ(t.parent_of(0, 3, p[2]), p[1]);
  }
  EXPECT_THROW(random_path_below(t, 0, 4, rng), std::out_of_range);
}

TEST(Generator, CoversItemSpace) {
  util::Xoshiro256 rng(9);
  const Taxonomy t(1, {8});
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(random_object(t, rng).path(0)[0]);
  }
  EXPECT_EQ(seen.size(), 8u);
}

}  // namespace
