// Kernel/scalar equivalence suite: hdc::ItemMemory on the packed word-plane
// backend must return bit-identical results (index, similarity, ordering) to
// the scalar backend, for bipolar and ternary codebooks, at dimensions that
// are and are not multiples of 64, including tie and empty-result cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/encoder.hpp"
#include "core/factorizer.hpp"
#include "hdc/item_memory.hpp"
#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/plane.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/ops.hpp"
#include "hdc/random.hpp"
#include "hdc/similarity.hpp"
#include "taxonomy/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;
using kernels::PackedItemMemory;
using kernels::PackedQuery;

// Dimensions straddling the 64-bit word boundary plus a larger odd size.
const std::size_t kDims[] = {63, 64, 65, 1000};

Codebook make_bipolar_codebook(std::size_t dim, std::size_t size,
                               Xoshiro256& rng) {
  return Codebook(dim, size, rng);
}

Codebook make_ternary_codebook(std::size_t dim, std::size_t size,
                               Xoshiro256& rng) {
  std::vector<Hypervector> items;
  items.reserve(size);
  for (std::size_t j = 0; j < size; ++j) {
    items.push_back(random_ternary(dim, 0.4, rng));
  }
  return Codebook(std::move(items));
}

// Queries covering every packed-eligible alphabet plus the scalar fallback.
std::vector<Hypervector> make_queries(std::size_t dim, Xoshiro256& rng,
                                      const Codebook& cb) {
  std::vector<Hypervector> qs;
  qs.push_back(random_bipolar(dim, rng));
  qs.push_back(random_ternary(dim, 0.3, rng));
  qs.push_back(cb.item(0));  // exact hit
  // Clipped bundle of two items (the FactorHD single-object query shape).
  qs.push_back(clip_ternary(bundle(cb.item(1), cb.item(2 % cb.size()))));
  // Integer bundle (multi-object residual shape): forces the scalar
  // fallback inside the packed-backend memory — results must still match.
  qs.push_back(bundle(bundle(cb.item(0), cb.item(1)), random_bipolar(dim, rng)));
  qs.push_back(Hypervector(dim));  // all-zero (ternary, zero similarity)
  return qs;
}

void expect_same_matches(const std::vector<Match>& a,
                         const std::vector<Match>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << "position " << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a[i].similarity, b[i].similarity) << "position " << i;
  }
}

void check_equivalence(const Codebook& cb, const Hypervector& query) {
  const ItemMemory scalar(cb, ScanBackend::kScalar);
  const ItemMemory packed(cb, ScanBackend::kPacked);
  ASSERT_EQ(scalar.backend(), ScanBackend::kScalar);
  ASSERT_EQ(packed.backend(), ScanBackend::kPacked);

  const Match bs = scalar.best(query);
  const Match bp = packed.best(query);
  EXPECT_EQ(bs.index, bp.index);
  EXPECT_EQ(bs.similarity, bp.similarity);

  // Thresholds spanning "everything", "some", "exact boundary", "nothing".
  const double mid = bs.similarity / 2.0;
  for (double th : {-2.0, -0.5, 0.0, mid, bs.similarity, 1.5}) {
    expect_same_matches(scalar.above(query, th), packed.above(query, th));
  }
  // `above` at the best similarity is exclusive, so the best entry itself
  // must be absent from both backends.
  for (const Match& m : packed.above(query, bs.similarity)) {
    EXPECT_LT(m.similarity, bs.similarity + 1e-12);
    EXPECT_GT(m.similarity, bs.similarity - 1.0);  // sanity: finite
  }
  EXPECT_TRUE(packed.above(query, 1.5).empty());
  EXPECT_TRUE(scalar.above(query, 1.5).empty());

  for (std::size_t k : {std::size_t{1}, std::size_t{3}, cb.size(), cb.size() + 7}) {
    expect_same_matches(scalar.top_k(query, k), packed.top_k(query, k));
  }

  const std::vector<std::size_t> subset{0, cb.size() - 1, 1};
  const Match ss = scalar.best_among(query, subset);
  const Match sp = packed.best_among(query, subset);
  EXPECT_EQ(ss.index, sp.index);
  EXPECT_EQ(ss.similarity, sp.similarity);
  expect_same_matches(scalar.above_among(query, -2.0, subset),
                      packed.above_among(query, -2.0, subset));
  EXPECT_THROW((void)scalar.best_among(query, {}), std::invalid_argument);
  EXPECT_THROW((void)packed.best_among(query, {}), std::invalid_argument);

  std::vector<std::int64_t> ds(cb.size()), dp(cb.size());
  scalar.dots(query, ds);
  packed.dots(query, dp);
  EXPECT_EQ(ds, dp);
  for (std::size_t j = 0; j < cb.size(); ++j) {
    EXPECT_EQ(ds[j], dot(query, cb.item(j))) << "row " << j;
  }
}

TEST(KernelEquivalence, BipolarCodebooksAllDims) {
  Xoshiro256 rng(101);
  for (std::size_t dim : kDims) {
    SCOPED_TRACE(dim);
    const Codebook cb = make_bipolar_codebook(dim, 17, rng);
    for (const Hypervector& q : make_queries(dim, rng, cb)) {
      check_equivalence(cb, q);
    }
  }
}

TEST(KernelEquivalence, TernaryCodebooksAllDims) {
  Xoshiro256 rng(202);
  for (std::size_t dim : kDims) {
    SCOPED_TRACE(dim);
    const Codebook cb = make_ternary_codebook(dim, 17, rng);
    for (const Hypervector& q : make_queries(dim, rng, cb)) {
      check_equivalence(cb, q);
    }
  }
}

TEST(KernelEquivalence, TiedSimilaritiesOrderIdentically) {
  Xoshiro256 rng(303);
  // Duplicate entries guarantee exact similarity ties; the canonical
  // match_order tie-break (ascending index) must make both backends agree
  // on the full ordering, and `best` must keep the first maximum.
  const Hypervector a = random_bipolar(65, rng);
  const Hypervector b = random_bipolar(65, rng);
  const Codebook cb(std::vector<Hypervector>{a, b, a, b, a});
  const ItemMemory scalar(cb, ScanBackend::kScalar);
  const ItemMemory packed(cb, ScanBackend::kPacked);

  const Match ms = scalar.best(a);
  const Match mp = packed.best(a);
  EXPECT_EQ(ms.index, 0u);
  EXPECT_EQ(mp.index, 0u);
  EXPECT_EQ(ms.similarity, 1.0);
  EXPECT_EQ(mp.similarity, 1.0);

  const std::vector<Match> as = scalar.above(a, -2.0);
  const std::vector<Match> ap = packed.above(a, -2.0);
  ASSERT_EQ(as.size(), 5u);
  expect_same_matches(as, ap);
  // Ties resolved by ascending index: the three copies of `a` first.
  EXPECT_EQ(as[0].index, 0u);
  EXPECT_EQ(as[1].index, 2u);
  EXPECT_EQ(as[2].index, 4u);

  expect_same_matches(scalar.top_k(a, 4), packed.top_k(a, 4));
}

TEST(KernelEquivalence, AutoSelectsPackedForPackableCodebooks) {
  Xoshiro256 rng(404);
  const Codebook bipolar = make_bipolar_codebook(100, 4, rng);
  EXPECT_EQ(ItemMemory(bipolar).backend(), ScanBackend::kPacked);
  const Codebook ternary = make_ternary_codebook(100, 4, rng);
  EXPECT_EQ(ItemMemory(ternary).backend(), ScanBackend::kPacked);

  // Integer codebook: auto falls back to scalar, kPacked refuses.
  const Hypervector big = bundle(bundle(bipolar.item(0), bipolar.item(1)),
                                 bipolar.item(2));
  const Codebook integer(std::vector<Hypervector>{big, big});
  EXPECT_FALSE(PackedItemMemory::packable(integer));
  EXPECT_EQ(ItemMemory(integer).backend(), ScanBackend::kScalar);
  EXPECT_THROW(ItemMemory(integer, ScanBackend::kPacked),
               std::invalid_argument);
}

TEST(KernelEquivalence, PackedQueryClassifiesAlphabets) {
  Xoshiro256 rng(505);
  const auto bip = PackedQuery::pack(random_bipolar(63, rng));
  ASSERT_TRUE(bip.has_value());
  EXPECT_TRUE(bip->bipolar);
  const auto ter = PackedQuery::pack(random_ternary(63, 0.5, rng));
  ASSERT_TRUE(ter.has_value());
  EXPECT_FALSE(ter->bipolar);
  EXPECT_FALSE(PackedQuery::pack(Hypervector{2, 1, -1}).has_value());
  EXPECT_FALSE(PackedQuery::pack(Hypervector{}).has_value());
}

TEST(KernelEquivalence, PackedStorageBits) {
  Xoshiro256 rng(606);
  const Codebook bipolar = make_bipolar_codebook(65, 3, rng);
  EXPECT_EQ(PackedItemMemory(bipolar).storage_bits(), 3u * 65u);
  const Codebook ternary = make_ternary_codebook(65, 3, rng);
  EXPECT_EQ(PackedItemMemory(ternary).storage_bits(), 2u * 3u * 65u);
  EXPECT_EQ(PackedItemMemory(bipolar).words_per_row(), 2u);
}

TEST(KernelEquivalence, FactorizerBackendsAgreeEndToEnd) {
  // The whole Algorithm 1 pipeline — single-object argmax and the
  // multi-object thresholded loop (whose residual queries exercise the
  // scalar fallback) — must produce identical results on both backends.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Xoshiro256 rng(seed);
    const tax::Taxonomy taxonomy(3, {8, 4});
    const tax::TaxonomyCodebooks books(taxonomy, 1000, rng);
    const core::Encoder encoder(books);
    const core::Factorizer scalar(encoder, ScanBackend::kScalar);
    const core::Factorizer packed(encoder, ScanBackend::kPacked);
    ASSERT_EQ(scalar.scan_backend(), ScanBackend::kScalar);
    ASSERT_EQ(packed.scan_backend(), ScanBackend::kPacked);

    const tax::Object obj = tax::random_object(taxonomy, rng);
    const Hypervector single = encoder.encode_object(obj);
    const auto rs = scalar.factorize(single, {});
    const auto rp = packed.factorize(single, {});
    ASSERT_EQ(rs.objects.size(), rp.objects.size());
    EXPECT_EQ(rs.similarity_ops, rp.similarity_ops);
    for (std::size_t o = 0; o < rs.objects.size(); ++o) {
      ASSERT_EQ(rs.objects[o].classes.size(), rp.objects[o].classes.size());
      for (std::size_t c = 0; c < rs.objects[o].classes.size(); ++c) {
        const auto& cs = rs.objects[o].classes[c];
        const auto& cp = rp.objects[o].classes[c];
        EXPECT_EQ(cs.present, cp.present);
        EXPECT_EQ(cs.path, cp.path);
        EXPECT_EQ(cs.level_similarities, cp.level_similarities);
      }
    }

    const tax::Scene scene = tax::random_scene(
        taxonomy, rng,
        {.num_objects = 2, .object = {}, .allow_duplicates = false});
    const Hypervector multi = encoder.encode_scene(scene);
    core::FactorizeOptions opts;
    opts.multi_object = true;
    opts.num_objects_hint = 2;
    const auto ms = scalar.factorize(multi, opts);
    const auto mp = packed.factorize(multi, opts);
    ASSERT_EQ(ms.objects.size(), mp.objects.size());
    EXPECT_EQ(ms.similarity_ops, mp.similarity_ops);
    EXPECT_EQ(ms.combinations_checked, mp.combinations_checked);
    EXPECT_EQ(ms.converged, mp.converged);
    for (std::size_t o = 0; o < ms.objects.size(); ++o) {
      EXPECT_EQ(ms.objects[o].match_similarity, mp.objects[o].match_similarity);
      EXPECT_EQ(ms.objects[o].to_object(3), mp.objects[o].to_object(3));
    }
  }
}

TEST(KernelEquivalence, SimilarityOpCountsMatchScalar) {
  Xoshiro256 rng(707);
  const Codebook cb = make_bipolar_codebook(128, 9, rng);
  const ItemMemory scalar(cb, ScanBackend::kScalar);
  const ItemMemory packed(cb, ScanBackend::kPacked);
  const Hypervector q = random_bipolar(128, rng);

  (void)scalar.best(q);
  (void)packed.best(q);
  (void)scalar.above(q, 0.5);
  (void)packed.above(q, 0.5);
  (void)scalar.best_among(q, {1, 2, 3});
  (void)packed.best_among(q, {1, 2, 3});
  (void)scalar.top_k(q, 2);
  (void)packed.top_k(q, 2);
  EXPECT_EQ(scalar.similarity_ops(), packed.similarity_ops());
  EXPECT_EQ(scalar.similarity_ops(), 9u + 9u + 3u + 9u);
}

TEST(KernelEquivalence, BatchDotKernelsMatchPerRowDotsAtEveryLevel) {
  // The parallel tier build's screened assignment runs on BatchDotKernels;
  // simd.hpp promises the exact same integers as calling the matching
  // DotKernels entry per row, bit-identical across levels — this is that
  // pin. Covers word-tail dims, counts hitting every remainder loop, and
  // the prefix-width (partial-plane) shape the k-means screen uses.
  Xoshiro256 rng(808);
  const kernels::SimdLevel levels[] = {
      kernels::SimdLevel::kScalarWords, kernels::SimdLevel::kAVX2,
      kernels::SimdLevel::kAVX512, kernels::SimdLevel::kNEON};
  for (const std::size_t dim : kDims) {
    const std::size_t words = kernels::plane_words(dim);
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{5}, std::size_t{32}}) {
      // Contiguous row-major sign-plane buffer, as the build lays it out.
      std::vector<std::uint64_t> rows(count * words);
      for (std::size_t i = 0; i < count; ++i) {
        const auto packed = PackedQuery::pack(random_bipolar(dim, rng));
        ASSERT_TRUE(packed.has_value());
        std::copy(packed->sign.begin(), packed->sign.end(),
                  rows.begin() + static_cast<std::ptrdiff_t>(i * words));
      }
      const auto bq = PackedQuery::pack(random_bipolar(dim, rng));
      const auto tq = PackedQuery::pack(random_ternary(dim, 0.4, rng));
      ASSERT_TRUE(bq.has_value() && tq.has_value());

      std::vector<std::int64_t> ref_b(count), ref_t(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t* row = rows.data() + i * words;
        ref_b[i] = kernels::dot_bipolar_bipolar(bq->sign.data(), row, words, dim);
        ref_t[i] = kernels::dot_bipolar_ternary(row, tq->nonzero.data(),
                                                tq->sign.data(), words);
      }
      for (const kernels::SimdLevel level : levels) {
        if (!kernels::simd_level_available(level)) continue;
        const kernels::BatchDotKernels& batch = kernels::batch_dot_kernels(level);
        std::vector<std::int64_t> out(count, -12345);
        batch.bipolar_rows(bq->sign.data(), rows.data(), count, words, dim,
                           out.data());
        EXPECT_EQ(ref_b, out) << "bipolar_rows dim=" << dim << " count="
                              << count << " level=" << kernels::to_string(level);
        std::fill(out.begin(), out.end(), -12345);
        batch.ternary_rows(tq->nonzero.data(), tq->sign.data(), rows.data(),
                           count, words, out.data());
        EXPECT_EQ(ref_t, out) << "ternary_rows dim=" << dim << " count="
                              << count << " level=" << kernels::to_string(level);
      }

      // Prefix-width dots (the screen's partial planes): every prefix word
      // of a canonical plane is full, so dim_p = 64 * words_p.
      if (words < 2) continue;
      const std::size_t words_p = words / 2;
      const std::size_t dim_p = 64 * words_p;
      std::vector<std::uint64_t> prefix_rows(count * words_p);
      for (std::size_t i = 0; i < count; ++i) {
        std::copy_n(rows.data() + i * words, words_p,
                    prefix_rows.begin() + static_cast<std::ptrdiff_t>(i * words_p));
      }
      std::vector<std::int64_t> ref_p(count);
      for (std::size_t i = 0; i < count; ++i) {
        ref_p[i] = kernels::dot_bipolar_bipolar(
            bq->sign.data(), prefix_rows.data() + i * words_p, words_p, dim_p);
      }
      for (const kernels::SimdLevel level : levels) {
        if (!kernels::simd_level_available(level)) continue;
        std::vector<std::int64_t> out(count, -12345);
        kernels::batch_dot_kernels(level).bipolar_rows(
            bq->sign.data(), prefix_rows.data(), count, words_p, dim_p,
            out.data());
        EXPECT_EQ(ref_p, out) << "prefix bipolar_rows dim=" << dim
                              << " level=" << kernels::to_string(level);
      }
    }
  }
}

}  // namespace
