// FTS1/FTX1 snapshot persistence (hdc/kernels/tiered_snapshot.hpp,
// service/model_snapshot.hpp) — the ISSUE 6 contract from both sides:
//
//  * fidelity — a saved tier index loads back bit-identical on every scan
//    surface (best/above/top_k, Hypervector and PackedQuery), through every
//    load path (stream, mmap, mmap-disabled) and at every SIMD level this
//    host has;
//  * integrity — EVERY single-byte flip and EVERY truncation point of a
//    snapshot throws at load (a snapshot can fail to load, but can never
//    mis-scan), and a forged-but-well-framed structure is still rejected
//    by the from-parts validation;
//  * determinism — the parallel clustering build emits byte-identical
//    snapshots at every thread count;
//  * degeneracy — above()/top_k()/best() fall back to the exact scan when
//    every probed bucket is empty (no surface returns nothing while M > 0);
//  * service — an FTX1 sidecar round trips through save_model_snapshots /
//    load_model_snapshots, verified records are adopted, mismatched ones
//    rejected with the model still correct, corrupt sidecars throw.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/factorizer.hpp"
#include "hdc/item_memory.hpp"
#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/kernels/tiered_snapshot.hpp"
#include "hdc/random.hpp"
#include "service/model_registry.hpp"
#include "service/model_snapshot.hpp"
#include "taxonomy/generator.hpp"
#include "taxonomy/io.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;
using kernels::PackedItemMemory;
using kernels::PackedQuery;
using kernels::SimdLevel;
using kernels::TieredConfig;
using kernels::TieredItemMemory;

/// Scoped environment override; restores the previous value on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) previous_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (previous_) {
      ::setenv(name_, previous_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

void expect_same_matches(const std::vector<Match>& ref,
                         const std::vector<Match>& got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].index, got[i].index) << "position " << i;
    EXPECT_EQ(ref[i].similarity, got[i].similarity) << "position " << i;
  }
}

/// Serializes `tier` to an in-memory byte string.
std::string snapshot_bytes(const TieredItemMemory& tier) {
  std::stringstream ss;
  kernels::save_tiered_index(ss, tier);
  return ss.str();
}

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + leaf;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

/// Deterministic query mix: noisy cleanup hits, random bipolar/ternary,
/// one exact item, the all-zero vector.
std::vector<Hypervector> make_queries(const Codebook& cb, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Hypervector> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(flip_noise(cb.item(rng.uniform(cb.size())), 0.05, rng));
    queries.push_back(random_bipolar(cb.dim(), rng));
    queries.push_back(random_ternary(cb.dim(), 0.4, rng));
  }
  queries.push_back(cb.item(0));
  queries.push_back(Hypervector(cb.dim()));
  return queries;
}

/// Every scan surface of `got`, compared bit-for-bit against `ref`
/// (geometry, results, and ScanStats accounting).
void expect_scans_bit_identical(const TieredItemMemory& ref,
                                const TieredItemMemory& got,
                                const std::vector<Hypervector>& queries) {
  ASSERT_EQ(ref.dim(), got.dim());
  ASSERT_EQ(ref.size(), got.size());
  ASSERT_EQ(ref.clusters(), got.clusters());
  ASSERT_EQ(ref.nprobe(), got.nprobe());
  for (const Hypervector& q : queries) {
    TieredItemMemory::ScanStats rs{}, gs{};
    const Match rb = ref.best(q, &rs);
    const Match gb = got.best(q, &gs);
    EXPECT_EQ(rb.index, gb.index);
    EXPECT_EQ(rb.similarity, gb.similarity);
    EXPECT_EQ(rs.centroid_dots, gs.centroid_dots);
    EXPECT_EQ(rs.row_dots, gs.row_dots);
    expect_same_matches(ref.above(q, 0.01), got.above(q, 0.01));
    expect_same_matches(ref.top_k(q, 7), got.top_k(q, 7));
    // The PackedQuery surface too (what the Factorizer's hot loop uses).
    const std::optional<PackedQuery> pq = PackedQuery::pack(q);
    ASSERT_TRUE(pq.has_value());
    const Match rpb = ref.best(*pq);
    const Match gpb = got.best(*pq);
    EXPECT_EQ(rpb.index, gpb.index);
    EXPECT_EQ(rpb.similarity, gpb.similarity);
    expect_same_matches(ref.top_k(*pq, 5), got.top_k(*pq, 5));
  }
}

TEST(TieredSnapshot, RoundTripBitIdenticalThroughEveryLoadPath) {
  Xoshiro256 rng(20260806);
  const Codebook cb(1024, 2000, rng);
  const TieredItemMemory tier(cb, {.clusters = 32, .nprobe = 4});
  const std::vector<Hypervector> queries = make_queries(cb, 7);

  // In-memory stream round trip; the predicted size must be exact.
  const std::string bytes = snapshot_bytes(tier);
  EXPECT_EQ(bytes.size(), kernels::tiered_snapshot_bytes(tier));
  EXPECT_EQ(bytes.size() % 64, 0u);
  {
    std::stringstream ss(bytes);
    const auto loaded = kernels::load_tiered_index(ss);
    expect_scans_bit_identical(tier, *loaded, queries);
  }

  // File round trip, mmap (default) and stream-fallback paths.
  const std::string path = temp_path("factorhd_fts1_roundtrip.fts");
  kernels::save_tiered_index(path, tier);
  {
    const auto mapped = kernels::load_tiered_index(path);
    expect_scans_bit_identical(tier, *mapped, queries);
  }
  {
    ScopedEnv no_mmap("FACTORHD_SNAPSHOT_MMAP", "0");
    const auto streamed = kernels::load_tiered_index(path);
    expect_scans_bit_identical(tier, *streamed, queries);
  }

  // Header info reflects the saved geometry without reading the body.
  const kernels::TieredSnapshotInfo info = kernels::read_tiered_index_info(path);
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.dim, tier.dim());
  EXPECT_EQ(info.rows, tier.size());
  EXPECT_EQ(info.clusters, tier.clusters());
  EXPECT_EQ(info.nprobe, tier.nprobe());
  EXPECT_FALSE(info.ternary);
  EXPECT_EQ(info.total_bytes, bytes.size());
  std::remove(path.c_str());
}

TEST(TieredSnapshot, RoundTripAtEveryAvailableSimdLevel) {
  Xoshiro256 rng(31);
  const Codebook cb(513, 300, rng);  // off-word dim: exercises tail masking
  const TieredItemMemory tier(cb, {.clusters = 8, .nprobe = 2});
  const std::string bytes = snapshot_bytes(tier);
  const std::vector<Hypervector> queries = make_queries(cb, 9);
  for (const SimdLevel level :
       {SimdLevel::kScalarWords, SimdLevel::kAVX2, SimdLevel::kAVX512,
        SimdLevel::kNEON}) {
    if (!kernels::simd_level_available(level)) continue;
    std::stringstream ss(bytes);
    const auto loaded = kernels::load_tiered_index(ss, level);
    EXPECT_EQ(loaded->simd_level(), level);
    expect_scans_bit_identical(tier, *loaded, queries);
  }
}

TEST(TieredSnapshot, TernaryRowsRoundTrip) {
  Xoshiro256 rng(47);
  std::vector<Hypervector> items;
  for (int i = 0; i < 200; ++i) {
    items.push_back(random_ternary(256, 0.4, rng));
  }
  const Codebook cb(std::move(items));
  const TieredItemMemory tier(cb, {.clusters = 6, .nprobe = 6});
  const std::string bytes = snapshot_bytes(tier);
  std::stringstream ss(bytes);
  const auto loaded = kernels::load_tiered_index(ss);
  expect_scans_bit_identical(tier, *loaded, make_queries(cb, 11));
  const std::string path = temp_path("factorhd_fts1_ternary.fts");
  write_file(path, bytes);
  const kernels::TieredSnapshotInfo info = kernels::read_tiered_index_info(path);
  EXPECT_TRUE(info.ternary);
  std::remove(path.c_str());
}

TEST(TieredSnapshot, StreamLoadEmbedsInEnclosingFormats) {
  // Two snapshots back to back plus a trailing payload in one stream: each
  // load must consume exactly its snapshot and leave the position at the
  // next byte (the property the FTX1 sidecar reader relies on).
  Xoshiro256 rng(53);
  const Codebook a(192, 64, rng);
  const Codebook b(320, 96, rng);
  const TieredItemMemory ta(a, {.clusters = 4, .nprobe = 4});
  const TieredItemMemory tb(b, {.clusters = 5, .nprobe = 2});
  std::stringstream ss;
  kernels::save_tiered_index(ss, ta);
  kernels::save_tiered_index(ss, tb);
  ss << "TRAILER";
  const auto la = kernels::load_tiered_index(ss);
  expect_scans_bit_identical(ta, *la, make_queries(a, 13));
  const auto lb = kernels::load_tiered_index(ss);
  expect_scans_bit_identical(tb, *lb, make_queries(b, 17));
  std::string tail(7, '\0');
  ss.read(tail.data(), 7);
  EXPECT_EQ(tail, "TRAILER");

  // A single-snapshot *file* load, by contrast, must reject trailing bytes
  // on both the mmap and the stream path.
  const std::string path = temp_path("factorhd_fts1_trailing.fts");
  write_file(path, snapshot_bytes(ta) + std::string(64, '\0'));
  EXPECT_THROW((void)kernels::load_tiered_index(path), std::runtime_error);
  {
    ScopedEnv no_mmap("FACTORHD_SNAPSHOT_MMAP", "0");
    EXPECT_THROW((void)kernels::load_tiered_index(path), std::runtime_error);
  }
  std::remove(path.c_str());
}

TEST(TieredSnapshot, EveryTruncationPointThrows) {
  Xoshiro256 rng(61);
  const Codebook cb(128, 64, rng);
  const TieredItemMemory tier(cb, {.clusters = 8, .nprobe = 2});
  const std::string bytes = snapshot_bytes(tier);
  ASSERT_LT(bytes.size(), 4096u) << "keep the exhaustive sweep cheap";
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream ss(bytes.substr(0, len));
    EXPECT_THROW((void)kernels::load_tiered_index(ss), std::runtime_error)
        << "truncation at byte " << len << " loaded";
  }
  // The mmap file path enforces the same bound (sampled: file I/O per case).
  const std::string path = temp_path("factorhd_fts1_trunc.fts");
  for (std::size_t len = 0; len < bytes.size(); len += 173) {
    write_file(path, bytes.substr(0, len));
    EXPECT_THROW((void)kernels::load_tiered_index(path), std::runtime_error)
        << "file truncation at byte " << len << " loaded";
  }
  std::remove(path.c_str());
}

TEST(TieredSnapshot, EveryByteFlipThrows) {
  // Flip the low bit of every byte — header words, digests, section data,
  // and alignment padding alike. Each corruption must throw: headers are
  // digest-pinned, sections are digest-pinned, padding is verified zero.
  Xoshiro256 rng(67);
  const Codebook cb(128, 64, rng);
  const TieredItemMemory tier(cb, {.clusters = 8, .nprobe = 2});
  const std::string bytes = snapshot_bytes(tier);
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x01);
    std::stringstream ss(corrupt);
    EXPECT_THROW((void)kernels::load_tiered_index(ss), std::runtime_error)
        << "flip at byte " << at << " loaded";
  }
  // Sampled high-bit flips and the mmap file path.
  const std::string path = temp_path("factorhd_fts1_flip.fts");
  for (std::size_t at = 0; at < bytes.size(); at += 131) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x80);
    write_file(path, corrupt);
    EXPECT_THROW((void)kernels::load_tiered_index(path), std::runtime_error)
        << "file flip at byte " << at << " loaded";
  }
  std::remove(path.c_str());
}

TEST(TieredSnapshot, ParallelBuildIsByteIdenticalAcrossThreadCounts) {
  // The build partitions rows into fixed contiguous blocks, so the
  // clustering — and therefore the serialized snapshot — must not depend
  // on worker count. Byte equality of the snapshots pins the whole
  // structure (planes, centroids, CSR, member order) in one comparison.
  Xoshiro256 rng(71);
  const Codebook cb(512, 3000, rng);
  std::optional<std::string> reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{0} /* auto: pool width */}) {
    const TieredItemMemory tier(
        cb, {.clusters = 64, .nprobe = 8, .build_threads = threads});
    const std::string bytes = snapshot_bytes(tier);
    if (!reference) {
      reference = bytes;
    } else {
      EXPECT_EQ(*reference, bytes) << "build_threads=" << threads;
    }
  }
  // The env knob routes to the same parameter (read per build, not cached).
  {
    ScopedEnv knob("FACTORHD_TIERED_BUILD_THREADS", "2");
    EXPECT_EQ(kernels::tiered_config_from_env().build_threads, 2u);
    const TieredItemMemory tier(
        cb, [] {
          TieredConfig c = kernels::tiered_config_from_env();
          c.clusters = 64;
          c.nprobe = 8;
          return c;
        }());
    EXPECT_EQ(*reference, snapshot_bytes(tier));
  }
}

TEST(TieredSnapshot, DegenerateClusteringFallsBackToExactScan) {
  // Hand-build (from-parts) a pathological clustering: every row lives in
  // bucket 0, buckets 1..3 are empty, and the query is bucket 1's own
  // centroid — so the probe (nprobe=1) selects an empty bucket. All three
  // surfaces must fall back to the full exact scan instead of returning
  // nothing (the ISSUE 6 above()/top_k() bugfix; best() already did).
  Xoshiro256 rng(79);
  const Codebook cb(256, 40, rng);
  const Codebook centroids_cb(256, 4, rng);
  auto rows = std::make_shared<const PackedItemMemory>(cb);
  auto centroids = std::make_shared<const PackedItemMemory>(centroids_cb);
  std::vector<std::size_t> member(40);
  for (std::size_t i = 0; i < member.size(); ++i) member[i] = i;
  const TieredItemMemory tier(rows, centroids, 1, std::move(member),
                              {0, 40, 40, 40, 40});
  ASSERT_EQ(tier.cluster_size(1), 0u);

  const ItemMemory exact(cb, ScanBackend::kScalar);
  const Hypervector q = centroids_cb.item(1);  // stage 1 picks empty bucket 1
  TieredItemMemory::ScanStats stats{};
  const Match got = tier.best(q, &stats);
  const Match ref = exact.best(q);
  EXPECT_EQ(got.index, ref.index);
  EXPECT_EQ(got.similarity, ref.similarity);
  EXPECT_EQ(stats.centroid_dots, 4u);
  EXPECT_EQ(stats.row_dots, 40u);  // fallback accounted as a full scan

  const std::vector<Match> all = tier.above(q, -2.0);
  EXPECT_EQ(all.size(), 40u);  // no surface returns nothing while M > 0
  expect_same_matches(exact.above(q, -2.0), all);
  expect_same_matches(exact.top_k(q, 5), tier.top_k(q, 5));

  // The degenerate structure round-trips through a snapshot unchanged.
  const std::string bytes = snapshot_bytes(tier);
  std::stringstream ss(bytes);
  const auto loaded = kernels::load_tiered_index(ss);
  expect_scans_bit_identical(tier, *loaded, make_queries(cb, 19));
}

TEST(TieredSnapshot, FromPartsRejectsForgedStructures) {
  // A forged-but-checksummed snapshot still cannot build an inconsistent
  // index: the from-parts validation (which the loader funnels through)
  // rejects broken CSR offsets and non-permutation member lists.
  Xoshiro256 rng(83);
  const Codebook cb(128, 16, rng);
  const Codebook centroids_cb(128, 4, rng);
  const auto rows = std::make_shared<const PackedItemMemory>(cb);
  const auto cents = std::make_shared<const PackedItemMemory>(centroids_cb);
  std::vector<std::size_t> member(16);
  for (std::size_t i = 0; i < member.size(); ++i) member[i] = i;

  // Decreasing CSR offsets.
  EXPECT_THROW(TieredItemMemory(rows, cents, 1, std::vector<std::size_t>(member),
                                {0, 12, 8, 16, 16}),
               std::invalid_argument);
  // CSR not ending at M.
  EXPECT_THROW(TieredItemMemory(rows, cents, 1, std::vector<std::size_t>(member),
                                {0, 4, 8, 12, 15}),
               std::invalid_argument);
  // Duplicate member (not a permutation).
  std::vector<std::size_t> dup = member;
  dup[3] = dup[2];
  EXPECT_THROW(TieredItemMemory(rows, cents, 1, std::move(dup),
                                {0, 4, 8, 12, 16}),
               std::invalid_argument);
  // Centroid dimension disagrees with the rows.
  const Codebook wrong_dim(64, 4, rng);
  EXPECT_THROW(TieredItemMemory(
                   rows, std::make_shared<const PackedItemMemory>(wrong_dim),
                   1, std::vector<std::size_t>(member), {0, 4, 8, 12, 16}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Service layer: FTX1 sidecars through save/load_model_snapshots and
// Model::make adoption.
// ---------------------------------------------------------------------------

TEST(ModelSnapshot, SidecarRoundTripAdoptsEveryVerifiedRecord) {
  ScopedEnv min_rows("FACTORHD_TIERED_MIN_ROWS", "64");
  ScopedEnv clusters("FACTORHD_TIERED_CLUSTERS", "8");
  ScopedEnv nprobe("FACTORHD_TIERED_NPROBE", "8");  // exact: results comparable
  const tax::Taxonomy taxonomy(2, {96});
  Xoshiro256 rng_a(20260807);
  const auto reference = service::Model::make(
      "ref", tax::TaxonomyCodebooks(taxonomy, 512, rng_a));
  ASSERT_EQ(reference->factorizer().tier_snapshots().size(), 2u);
  EXPECT_EQ(reference->factorizer().snapshots_adopted(), 0u);

  const std::string path = temp_path("factorhd_model.fhm.tix");
  EXPECT_EQ(service::save_model_snapshots(path, *reference), 2u);
  const core::TierSnapshots snaps = service::load_model_snapshots(path);
  ASSERT_EQ(snaps.size(), 2u);

  // Same codebooks (same seed) + the loaded sidecar: every record verifies
  // and is adopted — no k-means build — and factorization is bit-identical.
  Xoshiro256 rng_b(20260807);
  const auto adopted = service::Model::make(
      "adopted", tax::TaxonomyCodebooks(taxonomy, 512, rng_b),
      ScanBackend::kAuto, &snaps);
  EXPECT_EQ(adopted->factorizer().snapshots_adopted(), 2u);
  EXPECT_EQ(adopted->factorizer().snapshots_rejected(), 0u);
  Xoshiro256 qrng(5);
  for (int i = 0; i < 10; ++i) {
    const tax::Object obj = tax::random_object(taxonomy, qrng);
    const Hypervector target = reference->encoder().encode_object(obj);
    const auto ra = reference->factorizer().factorize(target);
    const auto rb = adopted->factorizer().factorize(target);
    EXPECT_EQ(ra.objects, rb.objects);
  }

  // Different codebooks (different seed): every offer fails the plane
  // verification and is rejected — the model still builds and serves.
  Xoshiro256 rng_c(999);
  const auto mismatched = service::Model::make(
      "mismatched", tax::TaxonomyCodebooks(taxonomy, 512, rng_c),
      ScanBackend::kAuto, &snaps);
  EXPECT_EQ(mismatched->factorizer().snapshots_adopted(), 0u);
  EXPECT_EQ(mismatched->factorizer().snapshots_rejected(), 2u);
  const tax::Object obj = tax::random_object(taxonomy, qrng);
  const Hypervector t = mismatched->encoder().encode_object(obj);
  EXPECT_EQ(mismatched->factorizer().factorize_single(t).classes.size(), 2u);
  std::remove(path.c_str());
}

TEST(ModelSnapshot, CorruptSidecarsAlwaysThrowFromTheLoader) {
  ScopedEnv min_rows("FACTORHD_TIERED_MIN_ROWS", "64");
  ScopedEnv clusters("FACTORHD_TIERED_CLUSTERS", "4");
  const tax::Taxonomy taxonomy(1, {96});
  Xoshiro256 rng(89);
  const auto model = service::Model::make(
      "m", tax::TaxonomyCodebooks(taxonomy, 256, rng));
  const std::string path = temp_path("factorhd_corrupt.fhm.tix");
  ASSERT_EQ(service::save_model_snapshots(path, *model), 1u);

  std::string bytes;
  {
    std::ifstream is(path, std::ios::binary);
    std::stringstream ss;
    ss << is.rdbuf();
    bytes = ss.str();
  }
  // Missing file.
  EXPECT_THROW((void)service::load_model_snapshots(path + ".nope"),
               std::runtime_error);
  // Garbage that still leads with the magic.
  write_file(path, "FTX1 corrupt sidecar");
  EXPECT_THROW((void)service::load_model_snapshots(path), std::runtime_error);
  // Truncations: mid-framing and mid-blob alike.
  for (std::size_t len = 0; len < bytes.size(); len += 97) {
    write_file(path, bytes.substr(0, len));
    EXPECT_THROW((void)service::load_model_snapshots(path), std::runtime_error)
        << "sidecar truncation at byte " << len << " loaded";
  }
  // Flips inside the embedded FTS1 blob (after the two 64-byte headers)
  // trip the inner digests through the sidecar loader too.
  for (std::size_t at = 128; at < bytes.size(); at += 211) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x01);
    write_file(path, corrupt);
    EXPECT_THROW((void)service::load_model_snapshots(path), std::runtime_error)
        << "sidecar flip at byte " << at << " loaded";
  }
  // The stream path enforces the same guarantees.
  {
    ScopedEnv no_mmap("FACTORHD_SNAPSHOT_MMAP", "0");
    write_file(path, bytes.substr(0, bytes.size() - 64));
    EXPECT_THROW((void)service::load_model_snapshots(path), std::runtime_error);
  }
  std::remove(path.c_str());
}

}  // namespace
