// Seeded randomized differential fuzzer over the similarity-scan backends.
//
// For ~200 random (dim, codebook size, alphabet, query representation)
// configurations, every packed backend — the scalar-word tier and each SIMD
// tier available on this CPU — must agree *exactly* with the scalar int32
// reference on the full scan surface: best / best_among / above /
// above_among / top_k / dots. "Exactly" means bit-identical index,
// similarity, and ordering (ties resolved by hdc::match_order), which is the
// contract that lets ScanBackend be a pure performance knob.
//
// The configuration stream deliberately over-samples the hard cases:
// dimensions straddling the 64-bit word and 256/512-bit vector boundaries
// (63/64/65/255/256/257) and tie-heavy codebooks built from a handful of
// distinct rows, where any backend that broke tie ordering would diverge.
//
// The multi-query blocked scans (PackedItemMemory::*_block and
// hdc::ItemMemory::best_block) ride the same differential with a block-size
// axis: at every block size Q in {1, 2, 3, 8, 33, 64} the blocked result
// must be bit-identical to Q independent single-query scans, on every SIMD
// tier, including tie-heavy codebooks and blocks whose queries force the
// per-query fallback (integer bundles, tiered default scans).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hdc/item_memory.hpp"
#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/plane.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/ops.hpp"
#include "hdc/random.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;
using kernels::PackedQuery;
using kernels::SimdLevel;

// Word- and vector-boundary dimensions every fuzz run must cover.
const std::size_t kBoundaryDims[] = {63, 64, 65, 255, 256, 257};

// Block sizes the blocked-scan differential covers: the degenerate
// single-query block, sizes below/at/above the AVX-512 2-query register
// tile, a straddle of the ternary kernel's 64-query support-hoist group
// (33), and one full group (64).
const std::size_t kBlockSizes[] = {1, 2, 3, 8, 33, 64};

// Every packed backend this CPU can execute, scalar-word tier first.
std::vector<ScanBackend> packed_backends() {
  std::vector<ScanBackend> backends{ScanBackend::kPackedWords};
  if (kernels::simd_level_available(SimdLevel::kAVX2)) {
    backends.push_back(ScanBackend::kPackedAVX2);
  }
  if (kernels::simd_level_available(SimdLevel::kAVX512)) {
    backends.push_back(ScanBackend::kPackedAVX512);
  }
  if (kernels::simd_level_available(SimdLevel::kNEON)) {
    backends.push_back(ScanBackend::kPackedNEON);
  }
  backends.push_back(ScanBackend::kPacked);  // the dispatched default
  return backends;
}

const char* backend_name(ScanBackend b) {
  switch (b) {
    case ScanBackend::kPacked:
      return "kPacked";
    case ScanBackend::kPackedWords:
      return "kPackedWords";
    case ScanBackend::kPackedAVX2:
      return "kPackedAVX2";
    case ScanBackend::kPackedAVX512:
      return "kPackedAVX512";
    case ScanBackend::kPackedNEON:
      return "kPackedNEON";
    default:
      return "?";
  }
}

struct FuzzConfig {
  std::size_t dim = 0;
  std::size_t size = 0;
  bool ternary = false;
  bool tie_heavy = false;

  std::string describe() const {
    return "dim=" + std::to_string(dim) + " size=" + std::to_string(size) +
           (ternary ? " ternary" : " bipolar") +
           (tie_heavy ? " tie-heavy" : "");
  }
};

Hypervector random_entry(const FuzzConfig& cfg, Xoshiro256& rng) {
  if (cfg.ternary) {
    // Vary the density so supports of different sizes are exercised.
    const double density = 0.2 + 0.6 * (rng.uniform_double());
    return random_ternary(cfg.dim, density, rng);
  }
  return random_bipolar(cfg.dim, rng);
}

Codebook make_codebook(const FuzzConfig& cfg, Xoshiro256& rng) {
  std::vector<Hypervector> items;
  items.reserve(cfg.size);
  if (cfg.tie_heavy) {
    // A handful of distinct rows repeated in random order: guaranteed exact
    // similarity ties at every threshold, the case that breaks any backend
    // whose ordering is not exactly hdc::match_order.
    const std::size_t distinct = 1 + rng.uniform(3);
    std::vector<Hypervector> base;
    for (std::size_t i = 0; i < distinct; ++i) {
      base.push_back(random_entry(cfg, rng));
    }
    for (std::size_t i = 0; i < cfg.size; ++i) {
      items.push_back(base[rng.uniform(distinct)]);
    }
  } else {
    for (std::size_t i = 0; i < cfg.size; ++i) {
      items.push_back(random_entry(cfg, rng));
    }
  }
  return Codebook(std::move(items));
}

// Query representations: bipolar, ternary, an exact codebook hit, the
// clipped single-object bundle, the integer multi-object residual (which
// must take the scalar fallback inside packed memories), and all-zero.
std::vector<Hypervector> make_queries(const FuzzConfig& cfg, const Codebook& cb,
                                      Xoshiro256& rng) {
  std::vector<Hypervector> qs;
  qs.push_back(random_bipolar(cfg.dim, rng));
  qs.push_back(random_ternary(cfg.dim, 0.5, rng));
  qs.push_back(cb.item(rng.uniform(cb.size())));
  qs.push_back(clip_ternary(
      bundle(cb.item(rng.uniform(cb.size())), random_bipolar(cfg.dim, rng))));
  qs.push_back(bundle(bundle(cb.item(0), random_bipolar(cfg.dim, rng)),
                      random_bipolar(cfg.dim, rng)));
  qs.push_back(Hypervector(cfg.dim));
  return qs;
}

void expect_same_matches(const std::vector<Match>& ref,
                         const std::vector<Match>& got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].index, got[i].index) << "position " << i;
    EXPECT_EQ(ref[i].similarity, got[i].similarity) << "position " << i;
  }
}

// Random index subset (with duplicates and arbitrary order) for the *_among
// scans; always non-empty and in range.
std::vector<std::size_t> random_subset(std::size_t size, Xoshiro256& rng) {
  const std::size_t n = 1 + rng.uniform(size);
  std::vector<std::size_t> subset;
  subset.reserve(n);
  for (std::size_t i = 0; i < n; ++i) subset.push_back(rng.uniform(size));
  return subset;
}

void check_one_query(const Codebook& cb, const ItemMemory& scalar,
                     const ItemMemory& packed, const Hypervector& query,
                     Xoshiro256& rng) {
  const Match ref_best = scalar.best(query);
  const Match got_best = packed.best(query);
  EXPECT_EQ(ref_best.index, got_best.index);
  EXPECT_EQ(ref_best.similarity, got_best.similarity);

  // Thresholds: everything / nothing / exact-boundary (exclusive) / mid.
  for (double th :
       {-2.0, 1.5, ref_best.similarity, ref_best.similarity / 2.0, 0.0}) {
    expect_same_matches(scalar.above(query, th), packed.above(query, th));
  }

  for (std::size_t k : {std::size_t{1}, cb.size() / 2, cb.size(),
                        cb.size() + 5}) {
    if (k == 0) continue;
    expect_same_matches(scalar.top_k(query, k), packed.top_k(query, k));
  }

  const std::vector<std::size_t> subset = random_subset(cb.size(), rng);
  const Match ref_among = scalar.best_among(query, subset);
  const Match got_among = packed.best_among(query, subset);
  EXPECT_EQ(ref_among.index, got_among.index);
  EXPECT_EQ(ref_among.similarity, got_among.similarity);
  expect_same_matches(scalar.above_among(query, ref_best.similarity / 2.0, subset),
                      packed.above_among(query, ref_best.similarity / 2.0, subset));

  std::vector<std::int64_t> ref_dots(cb.size()), got_dots(cb.size());
  scalar.dots(query, ref_dots);
  packed.dots(query, got_dots);
  EXPECT_EQ(ref_dots, got_dots);
}

// Shard counts of the scatter-gather axis: the degenerate single shard,
// small counts that rarely divide the codebook size, and counts that
// exceed the 1..45-row codebooks entirely (clamped to one row per shard).
const std::size_t kShardCounts[] = {1, 2, 3, 7, 16};

void run_config(const FuzzConfig& cfg, const std::vector<ScanBackend>& backends,
                Xoshiro256& rng) {
  SCOPED_TRACE(cfg.describe());
  const Codebook cb = make_codebook(cfg, rng);
  const ItemMemory scalar(cb, ScanBackend::kScalar);
  std::vector<ItemMemory> packed;
  std::vector<std::string> names;
  packed.reserve(backends.size() + 3 +
                 sizeof(kShardCounts) / sizeof(kShardCounts[0]));
  for (ScanBackend b : backends) {
    packed.emplace_back(cb, b);
    names.emplace_back(backend_name(b));
  }
  // A full-coverage tiered memory (nprobe = all buckets) rides the same
  // differential: the verification bound says it is indistinguishable from
  // the exact backends on every scan surface.
  packed.emplace_back(
      cb, ScanBackend::kTiered,
      kernels::TieredConfig{.clusters = 1 + rng.uniform(cb.size()),
                            .nprobe = cb.size()});
  names.emplace_back("kTiered(nprobe=all)");
  // The scatter-gather axis: exact sharded memories at every count —
  // including counts that do not divide the size and counts above it —
  // must merge to the same bit-identical results, and so must a sharded
  // memory whose shards each carry a full-coverage tier.
  for (const std::size_t n : kShardCounts) {
    packed.emplace_back(cb, ScanBackend::kSharded, std::nullopt, nullptr,
                        kernels::ShardedConfig{.shards = n});
    names.emplace_back("kSharded(n=" + std::to_string(n) + ")");
  }
  packed.emplace_back(
      cb, ScanBackend::kSharded,
      kernels::TieredConfig{.clusters = 1 + rng.uniform(cb.size()),
                            .nprobe = cb.size()},
      nullptr, kernels::ShardedConfig{.shards = 1 + rng.uniform(5)});
  names.emplace_back("kSharded(tiered,nprobe=all)");
  for (const Hypervector& q : make_queries(cfg, cb, rng)) {
    for (std::size_t i = 0; i < packed.size(); ++i) {
      SCOPED_TRACE(names[i]);
      check_one_query(cb, scalar, packed[i], q, rng);
    }
  }
}

TEST(KernelFuzz, DifferentialAcrossBackendsAndLevels) {
  const std::vector<ScanBackend> backends = packed_backends();
  Xoshiro256 rng(20260728);

  std::vector<FuzzConfig> configs;
  // Deterministic hard cases first: every boundary dim x alphabet x tie mode.
  for (std::size_t dim : kBoundaryDims) {
    for (bool ternary : {false, true}) {
      for (bool tie_heavy : {false, true}) {
        configs.push_back({dim, 5 + rng.uniform(20), ternary, tie_heavy});
      }
    }
  }
  // Randomized remainder up to ~200 configurations.
  while (configs.size() < 200) {
    FuzzConfig cfg;
    cfg.dim = 1 + rng.uniform(700);
    cfg.size = 1 + rng.uniform(40);
    cfg.ternary = rng.uniform(2) == 1;
    cfg.tie_heavy = rng.uniform(4) == 0;
    configs.push_back(cfg);
  }

  for (const FuzzConfig& cfg : configs) run_config(cfg, backends, rng);
}

TEST(KernelFuzz, AllLevelsPackIdenticalPlanes) {
  // Query packing is part of the dispatch surface too: every tier must emit
  // byte-identical sign/nonzero planes and the same bipolar classification.
  Xoshiro256 rng(424242);
  std::vector<SimdLevel> levels{SimdLevel::kScalarWords};
  for (SimdLevel l : {SimdLevel::kAVX2, SimdLevel::kAVX512, SimdLevel::kNEON}) {
    if (kernels::simd_level_available(l)) levels.push_back(l);
  }
  for (std::size_t dim : {std::size_t{63}, std::size_t{64}, std::size_t{65},
                          std::size_t{255}, std::size_t{256}, std::size_t{257},
                          std::size_t{1000}}) {
    for (const Hypervector& v :
         {random_bipolar(dim, rng), random_ternary(dim, 0.5, rng),
          Hypervector(dim)}) {
      const std::optional<PackedQuery> ref =
          PackedQuery::pack(v, SimdLevel::kScalarWords);
      ASSERT_TRUE(ref.has_value());
      for (SimdLevel l : levels) {
        SCOPED_TRACE(kernels::to_string(l));
        const std::optional<PackedQuery> got = PackedQuery::pack(v, l);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(ref->dim, got->dim);
        EXPECT_EQ(ref->bipolar, got->bipolar);
        EXPECT_EQ(ref->sign, got->sign);
        EXPECT_EQ(ref->nonzero, got->nonzero);
      }
    }
    // Integer bundles are rejected identically by every tier.
    Hypervector bundle_like(dim);
    bundle_like[dim / 2] = 3;
    for (SimdLevel l : levels) {
      EXPECT_FALSE(PackedQuery::pack(bundle_like, l).has_value())
          << kernels::to_string(l);
    }
  }
}

TEST(KernelFuzz, TieredNprobeAllBitIdenticalOnEveryLevel) {
  // The tiered verification bound, pinned per SIMD tier: with nprobe
  // covering every bucket, TieredItemMemory must reproduce the
  // PackedItemMemory scans bit-for-bit (index, similarity, ordering) at
  // each tier this CPU can execute — so the tier index is a pure routing
  // structure with no arithmetic of its own.
  using kernels::PackedItemMemory;
  using kernels::TieredConfig;
  using kernels::TieredItemMemory;
  std::vector<SimdLevel> levels{SimdLevel::kScalarWords};
  for (SimdLevel l : {SimdLevel::kAVX2, SimdLevel::kAVX512, SimdLevel::kNEON}) {
    if (kernels::simd_level_available(l)) levels.push_back(l);
  }
  Xoshiro256 rng(20260729);
  for (int round = 0; round < 24; ++round) {
    FuzzConfig cfg;
    cfg.dim = kBoundaryDims[rng.uniform(
        sizeof(kBoundaryDims) / sizeof(kBoundaryDims[0]))];
    cfg.size = 1 + rng.uniform(40);
    cfg.ternary = rng.uniform(2) == 1;
    cfg.tie_heavy = rng.uniform(3) == 0;
    SCOPED_TRACE(cfg.describe());
    const Codebook cb = make_codebook(cfg, rng);
    const TieredConfig tiered_cfg{.clusters = 1 + rng.uniform(cfg.size),
                                  .nprobe = cfg.size};
    for (SimdLevel level : levels) {
      SCOPED_TRACE(kernels::to_string(level));
      const PackedItemMemory ref(cb, level);
      const TieredItemMemory tiered(cb, tiered_cfg, level);
      EXPECT_TRUE(tiered.exact());
      EXPECT_EQ(tiered.simd_level(), level);
      for (const Hypervector& q : make_queries(cfg, cb, rng)) {
        const auto pq = PackedQuery::pack(q, level);
        if (!pq) continue;  // integer bundles have no packed reference
        const Match rb = ref.best(*pq);
        const Match tb = tiered.best(*pq);
        EXPECT_EQ(rb.index, tb.index);
        EXPECT_EQ(rb.similarity, tb.similarity);
        for (double th : {-2.0, rb.similarity, rb.similarity / 2.0}) {
          expect_same_matches(ref.above(*pq, th), tiered.above(*pq, th));
        }
        expect_same_matches(ref.top_k(*pq, 1 + cfg.size / 2),
                            tiered.top_k(*pq, 1 + cfg.size / 2));
      }
    }
  }
}

// Packable query block for a codebook: the make_queries representations
// minus the integer bundle (which cannot pack), cycled to block size `q`.
std::vector<PackedQuery> make_packed_block(const FuzzConfig& cfg,
                                           const Codebook& cb, SimdLevel level,
                                           std::size_t q, Xoshiro256& rng) {
  const std::vector<Hypervector> pool = make_queries(cfg, cb, rng);
  std::vector<PackedQuery> block;
  block.reserve(q);
  std::size_t i = 0;
  while (block.size() < q) {
    auto packed = PackedQuery::pack(pool[i++ % pool.size()], level);
    if (packed) block.push_back(std::move(*packed));
  }
  return block;
}

TEST(KernelFuzz, BlockedScansMatchPerQueryAtEveryBlockSize) {
  // The tentpole contract: PackedItemMemory's blocked scans are bit-identical
  // to per-query scans at every block size, on every tier this CPU has,
  // through every surface (best_block / top_k_block / dots_block) — so block
  // size, like ScanBackend, is a pure performance knob.
  using kernels::PackedItemMemory;
  std::vector<SimdLevel> levels{SimdLevel::kScalarWords};
  for (SimdLevel l : {SimdLevel::kAVX2, SimdLevel::kAVX512, SimdLevel::kNEON}) {
    if (kernels::simd_level_available(l)) levels.push_back(l);
  }
  Xoshiro256 rng(20260806);
  std::size_t round = 0;
  for (std::size_t q : kBlockSizes) {
    for (bool ternary : {false, true}) {
      FuzzConfig cfg;
      cfg.dim = kBoundaryDims[round % (sizeof(kBoundaryDims) /
                                       sizeof(kBoundaryDims[0]))];
      cfg.size = 1 + rng.uniform(40);
      cfg.ternary = ternary;
      cfg.tie_heavy = round % 2 == 0;
      ++round;
      SCOPED_TRACE(cfg.describe() + " block=" + std::to_string(q));
      const Codebook cb = make_codebook(cfg, rng);
      for (SimdLevel level : levels) {
        SCOPED_TRACE(kernels::to_string(level));
        const PackedItemMemory pm(cb, level);
        const std::vector<PackedQuery> block =
            make_packed_block(cfg, cb, level, q, rng);

        const std::vector<Match> best = pm.best_block(block);
        ASSERT_EQ(best.size(), q);
        for (std::size_t i = 0; i < q; ++i) {
          const Match ref = pm.best(block[i]);
          EXPECT_EQ(ref.index, best[i].index) << "query " << i;
          EXPECT_EQ(ref.similarity, best[i].similarity) << "query " << i;
        }

        for (std::size_t k : {std::size_t{0}, std::size_t{1},
                              cfg.size / 2 + 1, cfg.size + 3}) {
          const std::vector<std::vector<Match>> lists = pm.top_k_block(block, k);
          ASSERT_EQ(lists.size(), q);
          for (std::size_t i = 0; i < q; ++i) {
            SCOPED_TRACE("query " + std::to_string(i) +
                         " k=" + std::to_string(k));
            if (k == 0) {
              EXPECT_TRUE(lists[i].empty());
              continue;
            }
            expect_same_matches(pm.top_k(block[i], k), lists[i]);
          }
        }

        std::vector<std::int64_t> blocked(q * cfg.size);
        pm.dots_block(block, blocked);
        std::vector<std::int64_t> single(cfg.size);
        for (std::size_t i = 0; i < q; ++i) {
          pm.dots(block[i], single);
          EXPECT_TRUE(std::equal(single.begin(), single.end(),
                                 blocked.begin() +
                                     static_cast<std::ptrdiff_t>(i * cfg.size)))
              << "query " << i;
        }
      }
    }
  }
}

TEST(KernelFuzz, ItemMemoryBestBlockMatchesPerQueryOnEveryBackend) {
  // The routing layer above the kernels: ItemMemory::best_block must match
  // per-query best() — result AND deterministic measurement count — on every
  // backend and mode, including blocks that mix packable queries with the
  // integer bundle (forcing the per-query fallback mid-block) and tiered
  // memories where the default mode never takes the blocked path at all.
  Xoshiro256 rng(20260807);
  for (std::size_t q : kBlockSizes) {
    FuzzConfig cfg;
    cfg.dim = kBoundaryDims[rng.uniform(sizeof(kBoundaryDims) /
                                        sizeof(kBoundaryDims[0]))];
    cfg.size = 2 + rng.uniform(30);
    cfg.ternary = rng.uniform(2) == 1;
    cfg.tie_heavy = rng.uniform(2) == 0;
    SCOPED_TRACE(cfg.describe() + " block=" + std::to_string(q));
    const Codebook cb = make_codebook(cfg, rng);
    // make_queries includes the integer residual bundle, so cycling the pool
    // plants unpackable queries inside every block of size >= 5.
    const std::vector<Hypervector> pool = make_queries(cfg, cb, rng);
    std::vector<Hypervector> block;
    block.reserve(q);
    for (std::size_t i = 0; i < q; ++i) block.push_back(pool[i % pool.size()]);

    const ItemMemory scalar(cb, ScanBackend::kScalar);
    const ItemMemory packed(cb, ScanBackend::kPacked);
    const ItemMemory tiered(
        cb, ScanBackend::kTiered,
        kernels::TieredConfig{.clusters = 1 + rng.uniform(cfg.size),
                              .nprobe = 1});
    struct Case {
      const ItemMemory* memory;
      ScanMode mode;
      const char* name;
    };
    const Case cases[] = {
        {&scalar, ScanMode::kDefault, "kScalar"},
        {&packed, ScanMode::kDefault, "kPacked"},
        {&packed, ScanMode::kExact, "kPacked/exact"},
        {&tiered, ScanMode::kDefault, "kTiered"},
        {&tiered, ScanMode::kExact, "kTiered/exact"},
    };
    for (const Case& c : cases) {
      SCOPED_TRACE(c.name);
      std::vector<std::uint64_t> scanned_block(q, ~std::uint64_t{0});
      const std::vector<Match> got =
          c.memory->best_block(block, c.mode, scanned_block.data());
      ASSERT_EQ(got.size(), q);
      for (std::size_t i = 0; i < q; ++i) {
        std::uint64_t scanned_one = ~std::uint64_t{0};
        const Match ref = c.memory->best(block[i], c.mode, &scanned_one);
        EXPECT_EQ(ref.index, got[i].index) << "query " << i;
        EXPECT_EQ(ref.similarity, got[i].similarity) << "query " << i;
        EXPECT_EQ(scanned_one, scanned_block[i]) << "query " << i;
      }
    }
    // The empty block is a no-op on every backend.
    EXPECT_TRUE(scalar.best_block({}).empty());
    EXPECT_TRUE(packed.best_block({}).empty());
    EXPECT_TRUE(tiered.best_block({}).empty());
  }
}

TEST(KernelFuzz, ForcedUnavailableLevelThrows) {
  Xoshiro256 rng(7);
  const Codebook cb(128, 4, rng);
  const std::pair<ScanBackend, SimdLevel> forced[] = {
      {ScanBackend::kPackedWords, SimdLevel::kScalarWords},
      {ScanBackend::kPackedAVX2, SimdLevel::kAVX2},
      {ScanBackend::kPackedAVX512, SimdLevel::kAVX512},
      {ScanBackend::kPackedNEON, SimdLevel::kNEON},
  };
  for (const auto& [backend, level] : forced) {
    if (kernels::simd_level_available(level)) {
      const ItemMemory memory(cb, backend);
      EXPECT_EQ(memory.backend(), ScanBackend::kPacked);
      ASSERT_TRUE(memory.simd_level().has_value());
      EXPECT_EQ(*memory.simd_level(), level);
    } else {
      EXPECT_THROW(ItemMemory(cb, backend), std::invalid_argument)
          << kernels::to_string(level);
    }
  }
}

TEST(KernelFuzz, SimdLevelNamesRoundTrip) {
  for (SimdLevel l : {SimdLevel::kScalarWords, SimdLevel::kAVX2,
                      SimdLevel::kAVX512, SimdLevel::kNEON}) {
    const auto parsed = kernels::parse_simd_level(kernels::to_string(l));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, l);
  }
  EXPECT_EQ(kernels::parse_simd_level("words"), SimdLevel::kScalarWords);
  EXPECT_FALSE(kernels::parse_simd_level("auto").has_value());
  EXPECT_FALSE(kernels::parse_simd_level("sse9").has_value());
}

TEST(KernelFuzz, EnvClampSelectsOnlyAvailableLevels) {
  using kernels::clamp_simd_level;
  // Unset / auto / garbage keep the detected level.
  EXPECT_EQ(clamp_simd_level(SimdLevel::kAVX512, ""), SimdLevel::kAVX512);
  EXPECT_EQ(clamp_simd_level(SimdLevel::kAVX2, "auto"), SimdLevel::kAVX2);
  EXPECT_EQ(clamp_simd_level(SimdLevel::kNEON, "bogus"), SimdLevel::kNEON);
  // Scalar can always be requested.
  EXPECT_EQ(clamp_simd_level(SimdLevel::kAVX512, "scalar"),
            SimdLevel::kScalarWords);
  // Downgrade within the x86 family is honored; upgrades past the CPU and
  // cross-family requests fall back to the detected level.
  EXPECT_EQ(clamp_simd_level(SimdLevel::kAVX512, "avx2"), SimdLevel::kAVX2);
  EXPECT_EQ(clamp_simd_level(SimdLevel::kAVX2, "avx512"), SimdLevel::kAVX2);
  EXPECT_EQ(clamp_simd_level(SimdLevel::kAVX2, "neon"), SimdLevel::kAVX2);
  EXPECT_EQ(clamp_simd_level(SimdLevel::kNEON, "avx2"), SimdLevel::kNEON);
  // The dispatched level is always executable on this CPU.
  EXPECT_TRUE(kernels::simd_level_available(kernels::dispatched_simd_level()));
}

}  // namespace
