// Unit tests for tax::NameRegistry.
#include <gtest/gtest.h>

#include "taxonomy/names.hpp"

namespace {

using namespace factorhd::tax;

class NamesTest : public ::testing::Test {
 protected:
  NamesTest()
      : registry_(Taxonomy(std::vector<std::vector<std::size_t>>{{4, 2}, {3}})) {
    registry_.set_class_name(0, "animal");
    registry_.set_class_name(1, "color");
    registry_.set_item_name(0, 1, 0, "dog");
    registry_.set_item_name(0, 2, 0, "spaniel");
    registry_.set_item_name(0, 2, 1, "terrier");
    registry_.set_item_name(1, 1, 2, "black");
  }

  NameRegistry registry_;
};

TEST_F(NamesTest, ForwardLookups) {
  EXPECT_EQ(registry_.class_name(0), "animal");
  EXPECT_EQ(registry_.item_name(0, 1, 0), "dog");
  EXPECT_EQ(registry_.item_name(0, 2, 1), "terrier");
}

TEST_F(NamesTest, NumericFallbacks) {
  EXPECT_EQ(registry_.item_name(0, 1, 3), "c0/l1/3");
  NameRegistry bare{Taxonomy(2, {4})};
  EXPECT_EQ(bare.class_name(1), "c1");
}

TEST_F(NamesTest, ReverseLookups) {
  EXPECT_EQ(registry_.class_index("color"), 1u);
  EXPECT_EQ(registry_.item_index(0, 2, "spaniel"), 0u);
  EXPECT_FALSE(registry_.class_index("vehicle").has_value());
  EXPECT_FALSE(registry_.item_index(0, 1, "cat").has_value());
}

TEST_F(NamesTest, RenamingUpdatesReverseLookup) {
  registry_.set_item_name(0, 1, 0, "hound");
  EXPECT_FALSE(registry_.item_index(0, 1, "dog").has_value());
  EXPECT_EQ(registry_.item_index(0, 1, "hound"), 0u);
}

TEST_F(NamesTest, DuplicatesRejected) {
  EXPECT_THROW(registry_.set_class_name(1, "animal"), std::invalid_argument);
  EXPECT_THROW(registry_.set_item_name(0, 2, 1, "spaniel"),
               std::invalid_argument);
  // Re-assigning the same name to the same slot is idempotent, not an error.
  EXPECT_NO_THROW(registry_.set_class_name(0, "animal"));
  EXPECT_NO_THROW(registry_.set_item_name(0, 2, 0, "spaniel"));
}

TEST_F(NamesTest, RangeChecks) {
  EXPECT_THROW(registry_.set_class_name(2, "x"), std::out_of_range);
  EXPECT_THROW(registry_.set_item_name(0, 3, 0, "x"), std::out_of_range);
  EXPECT_THROW(registry_.set_item_name(1, 1, 3, "x"), std::out_of_range);
  EXPECT_THROW((void)registry_.item_name(0, 1, 4), std::out_of_range);
  EXPECT_THROW((void)registry_.class_name(7), std::out_of_range);
}

TEST_F(NamesTest, DescribeRendersPathsAndAbsence) {
  Object obj(2);
  obj.set_path(0, {0, 1});  // dog -> terrier
  EXPECT_EQ(registry_.describe(obj), "{animal: dog/terrier, color: -}");
  obj.set_path(1, {2});
  EXPECT_EQ(registry_.describe(obj), "{animal: dog/terrier, color: black}");
}

}  // namespace
