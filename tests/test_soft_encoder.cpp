// Unit tests for the soft (probability-weighted) label encoder.
#include <gtest/gtest.h>

#include "core/factorhd.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using core::SoftEncodeOptions;
using core::SoftLabelEncoder;

class SoftEncoderTest : public ::testing::Test {
 protected:
  SoftEncoderTest()
      : rng_(88), taxonomy_(2, {8}), books_(taxonomy_, 1024, rng_),
        encoder_(books_), factorizer_(encoder_) {
    std::vector<tax::Object> labels;
    for (std::size_t c = 0; c < 8; ++c) {
      tax::Object obj(2);
      obj.set_path(0, {c});
      obj.set_path(1, {0});
      labels.push_back(std::move(obj));
    }
    soft_ = std::make_unique<SoftLabelEncoder>(encoder_, labels);
    labels_ = std::move(labels);
  }

  util::Xoshiro256 rng_;
  tax::Taxonomy taxonomy_;
  tax::TaxonomyCodebooks books_;
  core::Encoder encoder_;
  core::Factorizer factorizer_;
  std::unique_ptr<SoftLabelEncoder> soft_;
  std::vector<tax::Object> labels_;
};

TEST_F(SoftEncoderTest, OneHotMatchesScaledHardEncoding) {
  std::vector<double> p(8, 0.0);
  p[3] = 1.0;
  const hdc::Hypervector hv = soft_->encode(p);
  tax::Object obj(2);
  obj.set_path(0, {3});
  obj.set_path(1, {0});
  const hdc::Hypervector hard = encoder_.encode_object(obj);
  for (std::size_t d = 0; d < hv.dim(); ++d) {
    EXPECT_EQ(hv[d], 64 * hard[d]);
  }
}

TEST_F(SoftEncoderTest, DominantLabelFactorizesCorrectly) {
  std::vector<double> p(8, 0.05);
  p[5] = 0.65;
  hdc::Hypervector hv = soft_->encode(p);
  soft_->normalize_scale(hv);
  const auto got = factorizer_.factorize_single(hv);
  ASSERT_TRUE(got.classes[0].present);
  EXPECT_EQ(got.classes[0].path[0], 5u);
}

TEST_F(SoftEncoderTest, MinProbabilityDropsTail) {
  SoftEncodeOptions opts;
  opts.min_probability = 0.5;
  const SoftLabelEncoder strict(encoder_, labels_, opts);
  std::vector<double> p(8, 0.1);  // everything below the floor
  p[0] = 0.3;
  EXPECT_EQ(strict.encode(p), hdc::Hypervector(1024));
}

TEST_F(SoftEncoderTest, NormalizeScaleInvertsEncoding) {
  std::vector<double> p(8, 0.0);
  p[2] = 1.0;
  hdc::Hypervector hv = soft_->encode(p);
  soft_->normalize_scale(hv);
  tax::Object obj(2);
  obj.set_path(0, {2});
  obj.set_path(1, {0});
  EXPECT_EQ(hv, encoder_.encode_object(obj));
}

TEST_F(SoftEncoderTest, FloatAndDoubleOverloadsAgree) {
  std::vector<double> pd{0.1, 0.2, 0.3, 0.4, 0.0, 0.0, 0.0, 0.0};
  std::vector<float> pf(pd.begin(), pd.end());
  EXPECT_EQ(soft_->encode(std::span<const double>(pd)),
            soft_->encode(std::span<const float>(pf)));
}

TEST_F(SoftEncoderTest, InvalidInputsThrow) {
  EXPECT_THROW(SoftLabelEncoder(encoder_, {}), std::invalid_argument);
  SoftEncodeOptions bad;
  bad.scale = 0.0;
  EXPECT_THROW(SoftLabelEncoder(encoder_, labels_, bad),
               std::invalid_argument);
  const std::vector<double> wrong_count{0.5, 0.5};
  EXPECT_THROW((void)soft_->encode(std::span<const double>(wrong_count)),
               std::invalid_argument);
}

TEST_F(SoftEncoderTest, AccessorsReportConfiguration) {
  EXPECT_EQ(soft_->num_labels(), 8u);
  EXPECT_EQ(soft_->dim(), 1024u);
  EXPECT_DOUBLE_EQ(soft_->options().scale, 64.0);
}

}  // namespace
