// docs/TUNING.md <-> util::env_knobs() drift check.
//
// TUNING.md is the operator-facing guide to every FACTORHD_* runtime knob.
// This suite pins it to the single source of truth (the env-knob registry)
// in both directions: every registered knob must be documented, and every
// FACTORHD_* token the doc mentions must exist in the registry — so the doc
// can neither lag behind a new knob nor keep advertising a removed one.
//
// The repo path comes in via the FACTORHD_REPO_DIR compile definition
// (tests/CMakeLists.txt) because CTest runs from the build tree.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "util/env.hpp"

#ifndef FACTORHD_REPO_DIR
#error "FACTORHD_REPO_DIR must be defined by the build"
#endif

namespace {

std::string read_doc(const std::string& relative) {
  const std::string path = std::string(FACTORHD_REPO_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(EnvDocs, EveryRegisteredKnobIsDocumentedInTuningGuide) {
  const std::string doc = read_doc("docs/TUNING.md");
  for (const factorhd::util::EnvKnob& knob :
       factorhd::util::env_knobs()) {
    EXPECT_NE(doc.find(std::string("`") + knob.name + "`"),
              std::string::npos)
        << knob.name << " is registered in util::env_knobs() but not "
        << "documented (as an inline-code token) in docs/TUNING.md";
  }
}

TEST(EnvDocs, TuningGuideNamesOnlyRegisteredKnobs) {
  const std::string doc = read_doc("docs/TUNING.md");
  std::set<std::string> registered;
  for (const factorhd::util::EnvKnob& knob :
       factorhd::util::env_knobs()) {
    registered.insert(knob.name);
  }
  const std::regex token(R"(FACTORHD_[A-Z0-9]+(?:_[A-Z0-9]+)*)");
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), token);
       it != std::sregex_iterator(); ++it) {
    EXPECT_TRUE(registered.contains(it->str()))
        << it->str() << " appears in docs/TUNING.md but is not registered "
        << "in util::env_knobs()";
  }
}

}  // namespace
