// Integration tests across modules: the full neuro-symbolic pipelines that
// the Table I / Table II benches run at scale, exercised here at small size.
#include <gtest/gtest.h>

#include <cmath>

#include "core/factorhd.hpp"
#include "data/cifar_like.hpp"
#include "data/raven_like.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;

// CIFAR-10-like pipeline: train the MLP, encode each test image's label HV
// weighted by the network's softmax (the "features -> HV" step), factorize,
// compare against ground truth. Factorization accuracy must track (and not
// exceed by much) classifier accuracy.
TEST(Integration, Cifar10LikePipeline) {
  util::Xoshiro256 rng(101);
  data::CifarLikeSpec spec = data::cifar10_like_spec();
  spec.train_per_class = 40;
  spec.test_per_class = 10;
  const data::CifarLike ds = data::make_cifar_like(spec, rng);

  nn::Mlp net({spec.feature_dim, 48, 10}, rng);
  nn::TrainOptions topts;
  topts.epochs = 12;
  (void)nn::train(net, ds.train, topts);
  const double classifier_acc = nn::evaluate_accuracy(net, ds.test);
  ASSERT_GT(classifier_acc, 0.8);

  const tax::Taxonomy taxonomy = data::label_taxonomy(spec);
  const tax::TaxonomyCodebooks books(taxonomy, 512, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  std::size_t correct = 0;
  std::vector<std::size_t> rows(ds.test.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  nn::Matrix logits = net.forward(nn::gather_rows(ds.test.features, rows));
  const nn::Matrix probs = nn::Mlp::softmax(logits);

  // Probability-weighted bundle of label encodings: the dominant term is
  // the predicted class; competing classes contribute proportional noise.
  std::vector<tax::Object> label_objects;
  for (int c = 0; c < 10; ++c) {
    label_objects.push_back(data::label_object(spec, c));
  }
  const core::SoftLabelEncoder soft(encoder, std::move(label_objects));

  for (std::size_t i = 0; i < ds.test.size(); ++i) {
    const hdc::Hypervector image_hv = soft.encode(probs.row(i));
    const auto got = factorizer.factorize_single(image_hv);
    if (got.classes[0].present &&
        got.classes[0].path[0] ==
            static_cast<std::size_t>(ds.test.labels[i])) {
      ++correct;
    }
  }
  const double factorization_acc =
      static_cast<double>(correct) / static_cast<double>(ds.test.size());
  // The paper's Table II claim shape: factorization accuracy within a few
  // percent of classifier accuracy.
  EXPECT_GT(factorization_acc, classifier_acc - 0.05);
}

// CIFAR-100-like coarse/fine: factorizing the coarse level only must be at
// least as accurate as the full fine factorization.
TEST(Integration, Cifar100LikeCoarseFineFactorization) {
  util::Xoshiro256 rng(102);
  data::CifarLikeSpec spec = data::cifar100_like_spec();
  const tax::Taxonomy taxonomy = data::label_taxonomy(spec);
  const tax::TaxonomyCodebooks books(taxonomy, 1024, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  std::size_t coarse_ok = 0, fine_ok = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    const int fine = static_cast<int>(rng.uniform(100));
    const auto target =
        encoder.encode_object(data::label_object(spec, fine));
    // Partial factorization: coarse only (depth 1).
    core::FactorizeOptions copts;
    copts.selected_classes = {0};
    copts.max_depth = 1;
    const auto coarse_res = factorizer.factorize(target, copts);
    if (coarse_res.objects[0].classes[0].path[0] ==
        static_cast<std::size_t>(fine / 5)) {
      ++coarse_ok;
    }
    // Full factorization down to the fine level.
    const auto full = factorizer.factorize_single(target);
    if (full.classes[0].path.size() == 2 &&
        full.classes[0].path[1] == static_cast<std::size_t>(fine)) {
      ++fine_ok;
    }
  }
  EXPECT_GE(coarse_ok, fine_ok);
  EXPECT_GT(static_cast<double>(fine_ok) / trials, 0.9);
}

// RAVEN-like pipeline: encode a multi-object panel, factorize with the
// multi-object algorithm, require exact panel recovery.
TEST(Integration, RavenLikePanelFactorization) {
  util::Xoshiro256 rng(103);
  data::RavenSpec spec;
  spec.constellation = data::Constellation::kTwoByTwoGrid;
  const tax::Taxonomy taxonomy = data::raven_taxonomy(spec);
  const tax::TaxonomyCodebooks books(taxonomy, 8192, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  int correct = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const data::RavenPanel panel = data::random_panel(spec, rng);
    const tax::Scene scene = data::to_tax_scene(panel, spec);
    const auto target = encoder.encode_scene(scene);

    core::FactorizeOptions opts;
    opts.multi_object = true;
    opts.num_objects_hint = scene.size();
    opts.max_objects = 6;
    const auto result = factorizer.factorize(target, opts);
    tax::Scene recovered;
    for (const auto& o : result.objects) recovered.push_back(o.to_object(3));
    if (tax::same_multiset(recovered, scene)) ++correct;
  }
  EXPECT_GE(correct, 8) << correct << "/" << trials;
}

// Superposition training support (Table II "bundled image inputs"): bundle
// K label HVs and factorize all K labels back.
TEST(Integration, BundledImageSuperposition) {
  util::Xoshiro256 rng(104);
  data::CifarLikeSpec spec = data::cifar10_like_spec();
  const tax::Taxonomy taxonomy = data::label_taxonomy(spec);
  const tax::TaxonomyCodebooks books(taxonomy, 4096, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  int correct = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    // Two distinct labels in superposition.
    const int a = static_cast<int>(rng.uniform(10));
    int b = static_cast<int>(rng.uniform(10));
    while (b == a) b = static_cast<int>(rng.uniform(10));
    const tax::Scene scene{data::label_object(spec, a),
                           data::label_object(spec, b)};
    const auto target = encoder.encode_scene(scene);

    core::FactorizeOptions opts;
    opts.multi_object = true;
    opts.num_objects_hint = 2;
    opts.max_objects = 4;
    const auto result = factorizer.factorize(target, opts);
    tax::Scene recovered;
    for (const auto& o : result.objects) recovered.push_back(o.to_object(2));
    if (tax::same_multiset(recovered, scene)) ++correct;
  }
  EXPECT_GE(correct, 13) << correct << "/" << trials;
}

}  // namespace
