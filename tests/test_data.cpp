// Unit tests for the dataset substrate (synthetic clusters, CIFAR-like,
// RAVEN-like).
#include <gtest/gtest.h>

#include <set>

#include "data/cifar_like.hpp"
#include "data/raven_like.hpp"
#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::data;

TEST(Synthetic, PrototypesAreUnitNorm) {
  util::Xoshiro256 rng(1);
  const nn::Matrix p = make_prototypes(5, 32, rng);
  for (std::size_t c = 0; c < 5; ++c) {
    double norm = 0.0;
    for (std::size_t d = 0; d < 32; ++d) norm += p.at(c, d) * p.at(c, d);
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST(Synthetic, SampleShapesAndLabels) {
  util::Xoshiro256 rng(2);
  const nn::Matrix p = make_prototypes(3, 8, rng);
  const nn::Dataset ds = sample_clusters(p, 10, 0.1, rng);
  EXPECT_EQ(ds.size(), 30u);
  EXPECT_EQ(ds.features.rows(), 30u);
  EXPECT_EQ(ds.features.cols(), 8u);
  std::set<int> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(Synthetic, InvalidSpecThrows) {
  util::Xoshiro256 rng(3);
  EXPECT_THROW(make_prototypes(0, 8, rng), std::invalid_argument);
  EXPECT_THROW(make_prototypes(3, 0, rng), std::invalid_argument);
}

TEST(CifarLike, Cifar10SpecIsFlat) {
  const CifarLikeSpec spec = cifar10_like_spec();
  EXPECT_EQ(spec.num_coarse, 10u);
  EXPECT_EQ(spec.fine_per_coarse, 1u);
  const tax::Taxonomy t = label_taxonomy(spec);
  EXPECT_EQ(t.num_classes(), 2u);
  EXPECT_EQ(t.depth(0), 1u);
  EXPECT_EQ(t.level_size(0, 1), 10u);
  EXPECT_EQ(t.level_size(1, 1), 1u);  // dummy label
}

TEST(CifarLike, Cifar100SpecIsHierarchical) {
  const CifarLikeSpec spec = cifar100_like_spec();
  const tax::Taxonomy t = label_taxonomy(spec);
  EXPECT_EQ(t.depth(0), 2u);
  EXPECT_EQ(t.level_size(0, 1), 20u);
  EXPECT_EQ(t.level_size(0, 2), 100u);
}

TEST(CifarLike, LabelObjectEncodesHierarchy) {
  const CifarLikeSpec spec = cifar100_like_spec();
  const tax::Object obj = label_object(spec, 37);
  // fine 37 -> coarse 7 (37 / 5).
  EXPECT_EQ(obj.path(0), (tax::Path{7, 37}));
  EXPECT_EQ(obj.path(1), (tax::Path{0}));
  EXPECT_TRUE(obj.valid_for(label_taxonomy(spec)));
  EXPECT_THROW(label_object(spec, 100), std::invalid_argument);
  EXPECT_THROW(label_object(spec, -1), std::invalid_argument);
}

TEST(CifarLike, DatasetsHaveAllFineLabels) {
  util::Xoshiro256 rng(4);
  CifarLikeSpec spec = cifar100_like_spec();
  spec.train_per_class = 4;
  spec.test_per_class = 2;
  const CifarLike ds = make_cifar_like(spec, rng);
  EXPECT_EQ(ds.train.size(), 100u * 4u);
  EXPECT_EQ(ds.test.size(), 100u * 2u);
  std::set<int> labels(ds.train.labels.begin(), ds.train.labels.end());
  EXPECT_EQ(labels.size(), 100u);
  EXPECT_EQ(ds.coarse_of(99), 19);
}

TEST(RavenLike, ConstellationTable) {
  EXPECT_EQ(position_slots(Constellation::kCenter), 1u);
  EXPECT_EQ(position_slots(Constellation::kThreeByThreeGrid), 9u);
  EXPECT_EQ(all_constellations().size(), 7u);
  EXPECT_STREQ(constellation_name(Constellation::kTwoByTwoGrid), "2x2Grid");
}

TEST(RavenLike, TaxonomyShape) {
  RavenSpec spec;
  spec.constellation = Constellation::kThreeByThreeGrid;
  const tax::Taxonomy t = raven_taxonomy(spec);
  EXPECT_EQ(t.num_classes(), 3u);
  EXPECT_EQ(t.level_size(0, 1), 9u);   // positions
  EXPECT_EQ(t.level_size(1, 1), 10u);  // colors
  EXPECT_EQ(t.level_size(2, 1), 5u);   // sizes
  EXPECT_EQ(t.level_size(2, 2), 30u);  // size-type combos
}

TEST(RavenLike, PanelsAreValidAndNonEmpty) {
  util::Xoshiro256 rng(5);
  RavenSpec spec;
  spec.constellation = Constellation::kThreeByThreeGrid;
  const tax::Taxonomy t = raven_taxonomy(spec);
  for (int i = 0; i < 50; ++i) {
    const RavenPanel panel = random_panel(spec, rng);
    ASSERT_GE(panel.objects.size(), 1u);
    ASSERT_LE(panel.objects.size(), 9u);
    // Positions are distinct.
    std::set<std::size_t> pos;
    for (const auto& o : panel.objects) pos.insert(o.position);
    EXPECT_EQ(pos.size(), panel.objects.size());
    EXPECT_TRUE(tax::valid_scene(to_tax_scene(panel, spec), t));
  }
}

TEST(RavenLike, ObjectRoundTrip) {
  RavenSpec spec;
  RavenObject obj{4, 7, 2, 5};
  const tax::Object t = to_tax_object(obj, spec);
  EXPECT_EQ(from_tax_object(t, spec), obj);
  // Size-type path: level-2 index = size * num_types + type.
  EXPECT_EQ(t.path(2), (tax::Path{2, 17}));
}

TEST(RavenLike, OutOfRangeAttributesThrow) {
  RavenSpec spec;
  spec.constellation = Constellation::kCenter;
  EXPECT_THROW(to_tax_object(RavenObject{1, 0, 0, 0}, spec),
               std::invalid_argument);
  EXPECT_THROW(to_tax_object(RavenObject{0, 10, 0, 0}, spec),
               std::invalid_argument);
}

TEST(RavenLike, PerceptionErrorCorruptsAttributes) {
  util::Xoshiro256 rng(6);
  RavenSpec spec;
  spec.constellation = Constellation::kThreeByThreeGrid;
  spec.occupancy = 1.0;
  spec.perception_error = 0.5;
  int changed = 0, total = 0;
  for (int i = 0; i < 20; ++i) {
    const RavenPanel truth = random_panel(spec, rng);
    const RavenPanel seen = perceive(truth, spec, rng);
    ASSERT_EQ(seen.objects.size(), truth.objects.size());
    for (std::size_t j = 0; j < truth.objects.size(); ++j) {
      EXPECT_EQ(seen.objects[j].position, truth.objects[j].position);
      if (!(seen.objects[j] == truth.objects[j])) ++changed;
      ++total;
    }
  }
  EXPECT_GT(changed, total / 4);  // half error rate on 3 attributes
  // Zero error is the identity.
  spec.perception_error = 0.0;
  const RavenPanel truth = random_panel(spec, rng);
  const RavenPanel seen = perceive(truth, spec, rng);
  for (std::size_t j = 0; j < truth.objects.size(); ++j) {
    EXPECT_EQ(seen.objects[j], truth.objects[j]);
  }
}

}  // namespace
