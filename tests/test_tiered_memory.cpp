// TieredItemMemory: the two-stage (coarse-then-exact) scan index.
//
// Covers the ISSUE 5 contract from both sides:
//  * quality — a seeded recall regression: at the default auto
//    configuration, noisy cleanup queries over a 4096-row codebook must
//    find the exact argmax with recall@1 >= 0.99 while scanning a fraction
//    of the rows;
//  * exactness — nprobe >= clusters is bit-identical to the scalar backend
//    on every scan surface, ScanMode::kExact bypasses the tier per call,
//    kAuto only tiers above the FACTORHD_TIERED_MIN_ROWS threshold, and
//    the Factorizer's multi-object loop re-scans stalled rounds exactly
//    (so convergence is never an approximation artifact).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/encoder.hpp"
#include "core/factorizer.hpp"
#include "hdc/item_memory.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/random.hpp"
#include "taxonomy/codebooks.hpp"
#include "taxonomy/generator.hpp"
#include "taxonomy/object.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;
using kernels::TieredConfig;
using kernels::TieredItemMemory;

/// Scoped environment override; restores the previous value on destruction
/// (the tiered knobs are read per call, never cached, precisely so tests
/// and operators can retune without process restarts).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) previous_ = old;
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() {
    if (previous_) {
      ::setenv(name_, previous_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

void expect_same_matches(const std::vector<Match>& ref,
                         const std::vector<Match>& got) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].index, got[i].index) << "position " << i;
    EXPECT_EQ(ref[i].similarity, got[i].similarity) << "position " << i;
  }
}

TEST(TieredMemory, SeededRecallRegressionAtDefaultConfig) {
  // Fixed codebook, fixed noise: this is a regression bound, not a
  // statistical test — any change to the build or probe logic that drops
  // recall below 0.99 at the default configuration fails deterministically.
  // D/bucket-size sized like the BENCH_scale.json operating points (the
  // coarse-centroid signal scales with sqrt(D / bucket rows); D = 1024
  // at this M measures ~0.98 — below the regime this index is for).
  constexpr std::size_t kRows = 4096;
  constexpr std::size_t kDim = 2048;
  constexpr std::size_t kQueries = 300;
  Xoshiro256 rng(20260728);
  const Codebook cb(kDim, kRows, rng);
  const TieredItemMemory tiered(cb);
  EXPECT_EQ(tiered.clusters(), 4 * 64u);  // auto: 4 * ceil(sqrt(4096))
  EXPECT_EQ(tiered.nprobe(), tiered.clusters() / 16);
  EXPECT_FALSE(tiered.exact());

  const ItemMemory scalar(cb, ScanBackend::kScalar);
  std::size_t hits = 0;
  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const Hypervector q = flip_noise(cb.item(rng.uniform(kRows)), 0.05, rng);
    TieredItemMemory::ScanStats stats;
    const Match got = tiered.best(q, &stats);
    const Match ref = scalar.best(q);
    hits += got.index == ref.index ? 1 : 0;
    ops += stats.centroid_dots + stats.row_dots;
  }
  const double recall =
      static_cast<double>(hits) / static_cast<double>(kQueries);
  EXPECT_GE(recall, 0.99) << hits << "/" << kQueries;
  // The point of the tier: a query must touch far fewer rows than M.
  EXPECT_LT(ops / kQueries, kRows / 4);
}

TEST(TieredMemory, NprobeAllBitIdenticalToScalarBackend) {
  Xoshiro256 rng(99);
  for (const std::size_t dim : {std::size_t{63}, std::size_t{257}}) {
    const Codebook cb(dim, 50, rng);
    const ItemMemory scalar(cb, ScanBackend::kScalar);
    // 7 buckets, all probed: exact coverage through the tiered path.
    const TieredItemMemory tiered(cb, {.clusters = 7, .nprobe = 7});
    EXPECT_TRUE(tiered.exact());
    const std::vector<Hypervector> queries = {
        random_bipolar(dim, rng), random_ternary(dim, 0.5, rng),
        cb.item(rng.uniform(cb.size())), Hypervector(dim)};
    for (const Hypervector& q : queries) {
      const Match ref = scalar.best(q);
      const Match got = tiered.best(q);
      EXPECT_EQ(ref.index, got.index);
      EXPECT_EQ(ref.similarity, got.similarity);
      expect_same_matches(scalar.above(q, ref.similarity / 2.0),
                          tiered.above(q, ref.similarity / 2.0));
      expect_same_matches(scalar.top_k(q, 9), tiered.top_k(q, 9));
    }
  }
}

TEST(TieredMemory, ItemMemoryTieredBackendExactCoverage) {
  Xoshiro256 rng(7);
  const Codebook cb(128, 40, rng);
  const ItemMemory scalar(cb, ScanBackend::kScalar);
  const ItemMemory tiered(cb, ScanBackend::kTiered,
                          TieredConfig{.clusters = 5, .nprobe = 40});
  EXPECT_EQ(tiered.backend(), ScanBackend::kTiered);
  ASSERT_NE(tiered.tiered(), nullptr);
  EXPECT_TRUE(tiered.tiered()->exact());
  for (const Hypervector& q :
       {random_bipolar(128, rng), random_ternary(128, 0.4, rng)}) {
    const Match ref = scalar.best(q);
    const Match got = tiered.best(q);
    EXPECT_EQ(ref.index, got.index);
    EXPECT_EQ(ref.similarity, got.similarity);
    expect_same_matches(scalar.above(q, 0.0), tiered.above(q, 0.0));
    expect_same_matches(scalar.top_k(q, 11), tiered.top_k(q, 11));
    // The index-restricted scans and dots are exact on every backend.
    const std::vector<std::size_t> subset{3, 1, 17, 3};
    const Match ra = scalar.best_among(q, subset);
    const Match ga = tiered.best_among(q, subset);
    EXPECT_EQ(ra.index, ga.index);
    EXPECT_EQ(ra.similarity, ga.similarity);
    std::vector<std::int64_t> rd(cb.size()), gd(cb.size());
    scalar.dots(q, rd);
    tiered.dots(q, gd);
    EXPECT_EQ(rd, gd);
  }
}

TEST(TieredMemory, ScanModeExactOverrideAndOpsAccounting) {
  Xoshiro256 rng(3);
  const Codebook cb(256, 64, rng);
  const ItemMemory scalar(cb, ScanBackend::kScalar);
  // Deliberately bad approximation (one probed bucket of many) so the
  // override is observable.
  const ItemMemory tiered(cb, ScanBackend::kTiered,
                          TieredConfig{.clusters = 16, .nprobe = 1});
  for (int i = 0; i < 20; ++i) {
    const Hypervector q = flip_noise(cb.item(rng.uniform(64)), 0.1, rng);
    std::uint64_t scanned_exact = 0;
    const Match ref = scalar.best(q);
    const Match exact = tiered.best(q, ScanMode::kExact, &scanned_exact);
    EXPECT_EQ(ref.index, exact.index);
    EXPECT_EQ(ref.similarity, exact.similarity);
    EXPECT_EQ(scanned_exact, cb.size());
    std::uint64_t scanned_tiered = 0;
    (void)tiered.best(q, ScanMode::kDefault, &scanned_tiered);
    EXPECT_LT(scanned_tiered, cb.size());  // centroids + 1 bucket < M
    expect_same_matches(scalar.above(q, 0.1, ScanMode::kExact),
                        tiered.above(q, 0.1, ScanMode::kExact));
    expect_same_matches(scalar.top_k(q, 5),
                        tiered.top_k(q, 5, ScanMode::kExact));
  }
}

TEST(TieredMemory, AutoBackendTiersOnlyAboveRowThreshold) {
  Xoshiro256 rng(11);
  const Codebook small(64, 32, rng);
  EXPECT_EQ(ItemMemory(small).backend(), ScanBackend::kPacked);
  {
    ScopedEnv min_rows("FACTORHD_TIERED_MIN_ROWS", "16");
    EXPECT_EQ(ItemMemory(small).backend(), ScanBackend::kTiered);
    // FACTORHD_TIERED_CLUSTERS/NPROBE shape the auto-built index.
    ScopedEnv clusters("FACTORHD_TIERED_CLUSTERS", "4");
    ScopedEnv nprobe("FACTORHD_TIERED_NPROBE", "2");
    const ItemMemory mem(small);
    ASSERT_NE(mem.tiered(), nullptr);
    EXPECT_EQ(mem.tiered()->clusters(), 4u);
    EXPECT_EQ(mem.tiered()->nprobe(), 2u);
  }
  {
    ScopedEnv off("FACTORHD_TIERED_MIN_ROWS", "0");
    EXPECT_EQ(ItemMemory(small).backend(), ScanBackend::kPacked);
  }
  // An explicit config forces the tier regardless of the threshold.
  EXPECT_EQ(ItemMemory(small, ScanBackend::kAuto,
                       TieredConfig{.clusters = 3, .nprobe = 3})
                .backend(),
            ScanBackend::kTiered);
}

TEST(TieredMemory, ConstructionErrors) {
  Xoshiro256 rng(5);
  const Codebook cb(64, 8, rng);
  EXPECT_THROW(ItemMemory(cb, ScanBackend::kScalar, TieredConfig{}),
               std::invalid_argument);
  EXPECT_THROW(ItemMemory(cb, ScanBackend::kPacked, TieredConfig{}),
               std::invalid_argument);
  EXPECT_THROW(TieredItemMemory(nullptr, TieredConfig{}),
               std::invalid_argument);
  // Integer (non-packable) codebooks cannot tier.
  Hypervector bundle_like(64);
  bundle_like[5] = 3;
  const Codebook unpackable({bundle_like});
  EXPECT_THROW(ItemMemory(unpackable, ScanBackend::kTiered),
               std::invalid_argument);
  // kAuto + an explicit config promises a tier: never dropped silently.
  EXPECT_THROW(ItemMemory(unpackable, ScanBackend::kAuto,
                          TieredConfig{.clusters = 1, .nprobe = 1}),
               std::invalid_argument);
  // Plain kAuto still degrades gracefully to the scalar backend.
  EXPECT_EQ(ItemMemory(unpackable).backend(), ScanBackend::kScalar);
  // Dimension mismatches surface as invalid_argument, like every backend.
  const TieredItemMemory tiered(cb, {.clusters = 2, .nprobe = 2});
  EXPECT_THROW((void)tiered.best(random_bipolar(63, rng)),
               std::invalid_argument);
}

TEST(TieredMemory, FactorizerExactScanOptionMatchesScalarBitForBit) {
  // Auto-tier every level-1 codebook (threshold lowered via env), then
  // check the per-call accuracy override: exact_scan=true must reproduce
  // the scalar-backend factorization exactly, counters included.
  ScopedEnv min_rows("FACTORHD_TIERED_MIN_ROWS", "32");
  ScopedEnv nprobe("FACTORHD_TIERED_NPROBE", "1");
  Xoshiro256 rng(123);
  const tax::Taxonomy taxonomy(3, {64});
  const tax::TaxonomyCodebooks books(taxonomy, 2048, rng);
  const core::Encoder encoder(books);
  const core::Factorizer tiered(encoder);
  const core::Factorizer scalar(encoder, ScanBackend::kScalar);
  ASSERT_TRUE(tiered.tiered());
  EXPECT_EQ(tiered.scan_backend(), ScanBackend::kTiered);

  core::FactorizeOptions exact;
  exact.exact_scan = true;
  core::FactorizeOptions exact_multi = exact;
  exact_multi.multi_object = true;
  exact_multi.num_objects_hint = 2;
  for (int i = 0; i < 5; ++i) {
    const tax::Object obj = tax::random_object(taxonomy, rng);
    const Hypervector single = encoder.encode_object(obj);
    EXPECT_EQ(tiered.factorize(single, exact), scalar.factorize(single, exact));

    const tax::Scene scene = tax::random_scene(
        taxonomy, rng, {.num_objects = 2, .object = {},
                        .allow_duplicates = false});
    const Hypervector multi = encoder.encode_scene(scene);
    const core::FactorizeResult a = tiered.factorize(multi, exact_multi);
    const core::FactorizeResult b = scalar.factorize(multi, exact_multi);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.exact_rescans, 0u);
  }
}

TEST(TieredMemory, FactorizerRescansStalledRoundsExactly) {
  // nprobe=1 over many buckets makes tiered candidate collection miss
  // almost everything; the stall-triggered exact re-scan must still
  // recover the scene and record that it fired.
  ScopedEnv min_rows("FACTORHD_TIERED_MIN_ROWS", "32");
  ScopedEnv nprobe("FACTORHD_TIERED_NPROBE", "1");
  Xoshiro256 rng(4242);
  const tax::Taxonomy taxonomy(3, {64});
  const tax::TaxonomyCodebooks books(taxonomy, 2048, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);
  ASSERT_TRUE(factorizer.tiered());

  core::FactorizeOptions opts;
  opts.multi_object = true;
  opts.num_objects_hint = 2;
  std::uint64_t total_rescans = 0;
  for (int i = 0; i < 5; ++i) {
    const tax::Scene scene = tax::random_scene(
        taxonomy, rng, {.num_objects = 2, .object = {},
                        .allow_duplicates = false});
    const Hypervector target = encoder.encode_scene(scene);
    const core::FactorizeResult result = factorizer.factorize(target, opts);
    EXPECT_TRUE(result.converged);
    tax::Scene recovered;
    for (const auto& o : result.objects) {
      recovered.push_back(o.to_object(taxonomy.num_classes()));
    }
    EXPECT_TRUE(tax::same_multiset(recovered, scene)) << "trial " << i;
    total_rescans += result.exact_rescans;
  }
  EXPECT_GT(total_rescans, 0u);
}

TEST(TieredMemory, TieredKnobsRegistered) {
  bool clusters = false, min_rows = false, nprobe = false;
  for (const util::EnvKnob& k : util::env_knobs()) {
    const std::string name = k.name;
    clusters |= name == "FACTORHD_TIERED_CLUSTERS";
    min_rows |= name == "FACTORHD_TIERED_MIN_ROWS";
    nprobe |= name == "FACTORHD_TIERED_NPROBE";
  }
  EXPECT_TRUE(clusters && min_rows && nprobe);
}

}  // namespace
