// Targeted tests for Factorizer::effective_threshold (the Eq. 2 hookup) and
// FactorizeOptions edge cases: empty selections, out-of-range class indices,
// max_depth clamping and a candidate budget of one.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/factorhd.hpp"
#include "taxonomy/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using core::FactorizeOptions;
using core::FactorizeResult;
using core::Factorizer;
using core::ThresholdProblem;

class EffectiveThresholdTest : public ::testing::Test {
 protected:
  EffectiveThresholdTest()
      : rng_(7), taxonomy_(3, {10, 4}), books_(taxonomy_, 2000, rng_),
        encoder_(books_), factorizer_(encoder_) {}

  util::Xoshiro256 rng_;
  tax::Taxonomy taxonomy_;
  tax::TaxonomyCodebooks books_;
  core::Encoder encoder_;
  Factorizer factorizer_;
};

TEST_F(EffectiveThresholdTest, ExplicitThresholdIsReturnedVerbatim) {
  FactorizeOptions opts;
  opts.threshold = 0.123;
  EXPECT_DOUBLE_EQ(factorizer_.effective_threshold(opts), 0.123);
  opts.num_objects_hint = 9;  // hint must be ignored once TH is explicit
  EXPECT_DOUBLE_EQ(factorizer_.effective_threshold(opts), 0.123);
}

TEST_F(EffectiveThresholdTest, UnsetThresholdMatchesEquationTwoPrediction) {
  // threshold <= 0 must resolve to predicted_threshold() on a problem built
  // from the codebooks: F from the taxonomy, D from the books, M from the
  // largest level-1 codebook, N from the hint.
  for (const std::size_t hint : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    FactorizeOptions opts;
    opts.num_objects_hint = hint;
    ThresholdProblem p;
    p.num_objects = hint;
    p.num_classes = taxonomy_.num_classes();
    p.dim = books_.dim();
    p.codebook_size = taxonomy_.max_level1_size();
    EXPECT_DOUBLE_EQ(factorizer_.effective_threshold(opts),
                     core::predicted_threshold(p))
        << "hint=" << hint;
  }
}

TEST_F(EffectiveThresholdTest, ZeroAndNegativeThresholdBothSelectPrediction) {
  FactorizeOptions zero;
  zero.threshold = 0.0;
  FactorizeOptions negative;
  negative.threshold = -1.0;
  EXPECT_DOUBLE_EQ(factorizer_.effective_threshold(zero),
                   factorizer_.effective_threshold(negative));
}

TEST_F(EffectiveThresholdTest, PredictionGrowsWithObjectHint) {
  // Eq. 2: TH* has a +2N term, so a larger hint must never lower TH.
  FactorizeOptions lo, hi;
  lo.num_objects_hint = 1;
  hi.num_objects_hint = 6;
  EXPECT_LT(factorizer_.effective_threshold(lo),
            factorizer_.effective_threshold(hi));
}

class OptionEdgeCaseTest : public ::testing::Test {
 protected:
  OptionEdgeCaseTest()
      : rng_(77), taxonomy_(3, {8, 4}), books_(taxonomy_, 2048, rng_),
        encoder_(books_), factorizer_(encoder_),
        object_(tax::random_object(taxonomy_, rng_)),
        target_(encoder_.encode_object(object_)) {}

  util::Xoshiro256 rng_;
  tax::Taxonomy taxonomy_;
  tax::TaxonomyCodebooks books_;
  core::Encoder encoder_;
  Factorizer factorizer_;
  tax::Object object_;
  hdc::Hypervector target_;
};

TEST_F(OptionEdgeCaseTest, EmptySelectionMeansAllClasses) {
  FactorizeOptions none;  // selected_classes left empty
  FactorizeOptions all;
  all.selected_classes = {0, 1, 2};
  const auto r_none = factorizer_.factorize(target_, none);
  const auto r_all = factorizer_.factorize(target_, all);
  ASSERT_EQ(r_none.objects.size(), 1u);
  ASSERT_EQ(r_all.objects.size(), 1u);
  ASSERT_EQ(r_none.objects[0].classes.size(), 3u);
  EXPECT_EQ(r_none.objects[0].to_object(3), r_all.objects[0].to_object(3));
  EXPECT_EQ(r_none.similarity_ops, r_all.similarity_ops);
}

TEST_F(OptionEdgeCaseTest, OutOfRangeClassIndexThrows) {
  FactorizeOptions opts;
  opts.selected_classes = {3};  // valid classes are 0..2
  EXPECT_THROW((void)factorizer_.factorize(target_, opts),
               std::invalid_argument);
  // A bad index hiding behind valid ones must still be rejected.
  opts.selected_classes = {0, 1, 17};
  EXPECT_THROW((void)factorizer_.factorize(target_, opts),
               std::invalid_argument);
  // Same validation on the multi-object path.
  opts.multi_object = true;
  EXPECT_THROW((void)factorizer_.factorize(target_, opts),
               std::invalid_argument);
}

TEST_F(OptionEdgeCaseTest, MaxDepthClampsToTaxonomyDepth) {
  FactorizeOptions full;  // max_depth = 0 → full depth
  FactorizeOptions huge;
  huge.max_depth = 1000;  // far beyond the 2-level taxonomy
  const auto r_full = factorizer_.factorize(target_, full);
  const auto r_huge = factorizer_.factorize(target_, huge);
  ASSERT_EQ(r_huge.objects.size(), 1u);
  for (const auto& cf : r_huge.objects[0].classes) {
    ASSERT_TRUE(cf.present);
    EXPECT_EQ(cf.path.size(), 2u);  // clamped, not grown
  }
  EXPECT_EQ(r_full.objects[0].to_object(3), r_huge.objects[0].to_object(3));
  EXPECT_EQ(r_full.similarity_ops, r_huge.similarity_ops);
}

TEST_F(OptionEdgeCaseTest, SingleCandidateBudgetStillRecoversOneObject) {
  // With one object in the scene the top candidate per class is the right
  // one, so max_candidates_per_class = 1 must not break recovery.
  FactorizeOptions opts;
  opts.multi_object = true;
  opts.num_objects_hint = 1;
  opts.max_objects = 3;
  opts.max_candidates_per_class = 1;
  opts.collect_trace = true;
  const FactorizeResult r = factorizer_.factorize(target_, opts);
  ASSERT_EQ(r.objects.size(), 1u);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.objects[0].to_object(3), object_);
  // The budget must actually bind: no round may report more than one
  // candidate path for any class.
  ASSERT_FALSE(r.trace.empty());
  for (const auto& round : r.trace) {
    for (const std::size_t n : round.candidates_per_class) {
      EXPECT_LE(n, 1u);
    }
  }
}

}  // namespace
