// Parameterized property suites: invariants that must hold across the whole
// configuration space (dimensions, factor counts, codebook sizes, depths).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/factorhd.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;

// ---------------------------------------------------------------------------
// Encoding invariants over (F, M, depth, D).
// ---------------------------------------------------------------------------
using EncShape = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>;

class EncodingProperty : public ::testing::TestWithParam<EncShape> {};

TEST_P(EncodingProperty, ObjectHVIsTernaryAndDeterministic) {
  const auto [f, m, depth, dim] = GetParam();
  util::Xoshiro256 rng(f * 1000 + m * 10 + depth);
  const tax::Taxonomy t(f, std::vector<std::size_t>(depth, m));
  const tax::TaxonomyCodebooks books(t, dim, rng);
  const core::Encoder encoder(books);
  const tax::Object obj = tax::random_object(t, rng);
  const auto h1 = encoder.encode_object(obj);
  const auto h2 = encoder.encode_object(obj);
  EXPECT_EQ(h1, h2);
  EXPECT_TRUE(h1.is_ternary());
  EXPECT_EQ(h1.dim(), dim);
}

TEST_P(EncodingProperty, SingleObjectRoundTrips) {
  const auto [f, m, depth, dim] = GetParam();
  util::Xoshiro256 rng(f * 1000 + m * 10 + depth + 1);
  const tax::Taxonomy t(f, std::vector<std::size_t>(depth, m));
  const tax::TaxonomyCodebooks books(t, dim, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);
  int correct = 0;
  const int trials = 10;
  for (int i = 0; i < trials; ++i) {
    const tax::Object obj = tax::random_object(t, rng);
    if (factorizer.factorize_single(encoder.encode_object(obj)).to_object(f) ==
        obj) {
      ++correct;
    }
  }
  // Dimensions are chosen comfortably above the accuracy knee for each shape.
  EXPECT_EQ(correct, trials);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncodingProperty,
    ::testing::Values(EncShape{2, 4, 1, 1024}, EncShape{3, 8, 1, 1024},
                      EncShape{4, 8, 1, 2048}, EncShape{3, 8, 2, 2048},
                      EncShape{2, 16, 2, 2048}, EncShape{5, 4, 1, 4096},
                      EncShape{3, 4, 3, 4096}));

// ---------------------------------------------------------------------------
// Unbinding identity: clause ⊙ label collapses toward the binding identity
// (the algebraic heart of the factorization algorithm).
// ---------------------------------------------------------------------------
class UnbindProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UnbindProperty, ClauseTimesLabelIsPositivelyBiased) {
  const std::size_t dim = GetParam();
  util::Xoshiro256 rng(dim);
  const tax::Taxonomy t(2, {8});
  const tax::TaxonomyCodebooks books(t, dim, rng);
  const core::Encoder encoder(books);
  // Clause of class 1 with item 3, unbound by label 1.
  const auto clause = encoder.encode_clause(1, tax::Path{3});
  const auto unbound = hdc::bind(clause, books.label(1));
  // (LABEL + a) ⊙ LABEL = 1 + a ⊙ LABEL: mean 0.5 per dimension after the
  // ternary clip (exactly 0 or 1 per dim for two-HV clauses).
  const double mean_component =
      static_cast<double>(hdc::dot(unbound, hdc::identity(dim))) /
      static_cast<double>(dim);
  EXPECT_NEAR(mean_component, 0.5, 5.0 / std::sqrt(static_cast<double>(dim)));
}

INSTANTIATE_TEST_SUITE_P(Dims, UnbindProperty,
                         ::testing::Values(256, 512, 1024, 2048, 4096));

// ---------------------------------------------------------------------------
// Similarity scale law: the signal similarity of the selected clause decays
// as 2^-F for two-HV clauses (label + one item per class).
// ---------------------------------------------------------------------------
class SignalScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SignalScale, MatchesTwoToMinusF) {
  const std::size_t f = GetParam();
  const std::size_t dim = 16384;
  util::Xoshiro256 rng(f);
  const tax::Taxonomy t(f, {4});
  const tax::TaxonomyCodebooks books(t, dim, rng);
  const core::Encoder encoder(books);
  const tax::Object obj = tax::random_object(t, rng);
  const auto target = encoder.encode_object(obj);
  const auto unbound = hdc::bind(target, books.other_labels_key(0));
  const double sim =
      hdc::similarity(unbound, books.item(0, 1, obj.path(0)[0]));
  const double expected = std::pow(2.0, -static_cast<double>(f));
  EXPECT_NEAR(sim, expected, 4.0 / std::sqrt(static_cast<double>(dim)));
}

INSTANTIATE_TEST_SUITE_P(Factors, SignalScale, ::testing::Values(2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Multi-object linearity: encode_scene is additive, so factorizing a scene
// and subtracting recovered objects must reach the exact zero residual.
// ---------------------------------------------------------------------------
class ResidualProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ResidualProperty, PerfectRecoveryZeroesResidual) {
  const std::size_t n = GetParam();
  util::Xoshiro256 rng(n * 7);
  const tax::Taxonomy t(3, {8});
  const tax::TaxonomyCodebooks books(t, 8192, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);
  const tax::Scene scene = tax::random_scene(
      t, rng, {.num_objects = n, .object = {}, .allow_duplicates = false});
  auto residual = encoder.encode_scene(scene);

  core::FactorizeOptions opts;
  opts.multi_object = true;
  opts.num_objects_hint = n;
  opts.max_objects = n + 2;
  const auto result = factorizer.factorize(residual, opts);
  tax::Scene recovered;
  for (const auto& o : result.objects) recovered.push_back(o.to_object(3));
  ASSERT_TRUE(tax::same_multiset(recovered, scene));
  for (const auto& o : recovered) {
    hdc::subtract(residual, encoder.encode_object(o));
  }
  EXPECT_EQ(residual, hdc::Hypervector(8192));
}

INSTANTIATE_TEST_SUITE_P(SceneSizes, ResidualProperty,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Fair-storage invariant: the packed ternary representation of a FactorHD
// object at D/2 occupies exactly the bipolar baseline's D bits.
// ---------------------------------------------------------------------------
class StorageParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StorageParity, TernaryHalfDimMatchesBipolarBits) {
  const std::size_t bipolar_dim = GetParam();
  util::Xoshiro256 rng(bipolar_dim);
  const std::size_t ternary_dim = hdc::fair_ternary_dim(bipolar_dim);
  const tax::Taxonomy t(3, {4});
  const tax::TaxonomyCodebooks books(t, ternary_dim, rng);
  const core::Encoder encoder(books);
  const auto obj_hv = encoder.encode_object(tax::random_object(t, rng));
  const hdc::PackedTernary packed(obj_hv);
  EXPECT_EQ(packed.storage_bits(), bipolar_dim);
}

INSTANTIATE_TEST_SUITE_P(Dims, StorageParity,
                         ::testing::Values(256, 512, 1500, 2000));

// ---------------------------------------------------------------------------
// Threshold monotonicity of Eq. 2 across a parameter grid.
// ---------------------------------------------------------------------------
TEST(ThresholdProperty, EquationTwoMonotonicity) {
  for (std::size_t n = 1; n <= 6; ++n) {
    for (std::size_t f = 2; f <= 6; ++f) {
      core::ThresholdProblem p;
      p.num_objects = n;
      p.num_classes = f;
      const double base = core::predicted_threshold(p);
      core::ThresholdProblem pn = p;
      pn.num_objects = n + 1;
      EXPECT_GT(core::predicted_threshold(pn), base);
      core::ThresholdProblem pf = p;
      pf.num_classes = f + 1;
      EXPECT_LT(core::predicted_threshold(pf), base);
    }
  }
}

}  // namespace
