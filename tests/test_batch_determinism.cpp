// BatchFactorizer determinism suite: factorize_all must return identical
// results for any thread count and across repeated runs — thread scheduling
// may only decide *who* computes a batch entry, never *what* it contains.
// Checked for all three paper representations (Rep 1 flat single-object,
// Rep 2 hierarchical single-object, Rep 3 multi-object scenes) and across
// scan backends (the SIMD knob rides into the pool through the Factorizer).
//
// Also the regression home of the effective_threads / empty-batch edge
// cases.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/encoder.hpp"
#include "core/factorizer.hpp"
#include "hdc/item_memory.hpp"
#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/random.hpp"
#include "taxonomy/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::core;

// Pin the plane-scan worker pool to 4 threads before anything scans (the
// width is cached on first use), so the parallel scan path below runs — and
// is TSan-checked — deterministically even on single-core hosts. An explicit
// user override still wins (overwrite=0).
const bool kForceScanPool = [] {
  ::setenv("FACTORHD_SCAN_THREADS", "4", /*overwrite=*/0);
  return true;
}();

void expect_equal_results(const FactorizeResult& a, const FactorizeResult& b,
                          std::size_t num_classes) {
  ASSERT_EQ(a.objects.size(), b.objects.size());
  EXPECT_EQ(a.similarity_ops, b.similarity_ops);
  EXPECT_EQ(a.combinations_checked, b.combinations_checked);
  EXPECT_EQ(a.converged, b.converged);
  for (std::size_t o = 0; o < a.objects.size(); ++o) {
    EXPECT_EQ(a.objects[o].match_similarity, b.objects[o].match_similarity);
    EXPECT_EQ(a.objects[o].to_object(num_classes),
              b.objects[o].to_object(num_classes));
    ASSERT_EQ(a.objects[o].classes.size(), b.objects[o].classes.size());
    for (std::size_t c = 0; c < a.objects[o].classes.size(); ++c) {
      const ClassFactorization& ca = a.objects[o].classes[c];
      const ClassFactorization& cb = b.objects[o].classes[c];
      EXPECT_EQ(ca.cls, cb.cls);
      EXPECT_EQ(ca.present, cb.present);
      EXPECT_EQ(ca.path, cb.path);
      EXPECT_EQ(ca.level_similarities, cb.level_similarities);
      EXPECT_EQ(ca.null_similarity, cb.null_similarity);
    }
  }
}

// Runs the batch at num_threads in {1, 2, hardware} plus a repeated run per
// width, and asserts every result list is identical to the single-threaded
// reference.
void check_determinism(const Factorizer& factorizer,
                       const std::vector<hdc::Hypervector>& targets,
                       const FactorizeOptions& opts, std::size_t num_classes) {
  BatchOptions single;
  single.num_threads = 1;
  const auto reference =
      BatchFactorizer(factorizer, single).factorize_all(targets, opts);
  ASSERT_EQ(reference.size(), targets.size());

  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, hardware}) {
    SCOPED_TRACE("num_threads=" + std::to_string(threads));
    BatchOptions opts_n;
    opts_n.num_threads = threads;
    const BatchFactorizer batcher(factorizer, opts_n);
    for (int run = 0; run < 2; ++run) {
      SCOPED_TRACE("run=" + std::to_string(run));
      const auto results = batcher.factorize_all(targets, opts);
      ASSERT_EQ(results.size(), reference.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("target=" + std::to_string(i));
        expect_equal_results(reference[i], results[i], num_classes);
      }
    }
  }
}

TEST(BatchDeterminism, Rep1FlatSingleObject) {
  util::Xoshiro256 rng(9001);
  const tax::Taxonomy taxonomy(3, {12});
  const tax::TaxonomyCodebooks books(taxonomy, 512, rng);
  const Encoder encoder(books);
  const Factorizer factorizer(encoder);
  std::vector<hdc::Hypervector> targets;
  for (int i = 0; i < 24; ++i) {
    targets.push_back(encoder.encode_object(tax::random_object(taxonomy, rng)));
  }
  check_determinism(factorizer, targets, {}, taxonomy.num_classes());
}

TEST(BatchDeterminism, Rep2HierarchicalSingleObject) {
  util::Xoshiro256 rng(9002);
  const tax::Taxonomy taxonomy(3, {6, 4});
  const tax::TaxonomyCodebooks books(taxonomy, 768, rng);
  const Encoder encoder(books);
  const Factorizer factorizer(encoder);
  std::vector<hdc::Hypervector> targets;
  for (int i = 0; i < 16; ++i) {
    targets.push_back(encoder.encode_object(tax::random_object(taxonomy, rng)));
  }
  check_determinism(factorizer, targets, {}, taxonomy.num_classes());
}

TEST(BatchDeterminism, Rep3MultiObjectScenes) {
  util::Xoshiro256 rng(9003);
  const tax::Taxonomy taxonomy(3, {8});
  const tax::TaxonomyCodebooks books(taxonomy, 1500, rng);
  const Encoder encoder(books);
  const Factorizer factorizer(encoder);
  std::vector<hdc::Hypervector> targets;
  for (int i = 0; i < 8; ++i) {
    const tax::Scene scene = tax::random_scene(
        taxonomy, rng,
        {.num_objects = 2, .object = {}, .allow_duplicates = false});
    targets.push_back(encoder.encode_scene(scene));
  }
  FactorizeOptions opts;
  opts.multi_object = true;
  opts.num_objects_hint = 2;
  check_determinism(factorizer, targets, opts, taxonomy.num_classes());
}

TEST(BatchDeterminism, ForcedSimdBackendsAgreeUnderThreading) {
  // The SIMD knob threads through Factorizer into the pool: a batch run on
  // each forced packed tier must equal the scalar-backend batch exactly.
  util::Xoshiro256 rng(9004);
  const tax::Taxonomy taxonomy(2, {10});
  const tax::TaxonomyCodebooks books(taxonomy, 512, rng);
  const Encoder encoder(books);
  std::vector<hdc::Hypervector> targets;
  for (int i = 0; i < 12; ++i) {
    targets.push_back(encoder.encode_object(tax::random_object(taxonomy, rng)));
  }
  BatchOptions two;
  two.num_threads = 2;

  const Factorizer scalar(encoder, hdc::ScanBackend::kScalar);
  const auto reference =
      BatchFactorizer(scalar, two).factorize_all(targets, {});

  std::vector<hdc::ScanBackend> backends{hdc::ScanBackend::kPackedWords,
                                         hdc::ScanBackend::kPacked};
  using hdc::kernels::SimdLevel;
  if (hdc::kernels::simd_level_available(SimdLevel::kAVX2)) {
    backends.push_back(hdc::ScanBackend::kPackedAVX2);
  }
  if (hdc::kernels::simd_level_available(SimdLevel::kAVX512)) {
    backends.push_back(hdc::ScanBackend::kPackedAVX512);
  }
  if (hdc::kernels::simd_level_available(SimdLevel::kNEON)) {
    backends.push_back(hdc::ScanBackend::kPackedNEON);
  }
  for (hdc::ScanBackend backend : backends) {
    const Factorizer forced(encoder, backend);
    const auto results =
        BatchFactorizer(forced, two).factorize_all(targets, {});
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      expect_equal_results(reference[i], results[i], taxonomy.num_classes());
    }
  }
}

TEST(BatchDeterminism, ParallelPlaneScanMatchesScalar) {
  // A codebook big enough (1024 rows x 64 words >= the scalar-word tier's
  // 2^16-word threshold) that the kPackedWords memory partitions its scans
  // across the worker pool; the fixed-block partition must reproduce the
  // scalar backend bit for bit. The dispatched kPacked memory is asserted
  // too (its SIMD-tier threshold is higher, so it may scan sequentially —
  // either way the results are the contract).
  util::Xoshiro256 rng(9007);
  const hdc::Codebook cb(4096, 1024, rng);
  const hdc::ItemMemory scalar(cb, hdc::ScanBackend::kScalar);
  const hdc::ItemMemory words(cb, hdc::ScanBackend::kPackedWords);
  const hdc::ItemMemory packed(cb, hdc::ScanBackend::kPacked);

  for (const hdc::Hypervector& q :
       {hdc::flip_noise(cb.item(700), 0.2, rng),
        hdc::random_ternary(4096, 0.5, rng)}) {
    for (const hdc::ItemMemory* memory : {&words, &packed}) {
      const hdc::Match bs = scalar.best(q);
      const hdc::Match bp = memory->best(q);
      EXPECT_EQ(bs.index, bp.index);
      EXPECT_EQ(bs.similarity, bp.similarity);

      std::vector<std::int64_t> ds(cb.size()), dp(cb.size());
      scalar.dots(q, ds);
      memory->dots(q, dp);
      EXPECT_EQ(ds, dp);

      const auto ts = scalar.top_k(q, 7);
      const auto tp = memory->top_k(q, 7);
      ASSERT_EQ(ts.size(), tp.size());
      for (std::size_t i = 0; i < ts.size(); ++i) {
        EXPECT_EQ(ts[i].index, tp[i].index);
        EXPECT_EQ(ts[i].similarity, tp[i].similarity);
      }
    }
  }

  // Under a ScanNestingGuard (the state every BatchFactorizer worker runs
  // in) the same scans go sequential — results must be unchanged.
  const hdc::kernels::ScanNestingGuard guard;
  const hdc::Hypervector q = hdc::flip_noise(cb.item(13), 0.1, rng);
  std::vector<std::int64_t> ds(cb.size()), dp(cb.size());
  scalar.dots(q, ds);
  words.dots(q, dp);
  EXPECT_EQ(ds, dp);
  EXPECT_EQ(scalar.best(q).index, words.best(q).index);
}

TEST(BatchDeterminism, EffectiveThreadsEdgeCases) {
  util::Xoshiro256 rng(9005);
  const tax::Taxonomy taxonomy(2, {4});
  const tax::TaxonomyCodebooks books(taxonomy, 128, rng);
  const Encoder encoder(books);
  const Factorizer factorizer(encoder);

  for (std::size_t configured : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                 std::size_t{1000}}) {
    SCOPED_TRACE("configured=" + std::to_string(configured));
    BatchOptions opts;
    opts.num_threads = configured;
    const BatchFactorizer batcher(factorizer, opts);
    // batch == 0 always resolves to 1 (the caller thread), for every
    // configured width including the hardware-concurrency default.
    EXPECT_EQ(batcher.effective_threads(0), 1u);
    // A one-target batch is always sequential.
    EXPECT_EQ(batcher.effective_threads(1), 1u);
    // Never more workers than targets; never zero.
    for (std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
      const std::size_t n = batcher.effective_threads(batch);
      EXPECT_GE(n, 1u);
      EXPECT_LE(n, batch);
      if (configured > 0) {
        EXPECT_LE(n, configured);
      }
    }
  }
}

TEST(BatchDeterminism, EmptyBatchEdgeCases) {
  util::Xoshiro256 rng(9006);
  const tax::Taxonomy taxonomy(2, {4});
  const tax::TaxonomyCodebooks books(taxonomy, 128, rng);
  const Encoder encoder(books);
  const Factorizer factorizer(encoder);

  for (std::size_t configured : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
    SCOPED_TRACE("configured=" + std::to_string(configured));
    BatchOptions opts;
    opts.num_threads = configured;
    const BatchFactorizer batcher(factorizer, opts);
    // An empty batch returns empty without spawning workers, in every mode
    // (including multi-object options).
    EXPECT_TRUE(batcher.factorize_all({}, {}).empty());
    FactorizeOptions multi;
    multi.multi_object = true;
    EXPECT_TRUE(batcher.factorize_all({}, multi).empty());
  }
}

}  // namespace
