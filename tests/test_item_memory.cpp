// Unit tests for hdc::ItemMemory (cleanup memory).
#include <gtest/gtest.h>

#include "hdc/item_memory.hpp"
#include "hdc/ops.hpp"
#include "hdc/random.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;

class ItemMemoryTest : public ::testing::Test {
 protected:
  ItemMemoryTest() : rng_(42), cb_(1024, 16, rng_), memory_(cb_) {}

  Xoshiro256 rng_;
  Codebook cb_;
  ItemMemory memory_;
};

TEST_F(ItemMemoryTest, BestFindsExactItem) {
  for (std::size_t j = 0; j < cb_.size(); ++j) {
    const Match m = memory_.best(cb_.item(j));
    EXPECT_EQ(m.index, j);
    EXPECT_DOUBLE_EQ(m.similarity, 1.0);
  }
}

TEST_F(ItemMemoryTest, BestCleansUpNoisyItem) {
  const Hypervector noisy = flip_noise(cb_.item(5), 0.2, rng_);
  const Match m = memory_.best(noisy);
  EXPECT_EQ(m.index, 5u);
  EXPECT_NEAR(m.similarity, 0.6, 0.1);  // 1 - 2*0.2 flip similarity
}

TEST_F(ItemMemoryTest, BestAmongRestrictsSearch) {
  // Query equals item 5, but 5 is outside the allowed subset.
  const std::vector<std::size_t> subset{1, 2, 3};
  const Match m = memory_.best_among(cb_.item(5), subset);
  EXPECT_TRUE(m.index == 1 || m.index == 2 || m.index == 3);
  EXPECT_LT(m.similarity, 0.5);
  EXPECT_THROW((void)memory_.best_among(cb_.item(0), {}), std::invalid_argument);
}

TEST_F(ItemMemoryTest, AboveReturnsSortedMatches) {
  // Bundle of items 3 and 7 is similar to both.
  const Hypervector q = bundle(cb_.item(3), cb_.item(7));
  const std::vector<Match> ms = memory_.above(q, 0.5);
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_GE(ms[0].similarity, ms[1].similarity);
  const bool found3 = ms[0].index == 3 || ms[1].index == 3;
  const bool found7 = ms[0].index == 7 || ms[1].index == 7;
  EXPECT_TRUE(found3 && found7);
}

TEST_F(ItemMemoryTest, AboveWithImpossibleThresholdIsEmpty) {
  EXPECT_TRUE(memory_.above(cb_.item(0), 1.5).empty());
}

TEST_F(ItemMemoryTest, AboveAmongRespectsBothFilters) {
  const Hypervector q = bundle(cb_.item(3), cb_.item(7));
  const std::vector<std::size_t> subset{3, 4};
  const std::vector<Match> ms = memory_.above_among(q, 0.5, subset);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].index, 3u);
}

TEST_F(ItemMemoryTest, TopKOrdersAndLimits) {
  const Hypervector q = cb_.item(2);
  const std::vector<Match> ms = memory_.top_k(q, 3);
  ASSERT_EQ(ms.size(), 3u);
  EXPECT_EQ(ms[0].index, 2u);
  EXPECT_GE(ms[0].similarity, ms[1].similarity);
  EXPECT_GE(ms[1].similarity, ms[2].similarity);
  // k larger than codebook clamps.
  EXPECT_EQ(memory_.top_k(q, 100).size(), cb_.size());
}

TEST_F(ItemMemoryTest, CountsSimilarityOps) {
  memory_.reset_similarity_ops();
  (void)memory_.best(cb_.item(0));
  EXPECT_EQ(memory_.similarity_ops(), cb_.size());
  (void)memory_.best_among(cb_.item(0), {1, 2});
  EXPECT_EQ(memory_.similarity_ops(), cb_.size() + 2);
  memory_.reset_similarity_ops();
  EXPECT_EQ(memory_.similarity_ops(), 0u);
}

}  // namespace
