// Unit tests for util::SplitMix64 / util::Xoshiro256.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace {

using factorhd::util::SplitMix64;
using factorhd::util::Xoshiro256;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministicAcrossInstances) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformRespectsBound) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Xoshiro256, UniformBoundOneIsZero) {
  Xoshiro256 rng(11);
  EXPECT_EQ(rng.uniform(1), 0u);
  EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Xoshiro256, UniformCoversAllResidues) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformDoubleMeanIsNearHalf) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BipolarIsBalanced) {
  Xoshiro256 rng(19);
  int sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.bipolar();
  // |sum| should be O(sqrt(n)); 5 sigma bound.
  EXPECT_LT(std::abs(sum), 5 * static_cast<int>(std::sqrt(n)));
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, NormalHasUnitVariance) {
  Xoshiro256 rng(29);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Xoshiro256, ForkProducesIndependentStreams) {
  Xoshiro256 parent(31);
  Xoshiro256 child0 = parent.fork(0);
  Xoshiro256 child1 = parent.fork(1);
  // Streams should differ from each other immediately.
  EXPECT_NE(child0(), child1());
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  SUCCEED();
}

}  // namespace
