// Frame-codec fuzz suite for the FHN1 wire protocol (src/net/protocol.hpp).
//
// The contract under test: no byte stream — truncated, oversized,
// bit-flipped, split across reads, or outright random — may crash, hang,
// or silently misparse the codec. Malformed input must surface as a
// ProtocolError (connection-fatal framing violations) or decode cleanly;
// valid input must round-trip bit-identically, doubles included. Runs
// under ASan/UBSan in CI's Debug job.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "net/protocol.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using net::Frame;
using net::FrameParser;
using net::Opcode;
using net::ProtocolError;

std::vector<std::uint8_t> sample_payload() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
}

core::FactorizeResult sample_result(bool with_trace) {
  core::FactorizeResult r;
  for (std::size_t o = 0; o < 3; ++o) {
    core::FactorizedObject obj;
    for (std::size_t c = 0; c < 2; ++c) {
      core::ClassFactorization cf;
      cf.cls = c;
      cf.present = (o + c) % 2 == 0;
      cf.path = {o, c + 1};
      cf.level_similarities = {0.1 * static_cast<double>(o + 1), -0.25};
      cf.null_similarity = 0.015625 + static_cast<double>(c);
      obj.classes.push_back(cf);
    }
    obj.match_similarity = 0.62 + 1e-17 * static_cast<double>(o);
    r.objects.push_back(obj);
  }
  r.similarity_ops = 123456789;
  r.combinations_checked = 4242;
  r.converged = false;
  r.exact_rescans = 3;
  r.probes = 777;
  r.rounds = 5;
  if (with_trace) {
    core::RoundTrace rt;
    rt.candidates_per_class = {2, 0, 5};
    rt.null_candidates = 1;
    rt.combinations = 30;
    rt.best_similarity = 0.99999999999999;
    rt.accepted = true;
    r.trace = {rt, rt};
    r.trace[1].accepted = false;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(NetProtocol, FrameRoundTrip) {
  const auto payload = sample_payload();
  const auto bytes = net::encode_frame(Opcode::kFactorize, net::kFlagStream,
                                       0xDEADBEEFCAFEBABEull, payload);
  ASSERT_EQ(bytes.size(), net::kHeaderSize + payload.size());

  FrameParser parser;
  std::vector<Frame> frames;
  parser.feed(bytes, frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].opcode(), Opcode::kFactorize);
  EXPECT_EQ(frames[0].header.flags, net::kFlagStream);
  EXPECT_EQ(frames[0].header.request_id, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(frames[0].payload, payload);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(NetProtocol, EmptyPayloadFrame) {
  const auto bytes = net::encode_frame(Opcode::kPing, 0, 7, {});
  FrameParser parser;
  std::vector<Frame> frames;
  parser.feed(bytes, frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(NetProtocol, SplitAcrossReadsByteByByte) {
  const auto payload = sample_payload();
  const auto bytes = net::encode_frame(Opcode::kResult, 0, 42, payload);
  FrameParser parser;
  std::vector<Frame> frames;
  for (const std::uint8_t b : bytes) {
    parser.feed(std::span<const std::uint8_t>(&b, 1), frames);
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, payload);
}

TEST(NetProtocol, SplitAcrossReadsRandomChunks) {
  util::Xoshiro256 rng(99);
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::uint64_t i = 0; i < 17; ++i) {
    std::vector<std::uint8_t> p(static_cast<std::size_t>(rng() % 200));
    for (auto& b : p) b = static_cast<std::uint8_t>(rng());
    const auto f = net::encode_frame(Opcode::kPartial, 0, i, p);
    stream.insert(stream.end(), f.begin(), f.end());
    payloads.push_back(std::move(p));
  }
  FrameParser parser;
  std::vector<Frame> frames;
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng() % 97, stream.size() - off);
    parser.feed(std::span<const std::uint8_t>(stream.data() + off, chunk),
                frames);
    off += chunk;
  }
  ASSERT_EQ(frames.size(), payloads.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].header.request_id, i);
    EXPECT_EQ(frames[i].payload, payloads[i]);
  }
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(NetProtocol, TruncatedHeaderProducesNothing) {
  const auto bytes = net::encode_frame(Opcode::kPing, 0, 1, sample_payload());
  for (std::size_t cut = 0; cut < net::kHeaderSize; ++cut) {
    FrameParser parser;
    std::vector<Frame> frames;
    parser.feed(std::span<const std::uint8_t>(bytes.data(), cut), frames);
    EXPECT_TRUE(frames.empty()) << "cut=" << cut;
    EXPECT_EQ(parser.buffered(), cut);
  }
}

TEST(NetProtocol, TruncatedPayloadProducesNothing) {
  const auto bytes = net::encode_frame(Opcode::kPing, 0, 1, sample_payload());
  FrameParser parser;
  std::vector<Frame> frames;
  parser.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1),
              frames);
  EXPECT_TRUE(frames.empty());
  EXPECT_GT(parser.buffered(), 0u);
}

// ---------------------------------------------------------------------------
// Framing violations
// ---------------------------------------------------------------------------

TEST(NetProtocol, BadMagicThrows) {
  auto bytes = net::encode_frame(Opcode::kPing, 0, 1, {});
  bytes[0] ^= 0xFF;
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_THROW(parser.feed(bytes, frames), ProtocolError);
  // Poisoned: even valid bytes are rejected afterwards.
  const auto good = net::encode_frame(Opcode::kPing, 0, 2, {});
  EXPECT_THROW(parser.feed(good, frames), ProtocolError);
}

TEST(NetProtocol, NonzeroReservedThrows) {
  auto bytes = net::encode_frame(Opcode::kPing, 0, 1, {});
  bytes[6] = 1;
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_THROW(parser.feed(bytes, frames), ProtocolError);
}

TEST(NetProtocol, OversizedLengthPrefixThrowsBeforeAllocating) {
  auto bytes = net::encode_frame(Opcode::kFactorize, 0, 1, {});
  // A hostile length prefix (4 GiB - 1) must be rejected from the header
  // alone — no allocation, no waiting for payload bytes.
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + 16, &huge, sizeof huge);
  FrameParser parser(1 << 20);
  std::vector<Frame> frames;
  EXPECT_THROW(parser.feed(bytes, frames), ProtocolError);
}

TEST(NetProtocol, PayloadChecksumMismatchThrows) {
  auto bytes = net::encode_frame(Opcode::kPing, 0, 1, sample_payload());
  bytes[net::kHeaderSize + 3] ^= 0x10;  // flip one payload bit
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_THROW(parser.feed(bytes, frames), ProtocolError);
}

TEST(NetProtocol, BitFlipSweepNeverCrashes) {
  // Every single-bit corruption of a valid frame must either throw
  // ProtocolError, yield no frame (reinterpreted as incomplete), or yield
  // some frame — never crash or hang. Payload-region flips specifically
  // must be caught by the checksum.
  const auto pristine =
      net::encode_frame(Opcode::kFactorize, 0, 1234, sample_payload());
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bytes = pristine;
      bytes[byte] ^= static_cast<std::uint8_t>(1 << bit);
      FrameParser parser;
      std::vector<Frame> frames;
      bool threw = false;
      try {
        parser.feed(bytes, frames);
      } catch (const ProtocolError&) {
        threw = true;
      }
      if (byte >= net::kHeaderSize) {
        EXPECT_TRUE(threw) << "payload flip escaped the checksum at byte "
                           << byte << " bit " << bit;
      }
      if (!threw && !frames.empty()) {
        // Whatever came out still honors the length invariant.
        EXPECT_EQ(frames[0].payload.size(), frames[0].header.payload_len);
      }
    }
  }
}

TEST(NetProtocol, UnknownOpcodeIsDeliveredNotFatal) {
  // The parser delivers unknown opcodes (the server answers kError and
  // keeps the connection; the policy is not the parser's).
  auto bytes = net::encode_frame(Opcode::kPing, 0, 5, {});
  bytes[4] = 0xEE;
  FrameParser parser;
  std::vector<Frame> frames;
  parser.feed(bytes, frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.opcode, 0xEE);
  EXPECT_FALSE(net::known_opcode(0xEE));
}

TEST(NetProtocol, RandomByteSoupNeverCrashes) {
  util::Xoshiro256 rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> soup(static_cast<std::size_t>(rng() % 512));
    for (auto& b : soup) b = static_cast<std::uint8_t>(rng());
    FrameParser parser;
    std::vector<Frame> frames;
    try {
      parser.feed(soup, frames);
    } catch (const ProtocolError&) {
      // expected for most soups
    }
  }
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

TEST(NetProtocol, FactorizeRequestRoundTrip) {
  net::FactorizeRequest req;
  req.opts.multi_object = true;
  req.opts.exact_scan = true;
  req.opts.collect_trace = true;
  req.opts.threshold = 0.1;  // not exactly representable: bit-exactness test
  req.opts.num_objects_hint = 3;
  req.opts.max_objects = 7;
  req.opts.max_depth = 2;
  req.opts.max_candidates_per_class = 5;
  req.opts.selected_classes = {0, 2, 5};
  req.deadline_hint_us = 123456;
  req.target = hdc::Hypervector({1, -1, 0, 42, -17, 2, -2, 9});

  const auto payload = net::encode_factorize_request(req);
  const net::FactorizeRequest back = net::decode_factorize_request(payload);
  EXPECT_TRUE(back.opts == req.opts);
  EXPECT_EQ(back.deadline_hint_us, req.deadline_hint_us);
  const auto a = back.target.components();
  const auto b = req.target.components();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(NetProtocol, DoubleBitPatternsSurviveTheWire) {
  // bit_cast framing: -0.0, denormals, and giant magnitudes round-trip
  // exactly. (NaN would too, but FactorizeOptions never carries one.)
  for (const double d :
       {-0.0, std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(), -1.0 / 3.0, 1e-300}) {
    net::PayloadWriter w;
    w.put_f64(d);
    net::PayloadReader r(w.bytes());
    const double back = r.get_f64();
    EXPECT_EQ(std::memcmp(&back, &d, sizeof d), 0) << d;
  }
}

TEST(NetProtocol, FactorizeRequestTruncationSweep) {
  net::FactorizeRequest req;
  req.opts.selected_classes = {1, 2};
  req.target = hdc::Hypervector({5, -5, 7, -7});
  const auto payload = net::encode_factorize_request(req);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW(
        (void)net::decode_factorize_request(
            std::span<const std::uint8_t>(payload.data(), cut)),
        ProtocolError)
        << "cut=" << cut;
  }
  // Trailing garbage is equally fatal (expect_end).
  auto padded = payload;
  padded.push_back(0);
  EXPECT_THROW((void)net::decode_factorize_request(padded), ProtocolError);
}

TEST(NetProtocol, ResultRoundTripInline) {
  const core::FactorizeResult r = sample_result(true);
  const auto payload = net::encode_result(r, /*streamed=*/false);
  const core::FactorizeResult back =
      net::decode_result(payload, /*streamed=*/false, {});
  EXPECT_TRUE(back == r);  // bit-level, doubles included
}

TEST(NetProtocol, ResultRoundTripStreamedReassembly) {
  const core::FactorizeResult r = sample_result(false);
  // Server side: one kPartial payload per object + a final streamed result.
  std::vector<core::FactorizedObject> collected;
  for (std::size_t i = 0; i < r.objects.size(); ++i) {
    const auto partial =
        net::encode_partial(static_cast<std::uint32_t>(i), r.objects[i]);
    auto [index, obj] = net::decode_partial(partial);
    EXPECT_EQ(index, i);
    collected.push_back(std::move(obj));
  }
  const auto fin = net::encode_result(r, /*streamed=*/true);
  EXPECT_LT(fin.size(), net::encode_result(r, false).size());
  const core::FactorizeResult back =
      net::decode_result(fin, /*streamed=*/true, std::move(collected));
  EXPECT_TRUE(back == r);
}

TEST(NetProtocol, StreamedResultPartialCountMismatchThrows) {
  const core::FactorizeResult r = sample_result(false);
  const auto fin = net::encode_result(r, true);
  std::vector<core::FactorizedObject> tooFew(r.objects.begin(),
                                             r.objects.end() - 1);
  EXPECT_THROW((void)net::decode_result(fin, true, std::move(tooFew)),
               ProtocolError);
}

TEST(NetProtocol, ErrorAndOverloadRoundTrip) {
  const auto err = net::encode_error(net::ErrorCode::kDimensionMismatch,
                                     "dim 8 != model dim 1024");
  const auto [code, message] = net::decode_error(err);
  EXPECT_EQ(code, net::ErrorCode::kDimensionMismatch);
  EXPECT_EQ(message, "dim 8 != model dim 1024");

  net::OverloadInfo info;
  info.code = net::OverloadCode::kQuotaExceeded;
  info.queue_depth = 17;
  info.limit = 32;
  info.detail = "quota";
  const auto back = net::decode_overload(net::encode_overload(info));
  EXPECT_EQ(back.code, info.code);
  EXPECT_EQ(back.queue_depth, info.queue_depth);
  EXPECT_EQ(back.limit, info.limit);
  EXPECT_EQ(back.detail, info.detail);
}

TEST(NetProtocol, PayloadDecoderFuzzNeverCrashes) {
  // Seeded random payloads through every decoder: clean ProtocolError or
  // clean success, never a crash (ASan/UBSan enforce the "clean").
  util::Xoshiro256 rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(rng() % 256));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    try {
      (void)net::decode_factorize_request(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)net::decode_result(bytes, false, {});
    } catch (const ProtocolError&) {
    }
    try {
      (void)net::decode_partial(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)net::decode_error(bytes);
    } catch (const ProtocolError&) {
    }
    try {
      (void)net::decode_overload(bytes);
    } catch (const ProtocolError&) {
    }
  }
}

TEST(NetProtocol, ChecksumIsFnv1a) {
  // Pin the checksum function: an accidental algorithm change would break
  // every deployed peer silently.
  const std::uint8_t abc[] = {'a', 'b', 'c'};
  EXPECT_EQ(net::payload_checksum({}), 2166136261u);
  EXPECT_EQ(net::payload_checksum(abc), 0x1A47E90Bu);
}

}  // namespace
