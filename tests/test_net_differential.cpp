// Network-path differential suite: a FactorizeResult decoded from the FHN1
// wire is bit-identical (FactorizeResult::operator==, doubles included) to
// the result of calling the engine directly — across engine batch
// configurations, model shard counts, pipelining depths, and streamed
// (kPartial-reassembled) multi-object responses. This is the acceptance
// property of the network front end: the socket adds latency, never bits.
//
// Integration-labeled (real sockets + threads); runs under ASan/UBSan in
// the Debug CI job.
#include <gtest/gtest.h>

#include <chrono>
#include <unordered_map>
#include <vector>

#include "net/net.hpp"
#include "service/service.hpp"
#include "taxonomy/generator.hpp"

namespace {

using namespace factorhd;
using namespace std::chrono_literals;

struct WorkItem {
  hdc::Hypervector target;
  core::FactorizeOptions opts;
  core::FactorizeResult expected;
};

class NetDifferentialTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 512;

  /// Builds a model (optionally sharded) and a seeded mixed workload —
  /// single-object, partial-factorization, and multi-object items, some
  /// repeated — with direct-call ground truth from that same model.
  void build(std::size_t shards) {
    util::Xoshiro256 rng(2026);
    std::optional<hdc::kernels::ShardedConfig> sharded;
    if (shards > 1) sharded = hdc::kernels::ShardedConfig{.shards = shards};
    model_ = service::Model::make(
        "netdiff", tax::TaxonomyCodebooks(tax::Taxonomy(3, {8, 4}), kDim, rng),
        hdc::ScanBackend::kAuto, nullptr, sharded);

    core::FactorizeOptions single;
    core::FactorizeOptions partial;
    partial.selected_classes = {0, 2};
    partial.max_depth = 1;
    core::FactorizeOptions multi;
    multi.multi_object = true;
    multi.num_objects_hint = 2;
    core::FactorizeOptions traced;
    traced.collect_trace = true;

    const tax::Taxonomy& taxonomy = model_->books().taxonomy();
    work_.clear();
    for (std::size_t i = 0; i < 14; ++i) {
      WorkItem item;
      if (i % 4 == 2) {
        const tax::Scene scene = tax::random_scene(
            taxonomy, rng,
            {.num_objects = 2, .object = {}, .allow_duplicates = true});
        item.target = model_->encoder().encode_scene(scene);
        item.opts = multi;
      } else {
        item.target =
            model_->encoder().encode_object(tax::random_object(taxonomy, rng));
        item.opts = (i % 4 == 1) ? partial : (i % 4 == 3) ? traced : single;
      }
      item.expected = model_->factorizer().factorize(item.target, item.opts);
      work_.push_back(std::move(item));
    }
    // Repeats exercise engine-side coalescing/caching through the socket.
    work_.push_back(work_[0]);
    work_.push_back(work_[2]);
  }

  /// Pushes the workload through a NetServer over `engine` with
  /// `pipeline_depth` requests outstanding at a time, and asserts every
  /// wire response is bit-identical to the precomputed direct result.
  void run_differential(service::FactorizationEngine& engine,
                        std::size_t pipeline_depth, bool stream) {
    net::NetServer server(engine, {});
    server.start();
    net::NetClient client("127.0.0.1", server.port());
    client.set_recv_timeout(30s);

    std::unordered_map<std::uint64_t, std::size_t> id_to_item;
    std::size_t sent = 0;
    std::size_t received = 0;
    while (received < work_.size()) {
      while (sent < work_.size() && sent - received < pipeline_depth) {
        const std::uint64_t id =
            client.send_factorize(work_[sent].target, work_[sent].opts, stream);
        id_to_item.emplace(id, sent);
        ++sent;
      }
      const net::NetClient::Response resp = client.recv_response();
      ASSERT_EQ(resp.kind, net::NetClient::Response::Kind::kResult);
      const auto it = id_to_item.find(resp.request_id);
      ASSERT_NE(it, id_to_item.end()) << "unknown request id echoed";
      const WorkItem& item = work_[it->second];
      EXPECT_TRUE(resp.result == item.expected)
          << "wire result differs from direct factorize at item "
          << it->second;
      if (stream) {
        // Streamed responses carry one kPartial per object, reassembled by
        // the client into the identical result.
        EXPECT_EQ(resp.partial_frames, item.expected.objects.size())
            << "streamed partial count mismatch at item " << it->second;
      } else {
        EXPECT_EQ(resp.partial_frames, 0u);
      }
      id_to_item.erase(it);
      ++received;
    }
    server.stop();
  }

  std::shared_ptr<const service::Model> model_;
  std::vector<WorkItem> work_;
};

TEST_F(NetDifferentialTest, NoBatchingUnshardedSynchronous) {
  build(/*shards=*/1);
  service::FactorizationEngine engine(
      model_, {.max_batch = 1, .max_delay_us = 0, .cache_capacity = 0});
  run_differential(engine, /*pipeline_depth=*/1, /*stream=*/false);
}

TEST_F(NetDifferentialTest, MicroBatchingPipelined) {
  build(/*shards=*/1);
  service::FactorizationEngine engine(
      model_, {.max_batch = 8, .max_delay_us = 500, .cache_capacity = 0});
  run_differential(engine, /*pipeline_depth=*/8, /*stream=*/false);
}

TEST_F(NetDifferentialTest, LargeBatchDeepPipeline) {
  build(/*shards=*/1);
  service::FactorizationEngine engine(model_, {.max_batch = 64,
                                               .max_delay_us = 2000,
                                               .batch_threads = 4,
                                               .cache_capacity = 0});
  run_differential(engine, /*pipeline_depth=*/16, /*stream=*/false);
}

TEST_F(NetDifferentialTest, ShardedModelMatchesDirect) {
  build(/*shards=*/4);
  service::FactorizationEngine engine(
      model_, {.max_batch = 8, .max_delay_us = 500, .cache_capacity = 0});
  run_differential(engine, /*pipeline_depth=*/8, /*stream=*/false);
}

TEST_F(NetDifferentialTest, StreamedPartialsReassembleExactly) {
  build(/*shards=*/1);
  service::FactorizationEngine engine(
      model_, {.max_batch = 8, .max_delay_us = 500, .cache_capacity = 0});
  run_differential(engine, /*pipeline_depth=*/4, /*stream=*/true);
}

TEST_F(NetDifferentialTest, StreamedShardedCachedPipelined) {
  // Everything at once: sharded model, caching + coalescing engine, deep
  // pipelining, streamed responses — and two passes so the second is
  // largely cache-served through the socket.
  build(/*shards=*/4);
  service::FactorizationEngine engine(model_, {.max_batch = 8,
                                               .max_delay_us = 500,
                                               .dispatchers = 2,
                                               .cache_capacity = 128});
  run_differential(engine, /*pipeline_depth=*/16, /*stream=*/true);
  run_differential(engine, /*pipeline_depth=*/16, /*stream=*/true);
}

}  // namespace
