// Differential and behavioral tests for service::FactorizationEngine.
//
// The load-bearing guarantee (ISSUE 4 acceptance): every future the engine
// fulfills carries a FactorizeResult bit-identical to a direct
// Factorizer::factorize call with the same (target, options) — regardless
// of micro-batch composition, BatchFactorizer thread count, duplicate
// coalescing, or cache state. The differential suites assert exact equality
// (FactorizeResult::operator==, doubles included) across engine
// configurations on a seeded workload.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/factorhd.hpp"
#include "service/service.hpp"

namespace {

using namespace factorhd;

struct WorkItem {
  hdc::Hypervector target;
  core::FactorizeOptions opts;
  core::FactorizeResult expected;
};

/// A seeded mixed workload (Rep-1 objects and Rep-3 scenes, some repeated,
/// some with partial-factorization options) with direct-call ground truth.
class ServiceEngineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 1024;

  void SetUp() override {
    util::Xoshiro256 rng(1234);
    model_ = service::Model::make(
        "test", tax::TaxonomyCodebooks(tax::Taxonomy(3, {8, 4}), kDim, rng));

    core::FactorizeOptions single;
    core::FactorizeOptions partial;
    partial.selected_classes = {0, 2};
    partial.max_depth = 1;
    core::FactorizeOptions multi;
    multi.multi_object = true;
    multi.num_objects_hint = 2;

    const tax::Taxonomy& taxonomy = model_->books().taxonomy();
    for (std::size_t i = 0; i < 18; ++i) {
      WorkItem item;
      if (i % 3 == 2) {
        const tax::Scene scene = tax::random_scene(
            taxonomy, rng,
            {.num_objects = 2, .object = {}, .allow_duplicates = true});
        item.target = model_->encoder().encode_scene(scene);
        item.opts = multi;
      } else {
        item.target = model_->encoder().encode_object(
            tax::random_object(taxonomy, rng));
        item.opts = (i % 3 == 1) ? partial : single;
      }
      item.expected = model_->factorizer().factorize(item.target, item.opts);
      work_.push_back(std::move(item));
    }
    // Repeats (same target and options) exercise coalescing and caching.
    work_.push_back(work_[0]);
    work_.push_back(work_[2]);
    work_.push_back(work_[0]);
  }

  /// Submits the whole workload, waits, and asserts exact equality.
  void run_differential(service::FactorizationEngine& engine) {
    std::vector<std::future<core::FactorizeResult>> futures;
    futures.reserve(work_.size());
    for (const WorkItem& item : work_) {
      futures.push_back(engine.submit(item.target, item.opts));
    }
    for (std::size_t i = 0; i < work_.size(); ++i) {
      EXPECT_TRUE(futures[i].get() == work_[i].expected)
          << "engine result differs from direct factorize at item " << i;
    }
  }

  std::shared_ptr<const service::Model> model_;
  std::vector<WorkItem> work_;
};

TEST_F(ServiceEngineTest, NoBatchingMatchesDirect) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 1, .max_delay_us = 0, .cache_capacity = 0});
  run_differential(engine);
}

TEST_F(ServiceEngineTest, MicroBatchingMatchesDirect) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 8, .max_delay_us = 500, .cache_capacity = 0});
  run_differential(engine);
}

TEST_F(ServiceEngineTest, LargeBatchManyThreadsMatchesDirect) {
  service::FactorizationEngine engine(model_, {.max_batch = 64,
                                               .max_delay_us = 2000,
                                               .batch_threads = 4,
                                               .cache_capacity = 0});
  run_differential(engine);
}

TEST_F(ServiceEngineTest, MultipleDispatchersMatchDirect) {
  // MPMC: several queue-consumer threads forming flights concurrently.
  service::FactorizationEngine engine(model_, {.max_batch = 4,
                                               .max_delay_us = 100,
                                               .dispatchers = 3,
                                               .cache_capacity = 64});
  run_differential(engine);
  run_differential(engine);
}

TEST_F(ServiceEngineTest, CachingAndCoalescingMatchDirect) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 8, .max_delay_us = 500, .cache_capacity = 128});
  run_differential(engine);
  // Replay the whole workload: now largely cache-served — still identical.
  run_differential(engine);
  const auto m = engine.metrics();
  EXPECT_GT(m.cache_hits + m.coalesced, 0u)
      << "repeated workload should exercise reuse";
}

TEST_F(ServiceEngineTest, SequentialRepeatIsACacheHit) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 4, .max_delay_us = 100, .cache_capacity = 64});
  auto first = engine.submit(work_[0].target, work_[0].opts);
  EXPECT_TRUE(first.get() == work_[0].expected);
  // The first result is now cached; an identical request must hit and be
  // byte-identical.
  auto second = engine.submit(work_[0].target, work_[0].opts);
  EXPECT_TRUE(second.get() == work_[0].expected);
  EXPECT_GE(engine.metrics().cache_hits, 1u);
}

TEST_F(ServiceEngineTest, MetricsInvariantsAfterDrain) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 8, .max_delay_us = 200, .cache_capacity = 64});
  std::vector<std::future<core::FactorizeResult>> futures;
  for (const WorkItem& item : work_) {
    futures.push_back(engine.submit(item.target, item.opts));
  }
  for (auto& f : futures) (void)f.get();
  engine.stop();
  const auto m = engine.metrics();
  EXPECT_EQ(m.submitted, work_.size());
  EXPECT_EQ(m.completed, work_.size());
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.cache_hits + m.cache_misses, m.submitted);
  // Every miss was dispatched in some batch.
  EXPECT_EQ(m.batched_requests, m.cache_misses);
  EXPECT_GE(m.batches, 1u);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_GT(m.p99_latency_us, 0.0);
  EXPECT_GE(m.p99_latency_us, m.p50_latency_us);
}

TEST_F(ServiceEngineTest, SubmitAfterStopThrowsEvenOnACachedTarget) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 4, .max_delay_us = 100, .cache_capacity = 64});
  auto fut = engine.submit(work_[0].target, work_[0].opts);
  (void)fut.get();  // result is now cached
  engine.stop();
  EXPECT_THROW((void)engine.submit(work_[0].target, work_[0].opts),
               service::EngineStoppedError)
      << "a stopped engine must refuse cache-answerable submits too";
}

TEST_F(ServiceEngineTest, StopDrainsEveryInFlightRequest) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 4, .max_delay_us = 100000, .cache_capacity = 0});
  std::vector<std::future<core::FactorizeResult>> futures;
  for (const WorkItem& item : work_) {
    futures.push_back(engine.submit(item.target, item.opts));
  }
  engine.stop();  // must drain, not abandon
  for (std::size_t i = 0; i < work_.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "future " << i << " not fulfilled by stop()";
    EXPECT_TRUE(futures[i].get() == work_[i].expected);
  }
  EXPECT_THROW((void)engine.submit(work_[0].target, work_[0].opts),
               service::EngineStoppedError);
  engine.stop();  // idempotent
}

TEST_F(ServiceEngineTest, RejectsWhenQueueFull) {
  // A huge max_batch with a long delay parks the batcher waiting on the
  // flush deadline while the queue (capacity 2) fills: deterministic
  // backpressure.
  service::FactorizationEngine engine(model_, {.max_batch = 1000,
                                               .max_delay_us = 5000000,
                                               .queue_capacity = 2,
                                               .reject_when_full = true,
                                               .cache_capacity = 0});
  std::vector<std::future<core::FactorizeResult>> accepted;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    try {
      accepted.push_back(engine.submit(work_[0].target, work_[0].opts));
    } catch (const service::QueueFullError&) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_LE(accepted.size(), 8u - rejected);
  engine.stop();  // drains the accepted ones
  for (auto& f : accepted) {
    EXPECT_TRUE(f.get() == work_[0].expected);
  }
  EXPECT_EQ(engine.metrics().rejected, rejected);
}

TEST_F(ServiceEngineTest, StopWhileBlockedOnBackpressureThrowsStoppedError) {
  // A parked batcher (huge max_batch + long flush deadline) with a
  // capacity-1 queue: the first submit fills the queue, the second blocks
  // on backpressure. stop() must wake it with EngineStoppedError — the
  // request was never enqueued, so fulfilling it is impossible.
  service::FactorizationEngine engine(model_, {.max_batch = 1000,
                                               .max_delay_us = 5000000,
                                               .queue_capacity = 1,
                                               .reject_when_full = false,
                                               .cache_capacity = 0});
  auto queued = engine.submit(work_[0].target, work_[0].opts);
  auto blocked = std::async(std::launch::async, [&] {
    return engine.submit(work_[1].target, work_[1].opts);
  });
  // Give the async submit a moment to reach the backpressure wait; if stop()
  // wins the race anyway, submit still throws EngineStoppedError, just from
  // the earlier stopped check.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.stop();
  EXPECT_THROW((void)blocked.get(), service::EngineStoppedError);
  EXPECT_TRUE(queued.get() == work_[0].expected)
      << "stop() must still drain the request that did get enqueued";
}

TEST_F(ServiceEngineTest, BlockingBackpressureEventuallyServesEverything) {
  service::FactorizationEngine engine(model_, {.max_batch = 2,
                                               .max_delay_us = 100,
                                               .queue_capacity = 2,
                                               .reject_when_full = false,
                                               .cache_capacity = 0});
  std::vector<std::future<core::FactorizeResult>> futures;
  for (std::size_t i = 0; i < 10; ++i) {  // > queue capacity: submit blocks
    futures.push_back(engine.submit(work_[i % 4].target, work_[i % 4].opts));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(futures[i].get() == work_[i % 4].expected);
  }
  EXPECT_EQ(engine.metrics().rejected, 0u);
}

TEST_F(ServiceEngineTest, FailedFlightPropagatesExceptionAndStaysConsistent) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 4, .max_delay_us = 100, .cache_capacity = 64});
  // Passes submit (dimension is fine) but throws inside the dispatched
  // factorize_all: a selected class out of range.
  core::FactorizeOptions bad;
  bad.selected_classes = {99};
  auto poisoned = engine.submit(work_[0].target, bad);
  auto healthy = engine.submit(work_[1].target, work_[1].opts);
  EXPECT_THROW((void)poisoned.get(), std::invalid_argument);
  EXPECT_TRUE(healthy.get() == work_[1].expected)
      << "a failing options-group must not take down its flight-mates";
  engine.stop();
  const auto m = engine.metrics();
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_EQ(m.completed, 2u)
      << "exceptionally fulfilled requests still count as completed";
  EXPECT_EQ(m.queue_depth, 0u);
}

TEST_F(ServiceEngineTest, ValidatesArguments) {
  EXPECT_THROW(service::FactorizationEngine(nullptr), std::invalid_argument);
  EXPECT_THROW(service::FactorizationEngine(model_, {.max_batch = 0}),
               std::invalid_argument);
  EXPECT_THROW(service::FactorizationEngine(model_, {.queue_capacity = 0}),
               std::invalid_argument);
  EXPECT_THROW(service::FactorizationEngine(model_, {.dispatchers = 0}),
               std::invalid_argument);
  service::FactorizationEngine engine(model_, {});
  EXPECT_THROW((void)engine.submit(hdc::Hypervector(kDim + 1)),
               std::invalid_argument);
}

TEST_F(ServiceEngineTest, ForcedScalarBackendModelMatchesPackedModel) {
  // The same codebook material served on the forced scalar-word tier must
  // produce the same bits (the cross-backend contract, now via the engine).
  util::Xoshiro256 rng(1234);
  auto scalar_model = service::Model::make(
      "scalar",
      tax::TaxonomyCodebooks(tax::Taxonomy(3, {8, 4}), kDim, rng),
      hdc::ScanBackend::kPackedWords);
  ASSERT_EQ(scalar_model->factorizer().simd_level(),
            hdc::kernels::SimdLevel::kScalarWords);
  // Note: same seed → same codebooks as model_, so ground truth transfers.
  service::FactorizationEngine engine(
      scalar_model, {.max_batch = 8, .max_delay_us = 200});
  run_differential(engine);
}

}  // namespace
