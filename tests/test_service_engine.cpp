// Differential and behavioral tests for service::FactorizationEngine.
//
// The load-bearing guarantee (ISSUE 4 acceptance): every future the engine
// fulfills carries a FactorizeResult bit-identical to a direct
// Factorizer::factorize call with the same (target, options) — regardless
// of micro-batch composition, BatchFactorizer thread count, duplicate
// coalescing, or cache state. The differential suites assert exact equality
// (FactorizeResult::operator==, doubles included) across engine
// configurations on a seeded workload.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "core/factorhd.hpp"
#include "service/service.hpp"

namespace {

using namespace factorhd;

struct WorkItem {
  hdc::Hypervector target;
  core::FactorizeOptions opts;
  core::FactorizeResult expected;
};

/// A seeded mixed workload (Rep-1 objects and Rep-3 scenes, some repeated,
/// some with partial-factorization options) with direct-call ground truth.
class ServiceEngineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kDim = 1024;

  void SetUp() override {
    util::Xoshiro256 rng(1234);
    model_ = service::Model::make(
        "test", tax::TaxonomyCodebooks(tax::Taxonomy(3, {8, 4}), kDim, rng));

    core::FactorizeOptions single;
    core::FactorizeOptions partial;
    partial.selected_classes = {0, 2};
    partial.max_depth = 1;
    core::FactorizeOptions multi;
    multi.multi_object = true;
    multi.num_objects_hint = 2;

    const tax::Taxonomy& taxonomy = model_->books().taxonomy();
    for (std::size_t i = 0; i < 18; ++i) {
      WorkItem item;
      if (i % 3 == 2) {
        const tax::Scene scene = tax::random_scene(
            taxonomy, rng,
            {.num_objects = 2, .object = {}, .allow_duplicates = true});
        item.target = model_->encoder().encode_scene(scene);
        item.opts = multi;
      } else {
        item.target = model_->encoder().encode_object(
            tax::random_object(taxonomy, rng));
        item.opts = (i % 3 == 1) ? partial : single;
      }
      item.expected = model_->factorizer().factorize(item.target, item.opts);
      work_.push_back(std::move(item));
    }
    // Repeats (same target and options) exercise coalescing and caching.
    work_.push_back(work_[0]);
    work_.push_back(work_[2]);
    work_.push_back(work_[0]);
  }

  /// Submits the whole workload, waits, and asserts exact equality.
  void run_differential(service::FactorizationEngine& engine) {
    std::vector<std::future<core::FactorizeResult>> futures;
    futures.reserve(work_.size());
    for (const WorkItem& item : work_) {
      futures.push_back(engine.submit(item.target, item.opts));
    }
    for (std::size_t i = 0; i < work_.size(); ++i) {
      EXPECT_TRUE(futures[i].get() == work_[i].expected)
          << "engine result differs from direct factorize at item " << i;
    }
  }

  std::shared_ptr<const service::Model> model_;
  std::vector<WorkItem> work_;
};

TEST_F(ServiceEngineTest, NoBatchingMatchesDirect) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 1, .max_delay_us = 0, .cache_capacity = 0});
  run_differential(engine);
}

TEST_F(ServiceEngineTest, MicroBatchingMatchesDirect) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 8, .max_delay_us = 500, .cache_capacity = 0});
  run_differential(engine);
}

TEST_F(ServiceEngineTest, LargeBatchManyThreadsMatchesDirect) {
  service::FactorizationEngine engine(model_, {.max_batch = 64,
                                               .max_delay_us = 2000,
                                               .batch_threads = 4,
                                               .cache_capacity = 0});
  run_differential(engine);
}

TEST_F(ServiceEngineTest, MultipleDispatchersMatchDirect) {
  // MPMC: several queue-consumer threads forming flights concurrently.
  service::FactorizationEngine engine(model_, {.max_batch = 4,
                                               .max_delay_us = 100,
                                               .dispatchers = 3,
                                               .cache_capacity = 64});
  run_differential(engine);
  run_differential(engine);
}

TEST_F(ServiceEngineTest, CachingAndCoalescingMatchDirect) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 8, .max_delay_us = 500, .cache_capacity = 128});
  run_differential(engine);
  // Replay the whole workload: now largely cache-served — still identical.
  run_differential(engine);
  const auto m = engine.metrics();
  EXPECT_GT(m.cache_hits + m.coalesced, 0u)
      << "repeated workload should exercise reuse";
}

TEST_F(ServiceEngineTest, SequentialRepeatIsACacheHit) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 4, .max_delay_us = 100, .cache_capacity = 64});
  auto first = engine.submit(work_[0].target, work_[0].opts);
  EXPECT_TRUE(first.get() == work_[0].expected);
  // The first result is now cached; an identical request must hit and be
  // byte-identical.
  auto second = engine.submit(work_[0].target, work_[0].opts);
  EXPECT_TRUE(second.get() == work_[0].expected);
  EXPECT_GE(engine.metrics().cache_hits, 1u);
}

TEST_F(ServiceEngineTest, MetricsInvariantsAfterDrain) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 8, .max_delay_us = 200, .cache_capacity = 64});
  std::vector<std::future<core::FactorizeResult>> futures;
  for (const WorkItem& item : work_) {
    futures.push_back(engine.submit(item.target, item.opts));
  }
  for (auto& f : futures) (void)f.get();
  engine.stop();
  const auto m = engine.metrics();
  EXPECT_EQ(m.submitted, work_.size());
  EXPECT_EQ(m.completed, work_.size());
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.cache_hits + m.cache_misses, m.submitted);
  // Every miss was dispatched in some batch.
  EXPECT_EQ(m.batched_requests, m.cache_misses);
  EXPECT_GE(m.batches, 1u);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_GT(m.p99_latency_us, 0.0);
  EXPECT_GE(m.p99_latency_us, m.p50_latency_us);
}

TEST_F(ServiceEngineTest, SubmitAfterStopThrowsEvenOnACachedTarget) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 4, .max_delay_us = 100, .cache_capacity = 64});
  auto fut = engine.submit(work_[0].target, work_[0].opts);
  (void)fut.get();  // result is now cached
  engine.stop();
  EXPECT_THROW((void)engine.submit(work_[0].target, work_[0].opts),
               service::EngineStoppedError)
      << "a stopped engine must refuse cache-answerable submits too";
}

TEST_F(ServiceEngineTest, StopDrainsEveryInFlightRequest) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 4, .max_delay_us = 100000, .cache_capacity = 0});
  std::vector<std::future<core::FactorizeResult>> futures;
  for (const WorkItem& item : work_) {
    futures.push_back(engine.submit(item.target, item.opts));
  }
  engine.stop();  // must drain, not abandon
  for (std::size_t i = 0; i < work_.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "future " << i << " not fulfilled by stop()";
    EXPECT_TRUE(futures[i].get() == work_[i].expected);
  }
  EXPECT_THROW((void)engine.submit(work_[0].target, work_[0].opts),
               service::EngineStoppedError);
  engine.stop();  // idempotent
}

TEST_F(ServiceEngineTest, RejectsWhenQueueFull) {
  // A huge max_batch with a long delay parks the batcher waiting on the
  // flush deadline while the queue (capacity 2) fills: deterministic
  // backpressure.
  service::FactorizationEngine engine(model_, {.max_batch = 1000,
                                               .max_delay_us = 5000000,
                                               .queue_capacity = 2,
                                               .reject_when_full = true,
                                               .cache_capacity = 0});
  std::vector<std::future<core::FactorizeResult>> accepted;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    try {
      accepted.push_back(engine.submit(work_[0].target, work_[0].opts));
    } catch (const service::QueueFullError&) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_LE(accepted.size(), 8u - rejected);
  engine.stop();  // drains the accepted ones
  for (auto& f : accepted) {
    EXPECT_TRUE(f.get() == work_[0].expected);
  }
  EXPECT_EQ(engine.metrics().rejected, rejected);
}

TEST_F(ServiceEngineTest, StopWhileBlockedOnBackpressureThrowsStoppedError) {
  // A parked batcher (huge max_batch + long flush deadline) with a
  // capacity-1 queue: the first submit fills the queue, the second blocks
  // on backpressure. stop() must wake it with EngineStoppedError — the
  // request was never enqueued, so fulfilling it is impossible.
  service::FactorizationEngine engine(model_, {.max_batch = 1000,
                                               .max_delay_us = 5000000,
                                               .queue_capacity = 1,
                                               .reject_when_full = false,
                                               .cache_capacity = 0});
  auto queued = engine.submit(work_[0].target, work_[0].opts);
  auto blocked = std::async(std::launch::async, [&] {
    return engine.submit(work_[1].target, work_[1].opts);
  });
  // Give the async submit a moment to reach the backpressure wait; if stop()
  // wins the race anyway, submit still throws EngineStoppedError, just from
  // the earlier stopped check.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.stop();
  EXPECT_THROW((void)blocked.get(), service::EngineStoppedError);
  EXPECT_TRUE(queued.get() == work_[0].expected)
      << "stop() must still drain the request that did get enqueued";
}

TEST_F(ServiceEngineTest, BlockingBackpressureEventuallyServesEverything) {
  service::FactorizationEngine engine(model_, {.max_batch = 2,
                                               .max_delay_us = 100,
                                               .queue_capacity = 2,
                                               .reject_when_full = false,
                                               .cache_capacity = 0});
  std::vector<std::future<core::FactorizeResult>> futures;
  for (std::size_t i = 0; i < 10; ++i) {  // > queue capacity: submit blocks
    futures.push_back(engine.submit(work_[i % 4].target, work_[i % 4].opts));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(futures[i].get() == work_[i % 4].expected);
  }
  EXPECT_EQ(engine.metrics().rejected, 0u);
}

TEST_F(ServiceEngineTest, FailedFlightPropagatesExceptionAndStaysConsistent) {
  service::FactorizationEngine engine(
      model_, {.max_batch = 4, .max_delay_us = 100, .cache_capacity = 64});
  // Passes submit (dimension is fine) but throws inside the dispatched
  // factorize_all: a selected class out of range.
  core::FactorizeOptions bad;
  bad.selected_classes = {99};
  auto poisoned = engine.submit(work_[0].target, bad);
  auto healthy = engine.submit(work_[1].target, work_[1].opts);
  EXPECT_THROW((void)poisoned.get(), std::invalid_argument);
  EXPECT_TRUE(healthy.get() == work_[1].expected)
      << "a failing options-group must not take down its flight-mates";
  engine.stop();
  const auto m = engine.metrics();
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_EQ(m.completed, 2u)
      << "exceptionally fulfilled requests still count as completed";
  EXPECT_EQ(m.queue_depth, 0u);
}

TEST_F(ServiceEngineTest, ValidatesArguments) {
  EXPECT_THROW(service::FactorizationEngine(nullptr), std::invalid_argument);
  EXPECT_THROW(service::FactorizationEngine(model_, {.max_batch = 0}),
               std::invalid_argument);
  EXPECT_THROW(service::FactorizationEngine(model_, {.queue_capacity = 0}),
               std::invalid_argument);
  service::FactorizationEngine engine(model_, {});
  EXPECT_THROW((void)engine.submit(hdc::Hypervector(kDim + 1)),
               std::invalid_argument);
}

TEST_F(ServiceEngineTest, DispatcherZeroResolvesToModelShardCount) {
  // dispatchers = 0 is shard affinity: one dispatcher per shard of the
  // model's widest partition. Unsharded model → 1; a 3-way sharded rebuild
  // of the same codebooks → 3 — and results stay bit-identical throughout.
  service::FactorizationEngine plain(model_, {.dispatchers = 0});
  EXPECT_EQ(plain.options().dispatchers, 1u);
  run_differential(plain);

  util::Xoshiro256 rng(1234);  // same seed → same codebooks as model_
  hdc::kernels::ShardedConfig cfg;
  cfg.shards = 3;
  auto sharded = service::Model::make(
      "sharded", tax::TaxonomyCodebooks(tax::Taxonomy(3, {8, 4}), kDim, rng),
      hdc::ScanBackend::kAuto, nullptr, cfg);
  EXPECT_EQ(sharded->factorizer().scan_backend(), hdc::ScanBackend::kSharded);
  EXPECT_EQ(sharded->factorizer().shards(), 3u);
  service::FactorizationEngine affine(sharded, {.dispatchers = 0});
  EXPECT_EQ(affine.options().dispatchers, 3u);
  run_differential(affine);
}

TEST_F(ServiceEngineTest, ShardedModelServesBitIdenticalResults) {
  // The serving differential over a scatter-gather model: every future must
  // carry the same bits as the direct unsharded factorize that produced the
  // ground truth — at several shard counts, with caching and multiple
  // dispatchers in play.
  util::Xoshiro256 rng(1234);  // same seed → same codebooks as model_
  for (const std::size_t shards : {2u, 3u, 5u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    hdc::kernels::ShardedConfig cfg;
    cfg.shards = shards;
    util::Xoshiro256 fresh(1234);
    auto sharded = service::Model::make(
        "sharded",
        tax::TaxonomyCodebooks(tax::Taxonomy(3, {8, 4}), kDim, fresh),
        hdc::ScanBackend::kAuto, nullptr, cfg);
    service::FactorizationEngine engine(sharded, {.max_batch = 8,
                                                  .max_delay_us = 200,
                                                  .dispatchers = 2,
                                                  .cache_capacity = 64});
    run_differential(engine);
    run_differential(engine);  // replay: cache-served, still identical
  }
}

TEST_F(ServiceEngineTest, CoalescingKeysOnGlobalIdentityUnderSharding) {
  // The coalescing pin under kSharded: the dedup key is the full global
  // (target, opts) identity, independent of the model's shard partition —
  // a flight of k duplicates must compute once and coalesce k-1, exactly
  // as an unsharded engine would. A parked batcher (huge max_batch + long
  // flush deadline) plus stop()'s drain makes the flight composition
  // deterministic; the cache is off so coalescing is the only reuse path.
  util::Xoshiro256 rng(1234);  // same seed → same codebooks as model_
  hdc::kernels::ShardedConfig cfg;
  cfg.shards = 4;
  auto sharded = service::Model::make(
      "sharded", tax::TaxonomyCodebooks(tax::Taxonomy(3, {8, 4}), kDim, rng),
      hdc::ScanBackend::kAuto, nullptr, cfg);
  for (const auto& model : {model_, sharded}) {
    SCOPED_TRACE(model == model_ ? "unsharded" : "4-way sharded");
    service::FactorizationEngine engine(model, {.max_batch = 1000,
                                                .max_delay_us = 5000000,
                                                .dispatchers = 1,
                                                .cache_capacity = 0});
    std::vector<std::future<core::FactorizeResult>> futures;
    for (int i = 0; i < 5; ++i) {
      futures.push_back(engine.submit(work_[0].target, work_[0].opts));
    }
    futures.push_back(engine.submit(work_[1].target, work_[1].opts));
    engine.stop();  // drains the parked queue as one flight
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_TRUE(futures[i].get() == work_[0].expected);
    }
    EXPECT_TRUE(futures[5].get() == work_[1].expected);
    const auto m = engine.metrics();
    EXPECT_EQ(m.coalesced, 4u)
        << "5 identical requests in one flight must coalesce to 1 compute";
    EXPECT_EQ(m.completed, 6u);
  }
}

TEST(ServiceMetrics, QuantilesReportGeometricBucketMidpoints) {
  // Regression for the bucket-upper-bound bug: a stream of identical
  // latencies used to report p50 = p99 = the bucket's upper bound — up to
  // 2x the true value. The midpoint 2^(i+0.5) ns is within sqrt(2) of any
  // latency in bucket [2^i, 2^(i+1)).
  for (const double us : {0.5, 3.0, 10.0, 147.0, 2048.0, 100000.0}) {
    SCOPED_TRACE("latency_us=" + std::to_string(us));
    service::Metrics m;
    for (int i = 0; i < 100; ++i) m.on_completed(us);
    const auto s = m.snapshot(0);
    EXPECT_EQ(s.p50_latency_us, s.p99_latency_us)
        << "single-latency stream: every quantile lands in one bucket";
    const double kSqrt2 = std::sqrt(2.0);
    EXPECT_GE(s.p50_latency_us, us / kSqrt2)
        << "midpoint must be within sqrt(2) below the true latency";
    EXPECT_LE(s.p50_latency_us, us * kSqrt2)
        << "midpoint must be within sqrt(2) above the true latency";
  }
  // Exact bucket arithmetic: 10 us = 10000 ns lands in bucket 13
  // ([8192, 16384) ns); the midpoint is 2^13.5 ns.
  service::Metrics m;
  m.on_completed(10.0);
  EXPECT_DOUBLE_EQ(m.snapshot(0).p50_latency_us,
                   std::ldexp(std::sqrt(2.0), 13) / 1e3);
}

TEST(ServiceMetrics, MergeAggregatesEveryCounterWithoutDoubleCounting) {
  service::Metrics submit_side;
  service::Metrics d0;
  service::Metrics d1;
  for (int i = 0; i < 7; ++i) submit_side.on_submitted();
  submit_side.on_rejected();
  submit_side.on_cache_hit();
  submit_side.on_cache_miss();
  submit_side.on_cache_miss();
  submit_side.on_completed(5.0);  // the cache-hit completion
  d0.on_batch(3);
  d0.on_coalesced();
  d0.on_completed(10.0);
  d0.on_completed(10.0);
  d1.on_batch(5);
  d1.on_completed(40.0);

  service::Metrics agg;
  agg.merge(d0);
  agg.merge(d1);
  agg.merge(submit_side);  // submit-side set last, as the engine does
  const auto s = agg.snapshot(2);
  EXPECT_EQ(s.submitted, 7u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 2u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.batched_requests, 8u);
  EXPECT_EQ(s.coalesced, 1u);
  EXPECT_EQ(s.max_batch_observed, 5u) << "high-water mark merges as max";
  EXPECT_EQ(s.queue_depth, 2u);
  EXPECT_DOUBLE_EQ(s.mean_batch, 4.0);
  // The merged histogram carries all four completions: p50 in the 10 us
  // bucket region, p99 in the 40 us one.
  EXPECT_GT(s.p50_latency_us, 0.0);
  EXPECT_GT(s.p99_latency_us, s.p50_latency_us);
  // Merging an empty set is a no-op.
  service::Metrics empty;
  agg.merge(empty);
  const auto s2 = agg.snapshot(2);
  EXPECT_EQ(s2.submitted, s.submitted);
  EXPECT_EQ(s2.completed, s.completed);
  EXPECT_DOUBLE_EQ(s2.p99_latency_us, s.p99_latency_us);
}

TEST_F(ServiceEngineTest, ForcedScalarBackendModelMatchesPackedModel) {
  // The same codebook material served on the forced scalar-word tier must
  // produce the same bits (the cross-backend contract, now via the engine).
  util::Xoshiro256 rng(1234);
  auto scalar_model = service::Model::make(
      "scalar",
      tax::TaxonomyCodebooks(tax::Taxonomy(3, {8, 4}), kDim, rng),
      hdc::ScanBackend::kPackedWords);
  ASSERT_EQ(scalar_model->factorizer().simd_level(),
            hdc::kernels::SimdLevel::kScalarWords);
  // Note: same seed → same codebooks as model_, so ground truth transfers.
  service::FactorizationEngine engine(
      scalar_model, {.max_batch = 8, .max_delay_us = 200});
  run_differential(engine);
}

}  // namespace
