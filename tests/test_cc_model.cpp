// Unit tests for the C-C product model.
#include <gtest/gtest.h>

#include "baselines/cc_model.hpp"
#include "hdc/ops.hpp"
#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using baselines::CCModel;

TEST(CCModel, ShapeAndProblemSize) {
  util::Xoshiro256 rng(1);
  const CCModel m(512, 3, 16, rng);
  EXPECT_EQ(m.dim(), 512u);
  EXPECT_EQ(m.num_factors(), 3u);
  EXPECT_EQ(m.codebook_size(), 16u);
  EXPECT_DOUBLE_EQ(m.problem_size(), 4096.0);
  EXPECT_DOUBLE_EQ(m.exhaustive_cost(), 4096.0);
}

TEST(CCModel, EncodeIsBoundProduct) {
  util::Xoshiro256 rng(2);
  const CCModel m(256, 3, 8, rng);
  const std::vector<std::size_t> idx{1, 4, 7};
  const auto h = m.encode(idx);
  auto expected = hdc::bind(m.codebook(0).item(1), m.codebook(1).item(4));
  expected = hdc::bind(expected, m.codebook(2).item(7));
  EXPECT_EQ(h, expected);
  EXPECT_TRUE(h.is_bipolar());
}

TEST(CCModel, UnbindingTwoFactorsRecoversThird) {
  util::Xoshiro256 rng(3);
  const CCModel m(1024, 3, 8, rng);
  const std::vector<std::size_t> idx{2, 5, 3};
  auto h = m.encode(idx);
  hdc::bind_inplace(h, m.codebook(0).item(2));
  hdc::bind_inplace(h, m.codebook(1).item(5));
  EXPECT_EQ(h, m.codebook(2).item(3));
}

TEST(CCModel, SceneBundlesProducts) {
  util::Xoshiro256 rng(4);
  const CCModel m(256, 2, 4, rng);
  const std::vector<std::vector<std::size_t>> objs{{0, 1}, {2, 3}};
  const auto scene = m.encode_scene(objs);
  const auto expected =
      hdc::bundle(m.encode(objs[0]), m.encode(objs[1]));
  EXPECT_EQ(scene, expected);
}

TEST(CCModel, InvalidInputsThrow) {
  util::Xoshiro256 rng(5);
  EXPECT_THROW(CCModel(256, 1, 4, rng), std::invalid_argument);
  const CCModel m(256, 3, 4, rng);
  const std::vector<std::size_t> short_idx{0, 1};
  EXPECT_THROW((void)m.encode(short_idx), std::invalid_argument);
  EXPECT_THROW((void)m.encode_scene({}), std::invalid_argument);
  EXPECT_THROW((void)m.codebook(3), std::out_of_range);
}

TEST(CCModel, DistinctObjectsAreQuasiOrthogonal) {
  util::Xoshiro256 rng(6);
  const CCModel m(8192, 3, 8, rng);
  const auto a = m.encode(std::vector<std::size_t>{0, 0, 0});
  const auto b = m.encode(std::vector<std::size_t>{1, 0, 0});
  EXPECT_LT(std::abs(hdc::similarity(a, b)), 0.08);
}

}  // namespace
