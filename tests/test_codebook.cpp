// Unit tests for hdc::Codebook and hdc random generation.
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/codebook.hpp"
#include "hdc/random.hpp"
#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;

TEST(RandomBipolar, ProducesBipolarOfRequestedDim) {
  Xoshiro256 rng(1);
  for (std::size_t d : {1u, 63u, 64u, 65u, 1000u}) {
    const Hypervector v = random_bipolar(d, rng);
    EXPECT_EQ(v.dim(), d);
    EXPECT_TRUE(v.is_bipolar());
  }
}

TEST(RandomBipolar, IsBalanced) {
  Xoshiro256 rng(2);
  const Hypervector v = random_bipolar(100000, rng);
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < v.dim(); ++i) sum += v[i];
  EXPECT_LT(std::abs(sum), 5 * static_cast<std::int64_t>(std::sqrt(100000.0)));
}

TEST(RandomTernary, RespectsSparsity) {
  Xoshiro256 rng(3);
  const Hypervector v = random_ternary(100000, 0.3, rng);
  EXPECT_TRUE(v.is_ternary());
  const double zero_frac =
      static_cast<double>(v.zero_count()) / static_cast<double>(v.dim());
  EXPECT_NEAR(zero_frac, 0.3, 0.01);
}

TEST(FlipNoise, FlipsExpectedFraction) {
  Xoshiro256 rng(4);
  const Hypervector v = random_bipolar(100000, rng);
  const Hypervector noisy = flip_noise(v, 0.1, rng);
  EXPECT_NEAR(normalized_hamming(v, noisy), 0.1, 0.01);
}

TEST(FlipNoise, ZeroProbabilityIsIdentity) {
  Xoshiro256 rng(5);
  const Hypervector v = random_bipolar(1024, rng);
  EXPECT_EQ(flip_noise(v, 0.0, rng), v);
}

TEST(Codebook, GeneratesRequestedShape) {
  Xoshiro256 rng(6);
  Codebook cb(500, 16, rng, "test");
  EXPECT_EQ(cb.size(), 16u);
  EXPECT_EQ(cb.dim(), 500u);
  EXPECT_EQ(cb.name(), "test");
  for (std::size_t j = 0; j < cb.size(); ++j) {
    EXPECT_TRUE(cb.item(j).is_bipolar());
  }
}

TEST(Codebook, ItemsArePairwiseQuasiOrthogonal) {
  Xoshiro256 rng(7);
  Codebook cb(4096, 8, rng);
  for (std::size_t i = 0; i < cb.size(); ++i) {
    for (std::size_t j = i + 1; j < cb.size(); ++j) {
      EXPECT_LT(std::abs(similarity(cb.item(i), cb.item(j))), 0.08)
          << "items " << i << "," << j;
    }
  }
}

TEST(Codebook, WrapConstructorValidates) {
  std::vector<Hypervector> items{{1, -1}, {1, 1}};
  Codebook cb(std::move(items));
  EXPECT_EQ(cb.size(), 2u);
  EXPECT_EQ(cb.dim(), 2u);

  std::vector<Hypervector> bad{{1, -1}, {1, 1, 1}};
  EXPECT_THROW(Codebook{std::move(bad)}, std::invalid_argument);
  EXPECT_THROW(Codebook{std::vector<Hypervector>{}}, std::invalid_argument);
}

TEST(Codebook, InvalidSpecsThrow) {
  Xoshiro256 rng(8);
  EXPECT_THROW(Codebook(0, 4, rng), std::invalid_argument);
  EXPECT_THROW(Codebook(128, 0, rng), std::invalid_argument);
}

TEST(Codebook, OutOfRangeAccessThrows) {
  Xoshiro256 rng(9);
  Codebook cb(64, 4, rng);
  EXPECT_THROW((void)cb.item(4), std::out_of_range);
}

TEST(Codebook, DeterministicGivenSeed) {
  Xoshiro256 rng1(10), rng2(10);
  Codebook a(128, 4, rng1);
  Codebook b(128, 4, rng2);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(a.item(j), b.item(j));
}

}  // namespace
