// service::TraceRing / chrome_trace_json / SlowQueryLog.
//
// The load-bearing guarantees: (1) the sampled-id SET is a pure function of
// the request count — identical whether ids are claimed by one thread or
// many, so traced workloads are comparable across dispatcher counts; (2)
// record() is wait-free and never tears a trace visible to collect();
// (3) the Chrome export covers every pipeline stage a request went through
// and skips the stages it never reached (cache hits).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/trace.hpp"

namespace {

using factorhd::service::chrome_trace_json;
using factorhd::service::RequestTrace;
using factorhd::service::SlowQueryLog;
using factorhd::service::TraceRing;

/// A fully-populated computed-request trace with plausible stage ordering.
RequestTrace make_trace(std::uint64_t id) {
  RequestTrace t;
  t.id = id;
  t.submit_ns = 1000;
  t.cache_done_ns = 1500;
  t.enqueue_ns = 1600;
  t.dequeue_ns = 2500;
  t.scan_start_ns = 2700;
  t.scan_end_ns = 9000;
  t.complete_ns = 9400;
  t.batch_size = 4;
  t.shards = 1;
  t.rows_scanned = 1234;
  t.probes = 12;
  t.rounds = 3;
  return t;
}

/// The set of ids a workload of `total` requests samples at 1-in-N, claimed
/// from `ring` by `threads` concurrent claimants.
std::set<std::uint64_t> sampled_ids(TraceRing& ring, std::size_t total,
                                    unsigned threads) {
  std::vector<std::set<std::uint64_t>> per_thread(threads);
  std::atomic<std::size_t> remaining{total};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    pool.emplace_back([&ring, &remaining, &per_thread, w] {
      while (true) {
        std::size_t r = remaining.load(std::memory_order_relaxed);
        if (r == 0 ||
            !remaining.compare_exchange_weak(r, r - 1,
                                             std::memory_order_relaxed)) {
          if (r == 0) break;
          continue;
        }
        const std::uint64_t id = ring.next_id();
        if (ring.sampled(id)) per_thread[w].insert(id);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  std::set<std::uint64_t> all;
  for (const auto& s : per_thread) all.insert(s.begin(), s.end());
  return all;
}

// ---------------------------------------------------------------------------
// Sampling determinism.

TEST(TraceRing, SampledIdSetIsIdenticalAcrossThreadCounts) {
  constexpr std::size_t kRequests = 4000;
  constexpr std::size_t kEvery = 8;
  TraceRing solo(64, kEvery);
  TraceRing pooled(64, kEvery);
  const std::set<std::uint64_t> one = sampled_ids(solo, kRequests, 1);
  const std::set<std::uint64_t> four = sampled_ids(pooled, kRequests, 4);
  // Expected: exactly the multiples of kEvery below kRequests.
  std::set<std::uint64_t> expected;
  for (std::uint64_t id = 0; id < kRequests; id += kEvery) expected.insert(id);
  EXPECT_EQ(one, expected);
  EXPECT_EQ(four, expected);
}

TEST(TraceRing, DisabledRingSamplesNothing) {
  TraceRing ring(16, 0);
  EXPECT_FALSE(ring.enabled());
  for (std::uint64_t id = 0; id < 100; ++id) EXPECT_FALSE(ring.sampled(id));
}

TEST(TraceRing, SampleEveryOneSamplesEverything) {
  TraceRing ring(16, 1);
  EXPECT_TRUE(ring.enabled());
  for (std::uint64_t id = 0; id < 100; ++id) EXPECT_TRUE(ring.sampled(id));
}

// ---------------------------------------------------------------------------
// Ring semantics.

TEST(TraceRing, RecordCollectRoundTripsSortedById) {
  TraceRing ring(32, 1);
  for (std::uint64_t id : {7u, 3u, 11u, 0u}) ring.record(make_trace(id));
  EXPECT_EQ(ring.occupancy(), 4u);
  EXPECT_EQ(ring.recorded(), 4u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<RequestTrace> out = ring.collect();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      out.begin(), out.end(),
      [](const RequestTrace& a, const RequestTrace& b) { return a.id < b.id; }));
  EXPECT_EQ(out.front().id, 0u);
  EXPECT_EQ(out.back().id, 11u);
  EXPECT_EQ(out.front().rows_scanned, 1234u);
}

TEST(TraceRing, WrapAroundRetainsTheLastCapacityTraces) {
  TraceRing ring(8, 1);
  for (std::uint64_t id = 0; id < 20; ++id) ring.record(make_trace(id));
  EXPECT_EQ(ring.occupancy(), 8u);
  const std::vector<RequestTrace> out = ring.collect();
  ASSERT_EQ(out.size(), 8u);
  // The ring overwrites round-robin: the survivors are the newest 8.
  EXPECT_EQ(out.front().id, 12u);
  EXPECT_EQ(out.back().id, 19u);
}

TEST(TraceRing, ConcurrentRecordAndCollectNeverTearATrace) {
  TraceRing ring(16, 1);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        ring.record(make_trace(static_cast<std::uint64_t>(w) * kPerWriter + i));
      }
    });
  }
  std::thread reader([&ring, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const RequestTrace& t : ring.collect()) {
        // Payload fields travel together: a torn copy would show the
        // make_trace constants out of sync with each other.
        ASSERT_EQ(t.submit_ns, 1000u);
        ASSERT_EQ(t.complete_ns, 9400u);
        ASSERT_EQ(t.rows_scanned, 1234u);
      }
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  // Every record attempt is accounted for exactly once.
  EXPECT_EQ(ring.recorded() + ring.dropped(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_GT(ring.recorded(), 0u);
  EXPECT_LE(ring.occupancy(), ring.capacity());
}

// ---------------------------------------------------------------------------
// Chrome trace export.

TEST(TraceRing, ChromeJsonCoversEveryStageOfAComputedRequest) {
  const std::vector<RequestTrace> traces = {make_trace(42)};
  const std::string json = chrome_trace_json(traces);
  for (const char* needle :
       {"\"traceEvents\":[", "\"name\":\"request\"",
        "\"name\":\"cache_lookup\"", "\"name\":\"queue_wait\"",
        "\"name\":\"batch_assembly\"", "\"name\":\"scan\"",
        "\"name\":\"merge\"", "\"ph\":\"X\"", "\"tid\":42",
        "\"rows_scanned\":1234", "\"displayTimeUnit\":\"ns\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(TraceRing, ChromeJsonSkipsStagesACacheHitNeverReached) {
  RequestTrace hit;
  hit.id = 7;
  hit.submit_ns = 100;
  hit.cache_done_ns = 300;
  hit.complete_ns = 300;
  hit.cache_hit = true;
  const std::string json = chrome_trace_json(std::vector<RequestTrace>{hit});
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cache_lookup\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\":true"), std::string::npos);
  for (const char* absent : {"\"name\":\"queue_wait\"",
                             "\"name\":\"batch_assembly\"", "\"name\":\"scan\"",
                             "\"name\":\"merge\""}) {
    EXPECT_EQ(json.find(absent), std::string::npos) << absent;
  }
}

// ---------------------------------------------------------------------------
// Slow-query log.

TEST(TraceRing, SlowQueryLogEmitsOverThresholdAndRateLimits) {
  std::ostringstream sink;
  // 1 us threshold, 1 ms min interval; make_trace's e2e is 8.4 us.
  SlowQueryLog log(1, &sink, 1);
  RequestTrace a = make_trace(1);
  log.observe(a);
  EXPECT_EQ(log.emitted(), 1u);
  // Same completion window -> suppressed by the rate limiter.
  RequestTrace b = make_trace(2);
  log.observe(b);
  EXPECT_EQ(log.emitted(), 1u);
  EXPECT_EQ(log.suppressed(), 1u);
  // A completion 2 ms later clears the interval.
  RequestTrace c = make_trace(3);
  c.submit_ns += 2'000'000;
  c.cache_done_ns += 2'000'000;
  c.enqueue_ns += 2'000'000;
  c.dequeue_ns += 2'000'000;
  c.scan_start_ns += 2'000'000;
  c.scan_end_ns += 2'000'000;
  c.complete_ns += 2'000'000;
  log.observe(c);
  EXPECT_EQ(log.emitted(), 2u);
  const std::string lines = sink.str();
  EXPECT_NE(lines.find("\"slow_query\":{\"id\":1"), std::string::npos);
  EXPECT_EQ(lines.find("\"slow_query\":{\"id\":2"), std::string::npos);
  EXPECT_NE(lines.find("\"slow_query\":{\"id\":3"), std::string::npos);
  EXPECT_NE(lines.find("\"stages_us\":{\"cache_lookup\":"), std::string::npos);
}

TEST(TraceRing, SlowQueryLogIgnoresFastRequestsAndDisabledThreshold) {
  std::ostringstream sink;
  SlowQueryLog log(1000, &sink, 1);  // 1 ms threshold
  log.observe(make_trace(1));       // 8.4 us e2e: not slow
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_EQ(log.suppressed(), 0u);
  SlowQueryLog off(0, &sink, 1);
  EXPECT_FALSE(off.enabled());
  off.observe(make_trace(2));
  EXPECT_EQ(off.emitted(), 0u);
  EXPECT_TRUE(sink.str().empty());
}

}  // namespace
