// Unit tests for hdc::Hypervector.
#include <gtest/gtest.h>

#include "hdc/hypervector.hpp"

namespace {

using factorhd::hdc::Hypervector;

TEST(Hypervector, DefaultIsEmpty) {
  Hypervector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.dim(), 0u);
}

TEST(Hypervector, ZeroInitialized) {
  Hypervector v(8);
  EXPECT_EQ(v.dim(), 8u);
  for (std::size_t i = 0; i < v.dim(); ++i) EXPECT_EQ(v[i], 0);
}

TEST(Hypervector, InitializerList) {
  Hypervector v{1, -1, 0, 2};
  EXPECT_EQ(v.dim(), 4u);
  EXPECT_EQ(v[3], 2);
}

TEST(Hypervector, AlphabetChecks) {
  EXPECT_TRUE((Hypervector{1, -1, 1}).is_bipolar());
  EXPECT_FALSE((Hypervector{1, 0, 1}).is_bipolar());
  EXPECT_TRUE((Hypervector{1, 0, -1}).is_ternary());
  EXPECT_FALSE((Hypervector{1, 2, -1}).is_ternary());
  // Empty vectors are neither.
  EXPECT_FALSE(Hypervector{}.is_bipolar());
  EXPECT_FALSE(Hypervector{}.is_ternary());
}

TEST(Hypervector, ZeroCountAndMaxAbs) {
  Hypervector v{0, 3, -5, 0, 1};
  EXPECT_EQ(v.zero_count(), 2u);
  EXPECT_EQ(v.max_abs(), 5);
  EXPECT_EQ(Hypervector{}.max_abs(), 0);
}

TEST(Hypervector, Mutation) {
  Hypervector v(3);
  v[1] = -7;
  EXPECT_EQ(v[1], -7);
  auto span = v.components();
  span[2] = 4;
  EXPECT_EQ(v[2], 4);
}

TEST(Hypervector, Equality) {
  EXPECT_EQ((Hypervector{1, 2}), (Hypervector{1, 2}));
  EXPECT_NE((Hypervector{1, 2}), (Hypervector{2, 1}));
  EXPECT_NE((Hypervector{1, 2}), (Hypervector{1, 2, 3}));
}

TEST(Hypervector, RequireSameDimThrows) {
  Hypervector a(4), b(5);
  EXPECT_THROW(factorhd::hdc::require_same_dim(a, b, "test"),
               std::invalid_argument);
  Hypervector e1, e2;
  EXPECT_THROW(factorhd::hdc::require_same_dim(e1, e2, "test"),
               std::invalid_argument);
  EXPECT_NO_THROW(factorhd::hdc::require_same_dim(a, a, "test"));
}

}  // namespace
