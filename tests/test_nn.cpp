// Unit tests for the neural substrate (matrix ops, MLP, trainer).
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using nn::Matrix;
using nn::Mlp;

TEST(Matrix, MatmulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const Matrix c = nn::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matrix, TransposedVariantsAgree) {
  util::Xoshiro256 rng(1);
  Matrix a(4, 5), b(5, 3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.normal());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.normal());
  }
  const Matrix ref = nn::matmul(a, b);
  // matmul_bt(a, b^T as rows) == a*b: build bt with b's transpose layout.
  Matrix bt(3, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  }
  const Matrix viaBt = nn::matmul_bt(a, bt);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(viaBt.data()[i], ref.data()[i], 1e-4f);
  }
  // matmul_at(a^T as rows, b) == a*b.
  Matrix at(5, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) at.at(j, i) = a.at(i, j);
  }
  const Matrix viaAt = nn::matmul_at(at, b);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(viaAt.data()[i], ref.data()[i], 1e-4f);
  }
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW((void)nn::matmul(a, b), std::invalid_argument);
}

TEST(Mlp, SoftmaxRowsSumToOne) {
  Matrix logits(2, 3);
  logits.at(0, 0) = 10.0f;  // large values test the max-shift stability
  logits.at(0, 1) = 20.0f;
  logits.at(0, 2) = 30.0f;
  const Matrix p = Mlp::softmax(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) sum += p.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 1));
}

TEST(Mlp, GradientMatchesFiniteDifference) {
  util::Xoshiro256 rng(2);
  Mlp net({3, 4, 2}, rng);
  Matrix x(2, 3);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.normal());
  }
  const std::vector<int> y{0, 1};

  Matrix logits = net.forward(x);
  (void)net.backward(logits, y);
  // Probe a handful of first-layer weights against central differences.
  // Mlp is copyable (all-value members), so perturbation is cheap.
  const float eps = 1e-3f;
  for (std::size_t probe = 0; probe < 5; ++probe) {
    const std::size_t idx = probe * 2;
    Mlp plus = net;
    Mlp minus = net;
    const_cast<Matrix&>(plus.layers()[0].weight).data()[idx] += eps;
    const_cast<Matrix&>(minus.layers()[0].weight).data()[idx] -= eps;
    Matrix lp = plus.forward(x);
    Matrix lm = minus.forward(x);
    const double fp = plus.backward(lp, y);
    const double fm = minus.backward(lm, y);
    const double numeric = (fp - fm) / (2.0 * eps);
    const double analytic = net.layers()[0].grad_weight.data()[idx];
    EXPECT_NEAR(analytic, numeric, 5e-3)
        << "weight index " << idx;
  }
}

TEST(Mlp, InvalidInputsThrow) {
  util::Xoshiro256 rng(3);
  EXPECT_THROW(Mlp({5}, rng), std::invalid_argument);
  Mlp net({3, 2}, rng);
  EXPECT_THROW((void)net.forward(Matrix(1, 4)), std::invalid_argument);
  Matrix logits = net.forward(Matrix(1, 3));
  EXPECT_THROW((void)net.backward(logits, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)net.backward(logits, {5}), std::invalid_argument);
}

TEST(Trainer, LearnsSeparableClusters) {
  util::Xoshiro256 rng(4);
  data::ClusterSpec spec;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  spec.samples_per_class = 50;
  spec.noise = 0.25;
  const data::TrainTestSplit split = data::make_cluster_split(spec, rng);

  Mlp net({16, 32, 4}, rng);
  nn::TrainOptions opts;
  opts.epochs = 15;
  const nn::TrainReport report = nn::train(net, split.train, opts);
  EXPECT_GT(report.final_train_accuracy, 0.95);
  EXPECT_GT(nn::evaluate_accuracy(net, split.test), 0.9);
  // Loss decreases over training.
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
}

TEST(Trainer, HarderNoiseLowersAccuracy) {
  util::Xoshiro256 rng(5);
  data::ClusterSpec easy, hard;
  easy.num_classes = hard.num_classes = 6;
  easy.feature_dim = hard.feature_dim = 16;
  easy.samples_per_class = hard.samples_per_class = 40;
  easy.noise = 0.1;
  hard.noise = 0.9;
  const auto easy_split = data::make_cluster_split(easy, rng);
  const auto hard_split = data::make_cluster_split(hard, rng);

  Mlp net_easy({16, 24, 6}, rng);
  Mlp net_hard({16, 24, 6}, rng);
  nn::TrainOptions opts;
  opts.epochs = 10;
  (void)nn::train(net_easy, easy_split.train, opts);
  (void)nn::train(net_hard, hard_split.train, opts);
  EXPECT_GT(nn::evaluate_accuracy(net_easy, easy_split.test),
            nn::evaluate_accuracy(net_hard, hard_split.test));
}

TEST(Trainer, FeatureDimExposed) {
  util::Xoshiro256 rng(6);
  Mlp net({8, 12, 3}, rng);
  EXPECT_EQ(net.input_dim(), 8u);
  EXPECT_EQ(net.feature_dim(), 12u);
  EXPECT_EQ(net.output_dim(), 3u);
  (void)net.forward(Matrix(2, 8));
  EXPECT_EQ(net.features().cols(), 12u);
  EXPECT_EQ(net.features().rows(), 2u);
}

TEST(Trainer, EmptyDatasetThrows) {
  util::Xoshiro256 rng(7);
  Mlp net({4, 2}, rng);
  nn::Dataset empty;
  EXPECT_THROW((void)nn::train(net, empty, {}), std::invalid_argument);
}

}  // namespace
