// Unit tests for the HDC operator algebra (bundle/bind/clip/permute/...).
#include <gtest/gtest.h>

#include <vector>

#include "hdc/ops.hpp"
#include "hdc/random.hpp"
#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd::hdc;
using factorhd::util::Xoshiro256;

TEST(Ops, BundleAddsComponentwise) {
  Hypervector a{1, -1, 1};
  Hypervector b{1, 1, -1};
  EXPECT_EQ(bundle(a, b), (Hypervector{2, 0, 0}));
}

TEST(Ops, BundleSpan) {
  std::vector<Hypervector> vs{{1, 1}, {1, -1}, {-1, -1}};
  // Qualified calls: unqualified bind/bundle on a std::vector argument would
  // ADL-resolve to std::bind.
  EXPECT_EQ(factorhd::hdc::bundle(std::span<const Hypervector>{vs}),
            (Hypervector{1, -1}));
  EXPECT_THROW(factorhd::hdc::bundle(std::span<const Hypervector>{}),
               std::invalid_argument);
}

TEST(Ops, AccumulateAndSubtractRoundTrip) {
  Hypervector t{5, -3};
  const Hypervector v{2, 2};
  accumulate(t, v);
  EXPECT_EQ(t, (Hypervector{7, -1}));
  subtract(t, v);
  EXPECT_EQ(t, (Hypervector{5, -3}));
}

TEST(Ops, BindMultipliesComponentwise) {
  Hypervector a{1, -1, 1};
  Hypervector b{-1, -1, 1};
  EXPECT_EQ(bind(a, b), (Hypervector{-1, 1, 1}));
}

TEST(Ops, BindIsSelfInverseOnBipolar) {
  Xoshiro256 rng(1);
  const Hypervector v = random_bipolar(256, rng);
  EXPECT_EQ(bind(v, v), identity(256));
}

TEST(Ops, UnbindRecoversBoundFactor) {
  Xoshiro256 rng(2);
  const Hypervector a = random_bipolar(512, rng);
  const Hypervector b = random_bipolar(512, rng);
  const Hypervector h = bind(a, b);
  EXPECT_EQ(bind(h, b), a);  // unbinding is binding again
}

TEST(Ops, BindSpanProduct) {
  std::vector<Hypervector> vs{{1, -1}, {-1, -1}, {-1, 1}};
  EXPECT_EQ(factorhd::hdc::bind(std::span<const Hypervector>{vs}),
            (Hypervector{1, 1}));
  EXPECT_THROW(factorhd::hdc::bind(std::span<const Hypervector>{}),
               std::invalid_argument);
}

TEST(Ops, ClipTernary) {
  Hypervector v{3, -4, 0, 1, -1};
  EXPECT_EQ(clip_ternary(v), (Hypervector{1, -1, 0, 1, -1}));
  EXPECT_TRUE(clip_ternary(v).is_ternary());
}

TEST(Ops, SignBipolarTieBreak) {
  Hypervector v{3, 0, -2};
  EXPECT_EQ(sign_bipolar(v, true), (Hypervector{1, 1, -1}));
  EXPECT_EQ(sign_bipolar(v, false), (Hypervector{1, -1, -1}));
  EXPECT_TRUE(sign_bipolar(v).is_bipolar());
}

TEST(Ops, PermuteRotates) {
  Hypervector v{1, 2, 3, 4};
  EXPECT_EQ(permute(v, 1), (Hypervector{4, 1, 2, 3}));
  EXPECT_EQ(permute(v, 4), v);  // full cycle
  EXPECT_EQ(permute(v, 0), v);
}

TEST(Ops, UnpermuteInverts) {
  Xoshiro256 rng(3);
  const Hypervector v = random_bipolar(100, rng);
  for (std::size_t k : {0u, 1u, 7u, 99u, 100u, 123u}) {
    EXPECT_EQ(unpermute(permute(v, k), k), v) << "k=" << k;
  }
}

TEST(Ops, PermutedVectorIsQuasiOrthogonal) {
  Xoshiro256 rng(4);
  const Hypervector v = random_bipolar(4096, rng);
  const double s = similarity(permute(v, 1), v);
  EXPECT_LT(std::abs(s), 0.1);
}

TEST(Ops, NegateIsAdditiveInverse) {
  Hypervector v{2, -3, 0};
  EXPECT_EQ(bundle(v, negate(v)), Hypervector(3));
}

TEST(Ops, IdentityIsBindingNeutral) {
  Xoshiro256 rng(5);
  const Hypervector v = random_bipolar(64, rng);
  EXPECT_EQ(bind(v, identity(64)), v);
  EXPECT_THROW(identity(0), std::invalid_argument);
}

TEST(Ops, DimensionMismatchThrows) {
  Hypervector a(4), b(5);
  EXPECT_THROW(bundle(a, b), std::invalid_argument);
  EXPECT_THROW(bind(a, b), std::invalid_argument);
  EXPECT_THROW(accumulate(a, b), std::invalid_argument);
  EXPECT_THROW(subtract(a, b), std::invalid_argument);
  Hypervector e;
  EXPECT_THROW(permute(e, 1), std::invalid_argument);
}

TEST(Ops, WeightedBundleRoundsScaledSum) {
  std::vector<Hypervector> vs{{1, -1, 1}, {1, 1, -1}};
  const std::vector<double> w{0.75, 0.25};
  // 0.75*v0 + 0.25*v1 = {1.0, -0.5, 0.5}; scale 2 -> {2, -1, 1}.
  EXPECT_EQ(weighted_bundle(vs, w, 2.0), (Hypervector{2, -1, 1}));
  // Unit weights with scale 1 reduce to plain bundling.
  const std::vector<double> ones{1.0, 1.0};
  EXPECT_EQ(weighted_bundle(vs, ones, 1.0), bundle(vs[0], vs[1]));
}

TEST(Ops, WeightedBundleValidatesInputs) {
  std::vector<Hypervector> vs{{1, -1}};
  const std::vector<double> too_many{0.5, 0.5};
  EXPECT_THROW(weighted_bundle(vs, too_many), std::invalid_argument);
  EXPECT_THROW(weighted_bundle({}, {}), std::invalid_argument);
  std::vector<Hypervector> mixed{{1, -1}, {1, -1, 1}};
  const std::vector<double> w{0.5, 0.5};
  EXPECT_THROW(weighted_bundle(mixed, w), std::invalid_argument);
}

// Algebraic property: binding distributes over bundling.
TEST(OpsProperty, BindDistributesOverBundle) {
  Xoshiro256 rng(6);
  const Hypervector a = random_bipolar(128, rng);
  const Hypervector b = random_bipolar(128, rng);
  const Hypervector c = random_bipolar(128, rng);
  EXPECT_EQ(bind(a, bundle(b, c)), bundle(bind(a, b), bind(a, c)));
}

// Algebraic property: permutation distributes over both operators.
TEST(OpsProperty, PermuteDistributes) {
  Xoshiro256 rng(7);
  const Hypervector a = random_bipolar(128, rng);
  const Hypervector b = random_bipolar(128, rng);
  EXPECT_EQ(permute(bind(a, b), 5), bind(permute(a, 5), permute(b, 5)));
  EXPECT_EQ(permute(bundle(a, b), 5), bundle(permute(a, 5), permute(b, 5)));
}

// Bundling preserves similarity to its components (the memorization
// property the paper relies on), binding destroys it.
TEST(OpsProperty, BundleSimilarBindDissimilar) {
  Xoshiro256 rng(8);
  const Hypervector a = random_bipolar(4096, rng);
  const Hypervector b = random_bipolar(4096, rng);
  EXPECT_GT(similarity(bundle(a, b), a), 0.4);
  EXPECT_LT(std::abs(similarity(bind(a, b), a)), 0.1);
}

}  // namespace
