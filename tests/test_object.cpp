// Unit tests for tax::Object / Scene helpers.
#include <gtest/gtest.h>

#include "taxonomy/object.hpp"

namespace {

using namespace factorhd::tax;

TEST(Object, DefaultAllAbsent) {
  const Object obj(3);
  EXPECT_EQ(obj.num_classes(), 3u);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_FALSE(obj.has_class(c));
}

TEST(Object, SetAndClearPath) {
  Object obj(2);
  obj.set_path(0, {3, 11});
  EXPECT_TRUE(obj.has_class(0));
  EXPECT_EQ(obj.path(0), (Path{3, 11}));
  obj.clear_class(0);
  EXPECT_FALSE(obj.has_class(0));
}

TEST(Object, ValidityChecks) {
  const Taxonomy t(2, {4, 3});
  Object ok(2);
  ok.set_path(0, {2, 7});  // 7 is a child of 2 (children of 2: 6,7,8)
  ok.set_path(1, {0});     // partial path is fine
  EXPECT_TRUE(ok.valid_for(t));

  Object absent_ok(2);
  absent_ok.set_path(0, {1});
  EXPECT_TRUE(absent_ok.valid_for(t));  // class 1 absent

  Object wrong_count(3);
  EXPECT_FALSE(wrong_count.valid_for(t));

  Object bad_index(2);
  bad_index.set_path(0, {4});  // out of range (level 1 has 4 items: 0..3)
  EXPECT_FALSE(bad_index.valid_for(t));

  Object bad_child(2);
  bad_child.set_path(0, {2, 3});  // 3 is a child of 1, not 2
  EXPECT_FALSE(bad_child.valid_for(t));

  Object too_deep(2);
  too_deep.set_path(0, {2, 7, 1});
  EXPECT_FALSE(too_deep.valid_for(t));

  Object empty_path(2);
  empty_path.set_path(0, {});
  EXPECT_FALSE(empty_path.valid_for(t));
}

TEST(Object, ToString) {
  Object obj(2);
  obj.set_path(0, {3, 11});
  EXPECT_EQ(obj.to_string(), "{c0: 3/11, c1: -}");
}

TEST(Object, Equality) {
  Object a(2), b(2);
  a.set_path(0, {1});
  b.set_path(0, {1});
  EXPECT_EQ(a, b);
  b.set_path(1, {0});
  EXPECT_NE(a, b);
}

TEST(Scene, ValidScene) {
  const Taxonomy t(1, {4});
  Object o(1);
  o.set_path(0, {2});
  EXPECT_TRUE(valid_scene({o, o}, t));
  Object bad(1);
  bad.set_path(0, {9});
  EXPECT_FALSE(valid_scene({o, bad}, t));
}

TEST(Scene, SameMultisetIgnoresOrder) {
  Object a(1), b(1);
  a.set_path(0, {1});
  b.set_path(0, {2});
  EXPECT_TRUE(same_multiset({a, b}, {b, a}));
  EXPECT_FALSE(same_multiset({a, b}, {a, a}));
  EXPECT_FALSE(same_multiset({a}, {a, a}));
}

TEST(Scene, SameMultisetCountsDuplicates) {
  Object a(1), b(1);
  a.set_path(0, {1});
  b.set_path(0, {2});
  // {a,a,b} vs {a,b,b} share elements but differ in multiplicity.
  EXPECT_FALSE(same_multiset({a, a, b}, {a, b, b}));
  EXPECT_TRUE(same_multiset({a, a, b}, {b, a, a}));
}

}  // namespace
