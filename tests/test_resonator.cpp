// Unit tests for the resonator network baseline.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/resonator.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using baselines::CCModel;
using baselines::ResonatorNetwork;
using baselines::ResonatorOptions;
using baselines::ResonatorResult;

TEST(Resonator, FactorizesSmallProblems) {
  util::Xoshiro256 rng(1);
  const CCModel model(1024, 3, 8, rng);
  const ResonatorNetwork net(model);
  int correct = 0;
  for (int t = 0; t < 20; ++t) {
    std::vector<std::size_t> truth{rng.uniform(8), rng.uniform(8),
                                   rng.uniform(8)};
    const ResonatorResult r = net.factorize(model.encode(truth));
    if (r.factors == truth) ++correct;
  }
  // D=1024 for an 8^3 = 512 problem is deep inside resonator capacity.
  EXPECT_GE(correct, 19);
}

TEST(Resonator, ConvergesAndCountsIterations) {
  util::Xoshiro256 rng(2);
  const CCModel model(1024, 3, 8, rng);
  const ResonatorNetwork net(model);
  const std::vector<std::size_t> truth{3, 1, 4};
  const ResonatorResult r = net.factorize(model.encode(truth));
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.iterations, 1u);
  // similarity_ops = iterations * F * M.
  EXPECT_EQ(r.similarity_ops, r.iterations * 3u * 8u);
}

TEST(Resonator, RespectsIterationBudget) {
  util::Xoshiro256 rng(3);
  // Deliberately undersized D so the dynamics cannot settle fast.
  const CCModel model(64, 4, 32, rng);
  ResonatorOptions opts;
  opts.max_iterations = 5;
  const ResonatorNetwork net(model, opts);
  const std::vector<std::size_t> truth{0, 1, 2, 3};
  const ResonatorResult r = net.factorize(model.encode(truth));
  EXPECT_LE(r.iterations, 5u);
}

TEST(Resonator, FailsBeyondCapacity) {
  // Tiny D with a large problem: the resonator should mostly fail — this is
  // the capacity cliff the paper's Fig. 4(a) shows at problem size 1e6.
  util::Xoshiro256 rng(4);
  const CCModel model(96, 3, 64, rng);
  ResonatorOptions opts;
  opts.max_iterations = 50;
  const ResonatorNetwork net(model, opts);
  int correct = 0;
  for (int t = 0; t < 10; ++t) {
    std::vector<std::size_t> truth{rng.uniform(64), rng.uniform(64),
                                   rng.uniform(64)};
    const ResonatorResult r = net.factorize(model.encode(truth));
    if (r.factors == truth) ++correct;
  }
  EXPECT_LT(correct, 8);
}

class ResonatorVariant
    : public ::testing::TestWithParam<
          std::tuple<ResonatorOptions::Update, ResonatorOptions::Cleanup>> {};

TEST_P(ResonatorVariant, AllVariantsSolveSmallProblems) {
  const auto [update, cleanup] = GetParam();
  util::Xoshiro256 rng(9);
  const CCModel model(1024, 3, 8, rng);
  ResonatorOptions opts;
  opts.update = update;
  opts.cleanup = cleanup;
  const ResonatorNetwork net(model, opts);
  int correct = 0;
  for (int t = 0; t < 15; ++t) {
    std::vector<std::size_t> truth{rng.uniform(8), rng.uniform(8),
                                   rng.uniform(8)};
    const ResonatorResult r = net.factorize(model.encode(truth));
    if (r.factors == truth) ++correct;
  }
  EXPECT_GE(correct, 13);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, ResonatorVariant,
    ::testing::Combine(
        ::testing::Values(ResonatorOptions::Update::kSequential,
                          ResonatorOptions::Update::kSynchronous),
        ::testing::Values(ResonatorOptions::Cleanup::kProjection,
                          ResonatorOptions::Cleanup::kHardmax)));

TEST(Resonator, SynchronousNeedsAtLeastAsManySweeps) {
  // Sequential updates propagate information within a sweep, so on average
  // they converge in no more sweeps than synchronous updates.
  util::Xoshiro256 rng(10);
  const CCModel model(1024, 3, 12, rng);
  ResonatorOptions seq_opts;
  ResonatorOptions sync_opts;
  sync_opts.update = ResonatorOptions::Update::kSynchronous;
  const ResonatorNetwork seq(model, seq_opts);
  const ResonatorNetwork sync(model, sync_opts);
  double seq_iters = 0, sync_iters = 0;
  for (int t = 0; t < 20; ++t) {
    std::vector<std::size_t> truth{rng.uniform(12), rng.uniform(12),
                                   rng.uniform(12)};
    const auto target = model.encode(truth);
    seq_iters += static_cast<double>(seq.factorize(target).iterations);
    sync_iters += static_cast<double>(sync.factorize(target).iterations);
  }
  EXPECT_LE(seq_iters, sync_iters * 1.2);
}

TEST(Resonator, RejectsWrongDimension) {
  util::Xoshiro256 rng(5);
  const CCModel model(256, 3, 8, rng);
  const ResonatorNetwork net(model);
  EXPECT_THROW((void)net.factorize(hdc::Hypervector(128)),
               std::invalid_argument);
}

}  // namespace
