// Unit tests for util::stats.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace {

using namespace factorhd::util;

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> xs{4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(WilsonInterval, ZeroTrials) {
  const Interval iv = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(iv.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv.hi, 1.0);
}

TEST(WilsonInterval, PerfectAccuracyUpperBoundIsOne) {
  const Interval iv = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(iv.hi, 1.0);
  EXPECT_GT(iv.lo, 0.9);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const Interval iv = wilson_interval(70, 100);
  EXPECT_LT(iv.lo, 0.7);
  EXPECT_GT(iv.hi, 0.7);
}

TEST(WilsonInterval, NarrowsWithMoreTrials) {
  const Interval small = wilson_interval(7, 10);
  const Interval big = wilson_interval(700, 1000);
  EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
}

TEST(FitLinear, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(FitLinear, DegenerateInputs) {
  const std::vector<double> one{1.0};
  EXPECT_EQ(fit_linear(one, one).slope, 0.0);
  const std::vector<double> same{2.0, 2.0, 2.0};
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_EQ(fit_linear(same, y).slope, 0.0);  // zero x-variance
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> x, y;
  for (double v = 1.0; v <= 64.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // y = 3 x^2
  }
  const LinearFit f = fit_power_law(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-9);
}

TEST(FitPowerLaw, SkipsNonPositivePairs) {
  const std::vector<double> x{-1.0, 1.0, 2.0, 4.0};
  const std::vector<double> y{5.0, 2.0, 4.0, 8.0};
  const LinearFit f = fit_power_law(x, y);
  EXPECT_NEAR(f.slope, 1.0, 1e-9);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

}  // namespace
