// Unit tests for level (thermometer) hypervectors.
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/item_memory.hpp"
#include "hdc/level.hpp"
#include "hdc/similarity.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::hdc;

TEST(LevelCodebook, ShapeAndAlphabet) {
  util::Xoshiro256 rng(1);
  const Codebook cb = make_level_codebook(1024, 8, rng, "sizes");
  EXPECT_EQ(cb.size(), 8u);
  EXPECT_EQ(cb.dim(), 1024u);
  EXPECT_EQ(cb.name(), "sizes");
  for (std::size_t l = 0; l < 8; ++l) EXPECT_TRUE(cb.item(l).is_bipolar());
}

TEST(LevelCodebook, LinearSimilarityProfile) {
  util::Xoshiro256 rng(2);
  const std::size_t levels = 11;
  const Codebook cb = make_level_codebook(8192, levels, rng);
  for (std::size_t i = 0; i < levels; ++i) {
    for (std::size_t j = 0; j < levels; ++j) {
      const double expected =
          1.0 - std::abs(static_cast<double>(i) - static_cast<double>(j)) /
                    static_cast<double>(levels - 1);
      // Endpoint HVs are random, so there is an O(1/sqrt(D)) wobble plus the
      // endpoints' own overlap; allow a generous band.
      EXPECT_NEAR(similarity(cb.item(i), cb.item(j)), expected, 0.08)
          << "levels " << i << "," << j;
    }
  }
}

TEST(LevelCodebook, NeighborsMoreSimilarThanDistantLevels) {
  util::Xoshiro256 rng(3);
  const Codebook cb = make_level_codebook(4096, 10, rng);
  for (std::size_t l = 0; l + 2 < 10; ++l) {
    EXPECT_GT(similarity(cb.item(l), cb.item(l + 1)),
              similarity(cb.item(l), cb.item(l + 2)));
  }
}

TEST(LevelCodebook, CleanupFindsNearestLevel) {
  util::Xoshiro256 rng(4);
  const Codebook cb = make_level_codebook(4096, 5, rng);
  const ItemMemory memory(cb);
  for (std::size_t l = 0; l < 5; ++l) {
    EXPECT_EQ(memory.best(cb.item(l)).index, l);
  }
}

TEST(LevelCodebook, InvalidSpecsThrow) {
  util::Xoshiro256 rng(5);
  EXPECT_THROW(make_level_codebook(128, 1, rng), std::invalid_argument);
  EXPECT_THROW(make_level_codebook(0, 4, rng), std::invalid_argument);
}

TEST(QuantizeLevel, MapsRangeUniformly) {
  EXPECT_EQ(quantize_level(0.0, 0.0, 1.0, 5), 0u);
  EXPECT_EQ(quantize_level(1.0, 0.0, 1.0, 5), 4u);
  EXPECT_EQ(quantize_level(0.5, 0.0, 1.0, 5), 2u);
  EXPECT_EQ(quantize_level(0.24, 0.0, 1.0, 5), 1u);
}

TEST(QuantizeLevel, ClampsOutOfRange) {
  EXPECT_EQ(quantize_level(-10.0, 0.0, 1.0, 5), 0u);
  EXPECT_EQ(quantize_level(10.0, 0.0, 1.0, 5), 4u);
}

TEST(QuantizeLevel, RoundTripsWithLevelValue) {
  const std::size_t levels = 9;
  for (std::size_t l = 0; l < levels; ++l) {
    const double v = level_value(l, -3.0, 3.0, levels);
    EXPECT_EQ(quantize_level(v, -3.0, 3.0, levels), l);
  }
}

TEST(QuantizeLevel, InvalidArgumentsThrow) {
  EXPECT_THROW((void)quantize_level(0.5, 0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)quantize_level(0.5, 1.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW((void)level_value(5, 0.0, 1.0, 5), std::invalid_argument);
}

}  // namespace
