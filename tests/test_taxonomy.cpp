// Unit tests for tax::Taxonomy (uniform and heterogeneous shapes).
#include <gtest/gtest.h>

#include "taxonomy/taxonomy.hpp"

namespace {

using factorhd::tax::Taxonomy;

TEST(Taxonomy, UniformShape) {
  const Taxonomy t(3, {256, 10});
  EXPECT_EQ(t.num_classes(), 3u);
  EXPECT_EQ(t.max_depth(), 2u);
  EXPECT_TRUE(t.uniform());
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(t.depth(c), 2u);
    EXPECT_EQ(t.level_size(c, 1), 256u);
    EXPECT_EQ(t.level_size(c, 2), 2560u);
    EXPECT_EQ(t.paths_per_class(c), 2560u);
  }
  EXPECT_DOUBLE_EQ(t.problem_size(), 2560.0 * 2560.0 * 2560.0);
}

TEST(Taxonomy, HeterogeneousShape) {
  const Taxonomy t(std::vector<std::vector<std::size_t>>{
      {9}, {10}, {5, 6}});
  EXPECT_EQ(t.num_classes(), 3u);
  EXPECT_FALSE(t.uniform());
  EXPECT_EQ(t.depth(0), 1u);
  EXPECT_EQ(t.depth(2), 2u);
  EXPECT_EQ(t.max_depth(), 2u);
  EXPECT_EQ(t.level_size(2, 2), 30u);
  EXPECT_EQ(t.max_level1_size(), 10u);
  EXPECT_DOUBLE_EQ(t.problem_size(), 9.0 * 10.0 * 30.0);
}

TEST(Taxonomy, ParentChildArithmetic) {
  const Taxonomy t(1, {4, 3});
  // Level-2 items 0..11; parent of item k is k / 3.
  EXPECT_EQ(t.parent_of(0, 2, 0), 0u);
  EXPECT_EQ(t.parent_of(0, 2, 5), 1u);
  EXPECT_EQ(t.parent_of(0, 2, 11), 3u);
  const auto kids = t.children_of(0, 1, 2);
  EXPECT_EQ(kids, (std::vector<std::size_t>{6, 7, 8}));
  EXPECT_TRUE(t.is_child(0, 1, 2, 7));
  EXPECT_FALSE(t.is_child(0, 1, 2, 9));
}

TEST(Taxonomy, ParentChildRoundTrip) {
  const Taxonomy t(2, {5, 4, 3});
  for (std::size_t parent = 0; parent < t.level_size(0, 2); ++parent) {
    for (std::size_t child : t.children_of(0, 2, parent)) {
      EXPECT_EQ(t.parent_of(0, 3, child), parent);
    }
  }
}

TEST(Taxonomy, DeepestLevelHasNoChildren) {
  const Taxonomy t(1, {4, 3});
  EXPECT_THROW((void)t.children_of(0, 2, 0), std::out_of_range);
  EXPECT_FALSE(t.is_child(0, 2, 0, 0));
}

TEST(Taxonomy, Level1HasNoParent) {
  const Taxonomy t(1, {4});
  EXPECT_THROW((void)t.parent_of(0, 1, 0), std::out_of_range);
}

TEST(Taxonomy, InvalidSpecsThrow) {
  EXPECT_THROW(Taxonomy(0, {4}), std::invalid_argument);
  EXPECT_THROW(Taxonomy(2, {}), std::invalid_argument);
  EXPECT_THROW(Taxonomy(2, {4, 0}), std::invalid_argument);
  EXPECT_THROW(Taxonomy(std::vector<std::vector<std::size_t>>{}),
               std::invalid_argument);
}

TEST(Taxonomy, RangeChecks) {
  const Taxonomy t(2, {4, 3});
  EXPECT_THROW((void)t.level_size(0, 0), std::out_of_range);
  EXPECT_THROW((void)t.level_size(0, 3), std::out_of_range);
  EXPECT_THROW((void)t.level_size(2, 1), std::out_of_range);
  EXPECT_THROW((void)t.children_of(0, 1, 4), std::out_of_range);
  EXPECT_THROW((void)t.parent_of(0, 2, 12), std::out_of_range);
}

TEST(Taxonomy, FlatProblemMatchesMF) {
  // The classic F=3, M=256 problem: size 256^3.
  const Taxonomy t(3, {256});
  EXPECT_DOUBLE_EQ(t.problem_size(), 16777216.0);
}

}  // namespace
