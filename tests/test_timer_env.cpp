// Unit tests for util::Stopwatch and the bench environment knobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "util/env.hpp"
#include "util/timer.hpp"

namespace {

using namespace factorhd::util;

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = sw.elapsed_ms();
  EXPECT_GE(ms, 18.0);
  EXPECT_LT(ms, 2000.0);  // generous upper bound for loaded CI machines
}

TEST(Stopwatch, UnitsAreConsistent) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = sw.elapsed_seconds();
  const double ms = sw.elapsed_ms();
  const double us = sw.elapsed_us();
  // Reads are taken in sequence, so each is >= the previous one's scale.
  EXPECT_GE(ms, s * 1e3 * 0.99);
  EXPECT_GE(us, ms * 1e3 * 0.99);
}

TEST(Stopwatch, RestartResetsOrigin) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sw.restart();
  EXPECT_LT(sw.elapsed_ms(), 10.0);
}

TEST(Stopwatch, MonotoneNonDecreasing) {
  Stopwatch sw;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = sw.elapsed_us();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Env, ParsesSetVariables) {
  ASSERT_EQ(setenv("FACTORHD_TEST_VAR_STR", "hello", 1), 0);
  ASSERT_EQ(setenv("FACTORHD_TEST_VAR_INT", "123", 1), 0);
  ASSERT_EQ(setenv("FACTORHD_TEST_VAR_BAD", "notanint", 1), 0);
  EXPECT_EQ(env_string("FACTORHD_TEST_VAR_STR", "fb"), "hello");
  EXPECT_EQ(env_int("FACTORHD_TEST_VAR_INT", 0), 123);
  EXPECT_EQ(env_int("FACTORHD_TEST_VAR_BAD", 7), 7);
  unsetenv("FACTORHD_TEST_VAR_STR");
  unsetenv("FACTORHD_TEST_VAR_INT");
  unsetenv("FACTORHD_TEST_VAR_BAD");
}

TEST(Env, EmptyValueFallsBack) {
  ASSERT_EQ(setenv("FACTORHD_TEST_VAR_EMPTY", "", 1), 0);
  EXPECT_EQ(env_string("FACTORHD_TEST_VAR_EMPTY", "fb"), "fb");
  EXPECT_EQ(env_int("FACTORHD_TEST_VAR_EMPTY", 9), 9);
  unsetenv("FACTORHD_TEST_VAR_EMPTY");
}

TEST(Env, SizeKnobClampsIntoRange) {
  ASSERT_EQ(setenv("FACTORHD_TEST_KNOB", "100", 1), 0);
  EXPECT_EQ(env_size_t("FACTORHD_TEST_KNOB", 7, 0, 256), 100u);
  ASSERT_EQ(setenv("FACTORHD_TEST_KNOB", "9999", 1), 0);
  EXPECT_EQ(env_size_t("FACTORHD_TEST_KNOB", 7, 0, 256), 256u);
  ASSERT_EQ(setenv("FACTORHD_TEST_KNOB", "1", 1), 0);
  EXPECT_EQ(env_size_t("FACTORHD_TEST_KNOB", 7, 4, 256), 4u);
  unsetenv("FACTORHD_TEST_KNOB");
}

TEST(Env, SizeKnobFallsBackVerbatim) {
  // Unset, empty, unparsable, and negative all yield the fallback — even one
  // outside [min, max], because fallbacks may carry sentinel meanings
  // (FACTORHD_SCAN_THREADS uses 0 = "auto").
  unsetenv("FACTORHD_TEST_KNOB");
  EXPECT_EQ(env_size_t("FACTORHD_TEST_KNOB", 0, 4, 256), 0u);
  ASSERT_EQ(setenv("FACTORHD_TEST_KNOB", "", 1), 0);
  EXPECT_EQ(env_size_t("FACTORHD_TEST_KNOB", 9, 4, 256), 9u);
  ASSERT_EQ(setenv("FACTORHD_TEST_KNOB", "banana", 1), 0);
  EXPECT_EQ(env_size_t("FACTORHD_TEST_KNOB", 9, 4, 256), 9u);
  ASSERT_EQ(setenv("FACTORHD_TEST_KNOB", "-3", 1), 0);
  EXPECT_EQ(env_size_t("FACTORHD_TEST_KNOB", 9, 4, 256), 9u);
  unsetenv("FACTORHD_TEST_KNOB");
}

TEST(Env, KnobRegistryListsTheParsedKnobs) {
  const auto knobs = env_knobs();
  ASSERT_FALSE(knobs.empty());
  auto has = [&](const std::string& name) {
    for (const EnvKnob& k : knobs) {
      if (name == k.name) return true;
    }
    return false;
  };
  // Every knob a library call site parses must be registered.
  EXPECT_TRUE(has("FACTORHD_SEED"));
  EXPECT_TRUE(has("FACTORHD_BENCH_SCALE"));
  EXPECT_TRUE(has("FACTORHD_TRIALS"));
  EXPECT_TRUE(has("FACTORHD_SIMD"));
  EXPECT_TRUE(has("FACTORHD_SCAN_THREADS"));
  EXPECT_TRUE(has("FACTORHD_SERVE_MAX_BATCH"));
  // Rows are complete: every field non-null and non-empty.
  for (const EnvKnob& k : knobs) {
    EXPECT_NE(k.name, nullptr);
    EXPECT_NE(std::string(k.values), "");
    EXPECT_NE(std::string(k.default_str), "");
    EXPECT_NE(std::string(k.description), "");
  }
}

TEST(Env, BenchScaleFlag) {
  ASSERT_EQ(setenv("FACTORHD_BENCH_SCALE", "full", 1), 0);
  EXPECT_TRUE(bench_full_scale());
  ASSERT_EQ(setenv("FACTORHD_BENCH_SCALE", "quick", 1), 0);
  EXPECT_FALSE(bench_full_scale());
  unsetenv("FACTORHD_BENCH_SCALE");
  EXPECT_FALSE(bench_full_scale());
}

TEST(Env, ExperimentSeedDefaultsTo42) {
  unsetenv("FACTORHD_SEED");
  EXPECT_EQ(experiment_seed(), 42u);
  ASSERT_EQ(setenv("FACTORHD_SEED", "1234", 1), 0);
  EXPECT_EQ(experiment_seed(), 1234u);
  unsetenv("FACTORHD_SEED");
}

TEST(Env, ExperimentSeedCoversTheFullU64Range) {
  // The knob registry documents "any u64"; values above 2^63-1 must parse
  // exactly, not saturate.
  ASSERT_EQ(setenv("FACTORHD_SEED", "18446744073709551615", 1), 0);
  EXPECT_EQ(experiment_seed(), 18446744073709551615ull);
  ASSERT_EQ(setenv("FACTORHD_SEED", "9223372036854775808", 1), 0);
  EXPECT_EQ(experiment_seed(), 9223372036854775808ull);
  ASSERT_EQ(setenv("FACTORHD_SEED", "nonsense", 1), 0);
  EXPECT_EQ(experiment_seed(), 42u);
  unsetenv("FACTORHD_SEED");
}

}  // namespace
