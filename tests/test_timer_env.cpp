// Unit tests for util::Stopwatch and the bench environment knobs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "util/env.hpp"
#include "util/timer.hpp"

namespace {

using namespace factorhd::util;

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = sw.elapsed_ms();
  EXPECT_GE(ms, 18.0);
  EXPECT_LT(ms, 2000.0);  // generous upper bound for loaded CI machines
}

TEST(Stopwatch, UnitsAreConsistent) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = sw.elapsed_seconds();
  const double ms = sw.elapsed_ms();
  const double us = sw.elapsed_us();
  // Reads are taken in sequence, so each is >= the previous one's scale.
  EXPECT_GE(ms, s * 1e3 * 0.99);
  EXPECT_GE(us, ms * 1e3 * 0.99);
}

TEST(Stopwatch, RestartResetsOrigin) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sw.restart();
  EXPECT_LT(sw.elapsed_ms(), 10.0);
}

TEST(Stopwatch, MonotoneNonDecreasing) {
  Stopwatch sw;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = sw.elapsed_us();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Env, ParsesSetVariables) {
  ASSERT_EQ(setenv("FACTORHD_TEST_VAR_STR", "hello", 1), 0);
  ASSERT_EQ(setenv("FACTORHD_TEST_VAR_INT", "123", 1), 0);
  ASSERT_EQ(setenv("FACTORHD_TEST_VAR_BAD", "notanint", 1), 0);
  EXPECT_EQ(env_string("FACTORHD_TEST_VAR_STR", "fb"), "hello");
  EXPECT_EQ(env_int("FACTORHD_TEST_VAR_INT", 0), 123);
  EXPECT_EQ(env_int("FACTORHD_TEST_VAR_BAD", 7), 7);
  unsetenv("FACTORHD_TEST_VAR_STR");
  unsetenv("FACTORHD_TEST_VAR_INT");
  unsetenv("FACTORHD_TEST_VAR_BAD");
}

TEST(Env, EmptyValueFallsBack) {
  ASSERT_EQ(setenv("FACTORHD_TEST_VAR_EMPTY", "", 1), 0);
  EXPECT_EQ(env_string("FACTORHD_TEST_VAR_EMPTY", "fb"), "fb");
  EXPECT_EQ(env_int("FACTORHD_TEST_VAR_EMPTY", 9), 9);
  unsetenv("FACTORHD_TEST_VAR_EMPTY");
}

TEST(Env, BenchScaleFlag) {
  ASSERT_EQ(setenv("FACTORHD_BENCH_SCALE", "full", 1), 0);
  EXPECT_TRUE(bench_full_scale());
  ASSERT_EQ(setenv("FACTORHD_BENCH_SCALE", "quick", 1), 0);
  EXPECT_FALSE(bench_full_scale());
  unsetenv("FACTORHD_BENCH_SCALE");
  EXPECT_FALSE(bench_full_scale());
}

TEST(Env, ExperimentSeedDefaultsTo42) {
  unsetenv("FACTORHD_SEED");
  EXPECT_EQ(experiment_seed(), 42u);
  ASSERT_EQ(setenv("FACTORHD_SEED", "1234", 1), 0);
  EXPECT_EQ(experiment_seed(), 1234u);
  unsetenv("FACTORHD_SEED");
}

}  // namespace
