// Unit tests for multi-object (Rep 3) factorization: thresholded candidate
// selection, combination checking, reconstruct-and-subtract, superposition
// catastrophe avoidance and the problem of 2.
#include <gtest/gtest.h>

#include "core/factorizer.hpp"
#include "taxonomy/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using core::Encoder;
using core::FactorizeOptions;
using core::FactorizeResult;
using core::Factorizer;

tax::Scene recovered_scene(const FactorizeResult& r, std::size_t num_classes) {
  tax::Scene out;
  out.reserve(r.objects.size());
  for (const auto& obj : r.objects) out.push_back(obj.to_object(num_classes));
  return out;
}

class Rep3Test : public ::testing::Test {
 protected:
  Rep3Test()
      : rng_(33), taxonomy_(3, {10}), books_(taxonomy_, 4096, rng_),
        encoder_(books_), factorizer_(encoder_) {}

  FactorizeOptions multi_opts(std::size_t n) const {
    FactorizeOptions o;
    o.multi_object = true;
    o.num_objects_hint = n;
    o.max_objects = n + 2;
    return o;
  }

  util::Xoshiro256 rng_;
  tax::Taxonomy taxonomy_;
  tax::TaxonomyCodebooks books_;
  Encoder encoder_;
  Factorizer factorizer_;
};

TEST_F(Rep3Test, RecoversTwoDistinctObjects) {
  int correct = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    const tax::Scene scene =
        tax::random_scene(taxonomy_, rng_, {.num_objects = 2,
                                            .object = {},
                                            .allow_duplicates = false});
    const auto target = encoder_.encode_scene(scene);
    const FactorizeResult r = factorizer_.factorize(target, multi_opts(2));
    if (tax::same_multiset(recovered_scene(r, 3), scene)) ++correct;
  }
  // D=4096 is far above the capacity knee for N=2, F=3, M=10.
  EXPECT_GE(correct, 24) << correct << "/" << trials;
}

TEST_F(Rep3Test, RecoversThreeObjects) {
  int correct = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    const tax::Scene scene =
        tax::random_scene(taxonomy_, rng_, {.num_objects = 3,
                                            .object = {},
                                            .allow_duplicates = false});
    const auto target = encoder_.encode_scene(scene);
    FactorizeOptions opts = multi_opts(3);
    const FactorizeResult r = factorizer_.factorize(target, opts);
    if (tax::same_multiset(recovered_scene(r, 3), scene)) ++correct;
  }
  EXPECT_GE(correct, 13) << correct << "/" << trials;
}

TEST_F(Rep3Test, HandlesProblemOfTwoDuplicates) {
  // Two identical objects: the residual loop must find the object twice.
  int correct = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const tax::Object obj = tax::random_object(taxonomy_, rng_);
    const tax::Scene scene{obj, obj};
    const auto target = encoder_.encode_scene(scene);
    const FactorizeResult r = factorizer_.factorize(target, multi_opts(2));
    if (tax::same_multiset(recovered_scene(r, 3), scene)) ++correct;
  }
  EXPECT_GE(correct, 18) << correct << "/" << trials;
}

TEST_F(Rep3Test, SingleObjectConvergesInOneRound) {
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  const auto target = encoder_.encode_object(obj);
  const FactorizeResult r = factorizer_.factorize(target, multi_opts(1));
  ASSERT_EQ(r.objects.size(), 1u);
  EXPECT_EQ(r.objects[0].to_object(3), obj);
  EXPECT_TRUE(r.converged);
}

TEST_F(Rep3Test, EmptyResidualYieldsNoObjects) {
  const hdc::Hypervector zero(books_.dim());
  const FactorizeResult r = factorizer_.factorize(zero, multi_opts(2));
  EXPECT_TRUE(r.objects.empty());
  EXPECT_TRUE(r.converged);
}

TEST_F(Rep3Test, MaxObjectsCapsExtraction) {
  const tax::Scene scene =
      tax::random_scene(taxonomy_, rng_, {.num_objects = 3,
                                          .object = {},
                                          .allow_duplicates = false});
  const auto target = encoder_.encode_scene(scene);
  FactorizeOptions opts = multi_opts(3);
  opts.max_objects = 1;
  const FactorizeResult r = factorizer_.factorize(target, opts);
  EXPECT_LE(r.objects.size(), 1u);
  EXPECT_FALSE(r.converged);  // budget exhausted, residual not empty
}

TEST_F(Rep3Test, ExplicitThresholdOverridesPrediction) {
  FactorizeOptions opts = multi_opts(2);
  opts.threshold = 0.08;
  EXPECT_DOUBLE_EQ(factorizer_.effective_threshold(opts), 0.08);
  opts.threshold = 0.0;
  const double predicted = factorizer_.effective_threshold(opts);
  EXPECT_GT(predicted, 0.0);
  EXPECT_LT(predicted, 0.2);
}

TEST_F(Rep3Test, AbsurdlyHighThresholdFindsNothing) {
  const tax::Scene scene =
      tax::random_scene(taxonomy_, rng_, {.num_objects = 2,
                                          .object = {},
                                          .allow_duplicates = false});
  const auto target = encoder_.encode_scene(scene);
  FactorizeOptions opts = multi_opts(2);
  opts.threshold = 0.9;
  const FactorizeResult r = factorizer_.factorize(target, opts);
  EXPECT_TRUE(r.objects.empty());
  EXPECT_TRUE(r.converged);
}

TEST_F(Rep3Test, CombinationChecksAreCounted) {
  const tax::Scene scene =
      tax::random_scene(taxonomy_, rng_, {.num_objects = 2,
                                          .object = {},
                                          .allow_duplicates = false});
  const auto target = encoder_.encode_scene(scene);
  const FactorizeResult r = factorizer_.factorize(target, multi_opts(2));
  EXPECT_GT(r.combinations_checked, 0u);
  // Far fewer than the M^F = 1000 exhaustive comparisons.
  EXPECT_LT(r.combinations_checked, 200u);
}

TEST_F(Rep3Test, ObjectsWithAbsentClassesAreRecovered) {
  tax::Object a(3), b(3);
  a.set_path(0, {1});
  a.set_path(1, {2});  // class 2 absent
  b.set_path(0, {5});
  b.set_path(1, {7});
  b.set_path(2, {3});
  const tax::Scene scene{a, b};
  const auto target = encoder_.encode_scene(scene);
  const FactorizeResult r = factorizer_.factorize(target, multi_opts(2));
  EXPECT_TRUE(tax::same_multiset(recovered_scene(r, 3), scene));
}

TEST_F(Rep3Test, ClassSelectionTruncatesReport) {
  const tax::Scene scene =
      tax::random_scene(taxonomy_, rng_, {.num_objects = 2,
                                          .object = {},
                                          .allow_duplicates = false});
  const auto target = encoder_.encode_scene(scene);
  FactorizeOptions opts = multi_opts(2);
  opts.selected_classes = {0, 2};
  const FactorizeResult r = factorizer_.factorize(target, opts);
  for (const auto& obj : r.objects) {
    ASSERT_EQ(obj.classes.size(), 2u);
    EXPECT_EQ(obj.classes[0].cls, 0u);
    EXPECT_EQ(obj.classes[1].cls, 2u);
  }
}

TEST_F(Rep3Test, TraceRecordsRounds) {
  const tax::Scene scene =
      tax::random_scene(taxonomy_, rng_, {.num_objects = 2,
                                          .object = {},
                                          .allow_duplicates = false});
  const auto target = encoder_.encode_scene(scene);
  FactorizeOptions opts = multi_opts(2);
  opts.collect_trace = true;
  const FactorizeResult r = factorizer_.factorize(target, opts);
  ASSERT_EQ(r.objects.size(), 2u);
  // One trace entry per round: two accepted rounds plus the final empty one.
  ASSERT_GE(r.trace.size(), 2u);
  EXPECT_TRUE(r.trace[0].accepted);
  EXPECT_TRUE(r.trace[1].accepted);
  EXPECT_FALSE(r.trace.back().accepted);
  EXPECT_GT(r.trace[0].combinations, 0u);
  EXPECT_GT(r.trace[0].best_similarity, 0.0);
  EXPECT_EQ(r.trace[0].candidates_per_class.size(), 3u);
  for (std::size_t c : r.trace[0].candidates_per_class) EXPECT_GE(c, 1u);
}

TEST_F(Rep3Test, TraceOffByDefault) {
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  const FactorizeResult r =
      factorizer_.factorize(encoder_.encode_object(obj), multi_opts(1));
  EXPECT_TRUE(r.trace.empty());
}

// Rep 3 with two subclass levels (the paper's hardest configuration).
TEST(Rep3MultiLevel, RecoversTwoObjectsWithTwoLevels) {
  util::Xoshiro256 rng(44);
  const tax::Taxonomy taxonomy(3, {8, 4});
  const tax::TaxonomyCodebooks books(taxonomy, 8192, rng);
  const Encoder encoder(books);
  const Factorizer factorizer(encoder);

  int correct = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const tax::Scene scene =
        tax::random_scene(taxonomy, rng, {.num_objects = 2,
                                          .object = {},
                                          .allow_duplicates = false});
    const auto target = encoder.encode_scene(scene);
    FactorizeOptions opts;
    opts.multi_object = true;
    opts.num_objects_hint = 2;
    opts.max_objects = 4;
    const FactorizeResult r = factorizer.factorize(target, opts);
    tax::Scene rec;
    for (const auto& o : r.objects) rec.push_back(o.to_object(3));
    if (tax::same_multiset(rec, scene)) ++correct;
  }
  EXPECT_GE(correct, 8) << correct << "/" << trials;
}

}  // namespace
