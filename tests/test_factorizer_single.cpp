// Unit tests for single-object factorization (Rep 1 and Rep 2).
#include <gtest/gtest.h>

#include "core/factorizer.hpp"
#include "taxonomy/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using core::Encoder;
using core::FactorizedObject;
using core::FactorizeOptions;
using core::Factorizer;

// Rep 1: single object, single subclass level.
class Rep1Test : public ::testing::Test {
 protected:
  Rep1Test()
      : rng_(21), taxonomy_(3, {16}), books_(taxonomy_, 1024, rng_),
        encoder_(books_), factorizer_(encoder_) {}

  util::Xoshiro256 rng_;
  tax::Taxonomy taxonomy_;
  tax::TaxonomyCodebooks books_;
  Encoder encoder_;
  Factorizer factorizer_;
};

TEST_F(Rep1Test, RecoversAllClasses) {
  for (int trial = 0; trial < 50; ++trial) {
    const tax::Object obj = tax::random_object(taxonomy_, rng_);
    const auto target = encoder_.encode_object(obj);
    const FactorizedObject got = factorizer_.factorize_single(target);
    EXPECT_EQ(got.to_object(3), obj) << "trial " << trial;
  }
}

TEST_F(Rep1Test, ReportsMeaningfulSimilarities) {
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  const auto target = encoder_.encode_object(obj);
  const FactorizedObject got = factorizer_.factorize_single(target);
  for (const auto& cf : got.classes) {
    ASSERT_TRUE(cf.present);
    ASSERT_EQ(cf.level_similarities.size(), 1u);
    // Signal scale for F=3 two-HV clauses is 2^-F = 0.125 of D.
    EXPECT_GT(cf.level_similarities[0], 0.05);
    EXPECT_LT(cf.null_similarity, cf.level_similarities[0]);
  }
}

TEST_F(Rep1Test, DetectsAbsentClass) {
  tax::Object obj(3);
  obj.set_path(0, {3});
  obj.set_path(2, {9});  // class 1 absent
  const auto target = encoder_.encode_object(obj);
  const FactorizedObject got = factorizer_.factorize_single(target);
  EXPECT_TRUE(got.classes[0].present);
  EXPECT_FALSE(got.classes[1].present);
  EXPECT_TRUE(got.classes[2].present);
  EXPECT_EQ(got.to_object(3), obj);
}

TEST_F(Rep1Test, PartialFactorizationTouchesOnlySelectedClasses) {
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  const auto target = encoder_.encode_object(obj);
  FactorizeOptions opts;
  opts.selected_classes = {1};
  const auto result = factorizer_.factorize(target, opts);
  ASSERT_EQ(result.objects.size(), 1u);
  ASSERT_EQ(result.objects[0].classes.size(), 1u);
  EXPECT_EQ(result.objects[0].classes[0].cls, 1u);
  EXPECT_EQ(result.objects[0].classes[0].path[0], obj.path(1)[0]);
  // Partial cost: one class's codebook + null, not 3x.
  EXPECT_EQ(result.similarity_ops, 16u + 1u);
}

TEST_F(Rep1Test, SimilarityOpsAreLinearInM) {
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  const auto target = encoder_.encode_object(obj);
  const auto result = factorizer_.factorize(target, {});
  // F * (M + 1 null check).
  EXPECT_EQ(result.similarity_ops, 3u * (16u + 1u));
}

TEST_F(Rep1Test, RejectsWrongDimension) {
  EXPECT_THROW((void)factorizer_.factorize(hdc::Hypervector(77), {}),
               std::invalid_argument);
}

TEST_F(Rep1Test, RejectsBadClassSelection) {
  const auto target = encoder_.encode_object(tax::random_object(taxonomy_, rng_));
  FactorizeOptions opts;
  opts.selected_classes = {7};
  EXPECT_THROW((void)factorizer_.factorize(target, opts),
               std::invalid_argument);
}

// Rep 2: single object, two subclass levels (256 subclasses x 10
// sub-subclasses scaled down for unit-test speed; the full-size sweep lives
// in the Fig. 5 bench).
class Rep2Test : public ::testing::Test {
 protected:
  Rep2Test()
      : rng_(22), taxonomy_(3, {32, 10}), books_(taxonomy_, 2048, rng_),
        encoder_(books_), factorizer_(encoder_) {}

  util::Xoshiro256 rng_;
  tax::Taxonomy taxonomy_;
  tax::TaxonomyCodebooks books_;
  Encoder encoder_;
  Factorizer factorizer_;
};

TEST_F(Rep2Test, RecoversFullPaths) {
  for (int trial = 0; trial < 30; ++trial) {
    const tax::Object obj = tax::random_object(taxonomy_, rng_);
    const auto target = encoder_.encode_object(obj);
    EXPECT_EQ(factorizer_.factorize_single(target).to_object(3), obj)
        << "trial " << trial;
  }
}

TEST_F(Rep2Test, DepthLimitStopsAtRequestedLevel) {
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  const auto target = encoder_.encode_object(obj);
  FactorizeOptions opts;
  opts.max_depth = 1;
  const auto result = factorizer_.factorize(target, opts);
  for (const auto& cf : result.objects[0].classes) {
    ASSERT_TRUE(cf.present);
    EXPECT_EQ(cf.path.size(), 1u);
    EXPECT_EQ(cf.path[0], obj.path(cf.cls)[0]);
  }
  // Depth-limited cost: F * (M1 + null), no level-2 searches.
  EXPECT_EQ(result.similarity_ops, 3u * (32u + 1u));
}

TEST_F(Rep2Test, DeepSearchIsChildRestricted) {
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  const auto target = encoder_.encode_object(obj);
  const auto result = factorizer_.factorize(target, {});
  // F * (M1 + null + branching(2)): 3 * (32 + 1 + 10), NOT 3*(32+1+320).
  EXPECT_EQ(result.similarity_ops, 3u * (32u + 1u + 10u));
  // Level-2 result is a child of level-1 result.
  for (const auto& cf : result.objects[0].classes) {
    EXPECT_TRUE(taxonomy_.is_child(cf.cls, 1, cf.path[0], cf.path[1]));
  }
}

TEST_F(Rep2Test, HeterogeneousDepthsFactorize) {
  util::Xoshiro256 rng(5);
  const tax::Taxonomy t(std::vector<std::vector<std::size_t>>{{9}, {10}, {5, 6}});
  const tax::TaxonomyCodebooks books(t, 2048, rng);
  const Encoder enc(books);
  const Factorizer fact(enc);
  for (int trial = 0; trial < 20; ++trial) {
    const tax::Object obj = tax::random_object(t, rng);
    EXPECT_EQ(fact.factorize_single(enc.encode_object(obj)).to_object(3), obj);
  }
}

}  // namespace
