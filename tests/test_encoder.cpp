// Unit tests for the FactorHD encoder (bundling-binding-bundling form).
#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "hdc/ops.hpp"
#include "hdc/similarity.hpp"
#include "taxonomy/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using core::EncodeOptions;
using core::Encoder;

class EncoderTest : public ::testing::Test {
 protected:
  EncoderTest()
      : rng_(11), taxonomy_(3, {8, 4}), books_(taxonomy_, 2048, rng_),
        encoder_(books_) {}

  util::Xoshiro256 rng_;
  tax::Taxonomy taxonomy_;
  tax::TaxonomyCodebooks books_;
  Encoder encoder_;
};

TEST_F(EncoderTest, ClauseIsClippedTernary) {
  const auto clause = encoder_.encode_clause(0, tax::Path{3, 13});
  EXPECT_TRUE(clause.is_ternary());
  // Clause bundles label + 2 items; it stays similar to each component.
  EXPECT_GT(hdc::similarity(clause, books_.label(0)), 0.3);
  EXPECT_GT(hdc::similarity(clause, books_.item(0, 1, 3)), 0.3);
  EXPECT_GT(hdc::similarity(clause, books_.item(0, 2, 13)), 0.3);
}

TEST_F(EncoderTest, AbsentClassClauseBundlesNull) {
  const auto clause = encoder_.encode_clause(1, std::nullopt);
  EXPECT_GT(hdc::similarity(clause, books_.label(1)), 0.3);
  EXPECT_GT(hdc::similarity(clause, books_.null_hv()), 0.3);
}

TEST_F(EncoderTest, ObjectIsTernaryProductOfClauses) {
  util::Xoshiro256 rng(1);
  const tax::Object obj = tax::random_object(taxonomy_, rng);
  const auto hv = encoder_.encode_object(obj);
  EXPECT_EQ(hv.dim(), 2048u);
  EXPECT_TRUE(hv.is_ternary());

  // Reconstruct by explicit clause product.
  auto expected = encoder_.encode_clause(0, obj.maybe_path(0));
  for (std::size_t c = 1; c < 3; ++c) {
    hdc::bind_inplace(expected, encoder_.encode_clause(c, obj.maybe_path(c)));
  }
  EXPECT_EQ(hv, expected);
}

TEST_F(EncoderTest, EncodingIsDeterministic) {
  util::Xoshiro256 rng(2);
  const tax::Object obj = tax::random_object(taxonomy_, rng);
  EXPECT_EQ(encoder_.encode_object(obj), encoder_.encode_object(obj));
}

TEST_F(EncoderTest, DistinctObjectsEncodeDissimilarly) {
  util::Xoshiro256 rng(3);
  const tax::Scene scene = tax::random_scene(
      taxonomy_, rng, {.num_objects = 2, .object = {}, .allow_duplicates = false});
  const auto h0 = encoder_.encode_object(scene[0]);
  const auto h1 = encoder_.encode_object(scene[1]);
  // Shared labels induce some correlation, but far below self-similarity.
  const double cross = hdc::similarity(h0, h1);
  const double self = hdc::similarity(h0, h0);
  EXPECT_LT(cross, 0.5 * self);
}

TEST_F(EncoderTest, PrefixTruncatesPaths) {
  util::Xoshiro256 rng(4);
  const tax::Object obj = tax::random_object(taxonomy_, rng);
  tax::Object shallow(3);
  for (std::size_t c = 0; c < 3; ++c) {
    shallow.set_path(c, {obj.path(c)[0]});
  }
  EXPECT_EQ(encoder_.encode_object_prefix(obj, 1),
            encoder_.encode_object(shallow));
}

TEST_F(EncoderTest, SceneIsSumOfObjects) {
  util::Xoshiro256 rng(5);
  const tax::Scene scene = tax::random_scene(
      taxonomy_, rng, {.num_objects = 3, .object = {}, .allow_duplicates = false});
  auto expected = encoder_.encode_object(scene[0]);
  hdc::accumulate(expected, encoder_.encode_object(scene[1]));
  hdc::accumulate(expected, encoder_.encode_object(scene[2]));
  EXPECT_EQ(encoder_.encode_scene(scene), expected);
}

TEST_F(EncoderTest, InvalidInputsThrow) {
  tax::Object bad(2);  // wrong class count
  EXPECT_THROW(encoder_.encode_object(bad), std::invalid_argument);
  EXPECT_THROW(encoder_.encode_scene({}), std::invalid_argument);
}

TEST_F(EncoderTest, DuplicateObjectsDoubleTheBundle) {
  util::Xoshiro256 rng(6);
  const tax::Object obj = tax::random_object(taxonomy_, rng);
  const auto single = encoder_.encode_object(obj);
  const auto doubled = encoder_.encode_scene({obj, obj});
  for (std::size_t i = 0; i < doubled.dim(); ++i) {
    EXPECT_EQ(doubled[i], 2 * single[i]);
  }
}

TEST(EncoderOptions, NoLabelAblationChangesEncoding) {
  util::Xoshiro256 rng(7);
  const tax::Taxonomy t(2, {4});
  const tax::TaxonomyCodebooks books(t, 256, rng);
  const Encoder with_labels(books);
  const Encoder without_labels(books, EncodeOptions{.include_labels = false});
  tax::Object obj(2);
  obj.set_path(0, {1});
  obj.set_path(1, {2});
  EXPECT_NE(with_labels.encode_object(obj), without_labels.encode_object(obj));
  // Without labels, a single-item clause is the item itself; the object HV
  // degenerates to the plain C-C product.
  const auto cc = hdc::bind(books.item(0, 1, 1), books.item(1, 1, 2));
  EXPECT_EQ(without_labels.encode_object(obj), cc);
}

TEST(EncoderOptions, NoClipKeepsIntegerClauses) {
  util::Xoshiro256 rng(8);
  const tax::Taxonomy t(2, {4, 2});
  const tax::TaxonomyCodebooks books(t, 256, rng);
  const Encoder unclipped(books, EncodeOptions{.clip_ternary = false});
  tax::Object obj(2);
  obj.set_path(0, {1, 3});
  obj.set_path(1, {2, 4});
  const auto hv = unclipped.encode_object(obj);
  // Clauses bundle 3 bipolar HVs -> values in {-3,-1,1,3}; products up to 9.
  EXPECT_GT(hv.max_abs(), 1);
  EXPECT_LE(hv.max_abs(), 9);
}

}  // namespace
