// Unit tests for the analytic capacity model.
#include <gtest/gtest.h>

#include "core/capacity.hpp"
#include "core/encoder.hpp"
#include "core/factorizer.hpp"
#include "hdc/ops.hpp"
#include "hdc/random.hpp"
#include "hdc/similarity.hpp"
#include "taxonomy/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::core;

TEST(ClauseGeometry, DensityValues) {
  EXPECT_DOUBLE_EQ(clause_density(1), 1.0);   // bipolar item alone
  EXPECT_DOUBLE_EQ(clause_density(2), 0.5);   // label + item
  EXPECT_DOUBLE_EQ(clause_density(3), 1.0);   // odd sums never zero
  EXPECT_DOUBLE_EQ(clause_density(4), 1.0 - 6.0 / 16.0);
  EXPECT_THROW((void)clause_density(0), std::invalid_argument);
}

TEST(ClauseGeometry, CorrelationValues) {
  EXPECT_DOUBLE_EQ(clause_member_correlation(1), 1.0);
  EXPECT_DOUBLE_EQ(clause_member_correlation(2), 0.5);
  EXPECT_DOUBLE_EQ(clause_member_correlation(3), 0.5);
  EXPECT_DOUBLE_EQ(clause_member_correlation(4), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(clause_member_correlation(5), 6.0 / 16.0);
}

TEST(ClauseGeometry, CorrelationMatchesEmpirical) {
  // Monte-Carlo check of c_3 on real clipped bundles.
  util::Xoshiro256 rng(1);
  const std::size_t d = 100000;
  hdc::Hypervector sum(d);
  hdc::Hypervector member;
  for (int k = 0; k < 3; ++k) {
    hdc::Hypervector v = hdc::random_bipolar(d, rng);
    if (k == 0) member = v;
    hdc::accumulate(sum, v);
  }
  hdc::clip_ternary_inplace(sum);
  const double measured = hdc::similarity(sum, member);
  EXPECT_NEAR(measured, clause_member_correlation(3), 0.01);
}

TEST(ArgmaxWin, Extremes) {
  EXPECT_DOUBLE_EQ(argmax_win_probability(0.1, 0.01, 0), 1.0);
  // Overwhelming signal -> ~1; zero signal with many rivals -> small.
  EXPECT_GT(argmax_win_probability(0.5, 0.01, 100), 0.999);
  EXPECT_LT(argmax_win_probability(0.0, 0.01, 100), 0.05);
}

TEST(ArgmaxWin, MonotoneInRivalsAndNoise) {
  const double base = argmax_win_probability(0.1, 0.05, 10);
  EXPECT_GT(base, argmax_win_probability(0.1, 0.05, 100));
  EXPECT_GT(base, argmax_win_probability(0.1, 0.10, 10));
  EXPECT_LT(base, argmax_win_probability(0.2, 0.05, 10));
}

TEST(CapacityModel, PredictionTracksMeasurementRep1) {
  // Single shape near its knee: F=3, M=16.
  CapacityProblem p;
  p.num_classes = 3;
  p.branching = {16};
  util::Xoshiro256 rng(2);
  for (const std::size_t d : {96u, 160u, 320u}) {
    p.dim = d;
    const double predicted = predicted_object_accuracy(p);
    const tax::Taxonomy taxonomy(3, {16});
    const tax::TaxonomyCodebooks books(taxonomy, d, rng);
    const Encoder encoder(books);
    const Factorizer factorizer(encoder);
    std::size_t ok = 0;
    const std::size_t trials = 200;
    for (std::size_t t = 0; t < trials; ++t) {
      const tax::Object obj = tax::random_object(taxonomy, rng);
      if (factorizer.factorize_single(encoder.encode_object(obj))
              .to_object(3) == obj) {
        ++ok;
      }
    }
    const double measured = static_cast<double>(ok) / trials;
    EXPECT_NEAR(predicted, measured, 0.10) << "D=" << d;
  }
}

TEST(CapacityModel, MonotoneInDimension) {
  CapacityProblem p;
  p.num_classes = 4;
  p.branching = {32};
  double prev = 0.0;
  for (const std::size_t d : {128u, 256u, 512u, 1024u}) {
    p.dim = d;
    const double acc = predicted_object_accuracy(p);
    EXPECT_GE(acc, prev);
    prev = acc;
  }
  EXPECT_GT(prev, 0.99);
}

TEST(CapacityModel, RequiredDimensionIsConsistent) {
  CapacityProblem p;
  p.num_classes = 3;
  p.branching = {64};
  const std::size_t d99 = required_dimension(p, 0.99);
  ASSERT_GT(d99, 0u);
  p.dim = d99;
  EXPECT_GE(predicted_object_accuracy(p), 0.99);
  p.dim = d99 / 2;
  EXPECT_LT(predicted_object_accuracy(p), 0.99);
  // Tighter targets need more dimensions.
  EXPECT_GT(required_dimension(p, 0.999), d99);
}

TEST(CapacityModel, InvalidProblemsThrow) {
  CapacityProblem p;
  p.branching = {};
  EXPECT_THROW((void)predicted_class_accuracy(p), std::invalid_argument);
  p.branching = {8};
  p.num_classes = 0;
  EXPECT_THROW((void)predicted_class_accuracy(p), std::invalid_argument);
}

}  // namespace
