// Unit tests for the TH model (Eq. 2) and empirical calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/threshold.hpp"

namespace {

using namespace factorhd::core;

TEST(PredictedThreshold, MatchesEquationTwo) {
  // TH* = 0.001 (104 + 2N - 15F - 0.001D - ln M)
  ThresholdProblem p;
  p.num_objects = 3;
  p.num_classes = 4;
  p.dim = 2000;
  p.codebook_size = 10;
  const double expected =
      0.001 * (104.0 + 6.0 - 60.0 - 2.0 - std::log(10.0));
  EXPECT_NEAR(predicted_threshold(p), expected, 1e-12);
}

TEST(PredictedThreshold, IncreasesWithObjects) {
  ThresholdProblem a, b;
  a.num_objects = 2;
  b.num_objects = 5;
  EXPECT_LT(predicted_threshold(a), predicted_threshold(b));
}

TEST(PredictedThreshold, DecreasesWithFactors) {
  ThresholdProblem a, b;
  a.num_classes = 3;
  b.num_classes = 5;
  EXPECT_GT(predicted_threshold(a), predicted_threshold(b));
}

TEST(PredictedThreshold, DecreasesWithDimensionAndCodebook) {
  ThresholdProblem a, b;
  a.dim = 500;
  b.dim = 4000;
  EXPECT_GT(predicted_threshold(a), predicted_threshold(b));
  ThresholdProblem c, d;
  c.codebook_size = 5;
  d.codebook_size = 100;
  EXPECT_GT(predicted_threshold(c), predicted_threshold(d));
}

TEST(CalibrateThreshold, FindsAccurateThreshold) {
  ThresholdProblem p;
  p.num_objects = 2;
  p.num_classes = 3;
  p.dim = 2048;
  p.codebook_size = 10;
  CalibrationOptions opts;
  opts.trials_per_point = 12;
  opts.th_min = 0.02;
  opts.th_max = 0.16;
  opts.th_step = 0.02;
  const CalibrationResult r = calibrate_threshold(p, opts);
  EXPECT_EQ(r.sweep.size(), 8u);
  EXPECT_GT(r.best_accuracy, 0.8);
  EXPECT_GE(r.best_threshold, opts.th_min);
  EXPECT_LE(r.best_threshold, opts.th_max + 1e-9);
}

TEST(CalibrateThreshold, PredictionIsNearEmpiricalOptimum) {
  // Eq. 2 should land in the high-accuracy plateau found by calibration.
  ThresholdProblem p;
  p.num_objects = 2;
  p.num_classes = 3;
  p.dim = 2048;
  p.codebook_size = 10;
  CalibrationOptions opts;
  opts.trials_per_point = 12;
  const CalibrationResult r = calibrate_threshold(p, opts);
  const double predicted = predicted_threshold(p);
  // Find the accuracy of the grid point nearest the prediction.
  double nearest_acc = 0.0, nearest_gap = 1e9;
  for (const auto& pt : r.sweep) {
    const double gap = std::abs(pt.threshold - predicted);
    if (gap < nearest_gap) {
      nearest_gap = gap;
      nearest_acc = pt.accuracy;
    }
  }
  EXPECT_GT(nearest_acc, 0.7) << "Eq.2 predicted " << predicted;
}

TEST(CalibrateThreshold, DeterministicGivenSeed) {
  ThresholdProblem p;
  p.num_objects = 2;
  p.num_classes = 3;
  p.dim = 1024;
  p.codebook_size = 8;
  CalibrationOptions opts;
  opts.trials_per_point = 6;
  opts.th_min = 0.04;
  opts.th_max = 0.12;
  opts.th_step = 0.04;
  const CalibrationResult a = calibrate_threshold(p, opts);
  const CalibrationResult b = calibrate_threshold(p, opts);
  ASSERT_EQ(a.sweep.size(), b.sweep.size());
  for (std::size_t i = 0; i < a.sweep.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sweep[i].accuracy, b.sweep[i].accuracy);
  }
}

}  // namespace
