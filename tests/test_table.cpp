// Unit tests for util::TextTable, formatting helpers, and util::CsvWriter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

using namespace factorhd::util;

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.str());
}

TEST(TextTable, ExtendsForLongRows) {
  TextTable t({"a"});
  t.add_row({"1", "2", "3"});
  const std::string s = t.str();
  EXPECT_NE(s.find('3'), std::string::npos);
}

TEST(Formatting, Double) {
  EXPECT_EQ(fmt_double(0.99712, 4), "0.9971");
  EXPECT_EQ(fmt_double(1.0, 2), "1.00");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(fmt_percent(0.9971), "99.71%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Formatting, Scientific) {
  EXPECT_EQ(fmt_sci(16777216.0), "1.7e+07");
}

TEST(Formatting, TimeUnits) {
  EXPECT_EQ(fmt_time_us(0.5), "500.0 ns");
  EXPECT_EQ(fmt_time_us(12.0), "12.00 us");
  EXPECT_EQ(fmt_time_us(2500.0), "2.50 ms");
  EXPECT_EQ(fmt_time_us(3.2e6), "3.200 s");
}

TEST(CsvWriter, QuotesSpecialCells) {
  const std::string path = testing::TempDir() + "factorhd_csv_test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.write_row({"plain", "with,comma", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Env, FallbacksWhenUnset) {
  EXPECT_EQ(env_string("FACTORHD_DEFINITELY_UNSET_VAR", "fb"), "fb");
  EXPECT_EQ(env_int("FACTORHD_DEFINITELY_UNSET_VAR", 5), 5);
}

}  // namespace
