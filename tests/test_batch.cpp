// Unit tests for multi-threaded batch factorization.
#include <gtest/gtest.h>

#include "core/batch.hpp"
#include "core/encoder.hpp"
#include "taxonomy/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::core;

class BatchTest : public ::testing::Test {
 protected:
  BatchTest()
      : rng_(55), taxonomy_(3, {16}), books_(taxonomy_, 512, rng_),
        encoder_(books_), factorizer_(encoder_) {}

  util::Xoshiro256 rng_;
  tax::Taxonomy taxonomy_;
  tax::TaxonomyCodebooks books_;
  Encoder encoder_;
  Factorizer factorizer_;
};

TEST_F(BatchTest, MatchesSequentialResults) {
  std::vector<tax::Object> truth;
  std::vector<hdc::Hypervector> targets;
  for (int i = 0; i < 64; ++i) {
    truth.push_back(tax::random_object(taxonomy_, rng_));
    targets.push_back(encoder_.encode_object(truth.back()));
  }
  BatchOptions opts;
  opts.num_threads = 4;
  const BatchFactorizer batcher(factorizer_, opts);
  const auto results = batcher.factorize_all(targets, {});
  ASSERT_EQ(results.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(results[i].objects[0].to_object(3), truth[i]) << "target " << i;
  }
}

TEST_F(BatchTest, EmptyBatchIsEmpty) {
  const BatchFactorizer batcher(factorizer_);
  EXPECT_TRUE(batcher.factorize_all({}, {}).empty());
}

TEST_F(BatchTest, SingleThreadPathWorks) {
  BatchOptions opts;
  opts.num_threads = 1;
  const BatchFactorizer batcher(factorizer_, opts);
  const tax::Object obj = tax::random_object(taxonomy_, rng_);
  const auto results =
      batcher.factorize_all({encoder_.encode_object(obj)}, {});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].objects[0].to_object(3), obj);
}

TEST_F(BatchTest, EffectiveThreadsClampsToBatchSize) {
  BatchOptions opts;
  opts.num_threads = 16;
  const BatchFactorizer batcher(factorizer_, opts);
  EXPECT_EQ(batcher.effective_threads(3), 3u);
  EXPECT_EQ(batcher.effective_threads(100), 16u);
  EXPECT_EQ(batcher.effective_threads(0), 1u);
  BatchOptions auto_opts;  // num_threads = 0 -> hardware concurrency
  const BatchFactorizer auto_batcher(factorizer_, auto_opts);
  EXPECT_GE(auto_batcher.effective_threads(1000), 1u);
}

TEST_F(BatchTest, PropagatesWorkerExceptions) {
  std::vector<hdc::Hypervector> targets;
  targets.push_back(encoder_.encode_object(tax::random_object(taxonomy_, rng_)));
  targets.emplace_back(77);  // wrong dimension -> factorize throws
  BatchOptions opts;
  opts.num_threads = 2;
  const BatchFactorizer batcher(factorizer_, opts);
  EXPECT_THROW((void)batcher.factorize_all(targets, {}),
               std::invalid_argument);
}

TEST_F(BatchTest, MultiObjectBatchesWork) {
  std::vector<tax::Scene> scenes;
  std::vector<hdc::Hypervector> targets;
  for (int i = 0; i < 16; ++i) {
    scenes.push_back(tax::random_scene(
        taxonomy_, rng_,
        {.num_objects = 2, .object = {}, .allow_duplicates = false}));
    targets.push_back(encoder_.encode_scene(scenes.back()));
  }
  FactorizeOptions fopts;
  fopts.multi_object = true;
  fopts.num_objects_hint = 2;
  BatchOptions bopts;
  bopts.num_threads = 4;
  const BatchFactorizer batcher(factorizer_, bopts);
  const auto results = batcher.factorize_all(targets, fopts);
  std::size_t ok = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    tax::Scene rec;
    for (const auto& o : results[i].objects) rec.push_back(o.to_object(3));
    if (tax::same_multiset(rec, scenes[i])) ++ok;
  }
  EXPECT_GE(ok, 14u);
}

TEST_F(BatchTest, ResultsIndependentOfThreadCount) {
  // Factorization is deterministic per target, so any thread count must
  // produce identical results in identical order.
  std::vector<hdc::Hypervector> targets;
  for (int i = 0; i < 24; ++i) {
    targets.push_back(
        encoder_.encode_object(tax::random_object(taxonomy_, rng_)));
  }
  std::vector<std::vector<tax::Object>> per_thread_count;
  for (const std::size_t threads : {1u, 2u, 5u}) {
    BatchOptions opts;
    opts.num_threads = threads;
    const BatchFactorizer batcher(factorizer_, opts);
    const auto results = batcher.factorize_all(targets, {});
    std::vector<tax::Object> decoded;
    for (const auto& r : results) decoded.push_back(r.objects[0].to_object(3));
    per_thread_count.push_back(std::move(decoded));
  }
  EXPECT_EQ(per_thread_count[0], per_thread_count[1]);
  EXPECT_EQ(per_thread_count[0], per_thread_count[2]);
}

TEST_F(BatchTest, SimilarityOpCountersStayConsistent) {
  // Concurrent counting through the atomic counters must equal the
  // sequential sum.
  std::vector<hdc::Hypervector> targets;
  for (int i = 0; i < 32; ++i) {
    targets.push_back(
        encoder_.encode_object(tax::random_object(taxonomy_, rng_)));
  }
  BatchOptions opts;
  opts.num_threads = 4;
  const BatchFactorizer batcher(factorizer_, opts);
  const auto results = batcher.factorize_all(targets, {});
  std::uint64_t total = 0;
  for (const auto& r : results) total += r.similarity_ops;
  // Rep 1 cost per target: F * (M + null) = 3 * 17.
  EXPECT_EQ(total, 32u * 3u * 17u);
}

}  // namespace
