// Unit tests for binary serialization (hdc/io.hpp, taxonomy/io.hpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/encoder.hpp"
#include "core/factorizer.hpp"
#include "hdc/io.hpp"
#include "hdc/random.hpp"
#include "taxonomy/generator.hpp"
#include "taxonomy/io.hpp"
#include "util/rng.hpp"

namespace {

using namespace factorhd;

TEST(HdcIo, HypervectorRoundTrip) {
  util::Xoshiro256 rng(1);
  for (const std::size_t d : {1u, 64u, 1000u}) {
    const hdc::Hypervector v = hdc::random_bipolar(d, rng);
    std::stringstream ss;
    hdc::save_hypervector(ss, v);
    EXPECT_EQ(hdc::load_hypervector(ss), v);
  }
}

TEST(HdcIo, HypervectorWithLargeComponents) {
  hdc::Hypervector v{1000000, -1000000, 0, 42};
  std::stringstream ss;
  hdc::save_hypervector(ss, v);
  EXPECT_EQ(hdc::load_hypervector(ss), v);
}

TEST(HdcIo, CodebookRoundTripPreservesNameAndItems) {
  util::Xoshiro256 rng(2);
  const hdc::Codebook cb(256, 8, rng, "colors/level1");
  std::stringstream ss;
  hdc::save_codebook(ss, cb);
  const hdc::Codebook loaded = hdc::load_codebook(ss);
  EXPECT_EQ(loaded.name(), "colors/level1");
  ASSERT_EQ(loaded.size(), cb.size());
  for (std::size_t j = 0; j < cb.size(); ++j) {
    EXPECT_EQ(loaded.item(j), cb.item(j));
  }
}

TEST(HdcIo, RejectsBadMagicAndTruncation) {
  std::stringstream empty;
  EXPECT_THROW((void)hdc::load_hypervector(empty), std::runtime_error);

  std::stringstream garbage("not a hypervector at all");
  EXPECT_THROW((void)hdc::load_hypervector(garbage), std::runtime_error);

  util::Xoshiro256 rng(3);
  std::stringstream ss;
  hdc::save_hypervector(ss, hdc::random_bipolar(128, rng));
  std::string bytes = ss.str();
  bytes.resize(bytes.size() / 2);  // truncate the body
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)hdc::load_hypervector(truncated), std::runtime_error);
}

TEST(HdcIo, EveryTruncationPointFailsCleanly) {
  // Fuzz-style check: a codebook blob cut at ANY byte boundary must raise
  // std::runtime_error from the loader — never crash, hang, or return a
  // partially-initialized codebook.
  util::Xoshiro256 rng(7);
  std::stringstream ss;
  hdc::save_codebook(ss, hdc::Codebook(16, 3, rng, "fuzz"));
  const std::string blob = ss.str();
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::stringstream truncated(blob.substr(0, cut));
    EXPECT_THROW((void)hdc::load_codebook(truncated), std::runtime_error)
        << "cut at byte " << cut;
  }
  // The full blob loads.
  std::stringstream whole(blob);
  EXPECT_EQ(hdc::load_codebook(whole).size(), 3u);
}

TEST(HdcIo, CorruptedMagicByteIsRejected) {
  util::Xoshiro256 rng(8);
  std::stringstream ss;
  hdc::save_hypervector(ss, hdc::random_bipolar(32, rng));
  std::string blob = ss.str();
  blob[0] ^= 0x5a;
  std::stringstream corrupted(blob);
  EXPECT_THROW((void)hdc::load_hypervector(corrupted), std::runtime_error);
}

TEST(HdcIo, ImplausibleDimensionIsRejectedBeforeAllocation) {
  // Header claiming a 2^40-component hypervector must be rejected by the
  // sanity bound, not by attempting a 4 TiB allocation.
  std::stringstream ss;
  const std::uint32_t magic = 0x31564846;
  const std::uint64_t absurd = 1ULL << 40;
  ss.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  ss.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  EXPECT_THROW((void)hdc::load_hypervector(ss), std::runtime_error);
}

TEST(HdcIo, OversizedCodebookNameLengthIsRejectedBeforeAllocation) {
  // A corrupt name_len header word used to be accepted up to 2^32, turning
  // 8 flipped bytes into a ~4 GiB string allocation before any read. The
  // bound is now 1 MiB: one byte past it must throw from the header check.
  util::Xoshiro256 rng(9);
  std::stringstream ss;
  hdc::save_codebook(ss, hdc::Codebook(32, 2, rng, "ok"));
  std::string blob = ss.str();
  const std::uint64_t absurd = (1ULL << 20) + 1;  // name_len at offset 12
  std::memcpy(blob.data() + 12, &absurd, sizeof(absurd));
  std::stringstream corrupted(blob);
  EXPECT_THROW((void)hdc::load_codebook(corrupted), std::runtime_error);
}

TEST(HdcIo, MixedDimensionCodebookIsRejectedWithIoError) {
  // Splice a 16-dim hypervector over the second item of a 32-dim codebook:
  // the loader must diagnose the dimension disagreement as a corrupt file
  // instead of deferring to a generic constructor error.
  util::Xoshiro256 rng(10);
  std::stringstream ss;
  hdc::save_codebook(ss, hdc::Codebook(32, 2, rng, ""));
  const std::string whole = ss.str();
  std::stringstream item;
  hdc::save_hypervector(item, hdc::random_bipolar(32, rng));
  const std::size_t item_bytes = item.str().size();
  std::stringstream spliced;
  spliced << whole.substr(0, whole.size() - item_bytes);
  hdc::save_hypervector(spliced, hdc::random_bipolar(16, rng));
  try {
    (void)hdc::load_codebook(spliced);
    FAIL() << "mixed-dim codebook loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("disagree on dimension"),
              std::string::npos)
        << e.what();
  }
}

TEST(TaxIo, TaxonomyRoundTrip) {
  const tax::Taxonomy uniform(3, {256, 10});
  const tax::Taxonomy hetero(
      std::vector<std::vector<std::size_t>>{{9}, {10}, {5, 6}});
  for (const tax::Taxonomy& t : {uniform, hetero}) {
    std::stringstream ss;
    tax::save_taxonomy(ss, t);
    EXPECT_EQ(tax::load_taxonomy(ss), t);
  }
}

TEST(TaxIo, CodebooksRoundTripPreservesFactorization) {
  util::Xoshiro256 rng(4);
  const tax::Taxonomy taxonomy(3, {8, 4});
  const tax::TaxonomyCodebooks books(taxonomy, 1024, rng);

  std::stringstream ss;
  tax::save_codebooks(ss, books);
  const tax::TaxonomyCodebooks loaded = tax::load_codebooks(ss);

  EXPECT_EQ(loaded.dim(), books.dim());
  EXPECT_EQ(loaded.null_hv(), books.null_hv());
  EXPECT_EQ(loaded.taxonomy(), books.taxonomy());
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(loaded.label(c), books.label(c));
    EXPECT_EQ(loaded.other_labels_key(c), books.other_labels_key(c));
  }

  // An HV encoded with the original material factorizes with the loaded one.
  const core::Encoder enc_orig(books);
  const core::Encoder enc_loaded(loaded);
  const core::Factorizer fact_loaded(enc_loaded);
  const tax::Object obj = tax::random_object(taxonomy, rng);
  const auto target = enc_orig.encode_object(obj);
  EXPECT_EQ(fact_loaded.factorize_single(target).to_object(3), obj);
}

TEST(TaxIo, CodebookSetEveryTruncationPointFailsCleanly) {
  // The model files the serving registry loads are full codebook sets; a
  // blob cut at ANY byte boundary must raise std::runtime_error from the
  // loader — never crash, hang, or yield a partially-initialized model.
  util::Xoshiro256 rng(11);
  const tax::Taxonomy taxonomy(2, {3, 2});
  const tax::TaxonomyCodebooks books(taxonomy, 32, rng);
  std::stringstream ss;
  tax::save_codebooks(ss, books);
  const std::string blob = ss.str();
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    std::stringstream truncated(blob.substr(0, cut));
    EXPECT_THROW((void)tax::load_codebooks(truncated), std::runtime_error)
        << "cut at byte " << cut;
  }
  std::stringstream whole(blob);
  EXPECT_EQ(tax::load_codebooks(whole).dim(), 32u);
}

TEST(TaxIo, FileRoundTrip) {
  util::Xoshiro256 rng(5);
  const tax::Taxonomy taxonomy(2, {4});
  const tax::TaxonomyCodebooks books(taxonomy, 128, rng);
  const std::string path = testing::TempDir() + "factorhd_model_test.bin";
  tax::save_codebooks_file(path, books);
  const tax::TaxonomyCodebooks loaded = tax::load_codebooks_file(path);
  EXPECT_EQ(loaded.null_hv(), books.null_hv());
  std::remove(path.c_str());
  EXPECT_THROW((void)tax::load_codebooks_file(path), std::runtime_error);
  EXPECT_THROW(tax::save_codebooks_file("/nonexistent_dir_xyz/m.bin", books),
               std::runtime_error);
}

TEST(TaxIo, FromPartsValidatesShapes) {
  util::Xoshiro256 rng(6);
  const tax::Taxonomy taxonomy(2, {4});
  const tax::TaxonomyCodebooks books(taxonomy, 128, rng);
  // Wrong class count.
  EXPECT_THROW(tax::TaxonomyCodebooks::from_parts(
                   taxonomy, hdc::random_bipolar(128, rng), {}),
               std::invalid_argument);
  // Wrong label dimension.
  std::vector<tax::ClassCodebooks> classes;
  for (std::size_t c = 0; c < 2; ++c) {
    tax::ClassCodebooks cc;
    cc.label = hdc::random_bipolar(64, rng);  // mismatched vs 128-dim NULL
    cc.levels.emplace_back(128, 4, rng);
    classes.push_back(std::move(cc));
  }
  EXPECT_THROW(tax::TaxonomyCodebooks::from_parts(
                   taxonomy, hdc::random_bipolar(128, rng), std::move(classes)),
               std::invalid_argument);
}

}  // namespace
