// service::Metrics: histogram bucket edges, per-stage digests, the
// Prometheus renderer, and — the TSan-gated part — merge/snapshot/reset
// under concurrent writers.
//
// The wait-free contract under test: recording never locks, snapshot() can
// run at any time while writers are live and must preserve the
// completed <= submitted ordering (release increments paired with
// downstream-first acquire reads), and a merge taken after all writers
// joined is exact — every event counted once.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "service/metrics.hpp"

namespace {

using factorhd::service::kNumStages;
using factorhd::service::Metrics;
using factorhd::service::MetricsSnapshot;
using factorhd::service::Stage;

/// The geometric midpoint metrics.cpp reports for bucket i, in us.
double bucket_midpoint_us(int i) {
  return std::ldexp(std::sqrt(2.0), i) / 1e3;
}

// ---------------------------------------------------------------------------
// bucket_of edges. Bucket i covers [2^i, 2^(i+1)) ns; the argument is us.

TEST(MetricsBucket, ZeroNegativeAndNaNLandInBucketZero) {
  EXPECT_EQ(Metrics::bucket_of(0.0), 0u);
  EXPECT_EQ(Metrics::bucket_of(-1.0), 0u);
  EXPECT_EQ(Metrics::bucket_of(std::numeric_limits<double>::quiet_NaN()), 0u);
  // Sub-nanosecond: 0.5 ns.
  EXPECT_EQ(Metrics::bucket_of(0.0005), 0u);
}

TEST(MetricsBucket, ExactPowersOfTwoNs) {
  // 1 ns -> bucket 0, and each doubling advances exactly one bucket.
  for (int i = 0; i < 40; ++i) {
    const double us = std::ldexp(1.0, i) / 1e3;  // 2^i ns in us
    EXPECT_EQ(Metrics::bucket_of(us), static_cast<std::size_t>(i))
        << "2^" << i << " ns";
  }
}

TEST(MetricsBucket, BucketBoundariesAreHalfOpen) {
  // 1023 ns is the last value of bucket 9; 1024 ns opens bucket 10.
  EXPECT_EQ(Metrics::bucket_of(1023.0 / 1e3), 9u);
  EXPECT_EQ(Metrics::bucket_of(1024.0 / 1e3), 10u);
  // 1 us = 1000 ns sits in [512, 1024) -> bucket 9.
  EXPECT_EQ(Metrics::bucket_of(1.0), 9u);
}

TEST(MetricsBucket, HugeLatenciesSaturateAtSixtyThree) {
  EXPECT_EQ(Metrics::bucket_of(1e18), 63u);
  EXPECT_EQ(Metrics::bucket_of(std::numeric_limits<double>::infinity()), 63u);
  EXPECT_EQ(Metrics::bucket_of(std::numeric_limits<double>::max()), 63u);
}

// ---------------------------------------------------------------------------
// Stage digests and renderers (single-threaded behavior).

TEST(MetricsStages, SingleSamplePerStageReportsItsBucketMidpoint) {
  Metrics m;
  // One 1 us sample (bucket 9) in every stage.
  for (std::size_t s = 0; s < kNumStages; ++s) {
    m.on_stage(static_cast<Stage>(s), 1.0);
  }
  const MetricsSnapshot snap = m.snapshot(0);
  for (std::size_t s = 0; s < kNumStages; ++s) {
    const auto& d = snap.stages[s];
    EXPECT_EQ(d.count, 1u) << to_string(static_cast<Stage>(s));
    EXPECT_DOUBLE_EQ(d.p50_us, bucket_midpoint_us(9));
    EXPECT_DOUBLE_EQ(d.p99_us, d.p50_us);
    EXPECT_DOUBLE_EQ(d.p999_us, d.p50_us);
    EXPECT_DOUBLE_EQ(d.sum_us, d.p50_us);
  }
}

TEST(MetricsStages, QuantilesAreMonotoneOnASpreadStream) {
  Metrics m;
  // 989 fast samples (~1 us), 9 at ~100 us, 2 at ~10 ms: the p50 rank lands
  // in the fast bucket, the p99 rank (990) in the 100 us bucket, and the
  // p99.9 rank (999) in the 10 ms bucket.
  for (int i = 0; i < 989; ++i) m.on_stage(Stage::kScan, 1.0);
  for (int i = 0; i < 9; ++i) m.on_stage(Stage::kScan, 100.0);
  m.on_stage(Stage::kScan, 10000.0);
  m.on_stage(Stage::kScan, 10000.0);
  const MetricsSnapshot snap = m.snapshot(0);
  const auto& d = snap.stages[static_cast<std::size_t>(Stage::kScan)];
  EXPECT_EQ(d.count, 1000u);
  EXPECT_LT(d.p50_us, d.p99_us);
  EXPECT_LT(d.p99_us, d.p999_us);
  EXPECT_GE(d.sum_us, d.p999_us);
}

TEST(MetricsStages, StageNamesAreStableSnakeCase) {
  EXPECT_STREQ(to_string(Stage::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(to_string(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(to_string(Stage::kBatchAssembly), "batch_assembly");
  EXPECT_STREQ(to_string(Stage::kScan), "scan");
  EXPECT_STREQ(to_string(Stage::kMerge), "merge");
}

TEST(MetricsStages, PrometheusRendererEmitsEveryFamily) {
  Metrics m;
  m.on_submitted();
  m.on_cache_miss();
  m.on_batch(1);
  m.on_stage(Stage::kScan, 3.0);
  m.on_completed(5.0);
  MetricsSnapshot snap = m.snapshot(2);
  snap.shard_rows_scanned = {100, 200};
  const std::string prom = snap.to_prometheus();
  for (const char* needle :
       {"# TYPE factorhd_requests_submitted_total counter",
        "factorhd_requests_submitted_total 1",
        "# TYPE factorhd_queue_depth gauge", "factorhd_queue_depth 2",
        "# TYPE factorhd_request_latency_us summary",
        "factorhd_request_latency_us{quantile=\"0.999\"}",
        "factorhd_request_latency_us_count 1",
        "factorhd_stage_latency_us{stage=\"scan\",quantile=\"0.5\"}",
        "factorhd_shard_rows_scanned_total{shard=\"0\"} 100",
        "factorhd_shard_rows_scanned_total{shard=\"1\"} 200"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
}

TEST(MetricsStages, ResetZeroesCountersAndHistograms) {
  Metrics m;
  m.on_submitted();
  m.on_cache_miss();
  m.on_stage(Stage::kMerge, 2.0);
  m.on_completed(4.0);
  m.reset();
  const MetricsSnapshot snap = m.snapshot(0);
  EXPECT_EQ(snap.submitted, 0u);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_EQ(snap.cache_misses, 0u);
  EXPECT_DOUBLE_EQ(snap.p50_latency_us, 0.0);
  for (const auto& d : snap.stages) EXPECT_EQ(d.count, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (runs under TSan via check.sh --tsan / the CI TSan job).

TEST(MetricsConcurrency, MergeAfterConcurrentWritersIsExact) {
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 5000;
  // One Metrics per writer, as the engine keeps one per dispatcher.
  std::vector<Metrics> per_writer(kWriters);
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&per_writer, w] {
      Metrics& m = per_writer[static_cast<std::size_t>(w)];
      for (int i = 0; i < kEventsPerWriter; ++i) {
        m.on_submitted();
        m.on_cache_miss();
        m.on_batch(2);
        m.on_stage(Stage::kQueueWait, 1.0 + static_cast<double>(i % 7));
        m.on_stage(Stage::kScan, 10.0);
        m.on_completed(static_cast<double>(1 + i % 100));
      }
    });
  }
  // Live merges while writers run: totals are transient but must never
  // violate completed <= submitted (downstream-first merge order).
  for (int probe = 0; probe < 50; ++probe) {
    Metrics agg;
    for (const Metrics& m : per_writer) agg.merge(m);
    const MetricsSnapshot snap = agg.snapshot(0);
    ASSERT_LE(snap.completed, snap.submitted);
    ASSERT_LE(snap.cache_hits + snap.cache_misses, snap.submitted);
  }
  for (std::thread& t : threads) t.join();
  // After the join, one more merge must be exact.
  Metrics agg;
  for (const Metrics& m : per_writer) agg.merge(m);
  const MetricsSnapshot snap = agg.snapshot(0);
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kWriters) * kEventsPerWriter;
  EXPECT_EQ(snap.submitted, kTotal);
  EXPECT_EQ(snap.completed, kTotal);
  EXPECT_EQ(snap.cache_misses, kTotal);
  EXPECT_EQ(snap.batches, kTotal);
  EXPECT_EQ(snap.batched_requests, 2 * kTotal);
  const auto& queue = snap.stages[static_cast<std::size_t>(Stage::kQueueWait)];
  const auto& scan = snap.stages[static_cast<std::size_t>(Stage::kScan)];
  EXPECT_EQ(queue.count, kTotal);
  EXPECT_EQ(scan.count, kTotal);
  EXPECT_DOUBLE_EQ(scan.p50_us, bucket_midpoint_us(13));  // 10 us -> bucket 13
}

TEST(MetricsConcurrency, SnapshotUnderPollerKeepsCompletedLeSubmitted) {
  Metrics m;
  std::atomic<bool> stop{false};
  std::thread writer([&m, &stop] {
    for (int i = 0; i < 20000 && !stop.load(std::memory_order_relaxed); ++i) {
      m.on_submitted();
      m.on_cache_miss();
      m.on_stage(Stage::kMerge, 2.0);
      m.on_completed(3.0);
    }
    stop.store(true, std::memory_order_relaxed);
  });
  while (!stop.load(std::memory_order_relaxed)) {
    const MetricsSnapshot snap = m.snapshot(0);
    ASSERT_LE(snap.completed, snap.submitted);
    ASSERT_LE(snap.cache_misses, snap.submitted);
  }
  writer.join();
  const MetricsSnapshot snap = m.snapshot(0);
  EXPECT_EQ(snap.submitted, 20000u);
  EXPECT_EQ(snap.completed, 20000u);
}

TEST(MetricsConcurrency, ResetDuringWritesNeverInvertsTheOrdering) {
  Metrics m;
  std::atomic<bool> stop{false};
  std::thread writer([&m, &stop] {
    for (int i = 0; i < 10000; ++i) {
      m.on_submitted();
      m.on_completed(1.0);
    }
    stop.store(true, std::memory_order_relaxed);
  });
  while (!stop.load(std::memory_order_relaxed)) {
    m.reset();
    const MetricsSnapshot snap = m.snapshot(0);
    // A request in flight across the reset may attribute its completion to
    // the new epoch (documented one-snapshot skew of at most the in-flight
    // count — here a single writer, so at most 1).
    ASSERT_LE(snap.completed, snap.submitted + 1);
  }
  writer.join();
}

}  // namespace
