// Table II reproduction: factorization accuracy of FactorHD integrated with
// the trained feature extractor (the ResNet-18 stand-in, DESIGN.md §4) on
// CIFAR-10-like and CIFAR-100-like datasets.
//
// Pipeline per image: network softmax -> probability-weighted bundle of
// FactorHD label encodings -> factorization -> predicted label. Reported:
//   * classifier top-1 accuracy (the ceiling; stands in for ResNet-18's
//     95.x% / 7x%),
//   * factorization accuracy vs HV dimension (accuracy loss should be a few
//     percent and shrink with D),
//   * CIFAR-100: coarse-only partial factorization vs full fine,
//   * bundled-input superposition (1/2/4 images per HV).
#include <cmath>
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "data/cifar_like.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

struct Pipeline {
  data::CifarLikeSpec spec;
  data::CifarLike ds;
  nn::Mlp net;
  nn::Matrix probs;  // softmax over the test set
  double classifier_accuracy = 0.0;

  Pipeline(const data::CifarLikeSpec& s, std::size_t hidden,
           std::size_t epochs, util::Xoshiro256& rng)
      : spec(s), ds(data::make_cifar_like(s, rng)),
        net({s.feature_dim, hidden, s.num_coarse * s.fine_per_coarse}, rng) {
    nn::TrainOptions topts;
    topts.epochs = epochs;
    (void)nn::train(net, ds.train, topts);
    classifier_accuracy = nn::evaluate_accuracy(net, ds.test);
    std::vector<std::size_t> rows(ds.test.size());
    std::iota(rows.begin(), rows.end(), std::size_t{0});
    nn::Matrix logits = net.forward(nn::gather_rows(ds.test.features, rows));
    probs = nn::Mlp::softmax(logits);
  }

  /// The library's soft label encoder over this spec's label objects.
  [[nodiscard]] core::SoftLabelEncoder make_soft_encoder(
      const core::Encoder& encoder) const {
    std::vector<tax::Object> labels;
    const std::size_t classes = spec.num_coarse * spec.fine_per_coarse;
    labels.reserve(classes);
    for (std::size_t c = 0; c < classes; ++c) {
      labels.push_back(data::label_object(spec, static_cast<int>(c)));
    }
    return core::SoftLabelEncoder(encoder, std::move(labels));
  }

  /// Softmax-weighted label-HV bundle for test image `row`.
  hdc::Hypervector image_hv(std::size_t row,
                            const core::SoftLabelEncoder& soft) const {
    return soft.encode(probs.row(row));
  }
};

void single_image_sweep(const Pipeline& pipe, const char* name,
                        const std::vector<std::size_t>& dims,
                        std::uint64_t seed) {
  std::cout << "\n" << name << ": classifier top-1 "
            << util::fmt_percent(pipe.classifier_accuracy)
            << " (the neural ceiling)\n";
  const bool hierarchical = pipe.spec.fine_per_coarse > 1;
  util::TextTable table(hierarchical
                            ? std::vector<std::string>{"D", "fine acc",
                                                       "coarse acc",
                                                       "acc loss vs NN"}
                            : std::vector<std::string>{"D", "factorization acc",
                                                       "acc loss vs NN"});
  for (const std::size_t dim : dims) {
    util::Xoshiro256 rng(seed + dim);
    const tax::Taxonomy taxonomy = data::label_taxonomy(pipe.spec);
    const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
    const core::Encoder encoder(books);
    const core::Factorizer factorizer(encoder);
    const core::SoftLabelEncoder soft = pipe.make_soft_encoder(encoder);

    std::size_t fine_ok = 0, coarse_ok = 0;
    for (std::size_t i = 0; i < pipe.ds.test.size(); ++i) {
      const hdc::Hypervector hv = pipe.image_hv(i, soft);
      const auto got = factorizer.factorize_single(hv);
      const int truth = pipe.ds.test.labels[i];
      const auto& label_class = got.classes[0];
      if (!label_class.present) continue;
      if (hierarchical) {
        if (label_class.path.size() >= 1 &&
            label_class.path[0] ==
                static_cast<std::size_t>(pipe.ds.coarse_of(truth))) {
          ++coarse_ok;
        }
        if (label_class.path.size() == 2 &&
            label_class.path[1] == static_cast<std::size_t>(truth)) {
          ++fine_ok;
        }
      } else if (label_class.path[0] == static_cast<std::size_t>(truth)) {
        ++fine_ok;
      }
    }
    const double n = static_cast<double>(pipe.ds.test.size());
    const double fine_acc = static_cast<double>(fine_ok) / n;
    if (hierarchical) {
      table.add_row({std::to_string(dim), util::fmt_percent(fine_acc),
                     util::fmt_percent(static_cast<double>(coarse_ok) / n),
                     util::fmt_percent(pipe.classifier_accuracy - fine_acc)});
    } else {
      table.add_row({std::to_string(dim), util::fmt_percent(fine_acc),
                     util::fmt_percent(pipe.classifier_accuracy - fine_acc)});
    }
  }
  table.print(std::cout);
}

void superposition_sweep(const Pipeline& pipe, std::size_t dim,
                         std::uint64_t seed) {
  std::cout << "\nBundled image inputs (superposition) at D = " << dim
            << ": per-label recovery\n";
  util::TextTable table({"bundled images", "label recovery"});
  util::Xoshiro256 rng(seed + 999);
  const tax::Taxonomy taxonomy = data::label_taxonomy(pipe.spec);
  const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);
  const core::SoftLabelEncoder soft = pipe.make_soft_encoder(encoder);
  const std::size_t batches = trials_or_default(40, 256);

  for (const std::size_t k : {1u, 2u, 4u}) {
    std::size_t correct = 0, total = 0;
    util::Xoshiro256 pick(seed + k);
    for (std::size_t b = 0; b < batches; ++b) {
      std::vector<std::size_t> chosen;
      std::vector<int> labels;
      while (chosen.size() < k) {
        const std::size_t r = pick.uniform(pipe.ds.test.size());
        const int label = pipe.ds.test.labels[r];
        bool dup = false;
        for (int l : labels) dup = dup || l == label;
        if (!dup) {
          chosen.push_back(r);
          labels.push_back(label);
        }
      }
      hdc::Hypervector bundle_hv(dim);
      for (const std::size_t r : chosen) {
        hdc::accumulate(bundle_hv, pipe.image_hv(r, soft));
      }
      // Undo the analog scaling so Eq. 2's threshold scale applies.
      soft.normalize_scale(bundle_hv);
      core::FactorizeOptions opts;
      opts.multi_object = k > 1;
      opts.num_objects_hint = k;
      opts.max_objects = k + 2;
      const auto result = factorizer.factorize(bundle_hv, opts);
      for (const int label : labels) {
        ++total;
        for (const auto& o : result.objects) {
          const auto& lc = o.classes[0];
          if (lc.present && !lc.path.empty() &&
              lc.path.back() == static_cast<std::size_t>(label)) {
            ++correct;
            break;
          }
        }
      }
    }
    table.add_row({std::to_string(k),
                   util::fmt_percent(static_cast<double>(correct) /
                                     static_cast<double>(total))});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Table II reproduction: FactorHD + trained feature extractor\n"
            << "on CIFAR-10-like / CIFAR-100-like data\n"
            << "==============================================================\n";
  const std::uint64_t seed = util::experiment_seed();
  const bool full = util::bench_full_scale();
  util::Xoshiro256 rng(seed);

  {
    data::CifarLikeSpec spec = data::cifar10_like_spec();
    spec.train_per_class = full ? 256 : 96;
    spec.test_per_class = full ? 100 : 48;
    const Pipeline pipe(spec, /*hidden=*/64, /*epochs=*/full ? 40 : 20, rng);
    single_image_sweep(pipe, "CIFAR-10-like", {128, 256, 512}, seed);
    superposition_sweep(pipe, /*dim=*/full ? 4096 : 2048, seed);
  }
  {
    data::CifarLikeSpec spec = data::cifar100_like_spec();
    spec.train_per_class = full ? 128 : 48;
    spec.test_per_class = full ? 50 : 16;
    const Pipeline pipe(spec, /*hidden=*/96, /*epochs=*/full ? 40 : 20, rng);
    single_image_sweep(pipe, "CIFAR-100-like (coarse/fine)", {256, 512, 1024},
                       seed);
  }
  std::cout << "\nExpected shape: factorization accuracy within a few percent\n"
               "of the classifier ceiling, loss shrinking as D grows; coarse\n"
               "factorization above fine; superposition degrades gracefully\n"
               "with the number of bundled images.\n";
  return 0;
}
