// Encoding ablation (DESIGN.md §3): why the bundling-binding-bundling form's
// two distinctive ingredients are load-bearing.
//
//   1. The redundant class label ("memorization clause"): without it,
//      label-based unbinding has nothing to grab — the encoding degenerates
//      to a C-C product and the one-pass factorization collapses.
//   2. The ternary clip of single-object clauses: disabling it keeps the
//      algebra intact (accuracy holds) but abandons the 2-bit storage class
//      the fair-comparison rule relies on (component magnitudes grow).
#include <iostream>

#include "common.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

struct AblationPoint {
  double accuracy = 0.0;
  int max_component = 0;
};

AblationPoint run(std::size_t dim, const core::EncodeOptions& enc_opts,
                  std::size_t trials, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy(3, {32});
  const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
  const core::Encoder encoder(books, enc_opts);
  const core::Factorizer factorizer(encoder);
  AblationPoint out;
  std::size_t correct = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const tax::Object obj = tax::random_object(taxonomy, rng);
    const hdc::Hypervector target = encoder.encode_object(obj);
    out.max_component =
        std::max(out.max_component, static_cast<int>(target.max_abs()));
    if (factorizer.factorize_single(target).to_object(3) == obj) ++correct;
  }
  out.accuracy = static_cast<double>(correct) / static_cast<double>(trials);
  return out;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Ablation: FactorHD encoding ingredients (Rep 1, F=3, M=32)\n"
            << "==============================================================\n";
  const std::size_t trials = trials_or_default(64, 512);
  const std::uint64_t seed = factorhd::util::experiment_seed();

  util::TextTable table({"D", "full encoding", "no class label",
                         "no ternary clip", "max |component| (no clip)"});
  for (const std::size_t dim : {128u, 256u, 512u, 1024u}) {
    const AblationPoint full = run(dim, {}, trials, seed);
    const AblationPoint no_label =
        run(dim, {.include_labels = false, .clip_ternary = true}, trials,
            seed + 1);
    const AblationPoint no_clip =
        run(dim, {.include_labels = true, .clip_ternary = false}, trials,
            seed + 2);
    table.add_row({std::to_string(dim), util::fmt_percent(full.accuracy),
                   util::fmt_percent(no_label.accuracy),
                   util::fmt_percent(no_clip.accuracy),
                   std::to_string(no_clip.max_component)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: dropping the label destroys one-pass\n"
               "factorization (near-chance accuracy); dropping the clip\n"
               "preserves accuracy but leaves the 2-bit ternary storage\n"
               "class (components grow beyond {-1,0,1}).\n";
  return 0;
}
