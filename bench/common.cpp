#include "common.hpp"

namespace factorhd::bench {

std::size_t trials_or_default(std::size_t reduced, std::size_t full) {
  const std::int64_t forced = util::env_int("FACTORHD_TRIALS", 0);
  if (forced > 0) return static_cast<std::size_t>(forced);
  return util::bench_full_scale() ? full : reduced;
}

Measurement factorhd_rep1(std::size_t dim, std::size_t num_factors,
                          std::size_t codebook_size, std::size_t trials,
                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy(num_factors, {codebook_size});
  const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  Measurement m;
  m.trials = trials;
  std::vector<double> times;
  times.reserve(trials);
  std::size_t correct = 0;
  double ops = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const tax::Object obj = tax::random_object(taxonomy, rng);
    const hdc::Hypervector target = encoder.encode_object(obj);
    util::Stopwatch sw;
    const core::FactorizeResult r = factorizer.factorize(target, {});
    times.push_back(sw.elapsed_us());
    if (r.objects[0].to_object(num_factors) == obj) ++correct;
    ops += static_cast<double>(r.similarity_ops);
  }
  m.accuracy = static_cast<double>(correct) / static_cast<double>(trials);
  const util::Summary s = util::summarize(times);
  m.mean_time_us = s.mean;
  m.median_time_us = util::median(times);
  m.mean_similarity_ops = ops / static_cast<double>(trials);
  m.mean_iterations = 1.0;
  return m;
}

Measurement resonator_rep1(std::size_t dim, std::size_t num_factors,
                           std::size_t codebook_size, std::size_t trials,
                           std::size_t max_iterations, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const baselines::CCModel model(dim, num_factors, codebook_size, rng);
  baselines::ResonatorOptions opts;
  opts.max_iterations = max_iterations;
  const baselines::ResonatorNetwork net(model, opts);

  Measurement m;
  m.trials = trials;
  std::vector<double> times;
  times.reserve(trials);
  std::size_t correct = 0;
  double ops = 0.0, iters = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<std::size_t> truth(num_factors);
    for (auto& idx : truth) idx = rng.uniform(codebook_size);
    const hdc::Hypervector target = model.encode(truth);
    util::Stopwatch sw;
    const baselines::ResonatorResult r = net.factorize(target);
    times.push_back(sw.elapsed_us());
    if (r.converged && r.factors == truth) ++correct;
    ops += static_cast<double>(r.similarity_ops);
    iters += static_cast<double>(r.iterations);
  }
  m.accuracy = static_cast<double>(correct) / static_cast<double>(trials);
  m.mean_time_us = util::summarize(times).mean;
  m.median_time_us = util::median(times);
  m.mean_similarity_ops = ops / static_cast<double>(trials);
  m.mean_iterations = iters / static_cast<double>(trials);
  return m;
}

Measurement imc_rep1(std::size_t dim, std::size_t num_factors,
                     std::size_t codebook_size, std::size_t trials,
                     std::size_t max_iterations, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const baselines::CCModel model(dim, num_factors, codebook_size, rng);
  baselines::ImcOptions opts;
  opts.max_iterations = max_iterations;
  opts.seed = seed ^ 0xabcdef1234567890ULL;

  Measurement m;
  m.trials = trials;
  std::vector<double> times;
  times.reserve(trials);
  std::size_t correct = 0;
  double ops = 0.0, iters = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    baselines::ImcOptions trial_opts = opts;
    trial_opts.seed = opts.seed + t;
    const baselines::ImcFactorizer imc(model, trial_opts);
    std::vector<std::size_t> truth(num_factors);
    for (auto& idx : truth) idx = rng.uniform(codebook_size);
    const hdc::Hypervector target = model.encode(truth);
    util::Stopwatch sw;
    const baselines::ImcResult r = imc.factorize(target);
    times.push_back(sw.elapsed_us());
    if (r.converged && r.factors == truth) ++correct;
    ops += static_cast<double>(r.similarity_ops);
    iters += static_cast<double>(r.iterations);
  }
  m.accuracy = static_cast<double>(correct) / static_cast<double>(trials);
  m.mean_time_us = util::summarize(times).mean;
  m.median_time_us = util::median(times);
  m.mean_similarity_ops = ops / static_cast<double>(trials);
  m.mean_iterations = iters / static_cast<double>(trials);
  return m;
}

Measurement factorhd_rep3(std::size_t dim, std::size_t num_factors,
                          const std::vector<std::size_t>& branching,
                          std::size_t num_objects, double threshold,
                          std::size_t trials, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy(num_factors, branching);
  const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  Measurement m;
  m.trials = trials;
  std::vector<double> times;
  times.reserve(trials);
  std::size_t correct = 0;
  double ops = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const tax::Scene scene = tax::random_scene(
        taxonomy, rng,
        {.num_objects = num_objects, .object = {}, .allow_duplicates = false});
    const hdc::Hypervector target = encoder.encode_scene(scene);
    core::FactorizeOptions opts;
    opts.multi_object = true;
    opts.threshold = threshold;
    opts.num_objects_hint = num_objects;
    opts.max_objects = num_objects + 2;
    util::Stopwatch sw;
    const core::FactorizeResult r = factorizer.factorize(target, opts);
    times.push_back(sw.elapsed_us());
    tax::Scene recovered;
    recovered.reserve(r.objects.size());
    for (const auto& o : r.objects) {
      recovered.push_back(o.to_object(num_factors));
    }
    if (tax::same_multiset(recovered, scene)) ++correct;
    ops += static_cast<double>(r.similarity_ops);
  }
  m.accuracy = static_cast<double>(correct) / static_cast<double>(trials);
  m.mean_time_us = util::summarize(times).mean;
  m.median_time_us = util::median(times);
  m.mean_similarity_ops = ops / static_cast<double>(trials);
  m.mean_iterations = 1.0;
  return m;
}

std::string maybe_csv_path(const std::string& name) {
  const std::string dir = util::env_string("FACTORHD_CSV_DIR", "");
  if (dir.empty()) return {};
  return dir + "/" + name + ".csv";
}

}  // namespace factorhd::bench
