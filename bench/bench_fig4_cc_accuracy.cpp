// Fig. 4(a) and 4(c): factorization accuracy of FactorHD vs the C-C model
// baselines (resonator network, IMC stochastic factorizer) as the problem
// size M^F scales, at the paper's dimensions (F=3: D=1500, F=4: D=2000;
// FactorHD runs at D/2 for storage parity, §IV-A).
//
// Expected shape (paper): FactorHD stays >= 99% flat; the resonator network
// collapses around problem size 1e6; the IMC factorizer survives much
// further at the cost of thousands of iterations.
#include <cmath>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "hdc/packed.hpp"
#include "util/csv.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

void run_family(std::size_t num_factors, std::size_t bipolar_dim,
                const std::vector<std::size_t>& m_values) {
  const std::size_t trials = trials_or_default(24, 256);
  const std::size_t reso_iters = util::bench_full_scale() ? 500 : 200;
  const std::size_t imc_iters = util::bench_full_scale() ? 3000 : 400;
  const std::uint64_t seed = util::experiment_seed();

  std::cout << "\n--- F = " << num_factors << ", baseline D = " << bipolar_dim
            << ", FactorHD D = " << hdc::fair_ternary_dim(bipolar_dim)
            << " (equal storage), " << trials << " trials/point ---\n";
  util::TextTable table({"M", "problem size", "FactorHD acc", "Resonator acc",
                         "IMC acc", "Reso iters", "IMC iters"});
  // Optional raw-data dump for offline re-plotting (FACTORHD_CSV_DIR).
  std::unique_ptr<util::CsvWriter> csv;
  const std::string csv_path =
      maybe_csv_path("fig4_accuracy_f" + std::to_string(num_factors));
  if (!csv_path.empty()) {
    csv = std::make_unique<util::CsvWriter>(csv_path);
    if (csv->ok()) {
      csv->write_row({"m", "problem_size", "factorhd_acc", "resonator_acc",
                      "imc_acc", "resonator_iters", "imc_iters"});
    }
  }
  for (const std::size_t m : m_values) {
    const double size = std::pow(static_cast<double>(m),
                                 static_cast<double>(num_factors));
    const Measurement fhd = factorhd_rep1(
        hdc::fair_ternary_dim(bipolar_dim), num_factors, m, trials, seed);
    const Measurement reso = resonator_rep1(bipolar_dim, num_factors, m,
                                            trials, reso_iters, seed + 1);
    const Measurement imc =
        imc_rep1(bipolar_dim, num_factors, m, trials, imc_iters, seed + 2);
    table.add_row({std::to_string(m), util::fmt_sci(size),
                   util::fmt_percent(fhd.accuracy),
                   util::fmt_percent(reso.accuracy),
                   util::fmt_percent(imc.accuracy),
                   util::fmt_double(reso.mean_iterations, 1),
                   util::fmt_double(imc.mean_iterations, 1)});
    if (csv && csv->ok()) {
      csv->write_row({std::to_string(m), util::fmt_double(size, 0),
                      util::fmt_double(fhd.accuracy, 6),
                      util::fmt_double(reso.accuracy, 6),
                      util::fmt_double(imc.accuracy, 6),
                      util::fmt_double(reso.mean_iterations, 2),
                      util::fmt_double(imc.mean_iterations, 2)});
    }
  }
  table.print(std::cout);
  if (!csv_path.empty()) std::cout << "(raw data: " << csv_path << ")\n";
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Fig. 4(a,c) reproduction: Rep 1 factorization accuracy,\n"
            << "FactorHD vs C-C baselines, scaling problem size M^F\n"
            << "==============================================================\n";
  if (factorhd::util::bench_full_scale()) {
    run_family(3, 1500, {10, 22, 46, 100, 215, 464});
    run_family(4, 2000, {6, 10, 18, 32, 56, 100});
  } else {
    run_family(3, 1500, {10, 22, 46, 100});
    run_family(4, 2000, {6, 10, 18, 32});
  }
  std::cout << "\nExpected shape: FactorHD flat >=99%; resonator collapses as\n"
               "M^F approaches ~1e6; IMC degrades later but needs orders of\n"
               "magnitude more iterations.\n";
  return 0;
}
