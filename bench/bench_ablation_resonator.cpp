// Baseline ablation: resonator network design variants.
//
// The Fig. 4 comparisons use the strongest common configuration (sequential
// update, codebook-span projection). This bench shows the alternatives so
// the baseline cannot be accused of being a strawman: hardmax cleanup
// (greedy coordinate descent) plateaus earlier, synchronous updates converge
// slower — both documented effects from the resonator literature.
#include <cmath>
#include <iostream>

#include "common.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;
using baselines::CCModel;
using baselines::ResonatorNetwork;
using baselines::ResonatorOptions;

struct VariantResult {
  double accuracy = 0.0;
  double mean_iterations = 0.0;
};

VariantResult run(const ResonatorOptions& opts, std::size_t m,
                  std::size_t trials, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const CCModel model(1500, 3, m, rng);
  const ResonatorNetwork net(model, opts);
  VariantResult out;
  std::size_t correct = 0;
  double iters = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<std::size_t> truth{rng.uniform(m), rng.uniform(m),
                                   rng.uniform(m)};
    const auto r = net.factorize(model.encode(truth));
    if (r.converged && r.factors == truth) ++correct;
    iters += static_cast<double>(r.iterations);
  }
  out.accuracy = static_cast<double>(correct) / static_cast<double>(trials);
  out.mean_iterations = iters / static_cast<double>(trials);
  return out;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Ablation: resonator network variants (F=3, D=1500)\n"
            << "==============================================================\n";
  const std::size_t trials = trials_or_default(16, 128);
  const std::uint64_t seed = util::experiment_seed();

  const struct {
    const char* name;
    ResonatorOptions opts;
  } variants[] = {
      {"sequential + projection (Fig. 4 baseline)", {}},
      {"synchronous + projection",
       {.max_iterations = 500,
        .update = ResonatorOptions::Update::kSynchronous,
        .cleanup = ResonatorOptions::Cleanup::kProjection}},
      {"sequential + hardmax",
       {.max_iterations = 500,
        .update = ResonatorOptions::Update::kSequential,
        .cleanup = ResonatorOptions::Cleanup::kHardmax}},
  };

  for (const auto& v : variants) {
    std::cout << "\n" << v.name << " (" << trials << " trials/point)\n";
    util::TextTable table({"M", "problem size", "accuracy", "mean iters"});
    for (const std::size_t m : {10u, 22u, 46u, 100u}) {
      const VariantResult r = run(v.opts, m, trials, seed);
      table.add_row({std::to_string(m),
                     util::fmt_sci(std::pow(static_cast<double>(m), 3.0)),
                     util::fmt_percent(r.accuracy),
                     util::fmt_double(r.mean_iterations, 1)});
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: the Fig. 4 baseline configuration dominates\n"
               "or matches the alternatives everywhere, confirming the\n"
               "comparison in bench_fig4_* is against the strongest variant.\n";
  return 0;
}
