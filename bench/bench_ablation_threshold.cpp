// Threshold sensitivity ablation: Rep-3 factorization accuracy as TH moves
// across its operating range, with the Eq. 2 prediction marked. Complements
// Fig. 3 (which reports only the argmax of this curve) by showing the width
// of the usable plateau — the paper's claim that "values near TH*, though
// not optimal, also yield high factorization accuracy".
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/threshold.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Ablation: accuracy vs threshold TH (Rep 3, N=2, F=3, M=10)\n"
            << "==============================================================\n";
  const std::size_t trials = trials_or_default(32, 256);
  const std::uint64_t seed = util::experiment_seed();

  for (const std::size_t dim : {1000u, 2000u}) {
    core::ThresholdProblem p;
    p.num_objects = 2;
    p.num_classes = 3;
    p.dim = dim;
    p.codebook_size = 10;
    const double predicted = core::predicted_threshold(p);
    std::cout << "\nD = " << dim << " (Eq. 2 predicts TH* = "
              << util::fmt_double(predicted, 3) << ")\n";
    util::TextTable table({"TH", "accuracy", "note"});
    for (double th = 0.02; th <= 0.201; th += 0.02) {
      const Measurement m =
          factorhd_rep3(dim, 3, {10}, 2, th, trials, seed);
      const bool near = std::abs(th - predicted) < 0.011;
      table.add_row({util::fmt_double(th, 2), util::fmt_percent(m.accuracy),
                     near ? "<- nearest to Eq. 2" : ""});
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: a wide high-accuracy plateau containing the\n"
               "Eq. 2 prediction; too-low TH admits ghost combinations,\n"
               "too-high TH rejects true objects.\n";
  return 0;
}
