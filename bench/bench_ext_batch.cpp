// Extension bench: multi-threaded batch factorization throughput — the CPU
// counterpart of the paper's batch-512 GPU trials (core/batch.hpp).
#include <iostream>
#include <thread>

#include "common.hpp"
#include "core/batch.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Extension: batch factorization throughput vs thread count\n"
            << "(Rep 1, F=3, M=256, D=750, batch of 512 targets)\n"
            << "==============================================================\n";
  const std::uint64_t seed = util::experiment_seed();
  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy(3, {256});
  const tax::TaxonomyCodebooks books(taxonomy, 750, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  const std::size_t batch = util::bench_full_scale() ? 2048 : 512;
  std::vector<tax::Object> truth;
  std::vector<hdc::Hypervector> targets;
  truth.reserve(batch);
  targets.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    truth.push_back(tax::random_object(taxonomy, rng));
    targets.push_back(encoder.encode_object(truth.back()));
  }

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "hardware threads: " << hw << "\n\n";
  util::TextTable table(
      {"threads", "wall time", "objects/s", "speedup", "accuracy"});
  double t1 = 0.0;
  for (std::size_t threads = 1; threads <= hw; threads *= 2) {
    core::BatchOptions bopts;
    bopts.num_threads = threads;
    const core::BatchFactorizer batcher(factorizer, bopts);
    util::Stopwatch sw;
    const auto results = batcher.factorize_all(targets, {});
    const double elapsed = sw.elapsed_seconds();
    if (threads == 1) t1 = elapsed;
    std::size_t ok = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      if (results[i].objects[0].to_object(3) == truth[i]) ++ok;
    }
    table.add_row(
        {std::to_string(threads), util::fmt_time_us(elapsed * 1e6),
         util::fmt_double(static_cast<double>(batch) / elapsed, 0),
         util::fmt_double(t1 / elapsed, 2) + "x",
         util::fmt_percent(static_cast<double>(ok) /
                           static_cast<double>(batch))});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: near-linear scaling while cores last;\n"
               "accuracy identical at every thread count (factorization is\n"
               "deterministic and side-effect-free).\n";
  return 0;
}
