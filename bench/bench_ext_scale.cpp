// Extension bench: tiered (two-stage) codebook scanning at scale — the
// M-sweep behind the "million-item memories" ROADMAP claim.
//
// For each codebook size M the sweep builds one random bipolar codebook,
// packs it (hdc/kernels/PackedItemMemory), builds the tiered index
// (hdc/kernels/TieredItemMemory, auto configuration: K ≈ 4·sqrt(M) coarse
// buckets, nprobe = K/16), and measures noisy cleanup queries — codebook
// rows with a 2% bit-flip — both ways:
//
//   exact    PackedItemMemory::best   (every row, the PR 2-3 kernels)
//   tiered   TieredItemMemory::best   (centroid scan -> top-nprobe buckets
//                                      -> exact scan of survivors)
//
// reporting per-query wall time, the speedup, recall@1 (tiered argmax ==
// exact argmax), and the similarity-measurement counts (the paper's
// efficiency unit). The acceptance row (ISSUE 5): at M = 262144, tiered
// must be >= 5x faster than exact at recall@1 >= 0.99.
//
// Since ISSUE 6 each point also measures the *build* both ways — the
// default screened/threaded assignment vs the single-threaded exhaustive
// reference (`TieredConfig::exhaustive_build`, skipped above the headline
// M to bound wall time) — and round-trips the built index through an FTS1
// snapshot file (hdc/kernels/tiered_snapshot.hpp), recording the load
// time. Acceptance (ISSUE 6): build_speedup >= 4x at M = 262144 and a
// sub-second snapshot load at the largest M.
//
// Since ISSUE 7 each point also re-views the built clustering through the
// adaptive-probing adoption ctor (floor = auto nprobe/8, ceiling =
// nprobe/2) and measures the adaptive scan's recall@1 plus the mean
// buckets actually probed per query — the centroid-score margin rule
// stopping early on confident queries. Acceptance (ISSUE 7): at
// M = 262144, adaptive recall@1 >= 0.99 with mean probes <= 0.5 * K/16.
//
// Since ISSUE 8 each point also sweeps the scatter-gather partition
// (hdc/kernels/ShardedItemMemory) over shard counts {1, 2, 4}: the packed
// rows are partitioned into contiguous range shards, each shard gets its
// own auto-configured tier, and the merged scan is measured against the
// same queries (speedup is vs the exact full scan — the same baseline as
// every other `speedup` field). The 4-shard point also round-trips the
// per-shard indexes through FTS1 shard files (save/load_sharded_index).
// Acceptance (ISSUE 8): sharded aggregate scan throughput >= 3x the exact
// scan at 4 shards and the largest M.
//
// `--json FILE` additionally writes the machine-readable sweep in the
// factorhd.bench_scale.v4 schema (validated by scripts/bench_json.py
// --check; the committed baseline is BENCH_scale.json). `--smoke` runs a
// tiny configuration and re-verifies the nprobe=all bound — a
// full-coverage tiered index must be bit-identical to PackedItemMemory on
// best/above/top_k — plus the sharding bound — an exact sharded memory
// must be bit-identical to PackedItemMemory at every shard count —
// exiting 1 on any mismatch (the CI hook).
//
// FACTORHD_BENCH_SCALE=full extends the sweep to M = 1048576;
// FACTORHD_TRIALS overrides the query count; FACTORHD_SEED the seed.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/sharded_item_memory.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/kernels/tiered_snapshot.hpp"
#include "hdc/random.hpp"

namespace {

using namespace factorhd;
using hdc::kernels::PackedItemMemory;
using hdc::kernels::PackedQuery;
using hdc::kernels::ShardedConfig;
using hdc::kernels::ShardedItemMemory;
using hdc::kernels::TieredConfig;
using hdc::kernels::TieredItemMemory;

// The acceptance-criterion codebook size; also the repeat normalizer so
// every sweep point spends comparable wall time.
constexpr std::size_t kHeadlineM = 262144;

/// One shard count of a point's scatter-gather sweep.
struct ShardPoint {
  std::size_t shards = 0;
  double build_seconds = 0.0;  ///< per-shard tier builds, total
  double sharded_us = 0.0;     ///< per query, merged scan
  double speedup = 0.0;        ///< exact_us / sharded_us (full-scan baseline)
  double recall = 0.0;         ///< merged argmax == exact argmax
  std::uint64_t sim_ops = 0;   ///< mean similarity measurements per query
};

struct PointResult {
  std::size_t m = 0;
  std::size_t clusters = 0;
  std::size_t nprobe = 0;
  double build_seconds = 0.0;      ///< default (screened, pooled) build
  double build_ref_seconds = 0.0;  ///< exhaustive 1-thread build; 0 = skipped
  double build_speedup = 0.0;      ///< ref / default; 0 when ref skipped
  double snap_load_seconds = 0.0;  ///< FTS1 file round-trip load (mmap)
  double exact_us = 0.0;           ///< per query
  double tiered_us = 0.0;          ///< per query
  double speedup = 0.0;
  double recall = 0.0;
  std::uint64_t exact_ops = 0;   ///< similarity measurements per query
  std::uint64_t tiered_ops = 0;  ///< mean, rounded
  std::size_t adaptive_min = 0;  ///< adaptive probing floor (resolved)
  std::size_t adaptive_max = 0;  ///< adaptive probing ceiling (resolved)
  double mean_probes = 0.0;      ///< mean buckets probed by the adaptive scan
  double adaptive_recall = 0.0;  ///< adaptive recall@1 vs the exact argmax
  std::vector<ShardPoint> shard_sweep;  ///< scatter-gather shard counts
};

PointResult run_point(std::size_t m, std::size_t dim, std::size_t queries,
                      double flip, std::uint64_t seed) {
  util::Xoshiro256 rng(seed + m);
  PointResult r;
  r.m = m;

  // Generate, pack, and derive the query set inside one scope so the int32
  // codebook (the dominant transient: M * D * 4 bytes) is freed before the
  // timed scans; both memories own their planes.
  std::shared_ptr<const PackedItemMemory> packed;
  std::vector<PackedQuery> qs;
  qs.reserve(queries);
  {
    const hdc::Codebook cb(dim, m, rng);
    packed = std::make_shared<const PackedItemMemory>(cb);
    for (std::size_t i = 0; i < queries; ++i) {
      const hdc::Hypervector q =
          hdc::flip_noise(cb.item(rng.uniform(m)), flip, rng);
      qs.push_back(*PackedQuery::pack(q, packed->simd_level()));
    }
  }

  util::Stopwatch build_sw;
  const TieredItemMemory tiered(packed, TieredConfig{});
  r.build_seconds = build_sw.elapsed_ms() / 1e3;
  r.clusters = tiered.clusters();
  r.nprobe = tiered.nprobe();

  // The build is deterministic, so repeated builds do identical work; the
  // min over a second repetition discards transient host noise (the same
  // rationale as min-over-trials query timing). Only worth the time at
  // the acceptance-relevant sizes.
  if (m <= kHeadlineM) {
    util::Stopwatch rebuild_sw;
    const TieredItemMemory rebuilt(packed, TieredConfig{});
    r.build_seconds = std::min(r.build_seconds, rebuild_sw.elapsed_ms() / 1e3);
  }

  // The exhaustive single-threaded build is the reference the screened
  // parallel build is measured against (ISSUE 6: >= 4x at the headline M).
  // Skipped above the headline M — it alone would add minutes per point.
  if (m <= kHeadlineM) {
    util::Stopwatch ref_sw;
    const TieredItemMemory reference(
        packed, TieredConfig{.build_threads = 1, .exhaustive_build = true});
    r.build_ref_seconds = ref_sw.elapsed_ms() / 1e3;
    r.build_speedup =
        r.build_seconds > 0 ? r.build_ref_seconds / r.build_seconds : 0.0;
  }

  // FTS1 round trip: persist the built index and time the (mmap) load —
  // the cost a ModelRegistry::load_file pays instead of the build.
  {
    const std::string snap_path = "bench_scale_snapshot.fts.tmp";
    hdc::kernels::save_tiered_index(snap_path, tiered);
    util::Stopwatch load_sw;
    const auto loaded = hdc::kernels::load_tiered_index(snap_path);
    r.snap_load_seconds = load_sw.elapsed_ms() / 1e3;
    const hdc::Match a = tiered.best(qs[0]);
    const hdc::Match b = loaded->best(qs[0]);
    if (a.index != b.index || a.similarity != b.similarity) {
      std::cerr << "bench_ext_scale: snapshot round trip mismatch at m=" << m
                << "\n";
      std::exit(1);
    }
    std::remove(snap_path.c_str());
  }

  const std::size_t reps = std::max<std::size_t>(1, kHeadlineM / m);

  std::vector<std::size_t> truth(queries);
  util::Stopwatch exact_sw;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < queries; ++i) {
      truth[i] = packed->best(qs[i]).index;
    }
  }
  r.exact_us = exact_sw.elapsed_us() / static_cast<double>(reps * queries);
  r.exact_ops = m;

  std::size_t hits = 0;
  std::uint64_t ops = 0;
  util::Stopwatch tiered_sw;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < queries; ++i) {
      TieredItemMemory::ScanStats stats;
      const hdc::Match got = tiered.best(qs[i], &stats);
      if (rep == 0) {
        hits += got.index == truth[i] ? 1 : 0;
        ops += stats.centroid_dots + stats.row_dots;
      }
    }
  }
  r.tiered_us = tiered_sw.elapsed_us() / static_cast<double>(reps * queries);
  r.speedup = r.tiered_us > 0 ? r.exact_us / r.tiered_us : 0.0;
  r.recall = static_cast<double>(hits) / static_cast<double>(queries);
  r.tiered_ops = ops / queries;

  // Adaptive probing over the *same* clustering: the adoption ctor re-views
  // the built buckets with a floor (auto: nprobe/8) and a ceiling (nprobe/2)
  // so no second k-means run is paid. The margin rule stops at the floor on
  // confident queries and escalates toward the ceiling on ambiguous ones;
  // the ceiling keeps worst-case recall while mean probes stay below the
  // fixed nprobe.
  {
    const TieredItemMemory adaptive(
        tiered.shared_rows(), tiered.shared_centroids(), tiered.nprobe(),
        std::vector<std::size_t>(tiered.member_rows().begin(),
                                 tiered.member_rows().end()),
        std::vector<std::size_t>(tiered.cluster_begins().begin(),
                                 tiered.cluster_begins().end()),
        0, std::max<std::size_t>(1, tiered.nprobe() / 2));
    r.adaptive_min = adaptive.nprobe_min();
    r.adaptive_max = adaptive.nprobe_max();
    std::size_t adaptive_hits = 0;
    std::uint64_t probes = 0;
    for (std::size_t i = 0; i < queries; ++i) {
      TieredItemMemory::ScanStats stats;
      const hdc::Match got = adaptive.best(qs[i], &stats);
      adaptive_hits += got.index == truth[i] ? 1 : 0;
      probes += stats.probes;
    }
    r.mean_probes =
        static_cast<double>(probes) / static_cast<double>(queries);
    r.adaptive_recall =
        static_cast<double>(adaptive_hits) / static_cast<double>(queries);
  }

  // Scatter-gather shard sweep over the same packed rows and queries: each
  // shard count partitions the codebook into contiguous ranges, builds one
  // auto-configured tier per shard, and scans through the merged interface.
  // speedup is vs the exact full scan — the same baseline every other
  // `speedup` field in this bench uses — so it composes tier pruning with
  // the partition rather than isolating thread parallelism.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    ShardPoint p;
    ShardedConfig cfg;
    cfg.shards = shards;
    cfg.tiered = TieredConfig{};  // auto per shard row count
    util::Stopwatch shard_build_sw;
    const ShardedItemMemory sharded(packed, cfg);
    p.build_seconds = shard_build_sw.elapsed_ms() / 1e3;
    p.shards = sharded.shards();

    std::size_t shard_hits = 0;
    std::uint64_t shard_ops = 0;
    util::Stopwatch sharded_sw;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::size_t i = 0; i < queries; ++i) {
        TieredItemMemory::ScanStats stats;
        const hdc::Match got = sharded.best(qs[i], /*exact=*/false, &stats);
        if (rep == 0) {
          shard_hits += got.index == truth[i] ? 1 : 0;
          shard_ops += stats.centroid_dots + stats.row_dots;
        }
      }
    }
    p.sharded_us =
        sharded_sw.elapsed_us() / static_cast<double>(reps * queries);
    p.speedup = p.sharded_us > 0 ? r.exact_us / p.sharded_us : 0.0;
    p.recall = static_cast<double>(shard_hits) / static_cast<double>(queries);
    p.sim_ops = shard_ops / queries;

    // FTS1 per-shard round trip at the acceptance shard count: every shard
    // file must verify and be adopted, and the rebuilt memory must scan
    // identically.
    if (shards == 4) {
      const std::string prefix = "bench_scale_sharded.fts.tmp";
      hdc::kernels::save_sharded_index(prefix, sharded);
      const auto snaps = hdc::kernels::load_sharded_index(prefix, shards);
      const ShardedItemMemory reloaded(packed, cfg, snaps);
      const hdc::Match a = sharded.best(qs[0]);
      const hdc::Match b = reloaded.best(qs[0]);
      if (reloaded.snapshots_adopted() != sharded.shards() ||
          a.index != b.index || a.similarity != b.similarity) {
        std::cerr << "bench_ext_scale: sharded snapshot round trip mismatch "
                     "at m=" << m << "\n";
        std::exit(1);
      }
      for (std::size_t s = 0; s < shards; ++s) {
        std::remove(hdc::kernels::sharded_shard_path(prefix, s).c_str());
      }
    }
    r.shard_sweep.push_back(p);
  }
  return r;
}

// The sharding verification bound, re-checked in CI: an exact (untiered)
// scatter-gather memory must be bit-identical to PackedItemMemory on
// best/above/top_k/dots at every shard count — including counts that do
// not divide M and counts above M.
bool verify_sharded_bound(std::size_t m, std::size_t dim, std::size_t queries,
                          double flip, std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0xdeca1ULL);
  const hdc::Codebook cb(dim, m, rng);
  const auto packed = std::make_shared<const PackedItemMemory>(cb);
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{3}, std::size_t{4}, std::size_t{7},
        m + 1}) {
    ShardedConfig cfg;
    cfg.shards = shards;
    const ShardedItemMemory sharded(packed, cfg);
    std::vector<std::int64_t> ref_dots(m);
    std::vector<std::int64_t> got_dots(m);
    for (std::size_t i = 0; i < queries; ++i) {
      const hdc::Hypervector q =
          hdc::flip_noise(cb.item(rng.uniform(m)), flip, rng);
      const auto pq = *PackedQuery::pack(q, packed->simd_level());
      const hdc::Match ref = packed->best(pq);
      const hdc::Match got = sharded.best(pq);
      if (ref.index != got.index || ref.similarity != got.similarity) {
        std::cerr << "MISMATCH sharded best: m=" << m << " shards=" << shards
                  << " query " << i << "\n";
        return false;
      }
      const auto ref_above = packed->above(pq, ref.similarity / 2.0);
      const auto got_above = sharded.above(pq, ref.similarity / 2.0);
      const auto ref_top = packed->top_k(pq, 10);
      const auto got_top = sharded.top_k(pq, 10);
      if (ref_above.size() != got_above.size() ||
          ref_top.size() != got_top.size()) {
        std::cerr << "MISMATCH sharded sizes: m=" << m << " shards=" << shards
                  << " query " << i << "\n";
        return false;
      }
      for (std::size_t j = 0; j < ref_above.size(); ++j) {
        if (ref_above[j].index != got_above[j].index ||
            ref_above[j].similarity != got_above[j].similarity) {
          std::cerr << "MISMATCH sharded above: m=" << m
                    << " shards=" << shards << " query " << i << "\n";
          return false;
        }
      }
      for (std::size_t j = 0; j < ref_top.size(); ++j) {
        if (ref_top[j].index != got_top[j].index ||
            ref_top[j].similarity != got_top[j].similarity) {
          std::cerr << "MISMATCH sharded top_k: m=" << m
                    << " shards=" << shards << " query " << i << "\n";
          return false;
        }
      }
      packed->dots(pq, ref_dots);
      sharded.dots(pq, got_dots);
      if (ref_dots != got_dots) {
        std::cerr << "MISMATCH sharded dots: m=" << m << " shards=" << shards
                  << " query " << i << "\n";
        return false;
      }
    }
  }
  return true;
}

// The nprobe=all verification bound, re-checked in CI: full-coverage tiered
// scans must be bit-identical to PackedItemMemory on best/above/top_k.
bool verify_exact_bound(std::size_t m, std::size_t dim, std::size_t queries,
                        double flip, std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0x5ca1eULL);
  const hdc::Codebook cb(dim, m, rng);
  const auto packed = std::make_shared<const PackedItemMemory>(cb);
  const TieredItemMemory all(
      packed, TieredConfig{.clusters = 0, .nprobe = m, .kmeans_iters = 2});
  for (std::size_t i = 0; i < queries; ++i) {
    const hdc::Hypervector q =
        hdc::flip_noise(cb.item(rng.uniform(m)), flip, rng);
    const auto pq = *PackedQuery::pack(q, packed->simd_level());
    const hdc::Match ref = packed->best(pq);
    const hdc::Match got = all.best(pq);
    if (ref.index != got.index || ref.similarity != got.similarity) {
      std::cerr << "MISMATCH best: m=" << m << " query " << i << "\n";
      return false;
    }
    const auto ref_above = packed->above(pq, ref.similarity / 2.0);
    const auto got_above = all.above(pq, ref.similarity / 2.0);
    const auto ref_top = packed->top_k(pq, 10);
    const auto got_top = all.top_k(pq, 10);
    if (ref_above.size() != got_above.size() ||
        ref_top.size() != got_top.size()) {
      std::cerr << "MISMATCH sizes: m=" << m << " query " << i << "\n";
      return false;
    }
    for (std::size_t j = 0; j < ref_above.size(); ++j) {
      if (ref_above[j].index != got_above[j].index ||
          ref_above[j].similarity != got_above[j].similarity) {
        std::cerr << "MISMATCH above: m=" << m << " query " << i << "\n";
        return false;
      }
    }
    for (std::size_t j = 0; j < ref_top.size(); ++j) {
      if (ref_top[j].index != got_top[j].index ||
          ref_top[j].similarity != got_top[j].similarity) {
        std::cerr << "MISMATCH top_k: m=" << m << " query " << i << "\n";
        return false;
      }
    }
  }
  return true;
}

std::string fmt_num(double v, int precision = 3) {
  std::string s = util::fmt_double(v, precision);
  return s;
}

void write_json(const std::string& path, bool smoke, std::size_t dim,
                std::size_t queries, double flip, std::uint64_t seed,
                const std::vector<PointResult>& sweep) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_ext_scale: cannot write " << path << "\n";
    std::exit(1);
  }
  namespace hk = hdc::kernels;
  out << "{\n"
      << "  \"schema\": \"factorhd.bench_scale.v4\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"context\": {\n"
      << "    \"dim\": " << dim << ",\n"
      << "    \"queries\": " << queries << ",\n"
      << "    \"flip_rate\": " << fmt_num(flip) << ",\n"
      << "    \"seed\": " << seed << ",\n"
      << "    \"simd_level\": \""
      << hk::to_string(hk::dispatched_simd_level()) << "\",\n"
      << "    \"simd_detected\": \""
      << hk::to_string(hk::detect_simd_level()) << "\"\n"
      << "  },\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const PointResult& r = sweep[i];
    out << "    {\"m\": " << r.m << ", \"clusters\": " << r.clusters
        << ", \"nprobe\": " << r.nprobe << ", \"build_seconds\": "
        << fmt_num(r.build_seconds) << ", \"build_reference_seconds\": "
        << fmt_num(r.build_ref_seconds) << ", \"build_speedup\": "
        << fmt_num(r.build_speedup) << ", \"snapshot_load_seconds\": "
        << fmt_num(r.snap_load_seconds, 7) << ", \"exact_us_per_query\": "
        << fmt_num(r.exact_us)
        << ", \"tiered_us_per_query\": "
        << fmt_num(r.tiered_us) << ", \"speedup\": "
        << fmt_num(r.speedup) << ", \"recall_at_1\": "
        << fmt_num(r.recall, 4) << ", \"exact_sim_ops\": "
        << r.exact_ops << ", \"tiered_sim_ops\": " << r.tiered_ops
        << ", \"adaptive_nprobe_min\": " << r.adaptive_min
        << ", \"adaptive_nprobe_max\": " << r.adaptive_max
        << ", \"mean_probes\": " << fmt_num(r.mean_probes, 2)
        << ", \"adaptive_recall_at_1\": " << fmt_num(r.adaptive_recall, 4)
        << ", \"shard_sweep\": [";
    for (std::size_t s = 0; s < r.shard_sweep.size(); ++s) {
      const ShardPoint& p = r.shard_sweep[s];
      out << (s == 0 ? "" : ", ") << "{\"shards\": " << p.shards
          << ", \"build_seconds\": " << fmt_num(p.build_seconds)
          << ", \"sharded_us_per_query\": " << fmt_num(p.sharded_us)
          << ", \"speedup\": " << fmt_num(p.speedup)
          << ", \"recall_at_1\": " << fmt_num(p.recall, 4)
          << ", \"sharded_sim_ops\": " << p.sim_ops << "}";
    }
    out << "]}" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  // headline mirrors the largest-M row; build_speedup comes from the
  // headline (acceptance) M, where the exhaustive reference is measured;
  // shard_speedup is the largest-M 4-shard aggregate (vs the exact scan).
  const PointResult& head = sweep.back();
  double head_build_speedup = 0.0;
  for (const PointResult& r : sweep) {
    if (r.m == kHeadlineM) head_build_speedup = r.build_speedup;
  }
  double head_shard_speedup = 0.0;
  for (const ShardPoint& p : head.shard_sweep) {
    if (p.shards == 4) head_shard_speedup = p.speedup;
  }
  out << "  ],\n"
      << "  \"headline\": {\"m\": " << head.m << ", \"speedup\": "
      << fmt_num(head.speedup) << ", \"recall_at_1\": "
      << fmt_num(head.recall, 4) << ", \"snapshot_load_seconds\": "
      << fmt_num(head.snap_load_seconds, 7) << ", \"build_speedup\": "
      << fmt_num(head_build_speedup) << ", \"shard_speedup\": "
      << fmt_num(head_shard_speedup) << "}\n"
      << "}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_ext_scale [--smoke] [--json FILE]\n";
      return 2;
    }
  }

  std::cout << "==============================================================\n"
            << "Extension: tiered two-stage codebook scanning at scale\n"
            << "==============================================================\n";
  const std::uint64_t seed = util::experiment_seed();
  const std::size_t dim = smoke ? 256 : 8192;
  const double flip = 0.02;
  const std::size_t queries =
      bench::trials_or_default(smoke ? 25 : 200, 200);

  std::vector<std::size_t> ms;
  if (smoke) {
    ms = {256, 1024};
  } else {
    ms = {1024, 4096, 16384, 65536, 262144};
    if (util::bench_full_scale()) ms.push_back(1048576);
  }
  std::cout << "D=" << dim << ", " << queries
            << " noisy cleanup queries/point (2% bit flip), seed " << seed
            << "\nauto tier config: K = 4*sqrt(M) buckets, nprobe = K/16\n\n";

  std::vector<PointResult> sweep;
  util::TextTable table({"M", "K", "nprobe", "build", "bld-spdup", "snap-load",
                         "exact/q", "tiered/q", "speedup", "recall@1",
                         "sim-ops exact/tiered", "adpt-probe",
                         "adpt-recall@1", "shard4/q", "shard4-spdup"});
  for (const std::size_t m : ms) {
    const PointResult r = run_point(m, dim, queries, flip, seed);
    table.add_row({std::to_string(r.m), std::to_string(r.clusters),
                   std::to_string(r.nprobe),
                   util::fmt_double(r.build_seconds, 2) + " s",
                   r.build_ref_seconds > 0
                       ? util::fmt_double(r.build_speedup, 2) + "x"
                       : std::string("-"),
                   util::fmt_double(r.snap_load_seconds * 1e3, 1) + " ms",
                   util::fmt_double(r.exact_us, 1) + " us",
                   util::fmt_double(r.tiered_us, 1) + " us",
                   util::fmt_double(r.speedup, 2) + "x",
                   util::fmt_double(r.recall, 4),
                   std::to_string(r.exact_ops) + " / " +
                       std::to_string(r.tiered_ops),
                   util::fmt_double(r.mean_probes, 1) + " [" +
                       std::to_string(r.adaptive_min) + "," +
                       std::to_string(r.adaptive_max) + "]",
                   util::fmt_double(r.adaptive_recall, 4),
                   util::fmt_double(r.shard_sweep.back().sharded_us, 1) +
                       " us",
                   util::fmt_double(r.shard_sweep.back().speedup, 2) + "x"});
    sweep.push_back(r);
  }
  table.print(std::cout);

  if (smoke) {
    // CI correctness hooks: both verification bounds must hold bit-exactly.
    if (!verify_exact_bound(512, dim, queries, flip, seed)) return 1;
    std::cout << "\nnprobe=all differential vs PackedItemMemory: exact "
                 "(best/above/top_k bit-identical)\n";
    if (!verify_sharded_bound(512, dim, queries, flip, seed)) return 1;
    std::cout << "sharded differential vs PackedItemMemory: exact "
                 "(best/above/top_k/dots bit-identical at every shard "
                 "count)\n";
  }

  if (json_path) {
    write_json(*json_path, smoke, dim, queries, flip, seed, sweep);
  }
  return 0;
}
