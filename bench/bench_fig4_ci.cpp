// Fig. 4(e) and 4(f): factorization accuracy of FactorHD vs the C-I
// (class-instance) model at matched storage (C-I: D=256 for F=3, D=512 for
// F=4; FactorHD at D/2), with varying codebook size.
//
// Two regimes are reported:
//  * single object — both models are strong; C-I loses ground as the
//    codebook grows because role-binding cross-talk scales with F;
//  * two objects — the C-I model's superposition catastrophe: it can recover
//    per-class item *sets* but carries no information about which items form
//    an object, so object-level recovery is near chance association while
//    FactorHD's combination check resolves the binding.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "baselines/ci_model.hpp"
#include "common.hpp"
#include "hdc/packed.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

/// C-I single-object accuracy.
double ci_single(std::size_t dim, std::size_t f, std::size_t m,
                 std::size_t trials, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const baselines::CIModel model(dim, f, m, rng);
  std::size_t correct = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<std::size_t> truth(f);
    for (auto& i : truth) i = rng.uniform(m);
    if (model.factorize_single(model.encode(truth)) == truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(trials);
}

/// C-I two-object scene recovery: per-class top-2 sets plus the only
/// association policy available to the model (rank order by similarity).
double ci_two_objects(std::size_t dim, std::size_t f, std::size_t m,
                      std::size_t trials, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const baselines::CIModel model(dim, f, m, rng);
  std::size_t correct = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<std::size_t> a(f), b(f);
    for (std::size_t c = 0; c < f; ++c) {
      a[c] = rng.uniform(m);
      do {
        b[c] = rng.uniform(m);
      } while (b[c] == a[c]);
    }
    const auto sets =
        model.factorize_scene_sets(model.encode_scene({a, b}), 2);
    // Associate by rank: strongest item of each class forms object 1 —
    // the model offers no better signal (superposition catastrophe).
    std::vector<std::size_t> o1(f), o2(f);
    for (std::size_t c = 0; c < f; ++c) {
      o1[c] = sets[c][0];
      o2[c] = sets[c][1];
    }
    const bool straight = (o1 == a && o2 == b) || (o1 == b && o2 == a);
    if (straight) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(trials);
}

/// FactorHD two-object accuracy at matched (halved) dimension.
double fhd_two_objects(std::size_t dim, std::size_t f, std::size_t m,
                       std::size_t trials, std::uint64_t seed) {
  return factorhd_rep3(dim, f, {m}, 2, /*threshold=*/0.0, trials, seed)
      .accuracy;
}

void run_family(std::size_t f, std::size_t ci_dim,
                const std::vector<std::size_t>& m_values) {
  const std::size_t trials = trials_or_default(48, 512);
  const std::uint64_t seed = util::experiment_seed();
  const std::size_t fhd_dim = hdc::fair_ternary_dim(ci_dim);

  std::cout << "\n--- F = " << f << ", C-I D = " << ci_dim
            << ", FactorHD D = " << fhd_dim << " (equal storage), " << trials
            << " trials/point ---\n";
  util::TextTable table({"M", "problem size", "FactorHD 1-obj", "C-I 1-obj",
                         "FactorHD 2-obj", "C-I 2-obj"});
  for (const std::size_t m : m_values) {
    const double size =
        std::pow(static_cast<double>(m), static_cast<double>(f));
    const Measurement fhd1 = factorhd_rep1(fhd_dim, f, m, trials, seed);
    const double ci1 = ci_single(ci_dim, f, m, trials, seed + 1);
    const double fhd2 = fhd_two_objects(fhd_dim, f, m, trials, seed + 2);
    const double ci2 = ci_two_objects(ci_dim, f, m, trials, seed + 3);
    table.add_row({std::to_string(m), util::fmt_sci(size),
                   util::fmt_percent(fhd1.accuracy), util::fmt_percent(ci1),
                   util::fmt_percent(fhd2), util::fmt_percent(ci2)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Fig. 4(e,f) reproduction: FactorHD vs the C-I model at\n"
            << "matched storage, varying codebook size\n"
            << "==============================================================\n";
  if (factorhd::util::bench_full_scale()) {
    run_family(3, 256, {8, 16, 32, 64, 128, 256});
    run_family(4, 512, {8, 16, 32, 64, 128});
  } else {
    run_family(3, 256, {8, 16, 32, 64});
    run_family(4, 512, {8, 16, 32, 64});
  }
  std::cout << "\nExpected shape: comparable single-object accuracy (FactorHD\n"
               "higher while carrying richer structure); for two objects the\n"
               "C-I model collapses toward chance association while FactorHD\n"
               "recovers the full objects.\n";
  return 0;
}
