// Google-benchmark microbenchmarks of the HDC kernels every experiment is
// built from: bundling, binding, dot-product similarity (int32 and packed
// bit-level), whole-codebook similarity scans (scalar vs the hdc/kernels/
// packed word-plane backend), encoding, and one-pass factorization. These
// quantify the per-operation costs behind the Fig. 4 timing sweeps.
//
// The BM_Scan* pairs are consumed by scripts/bench.sh, which parses the
// --benchmark_format=json output into BENCH_kernels.json including the
// packed-over-scalar speedup per (M, D) point and the blocked-scan Q=64 over
// Q=1 ratio per BM_ScanBlockPacked (M, D) sweep (see README "Kernel
// benchmarks"). Keep their names and argument orders (M, D) / (M, D, Q)
// stable.
//
// Besides the scalar-vs-dispatched pairs, main() registers one
// BM_Scan{Best,Dots}Packed<Level> row per SIMD tier available on this CPU
// (Words = forced scalar-word loops, then AVX2/AVX512/NEON), so the v2 JSON
// records the whole dispatch ladder; the dispatched level itself is exported
// through the benchmark context (factorhd_simd_level).
#include <benchmark/benchmark.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/factorhd.hpp"
#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/packed.hpp"

namespace {

using namespace factorhd;

void BM_Bind(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(1);
  const hdc::Hypervector a = hdc::random_bipolar(dim, rng);
  const hdc::Hypervector b = hdc::random_bipolar(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::bind(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Bind)->Arg(750)->Arg(1500)->Arg(8192);

void BM_Bundle(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(2);
  const hdc::Hypervector a = hdc::random_bipolar(dim, rng);
  hdc::Hypervector acc(dim);
  for (auto _ : state) {
    hdc::accumulate(acc, a);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Bundle)->Arg(750)->Arg(1500)->Arg(8192);

void BM_DotInt32(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(3);
  const hdc::Hypervector a = hdc::random_bipolar(dim, rng);
  const hdc::Hypervector b = hdc::random_bipolar(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdc::dot(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_DotInt32)->Arg(750)->Arg(1500)->Arg(8192);

void BM_DotPackedBipolar(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(4);
  const hdc::PackedBipolar a{hdc::random_bipolar(dim, rng)};
  const hdc::PackedBipolar b{hdc::random_bipolar(dim, rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.dot(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_DotPackedBipolar)->Arg(750)->Arg(1500)->Arg(8192);

void BM_DotPackedTernary(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(5);
  const hdc::PackedTernary a{hdc::random_ternary(dim, 0.5, rng)};
  const hdc::PackedTernary b{hdc::random_ternary(dim, 0.5, rng)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.dot(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_DotPackedTernary)->Arg(750)->Arg(1500)->Arg(8192);

// --- Whole-codebook similarity scans: scalar vs packed backend -------------
// Arguments: (M = codebook size, D = dimension). The query is a noisy item
// (bipolar), the shape of every cleanup scan in Algorithm 1. The M=64,
// D=8192 point is the perf-trajectory headline tracked in BENCH_kernels.json.

struct ScanFixture {
  ScanFixture(std::size_t m, std::size_t dim, hdc::ScanBackend backend)
      : rng(11), cb(dim, m, rng), memory(cb, backend),
        query(hdc::flip_noise(cb.item(m / 2), 0.2, rng)) {}
  util::Xoshiro256 rng;
  hdc::Codebook cb;
  hdc::ItemMemory memory;
  hdc::Hypervector query;
};

void scan_args(benchmark::internal::Benchmark* b) {
  b->Args({64, 63})->Args({64, 256})->Args({64, 1000})->Args({64, 8192});
}

void scan_counters(benchmark::State& state, std::size_t m, std::size_t dim) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m) *
                          static_cast<std::int64_t>(dim));
}

void BM_ScanBestScalar(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  ScanFixture fx(m, dim, hdc::ScanBackend::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.memory.best(fx.query));
  }
  scan_counters(state, m, dim);
}
BENCHMARK(BM_ScanBestScalar)->Apply(scan_args);

void BM_ScanBestPacked(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  ScanFixture fx(m, dim, hdc::ScanBackend::kPacked);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.memory.best(fx.query));
  }
  scan_counters(state, m, dim);
}
BENCHMARK(BM_ScanBestPacked)->Apply(scan_args);

void BM_ScanDotsScalar(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  ScanFixture fx(m, dim, hdc::ScanBackend::kScalar);
  std::vector<std::int64_t> out(m);
  for (auto _ : state) {
    fx.memory.dots(fx.query, out);
    benchmark::DoNotOptimize(out.data());
  }
  scan_counters(state, m, dim);
}
BENCHMARK(BM_ScanDotsScalar)->Apply(scan_args);

void BM_ScanDotsPacked(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  ScanFixture fx(m, dim, hdc::ScanBackend::kPacked);
  std::vector<std::int64_t> out(m);
  for (auto _ : state) {
    fx.memory.dots(fx.query, out);
    benchmark::DoNotOptimize(out.data());
  }
  scan_counters(state, m, dim);
}
BENCHMARK(BM_ScanDotsPacked)->Apply(scan_args);

// --- Multi-query blocked scans: the Q-sweep behind the block-speedup table --
// Arguments: (M, D, Q). Each iteration scans one block of Q pre-packed noisy
// queries through PackedItemMemory::best_block; Q = 1 is the degenerate
// single-query block, the baseline of the BENCH_kernels.json v3
// block_speedup entries. Items = Q * M * D per iteration, so
// items_per_second is per-query scan throughput and the Q=64 over Q=1 ratio
// measures how well the blocked kernels amortize one codebook stream across
// the block (the >= 3x acceptance bound at M=4096, D=8192).

struct BlockScanFixture {
  BlockScanFixture(std::size_t m, std::size_t dim, std::size_t q)
      : rng(12), cb(dim, m, rng), memory(cb) {
    queries.reserve(q);
    for (std::size_t i = 0; i < q; ++i) {
      auto packed = hdc::kernels::PackedQuery::pack(
          hdc::flip_noise(cb.item(i % m), 0.2, rng), memory.simd_level());
      queries.push_back(std::move(*packed));
    }
  }
  util::Xoshiro256 rng;
  hdc::Codebook cb;
  hdc::kernels::PackedItemMemory memory;
  std::vector<hdc::kernels::PackedQuery> queries;
};

void block_args(benchmark::internal::Benchmark* b) {
  // The smoke pair first (tiny dims, exercised by scripts/bench.sh --smoke),
  // then the tracked M x Q sweep at the headline dimension.
  for (long q : {1, 64}) b->Args({64, 256, q});
  for (long m : {64, 4096}) {
    for (long q : {1, 2, 3, 8, 33, 64}) b->Args({m, 8192, q});
  }
}

void BM_ScanBlockPacked(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto q = static_cast<std::size_t>(state.range(2));
  BlockScanFixture fx(m, dim, q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.memory.best_block(fx.queries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(q) *
                          static_cast<std::int64_t>(m) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_ScanBlockPacked)->Apply(block_args);

// Forced-tier variants, registered from main() only for tiers this CPU can
// execute (a forced ItemMemory construction throws otherwise).

void BM_ScanBestForced(benchmark::State& state, hdc::ScanBackend backend) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  ScanFixture fx(m, dim, backend);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.memory.best(fx.query));
  }
  scan_counters(state, m, dim);
}

void BM_ScanDotsForced(benchmark::State& state, hdc::ScanBackend backend) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  ScanFixture fx(m, dim, backend);
  std::vector<std::int64_t> out(m);
  for (auto _ : state) {
    fx.memory.dots(fx.query, out);
    benchmark::DoNotOptimize(out.data());
  }
  scan_counters(state, m, dim);
}

struct Fixture {
  Fixture(std::size_t dim, std::size_t f, std::size_t m)
      : rng(7), taxonomy(f, {m}), books(taxonomy, dim, rng), encoder(books),
        factorizer(encoder), obj(tax::random_object(taxonomy, rng)),
        target(encoder.encode_object(obj)) {}
  util::Xoshiro256 rng;
  tax::Taxonomy taxonomy;
  tax::TaxonomyCodebooks books;
  core::Encoder encoder;
  core::Factorizer factorizer;
  tax::Object obj;
  hdc::Hypervector target;
};

void BM_EncodeObject(benchmark::State& state) {
  Fixture fx(static_cast<std::size_t>(state.range(0)), 3, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.encoder.encode_object(fx.obj));
  }
}
BENCHMARK(BM_EncodeObject)->Arg(750)->Arg(1500);

void BM_FactorizeRep1(benchmark::State& state) {
  Fixture fx(static_cast<std::size_t>(state.range(0)), 3, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.factorizer.factorize(fx.target, {}));
  }
}
BENCHMARK(BM_FactorizeRep1)->Arg(750)->Arg(1500);

void BM_FactorizeRep3TwoObjects(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(8);
  const tax::Taxonomy taxonomy(3, {10});
  const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);
  const tax::Scene scene = tax::random_scene(
      taxonomy, rng, {.num_objects = 2, .object = {}, .allow_duplicates = false});
  const hdc::Hypervector target = encoder.encode_scene(scene);
  core::FactorizeOptions opts;
  opts.multi_object = true;
  opts.num_objects_hint = 2;
  opts.max_objects = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(factorizer.factorize(target, opts));
  }
}
BENCHMARK(BM_FactorizeRep3TwoObjects)->Arg(2000)->Arg(4000);

}  // namespace

int main(int argc, char** argv) {
  namespace kernels = factorhd::hdc::kernels;
  using factorhd::hdc::ScanBackend;
  using kernels::SimdLevel;

  // One row pair per SIMD tier available here; "Words" is the forced
  // scalar-word tier (the packed baseline every vector tier is measured
  // against in the v2 speedup table).
  const std::tuple<ScanBackend, SimdLevel, const char*> tiers[] = {
      {ScanBackend::kPackedWords, SimdLevel::kScalarWords, "Words"},
      {ScanBackend::kPackedAVX2, SimdLevel::kAVX2, "AVX2"},
      {ScanBackend::kPackedAVX512, SimdLevel::kAVX512, "AVX512"},
      {ScanBackend::kPackedNEON, SimdLevel::kNEON, "NEON"},
  };
  for (const auto& [backend, level, suffix] : tiers) {
    if (!kernels::simd_level_available(level)) continue;
    benchmark::RegisterBenchmark(
        (std::string("BM_ScanBestPacked") + suffix).c_str(), BM_ScanBestForced,
        backend)
        ->Apply(scan_args);
    benchmark::RegisterBenchmark(
        (std::string("BM_ScanDotsPacked") + suffix).c_str(), BM_ScanDotsForced,
        backend)
        ->Apply(scan_args);
  }

  // Provenance for bench_json.py: which tier kPacked/kAuto scans dispatched
  // to in this run, and what the CPU would support.
  benchmark::AddCustomContext("factorhd_simd_level",
                              kernels::to_string(kernels::dispatched_simd_level()));
  benchmark::AddCustomContext("factorhd_simd_detected",
                              kernels::to_string(kernels::detect_simd_level()));

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
