// Extension bench: noise tolerance of FactorHD factorization.
//
// HDC's headline robustness claim (paper §I: "high computation efficiency
// and noise tolerance") quantified: corrupt a fraction of the stored object
// HV's components (sign flips for nonzero components, the bit-flip model of
// a noisy memory substrate) and measure factorization accuracy.
#include <iostream>

#include "common.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

double noisy_rep1_accuracy(std::size_t dim, double flip_fraction,
                           std::size_t trials, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy(3, {32});
  const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);
  std::size_t ok = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const tax::Object obj = tax::random_object(taxonomy, rng);
    hdc::Hypervector target = encoder.encode_object(obj);
    // Component corruption: negate a random subset (zeros stay zero — a
    // flipped zero has no sign; this matches sign-storage bit flips).
    for (std::size_t i = 0; i < target.dim(); ++i) {
      if (rng.bernoulli(flip_fraction)) target[i] = -target[i];
    }
    if (factorizer.factorize_single(target).to_object(3) == obj) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(trials);
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Extension: factorization accuracy under component corruption\n"
            << "(Rep 1, F=3, M=32)\n"
            << "==============================================================\n";
  const std::size_t trials = trials_or_default(96, 768);
  const std::uint64_t seed = util::experiment_seed();

  util::TextTable table(
      {"flip fraction", "D=256", "D=512", "D=1024", "D=2048"});
  for (const double flips : {0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40}) {
    std::vector<std::string> row{util::fmt_percent(flips, 0)};
    for (const std::size_t d : {256u, 512u, 1024u, 2048u}) {
      row.push_back(
          util::fmt_percent(noisy_rep1_accuracy(d, flips, trials, seed)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: graceful degradation — the similarity\n"
               "signal attenuates by (1 - 2*flips), so the tolerable noise\n"
               "floor grows with D; near-perfect accuracy should persist to\n"
               "~15-20% corruption at D >= 1024.\n";
  return 0;
}
