// Extension bench: the analytic capacity model (core/capacity.hpp) vs
// measured single-object factorization accuracy.
//
// The model predicts accuracy from clause geometry alone (signal Π c_k,
// noise sqrt(Π d_k / D), argmax contests per level); this bench sweeps D
// across the accuracy knee for three shapes and prints predicted next to
// measured, plus the model's minimum-D recommendation for 99% accuracy.
#include <iostream>

#include "common.hpp"
#include "core/capacity.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

void sweep(std::size_t f, const std::vector<std::size_t>& branching,
           const std::vector<std::size_t>& dims, std::size_t trials,
           std::uint64_t seed) {
  std::cout << "\nF=" << f << ", branching {";
  for (std::size_t i = 0; i < branching.size(); ++i) {
    std::cout << (i ? ", " : "") << branching[i];
  }
  std::cout << "} (" << trials << " trials/point)\n";
  util::TextTable table({"D", "measured acc", "predicted acc"});
  for (const std::size_t d : dims) {
    core::CapacityProblem p;
    p.dim = d;
    p.num_classes = f;
    p.branching = branching;
    double measured;
    if (branching.size() == 1) {
      measured = factorhd_rep1(d, f, branching[0], trials, seed).accuracy;
    } else {
      // Rep-2-style: reuse the same trial loop via factorhd_rep3 with one
      // object and argmax semantics — simplest is a local loop.
      util::Xoshiro256 rng(seed);
      const tax::Taxonomy taxonomy(f, branching);
      const tax::TaxonomyCodebooks books(taxonomy, d, rng);
      const core::Encoder encoder(books);
      const core::Factorizer factorizer(encoder);
      std::size_t ok = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        const tax::Object obj = tax::random_object(taxonomy, rng);
        if (factorizer.factorize_single(encoder.encode_object(obj))
                .to_object(f) == obj) {
          ++ok;
        }
      }
      measured = static_cast<double>(ok) / static_cast<double>(trials);
    }
    table.add_row({std::to_string(d), util::fmt_percent(measured),
                   util::fmt_percent(core::predicted_object_accuracy(p))});
  }
  table.print(std::cout);
  core::CapacityProblem p;
  p.num_classes = f;
  p.branching = branching;
  std::cout << "model's minimum D for 99% accuracy: "
            << core::required_dimension(p, 0.99) << "\n";
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Extension: analytic capacity model vs measurement\n"
            << "==============================================================\n";
  const std::size_t trials = trials_or_default(96, 768);
  const std::uint64_t seed = util::experiment_seed();
  sweep(3, {16}, {64, 96, 128, 192, 256, 384}, trials, seed);
  sweep(4, {16}, {128, 192, 256, 384, 512, 768}, trials, seed + 1);
  sweep(2, {64, 10}, {96, 128, 192, 256, 384, 512}, trials, seed + 2);
  std::cout << "\nExpected shape: prediction tracks measurement within a few\n"
               "percent through the knee of every curve.\n";
  return 0;
}
