// Extension bench: serving-runtime throughput and latency — the closed-loop
// load sweep over service::FactorizationEngine (src/service/).
//
// P producer threads each keep a small window of in-flight requests against
// one engine configuration; rows compare
//
//   direct          one thread calling Factorizer::factorize synchronously,
//   engine/nobatch  the engine with max_batch=1 (every request is its own
//                   dispatch — the "one request per call" baseline),
//   engine/batch    dynamic micro-batching into BatchFactorizer,
//   engine/hotset   micro-batching under a repeated-target load (in-batch
//                   coalescing + ResultCache replay).
//
// The serving claim (ISSUE 4 acceptance): at batch-friendly load,
// engine/batch (multi-core dispatch) and/or engine/hotset (request reuse)
// sustain >= 2x the engine/nobatch baseline. Batching wins scale with
// core count; coalescing/cache wins are core-independent.
//
// A fifth row re-runs the batch=64 configuration with sampled tracing on
// (1-in-64, the deployment default shape) — the observability overhead
// bound: sampled tracing must cost <= 3% throughput vs tracing-off, which
// scripts/bench_json.py --check enforces on the committed full-mode
// baseline via the `overhead` block of the JSON.
//
// `--smoke` runs a tiny configuration and additionally verifies every
// returned result bit-identically against direct factorization (exit 1 on
// any mismatch) — the CI hook next to bench.sh --smoke. `--json FILE`
// writes the machine-readable rows in the factorhd.bench_service.v1 schema
// (validated by scripts/bench_json.py --check BENCH_service.json).
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <thread>

#include "common.hpp"
#include "hdc/kernels/simd.hpp"
#include "service/service.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

struct LoadResult {
  double seconds = 0.0;
  service::MetricsSnapshot metrics;
};

/// Closed-loop load: `producers` threads, each submitting its share of
/// `requests` with at most `window` in flight, drawing targets round-robin
/// from `targets` starting at a per-producer offset.
LoadResult run_load(service::FactorizationEngine& engine,
                    const std::vector<hdc::Hypervector>& targets,
                    std::size_t producers, std::size_t requests,
                    std::size_t window) {
  util::Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // First producers absorb the remainder so exactly `requests` submit.
      const std::size_t share =
          requests / producers + (p < requests % producers ? 1 : 0);
      std::deque<std::future<core::FactorizeResult>> inflight;
      for (std::size_t i = 0; i < share; ++i) {
        const auto& t = targets[(p * 7919 + i) % targets.size()];
        inflight.push_back(engine.submit(t));
        if (inflight.size() >= window) {
          (void)inflight.front().get();
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        (void)inflight.front().get();
        inflight.pop_front();
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult r;
  r.seconds = sw.elapsed_seconds();
  r.metrics = engine.metrics();
  return r;
}

/// One table/JSON row of the sweep.
struct Row {
  std::string name;
  double seconds = 0.0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double mean_batch = 0.0;
  std::uint64_t hits_plus_coalesced = 0;
};

void write_json(const std::string& path, bool smoke, std::size_t dim,
                std::size_t items, std::size_t producers, std::size_t requests,
                std::size_t window, std::uint64_t seed,
                const std::vector<Row>& rows, double baseline_rps,
                double sampled_rps, std::size_t sample_every) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_ext_service: cannot write " << path << "\n";
    std::exit(1);
  }
  namespace hk = hdc::kernels;
  const auto fmt = [](double v) { return util::fmt_double(v, 3); };
  out << "{\n"
      << "  \"schema\": \"factorhd.bench_service.v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"context\": {\n"
      << "    \"dim\": " << dim << ",\n"
      << "    \"items\": " << items << ",\n"
      << "    \"producers\": " << producers << ",\n"
      << "    \"requests\": " << requests << ",\n"
      << "    \"window\": " << window << ",\n"
      << "    \"seed\": " << seed << ",\n"
      << "    \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "    \"simd_level\": \""
      << hk::to_string(hk::dispatched_simd_level()) << "\"\n"
      << "  },\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"seconds\": "
        << util::fmt_double(r.seconds, 6) << ", \"requests_per_second\": "
        << fmt(r.rps)
        << ", \"p50_us\": " << fmt(r.p50_us) << ", \"p99_us\": "
        << fmt(r.p99_us) << ", \"p999_us\": " << fmt(r.p999_us)
        << ", \"mean_batch\": " << fmt(r.mean_batch)
        << ", \"hits_plus_coalesced\": " << r.hits_plus_coalesced << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  // The observability acceptance bound: sampled tracing (1-in-sample_every)
  // on the batch=64 config must keep >= 97% of the tracing-off throughput.
  out << "  ],\n"
      << "  \"overhead\": {\n"
      << "    \"baseline_rps\": " << fmt(baseline_rps) << ",\n"
      << "    \"sampled_rps\": " << fmt(sampled_rps) << ",\n"
      << "    \"ratio\": "
      << fmt(baseline_rps > 0 ? sampled_rps / baseline_rps : 0.0) << ",\n"
      << "    \"sample_every\": " << sample_every << "\n"
      << "  }\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_ext_service [--smoke] [--json FILE]\n";
      return 2;
    }
  }

  std::cout << "==============================================================\n"
            << "Extension: serving runtime (micro-batching engine) throughput\n"
            << "==============================================================\n";
  const std::uint64_t seed = util::experiment_seed();
  util::Xoshiro256 rng(seed);

  const std::size_t dim = smoke ? 256 : 750;
  const std::size_t items = smoke ? 16 : 256;
  const tax::Taxonomy taxonomy(3, {items});
  auto model = service::Model::make(
      "bench", tax::TaxonomyCodebooks(taxonomy, dim, rng));

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t producers = smoke ? 2 : std::max<std::size_t>(4, hw);
  const std::size_t requests =
      smoke ? 40 : (util::bench_full_scale() ? 8000 : 2000);
  const std::size_t window = 4;
  std::cout << "D=" << dim << ", F=3, M=" << items << ", " << producers
            << " producers x window " << window << ", " << requests
            << " requests/row, " << hw << " hardware threads\n\n";

  // Distinct-target pool (cache-hostile) and a small hot set (batch-friendly
  // repeated load: think many users asking the same queries).
  std::vector<hdc::Hypervector> distinct, hotset;
  for (std::size_t i = 0; i < (smoke ? 32u : 512u); ++i) {
    distinct.push_back(model->encoder().encode_object(
        tax::random_object(taxonomy, rng)));
  }
  hotset.assign(distinct.begin(), distinct.begin() + (smoke ? 4 : 16));

  util::TextTable table({"configuration", "wall time", "req/s", "vs nobatch",
                         "p50", "p99", "mean batch", "hits+coalesced"});
  std::vector<Row> rows;
  double nobatch_rps = 0.0;
  double baseline_rps = 0.0;  // batch=64, tracing off
  double sampled_rps = 0.0;   // batch=64, 1-in-kSampleEvery tracing
  constexpr std::size_t kSampleEvery = 64;

  // Row 1: direct synchronous single-thread calls (library floor).
  {
    util::Stopwatch sw;
    for (std::size_t i = 0; i < requests; ++i) {
      (void)model->factorizer().factorize(distinct[i % distinct.size()], {});
    }
    const double s = sw.elapsed_seconds();
    const double rps = static_cast<double>(requests) / s;
    table.add_row({"direct 1-thread", util::fmt_time_us(s * 1e6),
                   util::fmt_double(rps, 0), "-", "-", "-", "-", "-"});
    rows.push_back({.name = "direct 1-thread", .seconds = s, .rps = rps});
  }

  struct Config {
    const char* name;
    service::ServiceOptions opts;
    const std::vector<hdc::Hypervector>* load;
  };
  const Config configs[] = {
      {"engine nobatch",
       {.max_batch = 1, .max_delay_us = 0, .cache_capacity = 0},
       &distinct},
      {"engine batch=64",
       {.max_batch = 64, .max_delay_us = 200, .cache_capacity = 0},
       &distinct},
      // Same configuration with sampled tracing on — the observability
      // overhead row: trace ids, stage timers, and 1-in-64 ring records.
      {"engine batch=64 traced",
       {.max_batch = 64,
        .max_delay_us = 200,
        .cache_capacity = 0,
        .trace_sample = kSampleEvery},
       &distinct},
      {"engine batch+cache hotset",
       {.max_batch = 64, .max_delay_us = 200, .cache_capacity = 4096},
       &hotset},
  };
  for (const Config& cfg : configs) {
    service::FactorizationEngine engine(model, cfg.opts);
    const LoadResult r =
        run_load(engine, *cfg.load, producers, requests, window);
    engine.stop();
    const double rps = static_cast<double>(r.metrics.completed) / r.seconds;
    const std::string name = cfg.name;
    if (name == "engine nobatch") nobatch_rps = rps;
    if (name == "engine batch=64") baseline_rps = rps;
    if (name == "engine batch=64 traced") sampled_rps = rps;
    table.add_row(
        {cfg.name, util::fmt_time_us(r.seconds * 1e6),
         util::fmt_double(rps, 0),
         nobatch_rps > 0 ? util::fmt_double(rps / nobatch_rps, 2) + "x" : "-",
         util::fmt_time_us(r.metrics.p50_latency_us),
         util::fmt_time_us(r.metrics.p99_latency_us),
         util::fmt_double(r.metrics.mean_batch, 2),
         std::to_string(r.metrics.cache_hits + r.metrics.coalesced)});
    rows.push_back({.name = name,
                    .seconds = r.seconds,
                    .rps = rps,
                    .p50_us = r.metrics.p50_latency_us,
                    .p99_us = r.metrics.p99_latency_us,
                    .p999_us = r.metrics.p999_latency_us,
                    .mean_batch = r.metrics.mean_batch,
                    .hits_plus_coalesced =
                        r.metrics.cache_hits + r.metrics.coalesced});
  }
  table.print(std::cout);
  const double overhead_ratio =
      baseline_rps > 0 ? sampled_rps / baseline_rps : 0.0;
  std::cout << "\ntracing overhead (batch=64, 1-in-" << kSampleEvery
            << " sampled vs off): " << util::fmt_double(overhead_ratio, 3)
            << "x throughput (bound: >= 0.97x on the committed baseline)\n";
  std::cout << "\nExpected shape: batch=64 gains scale with core count\n"
               "(BatchFactorizer dispatch); the hotset row gains from\n"
               "in-batch coalescing + ResultCache replay on any core count.\n"
               "Acceptance (>= 2x vs nobatch) holds at batch-friendly load:\n"
               "multi-core for distinct targets, repeated targets anywhere.\n";

  if (!json_path.empty()) {
    write_json(json_path, smoke, dim, items, producers, requests, window,
               seed, rows, baseline_rps, sampled_rps, kSampleEvery);
    std::cout << "\nwrote " << json_path << "\n";
  }

  if (smoke) {
    // Differential verification: engine results must be bit-identical to
    // direct factorization, batched, coalesced, cached, or not.
    service::FactorizationEngine engine(
        model, {.max_batch = 8, .max_delay_us = 100, .cache_capacity = 64});
    std::vector<std::future<core::FactorizeResult>> futures;
    futures.reserve(2 * hotset.size());
    for (std::size_t round = 0; round < 2; ++round) {
      for (const auto& t : hotset) futures.push_back(engine.submit(t));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const auto expect =
          model->factorizer().factorize(hotset[i % hotset.size()], {});
      if (!(futures[i].get() == expect)) {
        std::cerr << "SMOKE FAIL: engine result differs from direct "
                     "factorize at request "
                  << i << "\n";
        return 1;
      }
    }
    std::cout << "\nsmoke: engine == direct factorize on "
              << futures.size() << " requests (incl. repeats)\n";
  }
  return 0;
}
