// Fig. 5 reproduction: FactorHD factorization accuracy on the complex
// representations with varying HV dimensionality.
//   (a) Rep 2 — single object, two subclass levels (the paper's 256
//       subclasses x 10 sub-subclasses per top-level class);
//   (b) Rep 3 — two objects, two subclass levels (no prior knowledge of the
//       object count; Eq. 2 threshold).
#include <iostream>

#include "common.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

Measurement rep2(std::size_t dim, std::size_t m1, std::size_t m2,
                 std::size_t trials, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy(2, {m1, m2});
  const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);
  Measurement m;
  m.trials = trials;
  std::size_t correct = 0;
  double ops = 0.0;
  std::vector<double> times;
  for (std::size_t t = 0; t < trials; ++t) {
    const tax::Object obj = tax::random_object(taxonomy, rng);
    const hdc::Hypervector target = encoder.encode_object(obj);
    util::Stopwatch sw;
    const core::FactorizeResult r = factorizer.factorize(target, {});
    times.push_back(sw.elapsed_us());
    if (r.objects[0].to_object(2) == obj) ++correct;
    ops += static_cast<double>(r.similarity_ops);
  }
  m.accuracy = static_cast<double>(correct) / static_cast<double>(trials);
  m.mean_time_us = util::summarize(times).mean;
  m.mean_similarity_ops = ops / static_cast<double>(trials);
  return m;
}

}  // namespace

int main() {
  [[maybe_unused]] const bool full = util::bench_full_scale();
  const std::uint64_t seed = util::experiment_seed();
  std::cout << "==============================================================\n"
            << "Fig. 5 reproduction: Rep 2 / Rep 3 accuracy vs dimension\n"
            << "==============================================================\n";

  {
    // Paper setup: top-level classes with 256 subclasses x 10 sub-subclasses.
    const std::size_t m1 = 256;
    const std::size_t m2 = 10;
    const std::size_t trials = trials_or_default(64, 1024);
    std::cout << "\n(a) Rep 2: single object, 2 subclass levels (" << m1
              << " x " << m2 << " per class, F=2 (content class ⊗ dummy class, as in the paper's CIFAR-100 encoding), " << trials
              << " trials/point)\n";
    util::TextTable table({"D", "accuracy", "mean time", "sim ops"});
    for (const std::size_t d : {125u, 250u, 500u, 750u, 1000u, 1500u}) {
      const Measurement m = rep2(d, m1, m2, trials, seed);
      table.add_row({std::to_string(d), util::fmt_percent(m.accuracy),
                     util::fmt_time_us(m.mean_time_us),
                     util::fmt_double(m.mean_similarity_ops, 0)});
    }
    table.print(std::cout);
    std::cout << "Expected shape: accuracy reaches ~100% by D ~= 1000.\n";
  }

  {
    const std::size_t m1 = 256;
    const std::size_t m2 = 10;
    const std::size_t trials = trials_or_default(24, 256);
    std::cout << "\n(b) Rep 3: two objects, 2 subclass levels (" << m1 << " x "
              << m2 << " per class, F=2, Eq. 2 threshold, " << trials
              << " trials/point)\n";
    util::TextTable table({"D", "accuracy", "mean time", "sim ops"});
    for (const std::size_t d : {250u, 500u, 1000u, 2000u, 4000u}) {
      const Measurement m =
          factorhd_rep3(d, 2, {m1, m2}, 2, /*threshold=*/0.0, trials, seed);
      table.add_row({std::to_string(d), util::fmt_percent(m.accuracy),
                     util::fmt_time_us(m.mean_time_us),
                     util::fmt_double(m.mean_similarity_ops, 0)});
    }
    table.print(std::cout);
    std::cout << "Expected shape: multi-object factorization needs higher D\n"
                 "than Rep 2 to reach high accuracy.\n";
  }
  return 0;
}
