// Fig. 4(b) and 4(d): factorization time of FactorHD vs the C-C baselines
// as the problem size scales, plus the §IV-B speedup claims (18.5x at 1e6,
// 5667x at 1e9) reproduced as a power-law extrapolation of the measured
// timing sweeps.
//
// Complexity claim checked here: FactorHD's similarity-measurement count is
// O(N_M) in the per-class item count, while the iterative baselines pay
// per-iteration O(N_M) with an iteration count that itself grows with the
// problem, i.e. super-linear overall.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "hdc/packed.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

struct Sweep {
  std::vector<double> sizes;
  std::vector<double> fhd_us;
  std::vector<double> reso_us;
  std::vector<double> imc_us;
};

Sweep run_family(std::size_t num_factors, std::size_t bipolar_dim,
                 const std::vector<std::size_t>& m_values) {
  const std::size_t trials = trials_or_default(16, 128);
  const std::size_t reso_iters = util::bench_full_scale() ? 500 : 200;
  const std::size_t imc_iters = util::bench_full_scale() ? 3000 : 400;
  const std::uint64_t seed = util::experiment_seed();

  std::cout << "\n--- F = " << num_factors << ", baseline D = " << bipolar_dim
            << ", FactorHD D = " << hdc::fair_ternary_dim(bipolar_dim)
            << ", " << trials << " trials/point ---\n";
  util::TextTable table({"M", "problem size", "FactorHD", "Resonator", "IMC",
                         "speedup vs reso", "speedup vs IMC",
                         "FactorHD sim-ops", "Reso sim-ops"});
  Sweep sweep;
  for (const std::size_t m : m_values) {
    const double size = std::pow(static_cast<double>(m),
                                 static_cast<double>(num_factors));
    const Measurement fhd = factorhd_rep1(
        hdc::fair_ternary_dim(bipolar_dim), num_factors, m, trials, seed);
    const Measurement reso = resonator_rep1(bipolar_dim, num_factors, m,
                                            trials, reso_iters, seed + 1);
    const Measurement imc =
        imc_rep1(bipolar_dim, num_factors, m, trials, imc_iters, seed + 2);
    sweep.sizes.push_back(size);
    sweep.fhd_us.push_back(fhd.median_time_us);
    sweep.reso_us.push_back(reso.median_time_us);
    sweep.imc_us.push_back(imc.median_time_us);
    table.add_row(
        {std::to_string(m), util::fmt_sci(size),
         util::fmt_time_us(fhd.median_time_us),
         util::fmt_time_us(reso.median_time_us),
         util::fmt_time_us(imc.median_time_us),
         util::fmt_double(reso.median_time_us / fhd.median_time_us, 1) + "x",
         util::fmt_double(imc.median_time_us / fhd.median_time_us, 1) + "x",
         util::fmt_double(fhd.mean_similarity_ops, 0),
         util::fmt_double(reso.mean_similarity_ops, 0)});
  }
  table.print(std::cout);
  return sweep;
}

void extrapolate(const Sweep& sweep) {
  // Fit t = c * size^p for each method and report the implied speedup at the
  // paper's quoted problem sizes. The paper's 18.5x @ 1e6 and 5667x @ 1e9
  // arise the same way: the baselines' growth exponent exceeds FactorHD's.
  const util::LinearFit fhd = util::fit_power_law(sweep.sizes, sweep.fhd_us);
  const util::LinearFit reso = util::fit_power_law(sweep.sizes, sweep.reso_us);
  const util::LinearFit imc = util::fit_power_law(sweep.sizes, sweep.imc_us);
  std::cout << "\nPower-law fits t(us) ~ size^p:\n"
            << "  FactorHD  p = " << util::fmt_double(fhd.slope, 3)
            << " (r2 " << util::fmt_double(fhd.r2, 2) << ")\n"
            << "  Resonator p = " << util::fmt_double(reso.slope, 3)
            << " (r2 " << util::fmt_double(reso.r2, 2) << ")\n"
            << "  IMC       p = " << util::fmt_double(imc.slope, 3)
            << " (r2 " << util::fmt_double(imc.r2, 2) << ")\n";
  auto speedup_at = [&](const util::LinearFit& base, double size) {
    const double t_base = std::exp(base.intercept) * std::pow(size, base.slope);
    const double t_fhd =
        std::exp(fhd.intercept) * std::pow(size, fhd.slope);
    return t_base / t_fhd;
  };
  std::cout << "\nExtrapolated speedup of FactorHD (paper quotes 18.5x @ 1e6, "
               "5667x @ 1e9):\n";
  util::TextTable table({"problem size", "vs resonator", "vs IMC"});
  for (const double size : {1e6, 1e9}) {
    table.add_row({util::fmt_sci(size),
                   util::fmt_double(speedup_at(reso, size), 1) + "x",
                   util::fmt_double(speedup_at(imc, size), 1) + "x"});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Fig. 4(b,d) reproduction: Rep 1 factorization time,\n"
            << "FactorHD vs C-C baselines, scaling problem size M^F\n"
            << "==============================================================\n";
  Sweep f3;
  if (factorhd::util::bench_full_scale()) {
    f3 = run_family(3, 1500, {10, 22, 46, 100, 215});
    (void)run_family(4, 2000, {6, 10, 18, 32, 56});
  } else {
    f3 = run_family(3, 1500, {10, 22, 46, 100});
    (void)run_family(4, 2000, {6, 10, 18, 32});
  }
  extrapolate(f3);
  return 0;
}
