// Fig. 3 reproduction: the optimal threshold similarity TH* for multi-object
// (Rep 3) factorization as a function of (a) HV dimension D and object count
// N, (b) codebook size M, (c) factor count F — each found by grid search
// (the paper's procedure) and compared with the Eq. 2 prediction.
#include <iostream>

#include "common.hpp"
#include "core/threshold.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

core::CalibrationOptions grid_options() {
  core::CalibrationOptions opts;
  opts.th_min = 0.01;
  opts.th_max = 0.20;
  opts.th_step = 0.01;
  opts.trials_per_point = trials_or_default(16, 96);
  opts.seed = util::experiment_seed();
  return opts;
}

void report(util::TextTable& table, const core::ThresholdProblem& p) {
  const core::CalibrationResult r = calibrate_threshold(p, grid_options());
  // Built via append rather than chained operator+ to dodge a GCC 12
  // -Wrestrict false positive (GCC PR 105651).
  std::string plateau = "[";
  plateau += util::fmt_double(r.plateau_lo, 2);
  plateau += ", ";
  plateau += util::fmt_double(r.plateau_hi, 2);
  plateau += "]";
  table.add_row({std::to_string(p.dim), std::to_string(p.num_objects),
                 std::to_string(p.num_classes),
                 std::to_string(p.codebook_size),
                 util::fmt_double(r.best_threshold, 3), plateau,
                 util::fmt_double(core::predicted_threshold(p), 3),
                 util::fmt_percent(r.best_accuracy)});
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Fig. 3 reproduction: optimal TH* (grid search) vs the Eq. 2\n"
            << "prediction for Rep-3 factorization\n"
            << "==============================================================\n";
  const bool full = util::bench_full_scale();

  {
    std::cout << "\n(a) TH* vs dimension D and object count N (M=10, F=4)\n";
    util::TextTable table(
        {"D", "N", "F", "M", "TH* (plateau mid)", "plateau", "TH* (Eq. 2)", "best acc"});
    const std::vector<std::size_t> dims =
        full ? std::vector<std::size_t>{500, 1000, 2000, 3000, 4000}
             : std::vector<std::size_t>{1000, 2000, 3000};
    const std::vector<std::size_t> ns =
        full ? std::vector<std::size_t>{2, 3, 4} : std::vector<std::size_t>{2, 3};
    for (const std::size_t d : dims) {
      for (const std::size_t n : ns) {
        core::ThresholdProblem p;
        p.dim = d;
        p.num_objects = n;
        p.num_classes = 4;
        p.codebook_size = 10;
        report(table, p);
      }
    }
    table.print(std::cout);
  }

  {
    std::cout << "\n(b) TH* vs codebook size M (D=2000, F=4, N=2)\n";
    util::TextTable table(
        {"D", "N", "F", "M", "TH* (plateau mid)", "plateau", "TH* (Eq. 2)", "best acc"});
    const std::vector<std::size_t> ms =
        full ? std::vector<std::size_t>{5, 10, 20, 35, 50}
             : std::vector<std::size_t>{5, 10, 20};
    for (const std::size_t m : ms) {
      core::ThresholdProblem p;
      p.dim = 2000;
      p.num_objects = 2;
      p.num_classes = 4;
      p.codebook_size = m;
      report(table, p);
    }
    table.print(std::cout);
  }

  {
    std::cout << "\n(c) TH* vs factor count F (N=2, M=10, D=2000)\n";
    util::TextTable table(
        {"D", "N", "F", "M", "TH* (plateau mid)", "plateau", "TH* (Eq. 2)", "best acc"});
    const std::vector<std::size_t> fs =
        full ? std::vector<std::size_t>{3, 4, 5, 6}
             : std::vector<std::size_t>{3, 4, 5};
    for (const std::size_t f : fs) {
      core::ThresholdProblem p;
      p.dim = 2000;
      p.num_objects = 2;
      p.num_classes = f;
      p.codebook_size = 10;
      report(table, p);
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: TH* rises with N, falls with F, and drifts\n"
               "down slowly with D and log M; Eq. 2 should sit inside the\n"
               "high-accuracy plateau of each grid search.\n";
  return 0;
}
