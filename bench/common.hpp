// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary runs standalone with laptop-scale defaults and prints
// paper-style rows to stdout. Environment knobs:
//   FACTORHD_BENCH_SCALE=full   restore paper-scale sweeps (slow)
//   FACTORHD_TRIALS=<n>         override per-point trial counts
//   FACTORHD_SEED=<n>           experiment seed (default 42)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/cc_model.hpp"
#include "baselines/imc_factorizer.hpp"
#include "baselines/resonator.hpp"
#include "core/factorhd.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace factorhd::bench {

/// Per-point measurement shared by the accuracy/time sweeps.
struct Measurement {
  double accuracy = 0.0;
  double mean_time_us = 0.0;
  double median_time_us = 0.0;
  double mean_similarity_ops = 0.0;
  double mean_iterations = 0.0;  ///< resonator/IMC sweeps; 1 for FactorHD
  std::size_t trials = 0;
};

/// Effective trial count: FACTORHD_TRIALS, else `full` when full-scale is on,
/// else `reduced`.
std::size_t trials_or_default(std::size_t reduced, std::size_t full);

/// FactorHD on the flat Rep-1 problem (F classes, M items, single object,
/// single level) at dimension `dim` (already storage-adjusted by the caller).
Measurement factorhd_rep1(std::size_t dim, std::size_t num_factors,
                          std::size_t codebook_size, std::size_t trials,
                          std::uint64_t seed);

/// Resonator network on the same problem at bipolar dimension `dim`.
Measurement resonator_rep1(std::size_t dim, std::size_t num_factors,
                           std::size_t codebook_size, std::size_t trials,
                           std::size_t max_iterations, std::uint64_t seed);

/// IMC stochastic factorizer on the same problem.
Measurement imc_rep1(std::size_t dim, std::size_t num_factors,
                     std::size_t codebook_size, std::size_t trials,
                     std::size_t max_iterations, std::uint64_t seed);

/// Multi-object (Rep 3) FactorHD scene-recovery accuracy on a uniform
/// taxonomy. `threshold <= 0` uses the Eq. 2 prediction.
Measurement factorhd_rep3(std::size_t dim, std::size_t num_factors,
                          const std::vector<std::size_t>& branching,
                          std::size_t num_objects, double threshold,
                          std::size_t trials, std::uint64_t seed);

/// Writes a CSV next to the executable if FACTORHD_CSV_DIR is set; returns
/// the path or empty string.
std::string maybe_csv_path(const std::string& name);

}  // namespace factorhd::bench
