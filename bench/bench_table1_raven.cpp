// Table I reproduction: factorization accuracy on RAVEN-like test sets, per
// constellation and HV dimension.
//
// Each trial draws a random panel (1-9 objects with position / color /
// size-type attributes), encodes the scene, and requires exact multiset
// recovery by multi-object factorization. A second sweep adds the simulated
// perception front end (per-attribute observation error), reporting the
// end-to-end neuro-symbolic accuracy the paper's Table I measures with its
// trained network.
#include <iostream>

#include "common.hpp"
#include "data/raven_like.hpp"

namespace {

using namespace factorhd;
using namespace factorhd::bench;

struct RavenResult {
  double scene_accuracy = 0.0;   ///< exact multiset recovery
  double object_accuracy = 0.0;  ///< per-object recovery rate
};

RavenResult run(data::Constellation constellation, std::size_t dim,
                double perception_error, std::size_t trials,
                std::uint64_t seed) {
  data::RavenSpec spec;
  spec.constellation = constellation;
  spec.perception_error = perception_error;
  util::Xoshiro256 rng(seed);
  const tax::Taxonomy taxonomy = data::raven_taxonomy(spec);
  const tax::TaxonomyCodebooks books(taxonomy, dim, rng);
  const core::Encoder encoder(books);
  const core::Factorizer factorizer(encoder);

  std::size_t scenes_ok = 0, objects_ok = 0, objects_total = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const data::RavenPanel truth = data::random_panel(spec, rng);
    const data::RavenPanel seen = data::perceive(truth, spec, rng);
    const tax::Scene scene = data::to_tax_scene(seen, spec);
    const hdc::Hypervector target = encoder.encode_scene(scene);

    core::FactorizeOptions opts;
    opts.multi_object = true;
    opts.num_objects_hint = scene.size();
    opts.max_objects = data::position_slots(constellation) + 2;
    opts.max_candidates_per_class = data::position_slots(constellation) + 3;
    const core::FactorizeResult r = factorizer.factorize(target, opts);

    tax::Scene recovered;
    for (const auto& o : r.objects) recovered.push_back(o.to_object(3));
    // Score against the *ground truth* panel: perception errors count
    // against the pipeline, exactly as a trained front end's would.
    const tax::Scene truth_scene = data::to_tax_scene(truth, spec);
    if (tax::same_multiset(recovered, truth_scene)) ++scenes_ok;
    for (const auto& obj : truth_scene) {
      ++objects_total;
      for (const auto& rec : recovered) {
        if (rec == obj) {
          ++objects_ok;
          break;
        }
      }
    }
  }
  RavenResult out;
  out.scene_accuracy =
      static_cast<double>(scenes_ok) / static_cast<double>(trials);
  out.object_accuracy = objects_total == 0
                            ? 0.0
                            : static_cast<double>(objects_ok) /
                                  static_cast<double>(objects_total);
  return out;
}

void sweep(double perception_error) {
  const std::size_t trials = trials_or_default(24, 200);
  const std::uint64_t seed = util::experiment_seed();
  const std::vector<std::size_t> dims = util::bench_full_scale()
                                            ? std::vector<std::size_t>{256, 500, 1000, 2000}
                                            : std::vector<std::size_t>{256, 500, 1000};

  std::cout << "\nPer-object recovery accuracy, perception error = "
            << util::fmt_percent(perception_error) << " (" << trials
            << " panels/cell; scene-exact in parentheses)\n";
  std::vector<std::string> header{"constellation"};
  for (const std::size_t d : dims) header.push_back("D=" + std::to_string(d));
  util::TextTable table(header);
  for (const data::Constellation c : data::all_constellations()) {
    std::vector<std::string> row{data::constellation_name(c)};
    for (const std::size_t d : dims) {
      const RavenResult r = run(c, d, perception_error, trials, seed);
      row.push_back(util::fmt_percent(r.object_accuracy) + " (" +
                    util::fmt_percent(r.scene_accuracy) + ")");
    }
    table.add_row(row);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
            << "Table I reproduction: RAVEN-like factorization accuracy per\n"
            << "constellation and dimension\n"
            << "==============================================================\n";
  sweep(/*perception_error=*/0.0);
  sweep(/*perception_error=*/0.05);
  std::cout << "\nExpected shape: >=90% for most constellations at D=1000,\n"
               "decent accuracy retained at reduced D; dense grids (3x3Grid)\n"
               "degrade first as object count approaches bundle capacity.\n";
  return 0;
}
