// Extension bench: network tail latency and goodput under overload — the
// open-loop load generator over the FHN1 front end (src/net/).
//
// Unlike bench_ext_service (closed-loop producers that slow down when the
// server does), this harness sends on a Poisson schedule that does NOT
// wait for responses — the arrival process an actual service faces. A
// saturation probe first measures the server's closed-loop capacity; the
// sweep then offers 0.5x / 1x / 2x / 4x that rate (hot/cold target mix)
// through one pipelined NetClient connection and reports, per row:
// achieved goodput, p50/p99/p99.9 result latency, and how the excess load
// was shed (explicit kOverload rejects vs timeouts vs errors).
//
// The admission-control claim (ISSUE 10 acceptance, enforced by
// scripts/bench_json.py --check on the committed full-mode baseline):
//
//   * at 0.5x saturation the tail stays bounded: p99 <= 10x p50;
//   * at 4x saturation the excess is REJECTED (overload frames), never
//     silently timed out — rejects >= 1 and timeouts == 0.
//
// `--smoke` runs a tiny sweep for CI; `--json FILE` writes the
// factorhd.bench_latency.v1 document.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "common.hpp"
#include "hdc/kernels/simd.hpp"
#include "net/net.hpp"
#include "service/service.hpp"
#include "taxonomy/generator.hpp"

namespace {

using namespace factorhd;
using namespace std::chrono_literals;

using Clock = std::chrono::steady_clock;

double quantile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

/// One row of the load sweep.
struct Row {
  std::string name;
  double multiplier = 0.0;    ///< offered rate / measured saturation
  double offered_rps = 0.0;   ///< Poisson arrival rate
  double seconds = 0.0;       ///< first send -> last response
  std::uint64_t sent = 0;
  std::uint64_t results = 0;
  std::uint64_t overloads = 0;  ///< explicit kOverload rejects
  std::uint64_t errors = 0;     ///< kError responses
  std::uint64_t timeouts = 0;   ///< responses that never arrived
  double goodput_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// Open-loop Poisson run: a sender thread issues `requests` factorize
/// frames on schedule (exponential inter-arrivals at `rate` req/s, hot/cold
/// target mix), a receiver thread drains every response. Nothing in the
/// sender waits for the server.
Row run_open_loop(std::uint16_t port, const std::vector<hdc::Hypervector>& hot,
                  const std::vector<hdc::Hypervector>& cold, double hot_frac,
                  double rate, std::size_t requests, std::uint64_t seed,
                  std::chrono::milliseconds recv_timeout) {
  net::NetClient client("127.0.0.1", port);
  client.set_recv_timeout(recv_timeout);

  // Request ids are sequential from 1 (NetClient contract), so send times
  // index a flat vector; the mutex covers the sender/receiver handoff.
  std::mutex mu;
  std::vector<Clock::time_point> send_time(requests + 1);
  std::uint64_t sent = 0;

  const Clock::time_point start = Clock::now();
  std::thread sender([&] {
    util::Xoshiro256 rng(seed);
    double offset_s = 0.0;
    for (std::size_t i = 0; i < requests; ++i) {
      // Exponential inter-arrival; u in [0,1) so 1-u never hits log(0).
      offset_s += -std::log(1.0 - rng.uniform_double()) / rate;
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(offset_s)));
      const auto& target = rng.bernoulli(hot_frac)
                               ? hot[rng.uniform(hot.size())]
                               : cold[rng.uniform(cold.size())];
      {
        std::lock_guard lock(mu);
        send_time[sent + 1] = Clock::now();
        ++sent;
      }
      (void)client.send_factorize(target);
    }
  });

  Row row;
  std::vector<double> latencies_us;
  latencies_us.reserve(requests);
  Clock::time_point last_response = start;
  for (std::size_t i = 0; i < requests; ++i) {
    net::NetClient::Response resp;
    try {
      resp = client.recv_response();
    } catch (const std::exception&) {
      break;  // timeout or disconnect: stop waiting for the rest
    }
    last_response = Clock::now();
    switch (resp.kind) {
      case net::NetClient::Response::Kind::kResult: {
        ++row.results;
        Clock::time_point sent_at;
        {
          std::lock_guard lock(mu);
          sent_at = send_time[resp.request_id];
        }
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(last_response - sent_at)
                .count());
        break;
      }
      case net::NetClient::Response::Kind::kOverload:
        ++row.overloads;
        break;
      default:
        ++row.errors;
        break;
    }
  }
  sender.join();
  row.sent = sent;
  // Anything sent but never answered (within the receive timeout) is a
  // timeout — the failure mode the 4x acceptance bound forbids.
  row.timeouts = row.sent - row.results - row.overloads - row.errors;

  std::sort(latencies_us.begin(), latencies_us.end());
  row.offered_rps = rate;
  row.seconds =
      std::chrono::duration<double>(last_response - start).count();
  row.goodput_rps = row.seconds > 0
                        ? static_cast<double>(row.results) / row.seconds
                        : 0.0;
  row.p50_us = quantile(latencies_us, 0.50);
  row.p99_us = quantile(latencies_us, 0.99);
  row.p999_us = quantile(latencies_us, 0.999);
  return row;
}

void write_json(const std::string& path, bool smoke, std::size_t dim,
                std::size_t items, std::size_t requests, double saturation_rps,
                double hot_frac, std::uint64_t seed,
                const net::ServerOptions& sopts, const std::vector<Row>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_ext_latency: cannot write " << path << "\n";
    std::exit(1);
  }
  namespace hk = hdc::kernels;
  const auto fmt = [](double v) { return util::fmt_double(v, 3); };
  out << "{\n"
      << "  \"schema\": \"factorhd.bench_latency.v1\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"context\": {\n"
      << "    \"dim\": " << dim << ",\n"
      << "    \"items\": " << items << ",\n"
      << "    \"requests_per_row\": " << requests << ",\n"
      << "    \"saturation_rps\": " << fmt(saturation_rps) << ",\n"
      << "    \"hot_fraction\": " << fmt(hot_frac) << ",\n"
      << "    \"admission_depth\": " << sopts.admission.depth << ",\n"
      << "    \"client_quota\": " << sopts.admission.client_quota << ",\n"
      << "    \"seed\": " << seed << ",\n"
      << "    \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "    \"simd_level\": \""
      << hk::to_string(hk::dispatched_simd_level()) << "\"\n"
      << "  },\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"multiplier\": "
        << fmt(r.multiplier) << ", \"offered_rps\": " << fmt(r.offered_rps)
        << ", \"seconds\": " << util::fmt_double(r.seconds, 6)
        << ", \"sent\": " << r.sent << ", \"results\": " << r.results
        << ", \"overloads\": " << r.overloads << ", \"errors\": " << r.errors
        << ", \"timeouts\": " << r.timeouts
        << ", \"goodput_rps\": " << fmt(r.goodput_rps)
        << ", \"p50_us\": " << fmt(r.p50_us) << ", \"p99_us\": "
        << fmt(r.p99_us) << ", \"p999_us\": " << fmt(r.p999_us) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_ext_latency [--smoke] [--json FILE]\n";
      return 2;
    }
  }

  std::cout << "==============================================================\n"
            << "Extension: network tail latency + admission under overload\n"
            << "==============================================================\n";
  const std::uint64_t seed = util::experiment_seed();
  util::Xoshiro256 rng(seed);

  const std::size_t dim = smoke ? 256 : 512;
  const std::size_t items = smoke ? 16 : 64;
  const std::size_t requests =
      smoke ? 150 : (util::bench_full_scale() ? 4000 : 2400);
  const double hot_frac = 0.8;
  const tax::Taxonomy taxonomy(3, {items});
  auto model = service::Model::make(
      "bench", tax::TaxonomyCodebooks(taxonomy, dim, rng));

  // Engine tuned for serving (tiny flush deadline: latency, not batch
  // formation, dominates) and an admission queue small enough that 4x
  // overload must reject rather than buffer its way to timeouts.
  service::FactorizationEngine engine(
      model, service::ServiceOptions{.max_batch = 64,
                                     .max_delay_us = 100,
                                     .cache_capacity = 0});
  net::ServerOptions sopts;
  sopts.admission.depth = 128;
  sopts.admission.client_quota = 64;
  net::NetServer server(engine, sopts);
  server.start();

  std::vector<hdc::Hypervector> cold, hot;
  for (std::size_t i = 0; i < (smoke ? 24u : 128u); ++i) {
    cold.push_back(
        model->encoder().encode_object(tax::random_object(taxonomy, rng)));
  }
  hot.assign(cold.begin(), cold.begin() + (smoke ? 4 : 8));

  std::cout << "D=" << dim << ", F=3, M=" << items << ", " << requests
            << " requests/row, hot fraction " << hot_frac
            << ", admission depth " << sopts.admission.depth << ", quota "
            << sopts.admission.client_quota << " ("
            << server.poller_name() << ")\n\n";

  // Saturation probe: closed-loop pipelined requests measure what the
  // server can actually sustain on this machine; the sweep is relative to
  // it so the 0.5x/4x rows mean the same thing on any hardware.
  double saturation_rps = 0.0;
  {
    net::NetClient probe("127.0.0.1", server.port());
    probe.set_recv_timeout(30s);
    const std::size_t probe_n = smoke ? 60 : 400;
    constexpr std::size_t kWindow = 16;
    util::Stopwatch sw;
    std::size_t sent = 0;
    std::size_t received = 0;
    while (received < probe_n) {
      while (sent < probe_n && sent - received < kWindow) {
        (void)probe.send_factorize(cold[sent % cold.size()]);
        ++sent;
      }
      const auto resp = probe.recv_response();
      if (resp.kind != net::NetClient::Response::Kind::kResult) {
        std::cerr << "bench_ext_latency: saturation probe got a non-result "
                     "response\n";
        return 1;
      }
      ++received;
    }
    saturation_rps = static_cast<double>(probe_n) / sw.elapsed_seconds();
  }
  std::cout << "saturation (closed-loop, window 16): "
            << util::fmt_double(saturation_rps, 0) << " req/s\n\n";

  util::TextTable table({"load", "offered req/s", "goodput", "p50", "p99",
                         "p99.9", "results", "rejects", "timeouts"});
  std::vector<Row> rows;
  const double multipliers[] = {0.5, 1.0, 2.0, 4.0};
  for (const double mult : multipliers) {
    // Discarded warmup at the same rate: the measured window sees steady
    // state, not connection setup, cold caches, or clock ramp-up.
    (void)run_open_loop(server.port(), hot, cold, hot_frac,
                        mult * saturation_rps, requests / 6,
                        seed + static_cast<std::uint64_t>(mult * 1000) + 1,
                        smoke ? 10s : 30s);
    Row row = run_open_loop(server.port(), hot, cold, hot_frac,
                            mult * saturation_rps, requests,
                            seed + static_cast<std::uint64_t>(mult * 1000),
                            smoke ? 10s : 30s);
    row.multiplier = mult;
    row.name = "load " + util::fmt_double(mult, 1) + "x";
    table.add_row({row.name, util::fmt_double(row.offered_rps, 0),
                   util::fmt_double(row.goodput_rps, 0),
                   util::fmt_time_us(row.p50_us), util::fmt_time_us(row.p99_us),
                   util::fmt_time_us(row.p999_us), std::to_string(row.results),
                   std::to_string(row.overloads),
                   std::to_string(row.timeouts)});
    rows.push_back(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: below saturation the tail stays tight\n"
               "(p99 <= 10x p50 at 0.5x — the committed-baseline bound);\n"
               "past saturation goodput plateaus near capacity and the\n"
               "excess is shed as explicit overload rejects, not timeouts.\n";

  server.stop();
  engine.stop();

  if (!json_path.empty()) {
    write_json(json_path, smoke, dim, items, requests, saturation_rps,
               hot_frac, seed, sopts, rows);
    std::cout << "\nwrote " << json_path << "\n";
  }

  // Self-checks (both modes; the committed full-mode baseline re-enforces
  // them via bench_json.py --check): every send is accounted, and 4x
  // overload sheds by rejecting.
  for (const Row& r : rows) {
    if (r.results + r.overloads + r.errors + r.timeouts != r.sent) {
      std::cerr << "FAIL: " << r.name << ": sent " << r.sent
                << " != results+overloads+errors+timeouts\n";
      return 1;
    }
  }
  const Row& overload_row = rows.back();
  if (overload_row.timeouts != 0) {
    std::cerr << "FAIL: 4x overload shed " << overload_row.timeouts
              << " requests by timeout instead of rejecting\n";
    return 1;
  }
  if (overload_row.overloads == 0) {
    std::cerr << "FAIL: 4x overload produced no explicit rejects\n";
    return 1;
  }
  std::cout << "\ncheck: all sends accounted; 4x load shed by explicit "
               "rejects ("
            << overload_row.overloads << " overload frames, 0 timeouts)\n";
  return 0;
}
