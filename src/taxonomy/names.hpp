// Human-readable names for taxonomy classes and items.
//
// The numeric (class, level, index) addressing of tax::Taxonomy is what the
// algorithms need; applications want "animal/dog/spaniel". NameRegistry is a
// thin bidirectional mapping kept separate from the taxonomy itself so the
// hot paths never touch strings.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "taxonomy/object.hpp"
#include "taxonomy/taxonomy.hpp"

namespace factorhd::tax {

class NameRegistry {
 public:
  /// Registry over `taxonomy`'s shape (kept by value; registries are small).
  explicit NameRegistry(Taxonomy taxonomy);

  [[nodiscard]] const Taxonomy& taxonomy() const noexcept { return taxonomy_; }

  /// Names a class; throws std::out_of_range on a bad index and
  /// std::invalid_argument on a duplicate name within classes.
  void set_class_name(std::size_t cls, std::string name);

  /// Names an item at (class, level, index); duplicate names within the same
  /// (class, level) are rejected.
  void set_item_name(std::size_t cls, std::size_t level, std::size_t index,
                     std::string name);

  /// Name lookups; fall back to numeric forms ("c2", "c2/l1/14") when unset.
  [[nodiscard]] std::string class_name(std::size_t cls) const;
  [[nodiscard]] std::string item_name(std::size_t cls, std::size_t level,
                                      std::size_t index) const;

  /// Reverse lookups.
  [[nodiscard]] std::optional<std::size_t> class_index(
      std::string_view name) const;
  [[nodiscard]] std::optional<std::size_t> item_index(
      std::size_t cls, std::size_t level, std::string_view name) const;

  /// "color: brown, animal: dog/spaniel" style rendering of an object.
  [[nodiscard]] std::string describe(const Object& obj) const;

 private:
  [[nodiscard]] std::size_t slot(std::size_t cls, std::size_t level) const;

  Taxonomy taxonomy_;
  std::vector<std::string> class_names_;
  std::unordered_map<std::string, std::size_t> class_lookup_;
  // Flattened per-(class, level) item name tables.
  std::vector<std::vector<std::string>> item_names_;
  std::vector<std::unordered_map<std::string, std::size_t>> item_lookup_;
  std::vector<std::size_t> slot_of_class_;  // first slot index per class
};

}  // namespace factorhd::tax
