#include "taxonomy/generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace factorhd::tax {

namespace {

Path random_path(const Taxonomy& t, std::size_t cls, std::size_t depth,
                 util::Xoshiro256& rng) {
  Path p;
  p.reserve(depth);
  std::size_t index = rng.uniform(t.level_size(cls, 1));
  p.push_back(index);
  for (std::size_t l = 2; l <= depth; ++l) {
    const std::size_t b = t.branching(cls)[l - 1];
    index = index * b + rng.uniform(b);
    p.push_back(index);
  }
  return p;
}

}  // namespace

Object random_object(const Taxonomy& t, util::Xoshiro256& rng,
                     const ObjectGenOptions& opts) {
  Object obj(t.num_classes());
  for (std::size_t c = 0; c < t.num_classes(); ++c) {
    const std::size_t depth =
        opts.depth == 0 ? t.depth(c) : std::min(opts.depth, t.depth(c));
    if (opts.class_presence >= 1.0 || rng.bernoulli(opts.class_presence)) {
      obj.set_path(c, random_path(t, c, depth, rng));
    }
  }
  return obj;
}

Scene random_scene(const Taxonomy& t, util::Xoshiro256& rng,
                   const SceneGenOptions& opts) {
  Scene scene;
  scene.reserve(opts.num_objects);
  // Bounded retry loop for distinctness; 64 attempts per slot is far beyond
  // what uniform draws need unless the object space is tiny, in which case we
  // fail loudly rather than loop forever.
  constexpr int kMaxAttempts = 64;
  for (std::size_t i = 0; i < opts.num_objects; ++i) {
    Object candidate(t.num_classes());
    bool ok = false;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      candidate = random_object(t, rng, opts.object);
      if (opts.allow_duplicates ||
          std::find(scene.begin(), scene.end(), candidate) == scene.end()) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::runtime_error(
          "random_scene: could not draw distinct objects (object space too "
          "small for requested scene size)");
    }
    scene.push_back(std::move(candidate));
  }
  return scene;
}

Path random_path_below(const Taxonomy& t, std::size_t cls,
                       std::size_t level1_item, util::Xoshiro256& rng) {
  if (level1_item >= t.level_size(cls, 1)) {
    throw std::out_of_range("random_path_below: level-1 index out of range");
  }
  Path p{level1_item};
  std::size_t index = level1_item;
  for (std::size_t l = 2; l <= t.depth(cls); ++l) {
    const std::size_t b = t.branching(cls)[l - 1];
    index = index * b + rng.uniform(b);
    p.push_back(index);
  }
  return p;
}

}  // namespace factorhd::tax
