// Random problem-instance generators used by tests and the benchmark
// harness: random objects (full or partial paths, optional absent classes)
// and random scenes (optionally with duplicate objects to exercise the
// "problem of 2").
#pragma once

#include <cstddef>

#include "taxonomy/object.hpp"
#include "taxonomy/taxonomy.hpp"
#include "util/rng.hpp"

namespace factorhd::tax {

struct ObjectGenOptions {
  /// Probability that a class is present in the object. 1.0 = all classes.
  double class_presence = 1.0;
  /// Path depth for present classes; 0 means "full depth". Classes shallower
  /// than the requested depth are clamped to their own depth.
  std::size_t depth = 0;
};

/// A uniformly random object. Present classes carry a uniformly random valid
/// path (each level's index drawn among the children of the previous level).
[[nodiscard]] Object random_object(const Taxonomy& t, util::Xoshiro256& rng,
                                   const ObjectGenOptions& opts = {});

struct SceneGenOptions {
  std::size_t num_objects = 2;
  ObjectGenOptions object;
  /// When false, re-draws until all objects in the scene are distinct
  /// (requires the taxonomy to have enough distinct objects).
  bool allow_duplicates = false;
};

/// A random scene of `opts.num_objects` objects.
[[nodiscard]] Scene random_scene(const Taxonomy& t, util::Xoshiro256& rng,
                                 const SceneGenOptions& opts = {});

/// Extends a level-1-only path of class `cls` to full depth by random child
/// choices (helper for building partially-known queries in tests).
[[nodiscard]] Path random_path_below(const Taxonomy& t, std::size_t cls,
                                     std::size_t level1_item,
                                     util::Xoshiro256& rng);

}  // namespace factorhd::tax
