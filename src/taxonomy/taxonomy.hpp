// Class-subclass hierarchy description (the paper's Fig. 1(a) structure).
//
// A representation problem has F classes (factors). Every class owns a tree
// of subclass items: branching(c)[0] level-1 subclasses for class c,
// branching(c)[1] level-2 sub-subclasses per level-1 item, and so on. Items
// at level l are addressed by a global index in [0, level_size(c, l)); the
// parent/child arithmetic below encodes the tree shape without storing
// per-node objects.
//
// Classes may have *heterogeneous* shapes (e.g. the RAVEN attributes:
// 9 positions, 10 colors, 30 size-type combinations) or share one shape (the
// paper's synthetic Rep 1-3 experiments); the two constructors cover both.
// The classic flat factorization problem (F codebooks of M items, problem
// size M^F) is the uniform case depth == 1, branching == {M}.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace factorhd::tax {

class Taxonomy {
 public:
  /// Uniform shape: every one of `num_classes` classes gets the same
  /// `branching` chain. Throws std::invalid_argument on empty/zero inputs.
  Taxonomy(std::size_t num_classes, std::vector<std::size_t> branching);

  /// Heterogeneous shape: one branching chain per class.
  explicit Taxonomy(std::vector<std::vector<std::size_t>> per_class_branching);

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return branching_.size();
  }

  /// Number of subclass levels below class `cls` (>= 1).
  [[nodiscard]] std::size_t depth(std::size_t cls) const {
    return branching_at(cls).size();
  }
  /// Deepest subclass level across all classes.
  [[nodiscard]] std::size_t max_depth() const noexcept { return max_depth_; }
  /// True when every class shares the same branching chain.
  [[nodiscard]] bool uniform() const noexcept;

  [[nodiscard]] const std::vector<std::size_t>& branching(
      std::size_t cls) const {
    return branching_at(cls);
  }

  /// Number of items of class `cls` at subclass level `level` (1-based): the
  /// product of branching factors up to that level.
  [[nodiscard]] std::size_t level_size(std::size_t cls,
                                       std::size_t level) const;

  /// Global index of the parent (at level-1) of item `index` at `level >= 2`.
  [[nodiscard]] std::size_t parent_of(std::size_t cls, std::size_t level,
                                      std::size_t index) const;

  /// Global indices of the children (at level+1) of item `index` at `level`.
  [[nodiscard]] std::vector<std::size_t> children_of(std::size_t cls,
                                                     std::size_t level,
                                                     std::size_t index) const;

  /// True when `child` at `level+1` descends from `parent` at `level`.
  [[nodiscard]] bool is_child(std::size_t cls, std::size_t level,
                              std::size_t parent, std::size_t child) const;

  /// Number of distinct full paths within class `cls`.
  [[nodiscard]] std::size_t paths_per_class(std::size_t cls) const {
    return level_sizes_at(cls).back();
  }

  /// Largest level-1 codebook across classes (the M entering Eq. 2).
  [[nodiscard]] std::size_t max_level1_size() const noexcept;

  /// Total problem size for single-object factorization: the product over
  /// classes of paths_per_class, computed in double to allow the paper's
  /// 1e9-scale sizes without overflow.
  [[nodiscard]] double problem_size() const noexcept;

  bool operator==(const Taxonomy&) const = default;

 private:
  [[nodiscard]] const std::vector<std::size_t>& branching_at(
      std::size_t cls) const;
  [[nodiscard]] const std::vector<std::size_t>& level_sizes_at(
      std::size_t cls) const;
  void check_level(std::size_t cls, std::size_t level) const;

  std::vector<std::vector<std::size_t>> branching_;
  std::vector<std::vector<std::size_t>> level_sizes_;  // cumulative products
  std::size_t max_depth_ = 0;
};

}  // namespace factorhd::tax
