#include "taxonomy/io.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "hdc/io.hpp"

namespace factorhd::tax {

namespace {

constexpr std::uint32_t kTaxonomyMagic = 0x31415446;  // 'FTA1'
constexpr std::uint32_t kBooksMagic = 0x31435446;     // 'FTC1'
constexpr std::uint64_t kMaxReasonable = 1ULL << 20;

template <typename T>
void write_pod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const char* what) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) {
    throw std::runtime_error(std::string("tax::io: truncated input reading ") +
                             what);
  }
  return value;
}

}  // namespace

void save_taxonomy(std::ostream& os, const Taxonomy& t) {
  write_pod<std::uint32_t>(os, kTaxonomyMagic);
  write_pod<std::uint64_t>(os, t.num_classes());
  for (std::size_t c = 0; c < t.num_classes(); ++c) {
    const auto& chain = t.branching(c);
    write_pod<std::uint64_t>(os, chain.size());
    for (std::size_t b : chain) write_pod<std::uint64_t>(os, b);
  }
  if (!os) throw std::runtime_error("tax::io: write failed");
}

Taxonomy load_taxonomy(std::istream& is) {
  if (read_pod<std::uint32_t>(is, "taxonomy magic") != kTaxonomyMagic) {
    throw std::runtime_error("tax::io: bad taxonomy magic");
  }
  const auto num_classes = read_pod<std::uint64_t>(is, "class count");
  if (num_classes == 0 || num_classes > kMaxReasonable) {
    throw std::runtime_error("tax::io: implausible class count");
  }
  std::vector<std::vector<std::size_t>> per_class;
  per_class.reserve(static_cast<std::size_t>(num_classes));
  for (std::uint64_t c = 0; c < num_classes; ++c) {
    const auto depth = read_pod<std::uint64_t>(is, "class depth");
    if (depth == 0 || depth > kMaxReasonable) {
      throw std::runtime_error("tax::io: implausible depth");
    }
    std::vector<std::size_t> chain;
    chain.reserve(static_cast<std::size_t>(depth));
    for (std::uint64_t l = 0; l < depth; ++l) {
      const auto b = read_pod<std::uint64_t>(is, "branching factor");
      if (b == 0 || b > kMaxReasonable) {
        throw std::runtime_error("tax::io: implausible branching factor");
      }
      chain.push_back(static_cast<std::size_t>(b));
    }
    per_class.push_back(std::move(chain));
  }
  return Taxonomy(std::move(per_class));
}

void save_codebooks(std::ostream& os, const TaxonomyCodebooks& books) {
  write_pod<std::uint32_t>(os, kBooksMagic);
  save_taxonomy(os, books.taxonomy());
  hdc::save_hypervector(os, books.null_hv());
  const Taxonomy& t = books.taxonomy();
  for (std::size_t c = 0; c < t.num_classes(); ++c) {
    hdc::save_hypervector(os, books.label(c));
    for (std::size_t l = 1; l <= t.depth(c); ++l) {
      hdc::save_codebook(os, books.level_codebook(c, l));
    }
  }
  if (!os) throw std::runtime_error("tax::io: write failed");
}

TaxonomyCodebooks load_codebooks(std::istream& is) {
  if (read_pod<std::uint32_t>(is, "codebooks magic") != kBooksMagic) {
    throw std::runtime_error("tax::io: bad codebooks magic");
  }
  Taxonomy taxonomy = load_taxonomy(is);
  hdc::Hypervector null_hv = hdc::load_hypervector(is);
  std::vector<ClassCodebooks> classes;
  classes.reserve(taxonomy.num_classes());
  for (std::size_t c = 0; c < taxonomy.num_classes(); ++c) {
    ClassCodebooks cc;
    cc.label = hdc::load_hypervector(is);
    for (std::size_t l = 1; l <= taxonomy.depth(c); ++l) {
      cc.levels.push_back(hdc::load_codebook(is));
    }
    classes.push_back(std::move(cc));
  }
  return TaxonomyCodebooks::from_parts(std::move(taxonomy), std::move(null_hv),
                                       std::move(classes));
}

void save_codebooks_file(const std::string& path,
                         const TaxonomyCodebooks& books) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("tax::io: cannot open " + path);
  save_codebooks(out, books);
}

TaxonomyCodebooks load_codebooks_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("tax::io: cannot open " + path);
  return load_codebooks(in);
}

}  // namespace factorhd::tax
