#include "taxonomy/taxonomy.hpp"

#include <algorithm>
#include <cmath>

namespace factorhd::tax {

Taxonomy::Taxonomy(std::size_t num_classes, std::vector<std::size_t> branching)
    : Taxonomy(std::vector<std::vector<std::size_t>>(num_classes,
                                                     std::move(branching))) {
  if (num_classes == 0) {
    throw std::invalid_argument("Taxonomy: need at least one class");
  }
}

Taxonomy::Taxonomy(std::vector<std::vector<std::size_t>> per_class_branching)
    : branching_(std::move(per_class_branching)) {
  if (branching_.empty()) {
    throw std::invalid_argument("Taxonomy: need at least one class");
  }
  level_sizes_.reserve(branching_.size());
  for (const auto& chain : branching_) {
    if (chain.empty()) {
      throw std::invalid_argument("Taxonomy: need at least one subclass level");
    }
    std::vector<std::size_t> sizes;
    sizes.reserve(chain.size());
    std::size_t acc = 1;
    for (std::size_t b : chain) {
      if (b == 0) {
        throw std::invalid_argument("Taxonomy: zero branching factor");
      }
      acc *= b;
      sizes.push_back(acc);
    }
    level_sizes_.push_back(std::move(sizes));
    max_depth_ = std::max(max_depth_, chain.size());
  }
}

bool Taxonomy::uniform() const noexcept {
  return std::all_of(branching_.begin(), branching_.end(),
                     [&](const auto& c) { return c == branching_[0]; });
}

const std::vector<std::size_t>& Taxonomy::branching_at(std::size_t cls) const {
  if (cls >= branching_.size()) {
    throw std::out_of_range("Taxonomy: class index out of range");
  }
  return branching_[cls];
}

const std::vector<std::size_t>& Taxonomy::level_sizes_at(
    std::size_t cls) const {
  if (cls >= level_sizes_.size()) {
    throw std::out_of_range("Taxonomy: class index out of range");
  }
  return level_sizes_[cls];
}

void Taxonomy::check_level(std::size_t cls, std::size_t level) const {
  if (level == 0 || level > depth(cls)) {
    throw std::out_of_range("Taxonomy: level out of range");
  }
}

std::size_t Taxonomy::level_size(std::size_t cls, std::size_t level) const {
  check_level(cls, level);
  return level_sizes_at(cls)[level - 1];
}

std::size_t Taxonomy::parent_of(std::size_t cls, std::size_t level,
                                std::size_t index) const {
  check_level(cls, level);
  if (level < 2) {
    throw std::out_of_range("Taxonomy::parent_of: level-1 items have no parent");
  }
  if (index >= level_size(cls, level)) {
    throw std::out_of_range("Taxonomy::parent_of: index out of range");
  }
  return index / branching_at(cls)[level - 1];
}

std::vector<std::size_t> Taxonomy::children_of(std::size_t cls,
                                               std::size_t level,
                                               std::size_t index) const {
  check_level(cls, level);
  if (level >= depth(cls)) {
    throw std::out_of_range(
        "Taxonomy::children_of: deepest level has no children");
  }
  if (index >= level_size(cls, level)) {
    throw std::out_of_range("Taxonomy::children_of: index out of range");
  }
  const std::size_t b = branching_at(cls)[level];
  std::vector<std::size_t> kids(b);
  for (std::size_t k = 0; k < b; ++k) kids[k] = index * b + k;
  return kids;
}

bool Taxonomy::is_child(std::size_t cls, std::size_t level, std::size_t parent,
                        std::size_t child) const {
  check_level(cls, level);
  if (level >= depth(cls)) return false;
  return child / branching_at(cls)[level] == parent;
}

std::size_t Taxonomy::max_level1_size() const noexcept {
  std::size_t m = 0;
  for (const auto& chain : branching_) m = std::max(m, chain[0]);
  return m;
}

double Taxonomy::problem_size() const noexcept {
  double p = 1.0;
  for (std::size_t c = 0; c < num_classes(); ++c) {
    p *= static_cast<double>(paths_per_class(c));
  }
  return p;
}

}  // namespace factorhd::tax
