// Binary serialization of taxonomies and their codebook material — the
// "model file" of a deployed FactorHD system. Builds on hdc/io.hpp framing.
//
// Format (little-endian):
//   Taxonomy:          u32 magic 'FTA1' | u64 num_classes
//                      | per class: u64 depth, u64 branching[depth]
//   TaxonomyCodebooks: u32 magic 'FTC1' | Taxonomy | Hypervector (NULL)
//                      | per class: Hypervector (label), depth Codebooks
#pragma once

#include <iosfwd>
#include <string>

#include "taxonomy/codebooks.hpp"
#include "taxonomy/taxonomy.hpp"

namespace factorhd::tax {

void save_taxonomy(std::ostream& os, const Taxonomy& t);
[[nodiscard]] Taxonomy load_taxonomy(std::istream& is);

void save_codebooks(std::ostream& os, const TaxonomyCodebooks& books);
[[nodiscard]] TaxonomyCodebooks load_codebooks(std::istream& is);

/// File-path convenience wrappers; throw std::runtime_error on I/O failure.
void save_codebooks_file(const std::string& path,
                         const TaxonomyCodebooks& books);
[[nodiscard]] TaxonomyCodebooks load_codebooks_file(const std::string& path);

}  // namespace factorhd::tax
