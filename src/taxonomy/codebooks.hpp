// Hypervector material for a taxonomy: per-class labels, per-level item
// codebooks, and the global NULL hypervector.
//
// This is the "HV codebooks" box of the paper's Fig. 1(a): encoding a
// taxonomy generates one LABEL HV per class, one codebook per (class,
// subclass level), and a single NULL HV bundled with the label of any class
// an object does not possess.
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"
#include "taxonomy/object.hpp"
#include "taxonomy/taxonomy.hpp"
#include "util/rng.hpp"

namespace factorhd::tax {

/// HV material for one class: its label plus one codebook per subclass level.
struct ClassCodebooks {
  hdc::Hypervector label;
  std::vector<hdc::Codebook> levels;  ///< levels[l-1] covers subclass level l
};

class TaxonomyCodebooks {
 public:
  /// Generates all HVs for `taxonomy` at dimension `dim` from `rng`.
  TaxonomyCodebooks(Taxonomy taxonomy, std::size_t dim, util::Xoshiro256& rng);

  /// Rebuilds from previously generated material (deserialization path).
  /// Validates shapes/dimensions and recomputes the unbinding keys; throws
  /// std::invalid_argument on any mismatch with `taxonomy`.
  static TaxonomyCodebooks from_parts(Taxonomy taxonomy,
                                      hdc::Hypervector null_hv,
                                      std::vector<ClassCodebooks> classes);

  [[nodiscard]] const Taxonomy& taxonomy() const noexcept { return taxonomy_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  [[nodiscard]] const hdc::Hypervector& label(std::size_t cls) const {
    return classes_.at(cls).label;
  }
  [[nodiscard]] const hdc::Hypervector& null_hv() const noexcept {
    return null_;
  }

  /// Codebook of class `cls` at subclass level `level` (1-based).
  [[nodiscard]] const hdc::Codebook& level_codebook(std::size_t cls,
                                                    std::size_t level) const;

  /// Item HV for (class, level, index).
  [[nodiscard]] const hdc::Hypervector& item(std::size_t cls,
                                             std::size_t level,
                                             std::size_t index) const {
    return level_codebook(cls, level).item(index);
  }

  /// Product of all class labels except `cls` — the unbinding key used by
  /// the FactorHD factorization algorithm. Precomputed at construction.
  [[nodiscard]] const hdc::Hypervector& other_labels_key(
      std::size_t cls) const {
    return other_label_keys_.at(cls);
  }

  /// Total storage footprint of all codebooks in item HVs (diagnostics).
  [[nodiscard]] std::size_t total_items() const noexcept;

 private:
  /// Deserialization constructor backing from_parts.
  struct FromPartsTag {};
  TaxonomyCodebooks(FromPartsTag, Taxonomy taxonomy, hdc::Hypervector null_hv,
                    std::vector<ClassCodebooks> classes);

  void build_other_label_keys();

  Taxonomy taxonomy_;
  std::size_t dim_;
  hdc::Hypervector null_;
  std::vector<ClassCodebooks> classes_;
  std::vector<hdc::Hypervector> other_label_keys_;
};

}  // namespace factorhd::tax
