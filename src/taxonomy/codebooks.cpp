#include "taxonomy/codebooks.hpp"

#include <stdexcept>
#include <string>

#include "hdc/ops.hpp"
#include "hdc/random.hpp"

namespace factorhd::tax {

TaxonomyCodebooks::TaxonomyCodebooks(Taxonomy taxonomy, std::size_t dim,
                                     util::Xoshiro256& rng)
    : taxonomy_(std::move(taxonomy)), dim_(dim) {
  if (dim_ == 0) {
    throw std::invalid_argument("TaxonomyCodebooks: zero dimension");
  }
  null_ = hdc::random_bipolar(dim_, rng);
  classes_.reserve(taxonomy_.num_classes());
  for (std::size_t c = 0; c < taxonomy_.num_classes(); ++c) {
    ClassCodebooks cc;
    cc.label = hdc::random_bipolar(dim_, rng);
    cc.levels.reserve(taxonomy_.depth(c));
    for (std::size_t l = 1; l <= taxonomy_.depth(c); ++l) {
      cc.levels.emplace_back(dim_, taxonomy_.level_size(c, l), rng,
                             "class" + std::to_string(c) + "/level" +
                                 std::to_string(l));
    }
    classes_.push_back(std::move(cc));
  }
  build_other_label_keys();
}

void TaxonomyCodebooks::build_other_label_keys() {
  // Precompute per-class unbinding keys: the bound product of every *other*
  // class label. Factorization binds the target with this key to collapse all
  // unselected clauses to (approximately) the identity.
  other_label_keys_.clear();
  other_label_keys_.reserve(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    hdc::Hypervector key = hdc::identity(dim_);
    for (std::size_t j = 0; j < classes_.size(); ++j) {
      if (j != c) hdc::bind_inplace(key, classes_[j].label);
    }
    other_label_keys_.push_back(std::move(key));
  }
}

TaxonomyCodebooks::TaxonomyCodebooks(FromPartsTag, Taxonomy taxonomy,
                                     hdc::Hypervector null_hv,
                                     std::vector<ClassCodebooks> classes)
    : taxonomy_(std::move(taxonomy)), dim_(null_hv.dim()),
      null_(std::move(null_hv)), classes_(std::move(classes)) {
  if (dim_ == 0) {
    throw std::invalid_argument("TaxonomyCodebooks: zero dimension");
  }
  if (classes_.size() != taxonomy_.num_classes()) {
    throw std::invalid_argument("TaxonomyCodebooks: class count mismatch");
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const ClassCodebooks& cc = classes_[c];
    if (cc.label.dim() != dim_) {
      throw std::invalid_argument("TaxonomyCodebooks: label dim mismatch");
    }
    if (cc.levels.size() != taxonomy_.depth(c)) {
      throw std::invalid_argument("TaxonomyCodebooks: level count mismatch");
    }
    for (std::size_t l = 1; l <= cc.levels.size(); ++l) {
      const hdc::Codebook& cb = cc.levels[l - 1];
      if (cb.dim() != dim_ || cb.size() != taxonomy_.level_size(c, l)) {
        throw std::invalid_argument(
            "TaxonomyCodebooks: codebook shape mismatch");
      }
    }
  }
  build_other_label_keys();
}

TaxonomyCodebooks TaxonomyCodebooks::from_parts(
    Taxonomy taxonomy, hdc::Hypervector null_hv,
    std::vector<ClassCodebooks> classes) {
  return TaxonomyCodebooks(FromPartsTag{}, std::move(taxonomy),
                           std::move(null_hv), std::move(classes));
}

const hdc::Codebook& TaxonomyCodebooks::level_codebook(
    std::size_t cls, std::size_t level) const {
  const ClassCodebooks& cc = classes_.at(cls);
  if (level == 0 || level > cc.levels.size()) {
    throw std::out_of_range("TaxonomyCodebooks: level out of range");
  }
  return cc.levels[level - 1];
}

std::size_t TaxonomyCodebooks::total_items() const noexcept {
  std::size_t n = 1;  // NULL
  for (const auto& cc : classes_) {
    n += 1;  // label
    for (const auto& cb : cc.levels) n += cb.size();
  }
  return n;
}

}  // namespace factorhd::tax
