#include "taxonomy/names.hpp"

#include <stdexcept>

namespace factorhd::tax {

NameRegistry::NameRegistry(Taxonomy taxonomy) : taxonomy_(std::move(taxonomy)) {
  class_names_.resize(taxonomy_.num_classes());
  slot_of_class_.resize(taxonomy_.num_classes());
  std::size_t slots = 0;
  for (std::size_t c = 0; c < taxonomy_.num_classes(); ++c) {
    slot_of_class_[c] = slots;
    slots += taxonomy_.depth(c);
  }
  item_names_.resize(slots);
  item_lookup_.resize(slots);
  for (std::size_t c = 0; c < taxonomy_.num_classes(); ++c) {
    for (std::size_t l = 1; l <= taxonomy_.depth(c); ++l) {
      item_names_[slot(c, l)].resize(taxonomy_.level_size(c, l));
    }
  }
}

std::size_t NameRegistry::slot(std::size_t cls, std::size_t level) const {
  if (cls >= taxonomy_.num_classes() || level == 0 ||
      level > taxonomy_.depth(cls)) {
    throw std::out_of_range("NameRegistry: class/level out of range");
  }
  return slot_of_class_[cls] + (level - 1);
}

void NameRegistry::set_class_name(std::size_t cls, std::string name) {
  if (cls >= taxonomy_.num_classes()) {
    throw std::out_of_range("NameRegistry: class out of range");
  }
  if (auto existing = class_index(name);
      existing.has_value() && *existing != cls) {
    throw std::invalid_argument("NameRegistry: duplicate class name " + name);
  }
  if (!class_names_[cls].empty()) class_lookup_.erase(class_names_[cls]);
  class_lookup_[name] = cls;
  class_names_[cls] = std::move(name);
}

void NameRegistry::set_item_name(std::size_t cls, std::size_t level,
                                 std::size_t index, std::string name) {
  const std::size_t s = slot(cls, level);
  if (index >= item_names_[s].size()) {
    throw std::out_of_range("NameRegistry: item index out of range");
  }
  if (auto existing = item_index(cls, level, name);
      existing.has_value() && *existing != index) {
    throw std::invalid_argument("NameRegistry: duplicate item name " + name);
  }
  if (!item_names_[s][index].empty()) {
    item_lookup_[s].erase(item_names_[s][index]);
  }
  item_lookup_[s][name] = index;
  item_names_[s][index] = std::move(name);
}

std::string NameRegistry::class_name(std::size_t cls) const {
  if (cls >= taxonomy_.num_classes()) {
    throw std::out_of_range("NameRegistry: class out of range");
  }
  if (!class_names_[cls].empty()) return class_names_[cls];
  // Built via append rather than chained operator+ to dodge a GCC 12
  // -Wrestrict false positive (GCC PR 105651).
  std::string out = "c";
  out += std::to_string(cls);
  return out;
}

std::string NameRegistry::item_name(std::size_t cls, std::size_t level,
                                    std::size_t index) const {
  const std::size_t s = slot(cls, level);
  if (index >= item_names_[s].size()) {
    throw std::out_of_range("NameRegistry: item index out of range");
  }
  if (!item_names_[s][index].empty()) return item_names_[s][index];
  std::string out = "c";
  out += std::to_string(cls);
  out += "/l";
  out += std::to_string(level);
  out += "/";
  out += std::to_string(index);
  return out;
}

std::optional<std::size_t> NameRegistry::class_index(
    std::string_view name) const {
  const auto it = class_lookup_.find(std::string(name));
  if (it == class_lookup_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> NameRegistry::item_index(
    std::size_t cls, std::size_t level, std::string_view name) const {
  const auto& table = item_lookup_[slot(cls, level)];
  const auto it = table.find(std::string(name));
  if (it == table.end()) return std::nullopt;
  return it->second;
}

std::string NameRegistry::describe(const Object& obj) const {
  std::string out = "{";
  bool first = true;
  for (std::size_t c = 0; c < obj.num_classes() && c < taxonomy_.num_classes();
       ++c) {
    if (!first) out += ", ";
    first = false;
    out += class_name(c) + ": ";
    if (!obj.has_class(c)) {
      out += "-";
      continue;
    }
    const Path& p = obj.path(c);
    for (std::size_t l = 1; l <= p.size(); ++l) {
      if (l > 1) out += "/";
      out += item_name(c, l, p[l - 1]);
    }
  }
  out += "}";
  return out;
}

}  // namespace factorhd::tax
