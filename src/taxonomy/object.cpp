#include "taxonomy/object.hpp"

#include <sstream>

namespace factorhd::tax {

bool Object::valid_for(const Taxonomy& t) const {
  if (paths_.size() != t.num_classes()) return false;
  for (std::size_t c = 0; c < paths_.size(); ++c) {
    if (!paths_[c]) continue;
    const Path& p = *paths_[c];
    if (p.empty() || p.size() > t.depth(c)) return false;
    for (std::size_t l = 1; l <= p.size(); ++l) {
      if (p[l - 1] >= t.level_size(c, l)) return false;
      if (l >= 2 && t.parent_of(c, l, p[l - 1]) != p[l - 2]) return false;
    }
  }
  return true;
}

std::string Object::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t c = 0; c < paths_.size(); ++c) {
    if (c) os << ", ";
    os << 'c' << c << ": ";
    if (!paths_[c]) {
      os << '-';
    } else {
      const Path& p = *paths_[c];
      for (std::size_t l = 0; l < p.size(); ++l) {
        if (l) os << '/';
        os << p[l];
      }
    }
  }
  os << '}';
  return os.str();
}

bool valid_scene(const Scene& scene, const Taxonomy& t) {
  for (const auto& obj : scene) {
    if (!obj.valid_for(t)) return false;
  }
  return true;
}

bool same_multiset(const Scene& a, const Scene& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const Object& oa : a) {
    bool matched = false;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (!used[j] && b[j] == oa) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace factorhd::tax
