// Symbolic objects and scenes over a taxonomy.
//
// An Object assigns, for each class, either "absent" (the paper's NULL case)
// or a path of item indices down the class's subclass tree — e.g. for the
// class "animals": {dogs, spaniels}. A Scene is a multiset of objects (the
// multi-object representations of Rep 3); duplicates are legal and exercise
// the "problem of 2".
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "taxonomy/taxonomy.hpp"

namespace factorhd::tax {

/// Item indices along one class's subclass chain, from level 1 downward.
/// path[l-1] is the global index at level l. May be shorter than the
/// taxonomy depth (an object known only down to some level).
using Path = std::vector<std::size_t>;

class Object {
 public:
  /// Object over `num_classes` classes with every class absent.
  explicit Object(std::size_t num_classes) : paths_(num_classes) {}

  /// Explicit per-class assignment.
  explicit Object(std::vector<std::optional<Path>> paths)
      : paths_(std::move(paths)) {}

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return paths_.size();
  }

  [[nodiscard]] bool has_class(std::size_t cls) const {
    return paths_.at(cls).has_value();
  }

  /// Path for class `cls`; throws std::bad_optional_access when absent.
  [[nodiscard]] const Path& path(std::size_t cls) const {
    return paths_.at(cls).value();
  }

  [[nodiscard]] const std::optional<Path>& maybe_path(std::size_t cls) const {
    return paths_.at(cls);
  }

  void set_path(std::size_t cls, Path path) {
    paths_.at(cls) = std::move(path);
  }
  void clear_class(std::size_t cls) { paths_.at(cls).reset(); }

  /// True when the object is structurally valid for `t`: class count matches,
  /// every path fits within depth, indices are in range and each level is a
  /// child of the previous one.
  [[nodiscard]] bool valid_for(const Taxonomy& t) const;

  /// Human-readable form, e.g. "{c0: 3/31, c1: -, c2: 7/75}".
  [[nodiscard]] std::string to_string() const;

  bool operator==(const Object&) const = default;

 private:
  std::vector<std::optional<Path>> paths_;
};

/// A multiset of objects (a multi-object representation).
using Scene = std::vector<Object>;

/// True when every object in the scene is valid for `t`.
[[nodiscard]] bool valid_scene(const Scene& scene, const Taxonomy& t);

/// True when the two scenes contain the same objects with the same
/// multiplicities, in any order (the correctness criterion for multi-object
/// factorization, including the duplicate-object "problem of 2" cases).
[[nodiscard]] bool same_multiset(const Scene& a, const Scene& b);

}  // namespace factorhd::tax
