// C-I (class-instance) model: the binding-bundling representation of
// Kanerva-style record encodings (paper §II-B) and the comparator of the
// paper's Fig. 4(e,f).
//
// A single object bundles role-filler bindings, H = Σ_i role_i ⊙ a_{i,j_i};
// factorization unbinds a role and cleans up against that class's codebook —
// cheap and effective for ONE object. The model's documented failure modes,
// both exercised by our benches, are:
//
//   * superposition catastrophe — bundling several objects pools each class's
//     fillers with no record of which filler belongs to which object;
//     decoding can recover the per-class item *sets* but must guess the
//     associations;
//   * the problem of 2 — identical objects collapse (2·H carries no usable
//     count under cleanup), so duplicate objects cannot be represented.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"
#include "util/rng.hpp"

namespace factorhd::baselines {

class CIModel {
 public:
  /// F role HVs and F codebooks of M item HVs at dimension `dim`.
  CIModel(std::size_t dim, std::size_t num_classes, std::size_t codebook_size,
          util::Xoshiro256& rng);

  // The scan memories reference this object's own codebooks, so copies
  // would dangle; the model is built in place wherever it is used.
  CIModel(const CIModel&) = delete;
  CIModel& operator=(const CIModel&) = delete;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return codebooks_.size();
  }
  [[nodiscard]] std::size_t codebook_size() const noexcept {
    return codebooks_.empty() ? 0 : codebooks_[0].size();
  }

  [[nodiscard]] const hdc::Hypervector& role(std::size_t cls) const {
    return roles_.at(cls);
  }
  [[nodiscard]] const hdc::Codebook& codebook(std::size_t cls) const {
    return codebooks_.at(cls);
  }

  /// Single-object record Σ_i role_i ⊙ a_{i,indices[i]} (kept in Z^D).
  [[nodiscard]] hdc::Hypervector encode(
      const std::vector<std::size_t>& indices) const;

  /// Multi-object bundle (where the superposition catastrophe lives).
  [[nodiscard]] hdc::Hypervector encode_scene(
      const std::vector<std::vector<std::size_t>>& objects) const;

  /// Single-object factorization: per class, unbind the role and clean up.
  /// `sim_ops`, when non-null, accumulates similarity measurements.
  [[nodiscard]] std::vector<std::size_t> factorize_single(
      const hdc::Hypervector& h, std::uint64_t* sim_ops = nullptr) const;

  /// Partial factorization of one class only.
  [[nodiscard]] std::size_t factorize_class(
      const hdc::Hypervector& h, std::size_t cls,
      std::uint64_t* sim_ops = nullptr) const;

  /// Multi-object decoding: top-`num_objects` items per class. The return is
  /// per-class item sets; the model provides NO binding information across
  /// classes, so callers that need object tuples must guess an association —
  /// that guess is the superposition catastrophe made concrete.
  [[nodiscard]] std::vector<std::vector<std::size_t>> factorize_scene_sets(
      const hdc::Hypervector& h, std::size_t num_objects,
      std::uint64_t* sim_ops = nullptr) const;

 private:
  std::size_t dim_;
  std::vector<hdc::Hypervector> roles_;
  std::vector<hdc::Codebook> codebooks_;
  /// Per-class scan memories, built once at construction (record queries
  /// are integer bundles and scan scalar, but single-binding unbinds at
  /// F = 1 and ternary records still reach the packed backend).
  std::vector<hdc::ItemMemory> memories_;
};

}  // namespace factorhd::baselines
