// Software simulation of the in-memory stochastic factorizer (Langenegger,
// Karunaratne, Hersche, Benini, Sebastian & Rahimi, Nature Nanotechnology
// 2023) — the second baseline of the paper's Fig. 4.
//
// The IMC factorizer augments resonator dynamics with two ingredients that
// raise its capacity by orders of magnitude:
//
//   1. *Stochasticity* — on real PCM crossbars the analog similarity readout
//      carries intrinsic noise, which breaks the limit cycles that trap the
//      deterministic resonator. We model it as additive Gaussian noise on
//      the normalized attention values.
//   2. *Sparse threshold activation* — attention values below a threshold
//      are zeroed before projecting back, so only plausible candidates steer
//      the next estimate.
//
// Convergence is detected by re-encoding the current argmax decode and
// comparing it to the target (an explicit solution check each sweep), so the
// reported iteration count is "sweeps until solved".
//
// Substitution note (DESIGN.md §4): the published system executes the
// attention in PCM crossbars; this simulation reproduces the algorithm and
// its iteration statistics, not the device physics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "baselines/cc_model.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"
#include "util/rng.hpp"

namespace factorhd::baselines {

struct ImcOptions {
  /// Cap on update sweeps before declaring failure.
  std::size_t max_iterations = 3000;
  /// Sparse activation threshold on normalized attention (similarity) values.
  double activation_threshold = 0.04;
  /// Stddev of the additive readout noise on normalized attention values.
  double noise_stddev = 0.03;
  /// RNG seed for the stochastic readout.
  std::uint64_t seed = 0x1b2c3d4e5f60718aULL;
};

struct ImcResult {
  std::vector<std::size_t> factors;
  std::size_t iterations = 0;
  bool converged = false;
  std::uint64_t similarity_ops = 0;
};

class ImcFactorizer {
 public:
  /// Non-owning view; `model` must outlive the factorizer. As in the
  /// resonator, each factor's codebook is wrapped in an hdc::ItemMemory so
  /// the noiseless part of the attention readout runs on the packed
  /// word-plane backend; the Gaussian readout noise is added on top of the
  /// exact normalized similarities.
  /// \param model C-C model whose codebooks define the problem.
  /// \param opts Noise, activation-threshold, and budget settings.
  explicit ImcFactorizer(const CCModel& model, ImcOptions opts = {});

  /// Factorizes a single-object product HV.
  /// \param target Bound product HV of one item per factor.
  /// \return Decoded indices, sweep count, convergence flag, and cost.
  /// \throws std::invalid_argument On target dimension mismatch.
  [[nodiscard]] ImcResult factorize(const hdc::Hypervector& target) const;

 private:
  const CCModel* model_;
  ImcOptions opts_;
  /// Per-factor codebook scan memories (packed backend when eligible).
  std::vector<hdc::ItemMemory> memories_;
};

}  // namespace factorhd::baselines
