#include "baselines/imc_factorizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "hdc/ops.hpp"
#include "hdc/similarity.hpp"

namespace factorhd::baselines {

ImcFactorizer::ImcFactorizer(const CCModel& model, ImcOptions opts)
    : model_(&model), opts_(opts) {
  memories_.reserve(model.num_factors());
  for (std::size_t f = 0; f < model.num_factors(); ++f) {
    memories_.emplace_back(model.codebook(f));
  }
}

ImcResult ImcFactorizer::factorize(const hdc::Hypervector& target) const {
  const std::size_t f_count = model_->num_factors();
  const std::size_t m = model_->codebook_size();
  const std::size_t d = model_->dim();
  if (target.dim() != d) {
    throw std::invalid_argument("ImcFactorizer: target dimension mismatch");
  }

  util::Xoshiro256 rng(opts_.seed);
  std::vector<hdc::Hypervector> est(f_count);
  for (std::size_t f = 0; f < f_count; ++f) {
    // Random bipolar initial estimates: with stochastic dynamics there is no
    // benefit to the superposition start, and random starts decorrelate
    // repeated trials.
    hdc::Hypervector init(d);
    auto* p = init.data();
    for (std::size_t k = 0; k < d; ++k) p[k] = rng.bipolar();
    est[f] = std::move(init);
  }

  ImcResult result;
  std::vector<std::int64_t> raw(m);
  std::vector<double> attention(m);
  std::vector<double> acc(d);
  std::vector<std::size_t> best_index(f_count, 0);

  for (std::size_t iter = 0; iter < opts_.max_iterations; ++iter) {
    for (std::size_t f = 0; f < f_count; ++f) {
      hdc::Hypervector y = target;
      for (std::size_t j = 0; j < f_count; ++j) {
        if (j != f) hdc::bind_inplace(y, est[j]);
      }
      // Noisy normalized attention with sparse threshold activation. The
      // exact similarities come from one batched packed scan (ỹ is bipolar);
      // the simulated analog readout noise is added on top.
      memories_[f].dots(y, raw);
      double best = -1e300;
      for (std::size_t j = 0; j < m; ++j) {
        const double sim =
            static_cast<double>(raw[j]) / static_cast<double>(d);
        const double noisy = sim + opts_.noise_stddev * rng.normal();
        attention[j] = noisy;
        if (noisy > best) {
          best = noisy;
          best_index[f] = j;
        }
      }
      result.similarity_ops += m;
      std::size_t active = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (attention[j] < opts_.activation_threshold) {
          attention[j] = 0.0;
        } else if (attention[j] > 0.0) {
          ++active;
        }
      }
      // If the activation silenced everything, keep only the argmax so the
      // dynamics always move toward *some* codevector.
      if (active == 0) attention[best_index[f]] = best;

      std::fill(acc.begin(), acc.end(), 0.0);
      for (std::size_t j = 0; j < m; ++j) {
        const double w = attention[j];
        if (w == 0.0) continue;
        const auto* item = model_->codebook(f).item(j).data();
        for (std::size_t k = 0; k < d; ++k) acc[k] += w * item[k];
      }
      hdc::Hypervector next(d);
      auto* pn = next.data();
      for (std::size_t k = 0; k < d; ++k) {
        // Stochastic tie-break keeps zero-sum dimensions from freezing.
        pn[k] = acc[k] > 0.0 ? 1 : (acc[k] < 0.0 ? -1 : rng.bipolar());
      }
      est[f] = std::move(next);
    }
    ++result.iterations;

    // Explicit solution check: re-encode the current argmax decode and
    // compare with the target. Products of bipolar codevectors are exact,
    // so a correct decode reproduces the target verbatim.
    const hdc::Hypervector decoded = model_->encode(best_index);
    if (decoded == target) {
      result.converged = true;
      break;
    }
  }
  result.factors = best_index;
  return result;
}

}  // namespace factorhd::baselines
