// C-C (class-class) model: the binding-bundling representation used by the
// resonator-network and IMC-factorizer baselines (paper §II-B).
//
// A single object is the bound product of one item HV per factor,
// H = a_{1,j1} ⊙ a_{2,j2} ⊙ ... ⊙ a_{F,jF}; multiple objects are the Z^D
// bundle of their products. Factorizing H back into its constituent items is
// the combinatorial search problem (M^F candidates) that resonator-style
// iterative methods attack.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "util/rng.hpp"

namespace factorhd::baselines {

class CCModel {
 public:
  /// F codebooks of M random bipolar item HVs at dimension `dim`.
  CCModel(std::size_t dim, std::size_t num_factors, std::size_t codebook_size,
          util::Xoshiro256& rng);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t num_factors() const noexcept {
    return codebooks_.size();
  }
  [[nodiscard]] std::size_t codebook_size() const noexcept {
    return codebooks_.empty() ? 0 : codebooks_[0].size();
  }
  /// Total problem size M^F as a double (can exceed 2^64 at paper scales).
  [[nodiscard]] double problem_size() const noexcept;

  [[nodiscard]] const hdc::Codebook& codebook(std::size_t factor) const {
    return codebooks_.at(factor);
  }

  /// Product HV of one item per factor; `indices.size()` must equal F.
  [[nodiscard]] hdc::Hypervector encode(
      std::span<const std::size_t> indices) const;

  /// Bundle of several objects' product HVs.
  [[nodiscard]] hdc::Hypervector encode_scene(
      std::span<const std::vector<std::size_t>> objects) const;

  /// Ground-truth-checking helper: exhaustive factorization cost in
  /// similarity measurements, i.e. M^F (reported, never executed).
  [[nodiscard]] double exhaustive_cost() const noexcept {
    return problem_size();
  }

 private:
  std::size_t dim_;
  std::vector<hdc::Codebook> codebooks_;
};

}  // namespace factorhd::baselines
