#include "baselines/resonator.hpp"

#include <algorithm>
#include <stdexcept>

#include "hdc/ops.hpp"
#include "hdc/similarity.hpp"

namespace factorhd::baselines {

ResonatorNetwork::ResonatorNetwork(const CCModel& model, ResonatorOptions opts)
    : model_(&model), opts_(opts) {
  memories_.reserve(model.num_factors());
  for (std::size_t f = 0; f < model.num_factors(); ++f) {
    memories_.emplace_back(model.codebook(f));
  }
}

ResonatorResult ResonatorNetwork::factorize(
    const hdc::Hypervector& target) const {
  const std::size_t f_count = model_->num_factors();
  const std::size_t m = model_->codebook_size();
  const std::size_t d = model_->dim();
  if (target.dim() != d) {
    throw std::invalid_argument("ResonatorNetwork: target dimension mismatch");
  }
  const bool synchronous =
      opts_.update == ResonatorOptions::Update::kSynchronous;
  const bool hardmax = opts_.cleanup == ResonatorOptions::Cleanup::kHardmax;

  // Initial estimates: bipolarized superposition of each codebook (the
  // "everything at once" starting state of the resonator dynamics).
  std::vector<hdc::Hypervector> est(f_count);
  for (std::size_t f = 0; f < f_count; ++f) {
    hdc::Hypervector sum(d);
    for (std::size_t j = 0; j < m; ++j) {
      hdc::accumulate(sum, model_->codebook(f).item(j));
    }
    est[f] = hdc::sign_bipolar(sum);
  }

  ResonatorResult result;
  std::vector<std::int64_t> attention(m);
  std::vector<std::int64_t> acc(d);
  std::vector<std::size_t> best_index(f_count, 0);
  // Synchronous sweeps read `prev`, write `est`; sequential sweeps update
  // `est` in place.
  std::vector<hdc::Hypervector> prev;

  for (std::size_t iter = 0; iter < opts_.max_iterations; ++iter) {
    bool changed = false;
    if (synchronous) prev = est;
    const std::vector<hdc::Hypervector>& read = synchronous ? prev : est;

    for (std::size_t f = 0; f < f_count; ++f) {
      // Unbind the other factors' current estimates from the target.
      hdc::Hypervector y = target;
      for (std::size_t j = 0; j < f_count; ++j) {
        if (j != f) hdc::bind_inplace(y, read[j]);
      }
      // Attention over the codebook: one batched packed scan (ỹ is bipolar,
      // so this runs on the word-plane kernels).
      memories_[f].dots(y, attention);
      std::int64_t best = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (j == 0 || attention[j] > best) {
          best = attention[j];
          best_index[f] = j;
        }
      }
      result.similarity_ops += m;

      hdc::Hypervector next(d);
      if (hardmax) {
        next = model_->codebook(f).item(best_index[f]);
      } else {
        // Project back onto the codebook span and bipolarize.
        std::fill(acc.begin(), acc.end(), 0);
        for (std::size_t j = 0; j < m; ++j) {
          const auto w = attention[j];
          if (w == 0) continue;
          const auto* item = model_->codebook(f).item(j).data();
          for (std::size_t k = 0; k < d; ++k) acc[k] += w * item[k];
        }
        auto* pn = next.data();
        for (std::size_t k = 0; k < d; ++k) pn[k] = acc[k] >= 0 ? 1 : -1;
      }
      if (next != est[f]) {
        est[f] = std::move(next);
        changed = true;
      }
    }
    ++result.iterations;
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  result.factors = best_index;
  return result;
}

}  // namespace factorhd::baselines
