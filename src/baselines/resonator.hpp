// Resonator network factorizer (Frady, Kent, Olshausen & Sommer, Neural
// Computation 2020) — the classical iterative solution to C-C factorization
// and the first baseline of the paper's Fig. 4.
//
// Each factor keeps a bipolar estimate x̂_i, initialized to the bipolarized
// superposition of its whole codebook. One sweep updates factors:
//
//   ỹ_i   = H ⊙ (⊙_{j≠i} x̂_j)          (unbind the other estimates)
//   α_i   = A_i ỹ_i                      (attention: M similarities)
//   x̂_i  = sign(A_iᵀ α_i)               (project back onto the codebook span)
//
// The dynamics search the M^F solution space in superposition and converge
// to a fixed point; capacity is limited (the network enters limit cycles or
// spurious fixed points as M^F grows — the paper's "fails at 1e6" result).
//
// Two documented variants of the dynamics are selectable (both appear in
// the resonator literature; see Kent et al. 2020 for the comparison):
//   * update schedule — kSequential (asynchronous; each factor sees the
//     others' already-updated estimates within a sweep, the faster-
//     converging default) vs kSynchronous (all factors read the previous
//     sweep's estimates);
//   * cleanup — kProjection (sign of the attention-weighted codebook
//     superposition; keeps candidate mixtures alive between sweeps) vs
//     kHardmax (snap to the single best codevector — an alternating
//     coordinate-descent that is cheaper per sweep but greedy, so it
//     plateaus earlier as the problem grows).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "baselines/cc_model.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"

namespace factorhd::baselines {

struct ResonatorOptions {
  /// Cap on full update sweeps before declaring failure.
  std::size_t max_iterations = 500;

  enum class Update { kSequential, kSynchronous };
  Update update = Update::kSequential;

  enum class Cleanup { kProjection, kHardmax };
  Cleanup cleanup = Cleanup::kProjection;
};

struct ResonatorResult {
  /// Decoded item index per factor (argmax attention at termination).
  std::vector<std::size_t> factors;
  /// Full sweeps executed.
  std::size_t iterations = 0;
  /// True when a fixed point was reached within the budget.
  bool converged = false;
  /// Codebook similarity measurements performed (F*M per sweep).
  std::uint64_t similarity_ops = 0;
};

class ResonatorNetwork {
 public:
  /// Non-owning view; `model` must outlive the network. Each factor's
  /// codebook is wrapped in an hdc::ItemMemory so the attention step (the
  /// F*M dot products per sweep) runs on the packed word-plane backend —
  /// the unbound estimate ỹ_i is always bipolar, so every sweep qualifies.
  /// \param model C-C model whose codebooks define the problem.
  /// \param opts Update-schedule / cleanup variant selection.
  explicit ResonatorNetwork(const CCModel& model, ResonatorOptions opts = {});

  [[nodiscard]] const ResonatorOptions& options() const noexcept {
    return opts_;
  }

  /// Factorizes a single-object product HV.
  /// \param target Bound product HV of one item per factor.
  /// \return Decoded indices, sweep count, convergence flag, and cost.
  /// \throws std::invalid_argument On target dimension mismatch.
  [[nodiscard]] ResonatorResult factorize(const hdc::Hypervector& target) const;

 private:
  const CCModel* model_;
  ResonatorOptions opts_;
  /// Per-factor codebook scan memories (packed backend when eligible).
  std::vector<hdc::ItemMemory> memories_;
};

}  // namespace factorhd::baselines
