#include "baselines/cc_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "hdc/ops.hpp"

namespace factorhd::baselines {

CCModel::CCModel(std::size_t dim, std::size_t num_factors,
                 std::size_t codebook_size, util::Xoshiro256& rng)
    : dim_(dim) {
  if (num_factors < 2) {
    throw std::invalid_argument("CCModel: need at least two factors");
  }
  codebooks_.reserve(num_factors);
  for (std::size_t f = 0; f < num_factors; ++f) {
    codebooks_.emplace_back(dim, codebook_size, rng,
                            "factor" + std::to_string(f));
  }
}

double CCModel::problem_size() const noexcept {
  return std::pow(static_cast<double>(codebook_size()),
                  static_cast<double>(num_factors()));
}

hdc::Hypervector CCModel::encode(std::span<const std::size_t> indices) const {
  if (indices.size() != num_factors()) {
    throw std::invalid_argument("CCModel::encode: wrong number of indices");
  }
  hdc::Hypervector product = codebooks_[0].item(indices[0]);
  for (std::size_t f = 1; f < codebooks_.size(); ++f) {
    hdc::bind_inplace(product, codebooks_[f].item(indices[f]));
  }
  return product;
}

hdc::Hypervector CCModel::encode_scene(
    std::span<const std::vector<std::size_t>> objects) const {
  if (objects.empty()) {
    throw std::invalid_argument("CCModel::encode_scene: empty scene");
  }
  hdc::Hypervector sum = encode(objects[0]);
  for (std::size_t i = 1; i < objects.size(); ++i) {
    hdc::accumulate(sum, encode(objects[i]));
  }
  return sum;
}

}  // namespace factorhd::baselines
