#include "baselines/ci_model.hpp"

#include <stdexcept>
#include <string>

#include "hdc/item_memory.hpp"
#include "hdc/ops.hpp"
#include "hdc/random.hpp"

namespace factorhd::baselines {

CIModel::CIModel(std::size_t dim, std::size_t num_classes,
                 std::size_t codebook_size, util::Xoshiro256& rng)
    : dim_(dim) {
  if (num_classes == 0) {
    throw std::invalid_argument("CIModel: need at least one class");
  }
  roles_.reserve(num_classes);
  codebooks_.reserve(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    roles_.push_back(hdc::random_bipolar(dim, rng));
    codebooks_.emplace_back(dim, codebook_size, rng,
                            "class" + std::to_string(c));
  }
  memories_.reserve(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    memories_.emplace_back(codebooks_[c]);
  }
}

hdc::Hypervector CIModel::encode(
    const std::vector<std::size_t>& indices) const {
  if (indices.size() != num_classes()) {
    throw std::invalid_argument("CIModel::encode: wrong number of indices");
  }
  hdc::Hypervector sum(dim_);
  for (std::size_t c = 0; c < indices.size(); ++c) {
    hdc::accumulate(sum, hdc::bind(roles_[c], codebooks_[c].item(indices[c])));
  }
  return sum;
}

hdc::Hypervector CIModel::encode_scene(
    const std::vector<std::vector<std::size_t>>& objects) const {
  if (objects.empty()) {
    throw std::invalid_argument("CIModel::encode_scene: empty scene");
  }
  hdc::Hypervector sum = encode(objects[0]);
  for (std::size_t i = 1; i < objects.size(); ++i) {
    hdc::accumulate(sum, encode(objects[i]));
  }
  return sum;
}

std::size_t CIModel::factorize_class(const hdc::Hypervector& h,
                                     std::size_t cls,
                                     std::uint64_t* sim_ops) const {
  const hdc::Hypervector unbound = hdc::bind(h, roles_.at(cls));
  const hdc::Match m = memories_[cls].best(unbound);
  if (sim_ops != nullptr) *sim_ops += codebooks_[cls].size();
  return m.index;
}

std::vector<std::size_t> CIModel::factorize_single(
    const hdc::Hypervector& h, std::uint64_t* sim_ops) const {
  std::vector<std::size_t> out(num_classes());
  for (std::size_t c = 0; c < num_classes(); ++c) {
    out[c] = factorize_class(h, c, sim_ops);
  }
  return out;
}

std::vector<std::vector<std::size_t>> CIModel::factorize_scene_sets(
    const hdc::Hypervector& h, std::size_t num_objects,
    std::uint64_t* sim_ops) const {
  std::vector<std::vector<std::size_t>> sets(num_classes());
  for (std::size_t c = 0; c < num_classes(); ++c) {
    const hdc::Hypervector unbound = hdc::bind(h, roles_[c]);
    for (const hdc::Match& m : memories_[c].top_k(unbound, num_objects)) {
      sets[c].push_back(m.index);
    }
    if (sim_ops != nullptr) *sim_ops += codebooks_[c].size();
  }
  return sets;
}

}  // namespace factorhd::baselines
