#include "hdc/sequence.hpp"

#include <stdexcept>

#include "hdc/item_memory.hpp"
#include "hdc/ops.hpp"

namespace factorhd::hdc {

Hypervector encode_sequence(std::span<const Hypervector> items) {
  if (items.empty()) {
    throw std::invalid_argument("encode_sequence: empty sequence");
  }
  Hypervector sum = items[0];  // rho^0 = identity
  for (std::size_t i = 1; i < items.size(); ++i) {
    accumulate(sum, permute(items[i], i));
  }
  return sum;
}

Match decode_sequence_position(const Hypervector& sequence,
                               std::size_t position,
                               const Codebook& codebook) {
  const Hypervector unrotated = unpermute(sequence, position);
  // Transient memory for one scan: skip the O(M*D) packing, which could
  // never amortize here (and the unrotated bundle is usually integer).
  return ItemMemory(codebook, ScanBackend::kScalar).best(unrotated);
}

std::vector<std::size_t> decode_sequence(const Hypervector& sequence,
                                         std::size_t length,
                                         const Codebook& codebook) {
  std::vector<std::size_t> out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(decode_sequence_position(sequence, i, codebook).index);
  }
  return out;
}

Hypervector encode_ngram(std::span<const Hypervector> items) {
  if (items.empty()) {
    throw std::invalid_argument("encode_ngram: empty n-gram");
  }
  Hypervector product = items[0];
  for (std::size_t i = 1; i < items.size(); ++i) {
    bind_inplace(product, permute(items[i], i));
  }
  return product;
}

Hypervector encode_ngram_bag(std::span<const Hypervector> items,
                             std::size_t n) {
  if (n == 0 || items.size() < n) {
    throw std::invalid_argument("encode_ngram_bag: need items.size() >= n > 0");
  }
  Hypervector sum(items[0].dim());
  for (std::size_t start = 0; start + n <= items.size(); ++start) {
    accumulate(sum, encode_ngram(items.subspan(start, n)));
  }
  return sum;
}

}  // namespace factorhd::hdc
