// ItemMemory: associative ("cleanup") memory over a codebook.
//
// Given a noisy query HV, finds the codebook entries most similar to it under
// the paper's dot-product similarity. This is the primitive that every
// factorizer (FactorHD and all baselines) spends its time in, so the class
// also counts similarity measurements — the unit in which the paper states
// its O(N_M) vs M^F efficiency claims.
//
// Scans run on one of two backends:
//
//  * scalar  — int32 dot products straight off the codebook (works for any
//    query and any codebook alphabet);
//  * packed  — the hdc/kernels/ word-plane scans: the codebook is packed
//    once into 64-bit sign/nonzero planes and each scan is XOR+popcount
//    arithmetic, 64 dimensions per word operation. Bit-identical results
//    (index, similarity, ordering) to the scalar backend.
//
// With the default kAuto selection, a bipolar or ternary codebook gets the
// packed backend and every bipolar/ternary query runs on it; integer-bundle
// queries (e.g. the multi-object residual) transparently fall back to the
// scalar loop per call. Copies share the immutable packed planes.
//
// A third, *approximate* backend exists for codebooks far beyond the paper's
// sizes: kTiered routes full-codebook scans (best / above / top_k) through
// kernels::TieredItemMemory, a two-stage coarse-quantization cascade that
// scans cluster centroids first and runs the exact packed scan only over the
// top-nprobe buckets. kAuto upgrades to it automatically at/above
// FACTORHD_TIERED_MIN_ROWS rows (default 65536 — far beyond every paper
// workload, so kAuto stays bit-exact there). Tiered scans can miss rows but
// never mis-rank the rows they scan; per call, ScanMode::kExact forces the
// exact packed path (the Factorizer's stall fallback), and the
// index-restricted scans (best_among / above_among) and dots are always
// exact.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/kernels/sharded_item_memory.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/match.hpp"

namespace factorhd::hdc {

namespace kernels {
class PackedItemMemory;
}  // namespace kernels

/// Similarity-scan backend selection for ItemMemory.
///
/// The packed backend runs its word-plane arithmetic on a runtime-dispatched
/// SIMD tier (kernels::SimdLevel): kAuto/kPacked use the CPUID-detected
/// level (clamped by the FACTORHD_SIMD env var), while the kPacked* variants
/// force one specific tier — the knob the cross-backend differential tests
/// and per-level benchmarks are built on. Every tier returns bit-identical
/// results; forcing a tier the CPU cannot execute throws instead of
/// degrading silently.
enum class ScanBackend {
  kAuto,    ///< packed when the codebook is bipolar/ternary, else scalar;
            ///< additionally tiered at/above FACTORHD_TIERED_MIN_ROWS rows
  kScalar,  ///< always the int32 dot-product loops
  kPacked,  ///< word-plane kernels at the dispatched SIMD level
  kPackedWords,   ///< word-plane kernels, forced scalar 64-bit word loops
  kPackedAVX2,    ///< word-plane kernels, forced AVX2 tier
  kPackedAVX512,  ///< word-plane kernels, forced AVX-512 tier
  kPackedNEON,    ///< word-plane kernels, forced NEON tier
  kTiered,  ///< two-stage coarse-then-exact scans (kernels::TieredItemMemory)
            ///< at the dispatched SIMD level; approximate unless nprobe
            ///< covers every cluster
  kSharded,  ///< scatter-gather scans over a row-partitioned codebook
             ///< (kernels::ShardedItemMemory) at the dispatched SIMD level;
             ///< bit-identical to the unsharded scan when the shards scan
             ///< exact (no per-shard tiers, or tiers probing every cluster)
};

/// Per-call accuracy selection for the full-codebook scans of a tiered
/// ItemMemory. On the scalar/packed backends both modes are identical.
enum class ScanMode {
  kDefault,  ///< the memory's backend as configured (tiered when built)
  kExact,    ///< force the exact full scan (packed kernels or scalar loop)
};

class ItemMemory {
 public:
  /// Non-owning view over a codebook; the codebook must outlive the memory.
  /// With kAuto (the default) a bipolar/ternary codebook is additionally
  /// packed into word planes at construction (O(size * dim) once), and the
  /// tiered index is built on top when the codebook has at least
  /// kernels::tiered_auto_min_rows() rows (or when `tiered` is given).
  /// \param codebook Codebook to scan; must outlive this object.
  /// \param backend Backend selection policy (see ScanBackend).
  /// \param tiered Explicit tier configuration. With kTiered it overrides
  ///   the FACTORHD_TIERED_* env defaults; with kAuto it additionally forces
  ///   the tiered index regardless of the row-count threshold (the hook the
  ///   differential tests and benches configure exact-coverage indexes
  ///   through). Invalid with every other backend.
  /// \throws std::invalid_argument When `backend` is kPacked/kTiered (or a
  ///   forced kPacked* level) but the codebook has an entry outside
  ///   {-1, 0, +1} or is empty, when a forced SIMD level is not available on
  ///   this CPU (kernels::simd_level_available), or when `tiered` is given
  ///   with a backend that never builds the tier index.
  ///
  /// \param snapshot Optional pre-built tier index (a loaded FTS1 snapshot,
  ///   see hdc/kernels/tiered_snapshot.hpp) offered in place of the k-means
  ///   build. It is adopted only where this constructor would build a tier
  ///   index anyway, and only after its packed row planes are verified
  ///   bit-equal to a fresh packing of `codebook` — a snapshot of the wrong
  ///   or a stale codebook is silently rejected and the tier is rebuilt, so
  ///   scans are bit-identical either way. On adoption the memory's exact
  ///   scans also run off the snapshot's (possibly mmap-shared) planes and
  ///   the fresh packing is dropped. Check adoption via tiered() pointer
  ///   identity. A whole-codebook snapshot is never adopted while sharding
  ///   is active (the partition needs per-shard indexes — see
  ///   kernels::load_sharded_index()).
  ///
  /// \param sharded Shard configuration (kernels::ShardedConfig). With
  ///   kSharded it is the partition spec (shards of 0 resolve from
  ///   FACTORHD_SHARDS); with kAuto an explicit config forces the partition
  ///   regardless of the FACTORHD_SHARD_MIN_ROWS threshold, while a purely
  ///   env-requested shard count only applies at/above it. Sharded memories
  ///   build per-shard tier indexes exactly where the unsharded constructor
  ///   would have built one tier (the `tiered` config then resolves per
  ///   shard row count). Invalid with any backend other than kAuto/kSharded.
  explicit ItemMemory(
      const Codebook& codebook, ScanBackend backend = ScanBackend::kAuto,
      std::optional<kernels::TieredConfig> tiered = std::nullopt,
      std::shared_ptr<const kernels::TieredItemMemory> snapshot = nullptr,
      std::optional<kernels::ShardedConfig> sharded = std::nullopt);

  [[nodiscard]] const Codebook& codebook() const noexcept { return *codebook_; }
  [[nodiscard]] std::size_t size() const noexcept { return codebook_->size(); }

  /// \return The backend scans resolve to: kSharded when the codebook was
  ///   partitioned (full scans scatter-gather across the shards), kTiered
  ///   when the tier index was built (full scans are then approximate by
  ///   default), kPacked when the codebook was packed (bipolar/ternary
  ///   queries use the kernels; integer-bundle queries still fall back to
  ///   scalar per call), kScalar otherwise.
  [[nodiscard]] ScanBackend backend() const noexcept {
    if (sharded_) return ScanBackend::kSharded;
    if (tiered_) return ScanBackend::kTiered;
    return packed_ ? ScanBackend::kPacked : ScanBackend::kScalar;
  }

  /// \return The tier index, or nullptr on the scalar/packed backends.
  [[nodiscard]] const kernels::TieredItemMemory* tiered() const noexcept {
    return tiered_.get();
  }

  /// \return The sharded scatter-gather memory, or nullptr when unsharded.
  [[nodiscard]] const kernels::ShardedItemMemory* sharded() const noexcept {
    return sharded_.get();
  }

  /// \return Shared ownership of the sharded memory (null when unsharded) —
  ///   what kernels::save_sharded_index() persists per shard.
  [[nodiscard]] std::shared_ptr<const kernels::ShardedItemMemory>
  shared_sharded() const noexcept {
    return sharded_;
  }

  /// \return Shared ownership of the tier index (null on exact backends) —
  ///   what the snapshot writer serializes (hdc/kernels/tiered_snapshot.hpp).
  [[nodiscard]] std::shared_ptr<const kernels::TieredItemMemory>
  shared_tiered() const noexcept {
    return tiered_;
  }

  /// \return The SIMD tier packed scans execute at; std::nullopt on the
  ///   scalar backend.
  [[nodiscard]] std::optional<kernels::SimdLevel> simd_level() const noexcept;

  /// Best match over the full codebook (argmax of similarity; the first
  /// maximum wins on ties). On the tiered backend this scans only the
  /// probed buckets unless `mode` is ScanMode::kExact.
  /// \param query Query HV of the codebook's dimension.
  /// \param mode Per-call accuracy override (tiered backend only).
  /// \param scanned When non-null, receives the number of similarity
  ///   measurements this call performed — a pure function of (memory,
  ///   query), safe for deterministic per-result accounting where reading
  ///   the shared similarity_ops() counter would race under concurrent
  ///   batch workers.
  /// \param probes When non-null, receives the tiered coarse-stage bucket
  ///   count this call probed (TieredItemMemory::ScanStats::probes, summed
  ///   across shards on the sharded backend) — 0 on every exact route. Like
  ///   `scanned`, a pure function of (memory, query, mode).
  /// \return Index and similarity (dot / D) of the best entry.
  /// \throws std::invalid_argument On dimension mismatch.
  /// \throws std::out_of_range On an empty codebook.
  [[nodiscard]] Match best(const Hypervector& query,
                           ScanMode mode = ScanMode::kDefault,
                           std::uint64_t* scanned = nullptr,
                           std::uint64_t* probes = nullptr) const;

  /// Blocked variant of best(): one Match per query, in input order, each
  /// bit-identical (index, similarity, tie order — and the per-query
  /// measurement count) to the matching best(query, mode) call. When the
  /// codebook is packed, the scan is an exact full scan (no tier index, or
  /// `mode` is ScanMode::kExact), and every query's alphabet packs, the
  /// whole block runs in ONE pass over the codebook planes through
  /// kernels::QueryBlockKernels — the codebook streams from memory once per
  /// block instead of once per query. Any other shape (tiered default scans,
  /// integer-bundle queries, scalar backend) falls back to per-query best(),
  /// so routing here is purely a performance decision.
  /// \param queries Query HVs of the codebook's dimension.
  /// \param mode Per-call accuracy override (tiered backend only).
  /// \param scanned When non-null, must point at queries.size() entries;
  ///   scanned[q] receives the measurement count of query q (exactly what
  ///   best() would report for it).
  /// \param probes When non-null, must point at queries.size() entries;
  ///   probes[q] receives query q's tiered probe count (exactly what best()
  ///   would report for it; 0 on the one-pass exact block route).
  /// \return One Match per query, in input order.
  /// \throws std::invalid_argument On a dimension mismatch.
  /// \throws std::out_of_range On an empty codebook.
  [[nodiscard]] std::vector<Match> best_block(
      std::span<const Hypervector> queries,
      ScanMode mode = ScanMode::kDefault,
      std::uint64_t* scanned = nullptr,
      std::uint64_t* probes = nullptr) const;

  /// Best match over a subset of indices (used for hierarchy-restricted
  /// searches: "only children of the already-factorized parent item").
  /// \param query Query HV of the codebook's dimension.
  /// \param indices Codebook indices to scan.
  /// \return Best match among `indices`.
  /// \throws std::invalid_argument On dimension mismatch or empty `indices`.
  /// \throws std::out_of_range When an index is >= size().
  [[nodiscard]] Match best_among(const Hypervector& query,
                                 const std::vector<std::size_t>& indices) const;

  /// All matches with similarity strictly above `threshold`, sorted by
  /// match_order — descending similarity, ascending index on ties (the
  /// TH-based multi-object candidate selection). On the tiered backend this
  /// scans only the probed buckets unless `mode` is ScanMode::kExact.
  /// \param query Query HV of the codebook's dimension.
  /// \param threshold Exclusive similarity lower bound.
  /// \param mode Per-call accuracy override (tiered backend only).
  /// \param scanned As in best(): deterministic measurement count out-param.
  /// \param probes As in best(): deterministic tiered probe-count out-param.
  /// \return Possibly empty sorted match list.
  /// \throws std::invalid_argument On dimension mismatch.
  [[nodiscard]] std::vector<Match> above(
      const Hypervector& query, double threshold,
      ScanMode mode = ScanMode::kDefault,
      std::uint64_t* scanned = nullptr,
      std::uint64_t* probes = nullptr) const;

  /// Restricted variant of `above`.
  /// \param query Query HV of the codebook's dimension.
  /// \param threshold Exclusive similarity lower bound.
  /// \param indices Codebook indices to scan.
  /// \return Possibly empty sorted match list.
  /// \throws std::invalid_argument On dimension mismatch.
  /// \throws std::out_of_range When an index is >= size().
  [[nodiscard]] std::vector<Match> above_among(
      const Hypervector& query, double threshold,
      const std::vector<std::size_t>& indices) const;

  /// Top-k matches sorted by match_order; k is clamped to size(). On the
  /// tiered backend this ranks only the probed buckets' rows unless `mode`
  /// is ScanMode::kExact.
  /// \param query Query HV of the codebook's dimension.
  /// \param k Maximum number of matches to return.
  /// \param mode Per-call accuracy override (tiered backend only).
  /// \param scanned As in best(): deterministic measurement count out-param.
  /// \param probes As in best(): deterministic tiered probe-count out-param.
  /// \return At most min(k, size()) matches in canonical order.
  /// \throws std::invalid_argument On dimension mismatch.
  [[nodiscard]] std::vector<Match> top_k(
      const Hypervector& query, std::size_t k,
      ScanMode mode = ScanMode::kDefault,
      std::uint64_t* scanned = nullptr,
      std::uint64_t* probes = nullptr) const;

  /// Raw integer dot products of the query with every codebook entry — the
  /// batched attention primitive of the resonator/IMC baselines. Counts
  /// size() similarity measurements.
  /// \param query Query HV of the codebook's dimension.
  /// \param out Destination; `out.size()` must equal size().
  /// \throws std::invalid_argument On dimension or output-size mismatch.
  void dots(const Hypervector& query, std::span<std::int64_t> out) const;

  /// Number of similarity measurements performed since construction /
  /// last reset. Mutable bookkeeping (atomic so concurrent factorization of
  /// independent targets through core::BatchFactorizer stays race-free);
  /// reads are logically const.
  /// \return Measurement count in codebook-entry units.
  [[nodiscard]] std::uint64_t similarity_ops() const noexcept {
    return similarity_ops_.load(std::memory_order_relaxed);
  }
  void reset_similarity_ops() noexcept {
    similarity_ops_.store(0, std::memory_order_relaxed);
  }

  // std::atomic pins down copy/move; counters transfer by value and the
  // immutable packed planes / tier index are shared between copies.
  ItemMemory(const ItemMemory& other) noexcept
      : codebook_(other.codebook_),
        packed_(other.packed_),
        tiered_(other.tiered_),
        sharded_(other.sharded_),
        similarity_ops_(other.similarity_ops()) {}
  ItemMemory& operator=(const ItemMemory& other) noexcept {
    codebook_ = other.codebook_;
    packed_ = other.packed_;
    tiered_ = other.tiered_;
    sharded_ = other.sharded_;
    similarity_ops_.store(other.similarity_ops(), std::memory_order_relaxed);
    return *this;
  }

 private:
  void count(std::uint64_t n) const noexcept {
    similarity_ops_.fetch_add(n, std::memory_order_relaxed);
  }

  const Codebook* codebook_;
  /// Word-plane packing of the codebook; null on the scalar backend. Shared
  /// (immutable after construction) so ItemMemory copies stay cheap.
  std::shared_ptr<const kernels::PackedItemMemory> packed_;
  /// Two-stage tier index over packed_; null unless backend() is kTiered.
  /// Shares packed_'s row planes (immutable after construction).
  std::shared_ptr<const kernels::TieredItemMemory> tiered_;
  /// Scatter-gather partition over packed_; null unless backend() is
  /// kSharded. Shares packed_'s row planes (zero-copy shard views). The
  /// full-codebook scans route here; best_among / above_among / integer-
  /// bundle queries keep the packed_/scalar routes (their given-order tie
  /// contract does not partition).
  std::shared_ptr<const kernels::ShardedItemMemory> sharded_;
  mutable std::atomic<std::uint64_t> similarity_ops_{0};
};

}  // namespace factorhd::hdc
