// ItemMemory: associative ("cleanup") memory over a codebook.
//
// Given a noisy query HV, finds the codebook entries most similar to it under
// the paper's dot-product similarity. This is the primitive that every
// factorizer (FactorHD and all baselines) spends its time in, so the class
// also counts similarity measurements — the unit in which the paper states
// its O(N_M) vs M^F efficiency claims.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"

namespace factorhd::hdc {

/// One similarity match: codebook index plus the measured similarity.
struct Match {
  std::size_t index = 0;
  double similarity = 0.0;
};

class ItemMemory {
 public:
  /// Non-owning view over a codebook; the codebook must outlive the memory.
  explicit ItemMemory(const Codebook& codebook) noexcept
      : codebook_(&codebook) {}

  [[nodiscard]] const Codebook& codebook() const noexcept { return *codebook_; }
  [[nodiscard]] std::size_t size() const noexcept { return codebook_->size(); }

  /// Best match over the full codebook (argmax of similarity).
  [[nodiscard]] Match best(const Hypervector& query) const;

  /// Best match over a subset of indices (used for hierarchy-restricted
  /// searches: "only children of the already-factorized parent item").
  [[nodiscard]] Match best_among(const Hypervector& query,
                                 const std::vector<std::size_t>& indices) const;

  /// All matches with similarity strictly above `threshold`, in descending
  /// similarity order (the TH-based multi-object candidate selection).
  [[nodiscard]] std::vector<Match> above(const Hypervector& query,
                                         double threshold) const;

  /// Restricted variant of `above`.
  [[nodiscard]] std::vector<Match> above_among(
      const Hypervector& query, double threshold,
      const std::vector<std::size_t>& indices) const;

  /// Top-k matches in descending similarity order.
  [[nodiscard]] std::vector<Match> top_k(const Hypervector& query,
                                         std::size_t k) const;

  /// Number of similarity measurements performed since construction /
  /// last reset. Mutable bookkeeping (atomic so concurrent factorization of
  /// independent targets through core::BatchFactorizer stays race-free);
  /// reads are logically const.
  [[nodiscard]] std::uint64_t similarity_ops() const noexcept {
    return similarity_ops_.load(std::memory_order_relaxed);
  }
  void reset_similarity_ops() noexcept {
    similarity_ops_.store(0, std::memory_order_relaxed);
  }

  // std::atomic pins down copy/move; counters transfer by value.
  ItemMemory(const ItemMemory& other) noexcept
      : codebook_(other.codebook_), similarity_ops_(other.similarity_ops()) {}
  ItemMemory& operator=(const ItemMemory& other) noexcept {
    codebook_ = other.codebook_;
    similarity_ops_.store(other.similarity_ops(), std::memory_order_relaxed);
    return *this;
  }

 private:
  void count(std::uint64_t n) const noexcept {
    similarity_ops_.fetch_add(n, std::memory_order_relaxed);
  }

  const Codebook* codebook_;
  mutable std::atomic<std::uint64_t> similarity_ops_{0};
};

}  // namespace factorhd::hdc
