// Sequence encodings built on the permutation operator ρ (paper §II-A).
//
// Two classical HDC sequence forms, both position-protected by cyclic
// permutation so the same item at different positions stays distinguishable:
//
//  * superposition sequences  S = Σ_i ρ^i(a_i)   — decodable per position by
//    unpermuting and cleaning up against the codebook;
//  * n-gram (binding) sequences  G = ⊙_i ρ^i(a_i) — a single quasi-orthogonal
//    signature per n-gram, the standard HDC text/genomics feature.
//
// These are substrate utilities (FactorHD itself orders nothing), provided
// because position codebooks of RAVEN-style scenes and the survey material
// the paper cites [27] treat ρ-sequences as a core HDC capability.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"

namespace factorhd::hdc {

/// Superposition sequence S = Σ_i ρ^i(items[i]).
/// \param items Non-empty span of dimension-consistent hypervectors.
/// \return The position-protected bundle.
/// \throws std::invalid_argument On empty input or mixed dimensions.
[[nodiscard]] Hypervector encode_sequence(std::span<const Hypervector> items);

/// Recovers the codebook index at `position` from a superposition sequence.
/// \param sequence Encoded superposition sequence.
/// \param position Position to decode.
/// \param codebook Item codebook the sequence was built from.
/// \return Best cleanup match for the unpermuted position.
/// \throws std::invalid_argument On dimension mismatch.
[[nodiscard]] Match decode_sequence_position(const Hypervector& sequence,
                                             std::size_t position,
                                             const Codebook& codebook);

/// Decodes every position of a length-`length` superposition sequence.
/// \param sequence Encoded superposition sequence.
/// \param length Number of positions to decode.
/// \param codebook Item codebook the sequence was built from.
/// \return Decoded codebook index per position.
/// \throws std::invalid_argument On dimension mismatch.
[[nodiscard]] std::vector<std::size_t> decode_sequence(
    const Hypervector& sequence, std::size_t length, const Codebook& codebook);

/// N-gram signature G = ⊙_i ρ^i(items[i]).
/// \param items Non-empty span of dimension-consistent hypervectors.
/// \return The bound n-gram signature.
/// \throws std::invalid_argument On empty input or mixed dimensions.
[[nodiscard]] Hypervector encode_ngram(std::span<const Hypervector> items);

/// Bag-of-ngrams text/trace encoding: Σ over sliding windows of size `n`
/// of encode_ngram(window).
/// \param items Token hypervectors; requires items.size() >= n > 0.
/// \param n Sliding-window size.
/// \return The bundled bag of n-gram signatures.
/// \throws std::invalid_argument When the size constraint is violated.
[[nodiscard]] Hypervector encode_ngram_bag(std::span<const Hypervector> items,
                                           std::size_t n);

}  // namespace factorhd::hdc
