#include "hdc/io.hpp"

#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace factorhd::hdc {

namespace {

constexpr std::uint32_t kHvMagic = 0x31564846;  // 'FHV1'
constexpr std::uint32_t kCbMagic = 0x31424346;  // 'FCB1'
// Sanity bound on deserialized sizes: rejects corrupt headers before any
// allocation attempt (2^32 components ~ 16 GiB would be a broken file).
constexpr std::uint64_t kMaxReasonable = 1ULL << 32;
// Codebook names are short human labels; a tight bound keeps 8 corrupt
// header bytes from turning into a multi-GiB string allocation (the generic
// kMaxReasonable is far too loose for a name).
constexpr std::uint64_t kMaxNameLen = 1ULL << 20;

template <typename T>
void write_pod(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const char* what) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) {
    throw std::runtime_error(std::string("hdc::io: truncated input reading ") +
                             what);
  }
  return value;
}

}  // namespace

void save_hypervector(std::ostream& os, const Hypervector& v) {
  write_pod<std::uint32_t>(os, kHvMagic);
  write_pod<std::uint64_t>(os, v.dim());
  for (std::size_t i = 0; i < v.dim(); ++i) {
    write_pod<std::int32_t>(os, v[i]);
  }
  if (!os) throw std::runtime_error("hdc::io: write failed");
}

Hypervector load_hypervector(std::istream& is) {
  if (read_pod<std::uint32_t>(is, "hypervector magic") != kHvMagic) {
    throw std::runtime_error("hdc::io: bad hypervector magic");
  }
  const auto dim = read_pod<std::uint64_t>(is, "hypervector dim");
  if (dim == 0 || dim > kMaxReasonable) {
    throw std::runtime_error("hdc::io: implausible hypervector dimension");
  }
  std::vector<Hypervector::value_type> data(static_cast<std::size_t>(dim));
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(dim * sizeof(Hypervector::value_type)));
  if (!is) throw std::runtime_error("hdc::io: truncated hypervector body");
  return Hypervector(std::move(data));
}

void save_codebook(std::ostream& os, const Codebook& cb) {
  write_pod<std::uint32_t>(os, kCbMagic);
  write_pod<std::uint64_t>(os, cb.size());
  write_pod<std::uint64_t>(os, cb.name().size());
  os.write(cb.name().data(),
           static_cast<std::streamsize>(cb.name().size()));
  for (std::size_t j = 0; j < cb.size(); ++j) {
    save_hypervector(os, cb.item(j));
  }
  if (!os) throw std::runtime_error("hdc::io: write failed");
}

Codebook load_codebook(std::istream& is) {
  if (read_pod<std::uint32_t>(is, "codebook magic") != kCbMagic) {
    throw std::runtime_error("hdc::io: bad codebook magic");
  }
  const auto size = read_pod<std::uint64_t>(is, "codebook size");
  const auto name_len = read_pod<std::uint64_t>(is, "codebook name length");
  if (size == 0 || size > kMaxReasonable || name_len > kMaxNameLen) {
    throw std::runtime_error("hdc::io: implausible codebook header");
  }
  std::string name(static_cast<std::size_t>(name_len), '\0');
  is.read(name.data(), static_cast<std::streamsize>(name_len));
  if (!is) throw std::runtime_error("hdc::io: truncated codebook name");
  std::vector<Hypervector> items;
  items.reserve(static_cast<std::size_t>(size));
  for (std::uint64_t j = 0; j < size; ++j) {
    items.push_back(load_hypervector(is));
    // Codebook requires uniform dimensions; diagnose a mixed-dim file here
    // with an io error instead of letting the constructor report it as a
    // generic argument problem long after the bytes are forgotten.
    if (items.back().dim() != items.front().dim()) {
      throw std::runtime_error(
          "hdc::io: codebook items disagree on dimension (corrupt or "
          "mixed-dim file)");
    }
  }
  return Codebook(std::move(items), std::move(name));
}

}  // namespace factorhd::hdc
