#include "hdc/level.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hdc/random.hpp"

namespace factorhd::hdc {

Codebook make_level_codebook(std::size_t dim, std::size_t levels,
                             util::Xoshiro256& rng, std::string name) {
  if (levels < 2) {
    throw std::invalid_argument("make_level_codebook: need at least 2 levels");
  }
  if (dim == 0) {
    throw std::invalid_argument("make_level_codebook: zero dimension");
  }
  const Hypervector low = random_bipolar(dim, rng);
  const Hypervector high = random_bipolar(dim, rng);
  // Fixed random order in which components cross over from low to high, so
  // intermediate levels are nested (level i's high-components are a superset
  // of level i-1's) — this is what yields the linear similarity profile.
  std::vector<std::size_t> order(dim);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = dim; i-- > 1;) {
    std::swap(order[i], order[rng.uniform(i + 1)]);
  }

  std::vector<Hypervector> items;
  items.reserve(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t crossover =
        (dim * l) / (levels - 1);  // 0 for level 0, dim for the top level
    Hypervector v = low;
    for (std::size_t k = 0; k < crossover; ++k) {
      v[order[k]] = high[order[k]];
    }
    items.push_back(std::move(v));
  }
  return Codebook(std::move(items), std::move(name));
}

std::size_t quantize_level(double value, double lo, double hi,
                           std::size_t levels) {
  if (levels < 2 || !(hi > lo)) {
    throw std::invalid_argument("quantize_level: bad range or level count");
  }
  const double clamped = std::clamp(value, lo, hi);
  const double t = (clamped - lo) / (hi - lo);
  const auto idx =
      static_cast<std::size_t>(std::lround(t * static_cast<double>(levels - 1)));
  return std::min(idx, levels - 1);
}

double level_value(std::size_t level, double lo, double hi,
                   std::size_t levels) {
  if (levels < 2 || !(hi > lo) || level >= levels) {
    throw std::invalid_argument("level_value: bad arguments");
  }
  const double t =
      static_cast<double>(level) / static_cast<double>(levels - 1);
  return lo + t * (hi - lo);
}

}  // namespace factorhd::hdc
