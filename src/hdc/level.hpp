// Level (thermometer) hypervectors for continuous / ordinal attributes.
//
// Random item HVs are quasi-orthogonal — right for categorical attributes,
// wrong for ordered ones ("size 3 should look more like size 4 than size
// 9"). A LevelCodebook interpolates between two random endpoint HVs: level i
// of L copies the first D*(i/(L-1)) components (under a fixed random
// permutation) from the high endpoint and the rest from the low endpoint,
// giving the classical linear similarity profile
//
//   sim(level_i, level_j) ≈ 1 - |i-j|/(L-1)   (bipolar endpoints)
//
// (crossing a fraction t of components flips only the ~t/2 that disagreed,
// so similarity falls linearly from 1 to ≈0 across the full range).
//
// Used by workloads with ordinal attributes (e.g. RAVEN's object sizes);
// FactorHD factorization works unchanged because ItemMemory only needs a
// similarity argmax, but thresholded multi-object selection should expect
// neighbouring levels to co-activate.
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "util/rng.hpp"

namespace factorhd::hdc {

/// Builds a codebook of `levels` thermometer-interpolated bipolar HVs.
/// \param dim Hypervector dimension.
/// \param levels Number of levels; must be >= 2.
/// \param rng Source of randomness for the endpoints and permutation.
/// \param name Optional diagnostic name.
/// \return The level codebook (entry i is level i).
/// \throws std::invalid_argument When `levels` < 2 or `dim` is zero.
[[nodiscard]] Codebook make_level_codebook(std::size_t dim, std::size_t levels,
                                           util::Xoshiro256& rng,
                                           std::string name = {});

/// Maps a value in [lo, hi] to the nearest level index of an L-level
/// codebook (clamping out-of-range values).
/// \param value Value to quantize.
/// \param lo,hi Value range (lo < hi).
/// \param levels Number of levels; must be >= 2.
/// \return Level index in [0, levels).
/// \throws std::invalid_argument On a degenerate range or levels < 2.
[[nodiscard]] std::size_t quantize_level(double value, double lo, double hi,
                                         std::size_t levels);

/// Inverse of quantize_level: representative value of a level's bin center.
/// \param level Level index in [0, levels).
/// \param lo,hi Value range (lo < hi).
/// \param levels Number of levels; must be >= 2.
/// \return The level's representative value.
/// \throws std::invalid_argument On a bad level/range combination.
[[nodiscard]] double level_value(std::size_t level, double lo, double hi,
                                 std::size_t levels);

}  // namespace factorhd::hdc
