// Codebook: an indexed set of atomic (bipolar) item hypervectors.
//
// Each class / subclass level / attribute in a representation owns a codebook
// A_i = {a_i1, ..., a_iM}; factorization identifies which codebook entries a
// composite HV was built from. Codebooks are immutable after construction.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hdc/hypervector.hpp"
#include "util/rng.hpp"

namespace factorhd::hdc {

class Codebook {
 public:
  /// Generates `size` independent random bipolar HVs of dimension `dim`.
  /// \param dim Hypervector dimension.
  /// \param size Number of items to generate.
  /// \param rng Source of randomness.
  /// \param name Optional diagnostic name.
  Codebook(std::size_t dim, std::size_t size, util::Xoshiro256& rng,
           std::string name = {});

  /// Wraps existing item HVs.
  /// \param items Item hypervectors; all must share the same non-zero
  ///   dimension.
  /// \param name Optional diagnostic name.
  /// \throws std::invalid_argument On mixed or zero dimensions.
  explicit Codebook(std::vector<Hypervector> items, std::string name = {});

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept {
    return items_.empty() ? 0 : items_[0].dim();
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Item HV by index.
  /// \param index Item index.
  /// \return The item hypervector.
  /// \throws std::out_of_range On bad index.
  [[nodiscard]] const Hypervector& item(std::size_t index) const {
    return items_.at(index);
  }
  [[nodiscard]] const Hypervector& operator[](std::size_t index) const {
    return items_.at(index);
  }

  [[nodiscard]] const std::vector<Hypervector>& items() const noexcept {
    return items_;
  }

 private:
  std::vector<Hypervector> items_;
  std::string name_;
};

}  // namespace factorhd::hdc
