#include "hdc/hypervector.hpp"

#include <algorithm>
#include <cstdlib>

namespace factorhd::hdc {

bool Hypervector::is_bipolar() const noexcept {
  return !data_.empty() &&
         std::all_of(data_.begin(), data_.end(),
                     [](value_type v) { return v == 1 || v == -1; });
}

bool Hypervector::is_ternary() const noexcept {
  return !data_.empty() &&
         std::all_of(data_.begin(), data_.end(),
                     [](value_type v) { return v >= -1 && v <= 1; });
}

std::size_t Hypervector::zero_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(data_.begin(), data_.end(), value_type{0}));
}

Hypervector::value_type Hypervector::max_abs() const noexcept {
  value_type m = 0;
  for (value_type v : data_) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace factorhd::hdc
