// Umbrella header for the HDC substrate library.
#pragma once

#include "hdc/codebook.hpp"      // IWYU pragma: export
#include "hdc/hash.hpp"          // IWYU pragma: export
#include "hdc/hypervector.hpp"   // IWYU pragma: export
#include "hdc/item_memory.hpp"   // IWYU pragma: export
#include "hdc/kernels/packed_item_memory.hpp"  // IWYU pragma: export
#include "hdc/kernels/tiered_item_memory.hpp"  // IWYU pragma: export
#include "hdc/level.hpp"         // IWYU pragma: export
#include "hdc/match.hpp"         // IWYU pragma: export
#include "hdc/ops.hpp"           // IWYU pragma: export
#include "hdc/packed.hpp"        // IWYU pragma: export
#include "hdc/io.hpp"            // IWYU pragma: export
#include "hdc/random.hpp"        // IWYU pragma: export
#include "hdc/sequence.hpp"      // IWYU pragma: export
#include "hdc/similarity.hpp"    // IWYU pragma: export
