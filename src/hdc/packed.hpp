// Bit-packed hypervector codecs.
//
// * PackedBipolar — 1 bit/dimension (+1 -> 1, -1 -> 0) with XOR + popcount
//   dot products. Used by the resonator/IMC baselines' inner loops and by the
//   fair-storage accounting of §IV-A.
// * PackedTernary — 2 bits/dimension ({-1,0,+1} as sign/magnitude planes).
//   This is the paper's "FactorHD operates in {-1,0,1}^D space, using 2 bits
//   per dimension" storage model: a FactorHD HV at dimension D/2 occupies the
//   same number of bits as a bipolar baseline HV at dimension D.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hdc/hypervector.hpp"

namespace factorhd::hdc {

/// Bipolar HV packed one bit per dimension into 64-bit words.
class PackedBipolar {
 public:
  PackedBipolar() = default;

  /// Packs a strictly bipolar HV.
  /// \param v Hypervector with every component in {-1, +1}.
  /// \throws std::invalid_argument When `v` is not bipolar.
  explicit PackedBipolar(const Hypervector& v);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t words() const noexcept { return words_.size(); }
  [[nodiscard]] std::size_t storage_bits() const noexcept { return dim_; }

  /// Unpacks back to an int32 hypervector.
  /// \return The bipolar hypervector this was packed from.
  [[nodiscard]] Hypervector unpack() const;

  /// Dot product via XOR + popcount: dot = D - 2 * hamming.
  /// \param other Packed HV of the same dimension.
  /// \return Exact integer dot product.
  /// \throws std::invalid_argument On dimension mismatch or empty operands.
  [[nodiscard]] std::int64_t dot(const PackedBipolar& other) const;

  /// Hamming distance (number of differing signs).
  /// \param other Packed HV of the same dimension.
  /// \return Count of differing components.
  /// \throws std::invalid_argument On dimension mismatch or empty operands.
  [[nodiscard]] std::size_t hamming(const PackedBipolar& other) const;

  /// Componentwise product (binding) — XNOR of the sign planes.
  /// \param other Packed HV of the same dimension.
  /// \return The packed bound product.
  /// \throws std::invalid_argument On dimension mismatch or empty operands.
  [[nodiscard]] PackedBipolar bind(const PackedBipolar& other) const;

  bool operator==(const PackedBipolar&) const = default;

 private:
  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;  // bit i of word w = sign of dim 64w+i
};

/// Ternary HV packed two bits per dimension (nonzero plane + sign plane).
class PackedTernary {
 public:
  PackedTernary() = default;

  /// Packs a ternary HV.
  /// \param v Hypervector with every component in {-1, 0, +1}.
  /// \throws std::invalid_argument When `v` is not ternary.
  explicit PackedTernary(const Hypervector& v);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t storage_bits() const noexcept { return 2 * dim_; }

  /// \return The ternary hypervector this was packed from.
  [[nodiscard]] Hypervector unpack() const;

  /// Dot product using bitwise plane arithmetic (no unpacking).
  /// \param other Packed HV of the same dimension.
  /// \return Exact integer dot product.
  /// \throws std::invalid_argument On dimension mismatch or empty operands.
  [[nodiscard]] std::int64_t dot(const PackedTernary& other) const;

  bool operator==(const PackedTernary&) const = default;

 private:
  std::size_t dim_ = 0;
  std::vector<std::uint64_t> nonzero_;  // 1 where component != 0
  std::vector<std::uint64_t> sign_;     // 1 where component == +1
};

/// Storage parity helper for the fair-comparison rule: the FactorHD dimension
/// whose 2-bit ternary storage equals `bipolar_dim` bits of bipolar storage.
/// \param bipolar_dim Baseline bipolar dimension (1 bit/dimension).
/// \return bipolar_dim / 2, the storage-matched ternary dimension.
[[nodiscard]] constexpr std::size_t fair_ternary_dim(
    std::size_t bipolar_dim) noexcept {
  return bipolar_dim / 2;
}

}  // namespace factorhd::hdc
