// Match: the result unit of every codebook similarity scan.
//
// Lives in its own header so both the scalar scans (hdc/item_memory.hpp) and
// the packed word-plane scans (hdc/kernels/) can share it without a layering
// cycle: ItemMemory sits above the kernels layer it dispatches into.
#pragma once

#include <cstddef>

namespace factorhd::hdc {

/// One similarity match: codebook index plus the measured similarity.
struct Match {
  std::size_t index = 0;
  double similarity = 0.0;
};

/// The canonical ordering of scan results: descending similarity with
/// ascending index as the tie-break. Every backend sorts with this exact
/// comparator so tied similarities produce bit-identical orderings — the
/// property the kernel/scalar equivalence suite asserts.
/// \param a,b Matches to compare.
/// \return True when `a` precedes `b` in canonical order.
[[nodiscard]] inline bool match_order(const Match& a, const Match& b) noexcept {
  if (a.similarity != b.similarity) return a.similarity > b.similarity;
  return a.index < b.index;
}

}  // namespace factorhd::hdc
