#include "hdc/packed.hpp"

#include <bit>
#include <stdexcept>

namespace factorhd::hdc {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t word_count(std::size_t dim) {
  return (dim + kWordBits - 1) / kWordBits;
}
}  // namespace

PackedBipolar::PackedBipolar(const Hypervector& v) : dim_(v.dim()) {
  if (!v.is_bipolar()) {
    throw std::invalid_argument("PackedBipolar: input is not bipolar");
  }
  words_.assign(word_count(dim_), 0);
  for (std::size_t i = 0; i < dim_; ++i) {
    if (v[i] > 0) words_[i / kWordBits] |= (1ULL << (i % kWordBits));
  }
}

Hypervector PackedBipolar::unpack() const {
  Hypervector out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    out[i] = (words_[i / kWordBits] >> (i % kWordBits)) & 1u ? 1 : -1;
  }
  return out;
}

std::size_t PackedBipolar::hamming(const PackedBipolar& other) const {
  if (dim_ != other.dim_ || dim_ == 0) {
    throw std::invalid_argument("PackedBipolar::hamming: dimension mismatch");
  }
  std::size_t diff = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t x = words_[w] ^ other.words_[w];
    // Mask tail bits of the last word (they are zero in both, so XOR is
    // already zero there; the mask guards against future mutation paths).
    if (w + 1 == words_.size() && dim_ % kWordBits != 0) {
      x &= (1ULL << (dim_ % kWordBits)) - 1;
    }
    diff += static_cast<std::size_t>(std::popcount(x));
  }
  return diff;
}

std::int64_t PackedBipolar::dot(const PackedBipolar& other) const {
  const auto h = static_cast<std::int64_t>(hamming(other));
  return static_cast<std::int64_t>(dim_) - 2 * h;
}

PackedBipolar PackedBipolar::bind(const PackedBipolar& other) const {
  if (dim_ != other.dim_ || dim_ == 0) {
    throw std::invalid_argument("PackedBipolar::bind: dimension mismatch");
  }
  PackedBipolar out;
  out.dim_ = dim_;
  out.words_.resize(words_.size());
  // Product of signs: (+,+)->+, (-,-)->+, mixed -> -. With the +1 -> bit 1
  // encoding that is XNOR; mask the tail so equality stays canonical.
  for (std::size_t w = 0; w < words_.size(); ++w) {
    out.words_[w] = ~(words_[w] ^ other.words_[w]);
  }
  if (dim_ % kWordBits != 0) {
    out.words_.back() &= (1ULL << (dim_ % kWordBits)) - 1;
  }
  return out;
}

PackedTernary::PackedTernary(const Hypervector& v) : dim_(v.dim()) {
  if (!v.is_ternary()) {
    throw std::invalid_argument("PackedTernary: input is not ternary");
  }
  nonzero_.assign(word_count(dim_), 0);
  sign_.assign(word_count(dim_), 0);
  for (std::size_t i = 0; i < dim_; ++i) {
    if (v[i] != 0) {
      nonzero_[i / kWordBits] |= (1ULL << (i % kWordBits));
      if (v[i] > 0) sign_[i / kWordBits] |= (1ULL << (i % kWordBits));
    }
  }
}

Hypervector PackedTernary::unpack() const {
  Hypervector out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    const bool nz = (nonzero_[i / kWordBits] >> (i % kWordBits)) & 1u;
    if (!nz) continue;
    const bool pos = (sign_[i / kWordBits] >> (i % kWordBits)) & 1u;
    out[i] = pos ? 1 : -1;
  }
  return out;
}

std::int64_t PackedTernary::dot(const PackedTernary& other) const {
  if (dim_ != other.dim_ || dim_ == 0) {
    throw std::invalid_argument("PackedTernary::dot: dimension mismatch");
  }
  std::int64_t acc = 0;
  for (std::size_t w = 0; w < nonzero_.size(); ++w) {
    const std::uint64_t active = nonzero_[w] & other.nonzero_[w];
    const std::uint64_t agree = ~(sign_[w] ^ other.sign_[w]) & active;
    const std::uint64_t disagree = (sign_[w] ^ other.sign_[w]) & active;
    acc += std::popcount(agree);
    acc -= std::popcount(disagree);
  }
  return acc;
}

}  // namespace factorhd::hdc
