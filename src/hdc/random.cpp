#include "hdc/random.hpp"

namespace factorhd::hdc {

Hypervector random_bipolar(std::size_t dim, util::Xoshiro256& rng) {
  Hypervector out(dim);
  auto* p = out.data();
  std::size_t i = 0;
  while (i < dim) {
    std::uint64_t bits = rng();
    const std::size_t chunk = dim - i < 64 ? dim - i : 64;
    for (std::size_t k = 0; k < chunk; ++k) {
      p[i + k] = (bits & 1u) ? 1 : -1;
      bits >>= 1;
    }
    i += chunk;
  }
  return out;
}

Hypervector random_ternary(std::size_t dim, double sparsity,
                           util::Xoshiro256& rng) {
  Hypervector out(dim);
  auto* p = out.data();
  for (std::size_t i = 0; i < dim; ++i) {
    if (rng.bernoulli(sparsity)) {
      p[i] = 0;
    } else {
      p[i] = rng.bipolar();
    }
  }
  return out;
}

Hypervector flip_noise(const Hypervector& v, double p, util::Xoshiro256& rng) {
  Hypervector out = v;
  auto* po = out.data();
  for (std::size_t i = 0, n = out.dim(); i < n; ++i) {
    if (rng.bernoulli(p)) po[i] = -po[i];
  }
  return out;
}

}  // namespace factorhd::hdc
