#include "hdc/hash.hpp"

#include <cstddef>

namespace factorhd::hdc {

std::uint64_t hash_mix(std::uint64_t x) noexcept {
  // splitmix64 finalizer (public domain, Vigna): full avalanche, bijective.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_hypervector(const Hypervector& v,
                               std::uint64_t seed) noexcept {
  // Absorb the dimension first so a vector and its zero-padded extension
  // hash differently, then fold each component through one avalanche round.
  // Components are sign-extended to u64 so -1 and 0xffffffff (impossible for
  // int32, but the cast rule matters for the contract) stay distinct inputs.
  std::uint64_t h = hash_mix(seed ^ (0x5109bba9bdbb9d5dULL + v.dim()));
  const std::int32_t* p = v.data();
  for (std::size_t i = 0, n = v.dim(); i < n; ++i) {
    h = hash_mix(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(p[i])));
  }
  return h;
}

}  // namespace factorhd::hdc
