#include "hdc/ops.hpp"

#include <cmath>
#include <vector>
#include <stdexcept>

namespace factorhd::hdc {

Hypervector bundle(const Hypervector& a, const Hypervector& b) {
  require_same_dim(a, b, "bundle");
  Hypervector out(a.dim());
  const auto* pa = a.data();
  const auto* pb = b.data();
  auto* po = out.data();
  for (std::size_t i = 0, n = a.dim(); i < n; ++i) po[i] = pa[i] + pb[i];
  return out;
}

Hypervector bundle(std::span<const Hypervector> vs) {
  if (vs.empty()) throw std::invalid_argument("bundle: empty input span");
  Hypervector out = vs[0];
  for (std::size_t k = 1; k < vs.size(); ++k) accumulate(out, vs[k]);
  return out;
}

void accumulate(Hypervector& target, const Hypervector& v) {
  require_same_dim(target, v, "accumulate");
  auto* pt = target.data();
  const auto* pv = v.data();
  for (std::size_t i = 0, n = target.dim(); i < n; ++i) pt[i] += pv[i];
}

void subtract(Hypervector& target, const Hypervector& v) {
  require_same_dim(target, v, "subtract");
  auto* pt = target.data();
  const auto* pv = v.data();
  for (std::size_t i = 0, n = target.dim(); i < n; ++i) pt[i] -= pv[i];
}

Hypervector bind(const Hypervector& a, const Hypervector& b) {
  require_same_dim(a, b, "bind");
  Hypervector out(a.dim());
  const auto* pa = a.data();
  const auto* pb = b.data();
  auto* po = out.data();
  for (std::size_t i = 0, n = a.dim(); i < n; ++i) po[i] = pa[i] * pb[i];
  return out;
}

Hypervector bind(std::span<const Hypervector> vs) {
  if (vs.empty()) throw std::invalid_argument("bind: empty input span");
  Hypervector out = vs[0];
  for (std::size_t k = 1; k < vs.size(); ++k) bind_inplace(out, vs[k]);
  return out;
}

void bind_inplace(Hypervector& target, const Hypervector& v) {
  require_same_dim(target, v, "bind_inplace");
  auto* pt = target.data();
  const auto* pv = v.data();
  for (std::size_t i = 0, n = target.dim(); i < n; ++i) pt[i] *= pv[i];
}

Hypervector clip_ternary(const Hypervector& v) {
  Hypervector out = v;
  clip_ternary_inplace(out);
  return out;
}

void clip_ternary_inplace(Hypervector& v) {
  auto* p = v.data();
  for (std::size_t i = 0, n = v.dim(); i < n; ++i) {
    p[i] = p[i] > 0 ? 1 : (p[i] < 0 ? -1 : 0);
  }
}

Hypervector sign(const Hypervector& v) { return clip_ternary(v); }

Hypervector sign_bipolar(const Hypervector& v, bool ties_positive) {
  Hypervector out(v.dim());
  const auto* pv = v.data();
  auto* po = out.data();
  const Hypervector::value_type tie = ties_positive ? 1 : -1;
  for (std::size_t i = 0, n = v.dim(); i < n; ++i) {
    po[i] = pv[i] > 0 ? 1 : (pv[i] < 0 ? -1 : tie);
  }
  return out;
}

Hypervector permute(const Hypervector& v, std::size_t k) {
  const std::size_t n = v.dim();
  if (n == 0) throw std::invalid_argument("permute: empty hypervector");
  k %= n;
  Hypervector out(n);
  const auto* pv = v.data();
  auto* po = out.data();
  for (std::size_t i = 0; i < n; ++i) po[(i + k) % n] = pv[i];
  return out;
}

Hypervector unpermute(const Hypervector& v, std::size_t k) {
  const std::size_t n = v.dim();
  if (n == 0) throw std::invalid_argument("unpermute: empty hypervector");
  k %= n;
  return permute(v, n - k);
}

Hypervector negate(const Hypervector& v) {
  Hypervector out(v.dim());
  const auto* pv = v.data();
  auto* po = out.data();
  for (std::size_t i = 0, n = v.dim(); i < n; ++i) po[i] = -pv[i];
  return out;
}

Hypervector identity(std::size_t dim) {
  if (dim == 0) throw std::invalid_argument("identity: zero dimension");
  Hypervector out(dim);
  auto* po = out.data();
  for (std::size_t i = 0; i < dim; ++i) po[i] = 1;
  return out;
}

Hypervector weighted_bundle(std::span<const Hypervector> vs,
                            std::span<const double> weights, double scale) {
  if (vs.empty() || vs.size() != weights.size()) {
    throw std::invalid_argument(
        "weighted_bundle: need matching non-empty vectors and weights");
  }
  const std::size_t dim = vs[0].dim();
  std::vector<double> acc(dim, 0.0);
  for (std::size_t k = 0; k < vs.size(); ++k) {
    require_same_dim(vs[0], vs[k], "weighted_bundle");
    const double w = weights[k];
    if (w == 0.0) continue;
    const auto* pv = vs[k].data();
    for (std::size_t i = 0; i < dim; ++i) acc[i] += w * pv[i];
  }
  Hypervector out(dim);
  auto* po = out.data();
  for (std::size_t i = 0; i < dim; ++i) {
    po[i] = static_cast<Hypervector::value_type>(std::lround(scale * acc[i]));
  }
  return out;
}

}  // namespace factorhd::hdc
