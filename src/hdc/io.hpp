// Binary serialization of hypervector material.
//
// A deployed neuro-symbolic system generates its codebooks once and ships
// them (an HDC "model file"); these routines persist Hypervectors and
// Codebooks in a versioned little-endian binary framing. All readers
// validate magics and size fields and throw std::runtime_error on malformed
// input rather than constructing partial objects.
//
// Format (all integers little-endian):
//   Hypervector: u32 magic 'FHV1' | u64 dim | i32 components[dim]
//   Codebook:    u32 magic 'FCB1' | u64 size | u64 name_len | name bytes
//                | size serialized Hypervectors
#pragma once

#include <iosfwd>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"

namespace factorhd::hdc {

/// Serializes `v` in the FHV1 framing.
/// \param os Destination stream.
/// \param v Hypervector to write.
/// \throws std::runtime_error When the stream write fails.
void save_hypervector(std::ostream& os, const Hypervector& v);

/// Reads one FHV1-framed hypervector.
/// \param is Source stream positioned at a hypervector record.
/// \return The deserialized hypervector.
/// \throws std::runtime_error On bad magic, implausible sizes, or
///   truncated input.
[[nodiscard]] Hypervector load_hypervector(std::istream& is);

/// Serializes `cb` in the FCB1 framing.
/// \param os Destination stream.
/// \param cb Codebook to write.
/// \throws std::runtime_error When the stream write fails.
void save_codebook(std::ostream& os, const Codebook& cb);

/// Reads one FCB1-framed codebook.
/// \param is Source stream positioned at a codebook record.
/// \return The deserialized codebook.
/// \throws std::runtime_error On bad magic, implausible sizes, or
///   truncated input.
[[nodiscard]] Codebook load_codebook(std::istream& is);

}  // namespace factorhd::hdc
