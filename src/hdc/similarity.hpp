// Similarity metrics between hypervectors.
//
// The paper recognizes target HVs with the normalized dot product
// sim(V1, V2) = (V1 · V2) / D; cosine similarity and (normalized) Hamming
// distance are provided for completeness and for the baselines that quote
// them. A similarity near 0 indicates quasi-orthogonality.
//
// These are the scalar (int32) implementations valid for any alphabet; the
// bit-packed whole-codebook variants live in hdc/kernels/ and produce
// bit-identical values for bipolar/ternary inputs.
#pragma once

#include <cstdint>

#include "hdc/hypervector.hpp"

namespace factorhd::hdc {

/// Raw dot product V1 · V2 in 64-bit (bundles of many objects can exceed
/// 32-bit partial sums at large D).
/// \param a,b Hypervectors of equal non-zero dimension.
/// \return The exact integer dot product.
/// \throws std::invalid_argument On dimension mismatch or empty input.
[[nodiscard]] std::int64_t dot(const Hypervector& a, const Hypervector& b);

/// The paper's similarity metric: dot(a, b) / D.
/// \param a,b Hypervectors of equal non-zero dimension.
/// \return Normalized similarity (in [-1, 1] for bipolar/ternary inputs).
/// \throws std::invalid_argument On dimension mismatch or empty input.
[[nodiscard]] double similarity(const Hypervector& a, const Hypervector& b);

/// Cosine similarity; 0 when either vector is all-zero.
/// \param a,b Hypervectors of equal non-zero dimension.
/// \return dot(a, b) / (|a| |b|), or 0 for an all-zero operand.
/// \throws std::invalid_argument On dimension mismatch or empty input.
[[nodiscard]] double cosine(const Hypervector& a, const Hypervector& b);

/// Number of differing components (classical Hamming distance; meaningful
/// for bipolar/ternary HVs).
/// \param a,b Hypervectors of equal non-zero dimension.
/// \return Count of positions where a and b differ.
/// \throws std::invalid_argument On dimension mismatch or empty input.
[[nodiscard]] std::size_t hamming(const Hypervector& a, const Hypervector& b);

/// Hamming distance normalized to [0, 1].
/// \param a,b Hypervectors of equal non-zero dimension.
/// \return hamming(a, b) / D.
/// \throws std::invalid_argument On dimension mismatch or empty input.
[[nodiscard]] double normalized_hamming(const Hypervector& a,
                                        const Hypervector& b);

/// Euclidean norm of the HV.
/// \param v Any hypervector (empty gives 0).
/// \return sqrt(Σ v_i²).
[[nodiscard]] double norm(const Hypervector& v);

}  // namespace factorhd::hdc
