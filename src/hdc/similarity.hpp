// Similarity metrics between hypervectors.
//
// The paper recognizes target HVs with the normalized dot product
// sim(V1, V2) = (V1 · V2) / D; cosine similarity and (normalized) Hamming
// distance are provided for completeness and for the baselines that quote
// them. A similarity near 0 indicates quasi-orthogonality.
#pragma once

#include <cstdint>

#include "hdc/hypervector.hpp"

namespace factorhd::hdc {

/// Raw dot product V1 · V2 in 64-bit (bundles of many objects can exceed
/// 32-bit partial sums at large D).
[[nodiscard]] std::int64_t dot(const Hypervector& a, const Hypervector& b);

/// The paper's similarity metric: dot(a, b) / D.
[[nodiscard]] double similarity(const Hypervector& a, const Hypervector& b);

/// Cosine similarity; 0 when either vector is all-zero.
[[nodiscard]] double cosine(const Hypervector& a, const Hypervector& b);

/// Number of differing components (classical Hamming distance; meaningful
/// for bipolar/ternary HVs).
[[nodiscard]] std::size_t hamming(const Hypervector& a, const Hypervector& b);

/// Hamming distance normalized to [0, 1].
[[nodiscard]] double normalized_hamming(const Hypervector& a,
                                        const Hypervector& b);

/// Euclidean norm of the HV.
[[nodiscard]] double norm(const Hypervector& v);

}  // namespace factorhd::hdc
