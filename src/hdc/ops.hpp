// The HDC operator algebra: bundling (+), binding (⊙), unbinding, clipping,
// permutation (ρ), and negation, exactly as defined in the paper's §II-A.
//
// Binding over the {-1,+1} alphabet is componentwise multiplication and is
// self-inverse (V ⊙ V = 1), so unbinding reuses `bind`. Bundling is
// componentwise addition; the FactorHD single-object convention clips bundle
// results to the ternary alphabet while multi-object bundles stay in Z^D.
#pragma once

#include <cstddef>
#include <span>

#include "hdc/hypervector.hpp"

namespace factorhd::hdc {

/// Componentwise sum a + b (bundling / memorization).
[[nodiscard]] Hypervector bundle(const Hypervector& a, const Hypervector& b);

/// Sum of an arbitrary number of HVs. Requires a non-empty, dimension-
/// consistent input span.
[[nodiscard]] Hypervector bundle(std::span<const Hypervector> vs);

/// In-place accumulate: target += v.
void accumulate(Hypervector& target, const Hypervector& v);

/// In-place subtract: target -= v (used when excluding a reconstructed object
/// from a multi-object bundle during factorization).
void subtract(Hypervector& target, const Hypervector& v);

/// Componentwise product a ⊙ b (binding / association). Self-inverse over the
/// bipolar alphabet, so this is also the unbinding operator.
[[nodiscard]] Hypervector bind(const Hypervector& a, const Hypervector& b);

/// Product of an arbitrary number of HVs.
[[nodiscard]] Hypervector bind(std::span<const Hypervector> vs);

/// In-place binding: target ⊙= v.
void bind_inplace(Hypervector& target, const Hypervector& v);

/// Clip every component into [-1, +1] (sign with a dead zone at 0). Applied
/// to single-object FactorHD bundles per the paper's encoding convention.
[[nodiscard]] Hypervector clip_ternary(const Hypervector& v);
void clip_ternary_inplace(Hypervector& v);

/// Componentwise sign: >0 -> +1, <0 -> -1, 0 stays 0 (identical to
/// clip_ternary for inputs in Z; provided under the conventional name used
/// when binarizing resonator estimates).
[[nodiscard]] Hypervector sign(const Hypervector& v);

/// Majority-style binarization with deterministic tie-break for zero
/// components: zeros become +1 when `ties_positive`, else -1. Produces a
/// strictly bipolar HV, as required by codebook cleanup in the baselines.
[[nodiscard]] Hypervector sign_bipolar(const Hypervector& v,
                                       bool ties_positive = true);

/// Cyclic permutation ρ^k (rotate components right by k mod D). ρ preserves
/// distances, and ρ^k(a) is quasi-orthogonal to a for k != 0 (mod D); used to
/// protect positional structure.
[[nodiscard]] Hypervector permute(const Hypervector& v, std::size_t k);

/// Inverse of permute: rotate left by k mod D.
[[nodiscard]] Hypervector unpermute(const Hypervector& v, std::size_t k);

/// Componentwise negation -v (the bipolar additive inverse).
[[nodiscard]] Hypervector negate(const Hypervector& v);

/// The multiplicative identity for binding: the all-ones HV of dimension dim.
[[nodiscard]] Hypervector identity(std::size_t dim);

/// Weighted bundle rounded to integers: out_i = round(scale * Σ_k w_k v_k[i]).
/// This is the "analog" bundle the neuro-symbolic pipeline uses to fold a
/// classifier's softmax over label encodings into one HV. Requires equal
/// weight/vector counts and consistent dimensions.
[[nodiscard]] Hypervector weighted_bundle(std::span<const Hypervector> vs,
                                          std::span<const double> weights,
                                          double scale = 1.0);

}  // namespace factorhd::hdc
