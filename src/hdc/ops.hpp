// The HDC operator algebra: bundling (+), binding (⊙), unbinding, clipping,
// permutation (ρ), and negation, exactly as defined in the paper's §II-A.
//
// Binding over the {-1,+1} alphabet is componentwise multiplication and is
// self-inverse (V ⊙ V = 1), so unbinding reuses `bind`. Bundling is
// componentwise addition; the FactorHD single-object convention clips bundle
// results to the ternary alphabet while multi-object bundles stay in Z^D.
//
// Unless noted otherwise, every binary operation throws
// std::invalid_argument on dimension mismatch or empty input.
#pragma once

#include <cstddef>
#include <span>

#include "hdc/hypervector.hpp"

namespace factorhd::hdc {

/// Componentwise sum a + b (bundling / memorization).
/// \param a,b Hypervectors of equal non-zero dimension.
/// \return The bundle a + b.
/// \throws std::invalid_argument On dimension mismatch or empty input.
[[nodiscard]] Hypervector bundle(const Hypervector& a, const Hypervector& b);

/// Sum of an arbitrary number of HVs.
/// \param vs Non-empty span of dimension-consistent hypervectors.
/// \return The bundle Σ vs[i].
/// \throws std::invalid_argument On empty input or mixed dimensions.
[[nodiscard]] Hypervector bundle(std::span<const Hypervector> vs);

/// In-place accumulate: target += v.
/// \param target Accumulator, same dimension as `v`.
/// \param v Hypervector to add.
/// \throws std::invalid_argument On dimension mismatch or empty input.
void accumulate(Hypervector& target, const Hypervector& v);

/// In-place subtract: target -= v (used when excluding a reconstructed object
/// from a multi-object bundle during factorization).
/// \param target Accumulator, same dimension as `v`.
/// \param v Hypervector to subtract.
/// \throws std::invalid_argument On dimension mismatch or empty input.
void subtract(Hypervector& target, const Hypervector& v);

/// Componentwise product a ⊙ b (binding / association). Self-inverse over the
/// bipolar alphabet, so this is also the unbinding operator.
/// \param a,b Hypervectors of equal non-zero dimension.
/// \return The bound product a ⊙ b.
/// \throws std::invalid_argument On dimension mismatch or empty input.
[[nodiscard]] Hypervector bind(const Hypervector& a, const Hypervector& b);

/// Product of an arbitrary number of HVs.
/// \param vs Non-empty span of dimension-consistent hypervectors.
/// \return The bound product ⊙ vs[i].
/// \throws std::invalid_argument On empty input or mixed dimensions.
[[nodiscard]] Hypervector bind(std::span<const Hypervector> vs);

/// In-place binding: target ⊙= v.
/// \param target Accumulator, same dimension as `v`.
/// \param v Hypervector to bind in.
/// \throws std::invalid_argument On dimension mismatch or empty input.
void bind_inplace(Hypervector& target, const Hypervector& v);

/// Clip every component into [-1, +1] (sign with a dead zone at 0). Applied
/// to single-object FactorHD bundles per the paper's encoding convention.
/// \param v Any hypervector.
/// \return The ternary-clipped copy.
[[nodiscard]] Hypervector clip_ternary(const Hypervector& v);
/// In-place variant of clip_ternary.
/// \param v Hypervector clipped in place.
void clip_ternary_inplace(Hypervector& v);

/// Componentwise sign: >0 -> +1, <0 -> -1, 0 stays 0 (identical to
/// clip_ternary for inputs in Z; provided under the conventional name used
/// when binarizing resonator estimates).
/// \param v Any hypervector.
/// \return The componentwise sign.
[[nodiscard]] Hypervector sign(const Hypervector& v);

/// Majority-style binarization with deterministic tie-break for zero
/// components: zeros become +1 when `ties_positive`, else -1. Produces a
/// strictly bipolar HV, as required by codebook cleanup in the baselines.
/// \param v Any hypervector.
/// \param ties_positive Tie-break direction for zero components.
/// \return A strictly bipolar hypervector.
[[nodiscard]] Hypervector sign_bipolar(const Hypervector& v,
                                       bool ties_positive = true);

/// Cyclic permutation ρ^k (rotate components right by k mod D). ρ preserves
/// distances, and ρ^k(a) is quasi-orthogonal to a for k != 0 (mod D); used to
/// protect positional structure.
/// \param v Hypervector to rotate.
/// \param k Rotation amount (taken mod D).
/// \return The rotated copy.
/// \throws std::invalid_argument On empty input.
[[nodiscard]] Hypervector permute(const Hypervector& v, std::size_t k);

/// Inverse of permute: rotate left by k mod D.
/// \param v Hypervector to rotate.
/// \param k Rotation amount (taken mod D).
/// \return The rotated copy.
/// \throws std::invalid_argument On empty input.
[[nodiscard]] Hypervector unpermute(const Hypervector& v, std::size_t k);

/// Componentwise negation -v (the bipolar additive inverse).
/// \param v Any hypervector.
/// \return The negated copy.
[[nodiscard]] Hypervector negate(const Hypervector& v);

/// The multiplicative identity for binding: the all-ones HV of dimension dim.
/// \param dim Dimension of the identity.
/// \return The all-ones hypervector.
/// \throws std::invalid_argument When `dim` is zero.
[[nodiscard]] Hypervector identity(std::size_t dim);

/// Weighted bundle rounded to integers: out_i = round(scale * Σ_k w_k v_k[i]).
/// This is the "analog" bundle the neuro-symbolic pipeline uses to fold a
/// classifier's softmax over label encodings into one HV.
/// \param vs Non-empty span of dimension-consistent hypervectors.
/// \param weights One weight per hypervector.
/// \param scale Multiplier applied before rounding.
/// \return The rounded weighted bundle.
/// \throws std::invalid_argument On empty input, mixed dimensions, or
///   weight/vector count mismatch.
[[nodiscard]] Hypervector weighted_bundle(std::span<const Hypervector> vs,
                                          std::span<const double> weights,
                                          double scale = 1.0);

}  // namespace factorhd::hdc
