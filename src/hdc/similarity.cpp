#include "hdc/similarity.hpp"

#include <cmath>

namespace factorhd::hdc {

std::int64_t dot(const Hypervector& a, const Hypervector& b) {
  require_same_dim(a, b, "dot");
  const auto* pa = a.data();
  const auto* pb = b.data();
  std::int64_t acc = 0;
  for (std::size_t i = 0, n = a.dim(); i < n; ++i) {
    acc += static_cast<std::int64_t>(pa[i]) * pb[i];
  }
  return acc;
}

double similarity(const Hypervector& a, const Hypervector& b) {
  return static_cast<double>(dot(a, b)) / static_cast<double>(a.dim());
}

double cosine(const Hypervector& a, const Hypervector& b) {
  const double na = norm(a);
  const double nb = norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return static_cast<double>(dot(a, b)) / (na * nb);
}

std::size_t hamming(const Hypervector& a, const Hypervector& b) {
  require_same_dim(a, b, "hamming");
  const auto* pa = a.data();
  const auto* pb = b.data();
  std::size_t diff = 0;
  for (std::size_t i = 0, n = a.dim(); i < n; ++i) diff += (pa[i] != pb[i]);
  return diff;
}

double normalized_hamming(const Hypervector& a, const Hypervector& b) {
  return static_cast<double>(hamming(a, b)) / static_cast<double>(a.dim());
}

double norm(const Hypervector& v) {
  double acc = 0.0;
  const auto* p = v.data();
  for (std::size_t i = 0, n = v.dim(); i < n; ++i) {
    acc += static_cast<double>(p[i]) * p[i];
  }
  return std::sqrt(acc);
}

}  // namespace factorhd::hdc
