#include "hdc/item_memory.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/similarity.hpp"

namespace factorhd::hdc {

namespace {

using kernels::PackedItemMemory;
using kernels::PackedQuery;
using kernels::ShardedConfig;
using kernels::ShardedItemMemory;
using kernels::SimdLevel;
using kernels::TieredConfig;
using kernels::TieredItemMemory;

// The SIMD tier a forced kPacked* backend names; nullopt for every backend
// that dispatches (kAuto/kPacked/kTiered) or never packs (kScalar).
std::optional<SimdLevel> forced_simd_level(ScanBackend backend) noexcept {
  switch (backend) {
    case ScanBackend::kPackedWords:
      return SimdLevel::kScalarWords;
    case ScanBackend::kPackedAVX2:
      return SimdLevel::kAVX2;
    case ScanBackend::kPackedAVX512:
      return SimdLevel::kAVX512;
    case ScanBackend::kPackedNEON:
      return SimdLevel::kNEON;
    default:
      return std::nullopt;
  }
}

// A loaded snapshot is adopted only when its packed rows are bit-equal to
// a fresh packing of the codebook: same geometry, same SIMD tier, and
// plane-for-plane identical words. Anything else — a snapshot of a
// different codebook, a stale save, a different dimension — is rejected
// and the caller rebuilds, so adoption can never change a scan result.
bool snapshot_matches(const TieredItemMemory& snapshot,
                      const PackedItemMemory& fresh) noexcept {
  const PackedItemMemory& rows = snapshot.rows();
  if (rows.layout() != fresh.layout() || rows.dim() != fresh.dim() ||
      rows.size() != fresh.size() ||
      rows.simd_level() != fresh.simd_level()) {
    return false;
  }
  const auto sign_a = rows.sign_plane();
  const auto sign_b = fresh.sign_plane();
  if (!std::equal(sign_a.begin(), sign_a.end(), sign_b.begin(),
                  sign_b.end())) {
    return false;
  }
  const auto nz_a = rows.nonzero_plane();
  const auto nz_b = fresh.nonzero_plane();
  return std::equal(nz_a.begin(), nz_a.end(), nz_b.begin(), nz_b.end());
}

}  // namespace

ItemMemory::ItemMemory(const Codebook& codebook, ScanBackend backend,
                       std::optional<TieredConfig> tiered,
                       std::shared_ptr<const TieredItemMemory> snapshot,
                       std::optional<ShardedConfig> sharded)
    : codebook_(&codebook) {
  if (tiered.has_value() && backend != ScanBackend::kAuto &&
      backend != ScanBackend::kTiered && backend != ScanBackend::kSharded) {
    throw std::invalid_argument(
        "ItemMemory: a TieredConfig requires the kAuto, kTiered, or "
        "kSharded backend");
  }
  if (sharded.has_value() && backend != ScanBackend::kAuto &&
      backend != ScanBackend::kSharded) {
    throw std::invalid_argument(
        "ItemMemory: a ShardedConfig requires the kAuto or kSharded backend");
  }
  // Adopt the offered snapshot after verification, or pay the k-means
  // build. On adoption packed_ switches to the snapshot's planes so exact
  // and tiered scans read the same (possibly mmap-shared) memory and the
  // verification packing is freed.
  const auto build_tier = [&] {
    if (snapshot != nullptr && snapshot_matches(*snapshot, *packed_)) {
      packed_ = snapshot->shared_rows();
      tiered_ = std::move(snapshot);
      return;
    }
    tiered_ = std::make_shared<const TieredItemMemory>(
        packed_, tiered.value_or(kernels::tiered_config_from_env()));
  };
  // Partition packed_ into the configured shard count, with per-shard tier
  // indexes exactly where the unsharded constructor would have built one
  // tier. A whole-codebook `snapshot` cannot back a partition (per-shard
  // snapshots go through the ShardedItemMemory constructor directly) and is
  // treated as rejected.
  const auto build_sharded = [&](ShardedConfig config, bool want_tier) {
    if (want_tier && !config.tiered.has_value()) {
      config.tiered = tiered.value_or(kernels::tiered_config_from_env());
    }
    sharded_ = std::make_shared<const ShardedItemMemory>(packed_, config);
  };
  switch (backend) {
    case ScanBackend::kScalar:
      break;
    case ScanBackend::kPacked:
      // Throws std::invalid_argument when the codebook is not packable.
      packed_ = std::make_shared<const PackedItemMemory>(codebook);
      break;
    case ScanBackend::kTiered:
      packed_ = std::make_shared<const PackedItemMemory>(codebook);
      build_tier();
      break;
    case ScanBackend::kSharded: {
      packed_ = std::make_shared<const PackedItemMemory>(codebook);
      const std::size_t min_rows = kernels::tiered_auto_min_rows();
      const bool want_tier =
          tiered.has_value() || (min_rows > 0 && codebook.size() >= min_rows);
      build_sharded(sharded.value_or(kernels::sharded_config_from_env()),
                    want_tier);
      break;
    }
    case ScanBackend::kAuto:
      if (tiered.has_value() && !PackedItemMemory::packable(codebook)) {
        // An explicit config promises a tier index; never drop it silently.
        throw std::invalid_argument(
            "ItemMemory: TieredConfig given but the codebook is not "
            "packable (entries outside {-1, 0, +1})");
      }
      if (sharded.has_value() && !PackedItemMemory::packable(codebook)) {
        throw std::invalid_argument(
            "ItemMemory: ShardedConfig given but the codebook is not "
            "packable (entries outside {-1, 0, +1})");
      }
      if (PackedItemMemory::packable(codebook)) {
        packed_ = std::make_shared<const PackedItemMemory>(codebook);
        // Auto-upgrade to the tiered index for very large codebooks (an
        // explicit config forces it regardless of the threshold; min_rows
        // of 0 disables the upgrade so kAuto stays exact everywhere).
        const std::size_t min_rows = kernels::tiered_auto_min_rows();
        const bool want_tier =
            tiered.has_value() || (min_rows > 0 && codebook.size() >= min_rows);
        // Partition when explicitly configured with 2+ shards, or when the
        // FACTORHD_SHARDS env knob asks for 2+ and the codebook clears the
        // FACTORHD_SHARD_MIN_ROWS threshold (below it the scatter-gather
        // bookkeeping costs more than the scan saves).
        ShardedConfig shard_cfg =
            sharded.value_or(kernels::sharded_config_from_env());
        if (shard_cfg.shards == 0) {
          shard_cfg.shards = kernels::sharded_config_from_env().shards;
        }
        const std::size_t shard_min = kernels::sharded_auto_min_rows();
        const bool want_shards =
            shard_cfg.shards >= 2 &&
            (sharded.has_value() ||
             (shard_min > 0 && codebook.size() >= shard_min));
        if (want_shards) {
          build_sharded(std::move(shard_cfg), want_tier);
        } else if (want_tier) {
          build_tier();
        }
      }
      break;
    case ScanBackend::kPackedWords:
    case ScanBackend::kPackedAVX2:
    case ScanBackend::kPackedAVX512:
    case ScanBackend::kPackedNEON: {
      const SimdLevel level = *forced_simd_level(backend);
      // A forced level must run exactly as requested — the differential
      // fuzz suite and the per-level benchmarks rely on never degrading.
      if (!kernels::simd_level_available(level)) {
        throw std::invalid_argument(
            std::string("ItemMemory: forced SIMD level '") +
            kernels::to_string(level) + "' is not available on this CPU");
      }
      packed_ = std::make_shared<const PackedItemMemory>(codebook, level);
      break;
    }
  }
}

std::optional<SimdLevel> ItemMemory::simd_level() const noexcept {
  if (!packed_) return std::nullopt;
  return packed_->simd_level();
}

// Packs `query` for the kernels when the packed backend is active and the
// query's alphabet and dimension admit plane arithmetic; nullopt routes the
// call to the scalar loop (integer bundles, dimension mismatches — the
// latter so the scalar path raises its usual error). Packing runs at the
// memory's own SIMD tier so forced kPacked* backends pin the whole scan,
// packing included.
static std::optional<PackedQuery> packed_route(
    const std::shared_ptr<const PackedItemMemory>& packed,
    const Hypervector& query) {
  if (!packed || query.dim() != packed->dim()) return std::nullopt;
  return PackedQuery::pack(query, packed->simd_level());
}

Match ItemMemory::best(const Hypervector& query, ScanMode mode,
                       std::uint64_t* scanned, std::uint64_t* probes) const {
  if (probes != nullptr) *probes = 0;
  if (auto q = packed_route(packed_, query)) {
    if (sharded_) {
      TieredItemMemory::ScanStats stats;
      const Match m =
          sharded_->best(*q, mode == ScanMode::kExact, &stats);
      count(stats.centroid_dots + stats.row_dots);
      if (scanned != nullptr) *scanned = stats.centroid_dots + stats.row_dots;
      if (probes != nullptr) *probes = stats.probes;
      return m;
    }
    if (tiered_ && mode == ScanMode::kDefault) {
      TieredItemMemory::ScanStats stats;
      const Match m = tiered_->best(*q, &stats);
      count(stats.centroid_dots + stats.row_dots);
      if (scanned != nullptr) *scanned = stats.centroid_dots + stats.row_dots;
      if (probes != nullptr) *probes = stats.probes;
      return m;
    }
    count(packed_->size());
    if (scanned != nullptr) *scanned = packed_->size();
    return packed_->best(*q);
  }
  Match m{0, similarity(query, codebook_->item(0))};
  count(1);
  for (std::size_t j = 1; j < codebook_->size(); ++j) {
    const double s = similarity(query, codebook_->item(j));
    count(1);
    if (s > m.similarity) m = {j, s};
  }
  if (scanned != nullptr) *scanned = codebook_->size();
  return m;
}

std::vector<Match> ItemMemory::best_block(std::span<const Hypervector> queries,
                                          ScanMode mode,
                                          std::uint64_t* scanned,
                                          std::uint64_t* probes) const {
  if (queries.empty()) return {};
  // The one-pass blocked kernels need the packed planes, exact
  // full-codebook semantics, and a packable alphabet for every query.
  // Everything else takes the per-query path below — bit-identical by the
  // kernels' contract, so this routing never changes a result. A sharded
  // memory runs the blocked kernels per shard (scatter-gather) under the
  // same exactness gate, per-shard tiers standing in for the single tier.
  const bool blocked_ok =
      sharded_ ? (!sharded_->tiered_shards() || mode == ScanMode::kExact)
               : (!tiered_ || mode == ScanMode::kExact);
  if (packed_ && blocked_ok) {
    std::vector<PackedQuery> packed;
    packed.reserve(queries.size());
    for (const Hypervector& query : queries) {
      auto q = packed_route(packed_, query);
      if (!q) break;
      packed.push_back(std::move(*q));
    }
    if (packed.size() == queries.size()) {
      count(queries.size() * packed_->size());
      if (scanned != nullptr) {
        std::fill_n(scanned, queries.size(), packed_->size());
      }
      // The one-pass route is always an exact scan: no buckets probed.
      if (probes != nullptr) std::fill_n(probes, queries.size(), 0);
      if (sharded_) {
        return sharded_->best_block(packed, mode == ScanMode::kExact);
      }
      return packed_->best_block(packed);
    }
  }
  std::vector<Match> out;
  out.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    out.push_back(best(queries[q], mode,
                       scanned != nullptr ? scanned + q : nullptr,
                       probes != nullptr ? probes + q : nullptr));
  }
  return out;
}

Match ItemMemory::best_among(const Hypervector& query,
                             const std::vector<std::size_t>& indices) const {
  if (indices.empty()) {
    throw std::invalid_argument("ItemMemory::best_among: empty index set");
  }
  if (auto q = packed_route(packed_, query)) {
    count(indices.size());
    return packed_->best_among(*q, indices);
  }
  Match m{indices[0], similarity(query, codebook_->item(indices[0]))};
  count(1);
  for (std::size_t k = 1; k < indices.size(); ++k) {
    const double s = similarity(query, codebook_->item(indices[k]));
    count(1);
    if (s > m.similarity) m = {indices[k], s};
  }
  return m;
}

std::vector<Match> ItemMemory::above(const Hypervector& query,
                                     double threshold, ScanMode mode,
                                     std::uint64_t* scanned,
                                     std::uint64_t* probes) const {
  if (probes != nullptr) *probes = 0;
  if (auto q = packed_route(packed_, query)) {
    if (sharded_) {
      TieredItemMemory::ScanStats stats;
      std::vector<Match> out =
          sharded_->above(*q, threshold, mode == ScanMode::kExact, &stats);
      count(stats.centroid_dots + stats.row_dots);
      if (scanned != nullptr) *scanned = stats.centroid_dots + stats.row_dots;
      if (probes != nullptr) *probes = stats.probes;
      return out;
    }
    if (tiered_ && mode == ScanMode::kDefault) {
      TieredItemMemory::ScanStats stats;
      std::vector<Match> out = tiered_->above(*q, threshold, &stats);
      count(stats.centroid_dots + stats.row_dots);
      if (scanned != nullptr) *scanned = stats.centroid_dots + stats.row_dots;
      if (probes != nullptr) *probes = stats.probes;
      return out;
    }
    count(packed_->size());
    if (scanned != nullptr) *scanned = packed_->size();
    return packed_->above(*q, threshold);
  }
  std::vector<Match> out;
  for (std::size_t j = 0; j < codebook_->size(); ++j) {
    const double s = similarity(query, codebook_->item(j));
    count(1);
    if (s > threshold) out.push_back({j, s});
  }
  if (scanned != nullptr) *scanned = codebook_->size();
  std::sort(out.begin(), out.end(), match_order);
  return out;
}

std::vector<Match> ItemMemory::above_among(
    const Hypervector& query, double threshold,
    const std::vector<std::size_t>& indices) const {
  if (auto q = packed_route(packed_, query)) {
    count(indices.size());
    return packed_->above_among(*q, threshold, indices);
  }
  std::vector<Match> out;
  for (std::size_t j : indices) {
    const double s = similarity(query, codebook_->item(j));
    count(1);
    if (s > threshold) out.push_back({j, s});
  }
  std::sort(out.begin(), out.end(), match_order);
  return out;
}

std::vector<Match> ItemMemory::top_k(const Hypervector& query, std::size_t k,
                                     ScanMode mode, std::uint64_t* scanned,
                                     std::uint64_t* probes) const {
  if (probes != nullptr) *probes = 0;
  if (k == 0) {
    // Nothing was asked for: answer without scanning (on every backend —
    // the tiered path would otherwise risk its empty-bucket exact-scan
    // fallback and charge a full-memory scan for an empty result).
    if (scanned != nullptr) *scanned = 0;
    return {};
  }
  if (auto q = packed_route(packed_, query)) {
    if (sharded_) {
      TieredItemMemory::ScanStats stats;
      std::vector<Match> out =
          sharded_->top_k(*q, k, mode == ScanMode::kExact, &stats);
      count(stats.centroid_dots + stats.row_dots);
      if (scanned != nullptr) *scanned = stats.centroid_dots + stats.row_dots;
      if (probes != nullptr) *probes = stats.probes;
      return out;
    }
    if (tiered_ && mode == ScanMode::kDefault) {
      TieredItemMemory::ScanStats stats;
      std::vector<Match> out = tiered_->top_k(*q, k, &stats);
      count(stats.centroid_dots + stats.row_dots);
      if (scanned != nullptr) *scanned = stats.centroid_dots + stats.row_dots;
      if (probes != nullptr) *probes = stats.probes;
      return out;
    }
    count(packed_->size());
    if (scanned != nullptr) *scanned = packed_->size();
    return packed_->top_k(*q, k);
  }
  std::vector<Match> all;
  all.reserve(codebook_->size());
  for (std::size_t j = 0; j < codebook_->size(); ++j) {
    all.push_back({j, similarity(query, codebook_->item(j))});
    count(1);
  }
  if (scanned != nullptr) *scanned = codebook_->size();
  const std::size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                    match_order);
  all.resize(keep);
  return all;
}

void ItemMemory::dots(const Hypervector& query,
                      std::span<std::int64_t> out) const {
  if (out.size() != codebook_->size()) {
    throw std::invalid_argument("ItemMemory::dots: output size mismatch");
  }
  if (auto q = packed_route(packed_, query)) {
    count(packed_->size());
    if (sharded_) {
      sharded_->dots(*q, out);  // bit-identical, scattered across shards
      return;
    }
    packed_->dots(*q, out);
    return;
  }
  for (std::size_t j = 0; j < codebook_->size(); ++j) {
    out[j] = dot(query, codebook_->item(j));
    count(1);
  }
}

}  // namespace factorhd::hdc
