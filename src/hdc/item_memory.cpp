#include "hdc/item_memory.hpp"

#include <algorithm>
#include <stdexcept>

#include "hdc/similarity.hpp"

namespace factorhd::hdc {

Match ItemMemory::best(const Hypervector& query) const {
  Match m{0, similarity(query, codebook_->item(0))};
  count(1);
  for (std::size_t j = 1; j < codebook_->size(); ++j) {
    const double s = similarity(query, codebook_->item(j));
    count(1);
    if (s > m.similarity) m = {j, s};
  }
  return m;
}

Match ItemMemory::best_among(const Hypervector& query,
                             const std::vector<std::size_t>& indices) const {
  if (indices.empty()) {
    throw std::invalid_argument("ItemMemory::best_among: empty index set");
  }
  Match m{indices[0], similarity(query, codebook_->item(indices[0]))};
  count(1);
  for (std::size_t k = 1; k < indices.size(); ++k) {
    const double s = similarity(query, codebook_->item(indices[k]));
    count(1);
    if (s > m.similarity) m = {indices[k], s};
  }
  return m;
}

std::vector<Match> ItemMemory::above(const Hypervector& query,
                                     double threshold) const {
  std::vector<Match> out;
  for (std::size_t j = 0; j < codebook_->size(); ++j) {
    const double s = similarity(query, codebook_->item(j));
    count(1);
    if (s > threshold) out.push_back({j, s});
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    return a.similarity > b.similarity;
  });
  return out;
}

std::vector<Match> ItemMemory::above_among(
    const Hypervector& query, double threshold,
    const std::vector<std::size_t>& indices) const {
  std::vector<Match> out;
  for (std::size_t j : indices) {
    const double s = similarity(query, codebook_->item(j));
    count(1);
    if (s > threshold) out.push_back({j, s});
  }
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    return a.similarity > b.similarity;
  });
  return out;
}

std::vector<Match> ItemMemory::top_k(const Hypervector& query,
                                     std::size_t k) const {
  std::vector<Match> all;
  all.reserve(codebook_->size());
  for (std::size_t j = 0; j < codebook_->size(); ++j) {
    all.push_back({j, similarity(query, codebook_->item(j))});
    count(1);
  }
  const std::size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                    [](const Match& a, const Match& b) {
                      return a.similarity > b.similarity;
                    });
  all.resize(keep);
  return all;
}

}  // namespace factorhd::hdc
