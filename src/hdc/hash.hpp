// Content hashing of hypervectors.
//
// The serving layer's ResultCache keys requests by the *content* of the
// target HV (two requests carrying equal vectors must collide), so the hash
// must be a pure function of (dim, components) — independent of storage
// alphabet, platform, or process. hash_hypervector provides that: a 64-bit
// mix (splitmix64-style avalanche over each component folded into a running
// state) with the dimension absorbed first, so prefixes and zero-padded
// variants of a vector hash differently.
//
// 64 bits is a fingerprint, not a proof of equality: consumers that need
// bit-identical semantics (the ResultCache does) verify candidate hits with
// a full component comparison and treat a mismatch as a miss.
#pragma once

#include <cstdint>

#include "hdc/hypervector.hpp"

namespace factorhd::hdc {

/// Seed/state mixer behind hash_hypervector — one splitmix64 avalanche
/// round. Exposed for composing hashes of aggregate keys (the service layer
/// mixes an options fingerprint into the target hash with it).
/// \param x Input state.
/// \return Avalanched state (bijective on u64).
[[nodiscard]] std::uint64_t hash_mix(std::uint64_t x) noexcept;

/// Order-dependent 64-bit content hash of `v` over (dim, components).
/// Deterministic across processes and platforms; equal vectors always hash
/// equal, distinct vectors collide with ~2^-64 probability per pair.
///
/// \par Contract (fingerprint, not identity)
/// The return value is a *fingerprint*: equality of hashes is necessary
/// but never sufficient for equality of vectors. Consumers that must not
/// act on a false positive are required to verify candidate matches with
/// a full `(dim, components)` comparison and treat any mismatch as
/// "different" — i.e. collision ⇒ miss, never a wrong answer. The serving
/// layer's `service::ResultCache` is the canonical consumer and implements
/// exactly this discipline (`service/result_cache.hpp`); the stability
/// guarantee (no dependence on process, platform, or storage alphabet) is
/// what makes the fingerprint usable as a cross-restart cache key.
///
/// \param v Hypervector to fingerprint (the empty HV has a defined hash).
/// \param seed Optional domain-separation seed.
/// \return The 64-bit fingerprint.
[[nodiscard]] std::uint64_t hash_hypervector(const Hypervector& v,
                                             std::uint64_t seed = 0) noexcept;

}  // namespace factorhd::hdc
