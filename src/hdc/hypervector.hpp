// Hypervector: the basic value type of the HDC substrate.
//
// A hypervector (HV) is a D-dimensional integer vector. Three alphabets are
// used across the library, all represented uniformly with int32 components:
//
//   * bipolar  {-1, +1}   — atomic item/label HVs in codebooks,
//   * ternary  {-1, 0, +1} — single-object FactorHD representations (clipped
//     bundles of bipolar HVs; 2 bits of information per dimension, which is
//     the basis of the paper's fair-storage rule),
//   * integer  Z           — bundles of several object HVs.
//
// Uniform storage keeps the algebra simple and the inner loops trivially
// auto-vectorizable; the packed bit-level codecs live in hdc/packed.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace factorhd::hdc {

/// D-dimensional integer vector with value semantics. Invariant: dimension is
/// fixed at construction (operations never resize an HV in place).
class Hypervector {
 public:
  using value_type = std::int32_t;

  /// Empty (dimension-0) hypervector; useful as a "not yet assigned" state.
  Hypervector() = default;

  /// Zero-initialized hypervector of dimension `dim`.
  /// \param dim Number of components.
  explicit Hypervector(std::size_t dim) : data_(dim, 0) {}

  /// Takes ownership of explicit component values.
  /// \param values Component values; their count becomes the dimension.
  explicit Hypervector(std::vector<value_type> values)
      : data_(std::move(values)) {}

  Hypervector(std::initializer_list<value_type> values) : data_(values) {}

  [[nodiscard]] std::size_t dim() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] value_type operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] value_type& operator[](std::size_t i) noexcept {
    return data_[i];
  }

  [[nodiscard]] std::span<const value_type> components() const noexcept {
    return data_;
  }
  [[nodiscard]] std::span<value_type> components() noexcept { return data_; }

  [[nodiscard]] const value_type* data() const noexcept { return data_.data(); }
  [[nodiscard]] value_type* data() noexcept { return data_.data(); }

  /// \return True when every component is -1 or +1.
  [[nodiscard]] bool is_bipolar() const noexcept;
  /// \return True when every component is -1, 0 or +1.
  [[nodiscard]] bool is_ternary() const noexcept;

  /// \return Number of zero components (used in sparsity diagnostics for
  ///   ternary HVs).
  [[nodiscard]] std::size_t zero_count() const noexcept;

  /// \return Largest absolute component value (0 for the empty HV).
  [[nodiscard]] value_type max_abs() const noexcept;

  bool operator==(const Hypervector&) const = default;

 private:
  std::vector<value_type> data_;
};

/// Validates that two operands are dimension-compatible.
/// \param a,b Operands to check.
/// \param op Operation name used in the error message.
/// \throws std::invalid_argument Unless a and b have equal non-zero
///   dimension.
inline void require_same_dim(const Hypervector& a, const Hypervector& b,
                             const char* op) {
  if (a.dim() != b.dim() || a.dim() == 0) {
    throw std::invalid_argument(
        std::string(op) + ": dimension mismatch (" + std::to_string(a.dim()) +
        " vs " + std::to_string(b.dim()) + ")");
  }
}

}  // namespace factorhd::hdc
