// Random hypervector generation.
//
// Randomly generated HVs in high dimension are quasi-orthogonal with
// overwhelming probability (concentration of measure): the normalized dot
// product of two independent bipolar HVs has mean 0 and stddev 1/sqrt(D).
// This is the foundation of symbolic representation in HDC.
#pragma once

#include <cstddef>

#include "hdc/hypervector.hpp"
#include "util/rng.hpp"

namespace factorhd::hdc {

/// Uniform random bipolar HV in {-1,+1}^D. Draws 64 components per generator
/// call (one bit each).
/// \param dim Hypervector dimension.
/// \param rng Source of randomness.
/// \return A random bipolar hypervector.
[[nodiscard]] Hypervector random_bipolar(std::size_t dim,
                                         util::Xoshiro256& rng);

/// Random ternary HV: each component is 0 with probability `sparsity`,
/// otherwise ±1 with equal probability.
/// \param dim Hypervector dimension.
/// \param sparsity Per-component zero probability in [0, 1].
/// \param rng Source of randomness.
/// \return A random ternary hypervector.
[[nodiscard]] Hypervector random_ternary(std::size_t dim, double sparsity,
                                         util::Xoshiro256& rng);

/// Flip each component of a bipolar HV independently with probability p
/// (noise model used in robustness tests and the IMC factorizer simulation).
/// \param v Hypervector to perturb (components are negated, so any alphabet
///   works; the noise model is meaningful for bipolar inputs).
/// \param p Per-component flip probability in [0, 1].
/// \param rng Source of randomness.
/// \return The noisy copy.
[[nodiscard]] Hypervector flip_noise(const Hypervector& v, double p,
                                     util::Xoshiro256& rng);

}  // namespace factorhd::hdc
