#include "hdc/codebook.hpp"

#include <stdexcept>

#include "hdc/random.hpp"

namespace factorhd::hdc {

Codebook::Codebook(std::size_t dim, std::size_t size, util::Xoshiro256& rng,
                   std::string name)
    : name_(std::move(name)) {
  if (dim == 0) throw std::invalid_argument("Codebook: zero dimension");
  if (size == 0) throw std::invalid_argument("Codebook: zero size");
  items_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    items_.push_back(random_bipolar(dim, rng));
  }
}

Codebook::Codebook(std::vector<Hypervector> items, std::string name)
    : items_(std::move(items)), name_(std::move(name)) {
  if (items_.empty()) throw std::invalid_argument("Codebook: empty item set");
  const std::size_t d = items_[0].dim();
  if (d == 0) throw std::invalid_argument("Codebook: zero-dimension items");
  for (const auto& v : items_) {
    if (v.dim() != d) {
      throw std::invalid_argument("Codebook: inconsistent item dimensions");
    }
  }
}

}  // namespace factorhd::hdc
