#include "hdc/kernels/simd.hpp"

#include <bit>

#include "hdc/kernels/plane.hpp"
#include "util/env.hpp"

// 64-bit x86 only: the kernels use 64-bit-lane intrinsics
// (_mm_extract_epi64 etc.) that GCC/Clang do not provide on 32-bit targets.
#if defined(__x86_64__)
#define FACTORHD_X86_SIMD 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
#define FACTORHD_NEON_SIMD 1
#include <arm_neon.h>
#endif

namespace factorhd::hdc::kernels {

namespace {

// --- Scalar-words tier ------------------------------------------------------
// Thin wrappers over the plane.hpp reference loops plus the portable packer;
// this is the tier every SIMD level must agree with bit-for-bit.

std::int64_t dot_bb_scalar(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words, std::size_t dim) noexcept {
  return dot_bipolar_bipolar(a, b, words, dim);
}

std::int64_t dot_bt_scalar(const std::uint64_t* bip, const std::uint64_t* nz,
                           const std::uint64_t* sg,
                           std::size_t words) noexcept {
  return dot_bipolar_ternary(bip, nz, sg, words);
}

std::int64_t dot_tt_scalar(const std::uint64_t* a_nz, const std::uint64_t* a_sg,
                           const std::uint64_t* b_nz, const std::uint64_t* b_sg,
                           std::size_t words) noexcept {
  return dot_ternary_ternary(a_nz, a_sg, b_nz, b_sg, words);
}

// Packs one (possibly partial) word's components [base, min(base+64, dim)).
// Word-blocked and branchless in the per-component work: compare results
// OR-ed into register-resident words instead of mispredicting per-component
// branches. Returns false on a component outside {-1, 0, +1}.
bool pack_word_scalar(const std::int32_t* p, std::size_t base, std::size_t dim,
                      std::uint64_t& sg_out, std::uint64_t& nz_out) noexcept {
  const std::size_t n = std::min(kWordBits, dim - base);
  std::uint64_t nz = 0;
  std::uint64_t sg = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t c = p[base + i];
    if (c > 1 || c < -1) return false;  // integer bundle: scalar path
    nz |= static_cast<std::uint64_t>(c != 0) << i;
    sg |= static_cast<std::uint64_t>(c > 0) << i;
  }
  sg_out = sg;
  nz_out = nz;
  return true;
}

// `full` bitmask for the word starting at `base`: 1s at every in-dim bit.
constexpr std::uint64_t word_full_mask(std::size_t base,
                                       std::size_t dim) noexcept {
  const std::size_t n = std::min(kWordBits, dim - base);
  return n == kWordBits ? ~0ULL : (1ULL << n) - 1;
}

bool pack_planes_scalar(const std::int32_t* p, std::size_t dim,
                        std::uint64_t* sign, std::uint64_t* nonzero,
                        bool* any_zero) noexcept {
  const std::size_t words = plane_words(dim);
  bool saw_zero = false;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w * kWordBits;
    if (!pack_word_scalar(p, base, dim, sign[w], nonzero[w])) return false;
    saw_zero |= (nonzero[w] != word_full_mask(base, dim));
  }
  *any_zero = saw_zero;
  return true;
}

constexpr DotKernels kScalarKernels{dot_bb_scalar, dot_bt_scalar,
                                    dot_tt_scalar, pack_planes_scalar};

// Batch tier reference: the per-row kernels applied in row order. Every
// vectorized batch loop must reproduce these integers exactly.

void batch_bb_scalar(const std::uint64_t* query, const std::uint64_t* rows,
                     std::size_t count, std::size_t words, std::size_t dim,
                     std::int64_t* out) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = dot_bipolar_bipolar(query, rows + i * words, words, dim);
  }
}

void batch_bt_scalar(const std::uint64_t* q_nz, const std::uint64_t* q_sg,
                     const std::uint64_t* rows, std::size_t count,
                     std::size_t words, std::int64_t* out) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = dot_bipolar_ternary(rows + i * words, q_nz, q_sg, words);
  }
}

constexpr BatchDotKernels kScalarBatchKernels{batch_bb_scalar, batch_bt_scalar};

// Query-block tier reference: the per-query batch loops applied in query
// order. Every blocked loop nest must reproduce these integers exactly.

void block_bb_scalar(const std::uint64_t* const* queries, std::size_t nq,
                     const std::uint64_t* rows, std::size_t count,
                     std::size_t words, std::size_t dim,
                     std::int64_t* out) noexcept {
  for (std::size_t q = 0; q < nq; ++q) {
    batch_bb_scalar(queries[q], rows, count, words, dim, out + q * count);
  }
}

void block_bt_scalar(const std::uint64_t* const* q_nz,
                     const std::uint64_t* const* q_sg, std::size_t nq,
                     const std::uint64_t* rows, std::size_t count,
                     std::size_t words, std::int64_t* out) noexcept {
  for (std::size_t q = 0; q < nq; ++q) {
    batch_bt_scalar(q_nz[q], q_sg[q], rows, count, words, out + q * count);
  }
}

constexpr QueryBlockKernels kScalarQueryBlockKernels{block_bb_scalar,
                                                     block_bt_scalar};

#if FACTORHD_X86_SIMD

// GCC 12 flags the intentionally-undefined vectors inside the AVX-512
// intrinsic headers (_mm256_undefined_si256 via _mm512_reduce_add_epi64) as
// "used uninitialized" when they inline into optimized user code — a known
// false positive (GCC PR105593, fixed in GCC 13). Suppress it for the
// kernel definitions only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

// --- AVX2 tier --------------------------------------------------------------
// No native vector popcount on AVX2: use the nibble-LUT (PSHUFB) byte
// popcount folded into 64-bit lane sums with PSADBW — 4 plane words per
// vector op. Compiled with per-function target attributes so the rest of the
// binary stays baseline; only executed when CPUID reports AVX2.

__attribute__((target("avx2"))) inline __m256i popcount_epi64_avx2(
    __m256i v) noexcept {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline std::int64_t hsum_epi64_avx2(
    __m256i v) noexcept {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1));
  return _mm_extract_epi64(s, 0) + _mm_extract_epi64(s, 1);
}

__attribute__((target("avx2"))) std::int64_t dot_bb_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words,
    std::size_t dim) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    acc = _mm256_add_epi64(acc, popcount_epi64_avx2(x));
  }
  std::int64_t hamming = hsum_epi64_avx2(acc);
  for (; w < words; ++w) hamming += std::popcount(a[w] ^ b[w]);
  return static_cast<std::int64_t>(dim) - 2 * hamming;
}

__attribute__((target("avx2"))) std::int64_t dot_bt_avx2(
    const std::uint64_t* bip, const std::uint64_t* nz, const std::uint64_t* sg,
    std::size_t words) noexcept {
  __m256i support = _mm256_setzero_si256();
  __m256i differ = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bip + w));
    const __m256i vn =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(nz + w));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sg + w));
    support = _mm256_add_epi64(support, popcount_epi64_avx2(vn));
    differ = _mm256_add_epi64(
        differ, popcount_epi64_avx2(_mm256_and_si256(_mm256_xor_si256(vb, vs), vn)));
  }
  std::int64_t acc = hsum_epi64_avx2(support) - 2 * hsum_epi64_avx2(differ);
  for (; w < words; ++w) {
    acc += std::popcount(nz[w]) - 2 * std::popcount((bip[w] ^ sg[w]) & nz[w]);
  }
  return acc;
}

__attribute__((target("avx2"))) std::int64_t dot_tt_avx2(
    const std::uint64_t* a_nz, const std::uint64_t* a_sg,
    const std::uint64_t* b_nz, const std::uint64_t* b_sg,
    std::size_t words) noexcept {
  __m256i support = _mm256_setzero_si256();
  __m256i differ = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i active = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a_nz + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_nz + w)));
    const __m256i x = _mm256_and_si256(
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a_sg + w)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_sg + w))),
        active);
    support = _mm256_add_epi64(support, popcount_epi64_avx2(active));
    differ = _mm256_add_epi64(differ, popcount_epi64_avx2(x));
  }
  std::int64_t acc = hsum_epi64_avx2(support) - 2 * hsum_epi64_avx2(differ);
  for (; w < words; ++w) {
    const std::uint64_t active = a_nz[w] & b_nz[w];
    acc += std::popcount(active) -
           2 * std::popcount((a_sg[w] ^ b_sg[w]) & active);
  }
  return acc;
}

__attribute__((target("avx2"))) bool pack_planes_avx2(
    const std::int32_t* p, std::size_t dim, std::uint64_t* sign,
    std::uint64_t* nonzero, bool* any_zero) noexcept {
  const std::size_t words = plane_words(dim);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i neg_one = _mm256_set1_epi32(-1);
  const __m256i zero = _mm256_setzero_si256();
  bool saw_zero = false;
  std::size_t w = 0;
  // Full 64-component words: 8 blocks of 8 int32 lanes, each compare
  // materialized as an 8-bit movemask slice of the plane word.
  for (; (w + 1) * kWordBits <= dim; ++w) {
    const std::int32_t* base = p + w * kWordBits;
    std::uint64_t nz = 0;
    std::uint64_t sg = 0;
    std::uint32_t invalid = 0;
    for (std::size_t blk = 0; blk < kWordBits / 8; ++blk) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + blk * 8));
      const __m256i eq1 = _mm256_cmpeq_epi32(v, one);
      const __m256i eq0 = _mm256_cmpeq_epi32(v, zero);
      const __m256i eqm1 = _mm256_cmpeq_epi32(v, neg_one);
      const auto mask1 = static_cast<std::uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(eq1)));
      const auto mask0 = static_cast<std::uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(eq0)));
      const auto valid = static_cast<std::uint32_t>(_mm256_movemask_ps(
          _mm256_castsi256_ps(_mm256_or_si256(_mm256_or_si256(eq1, eq0), eqm1))));
      invalid |= ~valid & 0xffu;
      sg |= static_cast<std::uint64_t>(mask1) << (blk * 8);
      nz |= static_cast<std::uint64_t>(~mask0 & 0xffu) << (blk * 8);
    }
    if (invalid != 0) return false;  // integer bundle: scalar path
    sign[w] = sg;
    nonzero[w] = nz;
    saw_zero |= (nz != ~0ULL);
  }
  for (; w < words; ++w) {  // partial tail word
    const std::size_t base = w * kWordBits;
    if (!pack_word_scalar(p, base, dim, sign[w], nonzero[w])) return false;
    saw_zero |= (nonzero[w] != word_full_mask(base, dim));
  }
  *any_zero = saw_zero;
  return true;
}

// Batch loops: two rows per iteration share each query load and keep two
// popcount accumulators in flight, so the per-row horizontal reduction and
// loop control overlap with the neighbouring row's popcount chain.

__attribute__((target("avx2"))) void batch_bb_avx2(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t count,
    std::size_t words, std::size_t dim, std::int64_t* out) noexcept {
  const auto sdim = static_cast<std::int64_t>(dim);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const std::uint64_t* r0 = rows + i * words;
    const std::uint64_t* r1 = r0 + words;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    std::size_t w = 0;
    for (; w + 4 <= words; w += 4) {
      const __m256i q =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query + w));
      acc0 = _mm256_add_epi64(
          acc0, popcount_epi64_avx2(_mm256_xor_si256(
                    q, _mm256_loadu_si256(
                           reinterpret_cast<const __m256i*>(r0 + w)))));
      acc1 = _mm256_add_epi64(
          acc1, popcount_epi64_avx2(_mm256_xor_si256(
                    q, _mm256_loadu_si256(
                           reinterpret_cast<const __m256i*>(r1 + w)))));
    }
    std::int64_t h0 = hsum_epi64_avx2(acc0);
    std::int64_t h1 = hsum_epi64_avx2(acc1);
    for (; w < words; ++w) {
      h0 += std::popcount(query[w] ^ r0[w]);
      h1 += std::popcount(query[w] ^ r1[w]);
    }
    out[i] = sdim - 2 * h0;
    out[i + 1] = sdim - 2 * h1;
  }
  if (i < count) out[i] = dot_bb_avx2(query, rows + i * words, words, dim);
}

__attribute__((target("avx2"))) void batch_bt_avx2(
    const std::uint64_t* q_nz, const std::uint64_t* q_sg,
    const std::uint64_t* rows, std::size_t count, std::size_t words,
    std::int64_t* out) noexcept {
  // The support term Σ popcount(q_nz) is row-independent: hoist it.
  std::int64_t support = 0;
  {
    __m256i acc = _mm256_setzero_si256();
    std::size_t w = 0;
    for (; w + 4 <= words; w += 4) {
      acc = _mm256_add_epi64(
          acc, popcount_epi64_avx2(_mm256_loadu_si256(
                   reinterpret_cast<const __m256i*>(q_nz + w))));
    }
    support = hsum_epi64_avx2(acc);
    for (; w < words; ++w) support += std::popcount(q_nz[w]);
  }
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const std::uint64_t* r0 = rows + i * words;
    const std::uint64_t* r1 = r0 + words;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    std::size_t w = 0;
    for (; w + 4 <= words; w += 4) {
      const __m256i vn =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q_nz + w));
      const __m256i vs =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q_sg + w));
      acc0 = _mm256_add_epi64(
          acc0, popcount_epi64_avx2(_mm256_and_si256(
                    _mm256_xor_si256(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(r0 + w)),
                        vs),
                    vn)));
      acc1 = _mm256_add_epi64(
          acc1, popcount_epi64_avx2(_mm256_and_si256(
                    _mm256_xor_si256(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(r1 + w)),
                        vs),
                    vn)));
    }
    std::int64_t d0 = hsum_epi64_avx2(acc0);
    std::int64_t d1 = hsum_epi64_avx2(acc1);
    for (; w < words; ++w) {
      d0 += std::popcount((r0[w] ^ q_sg[w]) & q_nz[w]);
      d1 += std::popcount((r1[w] ^ q_sg[w]) & q_nz[w]);
    }
    out[i] = support - 2 * d0;
    out[i + 1] = support - 2 * d1;
  }
  if (i < count) out[i] = dot_bt_avx2(rows + i * words, q_nz, q_sg, words);
}

constexpr DotKernels kAVX2Kernels{dot_bb_avx2, dot_bt_avx2, dot_tt_avx2,
                                  pack_planes_avx2};
constexpr BatchDotKernels kAVX2BatchKernels{batch_bb_avx2, batch_bt_avx2};

// Blocked loops: cache blocking only. A 64-row chunk (up to 64 KiB of
// planes at D=8192) stays L1/L2-resident while every query of the block
// visits it, so the codebook streams from memory once per chunk instead of
// once per query. Within a chunk the per-query batch loops run unchanged —
// the same integers in the same row order, just a different visit order.

__attribute__((target("avx2"))) void block_bb_avx2(
    const std::uint64_t* const* queries, std::size_t nq,
    const std::uint64_t* rows, std::size_t count, std::size_t words,
    std::size_t dim, std::int64_t* out) noexcept {
  constexpr std::size_t kChunkRows = 64;
  for (std::size_t i = 0; i < count; i += kChunkRows) {
    const std::size_t c = std::min(kChunkRows, count - i);
    for (std::size_t q = 0; q < nq; ++q) {
      batch_bb_avx2(queries[q], rows + i * words, c, words, dim,
                    out + q * count + i);
    }
  }
}

__attribute__((target("avx2"))) void block_bt_avx2(
    const std::uint64_t* const* q_nz, const std::uint64_t* const* q_sg,
    std::size_t nq, const std::uint64_t* rows, std::size_t count,
    std::size_t words, std::int64_t* out) noexcept {
  constexpr std::size_t kChunkRows = 64;
  for (std::size_t i = 0; i < count; i += kChunkRows) {
    const std::size_t c = std::min(kChunkRows, count - i);
    for (std::size_t q = 0; q < nq; ++q) {
      batch_bt_avx2(q_nz[q], q_sg[q], rows + i * words, c, words,
                    out + q * count + i);
    }
  }
}

constexpr QueryBlockKernels kAVX2QueryBlockKernels{block_bb_avx2,
                                                   block_bt_avx2};

// --- AVX-512 tier -----------------------------------------------------------
// Native 64-bit-lane popcount (VPOPCNTQ, requires AVX512VPOPCNTDQ) over 8
// plane words per vector op, with masked loads covering the tail in-loop.

__attribute__((target("avx512f,avx512vpopcntdq"))) std::int64_t dot_bb_avx512(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words,
    std::size_t dim) noexcept {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + w),
                                       _mm512_loadu_si512(b + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  if (w < words) {
    const auto m = static_cast<__mmask8>((1u << (words - w)) - 1);
    const __m512i x = _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, a + w),
                                       _mm512_maskz_loadu_epi64(m, b + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  const std::int64_t hamming = _mm512_reduce_add_epi64(acc);
  return static_cast<std::int64_t>(dim) - 2 * hamming;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::int64_t dot_bt_avx512(
    const std::uint64_t* bip, const std::uint64_t* nz, const std::uint64_t* sg,
    std::size_t words) noexcept {
  __m512i support = _mm512_setzero_si512();
  __m512i differ = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i vn = _mm512_loadu_si512(nz + w);
    const __m512i x = _mm512_and_si512(
        _mm512_xor_si512(_mm512_loadu_si512(bip + w),
                         _mm512_loadu_si512(sg + w)),
        vn);
    support = _mm512_add_epi64(support, _mm512_popcnt_epi64(vn));
    differ = _mm512_add_epi64(differ, _mm512_popcnt_epi64(x));
  }
  if (w < words) {
    const auto m = static_cast<__mmask8>((1u << (words - w)) - 1);
    const __m512i vn = _mm512_maskz_loadu_epi64(m, nz + w);
    const __m512i x = _mm512_and_si512(
        _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, bip + w),
                         _mm512_maskz_loadu_epi64(m, sg + w)),
        vn);
    support = _mm512_add_epi64(support, _mm512_popcnt_epi64(vn));
    differ = _mm512_add_epi64(differ, _mm512_popcnt_epi64(x));
  }
  return _mm512_reduce_add_epi64(support) -
         2 * _mm512_reduce_add_epi64(differ);
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::int64_t dot_tt_avx512(
    const std::uint64_t* a_nz, const std::uint64_t* a_sg,
    const std::uint64_t* b_nz, const std::uint64_t* b_sg,
    std::size_t words) noexcept {
  __m512i support = _mm512_setzero_si512();
  __m512i differ = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i active = _mm512_and_si512(_mm512_loadu_si512(a_nz + w),
                                            _mm512_loadu_si512(b_nz + w));
    const __m512i x = _mm512_and_si512(
        _mm512_xor_si512(_mm512_loadu_si512(a_sg + w),
                         _mm512_loadu_si512(b_sg + w)),
        active);
    support = _mm512_add_epi64(support, _mm512_popcnt_epi64(active));
    differ = _mm512_add_epi64(differ, _mm512_popcnt_epi64(x));
  }
  if (w < words) {
    const auto m = static_cast<__mmask8>((1u << (words - w)) - 1);
    const __m512i active =
        _mm512_and_si512(_mm512_maskz_loadu_epi64(m, a_nz + w),
                         _mm512_maskz_loadu_epi64(m, b_nz + w));
    const __m512i x = _mm512_and_si512(
        _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, a_sg + w),
                         _mm512_maskz_loadu_epi64(m, b_sg + w)),
        active);
    support = _mm512_add_epi64(support, _mm512_popcnt_epi64(active));
    differ = _mm512_add_epi64(differ, _mm512_popcnt_epi64(x));
  }
  return _mm512_reduce_add_epi64(support) -
         2 * _mm512_reduce_add_epi64(differ);
}

__attribute__((target("avx512f,avx512bw"))) bool pack_planes_avx512(
    const std::int32_t* p, std::size_t dim, std::uint64_t* sign,
    std::uint64_t* nonzero, bool* any_zero) noexcept {
  const std::size_t words = plane_words(dim);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i neg_one = _mm512_set1_epi32(-1);
  const __m512i zero = _mm512_setzero_si512();
  bool saw_zero = false;
  std::size_t w = 0;
  // Full 64-component words: 4 blocks of 16 int32 lanes; each compare mask
  // is a 16-bit slice of the plane word, straight from the k-registers.
  for (; (w + 1) * kWordBits <= dim; ++w) {
    const std::int32_t* base = p + w * kWordBits;
    std::uint64_t nz = 0;
    std::uint64_t sg = 0;
    std::uint32_t invalid = 0;
    for (std::size_t blk = 0; blk < kWordBits / 16; ++blk) {
      const __m512i v = _mm512_loadu_si512(base + blk * 16);
      const __mmask16 m1 = _mm512_cmpeq_epi32_mask(v, one);
      const __mmask16 m0 = _mm512_cmpeq_epi32_mask(v, zero);
      const __mmask16 mm1 = _mm512_cmpeq_epi32_mask(v, neg_one);
      invalid |= static_cast<std::uint16_t>(~(m1 | m0 | mm1));
      sg |= static_cast<std::uint64_t>(m1) << (blk * 16);
      nz |= static_cast<std::uint64_t>(static_cast<std::uint16_t>(~m0))
            << (blk * 16);
    }
    if (invalid != 0) return false;  // integer bundle: scalar path
    sign[w] = sg;
    nonzero[w] = nz;
    saw_zero |= (nz != ~0ULL);
  }
  for (; w < words; ++w) {  // partial tail word
    const std::size_t base = w * kWordBits;
    if (!pack_word_scalar(p, base, dim, sign[w], nonzero[w])) return false;
    saw_zero |= (nonzero[w] != word_full_mask(base, dim));
  }
  *any_zero = saw_zero;
  return true;
}

// Sums eight per-row lane accumulators into one vector holding the eight
// row totals in order — a 3-level shuffle/add tree, ~3 ops per row where
// _mm512_reduce_add_epi64 per row costs ~7. Level 1 pairs rows within
// 128-bit lanes; levels 2-3 fold across lanes.
__attribute__((target("avx512f"))) inline __m512i hsum8_epi64_avx512(
    __m512i a0, __m512i a1, __m512i a2, __m512i a3, __m512i a4, __m512i a5,
    __m512i a6, __m512i a7) noexcept {
  const __m512i p01 = _mm512_add_epi64(_mm512_unpacklo_epi64(a0, a1),
                                       _mm512_unpackhi_epi64(a0, a1));
  const __m512i p23 = _mm512_add_epi64(_mm512_unpacklo_epi64(a2, a3),
                                       _mm512_unpackhi_epi64(a2, a3));
  const __m512i p45 = _mm512_add_epi64(_mm512_unpacklo_epi64(a4, a5),
                                       _mm512_unpackhi_epi64(a4, a5));
  const __m512i p67 = _mm512_add_epi64(_mm512_unpacklo_epi64(a6, a7),
                                       _mm512_unpackhi_epi64(a6, a7));
  const __m512i q0123 =
      _mm512_add_epi64(_mm512_shuffle_i64x2(p01, p23, 0x88),
                       _mm512_shuffle_i64x2(p01, p23, 0xdd));
  const __m512i q4567 =
      _mm512_add_epi64(_mm512_shuffle_i64x2(p45, p67, 0x88),
                       _mm512_shuffle_i64x2(p45, p67, 0xdd));
  return _mm512_add_epi64(_mm512_shuffle_i64x2(q0123, q4567, 0x88),
                          _mm512_shuffle_i64x2(q0123, q4567, 0xdd));
}

__attribute__((target("avx512f,avx512vpopcntdq"))) void batch_bb_avx512(
    const std::uint64_t* query, const std::uint64_t* rows, std::size_t count,
    std::size_t words, std::size_t dim, std::int64_t* out) noexcept {
  const auto sdim = static_cast<std::int64_t>(dim);
  const auto tail =
      static_cast<__mmask8>((1u << (words % 8)) - 1);  // 0 when words % 8 == 0
  std::size_t i = 0;
  const __m512i vdim = _mm512_set1_epi64(sdim);
  for (; i + 8 <= count; i += 8) {
    const std::uint64_t* r = rows + i * words;
    __m512i acc[8] = {_mm512_setzero_si512(), _mm512_setzero_si512(),
                      _mm512_setzero_si512(), _mm512_setzero_si512(),
                      _mm512_setzero_si512(), _mm512_setzero_si512(),
                      _mm512_setzero_si512(), _mm512_setzero_si512()};
    std::size_t w = 0;
    for (; w + 8 <= words; w += 8) {
      const __m512i q = _mm512_loadu_si512(query + w);
      for (std::size_t j = 0; j < 8; ++j) {
        acc[j] = _mm512_add_epi64(
            acc[j], _mm512_popcnt_epi64(_mm512_xor_si512(
                        q, _mm512_loadu_si512(r + j * words + w))));
      }
    }
    if (w < words) {
      const __m512i q = _mm512_maskz_loadu_epi64(tail, query + w);
      for (std::size_t j = 0; j < 8; ++j) {
        acc[j] = _mm512_add_epi64(
            acc[j], _mm512_popcnt_epi64(_mm512_xor_si512(
                        q, _mm512_maskz_loadu_epi64(tail, r + j * words + w))));
      }
    }
    const __m512i h = hsum8_epi64_avx512(acc[0], acc[1], acc[2], acc[3],
                                         acc[4], acc[5], acc[6], acc[7]);
    _mm512_storeu_si512(out + i,
                        _mm512_sub_epi64(vdim, _mm512_add_epi64(h, h)));
  }
  for (; i + 2 <= count; i += 2) {
    const std::uint64_t* r0 = rows + i * words;
    const std::uint64_t* r1 = r0 + words;
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= words; w += 8) {
      const __m512i q = _mm512_loadu_si512(query + w);
      acc0 = _mm512_add_epi64(
          acc0, _mm512_popcnt_epi64(
                    _mm512_xor_si512(q, _mm512_loadu_si512(r0 + w))));
      acc1 = _mm512_add_epi64(
          acc1, _mm512_popcnt_epi64(
                    _mm512_xor_si512(q, _mm512_loadu_si512(r1 + w))));
    }
    if (w < words) {
      const __m512i q = _mm512_maskz_loadu_epi64(tail, query + w);
      acc0 = _mm512_add_epi64(
          acc0, _mm512_popcnt_epi64(_mm512_xor_si512(
                    q, _mm512_maskz_loadu_epi64(tail, r0 + w))));
      acc1 = _mm512_add_epi64(
          acc1, _mm512_popcnt_epi64(_mm512_xor_si512(
                    q, _mm512_maskz_loadu_epi64(tail, r1 + w))));
    }
    out[i] = sdim - 2 * _mm512_reduce_add_epi64(acc0);
    out[i + 1] = sdim - 2 * _mm512_reduce_add_epi64(acc1);
  }
  if (i < count) out[i] = dot_bb_avx512(query, rows + i * words, words, dim);
}

__attribute__((target("avx512f,avx512vpopcntdq"))) void batch_bt_avx512(
    const std::uint64_t* q_nz, const std::uint64_t* q_sg,
    const std::uint64_t* rows, std::size_t count, std::size_t words,
    std::int64_t* out) noexcept {
  const auto tail = static_cast<__mmask8>((1u << (words % 8)) - 1);
  std::int64_t support = 0;
  {
    __m512i acc = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= words; w += 8) {
      acc = _mm512_add_epi64(acc,
                             _mm512_popcnt_epi64(_mm512_loadu_si512(q_nz + w)));
    }
    if (w < words) {
      acc = _mm512_add_epi64(
          acc, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(tail, q_nz + w)));
    }
    support = _mm512_reduce_add_epi64(acc);
  }
  std::size_t i = 0;
  const __m512i vsupport = _mm512_set1_epi64(support);
  for (; i + 8 <= count; i += 8) {
    const std::uint64_t* r = rows + i * words;
    __m512i acc[8] = {_mm512_setzero_si512(), _mm512_setzero_si512(),
                      _mm512_setzero_si512(), _mm512_setzero_si512(),
                      _mm512_setzero_si512(), _mm512_setzero_si512(),
                      _mm512_setzero_si512(), _mm512_setzero_si512()};
    std::size_t w = 0;
    for (; w + 8 <= words; w += 8) {
      const __m512i vn = _mm512_loadu_si512(q_nz + w);
      const __m512i vs = _mm512_loadu_si512(q_sg + w);
      for (std::size_t j = 0; j < 8; ++j) {
        acc[j] = _mm512_add_epi64(
            acc[j],
            _mm512_popcnt_epi64(_mm512_and_si512(
                _mm512_xor_si512(_mm512_loadu_si512(r + j * words + w), vs),
                vn)));
      }
    }
    if (w < words) {
      const __m512i vn = _mm512_maskz_loadu_epi64(tail, q_nz + w);
      const __m512i vs = _mm512_maskz_loadu_epi64(tail, q_sg + w);
      for (std::size_t j = 0; j < 8; ++j) {
        acc[j] = _mm512_add_epi64(
            acc[j], _mm512_popcnt_epi64(_mm512_and_si512(
                        _mm512_xor_si512(
                            _mm512_maskz_loadu_epi64(tail, r + j * words + w),
                            vs),
                        vn)));
      }
    }
    const __m512i h = hsum8_epi64_avx512(acc[0], acc[1], acc[2], acc[3],
                                         acc[4], acc[5], acc[6], acc[7]);
    _mm512_storeu_si512(out + i,
                        _mm512_sub_epi64(vsupport, _mm512_add_epi64(h, h)));
  }
  for (; i + 2 <= count; i += 2) {
    const std::uint64_t* r0 = rows + i * words;
    const std::uint64_t* r1 = r0 + words;
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= words; w += 8) {
      const __m512i vn = _mm512_loadu_si512(q_nz + w);
      const __m512i vs = _mm512_loadu_si512(q_sg + w);
      acc0 = _mm512_add_epi64(
          acc0, _mm512_popcnt_epi64(_mm512_and_si512(
                    _mm512_xor_si512(_mm512_loadu_si512(r0 + w), vs), vn)));
      acc1 = _mm512_add_epi64(
          acc1, _mm512_popcnt_epi64(_mm512_and_si512(
                    _mm512_xor_si512(_mm512_loadu_si512(r1 + w), vs), vn)));
    }
    if (w < words) {
      const __m512i vn = _mm512_maskz_loadu_epi64(tail, q_nz + w);
      const __m512i vs = _mm512_maskz_loadu_epi64(tail, q_sg + w);
      acc0 = _mm512_add_epi64(
          acc0, _mm512_popcnt_epi64(_mm512_and_si512(
                    _mm512_xor_si512(_mm512_maskz_loadu_epi64(tail, r0 + w),
                                     vs),
                    vn)));
      acc1 = _mm512_add_epi64(
          acc1, _mm512_popcnt_epi64(_mm512_and_si512(
                    _mm512_xor_si512(_mm512_maskz_loadu_epi64(tail, r1 + w),
                                     vs),
                    vn)));
    }
    out[i] = support - 2 * _mm512_reduce_add_epi64(acc0);
    out[i + 1] = support - 2 * _mm512_reduce_add_epi64(acc1);
  }
  if (i < count) out[i] = dot_bt_avx512(rows + i * words, q_nz, q_sg, words);
}

constexpr DotKernels kAVX512Kernels{dot_bb_avx512, dot_bt_avx512,
                                    dot_tt_avx512, pack_planes_avx512};
constexpr BatchDotKernels kAVX512BatchKernels{batch_bb_avx512,
                                              batch_bt_avx512};

// Blocked loops: 2-query x 8-row register tile. Each 8-row block's plane
// words are loaded once per query pair and shared by both queries' popcount
// chains, and the row blocks stay L1-resident across the whole query loop —
// the codebook streams from memory once per block pass instead of once per
// query. Row remainders fall back to the per-query batch loops, query
// remainders to a single-query 8-row tile; both produce the same integers,
// so any (count, nq) is bit-identical to the per-query path.

__attribute__((target("avx512f,avx512vpopcntdq"))) void block_bb_avx512(
    const std::uint64_t* const* queries, std::size_t nq,
    const std::uint64_t* rows, std::size_t count, std::size_t words,
    std::size_t dim, std::int64_t* out) noexcept {
  const __m512i vdim = _mm512_set1_epi64(static_cast<std::int64_t>(dim));
  const auto tail = static_cast<__mmask8>((1u << (words % 8)) - 1);
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const std::uint64_t* r = rows + i * words;
    std::size_t q = 0;
    for (; q + 2 <= nq; q += 2) {
      const std::uint64_t* q0 = queries[q];
      const std::uint64_t* q1 = queries[q + 1];
      __m512i a0[8];
      __m512i a1[8];
      for (std::size_t j = 0; j < 8; ++j) {
        a0[j] = _mm512_setzero_si512();
        a1[j] = _mm512_setzero_si512();
      }
      std::size_t w = 0;
      for (; w + 8 <= words; w += 8) {
        const __m512i v0 = _mm512_loadu_si512(q0 + w);
        const __m512i v1 = _mm512_loadu_si512(q1 + w);
        for (std::size_t j = 0; j < 8; ++j) {
          const __m512i rv = _mm512_loadu_si512(r + j * words + w);
          a0[j] = _mm512_add_epi64(
              a0[j], _mm512_popcnt_epi64(_mm512_xor_si512(v0, rv)));
          a1[j] = _mm512_add_epi64(
              a1[j], _mm512_popcnt_epi64(_mm512_xor_si512(v1, rv)));
        }
      }
      if (w < words) {
        const __m512i v0 = _mm512_maskz_loadu_epi64(tail, q0 + w);
        const __m512i v1 = _mm512_maskz_loadu_epi64(tail, q1 + w);
        for (std::size_t j = 0; j < 8; ++j) {
          const __m512i rv = _mm512_maskz_loadu_epi64(tail, r + j * words + w);
          a0[j] = _mm512_add_epi64(
              a0[j], _mm512_popcnt_epi64(_mm512_xor_si512(v0, rv)));
          a1[j] = _mm512_add_epi64(
              a1[j], _mm512_popcnt_epi64(_mm512_xor_si512(v1, rv)));
        }
      }
      const __m512i h0 = hsum8_epi64_avx512(a0[0], a0[1], a0[2], a0[3], a0[4],
                                            a0[5], a0[6], a0[7]);
      const __m512i h1 = hsum8_epi64_avx512(a1[0], a1[1], a1[2], a1[3], a1[4],
                                            a1[5], a1[6], a1[7]);
      _mm512_storeu_si512(out + q * count + i,
                          _mm512_sub_epi64(vdim, _mm512_add_epi64(h0, h0)));
      _mm512_storeu_si512(out + (q + 1) * count + i,
                          _mm512_sub_epi64(vdim, _mm512_add_epi64(h1, h1)));
    }
    if (q < nq) {
      const std::uint64_t* qp = queries[q];
      __m512i acc[8];
      for (std::size_t j = 0; j < 8; ++j) acc[j] = _mm512_setzero_si512();
      std::size_t w = 0;
      for (; w + 8 <= words; w += 8) {
        const __m512i qv = _mm512_loadu_si512(qp + w);
        for (std::size_t j = 0; j < 8; ++j) {
          acc[j] = _mm512_add_epi64(
              acc[j], _mm512_popcnt_epi64(_mm512_xor_si512(
                          qv, _mm512_loadu_si512(r + j * words + w))));
        }
      }
      if (w < words) {
        const __m512i qv = _mm512_maskz_loadu_epi64(tail, qp + w);
        for (std::size_t j = 0; j < 8; ++j) {
          acc[j] = _mm512_add_epi64(
              acc[j],
              _mm512_popcnt_epi64(_mm512_xor_si512(
                  qv, _mm512_maskz_loadu_epi64(tail, r + j * words + w))));
        }
      }
      const __m512i h = hsum8_epi64_avx512(acc[0], acc[1], acc[2], acc[3],
                                           acc[4], acc[5], acc[6], acc[7]);
      _mm512_storeu_si512(out + q * count + i,
                          _mm512_sub_epi64(vdim, _mm512_add_epi64(h, h)));
    }
  }
  if (i < count) {
    for (std::size_t q = 0; q < nq; ++q) {
      batch_bb_avx512(queries[q], rows + i * words, count - i, words, dim,
                      out + q * count + i);
    }
  }
}

__attribute__((target("avx512f,avx512vpopcntdq"))) void block_bt_avx512(
    const std::uint64_t* const* q_nz, const std::uint64_t* const* q_sg,
    std::size_t nq, const std::uint64_t* rows, std::size_t count,
    std::size_t words, std::int64_t* out) noexcept {
  // The support term Σ popcount(q_nz) is row-independent; hoist it per query
  // into a fixed stack buffer, processing queries in groups so the kernel
  // stays allocation-free at any nq.
  constexpr std::size_t kGroup = 64;
  const auto tail = static_cast<__mmask8>((1u << (words % 8)) - 1);
  std::int64_t support[kGroup];
  for (std::size_t qb = 0; qb < nq; qb += kGroup) {
    const std::size_t qn = std::min(kGroup, nq - qb);
    for (std::size_t t = 0; t < qn; ++t) {
      const std::uint64_t* nzp = q_nz[qb + t];
      __m512i acc = _mm512_setzero_si512();
      std::size_t w = 0;
      for (; w + 8 <= words; w += 8) {
        acc = _mm512_add_epi64(acc,
                               _mm512_popcnt_epi64(_mm512_loadu_si512(nzp + w)));
      }
      if (w < words) {
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(tail, nzp + w)));
      }
      support[t] = _mm512_reduce_add_epi64(acc);
    }
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
      const std::uint64_t* r = rows + i * words;
      std::size_t t = 0;
      for (; t + 2 <= qn; t += 2) {
        const std::uint64_t* nz0 = q_nz[qb + t];
        const std::uint64_t* sg0 = q_sg[qb + t];
        const std::uint64_t* nz1 = q_nz[qb + t + 1];
        const std::uint64_t* sg1 = q_sg[qb + t + 1];
        __m512i a0[8];
        __m512i a1[8];
        for (std::size_t j = 0; j < 8; ++j) {
          a0[j] = _mm512_setzero_si512();
          a1[j] = _mm512_setzero_si512();
        }
        std::size_t w = 0;
        for (; w + 8 <= words; w += 8) {
          const __m512i vn0 = _mm512_loadu_si512(nz0 + w);
          const __m512i vs0 = _mm512_loadu_si512(sg0 + w);
          const __m512i vn1 = _mm512_loadu_si512(nz1 + w);
          const __m512i vs1 = _mm512_loadu_si512(sg1 + w);
          for (std::size_t j = 0; j < 8; ++j) {
            const __m512i rv = _mm512_loadu_si512(r + j * words + w);
            a0[j] = _mm512_add_epi64(
                a0[j], _mm512_popcnt_epi64(_mm512_and_si512(
                           _mm512_xor_si512(rv, vs0), vn0)));
            a1[j] = _mm512_add_epi64(
                a1[j], _mm512_popcnt_epi64(_mm512_and_si512(
                           _mm512_xor_si512(rv, vs1), vn1)));
          }
        }
        if (w < words) {
          const __m512i vn0 = _mm512_maskz_loadu_epi64(tail, nz0 + w);
          const __m512i vs0 = _mm512_maskz_loadu_epi64(tail, sg0 + w);
          const __m512i vn1 = _mm512_maskz_loadu_epi64(tail, nz1 + w);
          const __m512i vs1 = _mm512_maskz_loadu_epi64(tail, sg1 + w);
          for (std::size_t j = 0; j < 8; ++j) {
            const __m512i rv =
                _mm512_maskz_loadu_epi64(tail, r + j * words + w);
            a0[j] = _mm512_add_epi64(
                a0[j], _mm512_popcnt_epi64(_mm512_and_si512(
                           _mm512_xor_si512(rv, vs0), vn0)));
            a1[j] = _mm512_add_epi64(
                a1[j], _mm512_popcnt_epi64(_mm512_and_si512(
                           _mm512_xor_si512(rv, vs1), vn1)));
          }
        }
        const __m512i h0 = hsum8_epi64_avx512(a0[0], a0[1], a0[2], a0[3],
                                              a0[4], a0[5], a0[6], a0[7]);
        const __m512i h1 = hsum8_epi64_avx512(a1[0], a1[1], a1[2], a1[3],
                                              a1[4], a1[5], a1[6], a1[7]);
        const __m512i vsup0 = _mm512_set1_epi64(support[t]);
        const __m512i vsup1 = _mm512_set1_epi64(support[t + 1]);
        _mm512_storeu_si512(out + (qb + t) * count + i,
                            _mm512_sub_epi64(vsup0, _mm512_add_epi64(h0, h0)));
        _mm512_storeu_si512(out + (qb + t + 1) * count + i,
                            _mm512_sub_epi64(vsup1, _mm512_add_epi64(h1, h1)));
      }
      if (t < qn) {
        const std::uint64_t* nzp = q_nz[qb + t];
        const std::uint64_t* sgp = q_sg[qb + t];
        __m512i acc[8];
        for (std::size_t j = 0; j < 8; ++j) acc[j] = _mm512_setzero_si512();
        std::size_t w = 0;
        for (; w + 8 <= words; w += 8) {
          const __m512i vn = _mm512_loadu_si512(nzp + w);
          const __m512i vs = _mm512_loadu_si512(sgp + w);
          for (std::size_t j = 0; j < 8; ++j) {
            acc[j] = _mm512_add_epi64(
                acc[j], _mm512_popcnt_epi64(_mm512_and_si512(
                            _mm512_xor_si512(
                                _mm512_loadu_si512(r + j * words + w), vs),
                            vn)));
          }
        }
        if (w < words) {
          const __m512i vn = _mm512_maskz_loadu_epi64(tail, nzp + w);
          const __m512i vs = _mm512_maskz_loadu_epi64(tail, sgp + w);
          for (std::size_t j = 0; j < 8; ++j) {
            acc[j] = _mm512_add_epi64(
                acc[j],
                _mm512_popcnt_epi64(_mm512_and_si512(
                    _mm512_xor_si512(
                        _mm512_maskz_loadu_epi64(tail, r + j * words + w), vs),
                    vn)));
          }
        }
        const __m512i h = hsum8_epi64_avx512(acc[0], acc[1], acc[2], acc[3],
                                             acc[4], acc[5], acc[6], acc[7]);
        const __m512i vsup = _mm512_set1_epi64(support[t]);
        _mm512_storeu_si512(out + (qb + t) * count + i,
                            _mm512_sub_epi64(vsup, _mm512_add_epi64(h, h)));
      }
    }
    if (i < count) {
      for (std::size_t t = 0; t < qn; ++t) {
        batch_bt_avx512(q_nz[qb + t], q_sg[qb + t], rows + i * words,
                        count - i, words, out + (qb + t) * count + i);
      }
    }
  }
}

constexpr QueryBlockKernels kAVX512QueryBlockKernels{block_bb_avx512,
                                                     block_bt_avx512};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // FACTORHD_X86_SIMD

#if FACTORHD_NEON_SIMD

// --- NEON tier --------------------------------------------------------------
// VCNT byte popcount widened pairwise to 64-bit lanes, 2 plane words per
// vector op. aarch64 mandates NEON, so no runtime probe is needed; query
// packing reuses the portable word-blocked packer.

inline std::int64_t hsum_u64x2(uint64x2_t v) noexcept {
  return static_cast<std::int64_t>(vgetq_lane_u64(v, 0) +
                                   vgetq_lane_u64(v, 1));
}

inline uint64x2_t popcount_u64x2(uint8x16_t v) noexcept {
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v))));
}

std::int64_t dot_bb_neon(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words, std::size_t dim) noexcept {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const uint8x16_t x =
        veorq_u8(vld1q_u8(reinterpret_cast<const std::uint8_t*>(a + w)),
                 vld1q_u8(reinterpret_cast<const std::uint8_t*>(b + w)));
    acc = vaddq_u64(acc, popcount_u64x2(x));
  }
  std::int64_t hamming = hsum_u64x2(acc);
  for (; w < words; ++w) hamming += std::popcount(a[w] ^ b[w]);
  return static_cast<std::int64_t>(dim) - 2 * hamming;
}

std::int64_t dot_bt_neon(const std::uint64_t* bip, const std::uint64_t* nz,
                         const std::uint64_t* sg, std::size_t words) noexcept {
  uint64x2_t support = vdupq_n_u64(0);
  uint64x2_t differ = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const uint8x16_t vn = vld1q_u8(reinterpret_cast<const std::uint8_t*>(nz + w));
    const uint8x16_t x = vandq_u8(
        veorq_u8(vld1q_u8(reinterpret_cast<const std::uint8_t*>(bip + w)),
                 vld1q_u8(reinterpret_cast<const std::uint8_t*>(sg + w))),
        vn);
    support = vaddq_u64(support, popcount_u64x2(vn));
    differ = vaddq_u64(differ, popcount_u64x2(x));
  }
  std::int64_t acc = hsum_u64x2(support) - 2 * hsum_u64x2(differ);
  for (; w < words; ++w) {
    acc += std::popcount(nz[w]) - 2 * std::popcount((bip[w] ^ sg[w]) & nz[w]);
  }
  return acc;
}

std::int64_t dot_tt_neon(const std::uint64_t* a_nz, const std::uint64_t* a_sg,
                         const std::uint64_t* b_nz, const std::uint64_t* b_sg,
                         std::size_t words) noexcept {
  uint64x2_t support = vdupq_n_u64(0);
  uint64x2_t differ = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const uint8x16_t active = vandq_u8(
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(a_nz + w)),
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(b_nz + w)));
    const uint8x16_t x = vandq_u8(
        veorq_u8(vld1q_u8(reinterpret_cast<const std::uint8_t*>(a_sg + w)),
                 vld1q_u8(reinterpret_cast<const std::uint8_t*>(b_sg + w))),
        active);
    support = vaddq_u64(support, popcount_u64x2(active));
    differ = vaddq_u64(differ, popcount_u64x2(x));
  }
  std::int64_t acc = hsum_u64x2(support) - 2 * hsum_u64x2(differ);
  for (; w < words; ++w) {
    const std::uint64_t active = a_nz[w] & b_nz[w];
    acc += std::popcount(active) -
           2 * std::popcount((a_sg[w] ^ b_sg[w]) & active);
  }
  return acc;
}

constexpr DotKernels kNEONKernels{dot_bb_neon, dot_bt_neon, dot_tt_neon,
                                  pack_planes_scalar};

// Batch loops: per-row NEON dots. This already removes the indirect call per
// prefix dot; no two-row unroll until a target shows it pays.

void batch_bb_neon(const std::uint64_t* query, const std::uint64_t* rows,
                   std::size_t count, std::size_t words, std::size_t dim,
                   std::int64_t* out) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = dot_bb_neon(query, rows + i * words, words, dim);
  }
}

void batch_bt_neon(const std::uint64_t* q_nz, const std::uint64_t* q_sg,
                   const std::uint64_t* rows, std::size_t count,
                   std::size_t words, std::int64_t* out) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = dot_bt_neon(rows + i * words, q_nz, q_sg, words);
  }
}

constexpr BatchDotKernels kNEONBatchKernels{batch_bb_neon, batch_bt_neon};

// Blocked loops: cache blocking over 64-row chunks, as in the AVX2 tier —
// the per-query NEON batch loops run unchanged within each chunk.

void block_bb_neon(const std::uint64_t* const* queries, std::size_t nq,
                   const std::uint64_t* rows, std::size_t count,
                   std::size_t words, std::size_t dim,
                   std::int64_t* out) noexcept {
  constexpr std::size_t kChunkRows = 64;
  for (std::size_t i = 0; i < count; i += kChunkRows) {
    const std::size_t c = std::min(kChunkRows, count - i);
    for (std::size_t q = 0; q < nq; ++q) {
      batch_bb_neon(queries[q], rows + i * words, c, words, dim,
                    out + q * count + i);
    }
  }
}

void block_bt_neon(const std::uint64_t* const* q_nz,
                   const std::uint64_t* const* q_sg, std::size_t nq,
                   const std::uint64_t* rows, std::size_t count,
                   std::size_t words, std::int64_t* out) noexcept {
  constexpr std::size_t kChunkRows = 64;
  for (std::size_t i = 0; i < count; i += kChunkRows) {
    const std::size_t c = std::min(kChunkRows, count - i);
    for (std::size_t q = 0; q < nq; ++q) {
      batch_bt_neon(q_nz[q], q_sg[q], rows + i * words, c, words,
                    out + q * count + i);
    }
  }
}

constexpr QueryBlockKernels kNEONQueryBlockKernels{block_bb_neon,
                                                   block_bt_neon};

#endif  // FACTORHD_NEON_SIMD

}  // namespace

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalarWords:
      return "scalar";
    case SimdLevel::kAVX2:
      return "avx2";
    case SimdLevel::kAVX512:
      return "avx512";
    case SimdLevel::kNEON:
      return "neon";
  }
  return "scalar";
}

std::optional<SimdLevel> parse_simd_level(std::string_view name) noexcept {
  if (name == "scalar" || name == "words") return SimdLevel::kScalarWords;
  if (name == "avx2") return SimdLevel::kAVX2;
  if (name == "avx512") return SimdLevel::kAVX512;
  if (name == "neon") return SimdLevel::kNEON;
  return std::nullopt;
}

SimdLevel detect_simd_level() noexcept {
#if FACTORHD_X86_SIMD
  static const SimdLevel detected = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512vpopcntdq") &&
        __builtin_cpu_supports("avx512bw")) {
      return SimdLevel::kAVX512;
    }
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
    return SimdLevel::kScalarWords;
  }();
  return detected;
#elif FACTORHD_NEON_SIMD
  return SimdLevel::kNEON;
#else
  return SimdLevel::kScalarWords;
#endif
}

bool simd_level_available(SimdLevel level) noexcept {
  if (level == SimdLevel::kScalarWords) return true;
  const SimdLevel detected = detect_simd_level();
  if (level == detected) return true;
  // AVX-512 hardware runs the AVX2 tier too (forced-level differential runs).
  return level == SimdLevel::kAVX2 && detected == SimdLevel::kAVX512;
}

SimdLevel clamp_simd_level(SimdLevel detected, std::string_view env) noexcept {
  if (env.empty() || env == "auto") return detected;
  const std::optional<SimdLevel> requested = parse_simd_level(env);
  if (!requested) return detected;
  if (*requested == SimdLevel::kScalarWords) return SimdLevel::kScalarWords;
  if (*requested == detected) return *requested;
  if (*requested == SimdLevel::kAVX2 && detected == SimdLevel::kAVX512) {
    return *requested;
  }
  return detected;  // unavailable request: keep the detected level
}

SimdLevel dispatched_simd_level() noexcept {
  // FACTORHD_SIMD is registered in util::env_knobs(); the accepted values
  // there mirror parse_simd_level.
  static const SimdLevel dispatched = clamp_simd_level(
      detect_simd_level(), util::env_string("FACTORHD_SIMD", ""));
  return dispatched;
}

const DotKernels& dot_kernels(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalarWords:
      return kScalarKernels;
#if FACTORHD_X86_SIMD
    case SimdLevel::kAVX2:
      return kAVX2Kernels;
    case SimdLevel::kAVX512:
      return kAVX512Kernels;
#endif
#if FACTORHD_NEON_SIMD
    case SimdLevel::kNEON:
      return kNEONKernels;
#endif
    default:
      // Level not compiled into this binary; callers that must not degrade
      // check simd_level_available() first (hdc::ItemMemory throws).
      return kScalarKernels;
  }
}

const BatchDotKernels& batch_dot_kernels(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalarWords:
      return kScalarBatchKernels;
#if FACTORHD_X86_SIMD
    case SimdLevel::kAVX2:
      return kAVX2BatchKernels;
    case SimdLevel::kAVX512:
      return kAVX512BatchKernels;
#endif
#if FACTORHD_NEON_SIMD
    case SimdLevel::kNEON:
      return kNEONBatchKernels;
#endif
    default:
      return kScalarBatchKernels;  // same aliasing rule as dot_kernels()
  }
}

const QueryBlockKernels& query_block_kernels(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalarWords:
      return kScalarQueryBlockKernels;
#if FACTORHD_X86_SIMD
    case SimdLevel::kAVX2:
      return kAVX2QueryBlockKernels;
    case SimdLevel::kAVX512:
      return kAVX512QueryBlockKernels;
#endif
#if FACTORHD_NEON_SIMD
    case SimdLevel::kNEON:
      return kNEONQueryBlockKernels;
#endif
    default:
      return kScalarQueryBlockKernels;  // same aliasing rule as dot_kernels()
  }
}

}  // namespace factorhd::hdc::kernels
