// PackedItemMemory: whole-codebook similarity scans over bit-packed planes.
//
// Packs an entire codebook once into contiguous, row-major 64-bit word
// planes — bipolar codebooks into a single sign plane, ternary codebooks
// into nonzero + sign planes — and answers the same scan queries as the
// scalar hdc::ItemMemory (best / best_among / above / above_among / top_k)
// with XOR+popcount plane arithmetic: 64 dimensions per word operation
// instead of one int32 multiply-add per dimension.
//
// Results are bit-identical to the scalar path. Dot products over the
// {-1,0,+1} alphabets are exact integers either way, the similarity is the
// same double division dot/D, argmax keeps the first (lowest-index) maximum,
// and sorted results use the shared hdc::match_order comparator, so index,
// similarity, and ordering all match. The equivalence suite
// (tests/test_kernel_equivalence.cpp) asserts this across alphabets and at
// dimensions that are not multiples of 64.
//
// Word arithmetic runs on a runtime-dispatched SIMD tier (simd.hpp): the
// scalar 64-bit word loops, AVX2, AVX-512, or NEON, selected per memory at
// construction (CPUID-detected by default, overridable via FACTORHD_SIMD or
// an explicit level). Large scans are additionally partitioned across a
// small worker pool (FACTORHD_SCAN_THREADS) in fixed row blocks, so results
// stay independent of thread count. All tiers and thread counts produce
// bit-identical results.
//
// This class is the packing + kernel layer only; backend selection and the
// scalar fallback for integer-bundle queries live in hdc::ItemMemory, which
// dispatches here when both the codebook and the query admit plane packing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/kernels/plane.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/match.hpp"

namespace factorhd::hdc::kernels {

/// Width of the scan worker pool: FACTORHD_SCAN_THREADS when set (1 disables
/// threading), else min(hardware threads, 8). Cached on first use. Shared by
/// the full-codebook scans here and the tiered-index build's assignment
/// passes (tiered_item_memory.cpp).
[[nodiscard]] std::size_t scan_pool_width();

/// RAII marker for threads that are themselves workers of an outer pool
/// (core::BatchFactorizer installs one per worker): while any guard is
/// alive on the current thread, PackedItemMemory scans stay sequential, so
/// thread counts never multiply (batch workers x scan pool) and the scan
/// pool's spawn+join cost is not paid inside already-parallel loops.
/// Results are unaffected either way — the parallel partition is
/// bit-identical to the sequential scan.
class ScanNestingGuard {
 public:
  ScanNestingGuard() noexcept;
  ~ScanNestingGuard();
  ScanNestingGuard(const ScanNestingGuard&) = delete;
  ScanNestingGuard& operator=(const ScanNestingGuard&) = delete;
};

/// True while a ScanNestingGuard is alive on the current thread — i.e. this
/// thread is already a worker of an outer pool, so further scan-level
/// parallelism would multiply thread counts. ShardedItemMemory consults this
/// before scattering shards across the pool, for the same reason the packed
/// scans do.
[[nodiscard]] bool scan_nesting_active() noexcept;

class PackedItemMemory {
 public:
  /// Plane layout selected from the codebook's alphabet at pack time.
  enum class Layout {
    kBipolar,  ///< one sign plane per entry (all entries in {-1,+1}^D)
    kTernary,  ///< nonzero + sign planes per entry (entries in {-1,0,+1}^D)
  };

  /// \param codebook Codebook to test.
  /// \return True when every entry is bipolar or every entry is ternary and
  ///   the codebook is non-empty with non-zero dimension — the precondition
  ///   of the packing constructor.
  [[nodiscard]] static bool packable(const Codebook& codebook) noexcept;

  /// Packs `codebook` into word planes. The codebook is only read during
  /// construction; the packed memory owns its planes and stays valid even if
  /// the codebook is later destroyed.
  /// \param codebook Source codebook (bipolar or ternary entries).
  /// \param level SIMD tier the scans run at; std::nullopt (the default)
  ///   selects the runtime-dispatched level (CPUID clamped by FACTORHD_SIMD).
  ///   An explicit level is used as given — callers gate on
  ///   simd_level_available() (hdc::ItemMemory throws for unavailable
  ///   forced levels).
  /// \throws std::invalid_argument When `packable(codebook)` is false.
  explicit PackedItemMemory(const Codebook& codebook,
                            std::optional<SimdLevel> level = std::nullopt);

  /// Adopts pre-packed planes without copying — the snapshot-load path
  /// (tiered_snapshot.hpp), where the planes live in an mmap'd file or a
  /// deserialized buffer owned by `keepalive`.
  ///
  /// The planes must be row-major with plane_words(dim) words per row and
  /// the canonical-tail invariant (bits >= dim in the last word zero); the
  /// snapshot loader verifies this before constructing. `keepalive` is held
  /// for the memory's lifetime, so one mapping can back many memories.
  /// \param layout Plane layout the planes were packed with.
  /// \param dim Hypervector dimension.
  /// \param size Number of rows.
  /// \param sign Row-major sign planes, `size * plane_words(dim)` words.
  /// \param nonzero Row-major nonzero planes for kTernary layout; must be
  ///   nullptr for kBipolar.
  /// \param keepalive Owner of the plane storage (kept alive by this memory).
  /// \param level As the packing constructor.
  /// \throws std::invalid_argument On zero size/dim, a null `sign`, or a
  ///   `nonzero` inconsistent with `layout`.
  PackedItemMemory(Layout layout, std::size_t dim, std::size_t size,
                   const std::uint64_t* sign, const std::uint64_t* nonzero,
                   std::shared_ptr<const void> keepalive,
                   std::optional<SimdLevel> level = std::nullopt);

  // The plane pointers alias the owned vectors on the packing path, so the
  // defaulted copies would dangle. Scans share one memory via shared_ptr.
  PackedItemMemory(const PackedItemMemory&) = delete;
  PackedItemMemory& operator=(const PackedItemMemory&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] Layout layout() const noexcept { return layout_; }
  /// \return The SIMD tier this memory's scans execute at.
  [[nodiscard]] SimdLevel simd_level() const noexcept { return level_; }
  /// \return Words per packed codebook row (one plane's worth).
  [[nodiscard]] std::size_t words_per_row() const noexcept { return words_; }
  /// \return Total packed storage in bits (the §IV-A fair-comparison unit):
  ///   size * dim for bipolar layout, 2 * size * dim for ternary.
  [[nodiscard]] std::size_t storage_bits() const noexcept;

  // --- Scans over a pre-packed query (the ItemMemory hot path) ------------

  /// Argmax scan over the full codebook; first (lowest-index) maximum wins.
  /// \param query Packed query planes; `query.dim` must equal dim().
  /// \return Best match (index + similarity = dot / D).
  /// \throws std::invalid_argument On query dimension mismatch.
  [[nodiscard]] Match best(const PackedQuery& query) const;

  /// Argmax scan restricted to `indices`.
  /// \param query Packed query planes.
  /// \param indices Codebook rows to scan, in the order given.
  /// \return Best match among `indices`.
  /// \throws std::invalid_argument On dimension mismatch or empty `indices`.
  /// \throws std::out_of_range When an index is >= size().
  [[nodiscard]] Match best_among(const PackedQuery& query,
                                 std::span<const std::size_t> indices) const;

  /// All matches with similarity strictly above `threshold`, sorted by
  /// hdc::match_order (descending similarity, ascending index).
  /// \param query Packed query planes.
  /// \param threshold Exclusive similarity lower bound.
  /// \return Possibly empty sorted match list.
  /// \throws std::invalid_argument On query dimension mismatch.
  [[nodiscard]] std::vector<Match> above(const PackedQuery& query,
                                         double threshold) const;

  /// Restricted variant of `above`.
  /// \param query Packed query planes.
  /// \param threshold Exclusive similarity lower bound.
  /// \param indices Codebook rows to scan.
  /// \return Possibly empty sorted match list.
  /// \throws std::invalid_argument On query dimension mismatch.
  /// \throws std::out_of_range When an index is >= size().
  [[nodiscard]] std::vector<Match> above_among(
      const PackedQuery& query, double threshold,
      std::span<const std::size_t> indices) const;

  /// Top-k matches sorted by hdc::match_order; k is clamped to size().
  /// \param query Packed query planes.
  /// \param k Maximum number of matches to return.
  /// \return min(k, size()) matches in canonical order.
  /// \throws std::invalid_argument On query dimension mismatch.
  [[nodiscard]] std::vector<Match> top_k(const PackedQuery& query,
                                         std::size_t k) const;

  /// Raw integer dot products of the query with every codebook row (the
  /// batched attention primitive of the resonator/IMC baselines).
  /// \param query Packed query planes.
  /// \param out Destination; `out.size()` must equal size().
  /// \throws std::invalid_argument On dimension or output-size mismatch.
  void dots(const PackedQuery& query, std::span<std::int64_t> out) const;

  // --- Multi-query blocked scans (the micro-batch hot path) ---------------
  // Scan a whole block of packed queries in one pass over the codebook via
  // the QueryBlockKernels loop nest (simd.hpp): row blocks stay
  // cache-resident while every query of the block visits them, so a grouped
  // batch streams the planes once per block instead of once per query.
  // Queries are grouped by alphabet internally (one kernel pass per
  // alphabet), so mixed blocks amortize too; ternary-layout codebooks fall
  // back to per-query scans (same results, no amortization). Results are
  // bit-identical to calling the single-query overloads per query — same
  // argmax tie rule, same hdc::match_order ordering — at any block size.

  /// best() for every query of the block.
  /// \param queries Packed queries; each must match dim().
  /// \return One Match per query, in query order.
  /// \throws std::invalid_argument On any query dimension mismatch.
  [[nodiscard]] std::vector<Match> best_block(
      std::span<const PackedQuery> queries) const;

  /// top_k() for every query of the block; k is clamped to size().
  /// \param queries Packed queries; each must match dim().
  /// \param k Maximum number of matches per query (0 returns empty lists
  ///   without scanning).
  /// \return One canonical-order match list per query, in query order.
  /// \throws std::invalid_argument On any query dimension mismatch.
  [[nodiscard]] std::vector<std::vector<Match>> top_k_block(
      std::span<const PackedQuery> queries, std::size_t k) const;

  /// dots() for every query of the block, query-major.
  /// \param queries Packed queries; each must match dim().
  /// \param out Destination; out[q * size() + row] = dot(query q, row).
  ///   `out.size()` must equal queries.size() * size().
  /// \throws std::invalid_argument On dimension or output-size mismatch.
  void dots_block(std::span<const PackedQuery> queries,
                  std::span<std::int64_t> out) const;

  // --- Per-row primitives (the TieredItemMemory candidate-scan surface) ---

  /// Exact integer dot of codebook row `row` with the packed query — the
  /// same kernel dispatch the full scans use, exposed so the tiered index
  /// can scan sparse candidate lists without materializing index vectors.
  /// Preconditions (unchecked, noexcept hot path): `row < size()` and
  /// `query.dim == dim()`.
  [[nodiscard]] std::int64_t dot_row(std::size_t row,
                                     const PackedQuery& query) const noexcept {
    return row_dot(row, query);
  }

  /// Read-only view of row `row`'s sign plane: words_per_row() words with
  /// the canonical-tail invariant. Precondition: `row < size()`.
  [[nodiscard]] std::span<const std::uint64_t> row_sign(
      std::size_t row) const noexcept {
    return {sign_ + row * words_, words_};
  }

  /// Row `row`'s nonzero plane; the empty span in bipolar layout (where
  /// every dimension is nonzero). Precondition: `row < size()`.
  [[nodiscard]] std::span<const std::uint64_t> row_nonzero(
      std::size_t row) const noexcept {
    if (layout_ == Layout::kBipolar) return {};
    return {nonzero_ + row * words_, words_};
  }

  /// The whole contiguous sign plane: size() * words_per_row() words. Used
  /// by the snapshot writer and the snapshot-adoption plane comparison.
  [[nodiscard]] std::span<const std::uint64_t> sign_plane() const noexcept {
    return {sign_, size_ * words_};
  }

  /// The whole contiguous nonzero plane; empty in bipolar layout.
  [[nodiscard]] std::span<const std::uint64_t> nonzero_plane() const noexcept {
    if (layout_ == Layout::kBipolar) return {};
    return {nonzero_, size_ * words_};
  }

  // --- Convenience overloads that pack the query internally ---------------
  // Each packs `query` once and forwards to the PackedQuery overload.
  // \throws std::invalid_argument when `query` is not bipolar/ternary (use
  //   the scalar ItemMemory path for integer bundles) or on dim mismatch.

  [[nodiscard]] Match best(const Hypervector& query) const;
  [[nodiscard]] Match best_among(const Hypervector& query,
                                 std::span<const std::size_t> indices) const;
  [[nodiscard]] std::vector<Match> above(const Hypervector& query,
                                         double threshold) const;
  [[nodiscard]] std::vector<Match> above_among(
      const Hypervector& query, double threshold,
      std::span<const std::size_t> indices) const;
  [[nodiscard]] std::vector<Match> top_k(const Hypervector& query,
                                         std::size_t k) const;
  void dots(const Hypervector& query, std::span<std::int64_t> out) const;

 private:
  /// Query block regrouped by alphabet for the QueryBlockKernels loop nest:
  /// one plane-pointer array per alphabet plus the original query index of
  /// each subgroup entry, so reductions map kernel output back to query
  /// order.
  struct BlockView {
    std::vector<const std::uint64_t*> bip;  ///< bipolar sign planes
    std::vector<std::size_t> bip_idx;       ///< their original query indices
    std::vector<const std::uint64_t*> ter_nz;  ///< ternary nonzero planes
    std::vector<const std::uint64_t*> ter_sg;  ///< ternary sign planes
    std::vector<std::size_t> ter_idx;          ///< their original indices
  };
  [[nodiscard]] BlockView make_block_view(
      std::span<const PackedQuery> queries) const;
  /// Runs the query-block kernels for rows [begin, end): fills
  /// scratch[t * (end - begin) + (row - begin)] for subgroup slot `t`
  /// (bipolar slots first, then ternary), mirroring BlockView order.
  /// `scratch` must hold queries.size() * (end - begin) entries.
  void block_dots_range(const BlockView& view, std::size_t begin,
                        std::size_t end, std::int64_t* scratch) const;

  /// Exact integer dot of codebook row `row` with the packed query.
  [[nodiscard]] std::int64_t row_dot(std::size_t row,
                                     const PackedQuery& query) const noexcept;
  /// Fills `out[row]` = row_dot(row) for every row, partitioning the scan
  /// across the worker pool in fixed contiguous row blocks when it is large
  /// enough to amortize thread startup (deterministic: block boundaries
  /// depend only on size, never on timing). `out.size()` must equal size().
  void compute_dots(const PackedQuery& query,
                    std::span<std::int64_t> out) const;
  /// Worker count a full scan of this memory would use (1 = sequential).
  [[nodiscard]] std::size_t scan_workers() const noexcept;
  /// similarity = dot / D with the same double arithmetic as the scalar path.
  [[nodiscard]] double to_similarity(std::int64_t dot) const noexcept {
    return static_cast<double>(dot) / static_cast<double>(dim_);
  }
  void require_query(const PackedQuery& query) const;
  [[nodiscard]] PackedQuery pack_query(const Hypervector& query) const;

  std::size_t size_ = 0;
  std::size_t dim_ = 0;
  std::size_t words_ = 0;
  SimdLevel level_ = SimdLevel::kScalarWords;
  /// Kernel table of level_ (static storage inside simd.cpp, never null).
  const DotKernels* kernels_ = nullptr;
  Layout layout_ = Layout::kBipolar;
  /// Row-major sign planes: sign_[row * words_ + w]. Points into owned_sign_
  /// on the packing path, or into `keepalive_`-owned storage (an mmap'd
  /// snapshot or a deserialized buffer) on the adoption path.
  const std::uint64_t* sign_ = nullptr;
  /// Row-major nonzero planes; nullptr in bipolar layout.
  const std::uint64_t* nonzero_ = nullptr;
  /// Plane storage built by the packing constructor (empty when adopted).
  std::vector<std::uint64_t> owned_sign_;
  std::vector<std::uint64_t> owned_nonzero_;
  /// Owner of adopted plane storage; null on the packing path.
  std::shared_ptr<const void> keepalive_;
};

}  // namespace factorhd::hdc::kernels
