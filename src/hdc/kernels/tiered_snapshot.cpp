#include "hdc/kernels/tiered_snapshot.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "hdc/hash.hpp"
#include "hdc/kernels/plane.hpp"
#include "util/env.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FACTORHD_HAS_SNAPSHOT_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace factorhd::hdc::kernels {

namespace {

// Plane pointers are adopted straight out of snapshot bytes, so the on-disk
// u64 entries must be exactly the in-memory CSR entry type.
static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
              "FTS1 snapshots require a 64-bit size_t");

constexpr std::uint64_t kMagic = 0x31535446;  // 'FTS1'
constexpr std::uint64_t kVersion = 1;
constexpr std::size_t kHeaderWords = 18;
constexpr std::size_t kHeaderBytes = kHeaderWords * sizeof(std::uint64_t);
constexpr std::size_t kAlign = 64;
constexpr std::size_t kSections = 5;
// Geometry sanity bounds (same spirit as hdc::io's kMaxReasonable): reject
// corrupt headers before any multiplication can overflow or any allocation
// can be attempted.
constexpr std::uint64_t kMaxDim = 1ULL << 32;
constexpr std::uint64_t kMaxRows = 1ULL << 32;
constexpr std::uint64_t kMaxPlaneWords = 1ULL << 37;  // 1 TiB of plane data

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("hdc::tiered_snapshot: " + what);
}

constexpr std::uint64_t aligned_up(std::uint64_t n) noexcept {
  return (n + (kAlign - 1)) & ~static_cast<std::uint64_t>(kAlign - 1);
}

/// Digest of `n` u64 words: four interleaved splitmix64 lanes (hash_mix is
/// a ~5-cycle latency chain, so one lane alone runs far below memory
/// bandwidth; four independent chains keep the multiplier busy), folded
/// with the length so zero-extended sections cannot collide.
std::uint64_t digest_words(const std::uint64_t* data, std::size_t n) noexcept {
  std::uint64_t lane0 = 0x243f6a8885a308d3ULL;
  std::uint64_t lane1 = 0x13198a2e03707344ULL;
  std::uint64_t lane2 = 0xa4093822299f31d0ULL;
  std::uint64_t lane3 = 0x082efa98ec4e6c89ULL;
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    lane0 = hash_mix(lane0 ^ data[w]);
    lane1 = hash_mix(lane1 ^ data[w + 1]);
    lane2 = hash_mix(lane2 ^ data[w + 2]);
    lane3 = hash_mix(lane3 ^ data[w + 3]);
  }
  for (; w < n; ++w) lane0 = hash_mix(lane0 ^ data[w]);
  return hash_mix(hash_mix(lane0 ^ hash_mix(lane1 ^ hash_mix(lane2 ^ lane3))) ^
                  static_cast<std::uint64_t>(n));
}

/// Validated header geometry: the five section sizes (in bytes) and their
/// file offsets are fully determined by (dim, rows, clusters, layout).
struct Geometry {
  std::uint64_t dim = 0;
  std::uint64_t rows = 0;
  std::uint64_t clusters = 0;
  std::uint64_t nprobe = 0;
  bool ternary = false;
  std::uint64_t words = 0;
  std::array<std::uint64_t, kSections> section_bytes{};
  std::array<std::uint64_t, kSections> section_offset{};
  std::array<std::uint64_t, kSections> digest{};
  std::uint64_t total_bytes = 0;
};

/// Parses and fully validates an FTS1 header: magic, version, digest,
/// plausibility bounds, and section sizes consistent with the geometry.
Geometry parse_header(const std::uint64_t (&h)[kHeaderWords]) {
  if ((h[0] & 0xffffffffULL) != kMagic) fail("bad magic (not an FTS1 file)");
  if ((h[0] >> 32) != kVersion) {
    fail("unsupported format version " + std::to_string(h[0] >> 32));
  }
  if (h[17] != digest_words(h, kHeaderWords - 1)) {
    fail("header digest mismatch (corrupt header)");
  }
  Geometry g;
  g.dim = h[1];
  g.rows = h[2];
  g.clusters = h[3];
  g.nprobe = h[4];
  g.words = h[6];
  if (h[5] > 1) fail("invalid layout code");
  g.ternary = h[5] == 1;
  if (g.dim == 0 || g.dim > kMaxDim) fail("implausible dimension");
  if (g.words != plane_words(static_cast<std::size_t>(g.dim))) {
    fail("words_per_row inconsistent with dimension");
  }
  if (g.rows == 0 || g.rows > kMaxRows) fail("implausible row count");
  if (g.clusters == 0 || g.clusters > g.rows) fail("implausible cluster count");
  if (g.nprobe == 0 || g.nprobe > g.clusters) fail("implausible nprobe");
  if (g.rows * g.words > kMaxPlaneWords) fail("implausible plane size");

  const std::uint64_t plane_bytes = g.rows * g.words * 8;
  const std::array<std::uint64_t, kSections> expect = {
      plane_bytes,                 // row_sign
      g.ternary ? plane_bytes : 0, // row_nonzero
      g.clusters * g.words * 8,    // centroid_sign
      (g.clusters + 1) * 8,        // cluster_begin
      g.rows * 8,                  // member_rows
  };
  std::uint64_t offset = aligned_up(kHeaderBytes);
  for (std::size_t s = 0; s < kSections; ++s) {
    if (h[7 + s] != expect[s]) {
      fail("section size inconsistent with header geometry");
    }
    g.section_bytes[s] = expect[s];
    g.section_offset[s] = offset;
    g.digest[s] = h[12 + s];
    offset = aligned_up(offset + expect[s]);
  }
  g.total_bytes = offset;
  return g;
}

/// Assembles the loaded index from validated section pointers. The CSR
/// arrays are copied (vectors own their storage); the plane sections are
/// adopted in place, kept alive by `keepalive`.
std::shared_ptr<const TieredItemMemory> assemble(
    const Geometry& g, const std::uint64_t* row_sign,
    const std::uint64_t* row_nonzero, const std::uint64_t* centroid_sign,
    const std::uint64_t* cluster_begin, const std::uint64_t* member_rows,
    std::shared_ptr<const void> keepalive, std::optional<SimdLevel> level) {
  // Both memories must sit on the same kernel tier (the from-parts
  // constructor enforces it); resolve the default once.
  const SimdLevel resolved = level.value_or(dispatched_simd_level());
  auto rows_mem = std::make_shared<const PackedItemMemory>(
      g.ternary ? PackedItemMemory::Layout::kTernary
                : PackedItemMemory::Layout::kBipolar,
      static_cast<std::size_t>(g.dim), static_cast<std::size_t>(g.rows),
      row_sign, g.ternary ? row_nonzero : nullptr, keepalive, resolved);
  auto cent_mem = std::make_shared<const PackedItemMemory>(
      PackedItemMemory::Layout::kBipolar, static_cast<std::size_t>(g.dim),
      static_cast<std::size_t>(g.clusters), centroid_sign, nullptr, keepalive,
      resolved);
  std::vector<std::size_t> begins(cluster_begin,
                                  cluster_begin + g.clusters + 1);
  std::vector<std::size_t> members(member_rows, member_rows + g.rows);
  try {
    return std::make_shared<const TieredItemMemory>(
        std::move(rows_mem), std::move(cent_mem),
        static_cast<std::size_t>(g.nprobe), std::move(members),
        std::move(begins));
  } catch (const std::invalid_argument& e) {
    // A checksummed-but-inconsistent structure (a forged file): surface it
    // as the module's own load error.
    fail(std::string("snapshot structure invalid: ") + e.what());
  }
}

void verify_section(const Geometry& g, std::size_t s,
                    const std::uint64_t* data) {
  if (digest_words(data, static_cast<std::size_t>(g.section_bytes[s] / 8)) !=
      g.digest[s]) {
    fail("section digest mismatch (corrupt snapshot)");
  }
}

void verify_zero(const unsigned char* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] != 0) fail("nonzero padding byte (corrupt snapshot)");
  }
}

}  // namespace

std::uint64_t tiered_snapshot_bytes(const TieredItemMemory& tier) {
  const bool ternary =
      tier.rows().layout() == PackedItemMemory::Layout::kTernary;
  const std::uint64_t plane_bytes =
      static_cast<std::uint64_t>(tier.size()) * tier.rows().words_per_row() *
      8;
  std::uint64_t total = aligned_up(kHeaderBytes);
  total = aligned_up(total + plane_bytes);                      // row_sign
  total = aligned_up(total + (ternary ? plane_bytes : 0));      // row_nonzero
  total = aligned_up(total + static_cast<std::uint64_t>(tier.clusters()) *
                                 tier.rows().words_per_row() * 8);
  total = aligned_up(total + (tier.clusters() + 1) * 8);        // cluster_begin
  total = aligned_up(total + static_cast<std::uint64_t>(tier.size()) * 8);
  return total;
}

void save_tiered_index(std::ostream& os, const TieredItemMemory& tier) {
  const PackedItemMemory& rows = tier.rows();
  const bool ternary = rows.layout() == PackedItemMemory::Layout::kTernary;
  const std::span<const std::uint64_t> row_sign = rows.sign_plane();
  const std::span<const std::uint64_t> row_nonzero =
      ternary ? rows.nonzero_plane() : std::span<const std::uint64_t>{};
  const std::span<const std::uint64_t> cent_sign =
      tier.centroid_memory().sign_plane();
  const std::span<const std::size_t> begins = tier.cluster_begins();
  const std::span<const std::size_t> members = tier.member_rows();

  const std::array<const std::uint64_t*, kSections> data = {
      row_sign.data(), row_nonzero.data(), cent_sign.data(),
      reinterpret_cast<const std::uint64_t*>(begins.data()),
      reinterpret_cast<const std::uint64_t*>(members.data())};
  const std::array<std::uint64_t, kSections> bytes = {
      row_sign.size() * 8, row_nonzero.size() * 8, cent_sign.size() * 8,
      begins.size() * 8, members.size() * 8};

  std::uint64_t header[kHeaderWords] = {};
  header[0] = kMagic | (kVersion << 32);
  header[1] = tier.dim();
  header[2] = tier.size();
  header[3] = tier.clusters();
  header[4] = tier.nprobe();
  header[5] = ternary ? 1 : 0;
  header[6] = rows.words_per_row();
  for (std::size_t s = 0; s < kSections; ++s) {
    header[7 + s] = bytes[s];
    header[12 + s] =
        digest_words(data[s], static_cast<std::size_t>(bytes[s] / 8));
  }
  header[17] = digest_words(header, kHeaderWords - 1);

  const std::array<char, kAlign> zeros{};
  const auto pad_to = [&](std::uint64_t written) {
    const std::uint64_t pad = aligned_up(written) - written;
    if (pad > 0) os.write(zeros.data(), static_cast<std::streamsize>(pad));
    return aligned_up(written);
  };
  os.write(reinterpret_cast<const char*>(header), kHeaderBytes);
  std::uint64_t written = pad_to(kHeaderBytes);
  for (std::size_t s = 0; s < kSections; ++s) {
    if (bytes[s] > 0) {
      os.write(reinterpret_cast<const char*>(data[s]),
               static_cast<std::streamsize>(bytes[s]));
    }
    written = pad_to(written + bytes[s]);
  }
  if (!os) fail("write failed");
}

void save_tiered_index(const std::string& path,
                       const TieredItemMemory& tier) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) fail("cannot create '" + path + "'");
  save_tiered_index(os, tier);
  os.flush();
  if (!os) fail("write failed for '" + path + "'");
}

std::shared_ptr<const TieredItemMemory> load_tiered_index(
    std::istream& is, std::optional<SimdLevel> level) {
  std::uint64_t header[kHeaderWords];
  is.read(reinterpret_cast<char*>(header), kHeaderBytes);
  if (!is) fail("truncated header");
  const Geometry g = parse_header(header);

  // One owned buffer holds all five sections (plus their padding, so the
  // zero checks run on the same bytes the digests cover on disk).
  const std::uint64_t body_bytes = g.total_bytes - aligned_up(kHeaderBytes);
  auto body = std::make_shared<std::vector<std::uint64_t>>(
      static_cast<std::size_t>(body_bytes / 8));
  {
    std::array<char, kAlign> pad;
    const std::uint64_t head_pad = aligned_up(kHeaderBytes) - kHeaderBytes;
    is.read(pad.data(), static_cast<std::streamsize>(head_pad));
    if (!is) fail("truncated snapshot body");
    verify_zero(reinterpret_cast<const unsigned char*>(pad.data()),
                static_cast<std::size_t>(head_pad));
  }
  is.read(reinterpret_cast<char*>(body->data()),
          static_cast<std::streamsize>(body_bytes));
  if (!is) fail("truncated snapshot body");

  const std::uint64_t body_base = aligned_up(kHeaderBytes);
  std::array<const std::uint64_t*, kSections> ptr{};
  for (std::size_t s = 0; s < kSections; ++s) {
    ptr[s] = body->data() + (g.section_offset[s] - body_base) / 8;
    verify_section(g, s, ptr[s]);
    const std::uint64_t end = g.section_offset[s] + g.section_bytes[s];
    verify_zero(reinterpret_cast<const unsigned char*>(body->data()) +
                    (end - body_base),
                static_cast<std::size_t>(aligned_up(end) - end));
  }
  std::shared_ptr<const void> keepalive = body;
  return assemble(g, ptr[0], ptr[1], ptr[2], ptr[3], ptr[4],
                  std::move(keepalive), level);
}

namespace {

std::uint64_t read_header_from_file(const std::string& path,
                                    std::uint64_t (&header)[kHeaderWords]) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) fail("cannot open '" + path + "'");
  const auto size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0);
  is.read(reinterpret_cast<char*>(header), kHeaderBytes);
  if (!is) fail("truncated header in '" + path + "'");
  return size;
}

#if FACTORHD_HAS_SNAPSHOT_MMAP

/// Owns one read-only file mapping; PackedItemMemory keepalives hold it.
struct Mapping {
  const unsigned char* base = nullptr;
  std::size_t bytes = 0;
  ~Mapping() {
    if (base != nullptr) {
      ::munmap(const_cast<unsigned char*>(base), bytes);
    }
  }
};

std::shared_ptr<const TieredItemMemory> load_mapped(
    const std::string& path, std::uint64_t file_size,
    std::optional<SimdLevel> level) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open '" + path + "'");
  void* base =
      ::mmap(nullptr, static_cast<std::size_t>(file_size), PROT_READ,
             MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base == MAP_FAILED) fail("mmap failed for '" + path + "'");
  auto mapping = std::make_shared<Mapping>();
  mapping->base = static_cast<const unsigned char*>(base);
  mapping->bytes = static_cast<std::size_t>(file_size);

  std::uint64_t consumed = 0;
  auto tier = load_tiered_index(
      std::span<const std::uint64_t>(
          reinterpret_cast<const std::uint64_t*>(mapping->base),
          static_cast<std::size_t>(file_size / 8)),
      mapping, &consumed, level);
  if (consumed != file_size) {
    fail("trailing bytes after snapshot in '" + path + "'");
  }
  return tier;
}

#endif  // FACTORHD_HAS_SNAPSHOT_MMAP

}  // namespace

std::shared_ptr<const TieredItemMemory> load_tiered_index(
    std::span<const std::uint64_t> bytes_as_words,
    std::shared_ptr<const void> keepalive, std::uint64_t* consumed,
    std::optional<SimdLevel> level) {
  if (bytes_as_words.size() < kHeaderWords) fail("truncated header");
  std::uint64_t header[kHeaderWords];
  std::memcpy(header, bytes_as_words.data(), kHeaderBytes);
  const Geometry g = parse_header(header);
  if (bytes_as_words.size() * 8 < g.total_bytes) {
    fail("truncated snapshot body");
  }
  const auto* base =
      reinterpret_cast<const unsigned char*>(bytes_as_words.data());
  verify_zero(base + kHeaderBytes,
              static_cast<std::size_t>(aligned_up(kHeaderBytes) -
                                       kHeaderBytes));
  std::array<const std::uint64_t*, kSections> ptr{};
  for (std::size_t s = 0; s < kSections; ++s) {
    ptr[s] = bytes_as_words.data() + g.section_offset[s] / 8;
    verify_section(g, s, ptr[s]);
    const std::uint64_t end = g.section_offset[s] + g.section_bytes[s];
    verify_zero(base + end,
                static_cast<std::size_t>(aligned_up(end) - end));
  }
  if (consumed != nullptr) *consumed = g.total_bytes;
  return assemble(g, ptr[0], ptr[1], ptr[2], ptr[3], ptr[4],
                  std::move(keepalive), level);
}

std::shared_ptr<const TieredItemMemory> load_tiered_index(
    const std::string& path, std::optional<SimdLevel> level) {
#if FACTORHD_HAS_SNAPSHOT_MMAP
  // FACTORHD_SNAPSHOT_MMAP (registered in util::env_knobs()) gates the
  // mapped path; the stream fallback below is bit-identical, just private.
  if (util::env_size_t("FACTORHD_SNAPSHOT_MMAP", 1, 0, 1) == 1) {
    std::uint64_t header[kHeaderWords];
    const std::uint64_t file_size = read_header_from_file(path, header);
    const Geometry g = parse_header(header);
    if (g.total_bytes != file_size) {
      fail("file size mismatch in '" + path + "'");
    }
    return load_mapped(path, file_size, level);
  }
#endif
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open '" + path + "'");
  auto tier = load_tiered_index(is, level);
  // A file snapshot must be exactly one snapshot: trailing bytes mean a
  // truncated write of something larger or a corrupt concatenation.
  is.peek();
  if (!is.eof()) fail("trailing bytes after snapshot in '" + path + "'");
  return tier;
}

TieredSnapshotInfo read_tiered_index_info(const std::string& path) {
  std::uint64_t header[kHeaderWords];
  const std::uint64_t file_size = read_header_from_file(path, header);
  const Geometry g = parse_header(header);
  if (g.total_bytes != file_size) fail("file size mismatch in '" + path + "'");
  TieredSnapshotInfo info;
  info.version = kVersion;
  info.dim = g.dim;
  info.rows = g.rows;
  info.clusters = g.clusters;
  info.nprobe = g.nprobe;
  info.ternary = g.ternary;
  info.words_per_row = g.words;
  info.total_bytes = g.total_bytes;
  return info;
}

}  // namespace factorhd::hdc::kernels
