#include "hdc/kernels/tiered_item_memory.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/env.hpp"

namespace factorhd::hdc::kernels {

namespace {

// Screened assignment (see build()) engages once the centroid count makes
// the exhaustive O(K) scan clearly dearer than the prefix screen's
// ~K/8 + K/32 full-dot equivalents, and the planes are wide enough that a
// 1/8 prefix still carries a usable ranking signal. Both bounds are quality
// gates as much as cost gates: at small K or narrow planes the prefix
// ranking gets noisy enough to visibly dent recall (the seeded regression
// in tests/test_tiered_memory.cpp patrols the K=256 point).
constexpr std::size_t kScreenMinCentroids = 512;
constexpr std::size_t kScreenMinWords = 16;

// Assignment batches below this size stay sequential: one assignment costs
// on the order of 10 us, so smaller batches cannot amortize thread
// spawn+join.
constexpr std::size_t kParallelAssignMinRows = 1024;

// Adaptive probing margin, in units of the centroid-dot noise standard
// deviation sqrt(dim) (a random +-1 query against a random bipolar centroid
// has dot stddev sqrt(dim)). A centroid scoring within this many sigma of
// the stage-1 winner is still a plausible home for the true match, so its
// bucket is probed; everything further behind is dropped once the floor is
// satisfied. 3 sigma keeps the false-drop probability per bucket below
// ~1e-3 while letting confident queries stop at the floor.
constexpr double kAdaptiveMarginSigma = 3.0;

// Runs fn(begin, end) over fixed contiguous blocks of [0, n), one block per
// worker. Every call writes a disjoint output slice and each element depends
// only on its own index, so the result is bit-identical for every worker
// count (the same policy as PackedItemMemory::compute_dots). The first block
// runs on the calling thread.
template <typename Fn>
void parallel_blocks(std::size_t n, std::size_t workers, const Fn& fn) {
  workers = std::min(workers, n);
  if (workers <= 1) {
    if (n > 0) fn(std::size_t{0}, n);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (std::size_t begin = chunk; begin < n; begin += chunk) {
      pool.emplace_back(fn, begin, std::min(n, begin + chunk));
    }
  } catch (...) {
    // A failed spawn must not destroy joinable threads (std::terminate);
    // join what started, then propagate.
    for (auto& t : pool) t.join();
    throw;
  }
  fn(std::size_t{0}, std::min(n, chunk));
  for (auto& t : pool) t.join();
}

}  // namespace

TieredConfig tiered_config_from_env() {
  TieredConfig cfg;
  cfg.clusters =
      util::env_size_t("FACTORHD_TIERED_CLUSTERS", 0, 0, std::size_t{1} << 24);
  cfg.nprobe =
      util::env_size_t("FACTORHD_TIERED_NPROBE", 0, 0, std::size_t{1} << 24);
  cfg.nprobe_min = util::env_size_t("FACTORHD_TIERED_NPROBE_MIN", 0, 0,
                                    std::size_t{1} << 24);
  cfg.nprobe_max = util::env_size_t("FACTORHD_TIERED_NPROBE_MAX", 0, 0,
                                    std::size_t{1} << 24);
  cfg.build_threads =
      util::env_size_t("FACTORHD_TIERED_BUILD_THREADS", 0, 0, 256);
  return cfg;
}

std::size_t tiered_auto_min_rows() {
  return util::env_size_t("FACTORHD_TIERED_MIN_ROWS", 65536, 0,
                          std::size_t{1} << 30);
}

TieredItemMemory::TieredItemMemory(const Codebook& codebook,
                                   TieredConfig config,
                                   std::optional<SimdLevel> level)
    : rows_(std::make_shared<const PackedItemMemory>(codebook, level)) {
  build(config);
}

TieredItemMemory::TieredItemMemory(
    std::shared_ptr<const PackedItemMemory> rows, TieredConfig config)
    : rows_(std::move(rows)) {
  if (!rows_) {
    throw std::invalid_argument("TieredItemMemory: null row memory");
  }
  build(config);
}

TieredItemMemory::TieredItemMemory(
    std::shared_ptr<const PackedItemMemory> rows,
    std::shared_ptr<const PackedItemMemory> centroids, std::size_t nprobe,
    std::vector<std::size_t> member_rows, std::vector<std::size_t> cluster_begin,
    std::size_t nprobe_min, std::size_t nprobe_max)
    : rows_(std::move(rows)),
      centroids_(std::move(centroids)),
      member_rows_(std::move(member_rows)),
      cluster_begin_(std::move(cluster_begin)) {
  if (!rows_ || !centroids_) {
    throw std::invalid_argument("TieredItemMemory: null memory adoption");
  }
  const std::size_t m = rows_->size();
  const std::size_t k = centroids_->size();
  if (centroids_->dim() != rows_->dim() ||
      centroids_->layout() != PackedItemMemory::Layout::kBipolar ||
      centroids_->simd_level() != rows_->simd_level()) {
    throw std::invalid_argument(
        "TieredItemMemory: centroid memory incompatible with row memory");
  }
  nprobe_ = std::clamp<std::size_t>(nprobe, 1, k);
  if (nprobe_max > 0) {
    // Same resolution as build(): floor <= ceiling, both in [1, K].
    nprobe_min_ = nprobe_min == 0 ? std::max<std::size_t>(1, nprobe_ / 8)
                                  : std::min(nprobe_min, k);
    nprobe_max_ =
        std::max(nprobe_min_, std::clamp<std::size_t>(nprobe_max, 1, k));
  }
  if (cluster_begin_.size() != k + 1 || cluster_begin_.front() != 0 ||
      cluster_begin_.back() != m) {
    throw std::invalid_argument("TieredItemMemory: malformed cluster offsets");
  }
  if (member_rows_.size() != m) {
    throw std::invalid_argument("TieredItemMemory: malformed member list");
  }
  // The CSR structure the scans walk blind: offsets non-decreasing, members
  // ascending within each bucket, and the whole list a permutation of the
  // row indices (each checked row is marked seen exactly once).
  std::vector<bool> seen(m, false);
  for (std::size_t c = 0; c < k; ++c) {
    if (cluster_begin_[c] > cluster_begin_[c + 1]) {
      throw std::invalid_argument(
          "TieredItemMemory: cluster offsets not non-decreasing");
    }
    for (std::size_t i = cluster_begin_[c]; i < cluster_begin_[c + 1]; ++i) {
      const std::size_t row = member_rows_[i];
      if (row >= m || seen[row] ||
          (i > cluster_begin_[c] && member_rows_[i - 1] >= row)) {
        throw std::invalid_argument(
            "TieredItemMemory: member list is not an ascending partition of "
            "the rows");
      }
      seen[row] = true;
    }
  }
}

std::int64_t TieredItemMemory::row_centroid_dot(
    std::size_t row, const std::uint64_t* cent) const noexcept {
  const DotKernels& k = dot_kernels(rows_->simd_level());
  const std::size_t words = rows_->words_per_row();
  const std::uint64_t* sign = rows_->row_sign(row).data();
  if (rows_->layout() == PackedItemMemory::Layout::kBipolar) {
    return k.bipolar_bipolar(sign, cent, words, rows_->dim());
  }
  return k.bipolar_ternary(cent, rows_->row_nonzero(row).data(), sign, words);
}

std::size_t TieredItemMemory::nearest_centroid(
    std::size_t row, const std::vector<std::uint64_t>& planes,
    std::size_t k) const noexcept {
  const std::size_t words = rows_->words_per_row();
  std::size_t best = 0;
  std::int64_t best_dot = row_centroid_dot(row, planes.data());
  for (std::size_t c = 1; c < k; ++c) {
    const std::int64_t d = row_centroid_dot(row, &planes[c * words]);
    if (d > best_dot) {  // strict: ties keep the lowest centroid index
      best_dot = d;
      best = c;
    }
  }
  return best;
}

std::size_t TieredItemMemory::nearest_centroid_screened(
    std::size_t row, const std::vector<std::uint64_t>& planes,
    const std::vector<std::uint64_t>& prefix_planes, std::size_t k,
    std::size_t prefix_words, std::size_t keep,
    std::span<std::int64_t> prefix_dot,
    std::span<std::uint32_t> hist) const noexcept {
  const BatchDotKernels& batch = batch_dot_kernels(rows_->simd_level());
  const std::size_t words = rows_->words_per_row();
  const std::uint64_t* sign = rows_->row_sign(row).data();
  // Partial dots over the plane prefix — exact dots of the first
  // prefix_words*64 dimensions (prefix_words < words, so no tail masking).
  const std::size_t prefix_dim = prefix_words * kWordBits;
  if (rows_->layout() == PackedItemMemory::Layout::kBipolar) {
    batch.bipolar_rows(sign, prefix_planes.data(), k, prefix_words,
                       prefix_dim, prefix_dot.data());
  } else {
    batch.ternary_rows(rows_->row_nonzero(row).data(), sign,
                       prefix_planes.data(), k, prefix_words,
                       prefix_dot.data());
  }
  // Survivor selection by dot histogram: prefix dots live in
  // [-prefix_dim, prefix_dim], so bucket counts give the keep-th largest
  // value (the threshold t) in one O(K) pass plus a bounded walk — the same
  // survivor set a comparison select under (dot desc, index asc) yields:
  // every centroid above t plus the lowest-indexed ones exactly at t.
  std::fill(hist.begin(), hist.end(), 0);
  const auto bias = static_cast<std::int64_t>(prefix_dim);
  for (std::size_t c = 0; c < k; ++c) {
    ++hist[static_cast<std::size_t>(prefix_dot[c] + bias)];
  }
  std::size_t t = hist.size();
  std::size_t above = 0;  // survivors strictly above the threshold
  for (std::size_t cum = 0; t-- > 0;) {
    cum += hist[t];
    if (cum >= keep) {
      above = cum - hist[t];
      break;
    }
  }
  std::size_t at_threshold = keep - above;
  // Exact rescoring of the survivors, in ascending centroid order — strict
  // improvement gives the canonical lowest-index tie rule for free.
  const auto threshold = static_cast<std::int64_t>(t) - bias;
  std::size_t best = k;
  std::int64_t best_dot = 0;
  for (std::size_t c = 0; c < k; ++c) {
    if (prefix_dot[c] < threshold) continue;
    if (prefix_dot[c] == threshold) {
      if (at_threshold == 0) continue;
      --at_threshold;
    }
    const std::int64_t d = row_centroid_dot(row, &planes[c * words]);
    if (best == k || d > best_dot) {
      best = c;
      best_dot = d;
    }
  }
  return best;
}

void TieredItemMemory::build(const TieredConfig& config) {
  const std::size_t m = rows_->size();
  const std::size_t dim = rows_->dim();
  const std::size_t words = rows_->words_per_row();

  // Resolve the configuration deterministically from the row count. The
  // auto K ≈ 4·sqrt(M) balances the two stages (K centroid dots vs
  // nprobe·M/K candidate dots) while keeping buckets small enough that the
  // member–centroid correlation ~ sqrt(2/(π·M/K)) stays a usable signal.
  std::size_t k = config.clusters;
  if (k == 0) {
    const auto root = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(m))));
    k = std::max<std::size_t>(2, 4 * root);
  }
  k = std::clamp<std::size_t>(k, 1, m);
  nprobe_ = config.nprobe == 0 ? std::max<std::size_t>(1, k / 16)
                               : std::min(config.nprobe, k);
  if (config.nprobe_max > 0) {
    // Adaptive probing: resolve floor <= ceiling, both in [1, K]. An auto
    // floor of nprobe/8 keeps confident queries ~8x cheaper than the fixed
    // default while the margin rule escalates ambiguous ones. A floor of K
    // (the ceiling is raised to meet it) makes every scan exact — the same
    // verification bound as nprobe >= K.
    nprobe_min_ = config.nprobe_min == 0
                      ? std::max<std::size_t>(1, nprobe_ / 8)
                      : std::min(config.nprobe_min, k);
    nprobe_max_ =
        std::max(nprobe_min_, std::clamp<std::size_t>(config.nprobe_max, 1, k));
  }

  // Seed centroids from evenly spaced rows (deterministic, duplicate-safe:
  // a duplicated seed just yields an empty bucket after assignment).
  std::vector<std::uint64_t> cent(k * words);
  for (std::size_t c = 0; c < k; ++c) {
    const auto sign = rows_->row_sign(c * m / k);
    std::copy(sign.begin(), sign.end(), cent.begin() + c * words);
  }

  // Sampled Lloyd refinement: assign an evenly spaced row sample to its
  // nearest centroid, then replace each centroid with the elementwise
  // majority sign of its members (ties -> +1; empty buckets keep their old
  // centroid). Ternary rows contribute their sign plane with zeros counted
  // as -1 — clustering is a routing structure, exactness never depends on it.
  std::size_t sample = config.kmeans_sample == 0
                           ? std::min(m, 8 * k)
                           : std::min(config.kmeans_sample, m);
  sample = std::max(sample, std::min(m, k));
  std::vector<std::size_t> srows(sample);
  for (std::size_t j = 0; j < sample; ++j) srows[j] = j * m / sample;

  // Assignment machinery. The assign passes dominate the build (O(M·K) dots
  // exhaustively), so two orthogonal accelerations apply, both preserving
  // the determinism contract of the header:
  //
  //  - Prefix screening: for large K, score every centroid on the first
  //    words/8 plane words only (~K/8 full-dot equivalents), keep the
  //    top-K/32 by that partial dot, and rescore the survivors with exact
  //    full-width dots. The survivor *set* is deterministic (the selection
  //    order is a strict total order: partial dot desc, index asc) and the
  //    final argmax uses the canonical lowest-index tie rule, so screening
  //    is bit-stable; it can at worst place a row in a near-best bucket.
  //    config.exhaustive_build forces the all-K reference scan instead.
  //  - Fixed-block threading: rows are partitioned into contiguous blocks
  //    across the build workers; each element of the output depends only on
  //    its own row, so any worker count produces identical bits.
  const bool screened = !config.exhaustive_build &&
                        k >= kScreenMinCentroids && words >= kScreenMinWords;
  const std::size_t screen_words = screened ? words / 8 : 0;
  const std::size_t screen_keep =
      screened ? std::min(k, std::max<std::size_t>(64, k / 32)) : 0;
  const std::size_t build_workers =
      config.build_threads != 0 ? config.build_threads : scan_pool_width();

  // Fills out[j] with the cluster of row idx[j] (or row j when `idx` is
  // empty) against the current centroid planes.
  std::vector<std::uint64_t> prefix_planes(screened ? k * screen_words : 0);
  const auto assign_pass = [&](const std::vector<std::uint64_t>& cent,
                               std::span<const std::size_t> idx,
                               std::span<std::size_t> out) {
    const std::size_t n = out.size();
    const std::size_t workers =
        n >= kParallelAssignMinRows ? build_workers : 1;
    if (screened) {
      // Contiguous copy of the centroid prefixes, so the per-row batch scan
      // streams K*prefix_words sequential words instead of striding through
      // the full planes (shared read-only across the workers).
      for (std::size_t c = 0; c < k; ++c) {
        std::copy_n(&cent[c * words], screen_words,
                    &prefix_planes[c * screen_words]);
      }
    }
    parallel_blocks(n, workers, [&](std::size_t begin, std::size_t end) {
      if (screened) {
        // Per-worker scratch, reused across the block's rows.
        std::vector<std::int64_t> prefix_dot(k);
        std::vector<std::uint32_t> hist(2 * screen_words * kWordBits + 1);
        for (std::size_t j = begin; j < end; ++j) {
          out[j] = nearest_centroid_screened(idx.empty() ? j : idx[j], cent,
                                             prefix_planes, k, screen_words,
                                             screen_keep, prefix_dot, hist);
        }
      } else {
        for (std::size_t j = begin; j < end; ++j) {
          out[j] = nearest_centroid(idx.empty() ? j : idx[j], cent, k);
        }
      }
    });
  };

  std::vector<std::size_t> assign(sample);
  std::vector<std::size_t> bucket_count(k);
  std::vector<std::size_t> bucket_cursor(k + 1);
  std::vector<std::size_t> by_bucket(sample);
  std::vector<std::uint32_t> ones(dim);
  for (std::size_t iter = 0; iter < config.kmeans_iters; ++iter) {
    assign_pass(cent, srows, assign);
    // Counting-sort the sample by bucket so each update pass is contiguous.
    std::fill(bucket_count.begin(), bucket_count.end(), 0);
    for (std::size_t j = 0; j < sample; ++j) ++bucket_count[assign[j]];
    bucket_cursor[0] = 0;
    for (std::size_t c = 0; c < k; ++c) {
      bucket_cursor[c + 1] = bucket_cursor[c] + bucket_count[c];
    }
    std::vector<std::size_t> cursor(bucket_cursor.begin(),
                                    bucket_cursor.end() - 1);
    for (std::size_t j = 0; j < sample; ++j) {
      by_bucket[cursor[assign[j]]++] = srows[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      const std::size_t members = bucket_count[c];
      if (members == 0) continue;
      std::fill(ones.begin(), ones.end(), 0);
      for (std::size_t i = bucket_cursor[c]; i < bucket_cursor[c + 1]; ++i) {
        const auto sign = rows_->row_sign(by_bucket[i]);
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t bits = sign[w];
          while (bits != 0) {
            const int b = std::countr_zero(bits);
            ++ones[w * kWordBits + static_cast<std::size_t>(b)];
            bits &= bits - 1;
          }
        }
      }
      std::uint64_t* plane = &cent[c * words];
      std::fill(plane, plane + words, 0);
      for (std::size_t d = 0; d < dim; ++d) {
        if (2 * ones[d] >= members) {
          plane[d / kWordBits] |= (1ULL << (d % kWordBits));
        }
      }
    }
  }

  // Final assignment pass places every row exactly once; counting sort in
  // row order keeps each bucket's member list ascending, so candidate scans
  // visit rows in a canonical order.
  std::vector<std::size_t> cluster_of(m);
  assign_pass(cent, {}, cluster_of);
  cluster_begin_.assign(k + 1, 0);
  for (std::size_t row = 0; row < m; ++row) {
    ++cluster_begin_[cluster_of[row] + 1];
  }
  for (std::size_t c = 0; c < k; ++c) {
    cluster_begin_[c + 1] += cluster_begin_[c];
  }
  member_rows_.resize(m);
  std::vector<std::size_t> cursor(cluster_begin_.begin(),
                                  cluster_begin_.end() - 1);
  for (std::size_t row = 0; row < m; ++row) {
    member_rows_[cursor[cluster_of[row]]++] = row;
  }

  // Give the centroid planes their own storage (cent dies with this call)
  // and wrap them in a small memory so stage 1 runs on the same SIMD kernel
  // tables as stage 2.
  auto plane_copy = std::make_shared<const std::vector<std::uint64_t>>(cent);
  centroids_ = std::make_shared<const PackedItemMemory>(
      PackedItemMemory::Layout::kBipolar, dim, k, plane_copy->data(), nullptr,
      plane_copy, rows_->simd_level());
}

std::vector<std::size_t> TieredItemMemory::probe(const PackedQuery& query,
                                                 ScanStats* stats) const {
  const std::size_t k = centroids_->size();
  const std::size_t want = adaptive() ? nprobe_max_ : nprobe_;
  const std::vector<Match> top = centroids_->top_k(query, want);
  if (stats != nullptr) stats->centroid_dots += k;
  std::size_t take = top.size();
  if (adaptive() && take > nprobe_min_) {
    // Margin rule: keep every centroid whose score trails the winner by at
    // most kAdaptiveMarginSigma noise sigmas (sqrt(dim) in dot units,
    // /dim here because Match carries similarity). top is match_order
    // sorted, so the kept set is always a prefix; the floor is
    // unconditional. Pure function of (index, query) — no RNG, no timing.
    const double cut =
        top.front().similarity -
        kAdaptiveMarginSigma / std::sqrt(static_cast<double>(dim()));
    take = nprobe_min_;
    while (take < top.size() && top[take].similarity >= cut) ++take;
  }
  if (stats != nullptr) stats->probes += take;
  std::vector<std::size_t> buckets;
  buckets.reserve(take);
  for (std::size_t i = 0; i < take; ++i) buckets.push_back(top[i].index);
  return buckets;
}

namespace {

void require_dim(const PackedQuery& query, std::size_t dim) {
  if (query.dim != dim) {
    throw std::invalid_argument("TieredItemMemory: query dimension mismatch");
  }
}

}  // namespace

Match TieredItemMemory::best(const PackedQuery& query,
                             ScanStats* stats) const {
  require_dim(query, dim());
  const std::vector<std::size_t> buckets = probe(query, stats);
  bool found = false;
  std::int64_t best_dot = 0;
  std::size_t best_row = 0;
  std::uint64_t visited = 0;
  for (const std::size_t c : buckets) {
    for (std::size_t i = cluster_begin_[c]; i < cluster_begin_[c + 1]; ++i) {
      const std::size_t row = member_rows_[i];
      const std::int64_t d = rows_->dot_row(row, query);
      ++visited;
      // Canonical argmax: buckets arrive in similarity order, not row
      // order, so break dot ties toward the lowest row index explicitly —
      // exactly the scalar scan's first-maximum rule.
      if (!found || d > best_dot || (d == best_dot && row < best_row)) {
        found = true;
        best_dot = d;
        best_row = row;
      }
    }
  }
  if (stats != nullptr) stats->row_dots += visited;
  if (!found) {
    // Every probed bucket was empty (possible only under degenerate
    // clusterings with nprobe < clusters). Fall back to the exact scan
    // rather than inventing an answer.
    if (stats != nullptr) stats->row_dots += rows_->size();
    return rows_->best(query);
  }
  return {best_row,
          static_cast<double>(best_dot) / static_cast<double>(dim())};
}

std::vector<Match> TieredItemMemory::above(const PackedQuery& query,
                                           double threshold,
                                           ScanStats* stats) const {
  require_dim(query, dim());
  const std::vector<std::size_t> buckets = probe(query, stats);
  const auto d_dim = static_cast<double>(dim());
  std::vector<Match> out;
  std::uint64_t visited = 0;
  for (const std::size_t c : buckets) {
    for (std::size_t i = cluster_begin_[c]; i < cluster_begin_[c + 1]; ++i) {
      const std::size_t row = member_rows_[i];
      const double s = static_cast<double>(rows_->dot_row(row, query)) / d_dim;
      ++visited;
      if (s > threshold) out.push_back({row, s});
    }
  }
  if (stats != nullptr) stats->row_dots += visited;
  if (visited == 0) {
    // Every probed bucket was empty — the same degenerate clustering best()
    // guards against. An empty result here would be indistinguishable from
    // "nothing above threshold", so fall back to the exact scan.
    if (stats != nullptr) stats->row_dots += rows_->size();
    return rows_->above(query, threshold);
  }
  std::sort(out.begin(), out.end(), match_order);
  return out;
}

std::vector<Match> TieredItemMemory::top_k(const PackedQuery& query,
                                           std::size_t k,
                                           ScanStats* stats) const {
  require_dim(query, dim());
  // k == 0 can return nothing without probing anything — in particular it
  // must not reach the empty-candidate exact-scan fallback below, which
  // would charge a full-memory scan for an empty answer.
  if (k == 0) return {};
  const std::vector<std::size_t> buckets = probe(query, stats);
  const auto d_dim = static_cast<double>(dim());
  std::vector<Match> all;
  for (const std::size_t c : buckets) {
    for (std::size_t i = cluster_begin_[c]; i < cluster_begin_[c + 1]; ++i) {
      const std::size_t row = member_rows_[i];
      all.push_back(
          {row, static_cast<double>(rows_->dot_row(row, query)) / d_dim});
    }
  }
  if (stats != nullptr) stats->row_dots += all.size();
  if (all.empty()) {
    // Empty probed buckets (degenerate clustering): a short/empty result
    // would silently underfill k, so fall back to the exact scan like
    // best() does.
    if (stats != nullptr) stats->row_dots += rows_->size();
    return rows_->top_k(query, k);
  }
  const std::size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                    match_order);
  all.resize(keep);
  return all;
}

PackedQuery TieredItemMemory::pack_query(const Hypervector& query) const {
  std::optional<PackedQuery> q = PackedQuery::pack(query, simd_level());
  if (!q) {
    throw std::invalid_argument(
        "TieredItemMemory: query is not bipolar/ternary (use the scalar "
        "ItemMemory path for integer bundles)");
  }
  return std::move(*q);
}

Match TieredItemMemory::best(const Hypervector& query,
                             ScanStats* stats) const {
  return best(pack_query(query), stats);
}

std::vector<Match> TieredItemMemory::above(const Hypervector& query,
                                           double threshold,
                                           ScanStats* stats) const {
  return above(pack_query(query), threshold, stats);
}

std::vector<Match> TieredItemMemory::top_k(const Hypervector& query,
                                           std::size_t k,
                                           ScanStats* stats) const {
  return top_k(pack_query(query), k, stats);
}

}  // namespace factorhd::hdc::kernels
