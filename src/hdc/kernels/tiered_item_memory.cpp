#include "hdc/kernels/tiered_item_memory.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/env.hpp"

namespace factorhd::hdc::kernels {

TieredConfig tiered_config_from_env() {
  TieredConfig cfg;
  cfg.clusters =
      util::env_size_t("FACTORHD_TIERED_CLUSTERS", 0, 0, std::size_t{1} << 24);
  cfg.nprobe =
      util::env_size_t("FACTORHD_TIERED_NPROBE", 0, 0, std::size_t{1} << 24);
  return cfg;
}

std::size_t tiered_auto_min_rows() {
  return util::env_size_t("FACTORHD_TIERED_MIN_ROWS", 65536, 0,
                          std::size_t{1} << 30);
}

TieredItemMemory::TieredItemMemory(const Codebook& codebook,
                                   TieredConfig config,
                                   std::optional<SimdLevel> level)
    : rows_(std::make_shared<const PackedItemMemory>(codebook, level)) {
  build(config);
}

TieredItemMemory::TieredItemMemory(
    std::shared_ptr<const PackedItemMemory> rows, TieredConfig config)
    : rows_(std::move(rows)) {
  if (!rows_) {
    throw std::invalid_argument("TieredItemMemory: null row memory");
  }
  build(config);
}

std::int64_t TieredItemMemory::row_centroid_dot(
    std::size_t row, const std::uint64_t* cent) const noexcept {
  const DotKernels& k = dot_kernels(rows_->simd_level());
  const std::size_t words = rows_->words_per_row();
  const std::uint64_t* sign = rows_->row_sign(row).data();
  if (rows_->layout() == PackedItemMemory::Layout::kBipolar) {
    return k.bipolar_bipolar(sign, cent, words, rows_->dim());
  }
  return k.bipolar_ternary(cent, rows_->row_nonzero(row).data(), sign, words);
}

std::size_t TieredItemMemory::nearest_centroid(
    std::size_t row, const std::vector<std::uint64_t>& planes,
    std::size_t k) const noexcept {
  const std::size_t words = rows_->words_per_row();
  std::size_t best = 0;
  std::int64_t best_dot = row_centroid_dot(row, planes.data());
  for (std::size_t c = 1; c < k; ++c) {
    const std::int64_t d = row_centroid_dot(row, &planes[c * words]);
    if (d > best_dot) {  // strict: ties keep the lowest centroid index
      best_dot = d;
      best = c;
    }
  }
  return best;
}

void TieredItemMemory::build(const TieredConfig& config) {
  const std::size_t m = rows_->size();
  const std::size_t dim = rows_->dim();
  const std::size_t words = rows_->words_per_row();

  // Resolve the configuration deterministically from the row count. The
  // auto K ≈ 4·sqrt(M) balances the two stages (K centroid dots vs
  // nprobe·M/K candidate dots) while keeping buckets small enough that the
  // member–centroid correlation ~ sqrt(2/(π·M/K)) stays a usable signal.
  std::size_t k = config.clusters;
  if (k == 0) {
    const auto root = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(m))));
    k = std::max<std::size_t>(2, 4 * root);
  }
  k = std::clamp<std::size_t>(k, 1, m);
  nprobe_ = config.nprobe == 0 ? std::max<std::size_t>(1, k / 16)
                               : std::min(config.nprobe, k);

  // Seed centroids from evenly spaced rows (deterministic, duplicate-safe:
  // a duplicated seed just yields an empty bucket after assignment).
  std::vector<std::uint64_t> cent(k * words);
  for (std::size_t c = 0; c < k; ++c) {
    const auto sign = rows_->row_sign(c * m / k);
    std::copy(sign.begin(), sign.end(), cent.begin() + c * words);
  }

  // Sampled Lloyd refinement: assign an evenly spaced row sample to its
  // nearest centroid, then replace each centroid with the elementwise
  // majority sign of its members (ties -> +1; empty buckets keep their old
  // centroid). Ternary rows contribute their sign plane with zeros counted
  // as -1 — clustering is a routing structure, exactness never depends on it.
  std::size_t sample = config.kmeans_sample == 0
                           ? std::min(m, 8 * k)
                           : std::min(config.kmeans_sample, m);
  sample = std::max(sample, std::min(m, k));
  std::vector<std::size_t> srows(sample);
  for (std::size_t j = 0; j < sample; ++j) srows[j] = j * m / sample;

  std::vector<std::size_t> assign(sample);
  std::vector<std::size_t> bucket_count(k);
  std::vector<std::size_t> bucket_cursor(k + 1);
  std::vector<std::size_t> by_bucket(sample);
  std::vector<std::uint32_t> ones(dim);
  for (std::size_t iter = 0; iter < config.kmeans_iters; ++iter) {
    for (std::size_t j = 0; j < sample; ++j) {
      assign[j] = nearest_centroid(srows[j], cent, k);
    }
    // Counting-sort the sample by bucket so each update pass is contiguous.
    std::fill(bucket_count.begin(), bucket_count.end(), 0);
    for (std::size_t j = 0; j < sample; ++j) ++bucket_count[assign[j]];
    bucket_cursor[0] = 0;
    for (std::size_t c = 0; c < k; ++c) {
      bucket_cursor[c + 1] = bucket_cursor[c] + bucket_count[c];
    }
    std::vector<std::size_t> cursor(bucket_cursor.begin(),
                                    bucket_cursor.end() - 1);
    for (std::size_t j = 0; j < sample; ++j) {
      by_bucket[cursor[assign[j]]++] = srows[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      const std::size_t members = bucket_count[c];
      if (members == 0) continue;
      std::fill(ones.begin(), ones.end(), 0);
      for (std::size_t i = bucket_cursor[c]; i < bucket_cursor[c + 1]; ++i) {
        const auto sign = rows_->row_sign(by_bucket[i]);
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t bits = sign[w];
          while (bits != 0) {
            const int b = std::countr_zero(bits);
            ++ones[w * kWordBits + static_cast<std::size_t>(b)];
            bits &= bits - 1;
          }
        }
      }
      std::uint64_t* plane = &cent[c * words];
      std::fill(plane, plane + words, 0);
      for (std::size_t d = 0; d < dim; ++d) {
        if (2 * ones[d] >= members) {
          plane[d / kWordBits] |= (1ULL << (d % kWordBits));
        }
      }
    }
  }

  // Final assignment pass places every row exactly once; counting sort in
  // row order keeps each bucket's member list ascending, so candidate scans
  // visit rows in a canonical order.
  std::vector<std::size_t> cluster_of(m);
  cluster_begin_.assign(k + 1, 0);
  for (std::size_t row = 0; row < m; ++row) {
    const std::size_t c = nearest_centroid(row, cent, k);
    cluster_of[row] = c;
    ++cluster_begin_[c + 1];
  }
  for (std::size_t c = 0; c < k; ++c) {
    cluster_begin_[c + 1] += cluster_begin_[c];
  }
  member_rows_.resize(m);
  std::vector<std::size_t> cursor(cluster_begin_.begin(),
                                  cluster_begin_.end() - 1);
  for (std::size_t row = 0; row < m; ++row) {
    member_rows_[cursor[cluster_of[row]]++] = row;
  }

  // Pack the centroids into their own small memory so stage 1 runs on the
  // same SIMD kernel tables as stage 2.
  std::vector<Hypervector> items;
  items.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    Hypervector h(dim);
    const std::uint64_t* plane = &cent[c * words];
    for (std::size_t d = 0; d < dim; ++d) {
      h[d] = (plane[d / kWordBits] >> (d % kWordBits)) & 1u ? 1 : -1;
    }
    items.push_back(std::move(h));
  }
  const Codebook centroid_book(std::move(items));
  centroids_ = std::make_shared<const PackedItemMemory>(centroid_book,
                                                        rows_->simd_level());
}

std::vector<std::size_t> TieredItemMemory::probe(const PackedQuery& query,
                                                 ScanStats* stats) const {
  const std::size_t k = centroids_->size();
  const std::vector<Match> top = centroids_->top_k(query, nprobe_);
  if (stats != nullptr) stats->centroid_dots += k;
  std::vector<std::size_t> buckets;
  buckets.reserve(top.size());
  for (const Match& t : top) buckets.push_back(t.index);
  return buckets;
}

namespace {

void require_dim(const PackedQuery& query, std::size_t dim) {
  if (query.dim != dim) {
    throw std::invalid_argument("TieredItemMemory: query dimension mismatch");
  }
}

}  // namespace

Match TieredItemMemory::best(const PackedQuery& query,
                             ScanStats* stats) const {
  require_dim(query, dim());
  const std::vector<std::size_t> buckets = probe(query, stats);
  bool found = false;
  std::int64_t best_dot = 0;
  std::size_t best_row = 0;
  std::uint64_t visited = 0;
  for (const std::size_t c : buckets) {
    for (std::size_t i = cluster_begin_[c]; i < cluster_begin_[c + 1]; ++i) {
      const std::size_t row = member_rows_[i];
      const std::int64_t d = rows_->dot_row(row, query);
      ++visited;
      // Canonical argmax: buckets arrive in similarity order, not row
      // order, so break dot ties toward the lowest row index explicitly —
      // exactly the scalar scan's first-maximum rule.
      if (!found || d > best_dot || (d == best_dot && row < best_row)) {
        found = true;
        best_dot = d;
        best_row = row;
      }
    }
  }
  if (stats != nullptr) stats->row_dots += visited;
  if (!found) {
    // Every probed bucket was empty (possible only under degenerate
    // clusterings with nprobe < clusters). Fall back to the exact scan
    // rather than inventing an answer.
    if (stats != nullptr) stats->row_dots += rows_->size();
    return rows_->best(query);
  }
  return {best_row,
          static_cast<double>(best_dot) / static_cast<double>(dim())};
}

std::vector<Match> TieredItemMemory::above(const PackedQuery& query,
                                           double threshold,
                                           ScanStats* stats) const {
  require_dim(query, dim());
  const std::vector<std::size_t> buckets = probe(query, stats);
  const auto d_dim = static_cast<double>(dim());
  std::vector<Match> out;
  std::uint64_t visited = 0;
  for (const std::size_t c : buckets) {
    for (std::size_t i = cluster_begin_[c]; i < cluster_begin_[c + 1]; ++i) {
      const std::size_t row = member_rows_[i];
      const double s = static_cast<double>(rows_->dot_row(row, query)) / d_dim;
      ++visited;
      if (s > threshold) out.push_back({row, s});
    }
  }
  if (stats != nullptr) stats->row_dots += visited;
  std::sort(out.begin(), out.end(), match_order);
  return out;
}

std::vector<Match> TieredItemMemory::top_k(const PackedQuery& query,
                                           std::size_t k,
                                           ScanStats* stats) const {
  require_dim(query, dim());
  const std::vector<std::size_t> buckets = probe(query, stats);
  const auto d_dim = static_cast<double>(dim());
  std::vector<Match> all;
  for (const std::size_t c : buckets) {
    for (std::size_t i = cluster_begin_[c]; i < cluster_begin_[c + 1]; ++i) {
      const std::size_t row = member_rows_[i];
      all.push_back(
          {row, static_cast<double>(rows_->dot_row(row, query)) / d_dim});
    }
  }
  if (stats != nullptr) stats->row_dots += all.size();
  const std::size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                    match_order);
  all.resize(keep);
  return all;
}

PackedQuery TieredItemMemory::pack_query(const Hypervector& query) const {
  std::optional<PackedQuery> q = PackedQuery::pack(query, simd_level());
  if (!q) {
    throw std::invalid_argument(
        "TieredItemMemory: query is not bipolar/ternary (use the scalar "
        "ItemMemory path for integer bundles)");
  }
  return std::move(*q);
}

Match TieredItemMemory::best(const Hypervector& query,
                             ScanStats* stats) const {
  return best(pack_query(query), stats);
}

std::vector<Match> TieredItemMemory::above(const Hypervector& query,
                                           double threshold,
                                           ScanStats* stats) const {
  return above(pack_query(query), threshold, stats);
}

std::vector<Match> TieredItemMemory::top_k(const Hypervector& query,
                                           std::size_t k,
                                           ScanStats* stats) const {
  return top_k(pack_query(query), k, stats);
}

}  // namespace factorhd::hdc::kernels
