// ShardedItemMemory: scatter-gather scans over a row-partitioned codebook.
//
// TieredItemMemory removed the O(M) per-query wall, but one index is still
// one build, one snapshot, and one scan pool — the single-node ceiling named
// in ROADMAP item 2. This class partitions a packed codebook into N shards
// by contiguous row range, gives each shard its own (optional) tiered index,
// scatters every scan across the shards, and gathers the per-shard results
// into one globally-indexed answer:
//
//   partition:  shard s owns rows [begin_s, begin_s + size_s), a balanced
//               contiguous split (sizes differ by at most one row). Each
//               shard's row memory is a zero-copy plane adoption of the full
//               packed memory — one set of planes, N views.
//   scatter:    the shard scans run on the existing scan pool
//               (FACTORHD_SCAN_THREADS) when the codebook is large enough,
//               each worker under a ScanNestingGuard so thread counts never
//               multiply; small memories scan shards sequentially. Results
//               are independent of the worker count.
//   gather:     per-shard matches are globalized (local index + begin_s) and
//               merged under the canonical tie rules: argmax keeps the first
//               (lowest global index) maximum by reducing shards in
//               ascending order with a strict '>', and sorted surfaces merge
//               with hdc::match_order. Distinct dots always map to distinct
//               similarity doubles (dot / D with D well under 2^53), so
//               merging on the similarity field is tie-exact.
//
// Bit-identity contract: with exact shard scans (no tiers, exact() tiers, or
// the exact flag) every surface — best / above / top_k / dots and the
// blocked *_block variants — returns bit-identical results (index,
// similarity, ordering) to the unsharded PackedItemMemory scan at every
// shard count, SIMD tier, and thread count, including N > M and N not
// dividing M. tests/test_kernel_fuzz.cpp asserts this differentially across
// a shard axis; tests/test_sharded_memory.cpp pins the merge tie rules on
// adversarially tied codebooks. Tiered shards keep the tiered verification
// bound: approximation can only miss rows, never mis-rank scanned rows.
//
// best_among / above_among are intentionally absent: their contract keeps
// the caller's index order (first maximum in the *given* order), which a
// range partition cannot preserve — hdc::ItemMemory routes them to the full
// packed memory instead.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/plane.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"
#include "hdc/match.hpp"

namespace factorhd::hdc::kernels {

/// Build-time configuration of a ShardedItemMemory. The shard count is
/// clamped to [1, rows] at construction, so N > M is safe (trailing shards
/// would be empty and are dropped).
struct ShardedConfig {
  /// Shard count N; 0 = auto: the FACTORHD_SHARDS env knob (default 1).
  std::size_t shards = 0;
  /// When set, each shard builds its own TieredItemMemory over its row
  /// range (zeros in the config resolve per *shard* row count, so the
  /// auto cluster counts scale with the partition, not the full codebook).
  /// Unset shards scan exact.
  std::optional<TieredConfig> tiered = std::nullopt;

  bool operator==(const ShardedConfig&) const = default;
};

/// ShardedConfig with the shard count pre-filled from the FACTORHD_SHARDS
/// env knob (default 1 = unsharded). Read per call — not cached — so tests
/// and operators can retune between model loads.
[[nodiscard]] ShardedConfig sharded_config_from_env();

/// Row-count threshold at/above which hdc::ItemMemory's kAuto backend
/// honours an env-requested shard count (FACTORHD_SHARD_MIN_ROWS, default
/// 65536): below it the scatter-gather bookkeeping costs more than the scan.
/// Read per call, not cached.
[[nodiscard]] std::size_t sharded_auto_min_rows();

class ShardedItemMemory {
 public:
  /// Partitions `rows` into the configured shard count.
  /// \param rows Packed codebook rows (non-null); shared, immutable.
  /// \param config Shard count + optional per-shard tier configuration.
  /// \param snapshots Optional prebuilt per-shard tier indexes (the FTS1
  ///   load path, see load_sharded_index()): either empty or exactly one
  ///   entry per resolved shard, in shard order. Each offered snapshot is
  ///   adopted only after its geometry and row planes are verified
  ///   bit-identical to the shard's slice of `rows`; mismatches fall back
  ///   to a fresh build (when `config.tiered` is set) and are counted in
  ///   snapshots_rejected().
  /// \throws std::invalid_argument When `rows` is null or `snapshots` is
  ///   non-empty with the wrong length.
  explicit ShardedItemMemory(
      std::shared_ptr<const PackedItemMemory> rows, ShardedConfig config = {},
      std::span<const std::shared_ptr<const TieredItemMemory>> snapshots = {});

  [[nodiscard]] std::size_t size() const noexcept { return full_->size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return full_->dim(); }
  /// \return Resolved shard count N in [1, size()].
  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  /// \return First global row of shard `s`. Precondition: s < shards().
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const noexcept {
    return shards_[s].begin;
  }
  /// \return Row count of shard `s`. Precondition: s < shards().
  [[nodiscard]] std::size_t shard_size(std::size_t s) const noexcept {
    return shards_[s].rows->size();
  }
  /// \return Shard `s`'s packed row view (rows are shard-local 0-based).
  [[nodiscard]] const PackedItemMemory& shard_rows(std::size_t s)
      const noexcept {
    return *shards_[s].rows;
  }
  /// \return Shard `s`'s tier index, or nullptr when the shard scans exact.
  [[nodiscard]] const TieredItemMemory* shard_tier(std::size_t s)
      const noexcept {
    return shards_[s].tier.get();
  }
  /// \return Shared handle to shard `s`'s tier (the snapshot writer's view).
  [[nodiscard]] std::shared_ptr<const TieredItemMemory> shared_shard_tier(
      std::size_t s) const noexcept {
    return shards_[s].tier;
  }
  /// \return True when every shard carries a tier index.
  [[nodiscard]] bool tiered_shards() const noexcept { return tiered_; }
  /// \return True when every scan is exact: no shard tiers, or every shard
  ///   tier probes all of its clusters.
  [[nodiscard]] bool exact() const noexcept { return exact_; }
  /// \return The SIMD tier all shards scan at (the full memory's tier).
  [[nodiscard]] SimdLevel simd_level() const noexcept {
    return full_->simd_level();
  }
  /// \return The unpartitioned packed memory (the best_among/among route).
  [[nodiscard]] const PackedItemMemory& rows() const noexcept {
    return *full_;
  }
  /// \return Shared handle to the unpartitioned packed memory.
  [[nodiscard]] std::shared_ptr<const PackedItemMemory> shared_rows()
      const noexcept {
    return full_;
  }
  /// \return Offered per-shard snapshots adopted / rejected at construction.
  [[nodiscard]] std::size_t snapshots_adopted() const noexcept {
    return snapshots_adopted_;
  }
  [[nodiscard]] std::size_t snapshots_rejected() const noexcept {
    return snapshots_rejected_;
  }

  // --- Per-shard scan accounting -------------------------------------------
  // Every scatter pass charges each shard's relaxed-atomic counters with the
  // work it did there (centroid dots + row dots on tiered shards, the full
  // slice on exact ones) — the observability surface that makes hot shards
  // visible (service::Metrics exports it). Mutable bookkeeping, never
  // synchronizing: recording is wait-free and results are unaffected.

  /// \return Scatter passes over each shard since construction (one entry
  ///   per shard; blocked scans count one pass per shard per block).
  [[nodiscard]] std::vector<std::uint64_t> shard_scans() const;
  /// \return Similarity measurements charged to each shard since
  ///   construction (one entry per shard).
  [[nodiscard]] std::vector<std::uint64_t> shard_rows_scanned() const;

  // --- Scatter-gather scans ------------------------------------------------
  // `exact` forces the per-shard packed full scan even on tiered shards
  // (hdc::ScanMode::kExact); stats (when non-null) accumulate the summed
  // per-shard costs. All methods throw std::invalid_argument on a query
  // dimension mismatch.

  /// Argmax over all shards; first (lowest global index) maximum wins.
  [[nodiscard]] Match best(const PackedQuery& query, bool exact = false,
                           TieredItemMemory::ScanStats* stats = nullptr) const;

  /// Matches above `threshold` across all shards, sorted by hdc::match_order.
  [[nodiscard]] std::vector<Match> above(
      const PackedQuery& query, double threshold, bool exact = false,
      TieredItemMemory::ScanStats* stats = nullptr) const;

  /// Global top-k across all shards, sorted by hdc::match_order; k is
  /// clamped to size(). Sound because any global top-k row is in its own
  /// shard's local top-k.
  [[nodiscard]] std::vector<Match> top_k(
      const PackedQuery& query, std::size_t k, bool exact = false,
      TieredItemMemory::ScanStats* stats = nullptr) const;

  /// Raw integer dots with every row, globally indexed (always exact).
  /// \param out Destination; `out.size()` must equal size().
  void dots(const PackedQuery& query, std::span<std::int64_t> out) const;

  // --- Blocked scatter-gather (the micro-batch hot path) -------------------
  // Exact blocks run each shard's QueryBlockKernels pass (planes stream once
  // per shard row block for the whole query block); tiered blocks scan per
  // query per shard. Results are bit-identical to the per-query overloads.

  /// best() for every query of the block, in query order.
  [[nodiscard]] std::vector<Match> best_block(
      std::span<const PackedQuery> queries, bool exact = false) const;

  /// top_k() for every query of the block; k clamped to size().
  [[nodiscard]] std::vector<std::vector<Match>> top_k_block(
      std::span<const PackedQuery> queries, std::size_t k,
      bool exact = false) const;

  /// dots() for every query of the block, query-major:
  /// out[q * size() + row]. `out.size()` must equal queries.size() * size().
  void dots_block(std::span<const PackedQuery> queries,
                  std::span<std::int64_t> out) const;

 private:
  /// One contiguous row-range partition.
  struct Shard {
    std::size_t begin = 0;
    std::shared_ptr<const PackedItemMemory> rows;  ///< zero-copy slice view
    std::shared_ptr<const TieredItemMemory> tier;  ///< null = exact shard
  };

  /// Runs `fn(shard_index)` for every shard — in ascending order when the
  /// scan is small or nested, else partitioned over the scan pool in fixed
  /// contiguous shard ranges (deterministic: the partition depends only on
  /// shard and worker counts, never on timing). `fn` must write only
  /// shard-indexed slots.
  template <typename Fn>
  void for_each_shard(Fn&& fn) const;
  /// Worker count a scatter pass would use right now (1 = sequential).
  [[nodiscard]] std::size_t scatter_workers() const noexcept;
  void require_query(const PackedQuery& query) const;
  /// Charges shard `s` with one scatter pass of `rows` measurements.
  void note_shard_scan(std::size_t s, std::uint64_t rows) const noexcept {
    shard_scans_[s].fetch_add(1, std::memory_order_relaxed);
    shard_rows_scanned_[s].fetch_add(rows, std::memory_order_relaxed);
  }

  std::shared_ptr<const PackedItemMemory> full_;
  std::vector<Shard> shards_;
  bool tiered_ = false;
  bool exact_ = true;
  std::size_t snapshots_adopted_ = 0;
  std::size_t snapshots_rejected_ = 0;
  /// Per-shard scan accounting (see shard_scans()); sized shards() at
  /// construction, address-stable, mutated relaxed from const scans.
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> shard_scans_;
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> shard_rows_scanned_;
};

// --- Per-shard FTS1 snapshots ----------------------------------------------
// A sharded index persists as one FTS1 file per tiered shard, named
// sharded_shard_path(prefix, s) = "<prefix>.shard<s>" — each file is an
// ordinary tiered snapshot (digest-verified, mmap-loadable), so shard files
// can be built, copied, and verified independently.

/// \return Path of shard `shard`'s snapshot under `path_prefix`.
[[nodiscard]] std::string sharded_shard_path(const std::string& path_prefix,
                                             std::size_t shard);

/// Writes one FTS1 snapshot per shard of `memory` (overwrites).
/// \throws std::invalid_argument When `memory` has untiered shards (exact
///   shards have no index to persist).
/// \throws std::runtime_error When a file cannot be created or written.
void save_sharded_index(const std::string& path_prefix,
                        const ShardedItemMemory& memory);

/// Loads `shards` per-shard snapshots saved by save_sharded_index(), in
/// shard order — the `snapshots` argument of the ShardedItemMemory
/// constructor, which verifies each against the codebook before adopting.
/// \param level SIMD tier for the loaded memories (default: dispatched).
/// \throws std::runtime_error On any missing, truncated, or corrupt file.
[[nodiscard]] std::vector<std::shared_ptr<const TieredItemMemory>>
load_sharded_index(const std::string& path_prefix, std::size_t shards,
                   std::optional<SimdLevel> level = std::nullopt);

}  // namespace factorhd::hdc::kernels
