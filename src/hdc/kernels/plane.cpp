#include "hdc/kernels/plane.hpp"

#include <bit>

namespace factorhd::hdc::kernels {

std::optional<PackedQuery> PackedQuery::pack(const Hypervector& v) {
  return pack(v, dispatched_simd_level());
}

std::optional<PackedQuery> PackedQuery::pack(const Hypervector& v,
                                             SimdLevel level) {
  const std::size_t dim = v.dim();
  if (dim == 0) return std::nullopt;
  PackedQuery q;
  q.dim = dim;
  const std::size_t words = plane_words(dim);
  q.sign.resize(words);
  q.nonzero.resize(words);
  // The tier's fused packer: comparison masks OR-ed into register-resident
  // words (no per-component branches), bailing out of integer bundles on the
  // first out-of-range component. Every tier emits identical planes.
  bool any_zero = false;
  if (!dot_kernels(level).pack_planes(v.data(), dim, q.sign.data(),
                                      q.nonzero.data(), &any_zero)) {
    return std::nullopt;  // integer bundle: scalar path
  }
  q.bipolar = !any_zero;
  return q;
}

std::int64_t dot_bipolar_bipolar(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t words, std::size_t dim) noexcept {
  // Canonical tails XOR to zero, so no trailing mask is needed.
  std::int64_t hamming = 0;
  for (std::size_t w = 0; w < words; ++w) {
    hamming += std::popcount(a[w] ^ b[w]);
  }
  return static_cast<std::int64_t>(dim) - 2 * hamming;
}

std::int64_t dot_bipolar_ternary(const std::uint64_t* bip,
                                 const std::uint64_t* nz,
                                 const std::uint64_t* sg,
                                 std::size_t words) noexcept {
  std::int64_t acc = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t differ = (bip[w] ^ sg[w]) & nz[w];
    // dot = |support| - 2 * disagreements over the support.
    acc += std::popcount(nz[w]) - 2 * std::popcount(differ);
  }
  return acc;
}

std::int64_t dot_ternary_ternary(const std::uint64_t* a_nz,
                                 const std::uint64_t* a_sg,
                                 const std::uint64_t* b_nz,
                                 const std::uint64_t* b_sg,
                                 std::size_t words) noexcept {
  std::int64_t acc = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t active = a_nz[w] & b_nz[w];
    const std::uint64_t differ = (a_sg[w] ^ b_sg[w]) & active;
    acc += std::popcount(active) - 2 * std::popcount(differ);
  }
  return acc;
}

}  // namespace factorhd::hdc::kernels
