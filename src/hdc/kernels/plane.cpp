#include "hdc/kernels/plane.hpp"

#include <bit>

namespace factorhd::hdc::kernels {

std::optional<PackedQuery> PackedQuery::pack(const Hypervector& v) {
  const std::size_t dim = v.dim();
  if (dim == 0) return std::nullopt;
  PackedQuery q;
  q.dim = dim;
  const std::size_t words = plane_words(dim);
  q.sign.assign(words, 0);
  q.nonzero.assign(words, 0);
  const auto* p = v.data();
  bool any_zero = false;
  // Word-blocked and branchless in the per-component work: on random
  // bipolar/ternary data, per-component `if (c > 0)`-style bit setting
  // mispredicts about half the time and dominates the whole scan; compare
  // results OR-ed into register-resident words cost a couple of cycles per
  // dimension instead. The alphabet check stays an early exit — it never
  // fires for eligible queries (perfectly predicted) and bails out of
  // integer bundles on the first out-of-range component.
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w * kWordBits;
    const std::size_t n = std::min(kWordBits, dim - base);
    std::uint64_t nz = 0;
    std::uint64_t sg = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t c = p[base + i];
      if (c > 1 || c < -1) return std::nullopt;  // integer bundle: scalar path
      nz |= static_cast<std::uint64_t>(c != 0) << i;
      sg |= static_cast<std::uint64_t>(c > 0) << i;
    }
    q.nonzero[w] = nz;
    q.sign[w] = sg;
    const std::uint64_t full =
        n == kWordBits ? ~0ULL : (1ULL << n) - 1;
    any_zero |= (nz != full);
  }
  q.bipolar = !any_zero;
  return q;
}

std::int64_t dot_bipolar_bipolar(const std::uint64_t* a, const std::uint64_t* b,
                                 std::size_t words, std::size_t dim) noexcept {
  // Canonical tails XOR to zero, so no trailing mask is needed.
  std::int64_t hamming = 0;
  for (std::size_t w = 0; w < words; ++w) {
    hamming += std::popcount(a[w] ^ b[w]);
  }
  return static_cast<std::int64_t>(dim) - 2 * hamming;
}

std::int64_t dot_bipolar_ternary(const std::uint64_t* bip,
                                 const std::uint64_t* nz,
                                 const std::uint64_t* sg,
                                 std::size_t words) noexcept {
  std::int64_t acc = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t differ = (bip[w] ^ sg[w]) & nz[w];
    // dot = |support| - 2 * disagreements over the support.
    acc += std::popcount(nz[w]) - 2 * std::popcount(differ);
  }
  return acc;
}

std::int64_t dot_ternary_ternary(const std::uint64_t* a_nz,
                                 const std::uint64_t* a_sg,
                                 const std::uint64_t* b_nz,
                                 const std::uint64_t* b_sg,
                                 std::size_t words) noexcept {
  std::int64_t acc = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t active = a_nz[w] & b_nz[w];
    const std::uint64_t differ = (a_sg[w] ^ b_sg[w]) & active;
    acc += std::popcount(active) - 2 * std::popcount(differ);
  }
  return acc;
}

}  // namespace factorhd::hdc::kernels
