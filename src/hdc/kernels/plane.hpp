// Word-plane primitives of the packed similarity kernels.
//
// A "plane" is a dimension-major bitset: bit i of word w carries dimension
// 64*w + i of a hypervector. Bipolar HVs need one plane (the sign plane,
// +1 -> 1); ternary HVs need two (nonzero + sign, matching hdc/packed.hpp).
// Every dot product over the {-1,0,+1} alphabets then reduces to a handful
// of XOR/AND + popcount word operations, processing 64 dimensions per
// instruction — the bit-level storage model behind the paper's §IV-A
// fair-comparison rule, promoted here from per-vector codecs
// (PackedBipolar/PackedTernary) to whole-codebook scans.
//
// Invariant shared by all planes: bits at positions >= dim in the last word
// are zero ("canonical tail"), so popcounts never need a trailing mask.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "hdc/hypervector.hpp"
#include "hdc/kernels/simd.hpp"

namespace factorhd::hdc::kernels {

/// Bits per plane word.
inline constexpr std::size_t kWordBits = 64;

/// \param dim Hypervector dimension.
/// \return Number of 64-bit words needed to hold `dim` bits.
[[nodiscard]] constexpr std::size_t plane_words(std::size_t dim) noexcept {
  return (dim + kWordBits - 1) / kWordBits;
}

/// A query packed into word planes, classified by alphabet.
///
/// `nonzero` is filled for ternary queries only; bipolar queries are fully
/// described by `sign` (every dimension is nonzero). Both planes keep the
/// canonical-tail invariant.
struct PackedQuery {
  std::size_t dim = 0;
  /// True when every component is ±1 (enables the XOR-only fast path).
  bool bipolar = false;
  std::vector<std::uint64_t> sign;     ///< bit = 1 where component is +1
  std::vector<std::uint64_t> nonzero;  ///< ternary only: bit = 1 where != 0

  /// Packs `v` when its alphabet admits plane arithmetic, using the
  /// runtime-dispatched SIMD tier (see simd.hpp).
  /// \param v Query hypervector of any alphabet.
  /// \return The packed planes, or std::nullopt when `v` has a component
  ///   outside {-1, 0, +1} (integer bundles must use the scalar path) or is
  ///   empty.
  [[nodiscard]] static std::optional<PackedQuery> pack(const Hypervector& v);

  /// Packs with an explicit SIMD tier. Every tier produces identical planes;
  /// the parameter only selects the instruction set doing the packing.
  /// \param v Query hypervector of any alphabet.
  /// \param level SIMD tier to pack with (must be available on this CPU).
  /// \return As pack(v).
  [[nodiscard]] static std::optional<PackedQuery> pack(const Hypervector& v,
                                                       SimdLevel level);
};

/// Dot product of two bipolar sign planes.
/// \param a,b Sign planes with canonical tails.
/// \param words Plane length in words.
/// \param dim Shared dimension (needed to recover dot = dim - 2 * hamming).
/// \return Exact integer dot product in [-dim, dim].
[[nodiscard]] std::int64_t dot_bipolar_bipolar(const std::uint64_t* a,
                                               const std::uint64_t* b,
                                               std::size_t words,
                                               std::size_t dim) noexcept;

/// Dot product of a bipolar sign plane with a ternary (nonzero, sign) pair.
/// \param bip Bipolar sign plane.
/// \param nz,sg Ternary nonzero and sign planes.
/// \param words Plane length in words.
/// \return Exact integer dot product (agreements minus disagreements over
///   the ternary support).
[[nodiscard]] std::int64_t dot_bipolar_ternary(const std::uint64_t* bip,
                                               const std::uint64_t* nz,
                                               const std::uint64_t* sg,
                                               std::size_t words) noexcept;

/// Dot product of two ternary (nonzero, sign) plane pairs.
/// \param a_nz,a_sg First operand's planes.
/// \param b_nz,b_sg Second operand's planes.
/// \param words Plane length in words.
/// \return Exact integer dot product over the shared support.
[[nodiscard]] std::int64_t dot_ternary_ternary(const std::uint64_t* a_nz,
                                               const std::uint64_t* a_sg,
                                               const std::uint64_t* b_nz,
                                               const std::uint64_t* b_sg,
                                               std::size_t words) noexcept;

}  // namespace factorhd::hdc::kernels
