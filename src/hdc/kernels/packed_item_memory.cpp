#include "hdc/kernels/packed_item_memory.hpp"

#include <algorithm>
#include <stdexcept>

namespace factorhd::hdc::kernels {

namespace {

enum class Alphabet { kBipolar, kTernary, kOther };

Alphabet classify(const Hypervector& v) noexcept {
  bool any_zero = false;
  const auto* p = v.data();
  for (std::size_t i = 0, n = v.dim(); i < n; ++i) {
    if (p[i] > 1 || p[i] < -1) return Alphabet::kOther;
    any_zero |= (p[i] == 0);
  }
  return any_zero ? Alphabet::kTernary : Alphabet::kBipolar;
}

}  // namespace

bool PackedItemMemory::packable(const Codebook& codebook) noexcept {
  if (codebook.size() == 0 || codebook.dim() == 0) return false;
  for (const Hypervector& item : codebook.items()) {
    if (classify(item) == Alphabet::kOther) return false;
  }
  return true;
}

PackedItemMemory::PackedItemMemory(const Codebook& codebook)
    : size_(codebook.size()),
      dim_(codebook.dim()),
      words_(plane_words(codebook.dim())) {
  if (size_ == 0 || dim_ == 0) {
    throw std::invalid_argument("PackedItemMemory: empty codebook");
  }
  layout_ = Layout::kBipolar;
  for (const Hypervector& item : codebook.items()) {
    switch (classify(item)) {
      case Alphabet::kBipolar:
        break;
      case Alphabet::kTernary:
        layout_ = Layout::kTernary;
        break;
      case Alphabet::kOther:
        throw std::invalid_argument(
            "PackedItemMemory: codebook entry outside {-1,0,+1}");
    }
  }

  sign_.assign(size_ * words_, 0);
  if (layout_ == Layout::kTernary) nonzero_.assign(size_ * words_, 0);
  for (std::size_t row = 0; row < size_; ++row) {
    const auto* p = codebook.item(row).data();
    std::uint64_t* rs = &sign_[row * words_];
    std::uint64_t* rnz =
        layout_ == Layout::kTernary ? &nonzero_[row * words_] : nullptr;
    for (std::size_t i = 0; i < dim_; ++i) {
      if (p[i] == 0) continue;
      if (rnz != nullptr) rnz[i / kWordBits] |= (1ULL << (i % kWordBits));
      if (p[i] > 0) rs[i / kWordBits] |= (1ULL << (i % kWordBits));
    }
  }
}

std::size_t PackedItemMemory::storage_bits() const noexcept {
  return (layout_ == Layout::kTernary ? 2 : 1) * size_ * dim_;
}

std::int64_t PackedItemMemory::row_dot(std::size_t row,
                                       const PackedQuery& query) const noexcept {
  const std::uint64_t* rs = &sign_[row * words_];
  if (layout_ == Layout::kBipolar) {
    if (query.bipolar) {
      return dot_bipolar_bipolar(rs, query.sign.data(), words_, dim_);
    }
    return dot_bipolar_ternary(rs, query.nonzero.data(), query.sign.data(),
                               words_);
  }
  const std::uint64_t* rnz = &nonzero_[row * words_];
  if (query.bipolar) {
    return dot_bipolar_ternary(query.sign.data(), rnz, rs, words_);
  }
  return dot_ternary_ternary(rnz, rs, query.nonzero.data(), query.sign.data(),
                             words_);
}

void PackedItemMemory::require_query(const PackedQuery& query) const {
  if (query.dim != dim_) {
    throw std::invalid_argument("PackedItemMemory: query dimension mismatch");
  }
}

PackedQuery PackedItemMemory::pack_query(const Hypervector& query) const {
  std::optional<PackedQuery> q = PackedQuery::pack(query);
  if (!q) {
    throw std::invalid_argument(
        "PackedItemMemory: query is not bipolar/ternary (use the scalar "
        "ItemMemory path for integer bundles)");
  }
  return std::move(*q);
}

Match PackedItemMemory::best(const PackedQuery& query) const {
  require_query(query);
  // Strict > keeps the first (lowest-index) maximum, exactly like the scalar
  // argmax loop; integer dots make the comparison tie-exact.
  std::int64_t best_dot = row_dot(0, query);
  std::size_t best_row = 0;
  for (std::size_t row = 1; row < size_; ++row) {
    const std::int64_t d = row_dot(row, query);
    if (d > best_dot) {
      best_dot = d;
      best_row = row;
    }
  }
  return {best_row, to_similarity(best_dot)};
}

Match PackedItemMemory::best_among(const PackedQuery& query,
                                   std::span<const std::size_t> indices) const {
  require_query(query);
  if (indices.empty()) {
    throw std::invalid_argument("PackedItemMemory::best_among: empty index set");
  }
  Match m{indices[0], 0.0};
  std::int64_t best_dot = 0;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t row = indices[k];
    if (row >= size_) {
      throw std::out_of_range("PackedItemMemory::best_among: index out of range");
    }
    const std::int64_t d = row_dot(row, query);
    if (k == 0 || d > best_dot) {
      best_dot = d;
      m.index = row;
    }
  }
  m.similarity = to_similarity(best_dot);
  return m;
}

std::vector<Match> PackedItemMemory::above(const PackedQuery& query,
                                           double threshold) const {
  require_query(query);
  std::vector<Match> out;
  for (std::size_t row = 0; row < size_; ++row) {
    const double s = to_similarity(row_dot(row, query));
    if (s > threshold) out.push_back({row, s});
  }
  std::sort(out.begin(), out.end(), match_order);
  return out;
}

std::vector<Match> PackedItemMemory::above_among(
    const PackedQuery& query, double threshold,
    std::span<const std::size_t> indices) const {
  require_query(query);
  std::vector<Match> out;
  for (std::size_t row : indices) {
    if (row >= size_) {
      throw std::out_of_range(
          "PackedItemMemory::above_among: index out of range");
    }
    const double s = to_similarity(row_dot(row, query));
    if (s > threshold) out.push_back({row, s});
  }
  std::sort(out.begin(), out.end(), match_order);
  return out;
}

std::vector<Match> PackedItemMemory::top_k(const PackedQuery& query,
                                           std::size_t k) const {
  require_query(query);
  std::vector<Match> all;
  all.reserve(size_);
  for (std::size_t row = 0; row < size_; ++row) {
    all.push_back({row, to_similarity(row_dot(row, query))});
  }
  const std::size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                    match_order);
  all.resize(keep);
  return all;
}

void PackedItemMemory::dots(const PackedQuery& query,
                            std::span<std::int64_t> out) const {
  require_query(query);
  if (out.size() != size_) {
    throw std::invalid_argument("PackedItemMemory::dots: output size mismatch");
  }
  for (std::size_t row = 0; row < size_; ++row) out[row] = row_dot(row, query);
}

Match PackedItemMemory::best(const Hypervector& query) const {
  return best(pack_query(query));
}

Match PackedItemMemory::best_among(const Hypervector& query,
                                   std::span<const std::size_t> indices) const {
  return best_among(pack_query(query), indices);
}

std::vector<Match> PackedItemMemory::above(const Hypervector& query,
                                           double threshold) const {
  return above(pack_query(query), threshold);
}

std::vector<Match> PackedItemMemory::above_among(
    const Hypervector& query, double threshold,
    std::span<const std::size_t> indices) const {
  return above_among(pack_query(query), threshold, indices);
}

std::vector<Match> PackedItemMemory::top_k(const Hypervector& query,
                                           std::size_t k) const {
  return top_k(pack_query(query), k);
}

void PackedItemMemory::dots(const Hypervector& query,
                            std::span<std::int64_t> out) const {
  dots(pack_query(query), out);
}

}  // namespace factorhd::hdc::kernels
