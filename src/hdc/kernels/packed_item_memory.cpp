#include "hdc/kernels/packed_item_memory.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/env.hpp"

namespace factorhd::hdc::kernels {

namespace {

// A scan is worth threading only when its sequential time comfortably
// exceeds the std::thread spawn+join overhead (tens of microseconds). That
// break-even point depends on the SIMD tier: the scalar word loop retires a
// few ns per plane word, the vector tiers 10-30x less, so their threshold
// sits 16x higher (measured on AVX-512: a 2^16-word scan runs ~15 us
// sequentially — well below spawn cost). The taxonomy codebooks of the
// paper experiments (M <= a few hundred, D <= 8192) stay sequential;
// million-entry codebooks partition across the pool.
constexpr std::size_t parallel_scan_min_words(SimdLevel level) noexcept {
  return level == SimdLevel::kScalarWords ? (std::size_t{1} << 16)
                                          : (std::size_t{1} << 20);
}

// Depth of outer worker pools on this thread (see ScanNestingGuard).
thread_local int scan_nesting_depth = 0;

enum class Alphabet { kBipolar, kTernary, kOther };

}  // namespace

// Worker-pool width: FACTORHD_SCAN_THREADS when set (1 disables threading),
// else min(hardware threads, 8) — a small pool, matching the BatchFactorizer
// idiom of per-call spawn+join std::threads. Registered in util::env_knobs().
std::size_t scan_pool_width() {
  static const std::size_t width = [] {
    const std::size_t env = util::env_size_t("FACTORHD_SCAN_THREADS", 0, 0, 256);
    if (env > 0) return env;
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    return std::min<std::size_t>(hw, 8);
  }();
  return width;
}

ScanNestingGuard::ScanNestingGuard() noexcept { ++scan_nesting_depth; }
ScanNestingGuard::~ScanNestingGuard() { --scan_nesting_depth; }

bool scan_nesting_active() noexcept { return scan_nesting_depth > 0; }

namespace {

Alphabet classify(const Hypervector& v) noexcept {
  bool any_zero = false;
  const auto* p = v.data();
  for (std::size_t i = 0, n = v.dim(); i < n; ++i) {
    if (p[i] > 1 || p[i] < -1) return Alphabet::kOther;
    any_zero |= (p[i] == 0);
  }
  return any_zero ? Alphabet::kTernary : Alphabet::kBipolar;
}

}  // namespace

bool PackedItemMemory::packable(const Codebook& codebook) noexcept {
  if (codebook.size() == 0 || codebook.dim() == 0) return false;
  for (const Hypervector& item : codebook.items()) {
    if (classify(item) == Alphabet::kOther) return false;
  }
  return true;
}

PackedItemMemory::PackedItemMemory(const Codebook& codebook,
                                   std::optional<SimdLevel> level)
    : size_(codebook.size()),
      dim_(codebook.dim()),
      words_(plane_words(codebook.dim())),
      level_(level.value_or(dispatched_simd_level())),
      kernels_(&dot_kernels(level_)) {
  if (size_ == 0 || dim_ == 0) {
    throw std::invalid_argument("PackedItemMemory: empty codebook");
  }
  layout_ = Layout::kBipolar;
  for (const Hypervector& item : codebook.items()) {
    switch (classify(item)) {
      case Alphabet::kBipolar:
        break;
      case Alphabet::kTernary:
        layout_ = Layout::kTernary;
        break;
      case Alphabet::kOther:
        throw std::invalid_argument(
            "PackedItemMemory: codebook entry outside {-1,0,+1}");
    }
  }

  owned_sign_.assign(size_ * words_, 0);
  if (layout_ == Layout::kTernary) owned_nonzero_.assign(size_ * words_, 0);
  for (std::size_t row = 0; row < size_; ++row) {
    const auto* p = codebook.item(row).data();
    std::uint64_t* rs = &owned_sign_[row * words_];
    std::uint64_t* rnz =
        layout_ == Layout::kTernary ? &owned_nonzero_[row * words_] : nullptr;
    for (std::size_t i = 0; i < dim_; ++i) {
      if (p[i] == 0) continue;
      if (rnz != nullptr) rnz[i / kWordBits] |= (1ULL << (i % kWordBits));
      if (p[i] > 0) rs[i / kWordBits] |= (1ULL << (i % kWordBits));
    }
  }
  sign_ = owned_sign_.data();
  if (layout_ == Layout::kTernary) nonzero_ = owned_nonzero_.data();
}

PackedItemMemory::PackedItemMemory(Layout layout, std::size_t dim,
                                   std::size_t size, const std::uint64_t* sign,
                                   const std::uint64_t* nonzero,
                                   std::shared_ptr<const void> keepalive,
                                   std::optional<SimdLevel> level)
    : size_(size),
      dim_(dim),
      words_(plane_words(dim)),
      level_(level.value_or(dispatched_simd_level())),
      kernels_(&dot_kernels(level_)),
      layout_(layout),
      sign_(sign),
      nonzero_(nonzero),
      keepalive_(std::move(keepalive)) {
  if (size_ == 0 || dim_ == 0) {
    throw std::invalid_argument("PackedItemMemory: empty plane adoption");
  }
  if (sign_ == nullptr) {
    throw std::invalid_argument("PackedItemMemory: null sign plane");
  }
  if ((layout_ == Layout::kTernary) != (nonzero_ != nullptr)) {
    throw std::invalid_argument(
        "PackedItemMemory: nonzero plane inconsistent with layout");
  }
}

std::size_t PackedItemMemory::storage_bits() const noexcept {
  return (layout_ == Layout::kTernary ? 2 : 1) * size_ * dim_;
}

std::int64_t PackedItemMemory::row_dot(std::size_t row,
                                       const PackedQuery& query) const noexcept {
  const std::uint64_t* rs = &sign_[row * words_];
  if (layout_ == Layout::kBipolar) {
    if (query.bipolar) {
      return kernels_->bipolar_bipolar(rs, query.sign.data(), words_, dim_);
    }
    return kernels_->bipolar_ternary(rs, query.nonzero.data(),
                                     query.sign.data(), words_);
  }
  const std::uint64_t* rnz = &nonzero_[row * words_];
  if (query.bipolar) {
    return kernels_->bipolar_ternary(query.sign.data(), rnz, rs, words_);
  }
  return kernels_->ternary_ternary(rnz, rs, query.nonzero.data(),
                                   query.sign.data(), words_);
}

std::size_t PackedItemMemory::scan_workers() const noexcept {
  if (scan_nesting_depth > 0) return 1;  // already inside an outer pool
  if (size_ * words_ < parallel_scan_min_words(level_)) return 1;
  return std::min(scan_pool_width(), size_);
}

void PackedItemMemory::compute_dots(const PackedQuery& query,
                                    std::span<std::int64_t> out) const {
  const std::size_t workers = scan_workers();
  if (workers <= 1) {
    for (std::size_t row = 0; row < size_; ++row) {
      out[row] = row_dot(row, query);
    }
    return;
  }
  // Contiguous fixed row blocks, one per worker; every worker writes a
  // disjoint slice of `out`, so the result is byte-identical to the
  // sequential loop for any pool width. Ceil division can leave fewer
  // non-empty blocks than workers — stop at size_ rather than spawn idle
  // threads.
  const std::size_t chunk = (size_ + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (std::size_t begin = 0; begin < size_; begin += chunk) {
      const std::size_t end = std::min(size_, begin + chunk);
      pool.emplace_back([this, &query, out, begin, end] {
        for (std::size_t row = begin; row < end; ++row) {
          out[row] = row_dot(row, query);
        }
      });
    }
  } catch (...) {
    // A failed spawn (thread-limit pressure) must not let the vector
    // destructor run on joinable threads (std::terminate); join what
    // started, then propagate.
    for (auto& t : pool) t.join();
    throw;
  }
  for (auto& t : pool) t.join();
}

void PackedItemMemory::require_query(const PackedQuery& query) const {
  if (query.dim != dim_) {
    throw std::invalid_argument("PackedItemMemory: query dimension mismatch");
  }
}

PackedQuery PackedItemMemory::pack_query(const Hypervector& query) const {
  std::optional<PackedQuery> q = PackedQuery::pack(query, level_);
  if (!q) {
    throw std::invalid_argument(
        "PackedItemMemory: query is not bipolar/ternary (use the scalar "
        "ItemMemory path for integer bundles)");
  }
  return std::move(*q);
}

Match PackedItemMemory::best(const PackedQuery& query) const {
  require_query(query);
  // Strict > keeps the first (lowest-index) maximum, exactly like the scalar
  // argmax loop; integer dots make the comparison tie-exact.
  if (scan_workers() > 1) {
    // Parallel path: materialize the dots (disjoint slices per worker), then
    // reduce sequentially in row order — same argmax, any thread count.
    std::vector<std::int64_t> all(size_);
    compute_dots(query, all);
    std::int64_t best_dot = all[0];
    std::size_t best_row = 0;
    for (std::size_t row = 1; row < size_; ++row) {
      if (all[row] > best_dot) {
        best_dot = all[row];
        best_row = row;
      }
    }
    return {best_row, to_similarity(best_dot)};
  }
  std::int64_t best_dot = row_dot(0, query);
  std::size_t best_row = 0;
  for (std::size_t row = 1; row < size_; ++row) {
    const std::int64_t d = row_dot(row, query);
    if (d > best_dot) {
      best_dot = d;
      best_row = row;
    }
  }
  return {best_row, to_similarity(best_dot)};
}

Match PackedItemMemory::best_among(const PackedQuery& query,
                                   std::span<const std::size_t> indices) const {
  require_query(query);
  if (indices.empty()) {
    throw std::invalid_argument("PackedItemMemory::best_among: empty index set");
  }
  Match m{indices[0], 0.0};
  std::int64_t best_dot = 0;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t row = indices[k];
    if (row >= size_) {
      throw std::out_of_range("PackedItemMemory::best_among: index out of range");
    }
    const std::int64_t d = row_dot(row, query);
    if (k == 0 || d > best_dot) {
      best_dot = d;
      m.index = row;
    }
  }
  m.similarity = to_similarity(best_dot);
  return m;
}

std::vector<Match> PackedItemMemory::above(const PackedQuery& query,
                                           double threshold) const {
  require_query(query);
  std::vector<Match> out;
  if (scan_workers() > 1) {
    std::vector<std::int64_t> ds(size_);
    compute_dots(query, ds);
    for (std::size_t row = 0; row < size_; ++row) {
      const double s = to_similarity(ds[row]);
      if (s > threshold) out.push_back({row, s});
    }
  } else {
    for (std::size_t row = 0; row < size_; ++row) {
      const double s = to_similarity(row_dot(row, query));
      if (s > threshold) out.push_back({row, s});
    }
  }
  std::sort(out.begin(), out.end(), match_order);
  return out;
}

std::vector<Match> PackedItemMemory::above_among(
    const PackedQuery& query, double threshold,
    std::span<const std::size_t> indices) const {
  require_query(query);
  std::vector<Match> out;
  for (std::size_t row : indices) {
    if (row >= size_) {
      throw std::out_of_range(
          "PackedItemMemory::above_among: index out of range");
    }
    const double s = to_similarity(row_dot(row, query));
    if (s > threshold) out.push_back({row, s});
  }
  std::sort(out.begin(), out.end(), match_order);
  return out;
}

std::vector<Match> PackedItemMemory::top_k(const PackedQuery& query,
                                           std::size_t k) const {
  require_query(query);
  if (k == 0) return {};  // don't pay a full scan for an empty answer
  std::vector<std::int64_t> ds(size_);
  compute_dots(query, ds);
  std::vector<Match> all;
  all.reserve(size_);
  for (std::size_t row = 0; row < size_; ++row) {
    all.push_back({row, to_similarity(ds[row])});
  }
  const std::size_t keep = std::min(k, all.size());
  std::partial_sort(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep), all.end(),
                    match_order);
  all.resize(keep);
  return all;
}

void PackedItemMemory::dots(const PackedQuery& query,
                            std::span<std::int64_t> out) const {
  require_query(query);
  if (out.size() != size_) {
    throw std::invalid_argument("PackedItemMemory::dots: output size mismatch");
  }
  compute_dots(query, out);
}

namespace {

// Rows per blocked-scan chunk: bounds the per-chunk dots scratch to
// queries * 2 KiB while leaving the QueryBlockKernels register tiles plenty
// of rows to amortize each query visit over.
constexpr std::size_t kBlockChunkRows = 256;

}  // namespace

PackedItemMemory::BlockView PackedItemMemory::make_block_view(
    std::span<const PackedQuery> queries) const {
  BlockView view;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const PackedQuery& pq = queries[q];
    if (pq.bipolar) {
      view.bip.push_back(pq.sign.data());
      view.bip_idx.push_back(q);
    } else {
      view.ter_nz.push_back(pq.nonzero.data());
      view.ter_sg.push_back(pq.sign.data());
      view.ter_idx.push_back(q);
    }
  }
  return view;
}

void PackedItemMemory::block_dots_range(const BlockView& view,
                                        std::size_t begin, std::size_t end,
                                        std::int64_t* scratch) const {
  const std::size_t count = end - begin;
  const QueryBlockKernels& kernels = query_block_kernels(level_);
  const std::uint64_t* rows = sign_ + begin * words_;
  if (!view.bip.empty()) {
    kernels.bipolar_rows(view.bip.data(), view.bip.size(), rows, count, words_,
                         dim_, scratch);
  }
  if (!view.ter_nz.empty()) {
    kernels.ternary_rows(view.ter_nz.data(), view.ter_sg.data(),
                         view.ter_nz.size(), rows, count, words_,
                         scratch + view.bip.size() * count);
  }
}

std::vector<Match> PackedItemMemory::best_block(
    std::span<const PackedQuery> queries) const {
  for (const PackedQuery& q : queries) require_query(q);
  const std::size_t nq = queries.size();
  std::vector<Match> out(nq);
  if (nq == 0) return out;
  if (layout_ != Layout::kBipolar) {
    // Ternary-layout rows have no query-block kernel; the per-query scans
    // produce the same results without the amortization.
    for (std::size_t q = 0; q < nq; ++q) out[q] = best(queries[q]);
    return out;
  }
  const BlockView view = make_block_view(queries);
  const auto orig_index = [&view](std::size_t slot) {
    return slot < view.bip_idx.size()
               ? view.bip_idx[slot]
               : view.ter_idx[slot - view.bip_idx.size()];
  };
  // Running per-slot argmax over ascending row chunks; INT64_MIN is below
  // any dot in [-dim, dim], so strict > keeps the first (lowest-index)
  // maximum exactly like the single-query loop.
  const auto reduce_range = [this, &view, nq](std::size_t range_begin,
                                              std::size_t range_end,
                                              std::int64_t* best_dot,
                                              std::size_t* best_row) {
    std::vector<std::int64_t> scratch(
        nq * std::min<std::size_t>(kBlockChunkRows, range_end - range_begin));
    for (std::size_t begin = range_begin; begin < range_end;
         begin += kBlockChunkRows) {
      const std::size_t end = std::min(range_end, begin + kBlockChunkRows);
      const std::size_t count = end - begin;
      block_dots_range(view, begin, end, scratch.data());
      for (std::size_t t = 0; t < nq; ++t) {
        const std::int64_t* d = scratch.data() + t * count;
        std::int64_t bd = best_dot[t];
        std::size_t br = best_row[t];
        for (std::size_t i = 0; i < count; ++i) {
          if (d[i] > bd) {
            bd = d[i];
            br = begin + i;
          }
        }
        best_dot[t] = bd;
        best_row[t] = br;
      }
    }
  };
  const std::size_t workers = scan_workers();
  std::vector<std::int64_t> best_dot(nq, INT64_MIN);
  std::vector<std::size_t> best_row(nq, 0);
  if (workers <= 1) {
    reduce_range(0, size_, best_dot.data(), best_row.data());
  } else {
    // Contiguous fixed row ranges, one per worker; merging in ascending
    // range order with strict > reproduces the sequential argmax for any
    // pool width.
    const std::size_t chunk = (size_ + workers - 1) / workers;
    const std::size_t slots = (size_ + chunk - 1) / chunk;
    std::vector<std::vector<std::int64_t>> wdot(
        slots, std::vector<std::int64_t>(nq, INT64_MIN));
    std::vector<std::vector<std::size_t>> wrow(
        slots, std::vector<std::size_t>(nq, 0));
    std::vector<std::thread> pool;
    pool.reserve(slots);
    try {
      for (std::size_t s = 0; s < slots; ++s) {
        const std::size_t begin = s * chunk;
        const std::size_t end = std::min(size_, begin + chunk);
        pool.emplace_back([&reduce_range, &wdot, &wrow, s, begin, end] {
          reduce_range(begin, end, wdot[s].data(), wrow[s].data());
        });
      }
    } catch (...) {
      for (auto& t : pool) t.join();
      throw;
    }
    for (auto& t : pool) t.join();
    for (std::size_t s = 0; s < slots; ++s) {
      for (std::size_t t = 0; t < nq; ++t) {
        if (wdot[s][t] > best_dot[t]) {
          best_dot[t] = wdot[s][t];
          best_row[t] = wrow[s][t];
        }
      }
    }
  }
  for (std::size_t t = 0; t < nq; ++t) {
    out[orig_index(t)] = {best_row[t], to_similarity(best_dot[t])};
  }
  return out;
}

std::vector<std::vector<Match>> PackedItemMemory::top_k_block(
    std::span<const PackedQuery> queries, std::size_t k) const {
  for (const PackedQuery& q : queries) require_query(q);
  const std::size_t nq = queries.size();
  std::vector<std::vector<Match>> out(nq);
  if (nq == 0 || k == 0) return out;  // k = 0: nothing to scan for
  if (layout_ != Layout::kBipolar) {
    for (std::size_t q = 0; q < nq; ++q) out[q] = top_k(queries[q], k);
    return out;
  }
  const std::size_t keep = std::min(k, size_);
  const BlockView view = make_block_view(queries);
  const auto orig_index = [&view](std::size_t slot) {
    return slot < view.bip_idx.size()
               ? view.bip_idx[slot]
               : view.ter_idx[slot - view.bip_idx.size()];
  };
  // Candidate lists pruned to `keep` by the canonical match_order after
  // every chunk: selection by a total order, so the survivors — and their
  // final sorted order — are identical to the single-query materialize +
  // partial_sort at any chunking or thread count.
  const auto prune = [keep](std::vector<Match>& cand) {
    if (cand.size() <= keep) return;
    std::partial_sort(cand.begin(),
                      cand.begin() + static_cast<std::ptrdiff_t>(keep),
                      cand.end(), match_order);
    cand.resize(keep);
  };
  const auto reduce_range = [this, &view, nq, &prune](
                                std::size_t range_begin, std::size_t range_end,
                                std::vector<std::vector<Match>>& cand) {
    std::vector<std::int64_t> scratch(
        nq * std::min<std::size_t>(kBlockChunkRows, range_end - range_begin));
    for (std::size_t begin = range_begin; begin < range_end;
         begin += kBlockChunkRows) {
      const std::size_t end = std::min(range_end, begin + kBlockChunkRows);
      const std::size_t count = end - begin;
      block_dots_range(view, begin, end, scratch.data());
      for (std::size_t t = 0; t < nq; ++t) {
        const std::int64_t* d = scratch.data() + t * count;
        for (std::size_t i = 0; i < count; ++i) {
          cand[t].push_back({begin + i, to_similarity(d[i])});
        }
        prune(cand[t]);
      }
    }
  };
  const std::size_t workers = scan_workers();
  std::vector<std::vector<Match>> cand(nq);
  if (workers <= 1) {
    reduce_range(0, size_, cand);
  } else {
    const std::size_t chunk = (size_ + workers - 1) / workers;
    const std::size_t slots = (size_ + chunk - 1) / chunk;
    std::vector<std::vector<std::vector<Match>>> wcand(
        slots, std::vector<std::vector<Match>>(nq));
    std::vector<std::thread> pool;
    pool.reserve(slots);
    try {
      for (std::size_t s = 0; s < slots; ++s) {
        const std::size_t begin = s * chunk;
        const std::size_t end = std::min(size_, begin + chunk);
        pool.emplace_back([&reduce_range, &wcand, s, begin, end] {
          reduce_range(begin, end, wcand[s]);
        });
      }
    } catch (...) {
      for (auto& t : pool) t.join();
      throw;
    }
    for (auto& t : pool) t.join();
    for (std::size_t s = 0; s < slots; ++s) {
      for (std::size_t t = 0; t < nq; ++t) {
        cand[t].insert(cand[t].end(), wcand[s][t].begin(), wcand[s][t].end());
      }
    }
  }
  for (std::size_t t = 0; t < nq; ++t) {
    std::sort(cand[t].begin(), cand[t].end(), match_order);
    cand[t].resize(std::min(keep, cand[t].size()));
    out[orig_index(t)] = std::move(cand[t]);
  }
  return out;
}

void PackedItemMemory::dots_block(std::span<const PackedQuery> queries,
                                  std::span<std::int64_t> out) const {
  for (const PackedQuery& q : queries) require_query(q);
  const std::size_t nq = queries.size();
  if (out.size() != nq * size_) {
    throw std::invalid_argument(
        "PackedItemMemory::dots_block: output size mismatch");
  }
  if (nq == 0) return;
  if (layout_ != Layout::kBipolar) {
    for (std::size_t q = 0; q < nq; ++q) {
      compute_dots(queries[q], out.subspan(q * size_, size_));
    }
    return;
  }
  const BlockView view = make_block_view(queries);
  const bool uniform = view.bip.empty() || view.ter_nz.empty();
  const std::size_t workers = scan_workers();
  if (workers <= 1 && uniform) {
    // One alphabet in query order: the kernel's query-major layout with
    // count = size() is exactly `out` — no scratch, no copy.
    block_dots_range(view, 0, size_, out.data());
    return;
  }
  const auto orig_index = [&view](std::size_t slot) {
    return slot < view.bip_idx.size()
               ? view.bip_idx[slot]
               : view.ter_idx[slot - view.bip_idx.size()];
  };
  // Mixed alphabets or a threaded scan: per-range scratch in the kernel's
  // (slot, range) layout, copied out to each slot's query-order row span.
  const auto fill_range = [this, &view, nq, out, &orig_index](
                              std::size_t begin, std::size_t end) {
    const std::size_t count = end - begin;
    std::vector<std::int64_t> scratch(nq * count);
    block_dots_range(view, begin, end, scratch.data());
    for (std::size_t t = 0; t < nq; ++t) {
      std::copy_n(scratch.data() + t * count, count,
                  out.data() + orig_index(t) * size_ + begin);
    }
  };
  if (workers <= 1) {
    fill_range(0, size_);
    return;
  }
  const std::size_t chunk = (size_ + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (std::size_t begin = 0; begin < size_; begin += chunk) {
      const std::size_t end = std::min(size_, begin + chunk);
      pool.emplace_back([&fill_range, begin, end] { fill_range(begin, end); });
    }
  } catch (...) {
    for (auto& t : pool) t.join();
    throw;
  }
  for (auto& t : pool) t.join();
}

Match PackedItemMemory::best(const Hypervector& query) const {
  return best(pack_query(query));
}

Match PackedItemMemory::best_among(const Hypervector& query,
                                   std::span<const std::size_t> indices) const {
  return best_among(pack_query(query), indices);
}

std::vector<Match> PackedItemMemory::above(const Hypervector& query,
                                           double threshold) const {
  return above(pack_query(query), threshold);
}

std::vector<Match> PackedItemMemory::above_among(
    const Hypervector& query, double threshold,
    std::span<const std::size_t> indices) const {
  return above_among(pack_query(query), threshold, indices);
}

std::vector<Match> PackedItemMemory::top_k(const Hypervector& query,
                                           std::size_t k) const {
  return top_k(pack_query(query), k);
}

void PackedItemMemory::dots(const Hypervector& query,
                            std::span<std::int64_t> out) const {
  dots(pack_query(query), out);
}

}  // namespace factorhd::hdc::kernels
