#include "hdc/kernels/sharded_item_memory.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "hdc/kernels/tiered_snapshot.hpp"
#include "util/env.hpp"

namespace factorhd::hdc::kernels {

namespace {

// Same break-even rule as the packed row scans
// (packed_item_memory.cpp::parallel_scan_min_words): scattering shards
// across the pool pays one spawn+join per scan, so the whole codebook must
// be large enough to amortize it; the vector tiers scan ~16x faster, so
// their threshold sits 16x higher.
constexpr std::size_t parallel_scatter_min_words(SimdLevel level) noexcept {
  return level == SimdLevel::kScalarWords ? (std::size_t{1} << 16)
                                          : (std::size_t{1} << 20);
}

/// True when `snap`'s row memory is bit-identical to the shard view `view`
/// (geometry, SIMD tier, and both planes) — the precondition for adopting a
/// loaded per-shard snapshot in place of a fresh build.
bool snapshot_matches_shard(const TieredItemMemory& snap,
                            const PackedItemMemory& view) {
  const PackedItemMemory& rows = snap.rows();
  if (rows.layout() != view.layout() || rows.dim() != view.dim() ||
      rows.size() != view.size() || rows.simd_level() != view.simd_level()) {
    return false;
  }
  const auto a_sign = rows.sign_plane();
  const auto b_sign = view.sign_plane();
  if (!std::equal(a_sign.begin(), a_sign.end(), b_sign.begin(),
                  b_sign.end())) {
    return false;
  }
  const auto a_nz = rows.nonzero_plane();
  const auto b_nz = view.nonzero_plane();
  return std::equal(a_nz.begin(), a_nz.end(), b_nz.begin(), b_nz.end());
}

void accumulate(TieredItemMemory::ScanStats* into,
                std::span<const TieredItemMemory::ScanStats> parts) {
  if (into == nullptr) return;
  for (const auto& p : parts) {
    into->centroid_dots += p.centroid_dots;
    into->row_dots += p.row_dots;
    into->probes += p.probes;
  }
}

}  // namespace

ShardedConfig sharded_config_from_env() {
  ShardedConfig config;
  config.shards = util::env_size_t("FACTORHD_SHARDS", 1, 1, 1024);
  return config;
}

std::size_t sharded_auto_min_rows() {
  return util::env_size_t("FACTORHD_SHARD_MIN_ROWS", 65536, 0,
                          std::size_t{1} << 30);
}

ShardedItemMemory::ShardedItemMemory(
    std::shared_ptr<const PackedItemMemory> rows, ShardedConfig config,
    std::span<const std::shared_ptr<const TieredItemMemory>> snapshots)
    : full_(std::move(rows)) {
  if (full_ == nullptr) {
    throw std::invalid_argument("ShardedItemMemory: null row memory");
  }
  const std::size_t total = full_->size();
  std::size_t n = config.shards > 0 ? config.shards
                                    : sharded_config_from_env().shards;
  n = std::clamp<std::size_t>(n, 1, total);
  if (!snapshots.empty() && snapshots.size() != n) {
    throw std::invalid_argument(
        "ShardedItemMemory: snapshot count does not match shard count");
  }

  // Balanced contiguous partition: the first `total % n` shards get one
  // extra row, so shard sizes differ by at most one and the mapping from
  // global row to (shard, local row) is a pure function of (total, n).
  const std::size_t base = total / n;
  const std::size_t rem = total % n;
  const std::size_t words = full_->words_per_row();
  const std::uint64_t* sign = full_->sign_plane().data();
  const std::uint64_t* nonzero =
      full_->layout() == PackedItemMemory::Layout::kTernary
          ? full_->nonzero_plane().data()
          : nullptr;
  shards_.reserve(n);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t size = base + (s < rem ? 1 : 0);
    Shard shard;
    shard.begin = begin;
    shard.rows = std::make_shared<PackedItemMemory>(
        full_->layout(), full_->dim(), size, sign + begin * words,
        nonzero != nullptr ? nonzero + begin * words : nullptr, full_,
        full_->simd_level());
    if (!snapshots.empty() && snapshots[s] != nullptr &&
        snapshot_matches_shard(*snapshots[s], *shard.rows)) {
      // Adopt: the snapshot's row memory backs both scan stages (typically
      // an mmap'd FTS1 file), and the freshly built slice view is dropped.
      shard.rows = snapshots[s]->shared_rows();
      shard.tier = snapshots[s];
      ++snapshots_adopted_;
    } else {
      if (!snapshots.empty()) ++snapshots_rejected_;
      if (config.tiered.has_value()) {
        shard.tier =
            std::make_shared<TieredItemMemory>(shard.rows, *config.tiered);
      }
    }
    shards_.push_back(std::move(shard));
    begin += size;
  }

  tiered_ = std::all_of(shards_.begin(), shards_.end(),
                        [](const Shard& s) { return s.tier != nullptr; });
  exact_ = std::all_of(shards_.begin(), shards_.end(), [](const Shard& s) {
    return s.tier == nullptr || s.tier->exact();
  });
  shard_scans_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  shard_rows_scanned_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t s = 0; s < n; ++s) {
    shard_scans_[s].store(0, std::memory_order_relaxed);
    shard_rows_scanned_[s].store(0, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> ShardedItemMemory::shard_scans() const {
  std::vector<std::uint64_t> out(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out[s] = shard_scans_[s].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint64_t> ShardedItemMemory::shard_rows_scanned() const {
  std::vector<std::uint64_t> out(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out[s] = shard_rows_scanned_[s].load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t ShardedItemMemory::scatter_workers() const noexcept {
  if (scan_nesting_active()) return 1;  // already inside an outer pool
  if (shards_.size() <= 1) return 1;
  if (full_->size() * full_->words_per_row() <
      parallel_scatter_min_words(full_->simd_level())) {
    return 1;
  }
  return std::min(scan_pool_width(), shards_.size());
}

template <typename Fn>
void ShardedItemMemory::for_each_shard(Fn&& fn) const {
  const std::size_t n = shards_.size();
  const std::size_t workers = scatter_workers();
  if (workers <= 1) {
    for (std::size_t s = 0; s < n; ++s) fn(s);
    return;
  }
  // Contiguous fixed shard blocks, one per worker; every worker writes only
  // its own shards' result slots, so the gather is byte-identical to the
  // sequential loop for any pool width. Each worker installs a
  // ScanNestingGuard so the per-shard scans stay sequential (thread counts
  // never multiply). Exceptions are captured per block and the first (by
  // block order) is rethrown after the join — deterministic, and a throwing
  // shard scan can never terminate the process.
  const std::size_t chunk = (n + workers - 1) / workers;
  const std::size_t blocks = (n + chunk - 1) / chunk;
  std::vector<std::exception_ptr> errors(blocks);
  std::vector<std::thread> pool;
  pool.reserve(blocks);
  try {
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t begin = b * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      pool.emplace_back([&fn, &errors, b, begin, end] {
        ScanNestingGuard guard;
        try {
          for (std::size_t s = begin; s < end; ++s) fn(s);
        } catch (...) {
          errors[b] = std::current_exception();
        }
      });
    }
  } catch (...) {
    // A failed spawn (thread-limit pressure) must not let the vector
    // destructor run on joinable threads (std::terminate); join what
    // started, then propagate.
    for (auto& t : pool) t.join();
    throw;
  }
  for (auto& t : pool) t.join();
  for (const auto& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

void ShardedItemMemory::require_query(const PackedQuery& query) const {
  if (query.dim != full_->dim()) {
    throw std::invalid_argument("ShardedItemMemory: query dimension mismatch");
  }
}

Match ShardedItemMemory::best(const PackedQuery& query, bool exact,
                              TieredItemMemory::ScanStats* stats) const {
  require_query(query);
  const std::size_t n = shards_.size();
  std::vector<Match> local(n);
  // Per-shard stats are collected unconditionally: the per-shard counters
  // charge each shard with its scan cost whether or not the caller asked
  // for aggregate stats.
  std::vector<TieredItemMemory::ScanStats> st(n);
  for_each_shard([&](std::size_t s) {
    const Shard& sh = shards_[s];
    Match m;
    if (!exact && sh.tier != nullptr) {
      m = sh.tier->best(query, &st[s]);
    } else {
      m = sh.rows->best(query);
      st[s].row_dots += sh.rows->size();
    }
    note_shard_scan(s, st[s].centroid_dots + st[s].row_dots);
    m.index += sh.begin;
    local[s] = m;
  });
  // Ascending shard order + strict '>' keeps the first (lowest global
  // index) maximum — the canonical argmax tie rule. Comparing the
  // similarity doubles is tie-exact: distinct dots map to distinct doubles
  // (dot / D with D well under 2^53).
  Match out = local[0];
  for (std::size_t s = 1; s < n; ++s) {
    if (local[s].similarity > out.similarity) out = local[s];
  }
  accumulate(stats, st);
  return out;
}

std::vector<Match> ShardedItemMemory::above(
    const PackedQuery& query, double threshold, bool exact,
    TieredItemMemory::ScanStats* stats) const {
  require_query(query);
  const std::size_t n = shards_.size();
  std::vector<std::vector<Match>> local(n);
  std::vector<TieredItemMemory::ScanStats> st(n);
  for_each_shard([&](std::size_t s) {
    const Shard& sh = shards_[s];
    if (!exact && sh.tier != nullptr) {
      local[s] = sh.tier->above(query, threshold, &st[s]);
    } else {
      local[s] = sh.rows->above(query, threshold);
      st[s].row_dots += sh.rows->size();
    }
    note_shard_scan(s, st[s].centroid_dots + st[s].row_dots);
    for (Match& m : local[s]) m.index += sh.begin;
  });
  std::vector<Match> out;
  for (auto& part : local) {
    out.insert(out.end(), part.begin(), part.end());
  }
  // hdc::match_order is a strict total order over distinct indices, so one
  // global sort reproduces the unsharded ordering exactly.
  std::sort(out.begin(), out.end(), match_order);
  accumulate(stats, st);
  return out;
}

std::vector<Match> ShardedItemMemory::top_k(
    const PackedQuery& query, std::size_t k, bool exact,
    TieredItemMemory::ScanStats* stats) const {
  require_query(query);
  if (k == 0) return {};
  const std::size_t kk = std::min(k, full_->size());
  const std::size_t n = shards_.size();
  std::vector<std::vector<Match>> local(n);
  std::vector<TieredItemMemory::ScanStats> st(n);
  for_each_shard([&](std::size_t s) {
    const Shard& sh = shards_[s];
    if (!exact && sh.tier != nullptr) {
      local[s] = sh.tier->top_k(query, kk, &st[s]);
    } else {
      local[s] = sh.rows->top_k(query, kk);
      st[s].row_dots += sh.rows->size();
    }
    note_shard_scan(s, st[s].centroid_dots + st[s].row_dots);
    for (Match& m : local[s]) m.index += sh.begin;
  });
  // Sound merge: any row of the global top-k is by definition in its own
  // shard's local top-k, so the union of per-shard top-k lists contains the
  // global answer; sort + truncate recovers it in canonical order.
  std::vector<Match> out;
  for (auto& part : local) {
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end(), match_order);
  if (out.size() > kk) out.resize(kk);
  accumulate(stats, st);
  return out;
}

void ShardedItemMemory::dots(const PackedQuery& query,
                             std::span<std::int64_t> out) const {
  require_query(query);
  if (out.size() != full_->size()) {
    throw std::invalid_argument("ShardedItemMemory: output size mismatch");
  }
  for_each_shard([&](std::size_t s) {
    const Shard& sh = shards_[s];
    sh.rows->dots(query, out.subspan(sh.begin, sh.rows->size()));
    note_shard_scan(s, sh.rows->size());
  });
}

std::vector<Match> ShardedItemMemory::best_block(
    std::span<const PackedQuery> queries, bool exact) const {
  for (const PackedQuery& q : queries) require_query(q);
  if (queries.empty()) return {};
  const std::size_t n = shards_.size();
  std::vector<std::vector<Match>> local(n);
  for_each_shard([&](std::size_t s) {
    const Shard& sh = shards_[s];
    if (!exact && sh.tier != nullptr) {
      TieredItemMemory::ScanStats st;
      local[s].reserve(queries.size());
      for (const PackedQuery& q : queries) {
        local[s].push_back(sh.tier->best(q, &st));
      }
      note_shard_scan(s, st.centroid_dots + st.row_dots);
    } else {
      local[s] = sh.rows->best_block(queries);
      note_shard_scan(s, queries.size() * sh.rows->size());
    }
    for (Match& m : local[s]) m.index += sh.begin;
  });
  std::vector<Match> out = std::move(local[0]);
  for (std::size_t s = 1; s < n; ++s) {
    for (std::size_t q = 0; q < out.size(); ++q) {
      if (local[s][q].similarity > out[q].similarity) out[q] = local[s][q];
    }
  }
  return out;
}

std::vector<std::vector<Match>> ShardedItemMemory::top_k_block(
    std::span<const PackedQuery> queries, std::size_t k, bool exact) const {
  for (const PackedQuery& q : queries) require_query(q);
  if (queries.empty()) return {};
  if (k == 0) return std::vector<std::vector<Match>>(queries.size());
  const std::size_t kk = std::min(k, full_->size());
  const std::size_t n = shards_.size();
  std::vector<std::vector<std::vector<Match>>> local(n);
  for_each_shard([&](std::size_t s) {
    const Shard& sh = shards_[s];
    if (!exact && sh.tier != nullptr) {
      TieredItemMemory::ScanStats st;
      local[s].reserve(queries.size());
      for (const PackedQuery& q : queries) {
        local[s].push_back(sh.tier->top_k(q, kk, &st));
      }
      note_shard_scan(s, st.centroid_dots + st.row_dots);
    } else {
      local[s] = sh.rows->top_k_block(queries, kk);
      note_shard_scan(s, queries.size() * sh.rows->size());
    }
    for (auto& per_query : local[s]) {
      for (Match& m : per_query) m.index += sh.begin;
    }
  });
  std::vector<std::vector<Match>> out(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t s = 0; s < n; ++s) {
      out[q].insert(out[q].end(), local[s][q].begin(), local[s][q].end());
    }
    std::sort(out[q].begin(), out[q].end(), match_order);
    if (out[q].size() > kk) out[q].resize(kk);
  }
  return out;
}

void ShardedItemMemory::dots_block(std::span<const PackedQuery> queries,
                                   std::span<std::int64_t> out) const {
  for (const PackedQuery& q : queries) require_query(q);
  const std::size_t total = full_->size();
  if (out.size() != queries.size() * total) {
    throw std::invalid_argument("ShardedItemMemory: output size mismatch");
  }
  if (queries.empty()) return;
  for_each_shard([&](std::size_t s) {
    const Shard& sh = shards_[s];
    const std::size_t size = sh.rows->size();
    // The shard kernel writes query-major over shard rows; scatter each
    // query's slice into its global column range (disjoint across shards).
    std::vector<std::int64_t> scratch(queries.size() * size);
    sh.rows->dots_block(queries, scratch);
    note_shard_scan(s, queries.size() * size);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      std::copy_n(scratch.data() + q * size, size,
                  out.data() + q * total + sh.begin);
    }
  });
}

std::string sharded_shard_path(const std::string& path_prefix,
                               std::size_t shard) {
  return path_prefix + ".shard" + std::to_string(shard);
}

void save_sharded_index(const std::string& path_prefix,
                        const ShardedItemMemory& memory) {
  for (std::size_t s = 0; s < memory.shards(); ++s) {
    if (memory.shard_tier(s) == nullptr) {
      throw std::invalid_argument(
          "save_sharded_index: shard has no tier index to persist");
    }
  }
  for (std::size_t s = 0; s < memory.shards(); ++s) {
    save_tiered_index(sharded_shard_path(path_prefix, s),
                      *memory.shard_tier(s));
  }
}

std::vector<std::shared_ptr<const TieredItemMemory>> load_sharded_index(
    const std::string& path_prefix, std::size_t shards,
    std::optional<SimdLevel> level) {
  std::vector<std::shared_ptr<const TieredItemMemory>> out;
  out.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    out.push_back(load_tiered_index(sharded_shard_path(path_prefix, s), level));
  }
  return out;
}

}  // namespace factorhd::hdc::kernels
