// Versioned on-disk snapshots of TieredItemMemory (`FTS1`).
//
// BENCH_scale.json's build wall (minutes of sampled k-means at M=1M) is an
// offline cost, but before this module it was paid *online*: the tiered
// index died with the process, so every serving start repaid the full
// build. FTS1 is the operational split standard for IVF-style indexes —
// build once, serve forever from a read-only artifact:
//
//   offset 0    header: 18 little-endian u64 words
//     w0      magic 'FTS1' (lo32) | format version (hi32)
//     w1..w6  dim, rows, clusters, nprobe, layout (0 bipolar / 1 ternary),
//             words_per_row
//     w7..w11 section byte sizes   ┐ row_sign, row_nonzero, centroid_sign,
//     w12..w16 section digests     ┘ cluster_begin, member_rows (in order)
//     w17     digest of header words w0..w16
//   then the five sections, each starting on a 64-byte boundary, with the
//   padding bytes written (and verified) as zero.
//
// Every content byte is covered by a digest (4-lane interleaved splitmix64
// over hdc::hash_mix) and every padding byte is pinned to zero, so *any*
// byte flip or truncation anywhere in the file throws at load — a snapshot
// can fail to load, but it can never mis-scan. Section sizes are fully
// determined by the header geometry and cross-checked, and the loaded
// structure passes the TieredItemMemory from-parts validation (CSR offsets,
// member permutation), so a forged-but-checksummed file still cannot build
// an inconsistent index.
//
// Loading from a file prefers a read-only mmap (FACTORHD_SNAPSHOT_MMAP=0
// disables it): the packed row and centroid planes are adopted straight out
// of the page-cache-backed mapping — shared, not copied, so N serving
// processes on one host map one physical copy — while the small CSR arrays
// are copied into owned vectors. Stream loading copies everything and works
// on any istream. Snapshots are little-endian and not portable to
// big-endian hosts (none are targeted).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "hdc/kernels/simd.hpp"
#include "hdc/kernels/tiered_item_memory.hpp"

namespace factorhd::hdc::kernels {

/// Header fields of an FTS1 snapshot, as read_tiered_index_info() reports
/// them (header digest verified; section contents not read).
struct TieredSnapshotInfo {
  std::uint64_t version = 0;
  std::uint64_t dim = 0;
  std::uint64_t rows = 0;
  std::uint64_t clusters = 0;
  std::uint64_t nprobe = 0;
  bool ternary = false;
  std::uint64_t words_per_row = 0;
  /// Exact byte length of the snapshot (header + padded sections).
  std::uint64_t total_bytes = 0;
};

/// Writes `tier` to `os` as one FTS1 snapshot.
/// \throws std::runtime_error On stream write failure.
void save_tiered_index(std::ostream& os, const TieredItemMemory& tier);

/// Writes `tier` to a new file at `path` (overwrites).
/// \throws std::runtime_error When the file cannot be created or written.
void save_tiered_index(const std::string& path, const TieredItemMemory& tier);

/// Reads one FTS1 snapshot from `is`, copying the planes into owned
/// storage. The stream is left positioned at the first byte after the
/// snapshot, so snapshots can be embedded in enclosing formats.
/// \param level SIMD tier for the loaded memories (default: dispatched).
/// \throws std::runtime_error On truncation, any digest/padding mismatch,
///   or an implausible/inconsistent header.
[[nodiscard]] std::shared_ptr<const TieredItemMemory> load_tiered_index(
    std::istream& is, std::optional<SimdLevel> level = std::nullopt);

/// Loads the snapshot at `path` — via a shared read-only mmap where the
/// platform has one (and FACTORHD_SNAPSHOT_MMAP is not 0), else by stream
/// read. The file must contain exactly one snapshot.
/// \throws std::runtime_error As the stream overload, plus file-size
///   mismatches.
[[nodiscard]] std::shared_ptr<const TieredItemMemory> load_tiered_index(
    const std::string& path, std::optional<SimdLevel> level = std::nullopt);

/// Parses one snapshot from the front of `bytes`, adopting the plane
/// sections in place (zero-copy): `keepalive` must own the bytes — an mmap
/// holder, a deserialized buffer — and is retained by the loaded memories.
/// This is the primitive that lets an enclosing multi-snapshot container
/// (service-layer model sidecars) share one file mapping across all of its
/// records. `bytes` must be 8-byte aligned and may extend past the
/// snapshot; on success `*consumed` (when non-null) receives the
/// snapshot's exact byte length.
/// \throws std::runtime_error As the stream overload.
[[nodiscard]] std::shared_ptr<const TieredItemMemory> load_tiered_index(
    std::span<const std::uint64_t> bytes_as_words,
    std::shared_ptr<const void> keepalive,
    std::uint64_t* consumed = nullptr,
    std::optional<SimdLevel> level = std::nullopt);

/// Reads and validates only the header of the snapshot at `path`.
/// \throws std::runtime_error On a missing/truncated file, bad magic or
///   version, header digest mismatch, or inconsistent geometry.
[[nodiscard]] TieredSnapshotInfo read_tiered_index_info(
    const std::string& path);

/// Exact serialized size in bytes of `tier`'s snapshot (header + sections +
/// alignment padding) — what save_tiered_index will write.
[[nodiscard]] std::uint64_t tiered_snapshot_bytes(const TieredItemMemory& tier);

}  // namespace factorhd::hdc::kernels
