// TieredItemMemory: a two-stage (coarse-then-exact) scan index over
// PackedItemMemory for codebooks far larger than the paper's.
//
// The packed word-plane scans made each similarity measurement cheap, but a
// whole-codebook scan still touches every row: O(M) per query. For the
// ROADMAP's million-item memories that linear wall is the remaining cost, so
// this class adds an IVF-style coarse quantization cascade on top of the
// exact kernels:
//
//   build:  k-means-cluster the codebook rows into K coarse buckets whose
//           centroids are bipolar HVs (elementwise majority of the members'
//           sign planes), packed into their own small PackedItemMemory;
//   query:  (1) scan the K centroids with the same SIMD DotKernels,
//           (2) keep the top-`nprobe` buckets,
//           (3) run the exact packed scan only over the surviving buckets'
//               rows (every row lives in exactly one bucket).
//
// With the auto configuration (K ≈ 4·sqrt(M), nprobe = K/16) a query costs
// ~K + M/16 dot products instead of M — an O(sqrt(M))-flavoured coarse pass
// plus a small exact pass — at recall@1 ≥ 0.99 on noisy cleanup queries
// (bench/bench_ext_scale.cpp measures both; tests/test_tiered_memory.cpp
// pins a seeded regression bound).
//
// Verification bound: stage 2 only *selects* rows, never approximates their
// similarity — candidate rows always get the exact kernel dot, reductions
// use the canonical tie rules (argmax keeps the lowest index, sorted results
// use hdc::match_order). Therefore `nprobe >= clusters()` degenerates to a
// full exact scan that is bit-identical (index, similarity, ordering) to
// PackedItemMemory on every surface, at every SIMD tier — the property
// tests/test_kernel_fuzz.cpp asserts differentially. Approximation can only
// ever *miss* rows, never mis-rank the rows it scans, which is what makes
// the Factorizer's stall-triggered exact re-scan (core/factorizer.hpp) a
// sound fallback.
//
// Construction is deterministic: centroid seeding and the k-means sample are
// evenly spaced over the row index space, ties resolve to the lowest index,
// and the majority rule is fixed — the same codebook and config always build
// the same index, independent of timing, thread count, or platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hdc/codebook.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/kernels/packed_item_memory.hpp"
#include "hdc/kernels/plane.hpp"
#include "hdc/kernels/simd.hpp"
#include "hdc/match.hpp"

namespace factorhd::hdc::kernels {

/// Build-time configuration of a TieredItemMemory. Zeros mean "auto": the
/// resolved values are deterministic functions of the codebook row count
/// (see resolve()). The FACTORHD_TIERED_CLUSTERS / FACTORHD_TIERED_NPROBE
/// env knobs pre-fill clusters/nprobe via tiered_config_from_env().
struct TieredConfig {
  /// Coarse bucket count K; 0 = auto: min(M, max(2, 4 * ceil(sqrt(M)))).
  std::size_t clusters = 0;
  /// Buckets probed per query; 0 = auto: max(1, K / 16). Values >= K make
  /// every scan exact (the verification bound).
  std::size_t nprobe = 0;
  /// Adaptive per-query probing floor/ceiling (0 = disabled). With
  /// nprobe_max > 0 the probe count is derived per query from the stage-1
  /// centroid-score margin: at least nprobe_min buckets are always probed,
  /// then every further centroid whose score sits within a few noise
  /// standard deviations (~3 * sqrt(dim) in dot units) of the best one, up
  /// to nprobe_max. Confident queries (a clear coarse winner) stop at the
  /// floor; ambiguous ones escalate toward the ceiling — toward exact when
  /// nprobe_max == K. nprobe_min of 0 means auto: max(1, resolved
  /// nprobe / 8); nprobe_min >= K forces every scan exact and bit-identical
  /// to PackedItemMemory, the same verification bound as nprobe >= K
  /// (tests/test_adaptive_nprobe.cpp pins it). Both are pre-filled from
  /// FACTORHD_TIERED_NPROBE_MIN / _MAX by tiered_config_from_env(). The
  /// fixed `nprobe` above is ignored while adaptive probing is enabled
  /// (except as the basis of the auto floor). Selection is a pure function
  /// of (index, query), so probe accounting stays deterministic.
  std::size_t nprobe_min = 0;
  std::size_t nprobe_max = 0;
  /// Lloyd iterations of the sampled k-means refinement.
  std::size_t kmeans_iters = 4;
  /// Rows sampled for the refinement; 0 = auto: min(M, 8 * K). The final
  /// assignment pass always places all M rows.
  std::size_t kmeans_sample = 0;
  /// Worker threads of the build's assignment passes; 0 = auto: the scan
  /// pool width (FACTORHD_SCAN_THREADS, see scan_pool_width()). Rows are
  /// partitioned into fixed contiguous blocks writing disjoint slices, so
  /// the built index is bit-identical for every value. Pre-filled from
  /// FACTORHD_TIERED_BUILD_THREADS by tiered_config_from_env().
  std::size_t build_threads = 0;
  /// Assign rows by scanning all K centroids at full width instead of the
  /// default prefix-screened scan (see build() — screening cuts the
  /// dominant O(M·K) assignment cost ~5-6x for large K). Both modes are
  /// deterministic and yield equally valid clusterings, but not always the
  /// same one; the exhaustive mode is the reference the build benchmark
  /// compares against.
  bool exhaustive_build = false;

  bool operator==(const TieredConfig&) const = default;
};

/// TieredConfig with clusters/nprobe pre-filled from the
/// FACTORHD_TIERED_CLUSTERS / FACTORHD_TIERED_NPROBE env knobs (0 = keep
/// auto). Read per call — not cached — so tests and operators can retune
/// between model loads.
[[nodiscard]] TieredConfig tiered_config_from_env();

/// Row-count threshold at/above which hdc::ItemMemory's kAuto backend builds
/// the tiered index: FACTORHD_TIERED_MIN_ROWS (default 65536; 0 disables
/// auto-tiering so kAuto never approximates). Read per call, not cached.
[[nodiscard]] std::size_t tiered_auto_min_rows();

class TieredItemMemory {
 public:
  /// Per-scan cost accounting in the paper's similarity-measurement unit,
  /// filled by the scan methods when a non-null pointer is passed (the hook
  /// hdc::ItemMemory's similarity_ops counter is fed from).
  struct ScanStats {
    std::uint64_t centroid_dots = 0;  ///< stage-1 coarse scan cost
    std::uint64_t row_dots = 0;       ///< stage-2 exact candidate cost
    /// Buckets stage 1 selected for this scan — nprobe() on fixed-probe
    /// indexes, the margin-derived per-query count in [nprobe_min(),
    /// nprobe_max()] on adaptive ones. A pure function of (index, query):
    /// deterministic under concurrent batch workers.
    std::uint64_t probes = 0;
  };

  /// Packs `codebook` and builds the tier index over it.
  /// \param codebook Source codebook (bipolar or ternary entries); only read
  ///   during construction.
  /// \param config Cluster/probe configuration (zeros = auto).
  /// \param level SIMD tier for both scan stages; std::nullopt = dispatched.
  /// \throws std::invalid_argument When the codebook is not packable.
  explicit TieredItemMemory(const Codebook& codebook, TieredConfig config = {},
                            std::optional<SimdLevel> level = std::nullopt);

  /// Builds the tier index over an already-packed memory (shared, immutable;
  /// the path hdc::ItemMemory and service::Model take so exact and tiered
  /// scans share one set of row planes).
  /// \param rows Packed codebook rows; must be non-null.
  /// \param config Cluster/probe configuration (zeros = auto).
  /// \throws std::invalid_argument When `rows` is null.
  TieredItemMemory(std::shared_ptr<const PackedItemMemory> rows,
                   TieredConfig config = {});

  /// Adopts a prebuilt clustering without running k-means — the snapshot
  /// load path (tiered_snapshot.hpp). Validates every structural invariant
  /// the scans rely on; the caller (the snapshot loader) has already
  /// verified section digests, so a throw here means a semantically
  /// inconsistent (not just bit-corrupted) snapshot.
  /// \param rows Packed codebook rows (non-null).
  /// \param centroids Packed bipolar centroid memory (non-null, same dim
  ///   and SIMD tier as `rows`).
  /// \param nprobe Buckets probed per query; clamped to [1, K].
  /// \param member_rows Concatenated bucket member lists (a permutation of
  ///   0..M-1, ascending within each bucket).
  /// \param cluster_begin CSR offsets (K+1 entries, non-decreasing, first 0,
  ///   last M).
  /// \param nprobe_min Adaptive probing floor; meaningful only with
  ///   `nprobe_max` > 0, same resolution as TieredConfig::nprobe_min (0 =
  ///   auto). The snapshot loader passes neither (fixed probing); the bench
  ///   uses them to re-view an already-built clustering adaptively.
  /// \param nprobe_max Adaptive probing ceiling; 0 (the default) keeps
  ///   probing fixed, same semantics as TieredConfig::nprobe_max.
  /// \throws std::invalid_argument On any violated invariant.
  TieredItemMemory(std::shared_ptr<const PackedItemMemory> rows,
                   std::shared_ptr<const PackedItemMemory> centroids,
                   std::size_t nprobe, std::vector<std::size_t> member_rows,
                   std::vector<std::size_t> cluster_begin,
                   std::size_t nprobe_min = 0, std::size_t nprobe_max = 0);

  [[nodiscard]] std::size_t size() const noexcept { return rows_->size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return rows_->dim(); }
  /// \return Resolved coarse bucket count K (>= 1, <= size()).
  [[nodiscard]] std::size_t clusters() const noexcept {
    return centroids_->size();
  }
  /// \return Resolved buckets probed per query (>= 1, <= clusters()) when
  ///   probing is fixed; ignored while adaptive() (see nprobe_min/max()).
  [[nodiscard]] std::size_t nprobe() const noexcept { return nprobe_; }
  /// \return True when the per-query probe count is margin-derived
  ///   (TieredConfig::nprobe_max > 0) rather than fixed.
  [[nodiscard]] bool adaptive() const noexcept { return nprobe_max_ > 0; }
  /// \return Adaptive probing floor (0 when adaptive() is false).
  [[nodiscard]] std::size_t nprobe_min() const noexcept { return nprobe_min_; }
  /// \return Adaptive probing ceiling (0 when adaptive() is false).
  [[nodiscard]] std::size_t nprobe_max() const noexcept { return nprobe_max_; }
  /// \return True when every scan is exact: the fixed nprobe() — or the
  ///   adaptive floor, which lower-bounds every per-query count — covers
  ///   all clusters.
  [[nodiscard]] bool exact() const noexcept {
    return (adaptive() ? nprobe_min_ : nprobe_) >= centroids_->size();
  }
  /// \return The SIMD tier both stages execute at (the row memory's tier).
  [[nodiscard]] SimdLevel simd_level() const noexcept {
    return rows_->simd_level();
  }
  /// \return The exact packed row memory stage 2 scans (and the exact-
  ///   fallback surface: every PackedItemMemory query works on it).
  [[nodiscard]] const PackedItemMemory& rows() const noexcept {
    return *rows_;
  }
  /// \return Shared handle to the row memory (for consumers that outlive
  ///   this index, e.g. ItemMemory copies).
  [[nodiscard]] std::shared_ptr<const PackedItemMemory> shared_rows()
      const noexcept {
    return rows_;
  }
  /// \return Number of rows in bucket `c`. Precondition: c < clusters().
  [[nodiscard]] std::size_t cluster_size(std::size_t c) const noexcept {
    return cluster_begin_[c + 1] - cluster_begin_[c];
  }
  /// \return The packed centroid memory (stage 1; the snapshot writer
  ///   serializes its sign plane).
  [[nodiscard]] const PackedItemMemory& centroid_memory() const noexcept {
    return *centroids_;
  }
  /// \return Shared handle to the centroid memory — with shared_rows(),
  ///   member_rows(), and cluster_begins() enough to adopt this clustering
  ///   into another index (e.g. an adaptive-probing view of the same build).
  [[nodiscard]] std::shared_ptr<const PackedItemMemory> shared_centroids()
      const noexcept {
    return centroids_;
  }
  /// \return Concatenated bucket member lists (see cluster_begins()).
  [[nodiscard]] std::span<const std::size_t> member_rows() const noexcept {
    return member_rows_;
  }
  /// \return CSR bucket offsets: clusters()+1 entries; bucket c's rows are
  ///   member_rows()[cluster_begins()[c] .. cluster_begins()[c+1]).
  [[nodiscard]] std::span<const std::size_t> cluster_begins() const noexcept {
    return cluster_begin_;
  }

  // --- Tiered scans (approximate when nprobe() < clusters()) --------------
  // Candidate rows are always measured with the exact kernels and reduced
  // under the canonical tie rules, so nprobe >= clusters is bit-identical to
  // the PackedItemMemory scans. All methods throw std::invalid_argument on a
  // query dimension mismatch.

  /// Argmax over the probed buckets' rows; lowest index wins ties.
  [[nodiscard]] Match best(const PackedQuery& query,
                           ScanStats* stats = nullptr) const;
  /// Matches above `threshold` among the probed buckets' rows, sorted by
  /// hdc::match_order.
  [[nodiscard]] std::vector<Match> above(const PackedQuery& query,
                                         double threshold,
                                         ScanStats* stats = nullptr) const;
  /// Top-k among the probed buckets' rows, sorted by hdc::match_order;
  /// k is clamped to the candidate count.
  [[nodiscard]] std::vector<Match> top_k(const PackedQuery& query,
                                         std::size_t k,
                                         ScanStats* stats = nullptr) const;

  // Convenience overloads that pack the query internally (same alphabet
  // contract as PackedItemMemory: bipolar/ternary queries only).
  [[nodiscard]] Match best(const Hypervector& query,
                           ScanStats* stats = nullptr) const;
  [[nodiscard]] std::vector<Match> above(const Hypervector& query,
                                         double threshold,
                                         ScanStats* stats = nullptr) const;
  [[nodiscard]] std::vector<Match> top_k(const Hypervector& query,
                                         std::size_t k,
                                         ScanStats* stats = nullptr) const;

 private:
  /// Deterministic k-means build: seed centroids at evenly spaced rows,
  /// refine on an evenly spaced sample, then assign every row once. The
  /// assignment passes run over fixed row blocks across
  /// TieredConfig::build_threads workers and, for large K, screen centroids
  /// by prefix dots before exact rescoring (see the .cpp) — both
  /// bit-identical for any thread count.
  void build(const TieredConfig& config);
  /// Exact dot of row `row` (possibly ternary) with bipolar centroid plane
  /// `cent` via the row memory's kernel table.
  [[nodiscard]] std::int64_t row_centroid_dot(
      std::size_t row, const std::uint64_t* cent) const noexcept;
  /// Index of the centroid (in `planes`, K rows of words each) nearest to
  /// `row`; lowest index wins ties.
  [[nodiscard]] std::size_t nearest_centroid(
      std::size_t row, const std::vector<std::uint64_t>& planes,
      std::size_t k) const noexcept;
  /// Screened variant: ranks all K centroids by the dot over the first
  /// `prefix_words` plane words (batch-scanned from `prefix_planes`, a
  /// contiguous K x prefix_words copy of the centroid prefixes), exactly
  /// rescores the top `keep`, and returns their argmax (lowest index on
  /// ties). `prefix_dot` is K-sized scratch, `hist` is a
  /// 2*prefix_words*64+1 sized dot histogram used to pick the survivor set
  /// deterministically under a strict total order (partial dot desc, index
  /// asc) in O(K) instead of a comparison select.
  [[nodiscard]] std::size_t nearest_centroid_screened(
      std::size_t row, const std::vector<std::uint64_t>& planes,
      const std::vector<std::uint64_t>& prefix_planes, std::size_t k,
      std::size_t prefix_words, std::size_t keep,
      std::span<std::int64_t> prefix_dot,
      std::span<std::uint32_t> hist) const noexcept;
  /// The probed buckets for `query`: indices of the top-nprobe centroids.
  [[nodiscard]] std::vector<std::size_t> probe(const PackedQuery& query,
                                               ScanStats* stats) const;
  [[nodiscard]] PackedQuery pack_query(const Hypervector& query) const;

  std::shared_ptr<const PackedItemMemory> rows_;
  /// Packed bipolar centroid memory (stage 1); never null, size K >= 1.
  std::shared_ptr<const PackedItemMemory> centroids_;
  std::size_t nprobe_ = 1;
  /// Adaptive probing bounds; both 0 (fixed probing) unless
  /// TieredConfig::nprobe_max — or the adoption ctor's nprobe_max — was set.
  /// The snapshot loader never sets them: loaded indexes probe fixed.
  std::size_t nprobe_min_ = 0;
  std::size_t nprobe_max_ = 0;
  /// CSR bucket membership: rows of bucket c are member_rows_[
  /// cluster_begin_[c] .. cluster_begin_[c+1]), ascending within a bucket.
  std::vector<std::size_t> member_rows_;
  std::vector<std::size_t> cluster_begin_;
};

}  // namespace factorhd::hdc::kernels
