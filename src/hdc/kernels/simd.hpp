// Runtime-dispatched SIMD tier of the packed similarity kernels.
//
// The word-plane kernels in plane.hpp retire one 64-bit word per popcount;
// AVX2 / AVX-512 / NEON hardware can chew 256-512 plane bits per
// instruction. This module provides vectorized implementations of the three
// fused XOR/AND+popcount dot reductions (and of query packing), selected at
// runtime from CPUID so one binary runs everywhere:
//
//   kScalarWords ── the plane.hpp word loops (always available, the
//   kAVX2         ┐ reference the differential fuzz suite compares against)
//   kAVX512       ├ x86: nibble-LUT popcount / VPOPCNTQ over 4-8 words per op
//   kNEON         ┘ aarch64: VCNT over 2 words per op
//
// Every level computes the exact same integers — dot products over the
// {-1,0,+1} alphabets are sums of word popcounts in every tier, just grouped
// differently — so results stay bit-identical (index, similarity, tie order)
// across levels; tests/test_kernel_fuzz.cpp asserts this exhaustively.
//
// Selection order for a PackedItemMemory scan:
//   1. an explicit hdc::ScanBackend::kPacked<level> knob (throws if the
//      level is not available on this CPU),
//   2. else the FACTORHD_SIMD env var (auto | scalar | avx2 | avx512 | neon;
//      unavailable requests fall back to the detected level),
//   3. else the best CPUID-detected level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace factorhd::hdc::kernels {

/// Vector instruction tier of the packed-plane kernels.
enum class SimdLevel {
  kScalarWords,  ///< portable 64-bit word loops (plane.hpp)
  kAVX2,         ///< x86 256-bit, nibble-LUT popcount (PSHUFB + PSADBW)
  kAVX512,       ///< x86 512-bit, native VPOPCNTQ (requires AVX512VPOPCNTDQ)
  kNEON,         ///< aarch64 128-bit, VCNT + pairwise widening adds
};

/// \return Stable lowercase name ("scalar", "avx2", "avx512", "neon") used
///   by the FACTORHD_SIMD env var and the BENCH_kernels.json `level` field.
[[nodiscard]] const char* to_string(SimdLevel level) noexcept;

/// Parses a FACTORHD_SIMD value ("auto" and unknown strings -> nullopt).
/// \param name Level name; "scalar" and "words" both mean kScalarWords.
/// \return The parsed level, or nullopt when `name` names no fixed level.
[[nodiscard]] std::optional<SimdLevel> parse_simd_level(
    std::string_view name) noexcept;

/// Best level this CPU supports, probed once via CPUID (x86) or the target
/// architecture (aarch64). kScalarWords when nothing better is available.
[[nodiscard]] SimdLevel detect_simd_level() noexcept;

/// \param level Level to test.
/// \return True when `level` can execute on this CPU: kScalarWords always,
///   kAVX2 also on AVX-512 hardware, kAVX512/kNEON only when detected.
[[nodiscard]] bool simd_level_available(SimdLevel level) noexcept;

/// Pure selection rule behind dispatched_simd_level(), separated for
/// testability: `env` is the FACTORHD_SIMD value, `detected` the CPU's best
/// level. Unset/"auto"/unparsable or unavailable requests yield `detected`.
/// \param detected CPUID-detected best level.
/// \param env FACTORHD_SIMD value ("" when unset).
/// \return The level scans should run at.
[[nodiscard]] SimdLevel clamp_simd_level(SimdLevel detected,
                                         std::string_view env) noexcept;

/// The level kAuto/kPacked scans dispatch to: detect_simd_level() clamped by
/// FACTORHD_SIMD, computed once per process.
[[nodiscard]] SimdLevel dispatched_simd_level() noexcept;

/// One SIMD tier's kernel set. All three dot kernels take canonical-tail
/// planes (bits >= dim zero in the last word) and return the exact integer
/// dot product — identical across tiers. pack_planes is the fused query
/// packer: int32 components -> sign/nonzero planes with canonical tails.
struct DotKernels {
  /// dot of two bipolar sign planes (= dim - 2 * hamming).
  std::int64_t (*bipolar_bipolar)(const std::uint64_t* a,
                                  const std::uint64_t* b, std::size_t words,
                                  std::size_t dim) noexcept;
  /// dot of a bipolar sign plane with a ternary (nonzero, sign) pair.
  std::int64_t (*bipolar_ternary)(const std::uint64_t* bip,
                                  const std::uint64_t* nz,
                                  const std::uint64_t* sg,
                                  std::size_t words) noexcept;
  /// dot of two ternary (nonzero, sign) plane pairs.
  std::int64_t (*ternary_ternary)(const std::uint64_t* a_nz,
                                  const std::uint64_t* a_sg,
                                  const std::uint64_t* b_nz,
                                  const std::uint64_t* b_sg,
                                  std::size_t words) noexcept;
  /// Packs `dim` int32 components into sign/nonzero planes (both
  /// plane_words(dim) long, canonical tails). Sets *any_zero when a
  /// component is 0. Returns false — leaving the planes unspecified — when a
  /// component lies outside {-1, 0, +1} (integer bundles take the scalar
  /// path).
  bool (*pack_planes)(const std::int32_t* components, std::size_t dim,
                      std::uint64_t* sign, std::uint64_t* nonzero,
                      bool* any_zero) noexcept;
};

/// Kernel table for `level`. Levels not compiled into this binary (e.g.
/// kNEON on x86) alias the scalar table; callers that must not degrade
/// silently check simd_level_available() first (hdc::ItemMemory throws).
/// \param level Requested tier.
/// \return The tier's kernel set (static storage, never null).
[[nodiscard]] const DotKernels& dot_kernels(SimdLevel level) noexcept;

/// Batched one-query-against-many-rows dot kernels over a contiguous
/// row-major plane buffer (`count` rows of `words` words each). The
/// DotKernels entries are tuned for long single dots; a k-means screen needs
/// thousands of *short* prefix dots per row, where the per-call cost
/// (indirect call, prologue, horizontal reduction) rivals the popcounts
/// themselves. These loops keep the query resident and amortize that
/// overhead across the whole batch. Results are the exact same integers as
/// calling the matching DotKernels entry per row — bit-identical across
/// levels (tests/test_kernel_equivalence.cpp pins this).
struct BatchDotKernels {
  /// out[i] = bipolar×bipolar dot of `query` against row i
  /// (= dim - 2 * hamming over `words` canonical-tail words).
  void (*bipolar_rows)(const std::uint64_t* query, const std::uint64_t* rows,
                       std::size_t count, std::size_t words, std::size_t dim,
                       std::int64_t* out) noexcept;
  /// out[i] = dot of a ternary (nonzero, sign) query against bipolar row i.
  void (*ternary_rows)(const std::uint64_t* q_nz, const std::uint64_t* q_sg,
                       const std::uint64_t* rows, std::size_t count,
                       std::size_t words, std::int64_t* out) noexcept;
};

/// Batch kernel table for `level`; same aliasing rule as dot_kernels().
[[nodiscard]] const BatchDotKernels& batch_dot_kernels(
    SimdLevel level) noexcept;

/// Multi-query blocked scan kernels: Q queries against a contiguous
/// row-major bipolar plane buffer in ONE pass over the rows, GEMM-style.
///
/// The single-query batch loops above re-stream the whole codebook from
/// memory for every query in a micro-batch; once the planes spill L2 that
/// stream dominates the scan. These kernels invert the loop nest — row
/// blocks stay register/L1-resident while every query visits them — so a
/// grouped batch pays the codebook memory traffic once per block instead of
/// once per query. Queries are passed as a pointer array (one plane pointer
/// per query, each `words` long with canonical tails); results land
/// query-major: out[q * count + i] = dot(query q, row i).
///
/// Every tier computes the exact same integers as calling the matching
/// BatchDotKernels entry per query — bit-identical across levels and block
/// sizes (tests/test_kernel_fuzz.cpp pins blocked == per-query per tier).
struct QueryBlockKernels {
  /// out[q * count + i] = bipolar×bipolar dot of queries[q] against row i.
  void (*bipolar_rows)(const std::uint64_t* const* queries, std::size_t nq,
                       const std::uint64_t* rows, std::size_t count,
                       std::size_t words, std::size_t dim,
                       std::int64_t* out) noexcept;
  /// out[q * count + i] = dot of ternary query q (q_nz[q], q_sg[q] plane
  /// pairs) against bipolar row i.
  void (*ternary_rows)(const std::uint64_t* const* q_nz,
                       const std::uint64_t* const* q_sg, std::size_t nq,
                       const std::uint64_t* rows, std::size_t count,
                       std::size_t words, std::int64_t* out) noexcept;
};

/// Query-block kernel table for `level`; same aliasing rule as
/// dot_kernels().
[[nodiscard]] const QueryBlockKernels& query_block_kernels(
    SimdLevel level) noexcept;

}  // namespace factorhd::hdc::kernels
