// Dense row-major float matrix — the minimal tensor type backing the neural
// substrate (DESIGN.md §4: a trained MLP feature extractor stands in for the
// paper's ResNet-18; the HDC pipeline only ever consumes its output vectors).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace factorhd::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b. Throws std::invalid_argument on shape mismatch.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// out = a * b^T (used by backprop without materializing transposes).
[[nodiscard]] Matrix matmul_bt(const Matrix& a, const Matrix& b);

/// out = a^T * b.
[[nodiscard]] Matrix matmul_at(const Matrix& a, const Matrix& b);

}  // namespace factorhd::nn
