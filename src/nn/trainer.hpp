// Mini-batch SGD training loop and evaluation for the MLP feature extractor.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace factorhd::nn {

/// A labelled dataset: one example per row of `features`.
struct Dataset {
  Matrix features;
  std::vector<int> labels;

  [[nodiscard]] std::size_t size() const noexcept { return labels.size(); }
};

struct TrainOptions {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
  /// Multiplies the learning rate after each epoch (simple decay schedule).
  double lr_decay = 0.95;
  std::uint64_t shuffle_seed = 99;
};

struct TrainReport {
  std::vector<double> epoch_loss;
  double final_train_accuracy = 0.0;
};

/// Trains `net` in place; deterministic given the options' shuffle seed.
TrainReport train(Mlp& net, const Dataset& data, const TrainOptions& opts);

/// Top-1 accuracy of `net` on `data`.
[[nodiscard]] double evaluate_accuracy(Mlp& net, const Dataset& data);

/// Extracts one batch of rows by index.
[[nodiscard]] Matrix gather_rows(const Matrix& src,
                                 const std::vector<std::size_t>& rows);

}  // namespace factorhd::nn
