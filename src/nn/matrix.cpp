#include "nn/matrix.hpp"

namespace factorhd::nn {

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimension mismatch");
  }
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float av = a.at(i, k);
      if (av == 0.0f) continue;
      const float* brow = b.data() + k * b.cols();
      float* orow = out.data() + i * out.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_bt: inner dimension mismatch");
  }
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.data() + i * a.cols();
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.data() + j * b.cols();
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      out.at(i, j) = acc;
    }
  }
  return out;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("matmul_at: inner dimension mismatch");
  }
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.data() + k * a.cols();
    const float* brow = b.data() + k * b.cols();
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.data() + i * out.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

}  // namespace factorhd::nn
