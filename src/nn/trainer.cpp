#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace factorhd::nn {

Matrix gather_rows(const Matrix& src, const std::vector<std::size_t>& rows) {
  Matrix out(rows.size(), src.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto r = src.row(rows[i]);
    std::copy(r.begin(), r.end(), out.row(i).begin());
  }
  return out;
}

TrainReport train(Mlp& net, const Dataset& data, const TrainOptions& opts) {
  if (data.size() == 0) throw std::invalid_argument("train: empty dataset");
  if (data.features.rows() != data.size()) {
    throw std::invalid_argument("train: feature/label count mismatch");
  }
  TrainReport report;
  util::Xoshiro256 rng(opts.shuffle_seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  double lr = opts.learning_rate;
  for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    // Fisher-Yates shuffle from our deterministic stream.
    for (std::size_t i = order.size(); i-- > 1;) {
      std::swap(order[i], order[rng.uniform(i + 1)]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += opts.batch_size) {
      const std::size_t end = std::min(order.size(), start + opts.batch_size);
      std::vector<std::size_t> batch_rows(order.begin() + static_cast<std::ptrdiff_t>(start),
                                          order.begin() + static_cast<std::ptrdiff_t>(end));
      Matrix x = gather_rows(data.features, batch_rows);
      std::vector<int> y(batch_rows.size());
      for (std::size_t i = 0; i < batch_rows.size(); ++i) {
        y[i] = data.labels[batch_rows[i]];
      }
      Matrix logits = net.forward(x);
      epoch_loss += net.backward(logits, y);
      net.sgd_step(lr, opts.momentum);
      ++batches;
    }
    report.epoch_loss.push_back(epoch_loss / static_cast<double>(batches));
    lr *= opts.lr_decay;
  }
  report.final_train_accuracy = evaluate_accuracy(net, data);
  return report;
}

double evaluate_accuracy(Mlp& net, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  std::size_t correct = 0;
  // Evaluate in chunks to bound the activation cache size.
  constexpr std::size_t kChunk = 256;
  for (std::size_t start = 0; start < data.size(); start += kChunk) {
    const std::size_t end = std::min(data.size(), start + kChunk);
    std::vector<std::size_t> rows(end - start);
    std::iota(rows.begin(), rows.end(), start);
    Matrix logits = net.forward(gather_rows(data.features, rows));
    const std::vector<int> pred = Mlp::argmax(logits);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (pred[i] == data.labels[rows[i]]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace factorhd::nn
