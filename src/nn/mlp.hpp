// Multi-layer perceptron with ReLU hidden layers and a softmax/cross-entropy
// head. This is the trainable "neuro part" of the neuro-symbolic pipeline
// (the feature-extractor role the paper assigns to ResNet-18).
//
// The network exposes both logits (for classification) and the penultimate
// activation vector (the "feature" consumed by the HDC encoding stage).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace factorhd::nn {

struct LinearLayer {
  Matrix weight;  ///< [in, out]
  Matrix bias;    ///< [1, out]
  // Gradients (same shapes), filled by Mlp::backward.
  Matrix grad_weight;
  Matrix grad_bias;
};

class Mlp {
 public:
  /// `dims` = {input, hidden..., output}; He-initialized from `rng`.
  Mlp(const std::vector<std::size_t>& dims, util::Xoshiro256& rng);

  [[nodiscard]] std::size_t input_dim() const noexcept { return dims_.front(); }
  [[nodiscard]] std::size_t output_dim() const noexcept { return dims_.back(); }
  /// Width of the penultimate activation (the feature vector).
  [[nodiscard]] std::size_t feature_dim() const noexcept {
    return dims_[dims_.size() - 2];
  }

  /// Forward pass; returns logits [batch, output]. Caches activations for a
  /// following backward() call.
  Matrix forward(const Matrix& x);

  /// Penultimate-layer activations from the last forward() call.
  [[nodiscard]] const Matrix& features() const { return activations_.back(); }

  /// Softmax cross-entropy against integer labels; returns mean loss and
  /// fills layer gradients (averaged over the batch).
  double backward(const Matrix& logits, const std::vector<int>& labels);

  /// SGD step with momentum over all parameters.
  void sgd_step(double learning_rate, double momentum = 0.9);

  /// Row-wise softmax of logits (used by probability-weighted HV bundling).
  [[nodiscard]] static Matrix softmax(const Matrix& logits);

  /// Row-wise argmax of logits.
  [[nodiscard]] static std::vector<int> argmax(const Matrix& logits);

  [[nodiscard]] const std::vector<LinearLayer>& layers() const noexcept {
    return layers_;
  }

 private:
  std::vector<std::size_t> dims_;
  std::vector<LinearLayer> layers_;
  std::vector<Matrix> velocity_w_;
  std::vector<Matrix> velocity_b_;
  // Cached per-layer inputs: activations_[0] = x, activations_[i] = ReLU
  // output of layer i-1 (so activations_.back() is the feature vector).
  std::vector<Matrix> activations_;
};

}  // namespace factorhd::nn
