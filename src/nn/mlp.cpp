#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace factorhd::nn {

Mlp::Mlp(const std::vector<std::size_t>& dims, util::Xoshiro256& rng)
    : dims_(dims) {
  if (dims_.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output dims");
  }
  layers_.resize(dims_.size() - 1);
  velocity_w_.resize(layers_.size());
  velocity_b_.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::size_t in = dims_[l];
    const std::size_t out = dims_[l + 1];
    layers_[l].weight = Matrix(in, out);
    layers_[l].bias = Matrix(1, out);
    layers_[l].grad_weight = Matrix(in, out);
    layers_[l].grad_bias = Matrix(1, out);
    velocity_w_[l] = Matrix(in, out);
    velocity_b_[l] = Matrix(1, out);
    // He initialization for ReLU nets.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (std::size_t i = 0; i < in * out; ++i) {
      layers_[l].weight.data()[i] = static_cast<float>(scale * rng.normal());
    }
  }
}

Matrix Mlp::forward(const Matrix& x) {
  if (x.cols() != input_dim()) {
    throw std::invalid_argument("Mlp::forward: input width mismatch");
  }
  activations_.clear();
  activations_.push_back(x);
  Matrix cur = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix z = matmul(cur, layers_[l].weight);
    for (std::size_t r = 0; r < z.rows(); ++r) {
      float* row = z.data() + r * z.cols();
      const float* b = layers_[l].bias.data();
      for (std::size_t c = 0; c < z.cols(); ++c) row[c] += b[c];
    }
    if (l + 1 < layers_.size()) {
      for (std::size_t i = 0; i < z.size(); ++i) {
        if (z.data()[i] < 0.0f) z.data()[i] = 0.0f;
      }
      activations_.push_back(z);
      cur = std::move(z);
    } else {
      cur = std::move(z);  // logits: no activation
    }
  }
  return cur;
}

Matrix Mlp::softmax(const Matrix& logits) {
  Matrix p(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.data() + r * logits.cols();
    float* out = p.data() + r * p.cols();
    float mx = in[0];
    for (std::size_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, in[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      out[c] = std::exp(in[c] - mx);
      sum += out[c];
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) out[c] /= sum;
  }
  return p;
}

std::vector<int> Mlp::argmax(const Matrix& logits) {
  std::vector<int> out(logits.rows());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.data() + r * logits.cols();
    int best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = static_cast<int>(c);
    }
    out[r] = best;
  }
  return out;
}

double Mlp::backward(const Matrix& logits, const std::vector<int>& labels) {
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("Mlp::backward: label count mismatch");
  }
  const std::size_t batch = logits.rows();
  Matrix probs = softmax(logits);
  double loss = 0.0;
  // dL/dlogits = (softmax - onehot) / batch
  Matrix delta = probs;
  for (std::size_t r = 0; r < batch; ++r) {
    const int y = labels[r];
    if (y < 0 || static_cast<std::size_t>(y) >= logits.cols()) {
      throw std::invalid_argument("Mlp::backward: label out of range");
    }
    loss -= std::log(std::max(1e-12f, probs.at(r, static_cast<std::size_t>(y))));
    delta.at(r, static_cast<std::size_t>(y)) -= 1.0f;
  }
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta.data()[i] /= static_cast<float>(batch);
  }

  for (std::size_t l = layers_.size(); l-- > 0;) {
    const Matrix& input = activations_[l];
    layers_[l].grad_weight = matmul_at(input, delta);
    layers_[l].grad_bias = Matrix(1, delta.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r) {
      for (std::size_t c = 0; c < delta.cols(); ++c) {
        layers_[l].grad_bias.at(0, c) += delta.at(r, c);
      }
    }
    if (l > 0) {
      Matrix prev_delta = matmul_bt(delta, layers_[l].weight);
      // ReLU gate: zero where the forward activation was clamped.
      const Matrix& act = activations_[l];
      for (std::size_t i = 0; i < prev_delta.size(); ++i) {
        if (act.data()[i] <= 0.0f) prev_delta.data()[i] = 0.0f;
      }
      delta = std::move(prev_delta);
    }
  }
  return loss / static_cast<double>(batch);
}

void Mlp::sgd_step(double learning_rate, double momentum) {
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    auto step = [&](Matrix& param, Matrix& grad, Matrix& vel) {
      for (std::size_t i = 0; i < param.size(); ++i) {
        vel.data()[i] = static_cast<float>(momentum * vel.data()[i] -
                                           learning_rate * grad.data()[i]);
        param.data()[i] += vel.data()[i];
      }
    };
    step(layers_[l].weight, layers_[l].grad_weight, velocity_w_[l]);
    step(layers_[l].bias, layers_[l].grad_bias, velocity_b_[l]);
  }
}

}  // namespace factorhd::nn
