// Admission control for the network front end: a bounded priority queue
// over decoded-but-not-yet-dispatched factorize requests.
//
// The design transplants the bounded priority schedule of CaDiCaL's
// FactorSchedule heap: a hand-rolled binary min-heap (sift-up/sift-down
// over a flat vector) keyed here by (deadline, admission sequence), so the
// dispatcher always pulls the oldest-deadline request next and ties break
// FIFO — deterministic ordering under equal deadlines.
//
// Two bounds, both of which reject EXPLICITLY instead of queueing
// unboundedly (the reject becomes a kOverload frame on the wire):
//
//  * depth      — total tickets queued. Full queue => kQueueFull.
//  * per-client — tickets a single client may have in flight (queued OR
//    dispatched-but-unanswered). Exceeded => kQuotaExceeded, so one
//    pipelining-happy client cannot starve the rest.
//
// "In flight" ends when the server hands the response bytes to the
// client's write buffer (or drops them for a vanished client) and calls
// on_complete() — not when the engine finishes — so the quota also bounds
// response-buffer growth per client.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"

namespace factorhd::net {

/// One admitted unit of work: the decoded request plus the connection
/// bookkeeping the server needs to route the response back.
struct Ticket {
  std::uint64_t client_id = 0;   ///< server-assigned connection identity
  std::uint64_t request_id = 0;  ///< wire request id (echoed on responses)
  bool stream = false;           ///< client asked for kPartial streaming
  FactorizeRequest request;
  /// Arrival time (frame fully parsed) — start of the admission stage.
  std::chrono::steady_clock::time_point arrival{};
  /// Absolute dispatch deadline in microseconds on the steady clock:
  /// arrival + client hint (or the server default). The heap key.
  std::uint64_t deadline_us = 0;
};

struct AdmissionConfig {
  std::size_t depth = 256;        ///< max queued tickets
  std::size_t client_quota = 32;  ///< max in-flight tickets per client
};

/// try_admit outcome. Everything except kAdmitted maps to a reject frame.
enum class Admit : std::uint8_t {
  kAdmitted,
  kQueueFull,       ///< kOverload / OverloadCode::kQueueFull
  kQuotaExceeded,   ///< kOverload / OverloadCode::kQuotaExceeded
  kShuttingDown,    ///< kError / ErrorCode::kShuttingDown
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_quota = 0;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config);

  /// Attempts to admit `ticket`. On kAdmitted the ticket is queued and the
  /// client's in-flight count is charged; any reject leaves no trace.
  [[nodiscard]] Admit try_admit(Ticket&& ticket);

  /// Blocks until a ticket is available (popped in (deadline, seq) order)
  /// or the queue is stopped AND drained.
  /// \return False only at stopped-and-empty — the dispatcher's exit signal.
  [[nodiscard]] bool pop(Ticket& out);

  /// Releases one in-flight slot of `client_id` (response handed to the
  /// write buffer, or dropped because the client disconnected). Must be
  /// called exactly once per admitted ticket.
  void on_complete(std::uint64_t client_id);

  /// Stop admitting (subsequent try_admit => kShuttingDown) and wake the
  /// dispatcher; already-queued tickets still drain through pop().
  void stop();

  [[nodiscard]] std::size_t size() const;
  /// \return In-flight count currently charged to `client_id` (tests).
  [[nodiscard]] std::size_t in_flight(std::uint64_t client_id) const;
  [[nodiscard]] AdmissionStats stats() const;
  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Entry {
    std::uint64_t deadline_us;
    std::uint64_t seq;
    Ticket ticket;
  };
  /// True when the heap entry at `a` dispatches before the one at `b`.
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    return a.deadline_us != b.deadline_us ? a.deadline_us < b.deadline_us
                                          : a.seq < b.seq;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> heap_;
  std::unordered_map<std::uint64_t, std::size_t> in_flight_;
  AdmissionStats stats_;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
};

}  // namespace factorhd::net
