// FHN1 wire protocol: the length-prefixed binary framing of the network
// front end (src/net/server.hpp) and its client library.
//
// Every message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic "FHN1" (0x314E4846 little-endian) — protocol version
//                 is the trailing digit, so a v2 header is a clean magic
//                 mismatch rather than a silent misparse
//   4       1     opcode (see Opcode)
//   5       1     flags (kFlagStream on requests, kFlagStreamed on the
//                 final frame of a streamed response)
//   6       2     reserved, must be zero
//   8       8     request id — client-chosen, echoed verbatim on every
//                 response frame, which is what makes pipelining work
//   16      4     payload length (bounded; see FrameParser)
//   20      4     payload checksum (FNV-1a 32 over the payload bytes)
//   24      ...   payload
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern (std::bit_cast), so a factorization result decoded from the wire
// is bit-identical to the in-process one — the property the differential
// suite (tests/test_net_differential.cpp) pins.
//
// Malformed input never crashes the peer: the incremental FrameParser
// rejects bad magic / nonzero reserved bits / oversized or undersized
// lengths with ProtocolError (connection-fatal), payload decoders
// (PayloadReader) bounds-check every read, and checksum mismatches from
// bit-flipped payloads are detected before any payload decode. The codec
// fuzz suite (tests/test_net_protocol.cpp) sweeps all of these.
//
// docs/PROTOCOL.md is the operator-facing description with a worked
// hexdump; keep the two in sync.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/factorizer.hpp"
#include "hdc/hypervector.hpp"

namespace factorhd::net {

/// Frame magic: "FHN1" read as a little-endian u32.
inline constexpr std::uint32_t kMagic = 0x314E4846;
/// Fixed frame-header size in bytes (payload follows immediately).
inline constexpr std::size_t kHeaderSize = 24;
/// Default per-frame payload bound — mirrors the 1 MiB pre-allocation
/// guard of hdc/io.cpp: nothing in the protocol legitimately needs more
/// (a D=131072 integer HV is 512 KiB), and a hostile length prefix must
/// never drive allocation.
inline constexpr std::size_t kDefaultMaxPayload = 1 << 20;

/// Frame opcodes. Requests are < 16, responses >= 16, so a peer can
/// cheaply reject a response opcode arriving where a request belongs.
enum class Opcode : std::uint8_t {
  // requests
  kFactorize = 1,  ///< factorize one encoded target (FactorizeRequest)
  kPing = 2,       ///< liveness probe; payload echoed back in kPong
  kStats = 3,      ///< engine + server metrics (payload: u8 format)
  // responses
  kResult = 16,    ///< final factorization result (ResultPayload)
  kPartial = 17,   ///< one streamed FactorizedObject of a multi-object result
  kPong = 18,      ///< kPing echo
  kStatsText = 19, ///< stats rendering (string payload)
  kError = 20,     ///< request failed (ErrorPayload)
  kOverload = 21,  ///< request REJECTED by admission control (OverloadPayload)
};

/// \return Stable lowercase opcode name ("factorize", "overload", ...).
[[nodiscard]] const char* to_string(Opcode op) noexcept;
/// \return True when `raw` is one of the Opcode values above.
[[nodiscard]] bool known_opcode(std::uint8_t raw) noexcept;

/// Request flag: stream each FactorizedObject of the result as its own
/// kPartial frame before the final kResult frame (multi-object results
/// become observable object by object instead of all at once).
inline constexpr std::uint8_t kFlagStream = 0x1;
/// Response flag on the final kResult frame of a streamed response: the
/// objects travelled in preceding kPartial frames and are NOT repeated
/// inline.
inline constexpr std::uint8_t kFlagStreamed = 0x2;

/// Error codes carried by kError frames.
enum class ErrorCode : std::uint16_t {
  kBadPayload = 1,        ///< payload failed to decode (truncated/garbled)
  kBadChecksum = 2,       ///< payload checksum mismatch (bit flip in transit)
  kUnknownOpcode = 3,     ///< request opcode the server does not speak
  kDimensionMismatch = 4, ///< target dimension != served model dimension
  kShuttingDown = 5,      ///< server draining; request not accepted
  kInternal = 6,          ///< engine-side failure (message has detail)
  kBadFrame = 7,          ///< framing violation; the connection is dropped
};

/// Overload codes carried by kOverload frames — admission control said no.
enum class OverloadCode : std::uint16_t {
  kQueueFull = 1,      ///< bounded admission queue at capacity
  kQuotaExceeded = 2,  ///< this client's in-flight quota exhausted
};

/// Connection-fatal framing/decoding violation. The server answers one
/// best-effort kError frame and disconnects; the client library throws it
/// through to the caller.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("net protocol: " + what) {}
};

/// FNV-1a 32-bit over `bytes` — the frame payload checksum. Deliberately
/// tiny and dependency-free; this is bit-flip detection, not cryptography.
[[nodiscard]] std::uint32_t payload_checksum(
    std::span<const std::uint8_t> bytes) noexcept;

struct FrameHeader {
  std::uint8_t opcode = 0;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t checksum = 0;
};

/// One decoded frame: header plus verified-length payload. The checksum is
/// verified by FrameParser before the frame is surfaced.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] Opcode opcode() const noexcept {
    return static_cast<Opcode>(header.opcode);
  }
};

/// Serializes one frame (header + payload + checksum) ready to write.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    Opcode opcode, std::uint8_t flags, std::uint64_t request_id,
    std::span<const std::uint8_t> payload);

/// Incremental frame decoder for a byte stream: feed() arbitrary chunks
/// (frames may arrive split across reads or several per read) and complete
/// frames come out in order. Stateful per connection.
class FrameParser {
 public:
  /// \param max_payload Frames whose length prefix exceeds this are a
  ///   ProtocolError before any allocation happens.
  explicit FrameParser(std::size_t max_payload = kDefaultMaxPayload);

  /// Consumes `data`, appending every completed frame to `out`.
  /// \throws ProtocolError On bad magic, nonzero reserved bits, an
  ///   oversized length prefix, or a payload checksum mismatch. The parser
  ///   is poisoned afterwards (the connection must be dropped).
  void feed(std::span<const std::uint8_t> data, std::vector<Frame>& out);

  /// \return Bytes buffered toward an incomplete frame (0 at a frame
  ///   boundary) — what the server's partial-frame (slow-loris) timeout
  ///   keys on.
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  bool poisoned_ = false;
};

/// Bounds-checked little-endian payload reader. Every get_* throws
/// ProtocolError instead of reading past the end, so a truncated or
/// hostile payload can only fail cleanly.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int32_t get_i32();
  /// IEEE-754 bit pattern via bit_cast — exact, not formatted.
  [[nodiscard]] double get_f64();
  /// u32 length prefix + raw bytes; length bounded by the remainder.
  [[nodiscard]] std::string get_string();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }
  /// \throws ProtocolError When trailing bytes remain (a payload must be
  ///   consumed exactly — extra bytes mean a garbled message).
  void expect_end() const;

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
};

/// Little-endian payload builder (the writing twin of PayloadReader).
class PayloadWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v);
  void put_f64(double v);
  void put_string(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(bytes_);
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// kFactorize request payload: options + deadline hint + target HV.
struct FactorizeRequest {
  core::FactorizeOptions opts;
  /// Admission-control deadline hint in microseconds from arrival; 0 means
  /// the server default. Earlier deadlines dispatch first.
  std::uint32_t deadline_hint_us = 0;
  hdc::Hypervector target;
};

[[nodiscard]] std::vector<std::uint8_t> encode_factorize_request(
    const FactorizeRequest& req);
/// \throws ProtocolError On truncation, trailing bytes, or an absurd
///   dimension/selected-class count (bounded against the payload size).
[[nodiscard]] FactorizeRequest decode_factorize_request(
    std::span<const std::uint8_t> payload);

/// Encodes one FactorizedObject (the kPartial payload body, also embedded
/// inline in non-streamed kResult payloads).
void encode_factorized_object(PayloadWriter& w,
                              const core::FactorizedObject& obj);
[[nodiscard]] core::FactorizedObject decode_factorized_object(
    PayloadReader& r);

/// kResult payload: the scalar fields of a FactorizeResult, the per-round
/// trace, the object count, and — unless kFlagStreamed — the objects
/// inline. A streamed response sends each object first as
///   kPartial payload = { u32 object_index, FactorizedObject }
/// and the final kResult (with kFlagStreamed) omits the inline objects;
/// reassembly of count-checked partials + final is bit-identical to the
/// non-streamed result.
[[nodiscard]] std::vector<std::uint8_t> encode_result(
    const core::FactorizeResult& result, bool streamed);
/// Decodes a kResult payload; when `streamed`, `partials` supplies the
/// objects collected from the kPartial frames (index-ordered).
/// \throws ProtocolError On decode failure or a partial-count mismatch.
[[nodiscard]] core::FactorizeResult decode_result(
    std::span<const std::uint8_t> payload, bool streamed,
    std::vector<core::FactorizedObject> partials);

/// kPartial payload.
[[nodiscard]] std::vector<std::uint8_t> encode_partial(
    std::uint32_t index, const core::FactorizedObject& obj);
[[nodiscard]] std::pair<std::uint32_t, core::FactorizedObject> decode_partial(
    std::span<const std::uint8_t> payload);

/// kError payload.
[[nodiscard]] std::vector<std::uint8_t> encode_error(ErrorCode code,
                                                     std::string_view message);
[[nodiscard]] std::pair<ErrorCode, std::string> decode_error(
    std::span<const std::uint8_t> payload);

/// kOverload payload: why admission said no, plus the live depth/quota
/// numbers so a client can back off intelligently.
struct OverloadInfo {
  OverloadCode code = OverloadCode::kQueueFull;
  std::uint32_t queue_depth = 0;  ///< admission-queue depth at rejection
  std::uint32_t limit = 0;        ///< the bound that was hit (depth or quota)
  std::string detail;
};
[[nodiscard]] std::vector<std::uint8_t> encode_overload(
    const OverloadInfo& info);
[[nodiscard]] OverloadInfo decode_overload(
    std::span<const std::uint8_t> payload);

}  // namespace factorhd::net
