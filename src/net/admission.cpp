#include "net/admission.hpp"

#include <utility>

namespace factorhd::net {

AdmissionQueue::AdmissionQueue(AdmissionConfig config) : config_(config) {
  heap_.reserve(config_.depth);
}

void AdmissionQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void AdmissionQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t best = i;
    if (left < n && before(heap_[left], heap_[best])) best = left;
    if (right < n && before(heap_[right], heap_[best])) best = right;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

Admit AdmissionQueue::try_admit(Ticket&& ticket) {
  std::lock_guard lock(mu_);
  if (stopped_) return Admit::kShuttingDown;
  const auto it = in_flight_.find(ticket.client_id);
  if (it != in_flight_.end() && it->second >= config_.client_quota) {
    ++stats_.rejected_quota;
    return Admit::kQuotaExceeded;
  }
  if (heap_.size() >= config_.depth) {
    ++stats_.rejected_full;
    return Admit::kQueueFull;
  }
  ++in_flight_[ticket.client_id];
  ++stats_.admitted;
  heap_.push_back(
      Entry{ticket.deadline_us, next_seq_++, std::move(ticket)});
  sift_up(heap_.size() - 1);
  cv_.notify_one();
  return Admit::kAdmitted;
}

bool AdmissionQueue::pop(Ticket& out) {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return stopped_ || !heap_.empty(); });
  if (heap_.empty()) return false;  // stopped and drained
  out = std::move(heap_.front().ticket);
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  return true;
}

void AdmissionQueue::on_complete(std::uint64_t client_id) {
  std::lock_guard lock(mu_);
  const auto it = in_flight_.find(client_id);
  if (it == in_flight_.end()) return;
  if (--it->second == 0) in_flight_.erase(it);
}

void AdmissionQueue::stop() {
  std::lock_guard lock(mu_);
  stopped_ = true;
  cv_.notify_all();
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard lock(mu_);
  return heap_.size();
}

std::size_t AdmissionQueue::in_flight(std::uint64_t client_id) const {
  std::lock_guard lock(mu_);
  const auto it = in_flight_.find(client_id);
  return it == in_flight_.end() ? 0 : it->second;
}

AdmissionStats AdmissionQueue::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace factorhd::net
