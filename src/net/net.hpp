// Umbrella header for the network front end.
//
// Typical use (server side; see tools/factorhd_serve.cpp `listen`):
//
//   net::NetServer server(engine, net::server_options_from_env());
//   server.start();                       // 127.0.0.1, port() tells which
//   ...
//   server.stop();                        // graceful drain
//
// Client side:
//
//   net::NetClient client("127.0.0.1", server.port());
//   core::FactorizeResult r = client.factorize(target, opts);
//   // r is bit-identical to engine.submit(target, opts).get()
#pragma once

#include "net/admission.hpp"  // IWYU pragma: export
#include "net/client.hpp"     // IWYU pragma: export
#include "net/protocol.hpp"   // IWYU pragma: export
#include "net/server.hpp"     // IWYU pragma: export
