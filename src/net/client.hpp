// NetClient: small blocking client for the FHN1 protocol — the one client
// implementation shared by the serve tool, the tests, and the open-loop
// load generator (bench/bench_ext_latency.cpp), so every consumer speaks
// the protocol through the same codec the server is tested against.
//
// Pipelining: send_* calls only write; recv_response() reads exactly one
// logical response (reassembling kPartial streams internally), so a caller
// may issue N sends and then collect N responses, matching them by
// request id. The synchronous factorize() wraps one send + matching
// receive and turns error/overload responses into typed exceptions.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"

namespace factorhd::net {

/// The server answered kError. Carries the wire code + message.
class ServerError : public std::runtime_error {
 public:
  ServerError(ErrorCode code, const std::string& message)
      : std::runtime_error("server error " +
                           std::to_string(static_cast<int>(code)) + ": " +
                           message),
        code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// The server answered kOverload — admission control rejected the request.
class OverloadError : public std::runtime_error {
 public:
  explicit OverloadError(OverloadInfo info)
      : std::runtime_error("server overloaded: " + info.detail),
        info_(std::move(info)) {}
  [[nodiscard]] const OverloadInfo& info() const noexcept { return info_; }

 private:
  OverloadInfo info_;
};

class NetClient {
 public:
  /// One logical response (a streamed result arrives fully reassembled).
  struct Response {
    enum class Kind : std::uint8_t {
      kResult,
      kPong,
      kStats,
      kError,
      kOverload,
    };
    std::uint64_t request_id = 0;
    Kind kind = Kind::kResult;
    core::FactorizeResult result;  ///< kResult
    std::string text;              ///< kStats text / kPong echo / kError message
    ErrorCode error_code = ErrorCode::kInternal;  ///< kError
    OverloadInfo overload;                        ///< kOverload
    /// kResult only: number of kPartial frames the result arrived in
    /// (0 = non-streamed response).
    std::size_t partial_frames = 0;
  };

  /// Connects (blocking) to host:port.
  /// \throws std::runtime_error On resolve/connect failure.
  NetClient(const std::string& host, std::uint16_t port);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Sends one factorize request; returns its request id.
  std::uint64_t send_factorize(const hdc::Hypervector& target,
                               const core::FactorizeOptions& opts = {},
                               bool stream = false,
                               std::uint32_t deadline_hint_us = 0);
  std::uint64_t send_ping(const std::string& payload = {});
  std::uint64_t send_stats();

  /// Writes raw bytes to the socket — the fault-injection escape hatch for
  /// crafting malformed frames in tests.
  void send_raw(std::span<const std::uint8_t> bytes);

  /// Blocks for the next logical response (kPartial frames are consumed
  /// internally until their final kResult arrives).
  /// \throws ProtocolError On undecodable server bytes.
  /// \throws std::runtime_error On disconnect or receive timeout.
  [[nodiscard]] Response recv_response();

  /// Receive timeout for recv_response (0 = block forever; the default).
  void set_recv_timeout(std::chrono::milliseconds timeout);

  /// Synchronous convenience: send one factorize and wait for its result.
  /// \throws ServerError / OverloadError On error / overload responses.
  [[nodiscard]] core::FactorizeResult factorize(
      const hdc::Hypervector& target, const core::FactorizeOptions& opts = {},
      bool stream = false, std::uint32_t deadline_hint_us = 0);

  void close();
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  std::uint64_t send_frame(Opcode opcode, std::uint8_t flags,
                           std::span<const std::uint8_t> payload);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  FrameParser parser_;
  std::vector<Frame> pending_;  ///< parsed frames not yet consumed
  /// Streamed objects collected per request id, awaiting their kResult.
  std::unordered_map<std::uint64_t, std::vector<core::FactorizedObject>>
      partials_;
};

}  // namespace factorhd::net
