#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/env.hpp"

namespace factorhd::net {

namespace {

double us_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

std::uint64_t steady_us(std::chrono::steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          tp.time_since_epoch())
          .count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// poll(2)-based fallback: interest map rebuilt into a pollfd array per
/// wait. O(n) per tick, which is fine at the connection counts a test or
/// a single-box deployment sees.
class PollPoller final : public Poller {
 public:
  void add(int fd, bool want_write) override { interest_[fd] = want_write; }
  void update(int fd, bool want_write) override { interest_[fd] = want_write; }
  void remove(int fd) override { interest_.erase(fd); }

  void wait(int timeout_ms, std::vector<PollEvent>& out) override {
    fds_.clear();
    for (const auto& [fd, want_write] : interest_) {
      pollfd p{};
      p.fd = fd;
      p.events = POLLIN;
      if (want_write) p.events |= POLLOUT;
      fds_.push_back(p);
    }
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(ev);
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "poll"; }

 private:
  std::unordered_map<int, bool> interest_;
  std::vector<pollfd> fds_;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {
    if (epfd_ < 0) {
      throw std::runtime_error("epoll_create1 failed: " +
                               std::string(std::strerror(errno)));
    }
  }
  ~EpollPoller() override { ::close(epfd_); }

  void add(int fd, bool want_write) override { ctl(EPOLL_CTL_ADD, fd, want_write); }
  void update(int fd, bool want_write) override {
    ctl(EPOLL_CTL_MOD, fd, want_write);
  }
  void remove(int fd) override {
    epoll_event ev{};
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  void wait(int timeout_ms, std::vector<PollEvent>& out) override {
    epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(ev);
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "epoll"; }

 private:
  void ctl(int op, int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, op, fd, &ev);
  }
  int epfd_;
};
#endif

}  // namespace

std::unique_ptr<Poller> make_poller(bool prefer_epoll) {
#ifdef __linux__
  if (prefer_epoll) return std::make_unique<EpollPoller>();
#else
  (void)prefer_epoll;
#endif
  return std::make_unique<PollPoller>();
}

ServerOptions server_options_from_env() {
  ServerOptions opts;
  opts.port = static_cast<std::uint16_t>(
      util::env_size_t("FACTORHD_NET_PORT", 0, 0, 65535));
  opts.admission.depth =
      util::env_size_t("FACTORHD_NET_ADMISSION_DEPTH", 256, 1, 1u << 20);
  opts.admission.client_quota =
      util::env_size_t("FACTORHD_NET_CLIENT_QUOTA", 32, 1, 1u << 20);
  opts.idle_timeout_ms =
      util::env_size_t("FACTORHD_NET_IDLE_TIMEOUT_MS", 30000, 10, 86'400'000);
  opts.max_frame = util::env_size_t("FACTORHD_NET_MAX_FRAME",
                                    kDefaultMaxPayload, 1024, 1u << 30);
  opts.write_buffer_limit =
      util::env_size_t("FACTORHD_NET_WRITE_BUF", 8u << 20, 4096, 1u << 30);
  opts.prefer_epoll = util::env_string("FACTORHD_NET_POLLER", "epoll") != "poll";
  return opts;
}

NetServer::NetServer(service::FactorizationEngine& engine, ServerOptions opts)
    : engine_(engine), opts_(opts), admission_(opts.admission) {}

NetServer::~NetServer() { stop(); }

const char* NetServer::poller_name() const noexcept {
  return poller_ ? poller_->name() : "unstarted";
}

void NetServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(127.0.0.1:" + std::to_string(opts_.port) +
                             ") failed: " + err);
  }
  if (::listen(listen_fd_, 128) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen() failed: " + err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("pipe() failed: " +
                             std::string(std::strerror(errno)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  poller_ = make_poller(opts_.prefer_epoll);
  poller_->add(listen_fd_, false);
  poller_->add(wake_read_fd_, false);

  draining_ = false;
  loop_exit_ = false;
  running_ = true;
  stopped_ = false;
  loop_thread_ = std::thread([this] { event_loop(); });
  dispatcher_thread_ = std::thread([this] { dispatcher_loop(); });
  const std::size_t workers = std::max<std::size_t>(1, opts_.completion_workers);
  completion_threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    completion_threads_.emplace_back([this] { completion_loop(); });
  }
}

void NetServer::stop() {
  if (!running_ || stopped_) return;
  stopped_ = true;

  // 1. Refuse new work: no more accepts, factorize frames answered with
  //    kShuttingDown, admission closed (queued tickets still drain).
  draining_ = true;
  admission_.stop();

  // 2. The dispatcher exits once the admission queue is drained; every
  //    admitted ticket is now in the completion queue (or its error frame
  //    is in the outbox).
  dispatcher_thread_.join();

  // 3. Close the completion queue and wait for the in-flight futures; all
  //    response bytes are in the outbox afterwards.
  {
    std::lock_guard lock(completion_mu_);
    completion_closed_ = true;
  }
  completion_cv_.notify_all();
  for (std::thread& t : completion_threads_) t.join();
  completion_threads_.clear();

  // 4. Let the loop flush: it exits once the outbox and every write buffer
  //    are empty (bounded by a drain deadline so a stuck client cannot
  //    wedge shutdown).
  loop_exit_ = true;
  wake_loop();
  loop_thread_.join();

  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  poller_.reset();
  running_ = false;
}

void NetServer::wake_loop() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void NetServer::push_outgoing(Outgoing&& out) {
  {
    std::lock_guard lock(outbox_mu_);
    outbox_.push_back(std::move(out));
  }
  wake_loop();
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void NetServer::event_loop() {
  std::vector<PollEvent> events;
  std::chrono::steady_clock::time_point drain_deadline{};
  bool drain_armed = false;
  while (true) {
    events.clear();
    poller_->wait(50, events);
    for (const PollEvent& ev : events) {
      if (ev.fd == listen_fd_) {
        if (!draining_) accept_ready();
        continue;
      }
      if (ev.fd == wake_read_fd_) {
        char buf[256];
        while (::read(wake_read_fd_, buf, sizeof buf) > 0) {
        }
        continue;
      }
      const auto id_it = fd_to_id_.find(ev.fd);
      if (id_it == fd_to_id_.end()) continue;
      const std::uint64_t id = id_it->second;
      if (ev.error) {
        close_connection(id, nullptr);
        continue;
      }
      if (ev.readable) handle_readable(conns_.at(id));
      // handle_readable may have closed the connection.
      const auto it = conns_.find(id);
      if (it != conns_.end() && ev.writable) flush_writes(it->second);
    }
    drain_outbox();
    check_timeouts();
    if (loop_exit_) {
      if (!drain_armed) {
        drain_armed = true;
        drain_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(opts_.idle_timeout_ms);
      }
      bool pending;
      {
        std::lock_guard lock(outbox_mu_);
        pending = !outbox_.empty();
      }
      for (const auto& [id, conn] : conns_) {
        if (conn.write_buf.size() > conn.write_off) pending = true;
      }
      if (!pending || std::chrono::steady_clock::now() >= drain_deadline) {
        break;
      }
    }
  }
  // Final teardown: close every connection (their fds are loop-owned).
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) close_connection(id, nullptr);
}

void NetServer::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient failure: back to the poller
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const std::uint64_t id = next_client_id_++;
    Connection conn(opts_.max_frame);
    conn.fd = fd;
    conn.id = id;
    conn.last_progress = std::chrono::steady_clock::now();
    conns_.emplace(id, std::move(conn));
    fd_to_id_[fd] = id;
    poller_->add(fd, false);
    std::lock_guard lock(counters_mu_);
    ++counters_.connections_accepted;
  }
}

void NetServer::handle_readable(Connection& conn) {
  const std::uint64_t id = conn.id;
  std::uint8_t buf[65536];
  std::vector<Frame> frames;
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      const auto read_start = std::chrono::steady_clock::now();
      frames.clear();
      try {
        conn.parser.feed(std::span<const std::uint8_t>(buf,
                                                       static_cast<std::size_t>(n)),
                         frames);
      } catch (const ProtocolError& e) {
        // Framing violation: best-effort error frame, then disconnect once
        // it flushes. The parser is poisoned; stop reading this client.
        // close_after_flush is set first — append_response may close the
        // connection itself (write-buffer overflow), so nothing may touch
        // `conn` after the call.
        conn.close_after_flush = true;
        {
          std::lock_guard lock(counters_mu_);
          ++counters_.disconnects_protocol;
        }
        append_response(
            conn, encode_frame(Opcode::kError, 0, 0,
                               encode_error(ErrorCode::kBadFrame, e.what())));
        return;
      }
      for (Frame& frame : frames) {
        handle_frame(conn, std::move(frame), read_start);
        if (conns_.find(id) == conns_.end()) return;  // closed mid-batch
      }
      continue;
    }
    if (n == 0) {  // orderly peer close (possibly with requests in flight)
      close_connection(id, nullptr);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_connection(id, nullptr);
    return;
  }
}

void NetServer::handle_frame(Connection& conn, Frame&& frame,
                             std::chrono::steady_clock::time_point read_start) {
  const auto now = std::chrono::steady_clock::now();
  conn.last_progress = now;  // a complete frame is protocol progress
  {
    std::lock_guard lock(counters_mu_);
    ++counters_.frames_in;
  }
  const std::uint64_t rid = frame.header.request_id;
  const std::uint8_t raw_op = frame.header.opcode;
  const auto reply = [&](Opcode op, std::uint8_t flags,
                         std::span<const std::uint8_t> payload) {
    append_response(conn, encode_frame(op, flags, rid, payload));
  };

  // A request opcode must be one the server speaks; response opcodes
  // arriving here are equally unknown-as-requests.
  if (raw_op != static_cast<std::uint8_t>(Opcode::kFactorize) &&
      raw_op != static_cast<std::uint8_t>(Opcode::kPing) &&
      raw_op != static_cast<std::uint8_t>(Opcode::kStats)) {
    reply(Opcode::kError, 0,
          encode_error(ErrorCode::kUnknownOpcode,
                       "unknown request opcode " + std::to_string(raw_op)));
    return;
  }

  switch (static_cast<Opcode>(raw_op)) {
    case Opcode::kPing: {
      reply(Opcode::kPong, 0, frame.payload);
      return;
    }
    case Opcode::kStats: {
      PayloadWriter w;
      w.put_string(engine_.metrics().to_string() + "\n" + stats_text());
      reply(Opcode::kStatsText, 0, w.bytes());
      return;
    }
    case Opcode::kFactorize:
      break;
    default:
      return;  // unreachable: filtered above
  }

  FactorizeRequest request;
  try {
    request = decode_factorize_request(frame.payload);
  } catch (const ProtocolError& e) {
    // Frame-aligned garbage: the stream itself is intact, so answer an
    // error and keep the connection.
    reply(Opcode::kError, 0, encode_error(ErrorCode::kBadPayload, e.what()));
    return;
  }
  net_metrics_.on_stage(service::Stage::kNetRead, us_between(read_start, now));

  const std::size_t model_dim = engine_.model().books().dim();
  if (request.target.dim() != model_dim) {
    reply(Opcode::kError, 0,
          encode_error(ErrorCode::kDimensionMismatch,
                       "target dim " + std::to_string(request.target.dim()) +
                           " != model dim " + std::to_string(model_dim)));
    return;
  }
  if (draining_) {
    reply(Opcode::kError, 0,
          encode_error(ErrorCode::kShuttingDown, "server draining"));
    return;
  }

  Ticket ticket;
  ticket.client_id = conn.id;
  ticket.request_id = rid;
  ticket.stream = (frame.header.flags & kFlagStream) != 0;
  ticket.arrival = now;
  const std::uint32_t hint = request.deadline_hint_us != 0
                                 ? request.deadline_hint_us
                                 : opts_.default_deadline_us;
  ticket.deadline_us = steady_us(now) + hint;
  ticket.request = std::move(request);

  switch (admission_.try_admit(std::move(ticket))) {
    case Admit::kAdmitted:
      net_metrics_.on_submitted();
      return;  // the dispatcher takes it from here
    case Admit::kQueueFull: {
      net_metrics_.on_rejected();
      OverloadInfo info;
      info.code = OverloadCode::kQueueFull;
      info.queue_depth = static_cast<std::uint32_t>(admission_.size());
      info.limit = static_cast<std::uint32_t>(opts_.admission.depth);
      info.detail = "admission queue full";
      reply(Opcode::kOverload, 0, encode_overload(info));
      return;
    }
    case Admit::kQuotaExceeded: {
      net_metrics_.on_rejected();
      OverloadInfo info;
      info.code = OverloadCode::kQuotaExceeded;
      info.queue_depth = static_cast<std::uint32_t>(admission_.size());
      info.limit = static_cast<std::uint32_t>(opts_.admission.client_quota);
      info.detail = "per-client in-flight quota exhausted";
      reply(Opcode::kOverload, 0, encode_overload(info));
      return;
    }
    case Admit::kShuttingDown:
      reply(Opcode::kError, 0,
            encode_error(ErrorCode::kShuttingDown, "server draining"));
      return;
  }
}

void NetServer::append_response(Connection& conn,
                                std::span<const std::uint8_t> bytes) {
  conn.write_buf.insert(conn.write_buf.end(), bytes.begin(), bytes.end());
  {
    std::lock_guard lock(counters_mu_);
    ++counters_.frames_out;
  }
  if (conn.write_buf.size() - conn.write_off > opts_.write_buffer_limit) {
    // Slow reader: responses are piling up faster than the client drains
    // them. Cut the connection instead of buffering unboundedly.
    std::uint64_t* counter = &counters_.disconnects_overflow;
    close_connection(conn.id, counter);
    return;
  }
  flush_writes(conn);
}

void NetServer::flush_writes(Connection& conn) {
  while (conn.write_off < conn.write_buf.size()) {
    const ssize_t n = ::write(conn.fd, conn.write_buf.data() + conn.write_off,
                              conn.write_buf.size() - conn.write_off);
    if (n > 0) {
      conn.write_off += static_cast<std::size_t>(n);
      conn.last_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(conn.id, nullptr);
    return;
  }
  if (conn.write_off == conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_off = 0;
    if (conn.close_after_flush) {
      close_connection(conn.id, nullptr);
      return;
    }
  }
  update_poll_interest(conn);
}

void NetServer::update_poll_interest(Connection& conn) {
  const bool want_write = conn.write_off < conn.write_buf.size();
  if (want_write != conn.want_write) {
    conn.want_write = want_write;
    poller_->update(conn.fd, want_write);
  }
}

void NetServer::drain_outbox() {
  std::vector<Outgoing> local;
  {
    std::lock_guard lock(outbox_mu_);
    local.swap(outbox_);
  }
  for (Outgoing& out : local) {
    const auto now = std::chrono::steady_clock::now();
    const auto it = conns_.find(out.client_id);
    if (it == conns_.end() || it->second.close_after_flush) {
      std::lock_guard lock(counters_mu_);
      ++counters_.responses_dropped;
    } else {
      append_response(it->second, out.bytes);
    }
    if (out.release_ticket) {
      // In-flight ends here whether the bytes were buffered or dropped —
      // the exactly-once release point of the admission quota.
      admission_.on_complete(out.client_id);
      net_metrics_.on_stage(service::Stage::kNetWrite,
                            us_between(out.ready, now));
      net_metrics_.on_completed(us_between(out.arrival, now));
    }
  }
}

void NetServer::check_timeouts() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(opts_.idle_timeout_ms);
  std::vector<std::uint64_t> expired;
  for (const auto& [id, conn] : conns_) {
    if (now - conn.last_progress > limit) expired.push_back(id);
  }
  for (const std::uint64_t id : expired) {
    close_connection(id, &counters_.disconnects_idle);
  }
}

void NetServer::close_connection(std::uint64_t id, std::uint64_t* counter) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const int fd = it->second.fd;
  poller_->remove(fd);
  ::close(fd);
  fd_to_id_.erase(fd);
  conns_.erase(it);
  std::lock_guard lock(counters_mu_);
  ++counters_.connections_closed;
  if (counter != nullptr) ++*counter;
}

// ---------------------------------------------------------------------------
// Dispatcher + completion workers
// ---------------------------------------------------------------------------

void NetServer::dispatcher_loop() {
  Ticket ticket;
  while (admission_.pop(ticket)) {
    const auto popped = std::chrono::steady_clock::now();
    net_metrics_.on_stage(service::Stage::kAdmission,
                          us_between(ticket.arrival, popped));
    std::future<core::FactorizeResult> future;
    try {
      future = engine_.submit(std::move(ticket.request.target),
                              ticket.request.opts);
    } catch (const service::QueueFullError&) {
      OverloadInfo info;
      info.code = OverloadCode::kQueueFull;
      info.limit = static_cast<std::uint32_t>(opts_.admission.depth);
      info.detail = "engine queue full";
      Outgoing out;
      out.client_id = ticket.client_id;
      out.bytes = encode_frame(Opcode::kOverload, 0, ticket.request_id,
                               encode_overload(info));
      out.release_ticket = true;
      out.ready = std::chrono::steady_clock::now();
      out.arrival = ticket.arrival;
      push_outgoing(std::move(out));
      continue;
    } catch (const service::EngineStoppedError& e) {
      Outgoing out;
      out.client_id = ticket.client_id;
      out.bytes = encode_frame(
          Opcode::kError, 0, ticket.request_id,
          encode_error(ErrorCode::kShuttingDown, e.what()));
      out.release_ticket = true;
      out.ready = std::chrono::steady_clock::now();
      out.arrival = ticket.arrival;
      push_outgoing(std::move(out));
      continue;
    } catch (const std::exception& e) {
      Outgoing out;
      out.client_id = ticket.client_id;
      out.bytes = encode_frame(Opcode::kError, 0, ticket.request_id,
                               encode_error(ErrorCode::kInternal, e.what()));
      out.release_ticket = true;
      out.ready = std::chrono::steady_clock::now();
      out.arrival = ticket.arrival;
      push_outgoing(std::move(out));
      continue;
    }
    InFlight flight;
    flight.ticket = std::move(ticket);
    flight.ticket.request.target = hdc::Hypervector();  // moved into submit
    flight.future = std::move(future);
    {
      std::lock_guard lock(completion_mu_);
      completion_queue_.push_back(std::move(flight));
    }
    completion_cv_.notify_one();
  }
}

void NetServer::completion_loop() {
  while (true) {
    InFlight flight;
    {
      std::unique_lock lock(completion_mu_);
      completion_cv_.wait(lock, [&] {
        return completion_closed_ || !completion_queue_.empty();
      });
      if (completion_queue_.empty()) return;  // closed and drained
      flight = std::move(completion_queue_.front());
      completion_queue_.pop_front();
    }
    Outgoing out;
    out.client_id = flight.ticket.client_id;
    out.release_ticket = true;
    out.arrival = flight.ticket.arrival;
    const std::uint64_t rid = flight.ticket.request_id;
    try {
      const core::FactorizeResult result = flight.future.get();
      out.ready = std::chrono::steady_clock::now();
      if (flight.ticket.stream) {
        // One kPartial per object, then the final kResult (kFlagStreamed)
        // carrying the scalars + object count — all in one buffer so the
        // frames reach the write buffer atomically and in order.
        for (std::size_t i = 0; i < result.objects.size(); ++i) {
          const auto partial = encode_frame(
              Opcode::kPartial, 0, rid,
              encode_partial(static_cast<std::uint32_t>(i),
                             result.objects[i]));
          out.bytes.insert(out.bytes.end(), partial.begin(), partial.end());
        }
        const auto fin = encode_frame(Opcode::kResult, kFlagStreamed, rid,
                                      encode_result(result, true));
        out.bytes.insert(out.bytes.end(), fin.begin(), fin.end());
      } else {
        out.bytes =
            encode_frame(Opcode::kResult, 0, rid, encode_result(result, false));
      }
    } catch (const std::exception& e) {
      out.ready = std::chrono::steady_clock::now();
      out.bytes = encode_frame(Opcode::kError, 0, rid,
                               encode_error(ErrorCode::kInternal, e.what()));
    }
    push_outgoing(std::move(out));
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

ServerCounters NetServer::counters() const {
  std::lock_guard lock(counters_mu_);
  return counters_;
}

std::string NetServer::stats_text() const {
  const ServerCounters c = counters();
  const AdmissionStats a = admission_.stats();
  const service::MetricsSnapshot net = net_metrics_.snapshot(admission_.size());
  std::ostringstream os;
  os << "net:       " << c.connections_accepted << " accepted, "
     << c.connections_closed << " closed (" << c.disconnects_idle
     << " idle, " << c.disconnects_protocol << " protocol, "
     << c.disconnects_overflow << " overflow), poller " << poller_name()
     << "\nnet io:    " << c.frames_in << " frames in, " << c.frames_out
     << " frames out, " << c.responses_dropped << " responses dropped\n"
     << "admission: " << a.admitted << " admitted, " << a.rejected_full
     << " queue-full rejects, " << a.rejected_quota << " quota rejects, "
     << admission_.size() << " queued";
  for (const service::Stage stage :
       {service::Stage::kNetRead, service::Stage::kAdmission,
        service::Stage::kNetWrite}) {
    const auto& d = net.stages[static_cast<std::size_t>(stage)];
    os << "\nstage " << service::to_string(stage) << ": " << d.count
       << " samples, p50 ~ " << d.p50_us << " us, p99 ~ " << d.p99_us
       << " us, p99.9 ~ " << d.p999_us << " us";
  }
  return os.str();
}

}  // namespace factorhd::net
